/**
 * @file
 * actrun — parallel experiment campaign driver.
 *
 * Subcommands:
 *   list                     built-in campaigns and their job counts
 *   run <campaign>           execute a campaign; write JSON+CSV reports
 *                            (campaigns with corpus cells also write
 *                            <out>/table6-corpus.txt — the per-bug-class
 *                            precision/recall table with bootstrap CIs)
 *   report <dir>             pretty-print a previously written report
 *
 * Flags for `run`:
 *   --jobs N        worker threads (default: hardware concurrency)
 *   --out DIR       report directory (default: actrun-out/<campaign>)
 *   --cache DIR     trace-cache directory (default: <out>/trace-cache;
 *                   "none" disables the disk cache)
 *   --no-mem-cache  drop the in-memory trace layer (stress disk path)
 *   --verbose       per-job progress on stderr
 *   --fail-fast     stop scheduling new jobs after the first failure
 *   --max-attempts N  attempt budget per job (transient retries)
 *   --deadline-ms N   default per-job wall-clock deadline
 *   --metrics-out F   write a metrics snapshot JSON after the run
 *   --trace-out F     write a Chrome trace_event JSON after the run
 *                     (load in chrome://tracing or Perfetto)
 *   --metrics-interval S  periodic metrics line on stderr every S
 *                     seconds (implies metrics collection)
 *   --analyze       after the campaign, run the multi-detector analysis
 *                   pipeline over every cached trace and write the
 *                   deterministic per-trace report to <out>/analysis.txt
 *                   (report.json/report.csv are untouched)
 *   --no-analysis   force JobKnobs::analyze off on every job (the
 *                   byte-identity check for the dormancy contract)
 *   --log-level L     quiet | normal | debug
 *
 * Exit codes for `run`: 0 = all jobs succeeded, 3 = the campaign
 * completed but some jobs failed (the report carries the details),
 * 2 = usage error, 1 = fatal error.
 */

#include <sys/stat.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "runner/adaptivity_sweep.hh"
#include "runner/analysis_sweep.hh"
#include "runner/campaign.hh"
#include "runner/corpus_sweep.hh"
#include "runner/report.hh"
#include "runner/runner.hh"
#include "telemetry/metrics.hh"
#include "telemetry/spans.hh"

namespace act
{
namespace
{

struct Options
{
    unsigned jobs = 0;
    std::string out;
    std::string cache;
    bool memory_cache = true;
    bool verbose = false;
    bool keep_going = true;
    std::uint32_t max_attempts = 3;
    std::uint64_t deadline_ms = 0;
    std::string metrics_out;
    std::string trace_out;
    std::uint64_t metrics_interval_s = 0;
    bool analyze = false;
    bool no_analysis = false;
    std::vector<std::string> positional;
};

/**
 * Periodic stderr metrics line for long runs: every interval, print
 * the delta of a few load-bearing counters plus a derived events/s so
 * progress is visible without waiting for the final snapshot.
 */
class MetricsPulse
{
  public:
    explicit MetricsPulse(std::uint64_t interval_s)
        : interval_s_(interval_s), last_(snapshotNow()),
          thread_([this] { loop(); })
    {}

    ~MetricsPulse()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        thread_.join();
        // Final pulse, emitted *after* the join: the partial interval
        // between the last timer tick and shutdown would otherwise be
        // silently lost, and emitting from this thread once the pulse
        // thread is dead guarantees the line can never interleave with
        // the final metrics/report write that follows destruction.
        emit();
    }

  private:
    static telemetry::Snapshot
    snapshotNow()
    {
        return telemetry::MetricsRegistry::global().snapshot();
    }

    void
    emit()
    {
        const telemetry::Snapshot now = snapshotNow();
        const telemetry::Snapshot delta = telemetry::diffSnapshots(
            now, last_);
        const double dt_ms = now.uptime_ms - last_.uptime_ms;
        const double events = static_cast<double>(
            delta.counterValue("sim.events"));
        const double rate = dt_ms > 0.0 ? events / (dt_ms / 1000.0)
                                        : 0.0;
        std::fprintf(stderr,
                     "metrics: uptime_s=%.0f events=%llu "
                     "events_per_s=%.0f jobs_ok=%llu jobs_failed=%llu "
                     "cache_hits=%llu cache_misses=%llu\n",
                     now.uptime_ms / 1000.0,
                     static_cast<unsigned long long>(
                         now.counterValue("sim.events")),
                     rate,
                     static_cast<unsigned long long>(
                         now.counterValue("runner.jobs_ok")),
                     static_cast<unsigned long long>(
                         now.counterValue("runner.jobs_failed")),
                     static_cast<unsigned long long>(
                         now.counterValue("cache.memory_hits") +
                         now.counterValue("cache.disk_hits")),
                     static_cast<unsigned long long>(
                         now.counterValue("cache.misses")));
        last_ = now;
    }

    void
    loop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        while (!stop_) {
            if (cv_.wait_for(lock, std::chrono::seconds(interval_s_),
                             [this] { return stop_; })) {
                return;
            }
            emit();
        }
    }

    std::uint64_t interval_s_;
    telemetry::Snapshot last_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread thread_;
};

Options
parse(int argc, char **argv)
{
    Options options;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc) {
            const char *text = argv[++i];
            char *end = nullptr;
            options.jobs =
                static_cast<unsigned>(std::strtoul(text, &end, 0));
            if (end == text || *end != '\0')
                ACT_FATAL("--jobs expects a number, got: " << text);
        } else if (arg == "--out" && i + 1 < argc) {
            options.out = argv[++i];
        } else if (arg == "--cache" && i + 1 < argc) {
            options.cache = argv[++i];
        } else if (arg == "--no-mem-cache") {
            options.memory_cache = false;
        } else if (arg == "--verbose") {
            options.verbose = true;
        } else if (arg == "--fail-fast") {
            options.keep_going = false;
        } else if (arg == "--keep-going") {
            options.keep_going = true;
        } else if (arg == "--max-attempts" && i + 1 < argc) {
            const char *text = argv[++i];
            char *end = nullptr;
            options.max_attempts =
                static_cast<std::uint32_t>(std::strtoul(text, &end, 0));
            if (end == text || *end != '\0' || options.max_attempts == 0)
                ACT_FATAL("--max-attempts expects a positive number, "
                          "got: " << text);
        } else if (arg == "--deadline-ms" && i + 1 < argc) {
            const char *text = argv[++i];
            char *end = nullptr;
            options.deadline_ms = std::strtoull(text, &end, 0);
            if (end == text || *end != '\0')
                ACT_FATAL("--deadline-ms expects a number, got: "
                          << text);
        } else if (arg == "--analyze") {
            options.analyze = true;
        } else if (arg == "--no-analysis") {
            options.no_analysis = true;
        } else if (arg == "--metrics-out" && i + 1 < argc) {
            options.metrics_out = argv[++i];
        } else if (arg == "--trace-out" && i + 1 < argc) {
            options.trace_out = argv[++i];
        } else if (arg == "--metrics-interval" && i + 1 < argc) {
            const char *text = argv[++i];
            char *end = nullptr;
            options.metrics_interval_s = std::strtoull(text, &end, 0);
            if (end == text || *end != '\0' ||
                options.metrics_interval_s == 0) {
                ACT_FATAL("--metrics-interval expects a positive number "
                          "of seconds, got: " << text);
            }
        } else if (arg == "--log-level" && i + 1 < argc) {
            const std::string text = argv[++i];
            LogLevel level = LogLevel::kNormal;
            if (!parseLogLevel(text, &level))
                ACT_FATAL("--log-level expects quiet|normal|debug, "
                          "got: " << text);
            setLogLevel(level);
        } else if (arg.rfind("--", 0) == 0) {
            ACT_FATAL("unknown flag: " << arg);
        } else {
            options.positional.push_back(arg);
        }
    }
    return options;
}

int
cmdList()
{
    std::printf("%-16s %-6s %s\n", "campaign", "jobs", "description");
    for (const auto &name : campaignNames()) {
        const Campaign campaign = makeCampaign(name);
        std::printf("%-16s %-6zu %s\n", name.c_str(),
                    campaign.jobs.size(), campaign.description.c_str());
    }
    return 0;
}

int
cmdRun(const Options &options)
{
    if (options.positional.size() != 1)
        ACT_FATAL("usage: actrun run <campaign> [--jobs N] [--out DIR] "
                  "[--cache DIR]");
    const std::string name = options.positional[0];
    if (!campaignExists(name))
        ACT_FATAL("unknown campaign: " << name
                                       << " (see `actrun list`)");
    Campaign campaign = makeCampaign(name);
    if (options.no_analysis) {
        for (JobSpec &job : campaign.jobs)
            job.knobs.analyze = false;
    }

    const std::string out =
        options.out.empty() ? "actrun-out/" + name : options.out;
    // mkdir -p for the output directory.
    std::string prefix;
    for (std::size_t i = 0; i <= out.size(); ++i) {
        if (i == out.size() || out[i] == '/') {
            if (!prefix.empty() && prefix != ".")
                ::mkdir(prefix.c_str(), 0755);
        }
        if (i < out.size())
            prefix += out[i];
    }

    RunOptions run_options;
    run_options.jobs = options.jobs;
    run_options.memory_cache = options.memory_cache;
    run_options.verbose = options.verbose;
    run_options.keep_going = options.keep_going;
    run_options.max_attempts = options.max_attempts;
    run_options.deadline_ms = options.deadline_ms;
    if (options.cache == "none")
        run_options.cache_dir.clear();
    else if (!options.cache.empty())
        run_options.cache_dir = options.cache;
    else
        run_options.cache_dir = out + "/trace-cache";

    // Telemetry stays dormant unless a flag asks for it: reports are
    // byte-identical with and without these switches.
    const bool want_metrics = !options.metrics_out.empty() ||
                              options.metrics_interval_s != 0;
    if (want_metrics)
        telemetry::MetricsRegistry::global().setEnabled(true);
    if (!options.trace_out.empty()) {
        telemetry::SpanTracer::global().setEnabled(true);
        telemetry::SpanTracer::global().nameThread("main");
    }
    std::unique_ptr<MetricsPulse> pulse;
    if (options.metrics_interval_s != 0)
        pulse = std::make_unique<MetricsPulse>(options.metrics_interval_s);

    std::printf("campaign %s: %zu jobs\n", name.c_str(),
                campaign.jobs.size());
    const CampaignRunResult run = runCampaign(campaign, run_options);
    pulse.reset();

    const std::string json_path = out + "/report.json";
    const std::string csv_path = out + "/report.csv";
    if (!writeTextFile(json_path, reportJson(campaign, run.results)))
        ACT_FATAL("cannot write " << json_path);
    if (!writeTextFile(csv_path, reportCsv(campaign, run.results)))
        ACT_FATAL("cannot write " << csv_path);

    std::printf("threads:      %u (steals: %llu)\n", run.threads,
                static_cast<unsigned long long>(run.steals));
    std::printf("wall clock:   %.0f ms\n", run.wall_ms);
    std::printf("trace cache:  %llu hits (%llu memory, %llu disk), "
                "%llu misses, %llu stored, %llu evicted, "
                "%llu quarantined\n",
                static_cast<unsigned long long>(run.cache.hits()),
                static_cast<unsigned long long>(run.cache.memory_hits),
                static_cast<unsigned long long>(run.cache.disk_hits),
                static_cast<unsigned long long>(run.cache.misses),
                static_cast<unsigned long long>(run.cache.stores),
                static_cast<unsigned long long>(run.cache.evictions),
                static_cast<unsigned long long>(
                    run.cache.checksum_rejects));
    std::printf("report:       %s, %s\n", json_path.c_str(),
                csv_path.c_str());

    if (campaignHasCorpus(campaign)) {
        // Corpus campaigns get the joined per-bug-class P/R table next
        // to the raw per-job rows. Pure function of the results, so it
        // inherits the report's cross---jobs byte-identity.
        const std::string table_path = out + "/table6-corpus.txt";
        if (!writeTextFile(table_path,
                           corpusSweepReport(campaign, run.results)))
            ACT_FATAL("cannot write " << table_path);
        std::printf("corpus:       %s\n", table_path.c_str());
    }

    if (campaignHasAdaptivity(campaign)) {
        // Adaptivity campaigns get the per-configuration degradation
        // table next to the raw rows. Pure function of the results, so
        // it inherits the report's cross---jobs byte-identity.
        const std::string table_path = out + "/table-adaptivity.txt";
        if (!writeTextFile(table_path,
                           adaptivitySweepReport(campaign, run.results)))
            ACT_FATAL("cannot write " << table_path);
        std::printf("adaptivity:   %s\n", table_path.c_str());
    }

    if (options.analyze) {
        if (run_options.cache_dir.empty()) {
            ACT_FATAL("--analyze needs a disk trace cache "
                      "(incompatible with --cache none)");
        }
        const AnalysisSweepResult sweep =
            analyzeCachedTraces(run_options.cache_dir, options.jobs);
        const std::string analysis_path = out + "/analysis.txt";
        if (!writeTextFile(analysis_path, sweep.text))
            ACT_FATAL("cannot write " << analysis_path);
        std::printf("analysis:     %zu trace(s), %llu finding(s), "
                    "%llu racy pair(s), %zu unreadable, %.0f ms -> %s\n",
                    sweep.traces,
                    static_cast<unsigned long long>(sweep.findings),
                    static_cast<unsigned long long>(sweep.racy_pairs),
                    sweep.unreadable, sweep.wall_ms,
                    analysis_path.c_str());
    }

    if (!options.metrics_out.empty()) {
        const std::string json = telemetry::snapshotJson(
            telemetry::MetricsRegistry::global().snapshot());
        if (!writeTextFile(options.metrics_out, json))
            ACT_FATAL("cannot write " << options.metrics_out);
        std::printf("metrics:      %s\n", options.metrics_out.c_str());
    }
    if (!options.trace_out.empty()) {
        if (!telemetry::SpanTracer::global().exportTo(options.trace_out))
            ACT_FATAL("cannot write " << options.trace_out);
        std::printf("trace:        %s\n", options.trace_out.c_str());
    }

    // Partial failure is not success: list every failed job and exit
    // with a code scripts can tell apart from a fatal error.
    const std::uint64_t failed = run.failedJobs();
    if (failed != 0) {
        std::printf("\nFAILED JOBS (%llu of %zu):\n",
                    static_cast<unsigned long long>(failed),
                    campaign.jobs.size());
        std::printf("  %-4s %-16s %-14s %-18s %-8s %s\n", "id",
                    "workload", "kind", "failure", "attempts", "error");
        for (const JobResult &result : run.results) {
            if (result.failure == JobFailure::kNone)
                continue;
            const JobSpec &spec = campaign.jobs[result.id];
            std::printf("  %-4u %-16s %-14s %-18s %-8u %s\n", result.id,
                        spec.workload.c_str(), jobKindName(spec.kind),
                        jobFailureName(result.failure), result.attempts,
                        result.error.c_str());
        }
        return 3;
    }
    return 0;
}

int
cmdReport(const Options &options)
{
    if (options.positional.size() != 1)
        ACT_FATAL("usage: actrun report <dir>");
    const std::string path = options.positional[0] + "/report.csv";
    std::vector<ReportRow> rows;
    if (!loadReportCsv(path, rows))
        ACT_FATAL("cannot read " << path);

    // Group rows back into jobs (rows arrive in job order).
    std::uint32_t current = ~0u;
    for (const auto &row : rows) {
        if (row.id != current) {
            current = row.id;
            std::printf("\n[%u] %s / %s (%s, seed %llu)\n", row.id,
                        row.workload.c_str(), row.scheme.c_str(),
                        row.kind.c_str(),
                        static_cast<unsigned long long>(row.seed));
        }
        std::printf("    %-18s %s\n", row.key.c_str(), row.value.c_str());
    }
    std::printf("\n%zu rows\n", rows.size());
    return 0;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: actrun <list|run|report> [args] [--jobs N] "
                 "[--out DIR] [--cache DIR] [--no-mem-cache] "
                 "[--verbose] [--fail-fast] [--max-attempts N] "
                 "[--deadline-ms N] [--metrics-out F] [--trace-out F] "
                 "[--metrics-interval S] [--analyze] [--no-analysis] "
                 "[--log-level L]\n");
    return 2;
}

} // namespace
} // namespace act

int
main(int argc, char **argv)
{
    using namespace act;
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    const Options options = parse(argc, argv);
    if (command == "list")
        return cmdList();
    if (command == "run")
        return cmdRun(options);
    if (command == "report")
        return cmdReport(options);
    return usage();
}
