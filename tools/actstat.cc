/**
 * @file
 * actstat — metrics-snapshot and trace introspection CLI.
 *
 * Subcommands:
 *   show FILE         pretty-print a metrics snapshot
 *   counters FILE     canonical "name value" lines of the stable
 *                     counters only (byte-comparable across runs)
 *   diff OLD NEW      counter deltas between two snapshots, with
 *                     per-second rates derived from the uptime delta
 *   validate FILE     check a metrics snapshot or Chrome trace JSON:
 *                     parses, has the expected shape, and (for traces)
 *                     per-thread timestamps are monotone
 *
 * Exit codes: 0 = ok, 1 = validation/parse failure, 2 = usage error.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "telemetry/json.hh"
#include "telemetry/metrics.hh"

namespace act
{
namespace
{

using telemetry::JsonValue;
using telemetry::Snapshot;

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

/** Rebuild a Snapshot from its "act-metrics-v1" serialisation. */
bool
snapshotFromJson(const JsonValue &root, Snapshot &snap,
                 std::string &error)
{
    const JsonValue *schema = root.find("schema");
    if (schema == nullptr || !schema->isString() ||
        schema->text != "act-metrics-v1") {
        error = "missing or unexpected \"schema\" "
                "(want \"act-metrics-v1\")";
        return false;
    }
    if (const JsonValue *uptime = root.find("uptime_ms");
        uptime != nullptr && uptime->isNumber()) {
        snap.uptime_ms = uptime->number;
    }
    const auto scalars = [&error](const JsonValue &section,
                                  const char *name, auto &&store) {
        if (!section.isObject()) {
            error = std::string("section \"") + name +
                    "\" is not an object";
            return false;
        }
        for (const auto &[key, value] : section.object) {
            if (!value.isNumber()) {
                error = std::string("non-numeric value in \"") + name +
                        "\"";
                return false;
            }
            store(key, value);
        }
        return true;
    };
    for (const char *name : {"counters", "volatile", "gauges"}) {
        const JsonValue *section = root.find(name);
        if (section == nullptr) {
            error = std::string("missing section \"") + name + "\"";
            return false;
        }
        const bool ok = scalars(
            *section, name,
            [&snap, name](const std::string &key, const JsonValue &v) {
                if (std::strcmp(name, "counters") == 0)
                    snap.counters[key] = v.asU64();
                else if (std::strcmp(name, "volatile") == 0)
                    snap.volatile_counters[key] = v.asU64();
                else
                    snap.gauges[key] =
                        static_cast<std::int64_t>(v.number);
            });
        if (!ok)
            return false;
    }
    const JsonValue *hists = root.find("histograms");
    if (hists == nullptr || !hists->isObject()) {
        error = "missing section \"histograms\"";
        return false;
    }
    for (const auto &[key, cell] : hists->object) {
        telemetry::HistogramSnapshot hist;
        if (const JsonValue *count = cell.find("count"))
            hist.count = count->asU64();
        if (const JsonValue *sum = cell.find("sum"))
            hist.sum = sum->asU64();
        if (const JsonValue *buckets = cell.find("buckets");
            buckets != nullptr && buckets->isArray()) {
            for (const JsonValue &pair : buckets->array) {
                if (pair.isArray() && pair.array.size() == 2) {
                    hist.buckets.emplace_back(
                        static_cast<std::uint32_t>(
                            pair.array[0].asU64()),
                        pair.array[1].asU64());
                }
            }
        }
        snap.histograms[key] = std::move(hist);
    }
    return true;
}

bool
loadSnapshot(const std::string &path, Snapshot &snap)
{
    std::string text;
    if (!readFile(path, text)) {
        std::fprintf(stderr, "actstat: cannot read %s\n", path.c_str());
        return false;
    }
    std::string error;
    const auto root = telemetry::parseJson(text, &error);
    if (!root) {
        std::fprintf(stderr, "actstat: %s: %s\n", path.c_str(),
                     error.c_str());
        return false;
    }
    if (!snapshotFromJson(*root, snap, error)) {
        std::fprintf(stderr, "actstat: %s: %s\n", path.c_str(),
                     error.c_str());
        return false;
    }
    return true;
}

int
cmdShow(const std::string &path)
{
    Snapshot snap;
    if (!loadSnapshot(path, snap))
        return 1;
    std::printf("uptime: %.1f s\n", snap.uptime_ms / 1000.0);
    if (!snap.counters.empty()) {
        std::printf("\ncounters (stable):\n");
        for (const auto &[name, value] : snap.counters)
            std::printf("  %-36s %12llu\n", name.c_str(),
                        static_cast<unsigned long long>(value));
    }
    if (!snap.volatile_counters.empty()) {
        std::printf("\ncounters (volatile):\n");
        for (const auto &[name, value] : snap.volatile_counters)
            std::printf("  %-36s %12llu\n", name.c_str(),
                        static_cast<unsigned long long>(value));
    }
    if (!snap.gauges.empty()) {
        std::printf("\ngauges:\n");
        for (const auto &[name, value] : snap.gauges)
            std::printf("  %-36s %12lld\n", name.c_str(),
                        static_cast<long long>(value));
    }
    if (!snap.histograms.empty()) {
        std::printf("\nhistograms:\n");
        for (const auto &[name, hist] : snap.histograms) {
            std::printf("  %-36s count %llu mean %.1f\n", name.c_str(),
                        static_cast<unsigned long long>(hist.count),
                        hist.mean());
            for (const auto &[bucket, count] : hist.buckets) {
                std::printf("    <= %20llu %12llu\n",
                            static_cast<unsigned long long>(
                                telemetry::LatencyHistogram::
                                    bucketUpperBound(bucket)),
                            static_cast<unsigned long long>(count));
            }
        }
    }
    return 0;
}

int
cmdCounters(const std::string &path)
{
    Snapshot snap;
    if (!loadSnapshot(path, snap))
        return 1;
    std::fputs(telemetry::stableCountersText(snap).c_str(), stdout);
    return 0;
}

int
cmdDiff(const std::string &older_path, const std::string &newer_path)
{
    Snapshot older;
    Snapshot newer;
    if (!loadSnapshot(older_path, older) ||
        !loadSnapshot(newer_path, newer)) {
        return 1;
    }
    const Snapshot delta = telemetry::diffSnapshots(newer, older);
    const double dt_s = (newer.uptime_ms - older.uptime_ms) / 1000.0;
    std::printf("interval: %.1f s\n", dt_s);
    std::printf("%-36s %12s %12s\n", "counter", "delta", "per_s");
    const auto table = [dt_s](const std::map<std::string,
                                             std::uint64_t> &map) {
        for (const auto &[name, value] : map) {
            if (value == 0)
                continue;
            std::printf("%-36s %12llu %12.1f\n", name.c_str(),
                        static_cast<unsigned long long>(value),
                        dt_s > 0.0 ? static_cast<double>(value) / dt_s
                                   : 0.0);
        }
    };
    table(delta.counters);
    table(delta.volatile_counters);
    return 0;
}

/** Per-tid monotone-ts check over a trace_event JSON. */
bool
validateTrace(const JsonValue &root, std::string &error)
{
    const JsonValue *events = root.find("traceEvents");
    if (events == nullptr || !events->isArray()) {
        error = "missing \"traceEvents\" array";
        return false;
    }
    std::map<std::uint64_t, double> last_ts;
    for (const JsonValue &event : events->array) {
        if (!event.isObject()) {
            error = "non-object entry in traceEvents";
            return false;
        }
        const JsonValue *name = event.find("name");
        const JsonValue *phase = event.find("ph");
        if (name == nullptr || !name->isString() || phase == nullptr ||
            !phase->isString()) {
            error = "event without string \"name\"/\"ph\"";
            return false;
        }
        if (phase->text == "M")
            continue; // Metadata records carry no timestamp.
        const JsonValue *ts = event.find("ts");
        const JsonValue *tid = event.find("tid");
        if (ts == nullptr || !ts->isNumber() || tid == nullptr ||
            !tid->isNumber()) {
            error = "timed event without numeric \"ts\"/\"tid\" "
                    "(name: " + name->text + ")";
            return false;
        }
        const std::uint64_t thread = tid->asU64();
        const auto it = last_ts.find(thread);
        if (it != last_ts.end() && ts->number < it->second) {
            error = "ts not monotone within tid " +
                    std::to_string(thread);
            return false;
        }
        last_ts[thread] = ts->number;
    }
    return true;
}

int
cmdValidate(const std::string &path)
{
    std::string text;
    if (!readFile(path, text)) {
        std::fprintf(stderr, "actstat: cannot read %s\n", path.c_str());
        return 1;
    }
    std::string error;
    const auto root = telemetry::parseJson(text, &error);
    if (!root) {
        std::fprintf(stderr, "actstat: %s: invalid JSON: %s\n",
                     path.c_str(), error.c_str());
        return 1;
    }
    if (root->find("traceEvents") != nullptr) {
        if (!validateTrace(*root, error)) {
            std::fprintf(stderr, "actstat: %s: %s\n", path.c_str(),
                         error.c_str());
            return 1;
        }
        std::printf("%s: valid trace (%zu events)\n", path.c_str(),
                    root->find("traceEvents")->array.size());
        return 0;
    }
    Snapshot snap;
    if (!snapshotFromJson(*root, snap, error)) {
        std::fprintf(stderr, "actstat: %s: %s\n", path.c_str(),
                     error.c_str());
        return 1;
    }
    std::printf("%s: valid metrics snapshot (%zu stable, %zu volatile, "
                "%zu gauges, %zu histograms)\n",
                path.c_str(), snap.counters.size(),
                snap.volatile_counters.size(), snap.gauges.size(),
                snap.histograms.size());
    return 0;
}

int
usage()
{
    std::fprintf(stderr, "usage: actstat <show FILE | counters FILE | "
                         "diff OLD NEW | validate FILE>\n");
    return 2;
}

} // namespace
} // namespace act

int
main(int argc, char **argv)
{
    using namespace act;
    if (argc < 3)
        return usage();
    const std::string command = argv[1];
    if (command == "show" && argc == 3)
        return cmdShow(argv[2]);
    if (command == "counters" && argc == 3)
        return cmdCounters(argv[2]);
    if (command == "diff" && argc == 4)
        return cmdDiff(argv[2], argv[3]);
    if (command == "validate" && argc == 3)
        return cmdValidate(argv[2]);
    return usage();
}
