/**
 * @file
 * actgen — corpus generator CLI.
 *
 * Subcommands:
 *   list [--seed S] [--count N] [--bases a,b,...]
 *       print the variant names of the slice, one per line, without
 *       materialising anything — the slice is a pure function of the
 *       master seed, so this is what a later `gen` will produce
 *   gen --out DIR [--seed S] [--count N] [--jobs N] [--traces]
 *       [--bases a,b,...]
 *       materialise the slice into DIR: one catalog-NNNN.json per
 *       variant, optional variant-NNNN.trc failing traces (--traces),
 *       and a manifest.json tying names to files. Byte-identical
 *       output for any --jobs value and across regeneration from the
 *       same seed (DESIGN section 14) — the corpus-smoke CI job diffs
 *       two independent generations to hold this.
 *   classes
 *       print the bug-class taxonomy with the matching detector lens
 *
 * Exit status: 0 = ok, 1 = generation findings, 2 = usage/I/O error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "corpus/corpus.hh"
#include "corpus/generate.hh"
#include "corpus/mine.hh"
#include "trace/io.hh"

namespace act::corpus
{
namespace
{

constexpr int kExitOk = 0;
constexpr int kExitFindings = 1;
constexpr int kExitUsage = 2;

void
usage()
{
    std::fprintf(
        stderr,
        "usage: actgen <command> [flags]\n"
        "  list                 print the slice's variant names\n"
        "  gen --out DIR        materialise catalogs (+ traces) into"
        " DIR\n"
        "  classes              print the bug-class taxonomy\n"
        "flags:\n"
        "  --seed S             master seed (default 0x%llx)\n"
        "  --count N            variants in the slice (default 32)\n"
        "  --bases a,b,...      restrict base kernels (default: all)\n"
        "  --jobs N             generation threads (default 1)\n"
        "  --traces             also write failing traces (gen only)\n",
        static_cast<unsigned long long>(kCorpusMasterSeed));
}

std::vector<std::string>
splitCommas(const std::string &list)
{
    std::vector<std::string> out;
    std::string current;
    for (const char c : list) {
        if (c == ',') {
            if (!current.empty())
                out.push_back(current);
            current.clear();
        } else {
            current += c;
        }
    }
    if (!current.empty())
        out.push_back(current);
    return out;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (file == nullptr)
        return false;
    const std::size_t written =
        std::fwrite(content.data(), 1, content.size(), file);
    return std::fclose(file) == 0 && written == content.size();
}

int
cmdList(const GenerateOptions &options)
{
    const auto slice =
        corpusSlice(options.master_seed, options.count, options.bases);
    for (const CorpusVariantDesc &desc : slice)
        std::printf("%s\n", corpusName(desc).c_str());
    return kExitOk;
}

int
cmdClasses()
{
    for (std::size_t c = 0; c < kCorpusBugClassCount; ++c) {
        const auto bug_class = static_cast<CorpusBugClass>(c);
        std::printf("%-24s lens=%s\n", corpusBugClassName(bug_class),
                    corpusLensName(bug_class));
    }
    std::printf("bases:");
    for (const std::string &base : corpusBaseNames())
        std::printf(" %s", base.c_str());
    std::printf("\n");
    return kExitOk;
}

int
cmdGen(const GenerateOptions &options, const std::string &out_dir)
{
    if (out_dir.empty()) {
        usage();
        return kExitUsage;
    }
    const GenerateResult result = generateCorpus(options);
    for (const Finding &finding : result.findings)
        std::fprintf(stderr, "%s\n", finding.toString().c_str());

    for (std::size_t i = 0; i < result.variants.size(); ++i) {
        char index[32];
        std::snprintf(index, sizeof(index), "%04zu", i);
        const GeneratedVariant &variant = result.variants[i];
        const std::string catalog_path =
            out_dir + "/catalog-" + index + ".json";
        if (!writeFile(catalog_path, variant.catalog_json)) {
            std::fprintf(stderr, "cannot write %s\n",
                         catalog_path.c_str());
            return kExitUsage;
        }
        if (options.traces) {
            const std::string trace_path =
                out_dir + "/variant-" + index + ".trc";
            if (!writeTrace(variant.failing, trace_path)) {
                std::fprintf(stderr, "cannot write %s\n",
                             trace_path.c_str());
                return kExitUsage;
            }
        }
    }
    if (!writeFile(out_dir + "/manifest.json", result.manifest_json)) {
        std::fprintf(stderr, "cannot write %s/manifest.json\n",
                     out_dir.c_str());
        return kExitUsage;
    }
    std::printf("%zu variant(s) -> %s (%s traces), %zu finding(s)\n",
                result.variants.size(), out_dir.c_str(),
                options.traces ? "with" : "no",
                result.findings.size());
    return result.ok() ? kExitOk : kExitFindings;
}

int
run(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return kExitUsage;
    }
    const std::string command = argv[1];

    GenerateOptions options;
    std::string out_dir;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--seed" && i + 1 < argc) {
            options.master_seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--count" && i + 1 < argc) {
            options.count = static_cast<std::size_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (arg == "--jobs" && i + 1 < argc) {
            options.jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--bases" && i + 1 < argc) {
            options.bases = splitCommas(argv[++i]);
        } else if (arg == "--traces") {
            options.traces = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out_dir = argv[++i];
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
            return kExitUsage;
        }
    }

    if (command == "list")
        return cmdList(options);
    if (command == "classes")
        return cmdClasses();
    if (command == "gen")
        return cmdGen(options, out_dir);
    usage();
    return kExitUsage;
}

} // namespace
} // namespace act::corpus

int
main(int argc, char **argv)
{
    return act::corpus::run(argc, argv);
}
