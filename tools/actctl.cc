/**
 * @file
 * actctl — command-line driver for the ACT reproduction.
 *
 * Subcommands:
 *   list                         workloads in the registry
 *   record <wl> <out.trc>        record one execution trace to a file
 *   replay <in.trc>              print statistics of a trace file
 *   train <wl> <out.weights>     offline-train and save per-thread weights
 *   simulate <wl> <weights>      run the machine with ACT attached
 *   diagnose <wl>                full single-failure diagnosis loop
 *
 * Common flags: --seed N, --failure, --traces N, --scale N.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "act/weight_store.hh"
#include "common/logging.hh"
#include "diagnosis/pipeline.hh"
#include "trace/io.hh"

namespace act
{
namespace
{

struct Options
{
    std::uint64_t seed = 1;
    bool failure = false;
    std::size_t traces = 10;
    std::uint32_t scale = 1;
    std::vector<std::string> positional;
};

Options
parse(int argc, char **argv)
{
    Options options;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--failure") {
            options.failure = true;
        } else if (arg == "--seed" && i + 1 < argc) {
            options.seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--traces" && i + 1 < argc) {
            options.traces = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--scale" && i + 1 < argc) {
            options.scale = static_cast<std::uint32_t>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (arg.rfind("--", 0) == 0) {
            ACT_FATAL("unknown flag: " << arg);
        } else {
            options.positional.push_back(arg);
        }
    }
    return options;
}

int
cmdList()
{
    registerAllWorkloads();
    std::printf("%-16s %-8s %-8s %s\n", "name", "threads", "failure",
                "description");
    for (const auto &name : WorkloadRegistry::instance().names()) {
        const auto workload =
            WorkloadRegistry::instance().create(name);
        const char *kind = "-";
        switch (workload->failureKind()) {
          case FailureKind::kCrash: kind = "crash"; break;
          case FailureKind::kCompletion: kind = "comp."; break;
          default: break;
        }
        std::printf("%-16s %-8u %-8s %s\n", name.c_str(),
                    workload->threadCount(), kind,
                    workload->description().c_str());
    }
    return 0;
}

int
cmdRecord(const Options &options)
{
    if (options.positional.size() != 2)
        ACT_FATAL("usage: actctl record <workload> <out.trc>");
    registerAllWorkloads();
    const auto workload = makeWorkload(options.positional[0]);
    WorkloadParams params;
    params.seed = options.seed;
    params.trigger_failure = options.failure;
    params.scale = options.scale;
    const Trace trace = workload->record(params);
    if (!writeTrace(trace, options.positional[1]))
        ACT_FATAL("cannot write " << options.positional[1]);
    std::printf("wrote %zu events (%llu instructions, %u threads) to %s\n",
                trace.size(),
                static_cast<unsigned long long>(trace.instructionCount()),
                trace.threadCount(), options.positional[1].c_str());
    return 0;
}

int
cmdReplay(const Options &options)
{
    if (options.positional.size() != 1)
        ACT_FATAL("usage: actctl replay <in.trc>");
    Trace trace;
    if (!readTrace(options.positional[0], trace))
        ACT_FATAL("cannot read " << options.positional[0]);
    std::printf("events:        %zu\n", trace.size());
    std::printf("instructions:  %llu\n",
                static_cast<unsigned long long>(trace.instructionCount()));
    std::printf("loads/stores:  %llu / %llu\n",
                static_cast<unsigned long long>(trace.loadCount()),
                static_cast<unsigned long long>(trace.storeCount()));
    std::printf("branches:      %llu\n",
                static_cast<unsigned long long>(trace.branchCount()));
    std::printf("threads:       %u\n", trace.threadCount());

    const auto sequences = collectCacheSequences(trace, MemSystemConfig{}, 3);
    std::printf("cache-formed dependence sequences: %zu\n",
                sequences.size());
    return 0;
}

int
cmdTrain(const Options &options)
{
    if (options.positional.size() != 2)
        ACT_FATAL("usage: actctl train <workload> <out.weights>");
    registerAllWorkloads();
    const auto workload = makeWorkload(options.positional[0]);
    PairEncoder encoder;
    OfflineTrainingConfig config;
    config.traces = options.traces;
    config.seed_base = options.seed;
    const TrainedModel model = offlineTrain(*workload, encoder, config);
    WeightStore store(model.topology);
    store.setAll(workload->threadCount(), model.weights);
    if (!store.save(options.positional[1]))
        ACT_FATAL("cannot write " << options.positional[1]);
    std::printf("trained %zux%zux1 on %zu examples (%zu RAW deps), "
                "error %.2f%%; weights for %u threads -> %s\n",
                model.topology.inputs, model.topology.hidden,
                model.example_count, model.dependence_count,
                model.training.final_error * 100.0,
                workload->threadCount(), options.positional[1].c_str());
    return 0;
}

int
cmdSimulate(const Options &options)
{
    if (options.positional.size() != 2)
        ACT_FATAL("usage: actctl simulate <workload> <weights>");
    registerAllWorkloads();
    const auto workload = makeWorkload(options.positional[0]);
    WeightStore store;
    if (!store.load(options.positional[1]))
        ACT_FATAL("cannot read " << options.positional[1]);

    PairEncoder encoder;
    SystemConfig config;
    config.act.topology = store.topology();
    System system(config, encoder, store);
    WorkloadParams params;
    params.seed = options.seed;
    params.trigger_failure = options.failure;
    params.scale = options.scale;
    system.run(workload->record(params));

    const SystemStats stats = system.stats();
    std::printf("cycles:            %llu\n",
                static_cast<unsigned long long>(stats.cycles));
    std::printf("dependences:       %llu\n",
                static_cast<unsigned long long>(stats.act.dependences));
    std::printf("flagged invalid:   %llu\n",
                static_cast<unsigned long long>(
                    stats.act.predicted_invalid));
    std::printf("mode switches:     %llu\n",
                static_cast<unsigned long long>(stats.act.mode_switches));
    std::printf("retire stalls:     %llu cycles\n",
                static_cast<unsigned long long>(stats.act.stall_cycles));
    std::printf("debug entries:\n");
    for (const auto &entry : system.collectDebugEntries()) {
        std::printf("  t%-2u out=%+.3f %s\n", entry.tid, entry.output,
                    entry.sequence.toString().c_str());
    }
    return 0;
}

int
cmdDiagnose(const Options &options)
{
    if (options.positional.size() != 1)
        ACT_FATAL("usage: actctl diagnose <workload>");
    registerAllWorkloads();
    const auto workload = makeWorkload(options.positional[0]);
    if (workload->failureKind() == FailureKind::kNone)
        ACT_FATAL(options.positional[0] << " has no failure mode");

    DiagnosisSetup setup = defaultDiagnosisSetup();
    setup.training.traces = options.traces;
    setup.failure_seed = options.seed == 1 ? 999 : options.seed;
    const DiagnosisResult result = diagnoseFailure(*workload, setup);

    std::printf("%s\n", result.report.toString(8).c_str());
    const RawDependence root = workload->buggyDependence();
    std::printf("ground truth: %s\n", root.toString().c_str());
    if (result.rank) {
        std::printf("ranked #%zu (debug-buffer position %s)\n",
                    *result.rank,
                    result.debug_position
                        ? std::to_string(*result.debug_position).c_str()
                        : "-");
        return 0;
    }
    std::printf("root cause not ranked (try a larger debug buffer)\n");
    return 1;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: actctl <list|record|replay|train|simulate|"
                 "diagnose> [args] [--seed N] [--failure] [--traces N] "
                 "[--scale N]\n");
    return 2;
}

} // namespace
} // namespace act

int
main(int argc, char **argv)
{
    using namespace act;
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    const Options options = parse(argc, argv);
    if (command == "list")
        return cmdList();
    if (command == "record")
        return cmdRecord(options);
    if (command == "replay")
        return cmdReplay(options);
    if (command == "train")
        return cmdTrain(options);
    if (command == "simulate")
        return cmdSimulate(options);
    if (command == "diagnose")
        return cmdDiagnose(options);
    return usage();
}
