/**
 * @file
 * actlint — static/trace analysis driver over the repo's artifacts.
 *
 * Subcommands:
 *   trace <file.trc>...      lint trace files; --races also prints the
 *                            vector-clock oracle's racy pairs
 *   workloads [name...]      record correct + failing runs of the
 *                            registered workloads (all by default),
 *                            lint every trace, and check the race
 *                            oracle against the bug catalog: concurrent
 *                            bugs must race on their failure path,
 *                            sequential ones must show no race at all
 *   report <dir>             validate a campaign report directory
 *                            (report.json, report.csv) and lint every
 *                            .trc in its trace cache
 *                            [--cache DIR: cache location, default
 *                             <dir>/trace-cache]
 *   stream <file.trc>...     chunk traces into event blocks and run the
 *                            streaming batch linter over each block
 *                            (per-tid seq monotonicity, kind/tid/size
 *                            range checks) — the same validation the
 *                            fleet service applies to ingress blocks
 *                            [--block N: events per block, default 512]
 *   analyze [<file.trc>... | name...]
 *                            run the multi-detector analysis pipeline
 *                            (lockset races, lock-order cycles,
 *                            atomicity violations, order violations +
 *                            the happens-before oracle). With .trc
 *                            files: analyse each in single-trace mode
 *                            and print every finding. With workload
 *                            names (all bug workloads + kernels by
 *                            default): mine atomicity/order baselines
 *                            from passing runs, analyse the failing
 *                            run, and check the detector verdicts
 *                            against the bug catalog — atomicity/order
 *                            bugs must be flagged by their own detector
 *                            class on the root dependence, and
 *                            sequential bugs must produce no findings
 *                            [--jobs N: detector-level parallelism; the
 *                             output is byte-identical for every N]
 *   catalog <file.json>...   validate corpus bug catalogs: JSON shape,
 *                            schema tag, class/lens pairing, PC sanity,
 *                            parameter ranges and name/body agreement
 *                            (see src/corpus/catalog.hh); any error
 *                            exits 1 — the corpus-smoke CI gate
 *   config                   validate the default ActConfig against
 *                            every built-in encoder
 *   weights <file>           validate a WeightStore blob against its
 *                            topology and the Q15.16 register range,
 *                            plus denormal/underflow hygiene warnings
 *                            [--ensemble: also check per-member set
 *                             consistency — every member set needs its
 *                             thread's member-0 set, member indices
 *                             must be contiguous]
 *
 * Exit status: 0 = clean, 1 = findings, 2 = usage or I/O error.
 */

#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "act/act_config.hh"
#include "act/weight_store.hh"
#include "analysis/config_check.hh"
#include "corpus/catalog.hh"
#include "analysis/pipeline.hh"
#include "analysis/race_oracle.hh"
#include "analysis/trace_lint.hh"
#include "deps/encoder.hh"
#include "runner/report.hh"
#include "trace/io.hh"
#include "workloads/workload.hh"

namespace act
{
namespace
{

constexpr int kExitClean = 0;
constexpr int kExitFindings = 1;
constexpr int kExitUsage = 2;

void
usage()
{
    std::fprintf(
        stderr,
        "usage: actlint <command> [args]\n"
        "  trace <file.trc>... [--races]   lint trace files\n"
        "  workloads [name...]             lint + oracle-check workload"
        " runs\n"
        "  report <dir> [--cache DIR]      validate a campaign report"
        " dir\n"
        "  stream <file.trc>... [--block N] batch-lint traces as event"
        " blocks\n"
        "  analyze [<file.trc>...|name...] [--jobs N]\n"
        "                                  run the detector pipeline on"
        " traces, or\n"
        "                                  on workload runs with"
        " bug-catalog checks\n"
        "  catalog <file.json>...          validate corpus bug"
        " catalogs\n"
        "  config                          validate the default"
        " ActConfig\n"
        "  weights <file> [--ensemble]     validate a WeightStore blob"
        " (with\n"
        "                                  per-member consistency checks"
        " under\n"
        "                                  --ensemble)\n");
}

/** Print findings under a heading; returns the number of errors. */
std::size_t
emit(const std::string &subject, const std::vector<Finding> &findings)
{
    if (findings.empty())
        return 0;
    std::printf("%s:\n", subject.c_str());
    for (const Finding &finding : findings)
        std::printf("  %s\n", finding.toString().c_str());
    return errorCount(findings);
}

int
cmdTrace(const std::vector<std::string> &args, bool show_races)
{
    if (args.empty()) {
        usage();
        return kExitUsage;
    }
    std::size_t errors = 0;
    for (const std::string &path : args) {
        Trace trace;
        if (!readTrace(path, trace)) {
            std::printf("%s: unreadable (missing, truncated or not a "
                        "trace file)\n",
                        path.c_str());
            ++errors;
            continue;
        }
        errors += emit(path, lintTrace(trace));
        if (show_races) {
            const RaceReport report = detectRaces(trace);
            std::printf("%s: %zu racy pair(s), %llu sync / %llu memory "
                        "events\n",
                        path.c_str(), report.races().size(),
                        static_cast<unsigned long long>(
                            report.sync_events),
                        static_cast<unsigned long long>(
                            report.memory_events));
            for (const Race &race : report.races())
                std::printf("  %s\n", race.toString().c_str());
        }
    }
    return errors == 0 ? kExitClean : kExitFindings;
}

/**
 * Lint one recorded run and, for bug workloads, check the oracle
 * labels against the catalog. Returns the number of errors.
 */
std::size_t
checkWorkload(const std::string &name)
{
    const auto workload = makeWorkload(name);
    std::size_t errors = 0;

    WorkloadParams correct;
    const Trace correct_trace = workload->record(correct);
    errors += emit(name + " (correct run)", lintTrace(correct_trace));

    if (workload->failureKind() == FailureKind::kNone) {
        std::printf("%-12s kernel         lint ok\n", name.c_str());
        return errors;
    }

    WorkloadParams failing;
    failing.seed = 999;
    failing.trigger_failure = true;
    const Trace failing_trace = workload->record(failing);
    errors += emit(name + " (failing run)", lintTrace(failing_trace));

    // Oracle vs catalog: the root-cause dependence of a concurrency
    // bug must be a happens-before race on the failure path; a
    // sequential bug's traces must contain no race at all.
    const RaceReport oracle = detectRaces(failing_trace);
    const RawDependence root = workload->buggyDependence();
    const bool root_racy = oracle.isRacy(root);
    if (workload->concurrent() && !root_racy) {
        std::printf("%s: oracle disagrees with the bug catalog: root "
                    "dependence %s is not racy on the failing trace\n",
                    name.c_str(), root.toString().c_str());
        ++errors;
    }
    if (!workload->concurrent() && !oracle.empty()) {
        std::printf("%s: oracle disagrees with the bug catalog: "
                    "sequential bug shows %zu racy pair(s)\n",
                    name.c_str(), oracle.races().size());
        ++errors;
    }
    std::printf("%-12s %-14s lint ok, root %s, %zu racy pair(s)\n",
                name.c_str(),
                workload->concurrent() ? "concurrent bug"
                                       : "sequential bug",
                root_racy ? "racy" : "ordered", oracle.races().size());
    return errors;
}

int
cmdWorkloads(const std::vector<std::string> &args)
{
    registerAllWorkloads();
    std::vector<std::string> names = args;
    if (names.empty())
        names = WorkloadRegistry::instance().names();
    std::size_t errors = 0;
    for (const std::string &name : names) {
        if (!WorkloadRegistry::instance().contains(name)) {
            std::printf("unknown workload: %s\n", name.c_str());
            ++errors;
            continue;
        }
        errors += checkWorkload(name);
    }
    std::printf("%zu workload(s) checked, %zu error(s)\n", names.size(),
                errors);
    return errors == 0 ? kExitClean : kExitFindings;
}

/** All regular files under @p dir with suffix @p suffix, sorted. */
std::vector<std::string>
listFiles(const std::string &dir, const std::string &suffix)
{
    std::vector<std::string> paths;
    DIR *handle = ::opendir(dir.c_str());
    if (handle == nullptr)
        return paths;
    while (const struct dirent *entry = ::readdir(handle)) {
        const std::string name = entry->d_name;
        if (name.size() >= suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
            paths.push_back(dir + "/" + name);
        }
    }
    ::closedir(handle);
    std::sort(paths.begin(), paths.end());
    return paths;
}

/** Whole file into @p out; false when unreadable. */
bool
slurp(const std::string &path, std::string &out)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (file == nullptr)
        return false;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0)
        out.append(buf, n);
    std::fclose(file);
    return true;
}

/**
 * Structural check of the deterministic JSON report: non-empty, one
 * top-level object, balanced braces/brackets outside strings.
 */
bool
jsonBalanced(const std::string &text)
{
    long depth = 0;
    bool in_string = false;
    bool escaped = false;
    bool saw_object = false;
    for (const char c : text) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        switch (c) {
          case '"': in_string = true; break;
          case '{': case '[': ++depth; saw_object = true; break;
          case '}': case ']': --depth; break;
          default: break;
        }
        if (depth < 0)
            return false;
    }
    return depth == 0 && !in_string && saw_object;
}

int
cmdReport(const std::vector<std::string> &args, std::string cache_dir)
{
    if (args.size() != 1) {
        usage();
        return kExitUsage;
    }
    const std::string &dir = args.front();
    std::size_t errors = 0;

    std::string json;
    if (!slurp(dir + "/report.json", json)) {
        std::printf("%s/report.json: unreadable\n", dir.c_str());
        ++errors;
    } else if (!jsonBalanced(json)) {
        std::printf("%s/report.json: malformed (unbalanced structure)\n",
                    dir.c_str());
        ++errors;
    }

    std::vector<ReportRow> rows;
    if (!loadReportCsv(dir + "/report.csv", rows)) {
        std::printf("%s/report.csv: missing or malformed\n", dir.c_str());
        ++errors;
    } else if (rows.empty()) {
        std::printf("%s/report.csv: no data rows\n", dir.c_str());
        ++errors;
    }

    if (cache_dir.empty())
        cache_dir = dir + "/trace-cache";
    const std::vector<std::string> traces = listFiles(cache_dir, ".trc");
    for (const std::string &path : traces) {
        Trace trace;
        if (!readTrace(path, trace)) {
            std::printf("%s: unreadable trace\n", path.c_str());
            ++errors;
            continue;
        }
        errors += emit(path, lintTrace(trace));
    }
    std::printf("%s: %zu csv row(s), %zu cached trace(s), %zu "
                "error(s)\n",
                dir.c_str(), rows.size(), traces.size(), errors);
    return errors == 0 ? kExitClean : kExitFindings;
}

/**
 * Chunk each trace into blocks of @p block_events and run the streaming
 * batch linter over every block — exactly what the fleet service does
 * to ingress blocks under --lint-blocks, so a trace that passes here
 * will not be rejected by a linting fleet.
 */
int
cmdStream(const std::vector<std::string> &args, std::size_t block_events)
{
    if (args.empty() || block_events == 0) {
        usage();
        return kExitUsage;
    }
    std::size_t errors = 0;
    for (const std::string &path : args) {
        Trace trace;
        if (!readTrace(path, trace)) {
            std::printf("%s: unreadable (missing, truncated or not a "
                        "trace file)\n",
                        path.c_str());
            ++errors;
            continue;
        }
        const std::span<const TraceEvent> events(trace.events());
        std::size_t blocks = 0;
        for (std::size_t offset = 0; offset < events.size();
             offset += block_events) {
            const std::size_t count =
                std::min(block_events, events.size() - offset);
            errors += emit(
                path + " block " + std::to_string(blocks),
                lintEventBatch(events.subspan(offset, count)));
            ++blocks;
        }
        std::printf("%s: %zu event(s) in %zu block(s) of up to %zu\n",
                    path.c_str(), events.size(), blocks, block_events);
    }
    return errors == 0 ? kExitClean : kExitFindings;
}

/** Trace mode of `analyze`: single-trace pipeline, full findings. */
int
cmdAnalyzeTraces(const std::vector<std::string> &args, unsigned jobs)
{
    std::size_t errors = 0;
    for (const std::string &path : args) {
        Trace trace;
        if (!readTrace(path, trace)) {
            std::printf("%s: unreadable (missing, truncated or not a "
                        "trace file)\n",
                        path.c_str());
            ++errors;
            continue;
        }
        PipelineOptions options;
        options.jobs = jobs;
        const PipelineResult result = runAnalysisPipeline(trace, options);
        std::printf("%s: %zu event(s), %zu finding(s), %zu racy "
                    "pair(s)\n",
                    path.c_str(), trace.size(), result.report.size(),
                    result.races.races().size());
        std::fputs(result.toText().c_str(), stdout);
    }
    return errors == 0 ? kExitClean : kExitFindings;
}

/**
 * Workload mode of `analyze`: mine atomicity/order baselines from
 * passing runs (same seed base the diagnosis pipeline trains on),
 * analyse the failing run, and check the verdicts against the bug
 * catalog. Returns the number of disagreements.
 */
std::size_t
analyzeWorkload(const std::string &name, unsigned jobs)
{
    constexpr std::uint64_t kMineSeedBase = 100;
    constexpr std::size_t kMineTraces = 10;

    const auto workload = makeWorkload(name);
    std::size_t errors = 0;

    MinedBaselines baselines;
    for (std::size_t i = 0; i < kMineTraces; ++i) {
        WorkloadParams params;
        params.seed = kMineSeedBase + i;
        baselines.addPassingTrace(workload->record(params));
    }

    const bool has_bug = workload->failureKind() != FailureKind::kNone;
    WorkloadParams failing;
    failing.seed = 999;
    failing.trigger_failure = has_bug;
    const Trace trace = workload->record(failing);

    PipelineOptions options;
    options.jobs = jobs;
    options.baselines = &baselines;
    const PipelineResult result = runAnalysisPipeline(trace, options);

    char counts[128];
    std::snprintf(counts, sizeof(counts),
                  "lockset=%llu lockorder=%llu atomicity=%llu "
                  "order=%llu hb=%zu",
                  static_cast<unsigned long long>(
                      result.report.countFor(DetectorKind::kLockset)),
                  static_cast<unsigned long long>(
                      result.report.countFor(DetectorKind::kLockOrder)),
                  static_cast<unsigned long long>(
                      result.report.countFor(DetectorKind::kAtomicity)),
                  static_cast<unsigned long long>(
                      result.report.countFor(DetectorKind::kOrder)),
                  result.races.races().size());

    if (!has_bug) {
        // Prediction kernels have no catalog entry; informational only.
        std::printf("%-12s kernel         %s\n", name.c_str(), counts);
        return errors;
    }

    const RawDependence root = workload->buggyDependence();
    std::string flagged_by;
    for (std::size_t d = 0; d < kDetectorCount; ++d) {
        const auto kind = static_cast<DetectorKind>(d);
        if (result.report.matchesPair(kind, root.store_pc,
                                      root.load_pc)) {
            if (!flagged_by.empty())
                flagged_by += '+';
            flagged_by += detectorName(kind);
        }
    }
    if (result.races.isRacy(root)) {
        if (!flagged_by.empty())
            flagged_by += '+';
        flagged_by += "hb";
    }

    // Catalog agreement: the bug's own detector class must flag the
    // root dependence; sequential bugs must produce no findings.
    switch (workload->bugClass()) {
    case BugClass::kAtomicityViolation:
        if (!result.report.matchesPair(DetectorKind::kAtomicity,
                                       root.store_pc, root.load_pc)) {
            std::printf("%s: catalog disagreement: atomicity bug not "
                        "flagged by the atomicity detector on root %s\n",
                        name.c_str(), root.toString().c_str());
            ++errors;
        }
        break;
    case BugClass::kOrderViolation:
        if (!result.report.matchesPair(DetectorKind::kOrder,
                                       root.store_pc, root.load_pc)) {
            std::printf("%s: catalog disagreement: order bug not "
                        "flagged by the order detector on root %s\n",
                        name.c_str(), root.toString().c_str());
            ++errors;
        }
        break;
    default:
        if (!result.report.empty()) {
            std::printf("%s: catalog disagreement: sequential bug "
                        "shows %zu concurrency finding(s)\n",
                        name.c_str(), result.report.size());
            ++errors;
        }
        break;
    }
    if (workload->concurrent() &&
        !result.report.matchesPairAny(root.store_pc, root.load_pc)) {
        std::printf("%s: catalog disagreement: no detector flags the "
                    "root dependence %s\n",
                    name.c_str(), root.toString().c_str());
        ++errors;
    }

    std::printf("%-12s %-14s %s root=%s\n", name.c_str(),
                workload->concurrent() ? "concurrent bug"
                                       : "sequential bug",
                counts,
                flagged_by.empty() ? "clean" : flagged_by.c_str());
    return errors;
}

int
cmdAnalyze(const std::vector<std::string> &args, unsigned jobs)
{
    // Any .trc argument selects trace mode (and then all must be .trc).
    const auto isTraceFile = [](const std::string &arg) {
        const std::string suffix = ".trc";
        return arg.size() >= suffix.size() &&
               arg.compare(arg.size() - suffix.size(), suffix.size(),
                           suffix) == 0;
    };
    const bool trace_mode =
        !args.empty() && std::any_of(args.begin(), args.end(),
                                     isTraceFile);
    if (trace_mode) {
        if (!std::all_of(args.begin(), args.end(), isTraceFile)) {
            std::fprintf(stderr, "analyze: mixing .trc files and "
                                 "workload names is not supported\n");
            return kExitUsage;
        }
        return cmdAnalyzeTraces(args, jobs);
    }

    registerAllWorkloads();
    std::vector<std::string> names = args;
    if (names.empty())
        names = WorkloadRegistry::instance().names();
    std::size_t errors = 0;
    for (const std::string &name : names) {
        if (!WorkloadRegistry::instance().contains(name)) {
            std::printf("unknown workload: %s\n", name.c_str());
            ++errors;
            continue;
        }
        errors += analyzeWorkload(name, jobs);
    }
    std::printf("%zu workload(s) analysed, %zu disagreement(s)\n",
                names.size(), errors);
    return errors == 0 ? kExitClean : kExitFindings;
}

int
cmdCatalog(const std::vector<std::string> &args)
{
    if (args.empty()) {
        usage();
        return kExitUsage;
    }
    std::size_t errors = 0;
    std::size_t valid = 0;
    for (const std::string &path : args) {
        std::string json;
        if (!slurp(path, json)) {
            std::printf("%s: unreadable\n", path.c_str());
            ++errors;
            continue;
        }
        const std::vector<Finding> findings =
            corpus::validateCatalog(json);
        errors += emit(path, findings);
        if (errorCount(findings) == 0)
            ++valid;
    }
    std::printf("%zu catalog(s) checked, %zu valid, %zu error(s)\n",
                args.size(), valid, errors);
    return errors == 0 ? kExitClean : kExitFindings;
}

int
cmdConfig()
{
    const ActConfig config;
    std::size_t errors = 0;
    const PairEncoder pair;
    const DictionaryEncoder dictionary(64);
    const HashEncoder hash;
    const struct
    {
        const char *name;
        const DependenceEncoder *encoder;
    } encoders[] = {{"pair", &pair},
                    {"dictionary", &dictionary},
                    {"hash", &hash}};
    for (const auto &[name, encoder] : encoders) {
        ActConfig adjusted = config;
        // Each encoder implies its own input width for the same N.
        adjusted.topology.inputs =
            config.sequence_length * encoder->width();
        errors += emit(std::string("default ActConfig (") + name + ")",
                       validateActConfig(adjusted, encoder->width()));
    }
    if (errors == 0)
        std::printf("default ActConfig: ok for all encoders\n");
    return errors == 0 ? kExitClean : kExitFindings;
}

int
cmdWeights(const std::vector<std::string> &args, bool ensemble)
{
    if (args.size() != 1) {
        usage();
        return kExitUsage;
    }
    const std::string &path = args.front();
    WeightStore store;
    if (!store.load(path)) {
        std::printf("%s: unreadable weight store\n", path.c_str());
        return kExitUsage;
    }
    std::vector<Finding> findings =
        ensemble ? validateWeightStoreEnsemble(store)
                 : validateWeightStore(store);
    // Hygiene pass over the member-0 sets: denormal / Q15.16-underflow
    // warnings the hot path tolerates but a deployment should notice.
    // (The ensemble path already runs the strict checks on the member
    // sets; strict repeats the base errors, so keep only its warnings.)
    for (const ThreadId tid : store.tids()) {
        const auto weights = store.get(tid);
        if (!weights)
            continue;
        for (const Finding &finding :
             validateWeightsStrict(store.topology(), *weights,
                                   "tid " + std::to_string(tid))) {
            if (finding.severity == Severity::kWarning)
                findings.push_back(finding);
        }
    }
    const std::size_t errors = emit(path, findings);
    std::printf("%s: %zu thread weight set(s), %zu ensemble member "
                "set(s), topology %zux%zu, %zu error(s)\n",
                path.c_str(), store.size(), store.memberIds().size(),
                store.topology().inputs, store.topology().hidden,
                errors);
    return errors == 0 ? kExitClean : kExitFindings;
}

int
run(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return kExitUsage;
    }
    const std::string command = argv[1];

    bool show_races = false;
    bool ensemble = false;
    std::string cache_dir;
    std::size_t block_events = 512;
    unsigned pipeline_jobs = 1;
    std::vector<std::string> args;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--races") {
            show_races = true;
        } else if (arg == "--ensemble") {
            ensemble = true;
        } else if (arg == "--cache" && i + 1 < argc) {
            cache_dir = argv[++i];
        } else if (arg == "--block" && i + 1 < argc) {
            block_events =
                static_cast<std::size_t>(std::strtoull(argv[++i],
                                                       nullptr, 10));
        } else if (arg == "--jobs" && i + 1 < argc) {
            pipeline_jobs =
                static_cast<unsigned>(std::strtoul(argv[++i],
                                                   nullptr, 10));
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
            return kExitUsage;
        } else {
            args.push_back(arg);
        }
    }

    if (command == "trace")
        return cmdTrace(args, show_races);
    if (command == "workloads")
        return cmdWorkloads(args);
    if (command == "report")
        return cmdReport(args, cache_dir);
    if (command == "stream")
        return cmdStream(args, block_events);
    if (command == "analyze")
        return cmdAnalyze(args, pipeline_jobs);
    if (command == "catalog")
        return cmdCatalog(args);
    if (command == "config")
        return cmdConfig();
    if (command == "weights")
        return cmdWeights(args, ensemble);
    usage();
    return kExitUsage;
}

} // namespace
} // namespace act

int
main(int argc, char **argv)
{
    return act::run(argc, argv);
}
