/**
 * @file
 * actfleet — driver for the fleet-scale streaming diagnosis service.
 *
 * Subcommands:
 *   run        stream the configured client fleet through the shard
 *              pipeline and print the final diagnosis report (epoch
 *              reports go to stdout when --epoch > 0)
 *   bench      same, but duration-driven by default, and prints a
 *              machine-readable throughput line (events/s) plus the
 *              fleet telemetry counters
 *   validate   determinism gate: the final report of the streaming
 *              service must be byte-identical across --shards and
 *              --shards 1 AND to the sequential batch replay of the
 *              same configuration
 *
 * Common flags:
 *   --clients N        simulated client processes        (default 8)
 *   --shards N         diagnosis shards                  (default 2)
 *   --seed S           base seed (client i uses S + i)   (default 1)
 *   --workload NAME    fix one workload (default: rotate the
 *                      prediction-kernel catalog)
 *   --scale N          workload scale multiplier         (default 1)
 *   --repeat N         re-streams per client             (default 1)
 *   --duration SECS    stream until deadline instead of repeat
 *   --epoch SECS       incremental-report period (0 = off)
 *   --backpressure P   block | shed                      (default block)
 *   --block-events N   events per ingress block          (default 512)
 *   --queue-blocks N   ingress queue capacity            (default 64)
 *   --batch N          staged inferences per NN batch    (default 64)
 *   --top K            suspects printed in the report    (default 10)
 *   --front F          tracker | mem                     (default tracker)
 *   --lint-blocks      batch-lint every ingested block
 *   --lockset-blocks   per-client online lockset race detection; the
 *                      distinct finding count lands in the report
 *   --ensemble K       member networks per shard engine  (default 1);
 *                      members share the hidden-neuron budget, and a
 *                      sequence is flagged only on a quorum of
 *                      invalid votes
 *   --quorum Q         invalid votes needed to flag (0 = majority)
 *
 * Exit status: 0 = ok, 1 = validation mismatch, 2 = usage error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fleet/service.hh"
#include "telemetry/metrics.hh"

namespace act::fleet
{
namespace
{

constexpr int kExitOk = 0;
constexpr int kExitMismatch = 1;
constexpr int kExitUsage = 2;

void
usage()
{
    std::fprintf(
        stderr,
        "usage: actfleet <run|bench|validate> [flags]\n"
        "  --clients N --shards N --seed S --workload NAME --scale N\n"
        "  --repeat N --duration SECS --epoch SECS\n"
        "  --backpressure block|shed --block-events N --queue-blocks N\n"
        "  --batch N --top K --front tracker|mem --lint-blocks\n"
        "  --lockset-blocks --ensemble K --quorum Q\n");
}

bool
parseU64(const char *text, std::uint64_t &out)
{
    char *end = nullptr;
    out = std::strtoull(text, &end, 10);
    return end != text && *end == '\0';
}

bool
parseDouble(const char *text, double &out)
{
    char *end = nullptr;
    out = std::strtod(text, &end);
    return end != text && *end == '\0' && out >= 0.0;
}

/** Parse flags into @p config; returns false on a usage error. */
bool
parseFlags(int argc, char **argv, FleetConfig &config)
{
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        std::uint64_t u64 = 0;
        double f64 = 0.0;
        if (arg == "--lint-blocks") {
            config.lint_blocks = true;
        } else if (arg == "--lockset-blocks") {
            config.lockset_blocks = true;
        } else if (!has_value) {
            std::fprintf(stderr, "flag needs a value: %s\n", arg.c_str());
            return false;
        } else if (arg == "--clients" && parseU64(argv[++i], u64)) {
            config.clients = static_cast<std::uint32_t>(u64);
        } else if (arg == "--shards" && parseU64(argv[++i], u64)) {
            config.shards = static_cast<std::uint32_t>(u64);
        } else if (arg == "--seed" && parseU64(argv[++i], u64)) {
            config.seed = u64;
        } else if (arg == "--workload") {
            config.workload = argv[++i];
        } else if (arg == "--scale" && parseU64(argv[++i], u64)) {
            config.scale = static_cast<std::uint32_t>(u64);
        } else if (arg == "--repeat" && parseU64(argv[++i], u64)) {
            config.repeat = static_cast<std::uint32_t>(u64);
        } else if (arg == "--duration" && parseDouble(argv[++i], f64)) {
            config.duration_s = f64;
        } else if (arg == "--epoch" && parseDouble(argv[++i], f64)) {
            config.epoch_s = f64;
        } else if (arg == "--backpressure") {
            const std::string policy = argv[++i];
            if (policy == "block") {
                config.backpressure = Backpressure::kBlock;
            } else if (policy == "shed") {
                config.backpressure = Backpressure::kShed;
            } else {
                std::fprintf(stderr, "unknown backpressure policy: %s\n",
                             policy.c_str());
                return false;
            }
        } else if (arg == "--block-events" && parseU64(argv[++i], u64)) {
            config.block_events = u64;
        } else if (arg == "--queue-blocks" && parseU64(argv[++i], u64)) {
            config.queue_blocks = u64;
        } else if (arg == "--batch" && parseU64(argv[++i], u64)) {
            config.batch_max = u64;
        } else if (arg == "--top" && parseU64(argv[++i], u64)) {
            config.top_k = u64;
        } else if (arg == "--ensemble" && parseU64(argv[++i], u64)) {
            config.ensemble_members = static_cast<std::uint32_t>(u64);
        } else if (arg == "--quorum" && parseU64(argv[++i], u64)) {
            config.ensemble_quorum = static_cast<std::uint32_t>(u64);
        } else if (arg == "--front") {
            const std::string front = argv[++i];
            if (front == "tracker") {
                config.front = FrontEnd::kTracker;
            } else if (front == "mem") {
                config.front = FrontEnd::kMem;
            } else {
                std::fprintf(stderr, "unknown front-end: %s\n",
                             front.c_str());
                return false;
            }
        } else {
            std::fprintf(stderr, "bad flag or value: %s\n", arg.c_str());
            return false;
        }
    }
    return true;
}

int
cmdRun(const FleetConfig &config)
{
    const FleetResult result = runFleetService(config, stdout);
    std::fputs(result.report.toText(config.top_k).c_str(), stdout);
    std::printf("wall %.3fs, %llu epoch report(s)\n", result.wall_s,
                static_cast<unsigned long long>(result.epochs));
    return kExitOk;
}

int
cmdBench(FleetConfig config)
{
    // Bench defaults: duration-driven unless the caller pinned one, so
    // throughput is measured over a steady streaming window.
    if (config.duration_s <= 0.0 && config.repeat == 1)
        config.repeat = 0, config.duration_s = 2.0;

    const FleetResult result = runFleetService(config, nullptr);
    const double events_per_s =
        result.wall_s > 0.0
            ? static_cast<double>(result.report.totals.events) /
                  result.wall_s
            : 0.0;
    std::printf("fleet_events_per_s %.0f\n", events_per_s);
    std::printf("fleet_events %llu\nfleet_wall_s %.3f\n",
                static_cast<unsigned long long>(
                    result.report.totals.events),
                result.wall_s);
    std::printf("fleet_dropped_events %llu\nfleet_dropped_blocks %llu\n",
                static_cast<unsigned long long>(
                    result.report.totals.events_dropped),
                static_cast<unsigned long long>(
                    result.report.totals.blocks_dropped));

    const auto snapshot = telemetry::MetricsRegistry::global().snapshot();
    for (const auto &[name, value] : snapshot.volatile_counters) {
        if (name.rfind("fleet.", 0) == 0)
            std::printf("%s %llu\n", name.c_str(),
                        static_cast<unsigned long long>(value));
    }
    return kExitOk;
}

int
cmdValidate(FleetConfig config)
{
    // The contract only holds for lossless, repeat-bounded streaming.
    if (config.backpressure != Backpressure::kBlock ||
        config.duration_s > 0.0 || config.repeat == 0) {
        std::fprintf(stderr, "validate requires --backpressure block "
                             "and a repeat count, not a duration\n");
        return kExitUsage;
    }

    const std::string streamed =
        runFleetService(config, nullptr).report.toText(config.top_k);

    FleetConfig single = config;
    single.shards = 1;
    const std::string single_shard =
        runFleetService(single, nullptr).report.toText(config.top_k);

    const std::string batch =
        replayFleetBatch(config).report.toText(config.top_k);

    bool ok = true;
    if (streamed != single_shard) {
        std::printf("MISMATCH: shards %u vs 1\n--- shards %u ---\n%s"
                    "--- shards 1 ---\n%s",
                    config.shards, config.shards, streamed.c_str(),
                    single_shard.c_str());
        ok = false;
    }
    if (streamed != batch) {
        std::printf("MISMATCH: streaming vs batch replay\n"
                    "--- streaming ---\n%s--- batch ---\n%s",
                    streamed.c_str(), batch.c_str());
        ok = false;
    }
    if (ok) {
        std::printf("ok: %u clients, shards %u == shards 1 == batch "
                    "replay (%zu bytes)\n",
                    config.clients, config.shards, streamed.size());
    }
    return ok ? kExitOk : kExitMismatch;
}

int
run(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return kExitUsage;
    }
    const std::string command = argv[1];
    FleetConfig config;
    if (!parseFlags(argc, argv, config)) {
        usage();
        return kExitUsage;
    }

    // The service's ingest/drop counters must always be observable —
    // the never-silent backpressure contract depends on it.
    telemetry::MetricsRegistry::global().setEnabled(true);

    if (command == "run")
        return cmdRun(config);
    if (command == "bench")
        return cmdBench(config);
    if (command == "validate")
        return cmdValidate(config);
    usage();
    return kExitUsage;
}

} // namespace
} // namespace act::fleet

int
main(int argc, char **argv)
{
    return act::fleet::run(argc, argv);
}
