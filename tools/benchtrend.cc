/**
 * @file
 * benchtrend — the repo's benchmark-trajectory harness.
 *
 * Runs the simulate→track→infer micro hot paths (the same inner loops
 * `bench/micro_hotpaths` times under google-benchmark) plus the
 * offline concurrency detectors of the analysis pipeline with a
 * self-calibrating best-of-N driver, plus three coarse wall-clock
 * measurements (the smoke campaign, a reduced Figure 8 overhead run,
 * and the fleet streaming service), and writes the results as
 * machine-readable JSON (`BENCH_PR10.json` by default). The smoke
 * campaign and the fleet run execute with the telemetry registry
 * enabled and report counter-derived throughput (simulated events/s,
 * fleet ingest events/s) in the report's `telemetry` section — those
 * rows are context, never CI gates.
 *
 * With `--check` it also loads a committed baseline
 * (`bench/BENCH_BASELINE.json`) and fails — exit 1 — when any micro
 * hot path regressed by more than the threshold, making per-PR
 * performance a CI gate rather than folklore.
 *
 * Exit codes: 0 = ok, 1 = threshold regression, 2 = usage or
 * measurement error, 3 = the --check baseline is missing or
 * unparsable (checked up front, before any bench runs).
 *
 * Usage:
 *   benchtrend [--out FILE] [--baseline FILE] [--check]
 *              [--threshold FRACTION] [--filter SUBSTRING] [--quick]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "act/act_module.hh"
#include "analysis/pipeline.hh"
#include "bench/bench_json.hh"
#include "corpus/catalog.hh"
#include "corpus/corpus.hh"
#include "fleet/service.hh"
#include "deps/input_generator.hh"
#include "diagnosis/pipeline.hh"
#include "runner/campaign.hh"
#include "runner/runner.hh"
#include "sim/memsys.hh"
#include "sim/system.hh"
#include "telemetry/metrics.hh"
#include "trace/io.hh"
#include "workloads/kernel.hh"
#include "workloads/workload.hh"

namespace act
{
namespace
{

using bench::keep;
using bench::MicroHarness;
using bench::MicroResult;

struct Options
{
    std::string out = "BENCH_PR10.json";
    std::string baseline = "bench/BENCH_BASELINE.json";
    bool check = false;
    double threshold = 0.30;
    std::string filter;
    bool quick = false;
};

std::string
tempTracePath()
{
    const char *dir = std::getenv("TMPDIR");
    std::string base = dir != nullptr ? dir : "/tmp";
    if (!base.empty() && base.back() != '/')
        base += '/';
    return base + "act_benchtrend_scratch.trc";
}

/** A deterministic mixed load/store event stream for the micro loops. */
Trace
syntheticTrace(std::size_t events, std::uint32_t threads)
{
    Trace trace;
    Rng rng(0xbe7c4);
    TraceEvent event;
    for (std::size_t i = 0; i < events; ++i) {
        event.tid = static_cast<ThreadId>(rng.next(threads));
        event.addr = 0x1000 + rng.next(4096) * 4;
        event.kind =
            rng.chance(0.3) ? EventKind::kStore : EventKind::kLoad;
        event.pc = 0x400000 + (event.addr & 0xfff);
        event.gap = static_cast<std::uint16_t>(rng.next(8));
        trace.append(event);
    }
    return trace;
}

/**
 * A lock-rich shared-memory stream for the detector benches: threads
 * take one of two locks (inconsistently nested now and then), touch a
 * shared working set, and occasionally skip the lock — so every
 * detector does real state-machine work instead of fast-pathing.
 */
Trace
detectorTrace(std::size_t events, std::uint32_t threads)
{
    Trace trace;
    Rng rng(0xd37ec7);
    for (std::size_t i = 0; i < events; ++i) {
        TraceEvent event;
        event.tid = static_cast<ThreadId>(rng.next(threads));
        const Addr lock_a = 0x100 + (event.tid % 2) * 0x10;
        const Addr lock_b = 0x100 + ((event.tid + 1) % 2) * 0x10;
        const bool locked = rng.chance(0.8);
        if (locked) {
            event.kind = EventKind::kLock;
            event.addr = lock_a;
            event.pc = 0x500000 + event.tid;
            trace.append(event);
            if (rng.chance(0.1)) {
                event.addr = lock_b;
                trace.append(event);
            }
        }
        event.addr = 0x1000 + rng.next(512) * 8;
        event.kind =
            rng.chance(0.4) ? EventKind::kStore : EventKind::kLoad;
        event.pc = 0x400000 + (event.addr & 0xfff);
        trace.append(event);
        if (locked) {
            event.kind = EventKind::kUnlock;
            event.addr = lock_b;
            event.pc = 0x500100 + event.tid;
            trace.append(event);
            event.addr = lock_a;
            trace.append(event);
        }
    }
    return trace;
}

// --- Micro hot paths ------------------------------------------------

MicroResult
benchTrackerObserve(const MicroHarness &harness)
{
    // One iteration = one store + one dependent load (2 events), the
    // exact BM_TrackerObserve loop.
    return harness.run("tracker_observe", 2.0, [](std::uint64_t iters) {
        DependenceTracker tracker;
        Rng rng(2);
        TraceEvent store;
        store.kind = EventKind::kStore;
        TraceEvent load;
        load.kind = EventKind::kLoad;
        for (std::uint64_t i = 0; i < iters; ++i) {
            const Addr addr = 0x1000 + rng.next(1024) * 4;
            store.addr = addr;
            store.pc = 0x100 + (addr & 0xff);
            tracker.observe(store);
            load.addr = addr;
            load.pc = store.pc + 4;
            auto dep = tracker.observe(load);
            keep(dep);
        }
    });
}

MicroResult
benchMemsysAccess(const MicroHarness &harness)
{
    return harness.run("memsys_access", 1.0, [](std::uint64_t iters) {
        MemorySystem mem((MemSystemConfig()));
        Rng rng(3);
        TraceEvent event;
        for (std::uint64_t i = 0; i < iters; ++i) {
            event.tid = static_cast<ThreadId>(rng.next(4));
            event.addr = 0x1000 + rng.next(4096) * 4;
            event.kind =
                rng.chance(0.3) ? EventKind::kStore : EventKind::kLoad;
            auto access = mem.access(event.tid % 8, event);
            keep(access.latency);
        }
    });
}

MicroResult
benchEncoder(const MicroHarness &harness)
{
    return harness.run("encoder_encode", 1.0, [](std::uint64_t iters) {
        PairEncoder encoder;
        std::vector<double> out;
        Rng rng(7);
        for (std::uint64_t i = 0; i < iters; ++i) {
            const Pc load = 0x401000 + rng.next(256) * 4;
            const RawDependence dep{load - 4 - rng.next(64) * 4, load,
                                    false};
            out.clear();
            encoder.encode(dep, out);
            keep(out.data());
        }
    });
}

MicroResult
benchInputGenerator(const MicroHarness &harness, const Trace &trace)
{
    // One iteration = one full pass over the synthetic trace.
    return harness.run("input_generator_process",
                       static_cast<double>(trace.size()),
                       [&trace](std::uint64_t iters) {
                           const InputGenerator generator(3);
                           for (std::uint64_t i = 0; i < iters; ++i) {
                               auto seqs = generator.process(trace);
                               keep(seqs.dependence_count);
                           }
                       });
}

MicroResult
benchHwInfer(const MicroHarness &harness)
{
    return harness.run("hw_infer", 1.0, [](std::uint64_t iters) {
        Rng rng(1);
        MlpNetwork proto(Topology{6, 10}, rng);
        HwNeuralNetwork hw(HwNetworkConfig{}, Topology{6, 10});
        hw.loadWeights(proto.weights());
        std::vector<double> in;
        for (std::size_t i = 0; i < 6; ++i)
            in.push_back(rng.uniform(-2, 2));
        for (std::uint64_t i = 0; i < iters; ++i) {
            const double out = hw.infer(in);
            keep(out);
        }
    });
}

MicroResult
benchActModule(const MicroHarness &harness)
{
    return harness.run(
        "act_on_dependence", 1.0, [](std::uint64_t iters) {
            ActConfig config;
            config.sequence_length = 3;
            config.topology = Topology{6, 10};
            PairEncoder encoder;
            ActModule module(config, encoder);
            WeightStore store(config.topology);
            store.set(0,
                      std::vector<double>(store.weightCount(), 0.1));
            module.initThread(0, store);
            Rng rng(4);
            Cycle cycle = 0;
            for (std::uint64_t i = 0; i < iters; ++i) {
                const Pc load = 0x401004 + rng.next(64) * 8;
                auto outcome = module.onDependence(
                    RawDependence{load - 4, load, false}, 0,
                    cycle += 50);
                keep(outcome.output);
            }
        });
}

MicroResult
benchEnsembleInfer(const MicroHarness &harness)
{
    // The Adaptivity 2.0 hot path: a K=3 ensemble module classifying
    // in testing mode. Each onDependence runs three member forward
    // passes plus the quorum vote, so events/s here against
    // act_on_dependence directly prices the ensemble multiplier.
    return harness.run(
        "ensemble_infer", 1.0, [](std::uint64_t iters) {
            ActConfig config;
            config.sequence_length = 3;
            config.topology = Topology{6, 3}; // K=3 x h=3 <= M=10.
            config.ensemble.members = 3;
            PairEncoder encoder;
            ActModule module(config, encoder);
            WeightStore store(config.topology);
            store.set(0,
                      std::vector<double>(store.weightCount(), 0.1));
            module.initThread(0, store);
            Rng rng(4);
            Cycle cycle = 0;
            for (std::uint64_t i = 0; i < iters; ++i) {
                const Pc load = 0x401004 + rng.next(64) * 8;
                auto outcome = module.onDependence(
                    RawDependence{load - 4, load, false}, 0,
                    cycle += 50);
                keep(outcome.output);
            }
        });
}

MicroResult
benchTraceIo(const MicroHarness &harness, const Trace &trace)
{
    const std::string path = tempTracePath();
    MicroResult result = harness.run(
        "trace_io_roundtrip", static_cast<double>(trace.size()),
        [&trace, &path](std::uint64_t iters) {
            Trace loaded;
            for (std::uint64_t i = 0; i < iters; ++i) {
                if (!writeTrace(trace, path) ||
                    !readTrace(path, loaded)) {
                    std::fprintf(stderr,
                                 "benchtrend: trace roundtrip failed\n");
                    std::exit(2);
                }
                keep(loaded.size());
            }
        });
    std::remove(path.c_str());
    return result;
}

// One iteration of each detector bench = one full pass over the
// lock-rich synthetic trace, so events/s is directly comparable
// across the four detectors and the merged pipeline.

MicroResult
benchLocksetDetect(const MicroHarness &harness, const Trace &trace)
{
    return harness.run("lockset_detect",
                       static_cast<double>(trace.size()),
                       [&trace](std::uint64_t iters) {
                           for (std::uint64_t i = 0; i < iters; ++i) {
                               const auto report =
                                   detectLocksetRaces(trace);
                               keep(report.size());
                           }
                       });
}

MicroResult
benchLockOrderDetect(const MicroHarness &harness, const Trace &trace)
{
    return harness.run("lockorder_detect",
                       static_cast<double>(trace.size()),
                       [&trace](std::uint64_t iters) {
                           for (std::uint64_t i = 0; i < iters; ++i) {
                               const auto report =
                                   detectLockOrderCycles(trace);
                               keep(report.size());
                           }
                       });
}

MicroResult
benchAtomicityDetect(const MicroHarness &harness, const Trace &trace)
{
    return harness.run("atomicity_detect",
                       static_cast<double>(trace.size()),
                       [&trace](std::uint64_t iters) {
                           for (std::uint64_t i = 0; i < iters; ++i) {
                               const auto report =
                                   detectAtomicityViolations(trace);
                               keep(report.size());
                           }
                       });
}

MicroResult
benchOrderCheck(const MicroHarness &harness, const Trace &trace)
{
    return harness.run("order_check",
                       static_cast<double>(trace.size()),
                       [&trace](std::uint64_t iters) {
                           for (std::uint64_t i = 0; i < iters; ++i) {
                               const auto report =
                                   checkOrderViolations(trace);
                               keep(report.size());
                           }
                       });
}

MicroResult
benchAnalysisPipeline(const MicroHarness &harness, const Trace &trace)
{
    // All five lenses, sequential: the per-trace cost `actrun
    // --analyze` pays for each cached trace.
    return harness.run("analysis_pipeline",
                       static_cast<double>(trace.size()),
                       [&trace](std::uint64_t iters) {
                           for (std::uint64_t i = 0; i < iters; ++i) {
                               const auto result =
                                   runAnalysisPipeline(trace);
                               keep(result.report.size());
                           }
                       });
}

MicroResult
benchCorpusGen(const MicroHarness &harness)
{
    // One iteration = one corpus variant's site mining + catalog
    // serialise/parse/validate round trip — the per-variant cost
    // `actgen gen` and `actlint catalog` pay, minus the file I/O.
    return harness.run("corpus_gen", 1.0, [](std::uint64_t iters) {
        for (std::uint64_t i = 0; i < iters; ++i) {
            const auto workload =
                corpus::makeCorpusWorkload("corpus/lu/removed-lock/7");
            const std::string json =
                corpus::catalogJson(workload->catalog());
            corpus::CorpusCatalog parsed;
            keep(corpus::parseCatalogJson(json, parsed));
            keep(corpus::validateCatalog(json).size());
        }
    });
}

// --- Wall-clock measurements ----------------------------------------

double
wallMs(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

bench::WallClockResult
runSmokeCampaign(std::vector<bench::TelemetryEntry> &telemetry)
{
    // Run the campaign with the metrics registry live so the reported
    // throughput comes from the same counters `actrun --metrics-out`
    // exports, not from harness-side arithmetic. The registry
    // accumulates process-wide, so rates come from a before/after diff.
    auto &reg = act::telemetry::MetricsRegistry::global();
    const bool was_enabled = reg.enabled();
    reg.setEnabled(true);
    const act::telemetry::Snapshot before = reg.snapshot();

    RunOptions options;
    options.jobs = 0; // all cores; wall-clock trend only, never gated
    const auto t0 = std::chrono::steady_clock::now();
    const CampaignRunResult run =
        runCampaign(makeCampaign("smoke"), options);
    bench::WallClockResult result;
    result.name = "campaign_smoke";
    result.ms = wallMs(t0);
    if (run.results.empty()) {
        std::fprintf(stderr, "benchtrend: smoke campaign ran no jobs\n");
        std::exit(2);
    }

    const act::telemetry::Snapshot delta =
        act::telemetry::diffSnapshots(reg.snapshot(), before);
    reg.setEnabled(was_enabled);
    const double seconds = result.ms / 1000.0;
    const auto rate = [&](const char *name, const char *counter) {
        if (seconds <= 0.0)
            return;
        telemetry.push_back(
            {name, static_cast<double>(delta.counterValue(counter)) /
                       seconds});
    };
    rate("campaign_smoke_sim_events_per_s", "sim.events");
    rate("campaign_smoke_dependences_per_s", "act.dependences");
    telemetry.push_back(
        {"campaign_smoke_jobs_ok",
         static_cast<double>(delta.counterValue("runner.jobs_ok"))});
    return result;
}

bench::WallClockResult
runFig8Mini()
{
    // A reduced Figure 8 overhead measurement: one prediction kernel,
    // short offline training, then the baseline-vs-ACT simulation of
    // the full production trace. Tracks the simulate→track→infer path
    // end to end without the full bench's minutes-long sweep.
    const auto names = predictionKernelNames();
    const auto workload = makeWorkload(names.front());

    const auto t0 = std::chrono::steady_clock::now();
    PairEncoder encoder;
    OfflineTrainingConfig training;
    training.traces = 2;
    training.max_examples = 4000;
    training.trainer.max_epochs = 40;
    const TrainedModel model = offlineTrain(*workload, encoder, training);

    WorkloadParams params;
    params.seed = 300;
    const Trace trace = workload->record(params);

    SystemConfig config;
    config.act_enabled = false;
    System baseline(config);
    baseline.run(trace);

    config.act_enabled = true;
    config.act.topology = model.topology;
    WeightStore store(model.topology);
    store.setAll(workload->threadCount(), model.weights);
    System with_act(config, encoder, store);
    with_act.run(trace);
    keep(with_act.stats().cycles);

    bench::WallClockResult result;
    result.name = "fig8_overhead_mini";
    result.ms = wallMs(t0);
    return result;
}

bench::WallClockResult
runFleetStream(std::vector<bench::TelemetryEntry> &telemetry,
               bool quick)
{
    // The fleet streaming service end to end: record, stream through
    // the shard pipeline, merge. Work is repeat-bounded (not
    // duration-bounded) so every run ingests the same event total;
    // only the wall clock varies. Trend context, never a gate.
    fleet::FleetConfig config;
    config.clients = 8;
    config.shards = 2;
    config.repeat = quick ? 1 : 3;

    auto &reg = act::telemetry::MetricsRegistry::global();
    const bool was_enabled = reg.enabled();
    reg.setEnabled(true);

    const auto t0 = std::chrono::steady_clock::now();
    const fleet::FleetResult run = fleet::runFleetService(config);
    bench::WallClockResult result;
    result.name = "fleet_stream";
    result.ms = wallMs(t0);
    reg.setEnabled(was_enabled);

    const auto &totals = run.report.totals;
    if (run.wall_s > 0.0) {
        telemetry.push_back(
            {"fleet_stream_events_per_s",
             static_cast<double>(totals.events) / run.wall_s});
        telemetry.push_back(
            {"fleet_stream_predictions_per_s",
             static_cast<double>(totals.predictions) / run.wall_s});
    }
    telemetry.push_back({"fleet_stream_events",
                         static_cast<double>(totals.events)});
    telemetry.push_back({"fleet_stream_dropped_events",
                         static_cast<double>(totals.events_dropped)});
    return result;
}

// --- Driver ----------------------------------------------------------

bool
wantBench(const Options &options, const char *name)
{
    return options.filter.empty() ||
           std::string(name).find(options.filter) != std::string::npos;
}

int
run(const Options &options)
{
    // Validate the --check baseline up front: a misconfigured gate
    // must fail in milliseconds with a usable diagnostic, not after
    // minutes of bench runs — and with an exit code CI can tell apart
    // from a real threshold violation (1) or a usage error (2).
    bench::BenchReport baseline;
    if (options.check) {
        std::FILE *probe = std::fopen(options.baseline.c_str(), "rb");
        const bool exists = probe != nullptr;
        if (probe != nullptr)
            std::fclose(probe);
        if (!loadBenchReport(options.baseline, baseline)) {
            if (!exists) {
                std::fprintf(stderr,
                             "benchtrend: baseline %s does not exist; "
                             "run `benchtrend --out %s` on a known-good "
                             "checkout and commit the result\n",
                             options.baseline.c_str(),
                             options.baseline.c_str());
            } else {
                std::fprintf(stderr,
                             "benchtrend: baseline %s exists but cannot "
                             "be parsed (corrupt file or wrong schema); "
                             "regenerate it with `benchtrend --out %s`\n",
                             options.baseline.c_str(),
                             options.baseline.c_str());
            }
            return 3;
        }
    }

    MicroHarness harness;
    if (options.quick) {
        harness.min_rep_ms = 10.0;
        harness.reps = 3;
    }

    bench::BenchReport report;
#ifdef NDEBUG
    report.build_type = "Release";
#else
    report.build_type = "Debug";
#endif

    const Trace synthetic = syntheticTrace(100000, 4);

    std::printf("%-26s %14s %16s\n", "benchmark", "ns/op", "events/s");
    const auto add = [&report](const MicroResult &result) {
        report.results.push_back(result);
        std::printf("%-26s %14.2f %16.0f\n", result.name.c_str(),
                    result.ns_per_op, result.events_per_s);
    };

    if (wantBench(options, "tracker_observe"))
        add(benchTrackerObserve(harness));
    if (wantBench(options, "memsys_access"))
        add(benchMemsysAccess(harness));
    if (wantBench(options, "encoder_encode"))
        add(benchEncoder(harness));
    if (wantBench(options, "input_generator_process"))
        add(benchInputGenerator(harness, synthetic));
    if (wantBench(options, "hw_infer"))
        add(benchHwInfer(harness));
    if (wantBench(options, "act_on_dependence"))
        add(benchActModule(harness));
    if (wantBench(options, "ensemble_infer"))
        add(benchEnsembleInfer(harness));
    if (wantBench(options, "trace_io_roundtrip"))
        add(benchTraceIo(harness, synthetic));

    const Trace detector_trace = detectorTrace(50000, 4);
    if (wantBench(options, "lockset_detect"))
        add(benchLocksetDetect(harness, detector_trace));
    if (wantBench(options, "lockorder_detect"))
        add(benchLockOrderDetect(harness, detector_trace));
    if (wantBench(options, "atomicity_detect"))
        add(benchAtomicityDetect(harness, detector_trace));
    if (wantBench(options, "order_check"))
        add(benchOrderCheck(harness, detector_trace));
    if (wantBench(options, "analysis_pipeline"))
        add(benchAnalysisPipeline(harness, detector_trace));
    if (wantBench(options, "corpus_gen"))
        add(benchCorpusGen(harness));

    if (wantBench(options, "campaign_smoke")) {
        const auto smoke = runSmokeCampaign(report.telemetry);
        report.wall_clock.push_back(smoke);
        std::printf("%-26s %14s %13.0f ms\n", smoke.name.c_str(), "-",
                    smoke.ms);
        for (const auto &entry : report.telemetry)
            std::printf("%-40s %16.0f\n", entry.name.c_str(),
                        entry.value);
    }
    if (wantBench(options, "fig8_overhead_mini")) {
        const auto fig8 = runFig8Mini();
        report.wall_clock.push_back(fig8);
        std::printf("%-26s %14s %13.0f ms\n", fig8.name.c_str(), "-",
                    fig8.ms);
    }
    if (wantBench(options, "fleet_stream")) {
        const std::size_t first_entry = report.telemetry.size();
        const auto fleet_wall =
            runFleetStream(report.telemetry, options.quick);
        report.wall_clock.push_back(fleet_wall);
        std::printf("%-26s %14s %13.0f ms\n", fleet_wall.name.c_str(),
                    "-", fleet_wall.ms);
        for (std::size_t i = first_entry; i < report.telemetry.size();
             ++i)
            std::printf("%-40s %16.0f\n",
                        report.telemetry[i].name.c_str(),
                        report.telemetry[i].value);
    }

    if (!writeBenchReport(report, options.out)) {
        std::fprintf(stderr, "benchtrend: cannot write %s\n",
                     options.out.c_str());
        return 2;
    }
    std::printf("\nwrote %s\n", options.out.c_str());

    if (!options.check)
        return 0;

    const auto trend =
        bench::compareReports(report, baseline, options.threshold);
    bool regressed = false;
    std::printf("\n%-26s %10s %12s\n", "vs baseline", "ratio", "verdict");
    for (const auto &entry : trend) {
        const char *verdict = entry.regression ? "REGRESSION" : "ok";
        regressed = regressed || entry.regression;
        std::printf("%-26s %9.2fx %12s\n", entry.name.c_str(),
                    entry.ratio, verdict);
    }
    if (trend.empty()) {
        std::fprintf(stderr,
                     "benchtrend: baseline shares no benchmark names "
                     "with this run\n");
        return 2;
    }
    if (regressed) {
        std::fprintf(stderr,
                     "\nbenchtrend: at least one hot path is more than "
                     "%.0f%% slower than %s\n",
                     options.threshold * 100.0,
                     options.baseline.c_str());
        return 1;
    }
    std::printf("\nno regressions beyond %.0f%% threshold\n",
                options.threshold * 100.0);
    return 0;
}

} // namespace
} // namespace act

int
main(int argc, char **argv)
{
    act::Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "benchtrend: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--out") {
            options.out = value("--out");
        } else if (arg == "--baseline") {
            options.baseline = value("--baseline");
        } else if (arg == "--check") {
            options.check = true;
        } else if (arg == "--threshold") {
            options.threshold = std::strtod(value("--threshold"), nullptr);
        } else if (arg == "--filter") {
            options.filter = value("--filter");
        } else if (arg == "--quick") {
            options.quick = true;
        } else {
            std::fprintf(
                stderr,
                "usage: benchtrend [--out FILE] [--baseline FILE] "
                "[--check] [--threshold FRACTION] [--filter SUBSTRING] "
                "[--quick]\n");
            return arg == "--help" || arg == "-h" ? 0 : 2;
        }
    }
    act::registerAllWorkloads();
    return act::run(options);
}
