/**
 * @file
 * Ablation: the RAW-dependence sequence length N.
 *
 * The paper sweeps N = 1..5 during topology selection (Section VI-B)
 * but never isolates its effect. This bench fixes everything else and
 * varies N for (a) prediction quality on a regular and an irregular
 * kernel and (b) end-to-end diagnosis rank on two bugs, plus the
 * hardware cost side: N widens the input layer, which the
 * multiply-add schedule absorbs until the fan-in limit M.
 */

#include "bench/bench_util.hh"

namespace act
{
namespace
{

using bench::format;

struct QualityResult
{
    double fp = 0.0; //!< False positives per dependence.
    double fn = 0.0; //!< False negatives per invalid dependence.
};

QualityResult
quality(const Workload &workload, std::size_t n)
{
    PairEncoder encoder;
    const InputGenerator generator(n);
    Dataset train = bench::datasetFromRuns(
        workload, generator, encoder, bench::seedRange(100, 6), true);
    Rng rng(0xab1a + n);
    train.shuffle(rng);
    if (train.size() > 16000) {
        Dataset capped;
        for (std::size_t i = 0; i < 16000; ++i)
            capped.add(train[i]);
        train = std::move(capped);
    }
    MlpNetwork network(Topology{n * encoder.width(), 10}, rng);
    TrainerConfig trainer;
    trainer.max_epochs = 300;
    trainNetwork(network, train, trainer, rng);

    QualityResult result;
    std::uint64_t fp = 0;
    std::uint64_t positives = 0;
    std::uint64_t fn = 0;
    std::uint64_t negatives = 0;
    for (const std::uint64_t seed : bench::seedRange(200, 6)) {
        WorkloadParams params;
        params.seed = seed;
        const Trace trace = workload.record(params);
        const GeneratedSequences sequences = generator.process(trace, true);
        for (const auto &seq : sequences.positives) {
            ++positives;
            fp += !network.predictValid(encoder.encodeSequence(seq));
        }
        for (const auto &seq : sequences.negatives) {
            ++negatives;
            fn += network.predictValid(encoder.encodeSequence(seq));
        }
    }
    result.fp = positives ? static_cast<double>(fp) / positives : 0.0;
    result.fn = negatives ? static_cast<double>(fn) / negatives : 0.0;
    return result;
}

std::string
diagnosisRank(const Workload &workload, std::size_t n)
{
    DiagnosisSetup setup;
    setup.training = bench::standardTraining(8);
    setup.training.sequence_length = n;
    const DiagnosisResult result = diagnoseFailure(workload, setup);
    return result.rank ? format("%zu", *result.rank) : "-";
}

void
run()
{
    bench::banner("Ablation: sequence length N",
                  "DESIGN.md decision: N = 3 default; the paper sweeps "
                  "1..5 during topology selection");

    std::printf("--- prediction quality (per dependence) ---\n");
    const bench::Table quality_table({10, 14, 14, 14, 14});
    quality_table.row({"N", "lu fp", "lu fn", "canneal fp",
                       "canneal fn"});
    quality_table.rule();
    const auto lu = makeWorkload("lu");
    const auto canneal = makeWorkload("canneal");
    for (std::size_t n = 1; n <= 5; ++n) {
        const QualityResult a = quality(*lu, n);
        const QualityResult b = quality(*canneal, n);
        quality_table.row({format("%zu", n),
                           format("%.2f%%", a.fp * 100.0),
                           format("%.2f%%", a.fn * 100.0),
                           format("%.2f%%", b.fp * 100.0),
                           format("%.2f%%", b.fn * 100.0)});
    }

    std::printf("\n--- diagnosis rank ---\n");
    const bench::Table rank_table({10, 12, 12});
    rank_table.row({"N", "gzip", "mysql2"});
    rank_table.rule();
    const auto gzip = makeWorkload("gzip");
    const auto mysql2 = makeWorkload("mysql2");
    for (std::size_t n = 1; n <= 5; ++n) {
        rank_table.row({format("%zu", n), diagnosisRank(*gzip, n),
                        diagnosisRank(*mysql2, n)});
    }

    std::printf("\n--- hardware cost ---\n");
    const bench::Table hw_table({10, 16, 18});
    hw_table.row({"N", "input width", "fits M = 10?"});
    hw_table.rule();
    for (std::size_t n = 1; n <= 5; ++n) {
        hw_table.row({format("%zu", n), format("%zu", 2 * n),
                      2 * n <= kMaxFanIn ? "yes" : "no"});
    }
    std::printf("\nN = 1 already catches wrong-writer bugs (the final "
                "dependence decides); longer sequences buy context for "
                "ranking and tolerate history noise, at no latency cost "
                "while 2N <= M.\n");
}

} // namespace
} // namespace act

int
main()
{
    act::registerAllWorkloads();
    act::run();
    return 0;
}
