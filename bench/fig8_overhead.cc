/**
 * @file
 * Figure 8 reproduction (inferred from the abstract and Section VI's
 * goals): production-run execution overhead of ACT with the default
 * configuration — 2 multiply-add units per neuron, 8-entry input FIFO.
 * The paper's headline number is an average overhead of 8.2%.
 *
 * Overhead sources in the model: retire stalls when the AM's input
 * FIFO back-pressures completed loads (4x service time while the
 * module is in online-training mode), plus the ldwt/stwt weight
 * transfers at thread start/exit and context switches.
 */

#include "bench/bench_util.hh"

namespace act
{
namespace
{

using bench::format;

struct OverheadResult
{
    double overhead = 0.0;
    Cycle base_cycles = 0;
    Cycle act_cycles = 0;
    std::uint64_t dependences = 0;
    std::uint64_t mode_switches = 0;
    Cycle stall_cycles = 0;
};

OverheadResult
measure(const Workload &workload, const SystemConfig &base_config)
{
    // Offline-train so the production run starts in testing mode.
    PairEncoder encoder;
    OfflineTrainingConfig training = bench::standardTraining(6);
    training.trainer.max_epochs = 300;
    const TrainedModel model = offlineTrain(workload, encoder, training);

    WorkloadParams params;
    params.seed = 300;
    const Trace trace = workload.record(params);

    SystemConfig config = base_config;
    config.act_enabled = false;
    System baseline(config);
    baseline.run(trace);

    config.act_enabled = true;
    config.act.topology = model.topology;
    WeightStore store(model.topology);
    store.setAll(workload.threadCount(), model.weights);
    System with_act(config, encoder, store);
    with_act.run(trace);

    OverheadResult result;
    result.base_cycles = baseline.stats().cycles;
    result.act_cycles = with_act.stats().cycles;
    result.overhead =
        result.base_cycles
            ? static_cast<double>(result.act_cycles -
                                  result.base_cycles) /
                  static_cast<double>(result.base_cycles)
            : 0.0;
    result.dependences = with_act.stats().act.dependences;
    result.mode_switches = with_act.stats().act.mode_switches;
    result.stall_cycles = with_act.stats().act.stall_cycles;
    return result;
}

void
run()
{
    bench::banner("Figure 8: execution overhead (default config)",
                  "abstract / Section VI goal (iii): average overhead "
                  "8.2% with 2 multiply-add units and an 8-entry FIFO");

    const bench::Table table({16, 14, 14, 12, 12, 10});
    table.row({"program", "base cycles", "ACT cycles", "stalls",
               "mode sw.", "overhead"});
    table.rule();

    OnlineStats overhead;
    for (const auto &name : predictionKernelNames()) {
        const auto workload = makeWorkload(name);
        const OverheadResult r = measure(*workload, SystemConfig{});
        overhead.add(r.overhead);
        table.row({name,
                   format("%llu",
                          static_cast<unsigned long long>(r.base_cycles)),
                   format("%llu",
                          static_cast<unsigned long long>(r.act_cycles)),
                   format("%llu",
                          static_cast<unsigned long long>(r.stall_cycles)),
                   format("%llu",
                          static_cast<unsigned long long>(r.mode_switches)),
                   format("%.1f%%", r.overhead * 100.0)});
    }
    table.rule();
    table.row({"average", "", "", "", "",
               format("%.1f%%", overhead.mean() * 100.0)});
    std::printf("\npaper: 8.2%% average execution overhead for the "
                "default configuration.\n");
}

} // namespace
} // namespace act

int
main()
{
    act::registerAllWorkloads();
    act::run();
    return 0;
}
