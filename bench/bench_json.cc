#include "bench/bench_json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace act::bench
{

namespace
{

/** Shortest float rendering that round-trips (mirrors report.cc). */
std::string
num(double v)
{
    char buf[64];
    for (int precision = 6; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

/**
 * Minimal recursive-descent scanner for the subset of JSON this module
 * emits: objects, arrays, strings without escapes, numbers. It only
 * has to read files written by toJson(), but fails cleanly (returns
 * false) on anything malformed rather than asserting.
 */
class Scanner
{
  public:
    explicit Scanner(const std::string &text) : text_(text) {}

    bool
    literal(char c)
    {
        skipSpace();
        if (pos_ >= text_.size() || text_[pos_] != c)
            return false;
        ++pos_;
        return true;
    }

    bool
    peek(char c)
    {
        skipSpace();
        return pos_ < text_.size() && text_[pos_] == c;
    }

    bool
    string(std::string &out)
    {
        skipSpace();
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return false;
        const std::size_t end = text_.find('"', pos_ + 1);
        if (end == std::string::npos)
            return false;
        out = text_.substr(pos_ + 1, end - pos_ - 1);
        pos_ = end + 1;
        return true;
    }

    bool
    number(double &out)
    {
        skipSpace();
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        out = std::strtod(start, &end);
        if (end == start)
            return false;
        pos_ += static_cast<std::size_t>(end - start);
        return true;
    }

    bool
    key(std::string &out)
    {
        return string(out) && literal(':');
    }

    /** Skip one value of any supported type (unknown keys). */
    bool
    skipValue()
    {
        skipSpace();
        if (pos_ >= text_.size())
            return false;
        const char c = text_[pos_];
        if (c == '"') {
            std::string s;
            return string(s);
        }
        if (c == '{' || c == '[') {
            const char close = c == '{' ? '}' : ']';
            ++pos_;
            if (peek(close))
                return literal(close);
            do {
                if (c == '{') {
                    std::string k;
                    if (!key(k))
                        return false;
                }
                if (!skipValue())
                    return false;
            } while (literal(','));
            return literal(close);
        }
        double d = 0;
        return number(d);
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

bool
parseMicro(Scanner &scan, MicroResult &out)
{
    if (!scan.literal('{'))
        return false;
    if (scan.peek('}'))
        return scan.literal('}');
    do {
        std::string k;
        if (!scan.key(k))
            return false;
        if (k == "name") {
            if (!scan.string(out.name))
                return false;
        } else if (k == "ns_per_op") {
            if (!scan.number(out.ns_per_op))
                return false;
        } else if (k == "events_per_s") {
            if (!scan.number(out.events_per_s))
                return false;
        } else if (k == "iterations") {
            double d = 0;
            if (!scan.number(d))
                return false;
            out.iterations = static_cast<std::uint64_t>(d);
        } else if (!scan.skipValue()) {
            return false;
        }
    } while (scan.literal(','));
    return scan.literal('}');
}

bool
parseWall(Scanner &scan, WallClockResult &out)
{
    if (!scan.literal('{'))
        return false;
    if (scan.peek('}'))
        return scan.literal('}');
    do {
        std::string k;
        if (!scan.key(k))
            return false;
        if (k == "name") {
            if (!scan.string(out.name))
                return false;
        } else if (k == "ms") {
            if (!scan.number(out.ms))
                return false;
        } else if (!scan.skipValue()) {
            return false;
        }
    } while (scan.literal(','));
    return scan.literal('}');
}

bool
parseTelemetry(Scanner &scan, TelemetryEntry &out)
{
    if (!scan.literal('{'))
        return false;
    if (scan.peek('}'))
        return scan.literal('}');
    do {
        std::string k;
        if (!scan.key(k))
            return false;
        if (k == "name") {
            if (!scan.string(out.name))
                return false;
        } else if (k == "value") {
            if (!scan.number(out.value))
                return false;
        } else if (!scan.skipValue()) {
            return false;
        }
    } while (scan.literal(','));
    return scan.literal('}');
}

} // namespace

const MicroResult *
BenchReport::find(const std::string &name) const
{
    for (const auto &result : results) {
        if (result.name == name)
            return &result;
    }
    return nullptr;
}

std::string
toJson(const BenchReport &report)
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"schema\": \"" << report.schema << "\",\n";
    out << "  \"build_type\": \"" << report.build_type << "\",\n";
    out << "  \"results\": [\n";
    for (std::size_t i = 0; i < report.results.size(); ++i) {
        const MicroResult &r = report.results[i];
        out << "    {\"name\": \"" << r.name
            << "\", \"ns_per_op\": " << num(r.ns_per_op)
            << ", \"events_per_s\": " << num(r.events_per_s)
            << ", \"iterations\": " << r.iterations << "}"
            << (i + 1 < report.results.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"wall_clock\": [\n";
    for (std::size_t i = 0; i < report.wall_clock.size(); ++i) {
        const WallClockResult &w = report.wall_clock[i];
        out << "    {\"name\": \"" << w.name << "\", \"ms\": " << num(w.ms)
            << "}" << (i + 1 < report.wall_clock.size() ? "," : "")
            << "\n";
    }
    out << "  ],\n";
    out << "  \"telemetry\": [\n";
    for (std::size_t i = 0; i < report.telemetry.size(); ++i) {
        const TelemetryEntry &t = report.telemetry[i];
        out << "    {\"name\": \"" << t.name
            << "\", \"value\": " << num(t.value) << "}"
            << (i + 1 < report.telemetry.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";
    return out.str();
}

bool
loadBenchReport(const std::string &path, BenchReport &out)
{
    std::ifstream file(path);
    if (!file)
        return false;
    std::ostringstream buffer;
    buffer << file.rdbuf();
    const std::string text = buffer.str();

    out = BenchReport{};
    out.schema.clear();
    Scanner scan(text);
    if (!scan.literal('{'))
        return false;
    if (scan.peek('}'))
        return false; // An empty report is not a report.
    do {
        std::string k;
        if (!scan.key(k))
            return false;
        if (k == "schema") {
            if (!scan.string(out.schema))
                return false;
        } else if (k == "build_type") {
            if (!scan.string(out.build_type))
                return false;
        } else if (k == "results") {
            if (!scan.literal('['))
                return false;
            if (!scan.peek(']')) {
                do {
                    MicroResult r;
                    if (!parseMicro(scan, r))
                        return false;
                    out.results.push_back(std::move(r));
                } while (scan.literal(','));
            }
            if (!scan.literal(']'))
                return false;
        } else if (k == "wall_clock") {
            if (!scan.literal('['))
                return false;
            if (!scan.peek(']')) {
                do {
                    WallClockResult w;
                    if (!parseWall(scan, w))
                        return false;
                    out.wall_clock.push_back(std::move(w));
                } while (scan.literal(','));
            }
            if (!scan.literal(']'))
                return false;
        } else if (k == "telemetry") {
            if (!scan.literal('['))
                return false;
            if (!scan.peek(']')) {
                do {
                    TelemetryEntry t;
                    if (!parseTelemetry(scan, t))
                        return false;
                    out.telemetry.push_back(std::move(t));
                } while (scan.literal(','));
            }
            if (!scan.literal(']'))
                return false;
        } else if (!scan.skipValue()) {
            return false;
        }
    } while (scan.literal(','));
    return scan.literal('}') && out.schema == "act-bench-trend-v1";
}

bool
writeBenchReport(const BenchReport &report, const std::string &path)
{
    std::ofstream file(path);
    if (!file)
        return false;
    file << toJson(report);
    return static_cast<bool>(file.flush());
}

std::vector<TrendEntry>
compareReports(const BenchReport &current, const BenchReport &baseline,
               double threshold)
{
    std::vector<TrendEntry> entries;
    for (const MicroResult &now : current.results) {
        const MicroResult *base = baseline.find(now.name);
        if (base == nullptr || base->events_per_s <= 0.0)
            continue;
        TrendEntry entry;
        entry.name = now.name;
        entry.current_events_per_s = now.events_per_s;
        entry.baseline_events_per_s = base->events_per_s;
        entry.ratio = now.events_per_s / base->events_per_s;
        entry.regression = entry.ratio < 1.0 - threshold;
        entries.push_back(std::move(entry));
    }
    return entries;
}

} // namespace act::bench
