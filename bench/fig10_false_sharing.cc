/**
 * @file
 * Figure 10 reproduction (inferred from Section V): the cost of the
 * last-writer simplifications.
 *
 *  (a) Granularity: tracking the last writer per cache line instead of
 *      per word introduces false sharing; Section V claims the
 *      misprediction increase is insignificant. Swept over the Table
 *      III line sizes (32..128 B; 4 B equals word tracking).
 *  (b) Metadata loss: dependences cannot be formed when the metadata
 *      was dropped (eviction, clean transfer); the ablation flags
 *      quantify how many loads lose their writer under each rule.
 */

#include "bench/bench_util.hh"

namespace act
{
namespace
{

using bench::format;

struct GranularityResult
{
    double fp_rate = 0.0;     //!< Predicted-invalid rate on correct run.
    double writer_known = 0.0; //!< Loads with last-writer info.
};

GranularityResult
measure(const Workload &workload, const TrainedModel &model,
        const Trace &trace, Granularity granularity,
        std::uint32_t line_bytes, bool writeback, bool always_piggyback)
{
    SystemConfig config;
    config.mem.writer_granularity = granularity;
    config.mem.line_bytes = line_bytes;
    config.mem.writeback_writer_metadata = writeback;
    config.mem.always_piggyback_writer = always_piggyback;
    config.act.topology = model.topology;

    PairEncoder encoder;
    WeightStore store(model.topology);
    store.setAll(workload.threadCount(), model.weights);
    System system(config, encoder, store);
    system.run(trace);

    const SystemStats stats = system.stats();
    GranularityResult result;
    result.fp_rate =
        stats.act.predictions
            ? static_cast<double>(stats.act.predicted_invalid) /
                  static_cast<double>(stats.act.predictions)
            : 0.0;
    const std::uint64_t known = stats.mem.writer_known;
    const std::uint64_t unknown = stats.mem.writer_unknown;
    result.writer_known =
        known + unknown
            ? static_cast<double>(known) /
                  static_cast<double>(known + unknown)
            : 0.0;
    return result;
}

void
run()
{
    bench::banner("Figure 10: last-writer simplifications",
                  "Section V: word vs line granularity (false sharing) "
                  "and metadata-loss rules; paper: the increase in "
                  "mispredictions is insignificant");

    const std::vector<std::string> programs = {"lu", "ocean",
                                               "fluidanimate", "radix"};

    std::printf("--- granularity: %%dependences flagged on a correct run "
                "---\n");
    const bench::Table table({16, 12, 12, 12, 12});
    table.row({"program", "word", "line 32B", "line 64B", "line 128B"});
    table.rule();
    for (const auto &name : programs) {
        const auto workload = makeWorkload(name);
        PairEncoder encoder;
        OfflineTrainingConfig training = bench::standardTraining(6);
        training.trainer.max_epochs = 300;
        const TrainedModel model =
            offlineTrain(*workload, encoder, training);
        WorkloadParams params;
        params.seed = 300;
        const Trace trace = workload->record(params);

        std::vector<std::string> cells{name};
        cells.push_back(format(
            "%.2f%%", measure(*workload, model, trace, Granularity::kWord,
                              64, false, false)
                              .fp_rate *
                          100.0));
        for (const std::uint32_t line : {32u, 64u, 128u}) {
            cells.push_back(format(
                "%.2f%%",
                measure(*workload, model, trace, Granularity::kLine, line,
                        false, false)
                        .fp_rate *
                    100.0));
        }
        table.row(cells);
    }

    std::printf("\n--- metadata retention: %%loads with a known last "
                "writer ---\n");
    const bench::Table retention({16, 16, 18, 20});
    retention.row({"program", "paper rules", "+piggyback all",
                   "+memory writeback"});
    retention.rule();
    for (const auto &name : programs) {
        const auto workload = makeWorkload(name);
        PairEncoder encoder;
        OfflineTrainingConfig training = bench::standardTraining(4);
        training.trainer.max_epochs = 200;
        const TrainedModel model =
            offlineTrain(*workload, encoder, training);
        WorkloadParams params;
        params.seed = 300;
        const Trace trace = workload->record(params);
        retention.row(
            {name,
             format("%.1f%%",
                    measure(*workload, model, trace, Granularity::kWord,
                            64, false, false)
                            .writer_known *
                        100.0),
             format("%.1f%%",
                    measure(*workload, model, trace, Granularity::kWord,
                            64, false, true)
                            .writer_known *
                        100.0),
             format("%.1f%%",
                    measure(*workload, model, trace, Granularity::kWord,
                            64, true, true)
                            .writer_known *
                        100.0)});
    }
    std::printf("\nlost metadata only delays diagnosis (the dependence "
                "forms on a later occurrence);\nthe paper accepts the "
                "cheap rules because the bug is still caught in the long "
                "run.\n");
}

} // namespace
} // namespace act

int
main()
{
    act::registerAllWorkloads();
    act::run();
    return 0;
}
