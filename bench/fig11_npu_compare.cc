/**
 * @file
 * Figure 11 reproduction (inferred from Section IV-A): the design
 * justification for the partially configurable three-stage pipeline
 * against a fully configurable time-multiplexed NPU (Esmaeilzadeh et
 * al. style).
 *
 * Two series: per-inference latency / steady-state interval across
 * topologies, and the neuron-latency knob (multiply-add units).
 */

#include "bench/bench_util.hh"
#include "hwnn/npu_reference.hh"
#include "nn/topology_search.hh"

namespace act
{
namespace
{

using bench::format;

void
run()
{
    bench::banner("Figure 11: pipeline vs time-multiplexed NPU",
                  "Section IV-A design comparison: the pipeline avoids "
                  "per-round scheduling overhead and overlaps its three "
                  "stages");

    const NpuReference npu((NpuConfig()));

    std::printf("--- steady-state cycles between inferences ---\n");
    const bench::Table table({14, 16, 16, 14, 14});
    table.row({"topology", "pipeline test", "pipeline train", "NPU test",
               "NPU train"});
    table.rule();
    for (const Topology t :
         {Topology{2, 4}, Topology{6, 8}, Topology{6, 10},
          Topology{10, 10}}) {
        HwNetworkConfig pipeline;
        pipeline.neuron.muladd_units = 2;
        table.row({topologyToString(t),
                   format("%llu", static_cast<unsigned long long>(
                                      pipeline.testServiceTime())),
                   format("%llu", static_cast<unsigned long long>(
                                      pipeline.trainServiceTime())),
                   format("%llu", static_cast<unsigned long long>(
                                      npu.inferenceInterval(t))),
                   format("%llu", static_cast<unsigned long long>(
                                      npu.trainingLatency(t)))});
    }

    std::printf("\n--- the multiply-add-unit knob (M = 10) ---\n");
    const bench::Table knob({14, 14, 18, 18});
    knob.row({"units x", "neuron T", "pipeline interval",
              "speedup vs NPU"});
    knob.rule();
    const Topology t{6, 10};
    for (const std::uint32_t units : {1u, 2u, 5u, 10u}) {
        HwNetworkConfig pipeline;
        pipeline.neuron.muladd_units = units;
        const double speedup =
            static_cast<double>(npu.inferenceInterval(t)) /
            static_cast<double>(pipeline.testServiceTime());
        knob.row({format("%u", units),
                  format("%llu", static_cast<unsigned long long>(
                                     pipeline.neuron.latency())),
                  format("%llu", static_cast<unsigned long long>(
                                     pipeline.testServiceTime())),
                  format("%.1fx", speedup)});
    }
    std::printf("\nthe pipeline accepts one dependence per neuron-latency "
                "T; the shared-PE NPU is busy for a whole inference "
                "(plus scheduling) per input, which is why ACT adopts "
                "the partially configurable design.\n");
}

} // namespace
} // namespace act

int
main()
{
    act::run();
    return 0;
}
