/**
 * @file
 * Table IV reproduction: "Training of neural networks".
 *
 * For each prediction workload, 20 execution traces are collected; up
 * to 10 train the network and 10 evaluate it. The sequence length N
 * (1..5 dependences) and hidden-neuron count (1..10) are swept and the
 * topology with the lowest validation misprediction rate is selected.
 * As in the paper, the reported misprediction rate counts false
 * positives (valid sequences flagged invalid) as a percentage of total
 * executed instructions; the per-dependence rate is shown as well.
 *
 * A second section ablates the dependence encoder (design decision 1
 * in DESIGN.md): the similarity-preserving PairEncoder against the
 * dictionary (CAM) and scatter-hash encoders.
 */

#include "bench/bench_util.hh"
#include "nn/topology_search.hh"

namespace act
{
namespace
{

using bench::format;

struct ProgramResult
{
    std::string name;
    std::size_t deps = 0;
    Topology topology;
    double mispred_instr = 0.0;
    double mispred_dep = 0.0;
};

/** Train + evaluate one kernel with the given encoder prototype. */
ProgramResult
evaluateProgram(const std::string &name, DependenceEncoder &encoder,
                bool sweep_topology)
{
    const auto workload = makeWorkload(name);
    const auto train_seeds = bench::seedRange(100, 10);
    const auto test_seeds = bench::seedRange(200, 10);

    ProgramResult result;
    result.name = name;

    // Topology selection on a small sweep (Section VI-B).
    Topology best{3 * encoder.width(), 10};
    if (sweep_topology) {
        TopologySearchConfig search;
        search.min_inputs = 2;
        search.max_inputs = 4;
        search.min_hidden = 4;
        search.max_hidden = 10;
        search.trainer.max_epochs = 120;
        const TopologySearchResult sweep = searchTopology(
            [&](std::size_t n) {
                const InputGenerator generator(n);
                auto enc = encoder.clone();
                Dataset train = bench::datasetFromRuns(
                    *workload, generator, *enc,
                    bench::seedRange(100, 4), true);
                Rng rng(n);
                train.shuffle(rng);
                if (train.size() > 6000) {
                    Dataset capped;
                    for (std::size_t i = 0; i < 6000; ++i)
                        capped.add(train[i]);
                    train = std::move(capped);
                }
                Dataset validation = train.splitTail(0.3);
                return std::make_pair(train, validation);
            },
            search);
        // The search already reports the true input width (sequence
        // length times encoder features per dependence).
        best = sweep.best;
    }

    // Final training at the selected sequence length.
    const std::size_t n = best.inputs / encoder.width();
    const InputGenerator generator(n);
    auto train_enc = encoder.clone();
    std::size_t train_deps = 0;
    Dataset train =
        bench::datasetFromRuns(*workload, generator, *train_enc,
                               train_seeds, true, &train_deps);
    result.deps = train_deps;

    Rng rng(0xbe4c);
    train.shuffle(rng);
    if (train.size() > 24000) {
        Dataset capped;
        for (std::size_t i = 0; i < 24000; ++i)
            capped.add(train[i]);
        train = std::move(capped);
    }
    MlpNetwork network(best, rng);
    TrainerConfig trainer;
    trainer.max_epochs = 400;
    trainNetwork(network, train, trainer, rng);
    result.topology = best;

    // Evaluation on held-out traces: false positives only (the test
    // data contains no invalid dependences, Section VI-B).
    std::uint64_t wrong = 0;
    std::uint64_t predictions = 0;
    std::uint64_t instructions = 0;
    for (const std::uint64_t seed : test_seeds) {
        WorkloadParams params;
        params.seed = seed;
        const Trace trace = workload->record(params);
        instructions += trace.instructionCount();
        const GeneratedSequences sequences =
            generator.process(trace, false);
        for (const auto &seq : sequences.positives) {
            ++predictions;
            if (!network.predictValid(train_enc->encodeSequence(seq)))
                ++wrong;
        }
    }
    result.mispred_instr =
        instructions ? static_cast<double>(wrong) /
                           static_cast<double>(instructions)
                     : 0.0;
    result.mispred_dep =
        predictions ? static_cast<double>(wrong) /
                          static_cast<double>(predictions)
                    : 0.0;
    return result;
}

void
runMainTable()
{
    bench::banner("Table IV: training of neural networks",
                  "Table IV (20 traces: 10 train / 10 test; N in 1..5, "
                  "hidden 1..10; misprediction as % of instructions)");

    const bench::Table table({16, 12, 12, 12, 16, 16});
    table.row({"program", "#train", "#RAW deps", "topology",
               "%mispred/instr", "%mispred/dep"});
    table.rule();

    OnlineStats instr_rate;
    OnlineStats dep_rate;
    for (const auto &name : predictionKernelNames()) {
        PairEncoder encoder;
        const ProgramResult r = evaluateProgram(name, encoder, true);
        instr_rate.add(r.mispred_instr);
        dep_rate.add(r.mispred_dep);
        table.row({r.name, "10", format("%zu", r.deps),
                   topologyToString(r.topology),
                   format("%.3f%%", r.mispred_instr * 100.0),
                   format("%.2f%%", r.mispred_dep * 100.0)});
    }
    table.rule();
    table.row({"average", "", "", "",
               format("%.3f%%", instr_rate.mean() * 100.0),
               format("%.2f%%", dep_rate.mean() * 100.0)});
    std::printf("\npaper: average misprediction rate ~0.45%% of "
                "instructions, worst programs (canneal/mcf-style "
                "irregular codes) noticeably higher.\n");
}

void
runEncoderAblation()
{
    std::printf("\n--- encoder ablation (design decision 1) ---\n");
    const bench::Table table({16, 18, 18, 18});
    table.row({"program", "pair %/dep", "dictionary %/dep",
               "hash %/dep"});
    table.rule();
    for (const char *kernel : {"lu", "canneal", "mcf"}) {
        const std::string name(kernel);
        PairEncoder pair;
        DictionaryEncoder dictionary(64);
        HashEncoder hash;
        const ProgramResult a = evaluateProgram(name, pair, false);
        const ProgramResult b = evaluateProgram(name, dictionary, false);
        const ProgramResult c = evaluateProgram(name, hash, false);
        table.row({name, format("%.2f%%", a.mispred_dep * 100.0),
                   format("%.2f%%", b.mispred_dep * 100.0),
                   format("%.2f%%", c.mispred_dep * 100.0)});
    }
    std::printf("\nthe similarity-preserving pair encoding is what keeps "
                "the <=10-neuron network accurate;\nscatter encodings "
                "turn sequence validity into rote memorisation.\n");
}

} // namespace
} // namespace act

int
main()
{
    act::registerAllWorkloads();
    act::runMainTable();
    act::runEncoderAblation();
    return 0;
}
