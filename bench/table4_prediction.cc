/**
 * @file
 * Table IV reproduction: "Training of neural networks".
 *
 * For each prediction workload, 20 execution traces are collected; up
 * to 10 train the network and 10 evaluate it. The sequence length N
 * (1..5 dependences) and hidden-neuron count (1..10) are swept and the
 * topology with the lowest validation misprediction rate is selected.
 * As in the paper, the reported misprediction rate counts false
 * positives (valid sequences flagged invalid) as a percentage of total
 * executed instructions; the per-dependence rate is shown as well.
 *
 * A second section ablates the dependence encoder (design decision 1
 * in DESIGN.md): the similarity-preserving PairEncoder against the
 * dictionary (CAM) and scatter-hash encoders.
 *
 * The evaluation recipe lives in the campaign runner (`src/runner/`,
 * campaigns "table4" and "table4-ablation"); this bench runs both
 * campaigns in parallel and renders the paper tables.
 */

#include "bench/bench_util.hh"

#include "runner/campaign.hh"
#include "runner/runner.hh"

namespace act
{
namespace
{

using bench::format;

void
runMainTable()
{
    bench::banner("Table IV: training of neural networks",
                  "Table IV (20 traces: 10 train / 10 test; N in 1..5, "
                  "hidden 1..10; misprediction as % of instructions)");

    const Campaign campaign = makeCampaign("table4");
    const CampaignRunResult outcome =
        runCampaign(campaign, bench::campaignRunOptions());

    const bench::Table table({16, 12, 12, 12, 16, 16});
    table.row({"program", "#train", "#RAW deps", "topology",
               "%mispred/instr", "%mispred/dep"});
    table.rule();

    OnlineStats instr_rate;
    OnlineStats dep_rate;
    for (const JobResult &result : outcome.results) {
        const JobSpec &spec = campaign.jobs[result.id];
        const double mispred_instr = result.metrics.at("mispred_instr");
        const double mispred_dep = result.metrics.at("mispred_dep");
        instr_rate.add(mispred_instr);
        dep_rate.add(mispred_dep);
        table.row({spec.workload, "10",
                   format("%.0f", result.metrics.at("deps")),
                   result.labels.at("topology"),
                   format("%.3f%%", mispred_instr * 100.0),
                   format("%.2f%%", mispred_dep * 100.0)});
    }
    table.rule();
    table.row({"average", "", "", "",
               format("%.3f%%", instr_rate.mean() * 100.0),
               format("%.2f%%", dep_rate.mean() * 100.0)});
    std::printf("\npaper: average misprediction rate ~0.45%% of "
                "instructions, worst programs (canneal/mcf-style "
                "irregular codes) noticeably higher.\n");
    bench::printRunSummary(outcome);
}

void
runEncoderAblation()
{
    std::printf("\n--- encoder ablation (design decision 1) ---\n");

    const Campaign campaign = makeCampaign("table4-ablation");
    const CampaignRunResult outcome =
        runCampaign(campaign, bench::campaignRunOptions());

    const bench::Table table({16, 18, 18, 18});
    table.row({"program", "pair %/dep", "dictionary %/dep",
               "hash %/dep"});
    table.rule();
    // Jobs are laid out kernel-major, encoder-minor (pair, dictionary,
    // hash per kernel).
    for (std::size_t i = 0; i + 2 < outcome.results.size(); i += 3) {
        const JobSpec &spec = campaign.jobs[i];
        table.row(
            {spec.workload,
             format("%.2f%%",
                    outcome.results[i].metrics.at("mispred_dep") * 100.0),
             format("%.2f%%",
                    outcome.results[i + 1].metrics.at("mispred_dep") *
                        100.0),
             format("%.2f%%",
                    outcome.results[i + 2].metrics.at("mispred_dep") *
                        100.0)});
    }
    std::printf("\nthe similarity-preserving pair encoding is what keeps "
                "the <=10-neuron network accurate;\nscatter encodings "
                "turn sequence validity into rote memorisation.\n");
    bench::printRunSummary(outcome);
}

} // namespace
} // namespace act

int
main()
{
    act::registerAllWorkloads();
    act::runMainTable();
    act::runEncoderAblation();
    return 0;
}
