/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths: NN
 * inference (software double and hardware fixed point), on-line
 * back-propagation, dependence encoding/tracking, the MESI cache
 * access path, Debug Buffer postprocessing, and the offline
 * concurrency detectors of the analysis pipeline.
 */

#include <benchmark/benchmark.h>

#include "act/act_module.hh"
#include "analysis/pipeline.hh"
#include "deps/input_generator.hh"
#include "diagnosis/postprocess.hh"
#include "sim/memsys.hh"

namespace act
{
namespace
{

std::vector<double>
randomInputs(std::size_t n, Rng &rng)
{
    std::vector<double> in;
    for (std::size_t i = 0; i < n; ++i)
        in.push_back(rng.uniform(-2, 2));
    return in;
}

void
BM_SoftwareInference(benchmark::State &state)
{
    Rng rng(1);
    MlpNetwork net(Topology{6, 10}, rng);
    const auto in = randomInputs(6, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(net.infer(in));
}
BENCHMARK(BM_SoftwareInference);

void
BM_HardwareInference(benchmark::State &state)
{
    Rng rng(1);
    MlpNetwork proto(Topology{6, 10}, rng);
    HwNeuralNetwork hw(HwNetworkConfig{}, Topology{6, 10});
    hw.loadWeights(proto.weights());
    const auto in = randomInputs(6, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(hw.infer(in));
}
BENCHMARK(BM_HardwareInference);

void
BM_HardwareInferenceBatch(benchmark::State &state)
{
    Rng rng(1);
    MlpNetwork proto(Topology{6, 10}, rng);
    HwNeuralNetwork hw(HwNetworkConfig{}, Topology{6, 10});
    hw.loadWeights(proto.weights());
    std::vector<std::vector<double>> batch;
    for (int i = 0; i < 64; ++i)
        batch.push_back(randomInputs(6, rng));
    std::vector<double> out;
    for (auto _ : state) {
        hw.inferBatch(batch, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_HardwareInferenceBatch);

void
BM_Backpropagation(benchmark::State &state)
{
    Rng rng(1);
    MlpNetwork net(Topology{6, 10}, rng);
    const auto in = randomInputs(6, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(net.train(in, 1.0, 0.2));
}
BENCHMARK(BM_Backpropagation);

void
BM_EncodeDependence(benchmark::State &state)
{
    PairEncoder encoder;
    const RawDependence dep{0x401000, 0x401004, false};
    std::vector<double> out;
    for (auto _ : state) {
        out.clear();
        encoder.encode(dep, out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_EncodeDependence);

void
BM_TrackerObserve(benchmark::State &state)
{
    DependenceTracker tracker;
    Rng rng(2);
    TraceEvent store;
    store.kind = EventKind::kStore;
    TraceEvent load;
    load.kind = EventKind::kLoad;
    for (auto _ : state) {
        const Addr addr = 0x1000 + rng.next(1024) * 4;
        store.addr = addr;
        store.pc = 0x100 + (addr & 0xff);
        tracker.observe(store);
        load.addr = addr;
        load.pc = store.pc + 4;
        benchmark::DoNotOptimize(tracker.observe(load));
    }
}
BENCHMARK(BM_TrackerObserve);

void
BM_CacheAccess(benchmark::State &state)
{
    MemorySystem mem((MemSystemConfig()));
    Rng rng(3);
    TraceEvent event;
    event.kind = EventKind::kLoad;
    for (auto _ : state) {
        event.tid = static_cast<ThreadId>(rng.next(4));
        event.addr = 0x1000 + rng.next(4096) * 4;
        event.kind = rng.chance(0.3) ? EventKind::kStore
                                     : EventKind::kLoad;
        benchmark::DoNotOptimize(
            mem.access(event.tid % 8, event));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_ActModuleOnDependence(benchmark::State &state)
{
    ActConfig config;
    config.sequence_length = 3;
    config.topology = Topology{6, 10};
    PairEncoder encoder;
    ActModule module(config, encoder);
    WeightStore store(config.topology);
    store.set(0, std::vector<double>(store.weightCount(), 0.1));
    module.initThread(0, store);
    Rng rng(4);
    Cycle cycle = 0;
    for (auto _ : state) {
        const Pc load = 0x401004 + rng.next(64) * 8;
        benchmark::DoNotOptimize(module.onDependence(
            RawDependence{load - 4, load, false}, 0, cycle += 50));
    }
}
BENCHMARK(BM_ActModuleOnDependence);

void
BM_Postprocess(benchmark::State &state)
{
    Rng rng(5);
    CorrectSet correct;
    std::vector<DebugEntry> entries;
    for (int i = 0; i < 200; ++i) {
        DependenceSequence seq;
        for (int j = 0; j < 3; ++j) {
            const Pc load = 0x401000 + rng.next(256) * 8;
            seq.deps.push_back(RawDependence{load - 4, load, false});
        }
        if (i % 2 == 0)
            correct.addSequence(seq);
        DebugEntry entry;
        entry.sequence = seq;
        entry.output = rng.nextDouble() * 0.5;
        entries.push_back(entry);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(postprocess(entries, correct));
}
BENCHMARK(BM_Postprocess);

/** Lock-rich shared-memory stream exercising every detector. */
Trace
detectorBenchTrace(std::size_t events, std::uint32_t threads)
{
    Trace trace;
    Rng rng(0xd37ec7);
    for (std::size_t i = 0; i < events; ++i) {
        TraceEvent event;
        event.tid = static_cast<ThreadId>(rng.next(threads));
        const Addr lock = 0x100 + (event.tid % 2) * 0x10;
        const bool locked = rng.chance(0.8);
        if (locked) {
            event.kind = EventKind::kLock;
            event.addr = lock;
            event.pc = 0x500000 + event.tid;
            trace.append(event);
        }
        event.addr = 0x1000 + rng.next(512) * 8;
        event.kind =
            rng.chance(0.4) ? EventKind::kStore : EventKind::kLoad;
        event.pc = 0x400000 + (event.addr & 0xfff);
        trace.append(event);
        if (locked) {
            event.kind = EventKind::kUnlock;
            event.addr = lock;
            event.pc = 0x500100 + event.tid;
            trace.append(event);
        }
    }
    return trace;
}

void
BM_LocksetDetect(benchmark::State &state)
{
    const Trace trace = detectorBenchTrace(20000, 4);
    for (auto _ : state)
        benchmark::DoNotOptimize(detectLocksetRaces(trace));
    state.SetItemsProcessed(static_cast<std::int64_t>(
        trace.size() * state.iterations()));
}
BENCHMARK(BM_LocksetDetect);

void
BM_LockOrderDetect(benchmark::State &state)
{
    const Trace trace = detectorBenchTrace(20000, 4);
    for (auto _ : state)
        benchmark::DoNotOptimize(detectLockOrderCycles(trace));
    state.SetItemsProcessed(static_cast<std::int64_t>(
        trace.size() * state.iterations()));
}
BENCHMARK(BM_LockOrderDetect);

void
BM_AtomicityDetect(benchmark::State &state)
{
    const Trace trace = detectorBenchTrace(20000, 4);
    for (auto _ : state)
        benchmark::DoNotOptimize(detectAtomicityViolations(trace));
    state.SetItemsProcessed(static_cast<std::int64_t>(
        trace.size() * state.iterations()));
}
BENCHMARK(BM_AtomicityDetect);

void
BM_OrderCheck(benchmark::State &state)
{
    const Trace trace = detectorBenchTrace(20000, 4);
    for (auto _ : state)
        benchmark::DoNotOptimize(checkOrderViolations(trace));
    state.SetItemsProcessed(static_cast<std::int64_t>(
        trace.size() * state.iterations()));
}
BENCHMARK(BM_OrderCheck);

void
BM_AnalysisPipeline(benchmark::State &state)
{
    const Trace trace = detectorBenchTrace(20000, 4);
    for (auto _ : state)
        benchmark::DoNotOptimize(runAnalysisPipeline(trace));
    state.SetItemsProcessed(static_cast<std::int64_t>(
        trace.size() * state.iterations()));
}
BENCHMARK(BM_AnalysisPipeline);

} // namespace
} // namespace act

BENCHMARK_MAIN();
