/**
 * @file
 * Figure 7(a) reproduction: misprediction (false negative) rate when
 * the test data contains intentionally formed invalid RAW dependences
 * (dependences on a store *before* the last writer, Section VI-B).
 */

#include "bench/bench_util.hh"

namespace act
{
namespace
{

using bench::format;

void
run()
{
    bench::banner("Figure 7(a): misprediction on invalid dependences",
                  "Fig. 7(a) (false negatives on synthesised invalid "
                  "dependences; paper average ~0.18% of instructions)");

    const bench::Table table({16, 14, 16, 16});
    table.row({"program", "#invalid", "%missed/instr", "%missed/dep"});
    table.rule();

    OnlineStats instr_rate;
    OnlineStats dep_rate;
    for (const auto &name : predictionKernelNames()) {
        const auto workload = makeWorkload(name);
        PairEncoder encoder;
        const InputGenerator generator(3);

        Dataset train = bench::datasetFromRuns(
            *workload, generator, encoder, bench::seedRange(100, 10),
            true);
        Rng rng(0x7a);
        train.shuffle(rng);
        if (train.size() > 24000) {
            Dataset capped;
            for (std::size_t i = 0; i < 24000; ++i)
                capped.add(train[i]);
            train = std::move(capped);
        }
        MlpNetwork network(Topology{3 * encoder.width(), 10}, rng);
        TrainerConfig trainer;
        trainer.max_epochs = 400;
        trainNetwork(network, train, trainer, rng);

        // Held-out traces: form invalid dependences and count how many
        // the network wrongly accepts.
        std::uint64_t missed = 0;
        std::uint64_t negatives = 0;
        std::uint64_t instructions = 0;
        for (const std::uint64_t seed : bench::seedRange(200, 10)) {
            WorkloadParams params;
            params.seed = seed;
            const Trace trace = workload->record(params);
            instructions += trace.instructionCount();
            const GeneratedSequences sequences =
                generator.process(trace, true);
            for (const auto &seq : sequences.negatives) {
                ++negatives;
                if (network.predictValid(encoder.encodeSequence(seq)))
                    ++missed;
            }
        }
        const double per_instr =
            instructions ? static_cast<double>(missed) /
                               static_cast<double>(instructions)
                         : 0.0;
        const double per_dep =
            negatives ? static_cast<double>(missed) /
                            static_cast<double>(negatives)
                      : 0.0;
        instr_rate.add(per_instr);
        dep_rate.add(per_dep);
        table.row({name, format("%llu",
                                static_cast<unsigned long long>(negatives)),
                   format("%.3f%%", per_instr * 100.0),
                   format("%.2f%%", per_dep * 100.0)});
    }
    table.rule();
    table.row({"average", "",
               format("%.3f%%", instr_rate.mean() * 100.0),
               format("%.2f%%", dep_rate.mean() * 100.0)});
}

} // namespace
} // namespace act

int
main()
{
    act::registerAllWorkloads();
    act::run();
    return 0;
}
