/**
 * @file
 * Figure 7(a) reproduction: misprediction (false negative) rate when
 * the test data contains intentionally formed invalid RAW dependences
 * (dependences on a store *before* the last writer, Section VI-B).
 *
 * The per-kernel evaluation lives in the campaign runner
 * (`src/runner/`, campaign "fig7a"); this bench declares the campaign,
 * runs it across all cores, and renders the paper table.
 */

#include "bench/bench_util.hh"

#include "runner/campaign.hh"
#include "runner/runner.hh"

namespace act
{
namespace
{

using bench::format;

void
run()
{
    bench::banner("Figure 7(a): misprediction on invalid dependences",
                  "Fig. 7(a) (false negatives on synthesised invalid "
                  "dependences; paper average ~0.18% of instructions)");

    const Campaign campaign = makeCampaign("fig7a");
    const CampaignRunResult outcome =
        runCampaign(campaign, bench::campaignRunOptions());

    const bench::Table table({16, 14, 16, 16});
    table.row({"program", "#invalid", "%missed/instr", "%missed/dep"});
    table.rule();

    OnlineStats instr_rate;
    OnlineStats dep_rate;
    for (const JobResult &result : outcome.results) {
        const JobSpec &spec = campaign.jobs[result.id];
        const double per_instr = result.metrics.at("missed_instr");
        const double per_dep = result.metrics.at("missed_dep");
        instr_rate.add(per_instr);
        dep_rate.add(per_dep);
        table.row({spec.workload,
                   format("%.0f", result.metrics.at("negatives")),
                   format("%.3f%%", per_instr * 100.0),
                   format("%.2f%%", per_dep * 100.0)});
    }
    table.rule();
    table.row({"average", "",
               format("%.3f%%", instr_rate.mean() * 100.0),
               format("%.2f%%", dep_rate.mean() * 100.0)});
    bench::printRunSummary(outcome);
}

} // namespace
} // namespace act

int
main()
{
    act::registerAllWorkloads();
    act::run();
    return 0;
}
