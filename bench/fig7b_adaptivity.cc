/**
 * @file
 * Figure 7(b) reproduction: adaptivity to new code.
 *
 * Following Section VI-D, all RAW dependences of one (deterministically
 * "randomly" chosen) function are removed from the training data; the
 * trained network then classifies the excluded function's dependences.
 * The paper reports the percentage of *unique* new dependences
 * predicted incorrectly (average ~6.2%, i.e. ~94% accuracy), using the
 * concurrent programs because they are the hardest to predict.
 */

#include <set>

#include "bench/bench_util.hh"

namespace act
{
namespace
{

using bench::format;

void
run()
{
    bench::banner("Figure 7(b): prediction accuracy on new code",
                  "Fig. 7(b) (one function's dependences withheld from "
                  "training; paper: ~6.2% of unique dependences "
                  "mispredicted)");

    const bench::Table table({16, 22, 12, 14, 16});
    table.row({"program", "excluded function", "#unique", "#mispred",
               "%incorrect"});
    table.rule();

    OnlineStats incorrect_rate;
    for (const auto &name : concurrentKernelNames()) {
        const KernelWorkload workload(kernelSpecFor(name));
        // Deterministic "random" choice of the excluded function.
        const auto chain = static_cast<std::uint32_t>(
            mix64(hashCombine(0xf17b, mix64(workload.spec().threads +
                                            name.size()))) %
            workload.spec().chains.size());
        const std::string function =
            workload.spec().chains[chain].function;
        const std::vector<Pc> excluded_pcs = workload.chainLoadPcs(chain);
        const std::set<Pc> excluded(excluded_pcs.begin(),
                                    excluded_pcs.end());

        auto touches_excluded = [&](const DependenceSequence &seq) {
            for (const auto &dep : seq.deps) {
                if (excluded.count(dep.load_pc))
                    return true;
            }
            return false;
        };

        PairEncoder encoder;
        const InputGenerator generator(3);
        Dataset train;
        std::vector<DependenceSequence> test_sequences;
        for (const std::uint64_t seed : bench::seedRange(100, 10)) {
            WorkloadParams params;
            params.seed = seed;
            const Trace trace = workload.record(params);
            const GeneratedSequences sequences =
                generator.process(trace, true);
            for (std::size_t i = 0; i < sequences.positives.size(); ++i) {
                const auto &seq = sequences.positives[i];
                if (touches_excluded(seq)) {
                    if (excluded.count(seq.deps.back().load_pc))
                        test_sequences.push_back(seq);
                    continue;
                }
                train.add(Example{encoder.encodeSequence(seq), 1.0});
            }
            for (const auto &seq : sequences.negatives) {
                if (!touches_excluded(seq))
                    train.add(Example{encoder.encodeSequence(seq), 0.0});
            }
        }

        Rng rng(0x7b);
        train.shuffle(rng);
        if (train.size() > 24000) {
            Dataset capped;
            for (std::size_t i = 0; i < 24000; ++i)
                capped.add(train[i]);
            train = std::move(capped);
        }
        MlpNetwork network(Topology{3 * encoder.width(), 10}, rng);
        TrainerConfig trainer;
        trainer.max_epochs = 400;
        trainNetwork(network, train, trainer, rng);

        // Unique new dependences predicted incorrectly (they are all
        // valid, so "incorrect" = flagged invalid).
        std::set<std::uint64_t> unique;
        std::set<std::uint64_t> wrong;
        for (const auto &seq : test_sequences) {
            const std::uint64_t key = seq.deps.back().key();
            unique.insert(key);
            if (!network.predictValid(encoder.encodeSequence(seq)))
                wrong.insert(key);
        }
        const double rate =
            unique.empty() ? 0.0
                           : static_cast<double>(wrong.size()) /
                                 static_cast<double>(unique.size());
        incorrect_rate.add(rate);
        table.row({name, function, format("%zu", unique.size()),
                   format("%zu", wrong.size()),
                   format("%.1f%%", rate * 100.0)});
    }
    table.rule();
    table.row({"average", "", "", "",
               format("%.1f%%", incorrect_rate.mean() * 100.0)});
    std::printf("\naccuracy on never-seen code: %.1f%% (paper: 93.8%%)\n",
                (1.0 - incorrect_rate.mean()) * 100.0);
}

} // namespace
} // namespace act

int
main()
{
    act::registerAllWorkloads();
    act::run();
    return 0;
}
