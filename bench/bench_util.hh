/**
 * @file
 * Shared helpers for the table/figure reproduction benches: console
 * table formatting, standard training drivers and the Table III
 * default machine configuration.
 */

#ifndef ACT_BENCH_BENCH_UTIL_HH
#define ACT_BENCH_BENCH_UTIL_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "diagnosis/pipeline.hh"
#include "runner/runner.hh"
#include "workloads/bugs.hh"
#include "workloads/kernel.hh"

namespace act::bench
{

/** Fixed-width console table writer. */
class Table
{
  public:
    explicit Table(std::vector<int> widths) : widths_(std::move(widths)) {}

    /**
     * Print one row; cells beyond widths.size() are ignored. A cell
     * longer than its column is truncated to width-1 characters (one
     * separating space is kept) instead of shifting the columns to its
     * right out of alignment.
     */
    void
    row(const std::vector<std::string> &cells) const
    {
        std::string line;
        for (std::size_t i = 0; i < widths_.size(); ++i) {
            const std::size_t width =
                widths_[i] > 0 ? static_cast<std::size_t>(widths_[i]) : 1;
            std::string cell = i < cells.size() ? cells[i] : "";
            const std::size_t limit = width > 1 ? width - 1 : width;
            if (cell.size() > limit)
                cell.resize(limit);
            line += cell;
            line.append(width - cell.size(), ' ');
        }
        std::printf("%s\n", line.c_str());
    }

    void
    rule() const
    {
        int total = 0;
        for (const int w : widths_)
            total += w;
        std::printf("%s\n", std::string(total, '-').c_str());
    }

  private:
    std::vector<int> widths_;
};

/** printf-style std::string helper. */
inline std::string
format(const char *fmt, ...)
{
    char buf[256];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    return buf;
}

/** Section header shared by all benches. */
inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::printf("\n=== %s ===\n", title.c_str());
    std::printf("reproduces: %s\n", paper_ref.c_str());
    std::printf("machine: 8-core CMP, 32KB L1 / 512KB L2 per core, 64B "
                "lines, snoopy MESI;\n         AM: M=10, 2 multiply-add "
                "units, 8-entry FIFO, IGB 50, DB 60, 5%% threshold\n\n");
}

/** Offline-training defaults shared by the diagnosis benches. */
inline OfflineTrainingConfig
standardTraining(std::size_t traces)
{
    OfflineTrainingConfig config;
    config.traces = traces;
    config.max_examples = 30000;
    config.trainer.max_epochs = 500;
    return config;
}

/**
 * Collect training/evaluation datasets for a prediction kernel.
 *
 * @param workload  The kernel.
 * @param generator Sequence generator (fixes N and granularity).
 * @param encoder   Dependence encoder.
 * @param seeds     Trace seeds to run.
 * @param negatives Whether negative examples are synthesised.
 * @param deps_out  If non-null, accumulates the RAW-dependence count.
 */
inline Dataset
datasetFromRuns(const Workload &workload, const InputGenerator &generator,
                DependenceEncoder &encoder,
                const std::vector<std::uint64_t> &seeds, bool negatives,
                std::size_t *deps_out = nullptr)
{
    Dataset data;
    for (const std::uint64_t seed : seeds) {
        WorkloadParams params;
        params.seed = seed;
        const Trace trace = workload.record(params);
        const GeneratedSequences sequences =
            generator.process(trace, negatives);
        if (deps_out != nullptr)
            *deps_out += sequences.dependence_count;
        data.merge(
            InputGenerator::toDataset(sequences, encoder, negatives));
    }
    return data;
}

/** Seeds [base, base + count). */
inline std::vector<std::uint64_t>
seedRange(std::uint64_t base, std::size_t count)
{
    std::vector<std::uint64_t> seeds(count);
    for (std::size_t i = 0; i < count; ++i)
        seeds[i] = base + i;
    return seeds;
}

/**
 * Runner options for the campaign-backed benches: all cores by
 * default, overridable via ACT_BENCH_JOBS; an on-disk trace cache is
 * enabled by pointing ACT_TRACE_CACHE at a directory.
 */
inline RunOptions
campaignRunOptions()
{
    RunOptions options;
    if (const char *jobs = std::getenv("ACT_BENCH_JOBS"))
        options.jobs = static_cast<unsigned>(
            std::strtoul(jobs, nullptr, 0));
    if (const char *cache = std::getenv("ACT_TRACE_CACHE"))
        options.cache_dir = cache;
    return options;
}

/** One-line execution summary after a campaign-backed bench table. */
inline void
printRunSummary(const CampaignRunResult &run)
{
    std::printf("\n[runner] %u threads, %.0f ms, %llu steals, trace "
                "cache %llu hits / %llu misses\n",
                run.threads, run.wall_ms,
                static_cast<unsigned long long>(run.steals),
                static_cast<unsigned long long>(run.cache.hits()),
                static_cast<unsigned long long>(run.cache.misses));
}

} // namespace act::bench

#endif // ACT_BENCH_BENCH_UTIL_HH
