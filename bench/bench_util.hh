/**
 * @file
 * Shared helpers for the table/figure reproduction benches: console
 * table formatting, standard training drivers and the Table III
 * default machine configuration.
 */

#ifndef ACT_BENCH_BENCH_UTIL_HH
#define ACT_BENCH_BENCH_UTIL_HH

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "diagnosis/pipeline.hh"
#include "workloads/bugs.hh"
#include "workloads/kernel.hh"

namespace act::bench
{

/** Fixed-width console table writer. */
class Table
{
  public:
    explicit Table(std::vector<int> widths) : widths_(std::move(widths)) {}

    /** Print one row; cells beyond widths.size() are ignored. */
    void
    row(const std::vector<std::string> &cells) const
    {
        std::string line;
        for (std::size_t i = 0; i < widths_.size(); ++i) {
            const std::string cell = i < cells.size() ? cells[i] : "";
            char buf[256];
            std::snprintf(buf, sizeof(buf), "%-*s",
                          widths_[i], cell.c_str());
            line += buf;
        }
        std::printf("%s\n", line.c_str());
    }

    void
    rule() const
    {
        int total = 0;
        for (const int w : widths_)
            total += w;
        std::printf("%s\n", std::string(total, '-').c_str());
    }

  private:
    std::vector<int> widths_;
};

/** printf-style std::string helper. */
inline std::string
format(const char *fmt, ...)
{
    char buf[256];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    return buf;
}

/** Section header shared by all benches. */
inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::printf("\n=== %s ===\n", title.c_str());
    std::printf("reproduces: %s\n", paper_ref.c_str());
    std::printf("machine: 8-core CMP, 32KB L1 / 512KB L2 per core, 64B "
                "lines, snoopy MESI;\n         AM: M=10, 2 multiply-add "
                "units, 8-entry FIFO, IGB 50, DB 60, 5%% threshold\n\n");
}

/** Offline-training defaults shared by the diagnosis benches. */
inline OfflineTrainingConfig
standardTraining(std::size_t traces)
{
    OfflineTrainingConfig config;
    config.traces = traces;
    config.max_examples = 30000;
    config.trainer.max_epochs = 500;
    return config;
}

/**
 * Collect training/evaluation datasets for a prediction kernel.
 *
 * @param workload  The kernel.
 * @param generator Sequence generator (fixes N and granularity).
 * @param encoder   Dependence encoder.
 * @param seeds     Trace seeds to run.
 * @param negatives Whether negative examples are synthesised.
 * @param deps_out  If non-null, accumulates the RAW-dependence count.
 */
inline Dataset
datasetFromRuns(const Workload &workload, const InputGenerator &generator,
                DependenceEncoder &encoder,
                const std::vector<std::uint64_t> &seeds, bool negatives,
                std::size_t *deps_out = nullptr)
{
    Dataset data;
    for (const std::uint64_t seed : seeds) {
        WorkloadParams params;
        params.seed = seed;
        const Trace trace = workload.record(params);
        const GeneratedSequences sequences =
            generator.process(trace, negatives);
        if (deps_out != nullptr)
            *deps_out += sequences.dependence_count;
        data.merge(
            InputGenerator::toDataset(sequences, encoder, negatives));
    }
    return data;
}

/** Seeds [base, base + count). */
inline std::vector<std::uint64_t>
seedRange(std::uint64_t base, std::size_t count)
{
    std::vector<std::uint64_t> seeds(count);
    for (std::size_t i = 0; i < count; ++i)
        seeds[i] = base + i;
    return seeds;
}

} // namespace act::bench

#endif // ACT_BENCH_BENCH_UTIL_HH
