/**
 * @file
 * Table VI reproduction: injected communication bugs in *new code*.
 *
 * Per Section VI-C, a bug is injected into a named function of each
 * host kernel and that function's dependences are withheld from
 * training (the function is "new code" the network never saw). The
 * table reports the post-filter rank of the injected bug and the
 * fraction of Debug Buffer entries the Correct Set pruned (paper
 * average: ~86% filtered, every bug diagnosed).
 */

#include "bench/bench_util.hh"

namespace act
{
namespace
{

using bench::format;

void
run()
{
    bench::banner("Table VI: injected bugs in new code",
                  "Table VI (5 injected bugs; function excluded from "
                  "training; paper: avg filter ~86%, all ranked)");

    const bench::Table table({16, 22, 10, 10, 8});
    table.row({"program", "function", "filter", "rank", "logged"});
    table.rule();

    OnlineStats filter;
    std::size_t diagnosed = 0;
    for (const auto &target : injectedBugTargets()) {
        std::vector<Finding> findings;
        const auto workload =
            makeInjectedWorkload(target.kernel, target.function, &findings);
        if (workload == nullptr) {
            table.row({target.kernel, target.function, "-", "-", "-"});
            std::fprintf(stderr, "%s", formatFindings(findings).c_str());
            continue;
        }
        const std::uint32_t chain =
            workload->chainByFunction(target.function);

        DiagnosisSetup setup;
        setup.training = bench::standardTraining(10);
        setup.training.exclude_load_pcs = workload->chainLoadPcs(chain);
        const DiagnosisResult result = diagnoseFailure(*workload, setup);

        filter.add(result.report.filterFraction());
        if (result.rank)
            ++diagnosed;
        table.row({target.kernel, target.function,
                   format("%.0f%%",
                          result.report.filterFraction() * 100.0),
                   result.rank ? format("%zu", *result.rank) : "-",
                   result.root_logged ? "yes" : "no"});
    }
    table.rule();
    table.row({"average", "", format("%.0f%%", filter.mean() * 100.0),
               "", ""});
    std::printf("\n%zu / 5 injected bugs diagnosed.\n", diagnosed);
}

} // namespace
} // namespace act

int
main()
{
    act::registerAllWorkloads();
    act::run();
    return 0;
}
