/**
 * @file
 * Machine-readable benchmark results.
 *
 * Every performance artefact in the repo used to be console tables
 * only; nothing could diff two builds. This header gives the benches a
 * tiny shared vocabulary — a micro-benchmark result (name, ns/op,
 * events/s), a wall-clock entry (name, ms) and a whole-run report —
 * plus JSON serialisation, a parser for the same format, and the
 * trend comparison `tools/benchtrend --check` gates CI on. The format
 * is deliberately flat so a committed baseline stays reviewable in a
 * plain diff.
 */

#ifndef ACT_BENCH_BENCH_JSON_HH
#define ACT_BENCH_BENCH_JSON_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace act::bench
{

/** One micro-benchmark measurement. */
struct MicroResult
{
    std::string name;
    double ns_per_op = 0.0;   //!< Nanoseconds per operation (best rep).
    double events_per_s = 0.0; //!< Throughput in events (ops) per second.
    std::uint64_t iterations = 0; //!< Iterations of the fastest rep.
};

/** One coarse wall-clock measurement (campaign or bench run). */
struct WallClockResult
{
    std::string name;
    double ms = 0.0;
};

/**
 * One counter-derived telemetry figure (e.g. campaign events/s from
 * the metrics registry rather than harness-side arithmetic). Kept
 * separate from MicroResult so compareReports never gates on it:
 * telemetry rows are context for the reviewer, not CI thresholds.
 */
struct TelemetryEntry
{
    std::string name;
    double value = 0.0;
};

/** A full benchmark run: micro results plus wall-clock entries. */
struct BenchReport
{
    std::string schema = "act-bench-trend-v1";
    std::string build_type; //!< e.g. "Release".
    std::vector<MicroResult> results;
    std::vector<WallClockResult> wall_clock;
    std::vector<TelemetryEntry> telemetry;

    const MicroResult *find(const std::string &name) const;
};

/** Serialise @p report (stable key order, one result per line). */
std::string toJson(const BenchReport &report);

/**
 * Parse a report previously produced by toJson().
 *
 * @return false when the file is missing, unparsable or carries an
 *         unknown schema tag.
 */
bool loadBenchReport(const std::string &path, BenchReport &out);

/** Write @p report to @p path. @return false on I/O failure. */
bool writeBenchReport(const BenchReport &report, const std::string &path);

/** Outcome of comparing one micro result against its baseline. */
struct TrendEntry
{
    std::string name;
    double current_events_per_s = 0.0;
    double baseline_events_per_s = 0.0;
    double ratio = 0.0;      //!< current / baseline (>1 = faster).
    bool regression = false; //!< ratio < 1 - threshold.
};

/**
 * Compare every micro result present in both reports.
 *
 * @param threshold Tolerated fractional slowdown (0.3 = fail when more
 *                  than 30% slower than the baseline).
 */
std::vector<TrendEntry> compareReports(const BenchReport &current,
                                       const BenchReport &baseline,
                                       double threshold);

// --- Self-timed micro-benchmark harness ----------------------------

/**
 * Calibrating micro-benchmark driver shared by `tools/benchtrend` (and
 * usable from any bench binary): runs @p body(iterations) repeatedly,
 * scaling the iteration count until one repetition takes at least
 * `min_rep_ms`, then keeps the fastest of `reps` repetitions — the
 * standard best-of-N estimator that filters scheduler noise.
 */
class MicroHarness
{
  public:
    double min_rep_ms = 50.0;
    int reps = 5;

    /**
     * Measure @p body.
     *
     * @param name            Result name.
     * @param events_per_iter How many logical events one iteration of
     *                        the body's inner loop processes.
     * @param body            Callable `void(std::uint64_t iterations)`.
     */
    template <typename Body>
    MicroResult
    run(const std::string &name, double events_per_iter, Body &&body) const
    {
        using Clock = std::chrono::steady_clock;
        std::uint64_t iters = 64;
        double best_ns = 0.0;

        // Calibrate: grow until one repetition is long enough to time.
        for (;;) {
            const auto t0 = Clock::now();
            body(iters);
            const double ms =
                std::chrono::duration<double, std::milli>(Clock::now() -
                                                          t0)
                    .count();
            if (ms >= min_rep_ms) {
                best_ns = ms * 1e6;
                break;
            }
            const double grow =
                ms > 0.1 ? (min_rep_ms * 1.2) / ms : 8.0;
            iters = static_cast<std::uint64_t>(
                static_cast<double>(iters) * (grow > 8.0 ? 8.0 : grow));
            if (iters < 64)
                iters = 64;
        }

        for (int r = 1; r < reps; ++r) {
            const auto t0 = Clock::now();
            body(iters);
            const double ns =
                std::chrono::duration<double, std::nano>(Clock::now() - t0)
                    .count();
            if (ns < best_ns)
                best_ns = ns;
        }

        MicroResult result;
        result.name = name;
        result.iterations = iters;
        const double ops =
            static_cast<double>(iters) * events_per_iter;
        result.ns_per_op = best_ns / ops;
        result.events_per_s = ops / (best_ns * 1e-9);
        return result;
    }
};

/** Compiler barrier: forces @p value to be materialised. */
template <typename T>
inline void
keep(T &&value)
{
    asm volatile("" : : "g"(value) : "memory");
}

} // namespace act::bench

#endif // ACT_BENCH_BENCH_JSON_HH
