/**
 * @file
 * Figure 9 reproduction (inferred): overhead sensitivity to the two
 * hardware knobs Table III sweeps — the number of multiply-add units
 * per neuron (1, 2, 5, 10; Section IV-A's latency knob) and the input
 * FIFO depth (4, 8, 16 entries).
 */

#include "bench/bench_util.hh"

namespace act
{
namespace
{

using bench::format;

double
overheadWith(const Workload &workload, const TrainedModel &model,
             const Trace &trace, std::uint32_t muladd_units,
             std::uint32_t fifo_entries)
{
    SystemConfig config;
    config.act_enabled = false;
    System baseline(config);
    baseline.run(trace);

    config.act_enabled = true;
    config.act.topology = model.topology;
    config.act.hw.neuron.muladd_units = muladd_units;
    config.act.hw.fifo_entries = fifo_entries;
    PairEncoder encoder;
    WeightStore store(model.topology);
    store.setAll(workload.threadCount(), model.weights);
    System with_act(config, encoder, store);
    with_act.run(trace);

    return static_cast<double>(with_act.stats().cycles -
                               baseline.stats().cycles) /
           static_cast<double>(baseline.stats().cycles);
}

void
run()
{
    bench::banner("Figure 9: overhead sensitivity",
                  "Table III sweeps: multiply-add units {1,2,5,10} "
                  "(neuron latency T = ceil(M/x) + 2), input FIFO "
                  "{4,8,16}");

    const std::vector<std::string> programs = {"lu", "ocean", "canneal",
                                               "swaptions"};

    std::printf("--- multiply-add units (FIFO fixed at 8) ---\n");
    {
        const bench::Table table({16, 12, 12, 12, 12});
        table.row({"program", "x=1 (T=12)", "x=2 (T=7)", "x=5 (T=4)",
                   "x=10 (T=3)"});
        table.rule();
        for (const auto &name : programs) {
            const auto workload = makeWorkload(name);
            PairEncoder encoder;
            OfflineTrainingConfig training = bench::standardTraining(6);
            training.trainer.max_epochs = 300;
            const TrainedModel model =
                offlineTrain(*workload, encoder, training);
            WorkloadParams params;
            params.seed = 300;
            const Trace trace = workload->record(params);
            std::vector<std::string> cells{name};
            for (const std::uint32_t units : {1u, 2u, 5u, 10u}) {
                cells.push_back(format(
                    "%.1f%%",
                    overheadWith(*workload, model, trace, units, 8) *
                        100.0));
            }
            table.row(cells);
        }
    }

    std::printf("\n--- input FIFO depth (2 multiply-add units) ---\n");
    {
        const bench::Table table({16, 12, 12, 12});
        table.row({"program", "4 entries", "8 entries", "16 entries"});
        table.rule();
        for (const auto &name : programs) {
            const auto workload = makeWorkload(name);
            PairEncoder encoder;
            OfflineTrainingConfig training = bench::standardTraining(6);
            training.trainer.max_epochs = 300;
            const TrainedModel model =
                offlineTrain(*workload, encoder, training);
            WorkloadParams params;
            params.seed = 300;
            const Trace trace = workload->record(params);
            std::vector<std::string> cells{name};
            for (const std::uint32_t fifo : {4u, 8u, 16u}) {
                cells.push_back(format(
                    "%.1f%%",
                    overheadWith(*workload, model, trace, 2, fifo) *
                        100.0));
            }
            table.row(cells);
        }
    }
    std::printf("\nexpected shape: overhead falls with more multiply-add "
                "units (shorter neuron latency)\nand with deeper FIFOs "
                "(bursts absorbed without retire stalls).\n");
}

} // namespace
} // namespace act

int
main()
{
    act::registerAllWorkloads();
    act::run();
    return 0;
}
