/**
 * @file
 * Table V reproduction: diagnosis of the 11 real-world bugs, comparing
 * ACT against the Aviso-style constraint learner and the PBI-style
 * sampling diagnoser.
 *
 * Per bug: ACT trains offline on correct traces, runs the failing
 * execution once on the simulated machine, and postprocesses the Debug
 * Buffer (position, filter rate, final rank). Aviso receives failing
 * runs one at a time until the root constraint surfaces (or 10 runs
 * pass). PBI receives 15 correct runs plus the single failing run with
 * every instruction sampled.
 *
 * MySQL#1's silent corruption floods the Debug Buffer: with the
 * default 60 entries the root cause is evicted, so (as in the paper)
 * its row is produced with an enlarged buffer and the position column
 * reports where the entry sat.
 *
 * The three schemes are three job kinds in the campaign runner
 * (`src/runner/`, campaign "table5": 11 bugs x {ACT, Aviso, PBI} = 33
 * jobs); the shared trace cache means each bug's correct runs are
 * recorded once instead of three times.
 */

#include "bench/bench_util.hh"

#include "runner/campaign.hh"
#include "runner/runner.hh"

namespace act
{
namespace
{

using bench::format;

const char *
bugClassName(BugClass c)
{
    switch (c) {
      case BugClass::kOrderViolation: return "order vio.";
      case BugClass::kAtomicityViolation: return "atom. vio.";
      case BugClass::kSemantic: return "semantic";
      case BugClass::kBufferOverflow: return "buf. overflow";
      default: return "-";
    }
}

void
run()
{
    bench::banner("Table V: diagnosis of real bugs",
                  "Table V (11 real-world bugs; ACT vs Aviso vs PBI)");

    const Campaign campaign = makeCampaign("table5");
    const CampaignRunResult outcome =
        runCampaign(campaign, bench::campaignRunOptions());

    const bench::Table table({11, 15, 7, 8, 9, 8, 6, 7, 11, 12});
    table.row({"bug", "class", "status", "#train", "dbg.pos", "filter",
               "ACT", "oracle", "Aviso(#f)", "PBI(total)"});
    table.rule();

    // Jobs are laid out bug-major: (ACT, Aviso, PBI) per bug.
    std::size_t diagnosed = 0;
    for (std::size_t i = 0; i + 2 < outcome.results.size(); i += 3) {
        const JobSpec &spec = campaign.jobs[i];
        const JobResult &act = outcome.results[i];
        const JobResult &aviso = outcome.results[i + 1];
        const JobResult &pbi = outcome.results[i + 2];
        if (act.metrics.at("diagnosed") > 0.0)
            ++diagnosed;

        const auto workload = makeWorkload(spec.workload);
        table.row(
            {spec.workload, bugClassName(workload->bugClass()),
             workload->failureKind() == FailureKind::kCrash ? "crash"
                                                            : "comp.",
             format("%zu", spec.knobs.train_traces),
             act.labels.at("dbg.pos"),
             format("%.0f%%",
                    act.metrics.at("filter_fraction") * 100.0),
             act.labels.at("rank"), act.labels.at("oracle"),
             aviso.labels.at("cell"), pbi.labels.at("cell")});
    }
    table.rule();
    std::printf("\nACT diagnosed %zu / 11 failures from a single failing "
                "run.\npaper shape: every bug found, most ranks <= 5 "
                "(worst 8); Aviso needs multiple failures, misses Apache "
                "and all sequential bugs; PBI misses Aget, MySQL#3 and "
                "both semantic bugs, with generally worse ranks (paste "
                "being its one win).\noracle column: vector-clock "
                "happens-before label of the root-cause dependence on "
                "the failing trace — \"race\" for every concurrency bug, "
                "\"none\" for the sequential ones.\n",
                diagnosed);
    bench::printRunSummary(outcome);
}

} // namespace
} // namespace act

int
main()
{
    act::registerAllWorkloads();
    act::run();
    return 0;
}
