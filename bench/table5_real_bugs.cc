/**
 * @file
 * Table V reproduction: diagnosis of the 11 real-world bugs, comparing
 * ACT against the Aviso-style constraint learner and the PBI-style
 * sampling diagnoser.
 *
 * Per bug: ACT trains offline on correct traces, runs the failing
 * execution once on the simulated machine, and postprocesses the Debug
 * Buffer (position, filter rate, final rank). Aviso receives failing
 * runs one at a time until the root constraint surfaces (or 10 runs
 * pass). PBI receives 15 correct runs plus the single failing run with
 * every instruction sampled.
 *
 * MySQL#1's silent corruption floods the Debug Buffer: with the
 * default 60 entries the root cause is evicted, so (as in the paper)
 * its row is produced with an enlarged buffer and the position column
 * reports where the entry sat.
 */

#include "baselines/aviso.hh"
#include "baselines/pbi.hh"
#include "bench/bench_util.hh"

namespace act
{
namespace
{

using bench::format;

const char *
bugClassName(BugClass c)
{
    switch (c) {
      case BugClass::kOrderViolation: return "order vio.";
      case BugClass::kAtomicityViolation: return "atom. vio.";
      case BugClass::kSemantic: return "semantic";
      case BugClass::kBufferOverflow: return "buf. overflow";
      default: return "-";
    }
}

/** Run the Aviso baseline; returns (rank, failures) or misses. */
std::string
runAviso(const Workload &workload)
{
    if (!workload.concurrent())
        return "n/a (seq.)";
    AvisoDiagnoser aviso((AvisoConfig()));
    for (const std::uint64_t seed : bench::seedRange(500, 15)) {
        WorkloadParams params;
        params.seed = seed;
        aviso.addCorrectTrace(workload.record(params));
    }
    const RawDependence root = workload.buggyDependence();
    for (std::uint32_t failure = 1; failure <= 10; ++failure) {
        WorkloadParams params;
        params.seed = 900 + failure;
        params.trigger_failure = true;
        aviso.addFailureTrace(workload.record(params));
        const AvisoResult result =
            aviso.diagnose(root.store_pc, root.load_pc);
        if (result.found)
            return format("%zu (%u)", *result.rank, failure);
    }
    return "- (10)";
}

/** Run the PBI baseline; returns "rank (total)" or "- (total)". */
std::string
runPbi(const Workload &workload, const std::vector<Pc> &root_pcs)
{
    PbiConfig config;
    PbiDiagnoser pbi(config);
    for (const std::uint64_t seed : bench::seedRange(500, 15)) {
        WorkloadParams params;
        params.seed = seed;
        pbi.addCorrectTrace(workload.record(params));
    }
    WorkloadParams params;
    params.seed = 999;
    params.trigger_failure = true;
    pbi.addFailureTrace(workload.record(params));
    const PbiResult result = pbi.diagnose(root_pcs);
    if (result.rank)
        return format("%zu (%zu)", *result.rank, result.total_predicates);
    return format("- (%zu)", result.total_predicates);
}

void
run()
{
    bench::banner("Table V: diagnosis of real bugs",
                  "Table V (11 real-world bugs; ACT vs Aviso vs PBI)");

    const bench::Table table({11, 15, 7, 8, 9, 8, 6, 11, 12});
    table.row({"bug", "class", "status", "#train", "dbg.pos", "filter",
               "ACT", "Aviso(#f)", "PBI(total)"});
    table.rule();

    std::size_t diagnosed = 0;
    for (const auto &name : realBugNames()) {
        const auto workload = makeWorkload(name);

        DiagnosisSetup setup;
        setup.training = bench::standardTraining(10);
        if (name == "mysql1") {
            // The paper: the buggy sequence is not in the default
            // 60-entry buffer; a larger one is needed.
            setup.system.act.debug_buffer_entries = 400;
        }
        const DiagnosisResult act = diagnoseFailure(*workload, setup);
        if (act.rank)
            ++diagnosed;

        std::vector<Pc> pbi_roots{workload->buggyDependence().load_pc};
        if (name == "pbzip2") {
            // The consumer's emptiness check also implicates the bug.
            pbi_roots.push_back(AddressMap(26).pc(12, 4));
        }

        table.row(
            {name, bugClassName(workload->bugClass()),
             workload->failureKind() == FailureKind::kCrash ? "crash"
                                                            : "comp.",
             "10",
             act.debug_position ? format("%zu", *act.debug_position)
                                : "evicted",
             format("%.0f%%", act.report.filterFraction() * 100.0),
             act.rank ? format("%zu", *act.rank) : "-",
             runAviso(*workload), runPbi(*workload, pbi_roots)});
    }
    table.rule();
    std::printf("\nACT diagnosed %zu / 11 failures from a single failing "
                "run.\npaper shape: every bug found, most ranks <= 5 "
                "(worst 8); Aviso needs multiple failures, misses Apache "
                "and all sequential bugs; PBI misses Aget, MySQL#3 and "
                "both semantic bugs, with generally worse ranks (paste "
                "being its one win).\n",
                diagnosed);
}

} // namespace
} // namespace act

int
main()
{
    act::registerAllWorkloads();
    act::run();
    return 0;
}
