/**
 * @file
 * Tests for the PBI sampling/statistical baseline.
 */

#include <gtest/gtest.h>

#include "baselines/pbi.hh"
#include "workloads/workload.hh"

namespace act
{
namespace
{

void
emit(Trace &trace, EventKind kind, ThreadId tid, Pc pc, Addr addr,
     bool taken = false)
{
    TraceEvent e;
    e.kind = kind;
    e.tid = tid;
    e.pc = pc;
    e.addr = addr;
    e.taken = taken;
    trace.append(e);
}

/** Correct runs: branch 0x50 always taken. Failing run: not taken. */
Trace
branchTrace(bool failing)
{
    Trace trace;
    for (int i = 0; i < 20; ++i) {
        emit(trace, EventKind::kStore, 0, 0x10, 0x1000);
        emit(trace, EventKind::kLoad, 0, 0x20, 0x1000);
        emit(trace, EventKind::kBranch, 0, 0x50, 0x0, true);
    }
    if (failing)
        emit(trace, EventKind::kBranch, 0, 0x50, 0x0, false);
    return trace;
}

TEST(Pbi, BranchFlipFoundAtRankOne)
{
    PbiDiagnoser pbi(PbiConfig{});
    for (int i = 0; i < 15; ++i)
        pbi.addCorrectTrace(branchTrace(false));
    pbi.addFailureTrace(branchTrace(true));
    const PbiResult result = pbi.diagnose({0x50});
    EXPECT_FALSE(result.missed);
    ASSERT_TRUE(result.rank.has_value());
    EXPECT_EQ(*result.rank, 1u);
    EXPECT_EQ(result.predictive, 1u);
    EXPECT_GT(result.total_predicates, 1u);
}

TEST(Pbi, IdenticalBehaviourIsMissed)
{
    // The buggy instruction observes the same events in correct and
    // failing runs: no predictive predicate exists (the Aget / gzip /
    // seq situation).
    PbiDiagnoser pbi(PbiConfig{});
    for (int i = 0; i < 15; ++i)
        pbi.addCorrectTrace(branchTrace(false));
    pbi.addFailureTrace(branchTrace(false));
    const PbiResult result = pbi.diagnose({0x20});
    EXPECT_TRUE(result.missed);
    EXPECT_FALSE(result.rank.has_value());
}

TEST(Pbi, CoherenceStateChangeIsPredictive)
{
    // Correct: core 0 both writes and reads (M state). Failing: the
    // other thread wrote in between (I at the read).
    auto makeTrace = [&](bool failing) {
        Trace trace;
        for (int i = 0; i < 10; ++i) {
            emit(trace, EventKind::kStore, 0, 0x10, 0x2000);
            if (failing && i == 8)
                emit(trace, EventKind::kStore, 1, 0x99, 0x2000);
            emit(trace, EventKind::kLoad, 0, 0x20, 0x2000);
        }
        return trace;
    };
    PbiDiagnoser pbi(PbiConfig{});
    for (int i = 0; i < 15; ++i)
        pbi.addCorrectTrace(makeTrace(false));
    pbi.addFailureTrace(makeTrace(true));
    const PbiResult result = pbi.diagnose({0x20});
    EXPECT_FALSE(result.missed);
    ASSERT_TRUE(result.rank.has_value());
    EXPECT_LE(*result.rank, 3u);
}

TEST(Pbi, PhantomPredicatesDegradeRank)
{
    // Benign nondeterminism: many lines randomly written by either
    // thread. With only 15 correct runs, the failing run exhibits
    // state combinations never seen before, which outrank nothing in
    // particular but dilute the list.
    Rng rng(3);
    auto makeTrace = [&](std::uint64_t seed, bool failing) {
        Rng local(seed);
        Trace trace;
        for (int i = 0; i < 150; ++i) {
            const Addr line = 0x4000 + local.next(150) * 64;
            emit(trace, EventKind::kStore,
                 static_cast<ThreadId>(local.next(2)), 0x10000 + line / 64 * 8,
                 line);
            emit(trace, EventKind::kLoad,
                 static_cast<ThreadId>(local.next(2)), 0x20000 + line / 64 * 8,
                 line);
        }
        emit(trace, EventKind::kStore, 0, 0x10, 0x2000);
        if (failing)
            emit(trace, EventKind::kStore, 1, 0x99, 0x2000);
        emit(trace, EventKind::kLoad, 0, 0x20, 0x2000);
        return trace;
    };
    PbiDiagnoser pbi(PbiConfig{});
    for (int i = 0; i < 15; ++i)
        pbi.addCorrectTrace(makeTrace(100 + i, false));
    pbi.addFailureTrace(makeTrace(999, true));
    const PbiResult result = pbi.diagnose({0x20});
    EXPECT_FALSE(result.missed);
    ASSERT_TRUE(result.rank.has_value());
    // The root predicate competes with phantom failure-only
    // predicates created by the benign nondeterminism.
    EXPECT_GE(result.predictive, 2u);
    EXPECT_LE(*result.rank, result.predictive);
    EXPECT_GT(result.total_predicates, 100u);
}

TEST(Pbi, SamplingReducesPredicates)
{
    PbiConfig full;
    PbiConfig sparse;
    sparse.sample_rate = 0.05;
    PbiDiagnoser a(full);
    PbiDiagnoser b(sparse);
    a.addFailureTrace(branchTrace(true));
    b.addFailureTrace(branchTrace(true));
    EXPECT_LT(b.diagnose({0x50}).total_predicates,
              a.diagnose({0x50}).total_predicates);
}

TEST(Pbi, EventNamesDistinct)
{
    EXPECT_STRNE(pbiEventName(PbiEvent::kStateInvalid),
                 pbiEventName(PbiEvent::kStateModified));
    EXPECT_STRNE(pbiEventName(PbiEvent::kBranchTaken),
                 pbiEventName(PbiEvent::kBranchNotTaken));
}

} // namespace
} // namespace act
