/**
 * @file
 * Tests for the Aviso constraint-learning baseline.
 */

#include <gtest/gtest.h>

#include "baselines/aviso.hh"

#include "common/rng.hh"

namespace act
{
namespace
{

void
emit(Trace &trace, EventKind kind, ThreadId tid, Pc pc, Addr addr)
{
    TraceEvent e;
    e.kind = kind;
    e.tid = tid;
    e.pc = pc;
    e.addr = addr;
    trace.append(e);
}

/**
 * Two threads share address 0x1000. In failing runs, thread 1's store
 * at 0xBAD lands right before thread 0's load at 0x20.
 */
Trace
sharedTrace(bool failing, std::uint64_t seed)
{
    Rng rng(seed);
    Trace trace;
    for (int i = 0; i < 60; ++i) {
        emit(trace, EventKind::kStore, 0, 0x10, 0x1000);
        emit(trace, EventKind::kLoad, 1, 0x30, 0x1000);
        if (rng.chance(0.3))
            emit(trace, EventKind::kLock, 1, 0x40, 0x9000);
    }
    if (failing) {
        emit(trace, EventKind::kStore, 1, 0xBAD, 0x1000);
        emit(trace, EventKind::kLoad, 0, 0x20, 0x1000);
    }
    return trace;
}

TEST(Aviso, SequentialProgramsNotApplicable)
{
    AvisoDiagnoser aviso(AvisoConfig{});
    Trace trace;
    emit(trace, EventKind::kStore, 0, 0x10, 0x1000);
    emit(trace, EventKind::kLoad, 0, 0x20, 0x1000);
    aviso.addFailureTrace(trace);
    aviso.addFailureTrace(trace);
    const AvisoResult result = aviso.diagnose(0x10, 0x20);
    EXPECT_FALSE(result.applicable);
    EXPECT_FALSE(result.found);
}

TEST(Aviso, SingleFailureIsNotEnough)
{
    AvisoDiagnoser aviso(AvisoConfig{});
    for (int i = 0; i < 10; ++i)
        aviso.addCorrectTrace(sharedTrace(false, 100 + i));
    aviso.addFailureTrace(sharedTrace(true, 999));
    const AvisoResult result = aviso.diagnose(0xBAD, 0x20);
    EXPECT_TRUE(result.applicable);
    EXPECT_FALSE(result.found) << "needs the bug to recur";
}

TEST(Aviso, FindsConstraintAfterSecondFailure)
{
    AvisoDiagnoser aviso(AvisoConfig{});
    for (int i = 0; i < 10; ++i)
        aviso.addCorrectTrace(sharedTrace(false, 100 + i));
    aviso.addFailureTrace(sharedTrace(true, 999));
    aviso.addFailureTrace(sharedTrace(true, 998));
    const AvisoResult result = aviso.diagnose(0xBAD, 0x20);
    EXPECT_TRUE(result.found);
    ASSERT_TRUE(result.rank.has_value());
    EXPECT_LE(*result.rank, 12u);
    EXPECT_EQ(result.failures_used, 2u);
}

TEST(Aviso, PairsSeenInCorrectRunsAreNotConstraints)
{
    // The producer/consumer pair (0x10 -> 0x30) happens in every run;
    // it must never surface as a constraint.
    AvisoDiagnoser aviso(AvisoConfig{});
    for (int i = 0; i < 10; ++i)
        aviso.addCorrectTrace(sharedTrace(false, 100 + i));
    aviso.addFailureTrace(sharedTrace(true, 999));
    aviso.addFailureTrace(sharedTrace(true, 998));
    const AvisoResult result = aviso.diagnose(0x10, 0x30);
    EXPECT_FALSE(result.found);
}

TEST(Aviso, DistantPairsNeverBecomeCandidates)
{
    // The Apache situation: hundreds of events separate the racing
    // store from the crashing load.
    AvisoConfig config;
    config.pair_distance = 30;
    AvisoDiagnoser aviso(config);
    auto distant = [](std::uint64_t seed) {
        Trace trace = sharedTrace(false, seed);
        TraceEvent e;
        emit(trace, EventKind::kStore, 1, 0xBAD, 0x1000);
        for (int i = 0; i < 50; ++i)
            emit(trace, EventKind::kLoad, 1, 0x30, 0x1000);
        emit(trace, EventKind::kLoad, 0, 0x20, 0x1000);
        (void)e;
        return trace;
    };
    for (int i = 0; i < 10; ++i)
        aviso.addCorrectTrace(sharedTrace(false, 100 + i));
    for (int f = 0; f < 10; ++f)
        aviso.addFailureTrace(distant(900 + f));
    const AvisoResult result = aviso.diagnose(0xBAD, 0x20);
    EXPECT_FALSE(result.found) << "pair outside the event window";
}

TEST(Aviso, LockEventsParticipateInPairs)
{
    AvisoDiagnoser aviso(AvisoConfig{});
    auto lockTrace = [](bool failing) {
        Trace trace;
        for (int i = 0; i < 30; ++i) {
            emit(trace, EventKind::kStore, 0, 0x10, 0x1000);
            emit(trace, EventKind::kLoad, 1, 0x30, 0x1000);
        }
        if (failing) {
            emit(trace, EventKind::kUnlock, 1, 0x60, 0x9000);
            emit(trace, EventKind::kLoad, 0, 0x20, 0x1000);
        }
        return trace;
    };
    aviso.addCorrectTrace(lockTrace(false));
    aviso.addFailureTrace(lockTrace(true));
    aviso.addFailureTrace(lockTrace(true));
    const AvisoResult result = aviso.diagnose(0x60, 0x20);
    EXPECT_TRUE(result.found);
}

} // namespace
} // namespace act
