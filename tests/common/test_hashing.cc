/**
 * @file
 * Tests for the deterministic hash mixers.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/hashing.hh"

namespace act
{
namespace
{

TEST(Hashing, Mix64Deterministic)
{
    EXPECT_EQ(mix64(12345), mix64(12345));
    EXPECT_NE(mix64(12345), mix64(12346));
}

TEST(Hashing, Mix64SpreadsSequentialInputs)
{
    // Sequential inputs must not produce sequential outputs.
    std::set<std::uint64_t> high_bytes;
    for (std::uint64_t i = 0; i < 256; ++i)
        high_bytes.insert(mix64(i) >> 56);
    EXPECT_GT(high_bytes.size(), 150u);
}

TEST(Hashing, Mix64NoCollisionsOnSmallRange)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 100000; ++i)
        seen.insert(mix64(i));
    EXPECT_EQ(seen.size(), 100000u);
}

TEST(Hashing, CombineOrderSensitive)
{
    EXPECT_NE(hashCombine(mix64(1), 2), hashCombine(mix64(2), 1));
}

TEST(Hashing, Hash3DependsOnAllInputs)
{
    const std::uint64_t base = hash3(1, 2, 3);
    EXPECT_NE(base, hash3(9, 2, 3));
    EXPECT_NE(base, hash3(1, 9, 3));
    EXPECT_NE(base, hash3(1, 2, 9));
}

TEST(Hashing, HashToUnitRange)
{
    for (std::uint64_t i = 0; i < 10000; ++i) {
        const double v = hashToUnit(mix64(i));
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Hashing, HashToUnitMeanIsHalf)
{
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += hashToUnit(mix64(static_cast<std::uint64_t>(i)));
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Hashing, ConstexprUsable)
{
    constexpr std::uint64_t h = hash3(1, 2, 3);
    static_assert(h == hash3(1, 2, 3));
    EXPECT_EQ(h, hash3(1, 2, 3));
}

} // namespace
} // namespace act
