/**
 * @file
 * Tests for the saturating fixed-point arithmetic of the hardware NN.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/fixed_point.hh"

namespace act
{
namespace
{

TEST(FixedPoint, ZeroByDefault)
{
    HwFixed v;
    EXPECT_EQ(v.raw(), 0);
    EXPECT_DOUBLE_EQ(v.toDouble(), 0.0);
}

TEST(FixedPoint, RoundTripWithinPrecision)
{
    for (const double v : {0.0, 1.0, -1.0, 0.5, -0.25, 3.14159, -2.71828,
                           100.0, -100.0}) {
        const HwFixed f = HwFixed::fromDouble(v);
        EXPECT_NEAR(f.toDouble(), v, 1.0 / HwFixed::kScale);
    }
}

TEST(FixedPoint, AdditionAndSubtraction)
{
    const HwFixed a = HwFixed::fromDouble(1.5);
    const HwFixed b = HwFixed::fromDouble(2.25);
    EXPECT_NEAR((a + b).toDouble(), 3.75, 1e-4);
    EXPECT_NEAR((a - b).toDouble(), -0.75, 1e-4);
}

TEST(FixedPoint, Multiplication)
{
    const HwFixed a = HwFixed::fromDouble(1.5);
    const HwFixed b = HwFixed::fromDouble(-2.0);
    EXPECT_NEAR((a * b).toDouble(), -3.0, 1e-3);
}

TEST(FixedPoint, SaturatesInsteadOfWrapping)
{
    const HwFixed big = HwFixed::fromDouble(30000.0);
    const HwFixed sum = big + big;
    // Q15.16 max is ~32768; the sum saturates rather than going
    // negative.
    EXPECT_GT(sum.toDouble(), 30000.0);
    const HwFixed prod = big * big;
    EXPECT_GT(prod.toDouble(), 30000.0);
}

TEST(FixedPoint, NegationAndComparison)
{
    const HwFixed a = HwFixed::fromDouble(1.25);
    EXPECT_NEAR((-a).toDouble(), -1.25, 1e-4);
    EXPECT_LT(-a, a);
    EXPECT_EQ(a, HwFixed::fromDouble(1.25));
}

TEST(FixedPoint, FromRaw)
{
    const auto v = HwFixed::fromRaw(1 << 16);
    EXPECT_DOUBLE_EQ(v.toDouble(), 1.0);
}

TEST(FixedPoint, DifferentPrecisions)
{
    using Q8 = FixedPoint<8>;
    const Q8 v = Q8::fromDouble(0.12345);
    // 8 fractional bits: resolution 1/256.
    EXPECT_NEAR(v.toDouble(), 0.12345, 1.0 / 256.0);
}

/** Property sweep: (a*b) in fixed point tracks double multiply. */
class FixedMulProperty
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(FixedMulProperty, TracksDoubleMultiply)
{
    const auto [a, b] = GetParam();
    const double exact = a * b;
    const double approx =
        (HwFixed::fromDouble(a) * HwFixed::fromDouble(b)).toDouble();
    EXPECT_NEAR(approx, exact,
                std::abs(exact) * 1e-3 + 4.0 / HwFixed::kScale);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, FixedMulProperty,
    ::testing::Values(std::pair{0.1, 0.1}, std::pair{-0.5, 0.25},
                      std::pair{2.0, -3.5}, std::pair{10.0, 10.0},
                      std::pair{-7.25, -0.125}, std::pair{0.0, 5.0}));

} // namespace
} // namespace act
