/**
 * @file
 * Tests for the deterministic xoshiro256** generator.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"

namespace act
{
namespace
{

TEST(Rng, SameSeedSameStream)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a() == b())
            ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, NextRespectsBound)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.next(bound), bound);
    }
}

TEST(Rng, NextBoundOneAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.next(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 500; ++i) {
        const std::int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit with 500 draws
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, UniformWithinBounds)
{
    Rng rng(15);
    for (int i = 0; i < 500; ++i) {
        const double v = rng.uniform(-2.5, 4.5);
        EXPECT_GE(v, -2.5);
        EXPECT_LT(v, 4.5);
    }
}

TEST(Rng, ChanceEdgeCases)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
        EXPECT_FALSE(rng.chance(-0.5));
        EXPECT_TRUE(rng.chance(1.5));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(19);
    int hits = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(21);
    double sum = 0.0;
    double sum_sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.gaussian(5.0, 2.0);
        sum += v;
        sum_sq += v * v;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 5.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ForkIsIndependentOfParentContinuation)
{
    Rng parent1(33);
    Rng parent2(33);
    Rng child1 = parent1.fork(5);
    Rng child2 = parent2.fork(5);
    // Identical parents fork identical children.
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(child1(), child2());
}

TEST(Rng, ForkedStreamsDiffer)
{
    Rng parent(33);
    Rng a = parent.fork(1);
    Rng b = parent.fork(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a() == b())
            ++equal;
    }
    EXPECT_LT(equal, 3);
}

/** Property sweep: next(bound) distributions stay roughly uniform. */
class RngUniformity : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngUniformity, RoughlyUniform)
{
    const std::uint64_t bound = GetParam();
    Rng rng(bound * 31 + 7);
    std::vector<int> counts(bound, 0);
    const int per_bucket = 400;
    const int trials = static_cast<int>(bound) * per_bucket;
    for (int i = 0; i < trials; ++i)
        ++counts[rng.next(bound)];
    for (std::uint64_t b = 0; b < bound; ++b) {
        EXPECT_GT(counts[b], per_bucket / 2) << "bucket " << b;
        EXPECT_LT(counts[b], per_bucket * 2) << "bucket " << b;
    }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngUniformity,
                         ::testing::Values(2, 3, 5, 8, 13, 64));

} // namespace
} // namespace act
