/**
 * @file
 * Tests for OnlineStats, IntervalRate and Histogram.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace act
{
namespace
{

TEST(OnlineStats, EmptyIsZero)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(OnlineStats, KnownMoments)
{
    OnlineStats s;
    for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12); // unbiased
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesSequential)
{
    OnlineStats all;
    OnlineStats a;
    OnlineStats b;
    for (int i = 0; i < 100; ++i) {
        const double v = i * 0.37 - 5.0;
        all.add(v);
        (i % 2 == 0 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeIntoEmpty)
{
    OnlineStats a;
    OnlineStats b;
    b.add(1.0);
    b.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(IntervalRate, CompletesAtIntervalBoundary)
{
    IntervalRate rate(4);
    EXPECT_FALSE(rate.record(true));
    EXPECT_FALSE(rate.record(false));
    EXPECT_FALSE(rate.record(true));
    EXPECT_FALSE(rate.hasRate());
    EXPECT_TRUE(rate.record(false));
    EXPECT_TRUE(rate.hasRate());
    EXPECT_DOUBLE_EQ(rate.lastRate(), 0.5);
}

TEST(IntervalRate, SuccessiveIntervalsIndependent)
{
    IntervalRate rate(2);
    rate.record(true);
    rate.record(true);
    EXPECT_DOUBLE_EQ(rate.lastRate(), 1.0);
    rate.record(false);
    rate.record(false);
    EXPECT_DOUBLE_EQ(rate.lastRate(), 0.0);
    EXPECT_EQ(rate.totalEvents(), 4u);
    EXPECT_EQ(rate.totalHits(), 2u);
}

TEST(IntervalRate, ResetIntervalKeepsTotals)
{
    IntervalRate rate(3);
    rate.record(true);
    rate.record(true);
    rate.resetInterval();
    EXPECT_EQ(rate.pending(), 0u);
    EXPECT_EQ(rate.totalEvents(), 2u);
    // A fresh interval needs a full three events again.
    EXPECT_FALSE(rate.record(false));
    EXPECT_FALSE(rate.record(false));
    EXPECT_TRUE(rate.record(false));
    EXPECT_DOUBLE_EQ(rate.lastRate(), 0.0);
}

TEST(Histogram, PercentileNearestRank)
{
    Histogram h;
    for (int v = 1; v <= 100; ++v)
        h.add(v);
    EXPECT_EQ(h.percentile(0.5), 50);
    EXPECT_EQ(h.percentile(0.99), 99);
    EXPECT_EQ(h.percentile(1.0), 100);
    EXPECT_EQ(h.percentile(0.0), 1);
}

TEST(Histogram, WeightedAdds)
{
    Histogram h;
    h.add(10, 99);
    h.add(20, 1);
    EXPECT_EQ(h.total(), 100u);
    EXPECT_EQ(h.percentile(0.5), 10);
    EXPECT_EQ(h.percentile(1.0), 20);
}

TEST(Histogram, EmptyPercentileIsZero)
{
    Histogram h;
    EXPECT_EQ(h.percentile(0.5), 0);
}

TEST(StatsHelpers, FormatPercent)
{
    EXPECT_EQ(formatPercent(0.082), "8.2%");
    EXPECT_EQ(formatPercent(0.0044, 2), "0.44%");
}

TEST(StatsHelpers, MeanOf)
{
    EXPECT_DOUBLE_EQ(meanOf({}), 0.0);
    EXPECT_DOUBLE_EQ(meanOf({1.0, 2.0, 3.0}), 2.0);
}

} // namespace
} // namespace act
