/**
 * @file
 * Tests for OnlineStats, IntervalRate and Histogram.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace act
{
namespace
{

TEST(OnlineStats, EmptyIsZero)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(OnlineStats, KnownMoments)
{
    OnlineStats s;
    for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12); // unbiased
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesSequential)
{
    OnlineStats all;
    OnlineStats a;
    OnlineStats b;
    for (int i = 0; i < 100; ++i) {
        const double v = i * 0.37 - 5.0;
        all.add(v);
        (i % 2 == 0 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeIntoEmpty)
{
    OnlineStats a;
    OnlineStats b;
    b.add(1.0);
    b.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

// Regression: merging an empty accumulator must be a no-op — in
// particular the default min_/max_ of 0 must never leak into an
// all-positive (or all-negative) population.
TEST(OnlineStats, MergeEmptyKeepsMinMax)
{
    OnlineStats a;
    a.add(5.0);
    a.add(9.0);
    OnlineStats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.min(), 5.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);

    OnlineStats negatives;
    negatives.add(-7.0);
    negatives.add(-2.0);
    negatives.merge(empty);
    EXPECT_DOUBLE_EQ(negatives.min(), -7.0);
    EXPECT_DOUBLE_EQ(negatives.max(), -2.0);
}

// Regression: the symmetric case — merging into an empty accumulator
// must copy min/max verbatim, not fold them against the 0 defaults.
TEST(OnlineStats, MergeIntoEmptyCopiesMinMax)
{
    OnlineStats a;
    OnlineStats b;
    b.add(-4.0);
    b.add(-1.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.min(), -4.0);
    EXPECT_DOUBLE_EQ(a.max(), -1.0);
    EXPECT_DOUBLE_EQ(a.sum(), -5.0);
}

TEST(OnlineStats, MergeTwoEmptiesStaysEmpty)
{
    OnlineStats a;
    OnlineStats b;
    a.merge(b);
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

// Regression: one sample has no spread — variance and stddev are 0 by
// definition (unbiased estimator undefined, reported as 0), min == max.
TEST(OnlineStats, SingleSampleVariance)
{
    OnlineStats s;
    s.add(42.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 42.0);
    EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

// Two single-sample accumulators merged must agree exactly with the
// same two samples added sequentially.
TEST(OnlineStats, MergeSingleSamplesMatchesDirect)
{
    OnlineStats a;
    OnlineStats b;
    a.add(10.0);
    b.add(20.0);
    a.merge(b);
    OnlineStats direct;
    direct.add(10.0);
    direct.add(20.0);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), direct.mean());
    EXPECT_DOUBLE_EQ(a.variance(), direct.variance());
    EXPECT_DOUBLE_EQ(a.min(), 10.0);
    EXPECT_DOUBLE_EQ(a.max(), 20.0);
}

TEST(IntervalRate, CompletesAtIntervalBoundary)
{
    IntervalRate rate(4);
    EXPECT_FALSE(rate.record(true));
    EXPECT_FALSE(rate.record(false));
    EXPECT_FALSE(rate.record(true));
    EXPECT_FALSE(rate.hasRate());
    EXPECT_TRUE(rate.record(false));
    EXPECT_TRUE(rate.hasRate());
    EXPECT_DOUBLE_EQ(rate.lastRate(), 0.5);
}

TEST(IntervalRate, SuccessiveIntervalsIndependent)
{
    IntervalRate rate(2);
    rate.record(true);
    rate.record(true);
    EXPECT_DOUBLE_EQ(rate.lastRate(), 1.0);
    rate.record(false);
    rate.record(false);
    EXPECT_DOUBLE_EQ(rate.lastRate(), 0.0);
    EXPECT_EQ(rate.totalEvents(), 4u);
    EXPECT_EQ(rate.totalHits(), 2u);
}

TEST(IntervalRate, ResetIntervalKeepsTotals)
{
    IntervalRate rate(3);
    rate.record(true);
    rate.record(true);
    rate.resetInterval();
    EXPECT_EQ(rate.pending(), 0u);
    EXPECT_EQ(rate.totalEvents(), 2u);
    // A fresh interval needs a full three events again.
    EXPECT_FALSE(rate.record(false));
    EXPECT_FALSE(rate.record(false));
    EXPECT_TRUE(rate.record(false));
    EXPECT_DOUBLE_EQ(rate.lastRate(), 0.0);
}

TEST(Histogram, PercentileNearestRank)
{
    Histogram h;
    for (int v = 1; v <= 100; ++v)
        h.add(v);
    EXPECT_EQ(h.percentile(0.5), 50);
    EXPECT_EQ(h.percentile(0.99), 99);
    EXPECT_EQ(h.percentile(1.0), 100);
    EXPECT_EQ(h.percentile(0.0), 1);
}

TEST(Histogram, WeightedAdds)
{
    Histogram h;
    h.add(10, 99);
    h.add(20, 1);
    EXPECT_EQ(h.total(), 100u);
    EXPECT_EQ(h.percentile(0.5), 10);
    EXPECT_EQ(h.percentile(1.0), 20);
}

TEST(Histogram, EmptyPercentileIsZero)
{
    Histogram h;
    EXPECT_EQ(h.percentile(0.5), 0);
}

// Regression: negative bucket values must survive percentile lookups
// (nearest-rank walks the map in value order, which is signed).
TEST(Histogram, NegativeValues)
{
    Histogram h;
    h.add(-10);
    h.add(-5);
    h.add(5);
    h.add(10);
    EXPECT_EQ(h.percentile(0.0), -10);
    EXPECT_EQ(h.percentile(0.5), -5);
    EXPECT_EQ(h.percentile(1.0), 10);
}

TEST(StatsHelpers, FormatPercent)
{
    EXPECT_EQ(formatPercent(0.082), "8.2%");
    EXPECT_EQ(formatPercent(0.0044, 2), "0.44%");
}

TEST(StatsHelpers, MeanOf)
{
    EXPECT_DOUBLE_EQ(meanOf({}), 0.0);
    EXPECT_DOUBLE_EQ(meanOf({1.0, 2.0, 3.0}), 2.0);
}

} // namespace
} // namespace act
