/**
 * @file
 * Tests for the runner's resilience layer: structured failure capture,
 * deadline cancellation, transient-retry accounting, fail-fast
 * skipping, and the rate-0 equivalence of resilience jobs.
 */

#include <gtest/gtest.h>

#include <string>

#include "runner/campaign.hh"
#include "runner/report.hh"
#include "runner/runner.hh"
#include "runner/trace_cache.hh"
#include "workloads/kernel.hh"

namespace act
{
namespace
{

/** A fast real job: tiny prediction cell on the lu kernel. */
JobSpec
quickJob(std::uint32_t id)
{
    JobSpec spec;
    spec.id = id;
    spec.kind = JobKind::kPrediction;
    spec.scheme = Scheme::kAct;
    spec.workload = "lu";
    spec.knobs.train_traces = 1;
    spec.knobs.test_traces = 1;
    spec.knobs.max_epochs = 2;
    spec.knobs.max_examples = 200;
    return spec;
}

JobSpec
faultyJob(std::uint32_t id, InjectedFault fault)
{
    JobSpec spec = quickJob(id);
    spec.knobs.inject_fault = fault;
    return spec;
}

RunOptions
quickOptions()
{
    RunOptions options;
    options.jobs = 2;
    options.retry_backoff_ms = 1; // keep retry tests fast
    return options;
}

TEST(Resilience, CrashBecomesStructuredFailure)
{
    Campaign campaign;
    campaign.name = "t";
    campaign.jobs = {faultyJob(0, InjectedFault::kCrash), quickJob(1)};

    const CampaignRunResult run = runCampaign(campaign, quickOptions());
    ASSERT_EQ(run.results.size(), 2u);

    const JobResult &crashed = run.results[0];
    EXPECT_FALSE(crashed.ok);
    EXPECT_EQ(crashed.failure, JobFailure::kException);
    EXPECT_NE(crashed.error.find("injected crash"), std::string::npos);
    EXPECT_EQ(crashed.attempts, 1u); // permanent: no retry burned

    // The healthy neighbour is untouched under the default keep-going.
    EXPECT_TRUE(run.results[1].ok);
    EXPECT_EQ(run.results[1].failure, JobFailure::kNone);
    EXPECT_EQ(run.failedJobs(), 1u);
}

TEST(Resilience, HangIsCancelledByItsDeadline)
{
    JobSpec hang = faultyJob(0, InjectedFault::kHang);
    hang.knobs.deadline_ms = 100;

    Campaign campaign;
    campaign.name = "t";
    campaign.jobs = {hang};

    const CampaignRunResult run = runCampaign(campaign, quickOptions());
    ASSERT_EQ(run.results.size(), 1u);
    EXPECT_FALSE(run.results[0].ok);
    EXPECT_EQ(run.results[0].failure, JobFailure::kTimeout);
    EXPECT_EQ(run.results[0].attempts, 1u); // timeouts are permanent
}

TEST(Resilience, TransientFailureIsRetriedToSuccess)
{
    JobSpec flaky = faultyJob(0, InjectedFault::kTransient);
    flaky.knobs.inject_fail_attempts = 1; // first attempt throws

    Campaign campaign;
    campaign.name = "t";
    campaign.jobs = {flaky};

    const CampaignRunResult run = runCampaign(campaign, quickOptions());
    ASSERT_EQ(run.results.size(), 1u);
    EXPECT_TRUE(run.results[0].ok);
    EXPECT_EQ(run.results[0].failure, JobFailure::kNone);
    EXPECT_EQ(run.results[0].attempts, 2u);
    EXPECT_EQ(run.failedJobs(), 0u);
}

TEST(Resilience, TransientFailureExhaustsItsAttemptBudget)
{
    JobSpec doomed = faultyJob(0, InjectedFault::kTransient);
    doomed.knobs.inject_fail_attempts = 10; // more than any budget here

    Campaign campaign;
    campaign.name = "t";
    campaign.jobs = {doomed};

    RunOptions options = quickOptions();
    options.max_attempts = 2;
    const CampaignRunResult run = runCampaign(campaign, options);
    ASSERT_EQ(run.results.size(), 1u);
    EXPECT_FALSE(run.results[0].ok);
    EXPECT_EQ(run.results[0].failure, JobFailure::kRetriesExhausted);
    EXPECT_EQ(run.results[0].attempts, 2u);
}

TEST(Resilience, FailFastSkipsJobsNotYetStarted)
{
    // Every job crashes, so whichever the (single, so strictly serial)
    // worker picks first fails and arms the abort flag — the other
    // three must be recorded as skipped, never attempted. This holds
    // regardless of the pool's claim order.
    Campaign campaign;
    campaign.name = "t";
    for (std::uint32_t id = 0; id < 4; ++id)
        campaign.jobs.push_back(faultyJob(id, InjectedFault::kCrash));

    RunOptions options = quickOptions();
    options.jobs = 1;
    options.keep_going = false;
    const CampaignRunResult run = runCampaign(campaign, options);
    ASSERT_EQ(run.results.size(), 4u);
    std::size_t crashed = 0;
    std::size_t skipped = 0;
    for (const JobResult &result : run.results) {
        EXPECT_FALSE(result.ok);
        if (result.failure == JobFailure::kException) {
            ++crashed;
        } else {
            EXPECT_EQ(result.failure, JobFailure::kSkipped);
            EXPECT_NE(result.error.find("fail-fast"), std::string::npos);
            ++skipped;
        }
    }
    EXPECT_EQ(crashed, 1u);
    EXPECT_EQ(skipped, 3u);
    EXPECT_EQ(run.failedJobs(), 4u);
}

TEST(Resilience, ReportCarriesFailureFieldsOnlyForFailedJobs)
{
    Campaign campaign;
    campaign.name = "t";
    campaign.jobs = {faultyJob(0, InjectedFault::kCrash), quickJob(1)};

    const CampaignRunResult run = runCampaign(campaign, quickOptions());
    const std::string json = reportJson(campaign, run.results);

    // Exactly one job failed, so the failure key appears exactly once —
    // healthy jobs serialise exactly as they did before the resilience
    // layer existed.
    std::size_t failures = 0;
    for (std::size_t at = json.find("\"failure\"");
         at != std::string::npos;
         at = json.find("\"failure\"", at + 1)) {
        ++failures;
    }
    EXPECT_EQ(failures, 1u);
    EXPECT_NE(json.find("\"failure\": \"exception\""), std::string::npos);
    // The healthy single-attempt job serialises no attempts field
    // either, so it appears exactly once (with the failed job).
    const std::size_t first_attempts = json.find("\"attempts\"");
    ASSERT_NE(first_attempts, std::string::npos);
    EXPECT_EQ(json.find("\"attempts\"", first_attempts + 1),
              std::string::npos);
}

TEST(Resilience, RateZeroResilienceJobMatchesDiagnoseAct)
{
    registerAllWorkloads();
    TraceCache cache; // shared: the second job reuses the traces

    JobSpec act;
    act.id = 0;
    act.kind = JobKind::kDiagnoseAct;
    act.scheme = Scheme::kAct;
    act.workload = "pbzip2";
    act.knobs.train_traces = 2;
    act.knobs.postmortem_traces = 2;
    act.knobs.diagnosis_epochs = 10;
    act.knobs.diagnosis_max_examples = 1000;

    JobSpec resilience = act;
    resilience.kind = JobKind::kResilience;
    resilience.knobs.fault_rate = 0.0;
    resilience.knobs.fault_seed = 0xfa117;

    const JobResult base = runJob(act, cache);
    const JobResult faulted = runJob(resilience, cache);
    ASSERT_TRUE(base.ok);
    ASSERT_TRUE(faulted.ok);

    // Every diagnosis metric the plain job reports must be bit-equal
    // under a dormant fault plan; the resilience job only *adds* its
    // injection accounting on top.
    for (const auto &[key, value] : base.metrics) {
        const auto it = faulted.metrics.find(key);
        ASSERT_NE(it, faulted.metrics.end()) << key;
        EXPECT_EQ(it->second, value) << key;
    }
    EXPECT_EQ(faulted.metrics.at("injections"), 0.0);
    EXPECT_EQ(faulted.metrics.at("fault_rate"), 0.0);
}

} // namespace
} // namespace act
