/**
 * @file
 * Golden determinism for the paper's smoke campaign.
 *
 * The perf work in the simulate→track→infer pipeline (arena writer
 * tables, ring buffers, flat weight registers, block trace decode) is
 * only admissible if it is invisible in the science: the smoke campaign
 * — the miniature of the fig7a/table4/table5 experiments — must emit a
 * byte-identical JSON report run over run and at any parallelism. The
 * campaign-level check subsumes every layer at once; a single flipped
 * bit anywhere in the pipeline shows up as a report diff here.
 */

#include <gtest/gtest.h>

#include "runner/campaign.hh"
#include "runner/report.hh"
#include "runner/runner.hh"
#include "workloads/workload.hh"

namespace act
{
namespace
{

class RegisterWorkloads : public ::testing::Environment
{
  public:
    void SetUp() override { registerAllWorkloads(); }
};

const auto *const kRegistered =
    ::testing::AddGlobalTestEnvironment(new RegisterWorkloads);

std::string
runSmoke(unsigned jobs)
{
    const Campaign campaign = makeCampaign("smoke");
    RunOptions options;
    options.jobs = jobs;
    const CampaignRunResult run = runCampaign(campaign, options);
    EXPECT_EQ(run.results.size(), campaign.jobs.size());
    return reportJson(campaign, run.results);
}

TEST(GoldenDeterminism, SmokeCampaignByteIdenticalAcrossRunsAndJobs)
{
    const std::string serial_a = runSmoke(1);
    const std::string serial_b = runSmoke(1);
    // Run-over-run: nothing in the pipeline may depend on iteration
    // order of freshly allocated containers, pointer values, or time.
    ASSERT_EQ(serial_a, serial_b);

    // Parallelism: job scheduling must not leak into results.
    const std::string wide = runSmoke(4);
    ASSERT_EQ(serial_a, wide);

    // The report must be substantial enough to actually pin the
    // pipeline — a trivially empty report would pass the equalities.
    EXPECT_GT(serial_a.size(), 1000u);
    EXPECT_NE(serial_a.find("\"campaign\": \"smoke\""), std::string::npos);
}

} // namespace
} // namespace act
