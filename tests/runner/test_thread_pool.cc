/**
 * @file
 * Tests for the work-stealing thread pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runner/thread_pool.hh"

namespace act
{
namespace
{

TEST(WorkStealingPool, RunsEveryTask)
{
    WorkStealingPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 1000; ++i)
        pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), 1000);
}

TEST(WorkStealingPool, SingleThreadPoolStillCompletes)
{
    WorkStealingPool pool(1);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);
    EXPECT_EQ(pool.threadCount(), 1u);
}

TEST(WorkStealingPool, WaitIsReusable)
{
    WorkStealingPool pool(2);
    std::atomic<int> counter{0};
    pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), 1);
    for (int i = 0; i < 50; ++i)
        pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), 51);
}

TEST(WorkStealingPool, WaitWithNoTasksReturnsImmediately)
{
    WorkStealingPool pool(3);
    pool.wait();
    SUCCEED();
}

TEST(WorkStealingPool, UsesMultipleWorkers)
{
    WorkStealingPool pool(4);
    std::mutex mutex;
    std::set<std::thread::id> seen;
    std::atomic<int> gate{0};
    for (int i = 0; i < 64; ++i) {
        pool.submit([&] {
            {
                std::lock_guard<std::mutex> lock(mutex);
                seen.insert(std::this_thread::get_id());
            }
            // A little real work so tasks overlap in time.
            gate.fetch_add(1);
            while (gate.load() < 4 && seen.size() < 2)
                std::this_thread::yield();
        });
    }
    pool.wait();
    EXPECT_GE(seen.size(), 2u);
}

TEST(WorkStealingPool, TasksSubmittedFromWorkersRun)
{
    WorkStealingPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&pool, &counter] {
            // Fan out a second generation from inside a worker; these
            // land on the worker's own deque and may be stolen.
            for (int j = 0; j < 10; ++j)
                pool.submit([&counter] { counter.fetch_add(1); });
        });
    }
    pool.wait();
    EXPECT_EQ(counter.load(), 80);
}

TEST(WorkStealingPool, DestructorDrainsOutstandingTasks)
{
    std::atomic<int> counter{0};
    {
        WorkStealingPool pool(2);
        for (int i = 0; i < 200; ++i)
            pool.submit([&counter] { counter.fetch_add(1); });
        // No wait(): the destructor must drain before joining.
    }
    EXPECT_EQ(counter.load(), 200);
}

TEST(WorkStealingPool, ZeroMeansHardwareConcurrency)
{
    WorkStealingPool pool(0);
    EXPECT_GE(pool.threadCount(), 1u);
}

TEST(WorkStealingPool, ThrowingTaskDoesNotTerminateTheProcess)
{
    WorkStealingPool pool(2);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i) {
        if (i == 37) {
            pool.submit([] { throw std::runtime_error("task 37 died"); });
        } else {
            pool.submit([&counter] { counter.fetch_add(1); });
        }
    }
    pool.wait();
    // Every non-throwing task still ran; the failure is data, not death.
    EXPECT_EQ(counter.load(), 99);
    EXPECT_EQ(pool.exceptionCount(), 1u);
    EXPECT_EQ(pool.firstExceptionMessage(), "task 37 died");
}

TEST(WorkStealingPool, NonStdExceptionIsAbsorbedToo)
{
    WorkStealingPool pool(1);
    pool.submit([] { throw 42; });
    pool.wait();
    EXPECT_EQ(pool.exceptionCount(), 1u);
    EXPECT_EQ(pool.firstExceptionMessage(), "unknown exception");
}

TEST(WorkStealingPool, HelpExecutePathAbsorbsExceptions)
{
    // wait() called from a worker thread executes tasks inline; a
    // throwing task on that path must be absorbed just the same.
    WorkStealingPool pool(2);
    std::atomic<int> counter{0};
    pool.submit([&pool, &counter] {
        for (int i = 0; i < 4; ++i)
            pool.submit([&counter, i] {
                if (i == 1)
                    throw std::runtime_error("inner");
                counter.fetch_add(1);
            });
        pool.wait(); // help-execute from inside the worker
    });
    pool.wait();
    EXPECT_EQ(counter.load(), 3);
    EXPECT_EQ(pool.exceptionCount(), 1u);
}

TEST(WorkStealingPool, TrySubmitShedsOnDeepQueueAndCountsIt)
{
    WorkStealingPool pool(1);
    std::atomic<bool> release{false};
    pool.submit([&release] {
        while (!release.load())
            std::this_thread::yield();
    });
    // Wait for the worker to claim the blocker so the queue depth
    // observed below is deterministic.
    while (pool.queueDepth(0) != 0)
        std::this_thread::yield();

    std::atomic<int> ran{0};
    for (int i = 0; i < 3; ++i)
        pool.submit([&ran] { ran.fetch_add(1); });
    EXPECT_EQ(pool.queueDepth(0), 3u);

    // At the depth bound the task is refused and counted, and the
    // caller keeps it; above the bound it is accepted.
    EXPECT_FALSE(pool.trySubmit([&ran] { ran.fetch_add(1); }, 3));
    EXPECT_EQ(pool.shedCount(), 1u);
    EXPECT_TRUE(pool.trySubmit([&ran] { ran.fetch_add(1); }, 8));
    EXPECT_EQ(pool.queueDepth(0), 4u);

    release.store(true);
    pool.wait();
    EXPECT_EQ(ran.load(), 4);
    EXPECT_EQ(pool.shedCount(), 1u);
    EXPECT_EQ(pool.queueDepth(0), 0u);
}

TEST(WorkStealingPool, QueueDepthIsBoundsChecked)
{
    WorkStealingPool pool(2);
    EXPECT_EQ(pool.queueDepth(99), 0u);
}

} // namespace
} // namespace act
