/**
 * @file
 * Tests for the on-disk trace cache: hit/miss accounting, round-trip
 * fidelity, corrupt-entry eviction and key separation.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "runner/trace_cache.hh"
#include "trace/io.hh"
#include "workloads/kernel.hh"
#include "workloads/workload.hh"

namespace act
{
namespace
{

class TraceCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        registerAllWorkloads();
        dir_ = ::testing::TempDir() + "act-trace-cache-" +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name();
        removeDir();
    }

    void TearDown() override { removeDir(); }

    void
    removeDir()
    {
        const std::string cmd = "rm -rf '" + dir_ + "'";
        std::system(cmd.c_str());
    }

    std::string dir_;
};

bool
tracesEqual(const Trace &a, const Trace &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const TraceEvent &x = a.events()[i];
        const TraceEvent &y = b.events()[i];
        if (x.kind != y.kind || x.tid != y.tid || x.pc != y.pc ||
            x.addr != y.addr || x.size != y.size || x.gap != y.gap)
            return false;
    }
    return true;
}

TEST_F(TraceCacheTest, MissThenMemoryHit)
{
    TraceCache cache(dir_);
    const auto workload = makeWorkload("lu");
    WorkloadParams params;
    params.seed = 42;

    const Trace first = cache.record(*workload, params);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits(), 0u);
    EXPECT_EQ(cache.stats().stores, 1u);

    const Trace second = cache.record(*workload, params);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().memory_hits, 1u);
    EXPECT_TRUE(tracesEqual(first, second));
}

TEST_F(TraceCacheTest, DiskHitAcrossCacheInstances)
{
    const auto workload = makeWorkload("fft");
    WorkloadParams params;
    params.seed = 7;

    Trace original;
    {
        TraceCache cache(dir_);
        original = cache.record(*workload, params);
        EXPECT_EQ(cache.stats().misses, 1u);
    }
    // A fresh instance simulates a second actrun invocation: the
    // in-memory layer is empty, so this must come from disk.
    TraceCache cache(dir_);
    const Trace reloaded = cache.record(*workload, params);
    EXPECT_EQ(cache.stats().disk_hits, 1u);
    EXPECT_EQ(cache.stats().misses, 0u);
    EXPECT_TRUE(tracesEqual(original, reloaded));
}

TEST_F(TraceCacheTest, DistinctSeedsGetDistinctEntries)
{
    TraceCache cache(dir_);
    const auto workload = makeWorkload("lu");
    WorkloadParams a;
    a.seed = 1;
    WorkloadParams b;
    b.seed = 2;
    EXPECT_NE(TraceCache::keyOf("lu", a), TraceCache::keyOf("lu", b));
    EXPECT_NE(cache.pathFor("lu", a), cache.pathFor("lu", b));

    cache.record(*workload, a);
    cache.record(*workload, b);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST_F(TraceCacheTest, KeySeparatesWorkloads)
{
    WorkloadParams params;
    params.seed = 3;
    EXPECT_NE(TraceCache::keyOf("lu", params),
              TraceCache::keyOf("fft", params));
}

TEST_F(TraceCacheTest, CorruptEntryIsEvictedAndRegenerated)
{
    const auto workload = makeWorkload("lu");
    WorkloadParams params;
    params.seed = 11;

    Trace original;
    std::string path;
    {
        TraceCache cache(dir_);
        original = cache.record(*workload, params);
        path = cache.pathFor("lu", params);
    }
    ASSERT_FALSE(path.empty());

    // Truncate the entry to garbage.
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << "not a trace";
    }

    TraceCache cache(dir_);
    const Trace recovered = cache.record(*workload, params);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().disk_hits, 0u);
    EXPECT_TRUE(tracesEqual(original, recovered));

    // The regenerated entry must be valid on disk again.
    TraceCache cache2(dir_);
    cache2.record(*workload, params);
    EXPECT_EQ(cache2.stats().disk_hits, 1u);
    EXPECT_EQ(cache2.stats().evictions, 0u);
}

TEST_F(TraceCacheTest, LintRejectedEntryIsEvictedAndRegenerated)
{
    const auto workload = makeWorkload("lu");
    WorkloadParams params;
    params.seed = 13;

    Trace original;
    std::string path;
    {
        TraceCache cache(dir_);
        original = cache.record(*workload, params);
        path = cache.pathFor("lu", params);
    }
    ASSERT_FALSE(path.empty());

    // Rewrite the entry as a structurally decodable but malformed
    // trace: an unlock of a never-acquired lock fails the linter while
    // readTrace stays perfectly happy.
    {
        Trace broken = original;
        TraceEvent unlock;
        unlock.kind = EventKind::kUnlock;
        unlock.tid = original.events().front().tid;
        unlock.addr = 0xdead;
        broken.append(unlock);
        ASSERT_TRUE(writeTrace(broken, path));
    }

    TraceCache cache(dir_);
    const Trace recovered = cache.record(*workload, params);
    EXPECT_EQ(cache.stats().lint_rejects, 1u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().disk_hits, 0u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_TRUE(tracesEqual(original, recovered));

    // The regenerated entry is clean again.
    TraceCache cache2(dir_);
    cache2.record(*workload, params);
    EXPECT_EQ(cache2.stats().disk_hits, 1u);
    EXPECT_EQ(cache2.stats().lint_rejects, 0u);
}

TEST_F(TraceCacheTest, ChecksumCatchesLintInvisibleCorruption)
{
    const auto workload = makeWorkload("lu");
    WorkloadParams params;
    params.seed = 17;

    Trace original;
    std::string path;
    {
        TraceCache cache(dir_);
        original = cache.record(*workload, params);
        path = cache.pathFor("lu", params);
    }
    ASSERT_FALSE(path.empty());

    // Swap one data address for another plausible one: the trace still
    // decodes, every lint invariant still holds (counters, locks,
    // sequence numbers are untouched), but the content changed — only
    // the checksum sidecar can tell.
    {
        Trace tampered = original;
        for (TraceEvent &event : tampered.events()) {
            if (event.isMemory()) {
                event.addr ^= 0x40;
                break;
            }
        }
        ASSERT_FALSE(tracesEqual(original, tampered));
        ASSERT_TRUE(writeTrace(tampered, path));
    }

    TraceCache cache(dir_);
    const Trace recovered = cache.record(*workload, params);
    EXPECT_EQ(cache.stats().checksum_rejects, 1u);
    EXPECT_EQ(cache.stats().lint_rejects, 0u);
    EXPECT_EQ(cache.stats().disk_hits, 0u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_TRUE(tracesEqual(original, recovered));

    // The tampered file is preserved as evidence, not deleted.
    std::ifstream evidence(path + ".quarantined", std::ios::binary);
    EXPECT_TRUE(evidence.good());

    // The regenerated entry (and its fresh sidecar) is clean again.
    TraceCache cache2(dir_);
    cache2.record(*workload, params);
    EXPECT_EQ(cache2.stats().disk_hits, 1u);
    EXPECT_EQ(cache2.stats().checksum_rejects, 0u);
}

TEST_F(TraceCacheTest, MismatchingSidecarQuarantinesEntry)
{
    const auto workload = makeWorkload("fft");
    WorkloadParams params;
    params.seed = 19;

    Trace original;
    std::string path;
    {
        TraceCache cache(dir_);
        original = cache.record(*workload, params);
        path = cache.pathFor("fft", params);
    }

    // Corrupt the sidecar instead of the entry: indistinguishable from
    // a corrupted trace body, and the cache must treat it the same way.
    {
        std::ofstream out(path + ".sum", std::ios::trunc);
        out << "0000000000000001\n";
    }

    TraceCache cache(dir_);
    const Trace recovered = cache.record(*workload, params);
    EXPECT_EQ(cache.stats().checksum_rejects, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_TRUE(tracesEqual(original, recovered));
}

TEST_F(TraceCacheTest, MissingSidecarIsAcceptedForBackCompat)
{
    // Caches written before the checksum layer (or interrupted between
    // the entry rename and the sidecar write) have entries without a
    // .sum file; those must still hit.
    const auto workload = makeWorkload("lu");
    WorkloadParams params;
    params.seed = 23;

    std::string path;
    {
        TraceCache cache(dir_);
        cache.record(*workload, params);
        path = cache.pathFor("lu", params);
    }
    ASSERT_EQ(std::remove((path + ".sum").c_str()), 0);

    TraceCache cache(dir_);
    cache.record(*workload, params);
    EXPECT_EQ(cache.stats().disk_hits, 1u);
    EXPECT_EQ(cache.stats().checksum_rejects, 0u);
    EXPECT_EQ(cache.stats().misses, 0u);
}

TEST_F(TraceCacheTest, TraceChecksumIsOrderAndContentSensitive)
{
    const auto workload = makeWorkload("lu");
    WorkloadParams params;
    params.seed = 29;
    TraceCache cache(dir_);
    const Trace trace = cache.record(*workload, params);

    const std::uint64_t baseline = TraceCache::traceChecksum(trace);
    EXPECT_EQ(TraceCache::traceChecksum(trace), baseline);

    Trace tweaked = trace;
    tweaked.events().back().pc ^= 1;
    EXPECT_NE(TraceCache::traceChecksum(tweaked), baseline);
}

TEST_F(TraceCacheTest, MemoryOnlyCacheNeverTouchesDisk)
{
    TraceCache cache; // no directory
    const auto workload = makeWorkload("lu");
    WorkloadParams params;
    params.seed = 5;

    EXPECT_EQ(cache.pathFor("lu", params), "");
    cache.record(*workload, params);
    cache.record(*workload, params);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().memory_hits, 1u);
    EXPECT_EQ(cache.stats().stores, 0u);
}

TEST_F(TraceCacheTest, MemoryLayerCanBeDisabled)
{
    TraceCache cache(dir_, /*use_memory_layer=*/false);
    const auto workload = makeWorkload("lu");
    WorkloadParams params;
    params.seed = 9;

    cache.record(*workload, params);
    cache.record(*workload, params);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().memory_hits, 0u);
    EXPECT_EQ(cache.stats().disk_hits, 1u);
}

} // namespace
} // namespace act
