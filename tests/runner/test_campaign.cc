/**
 * @file
 * Tests for campaign construction, the determinism guarantee (same
 * seeds => byte-identical JSON report regardless of --jobs) and the
 * report serialisers.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

#include "runner/campaign.hh"
#include "runner/report.hh"
#include "runner/runner.hh"
#include "workloads/workload.hh"

namespace act
{
namespace
{

class RegisterWorkloads : public ::testing::Environment
{
  public:
    void SetUp() override { registerAllWorkloads(); }
};

const auto *const kRegistered =
    ::testing::AddGlobalTestEnvironment(new RegisterWorkloads);

/** A tiny campaign that exercises several job kinds but runs fast. */
Campaign
tinyCampaign()
{
    Campaign campaign;
    campaign.name = "tiny";
    campaign.description = "unit-test campaign";

    JobKnobs prediction;
    prediction.train_traces = 2;
    prediction.test_traces = 2;
    prediction.max_epochs = 30;
    prediction.max_examples = 2000;

    std::uint32_t id = 0;
    for (const char *kernel : {"lu", "fft", "canneal", "mcf"}) {
        JobSpec spec;
        spec.id = id++;
        spec.kind = JobKind::kPrediction;
        spec.scheme = Scheme::kAct;
        spec.workload = kernel;
        spec.seed = 0xbe4c;
        spec.knobs = prediction;
        campaign.jobs.push_back(spec);
    }
    return campaign;
}

TEST(Campaign, NamedCampaignsAreWellFormed)
{
    for (const std::string &name : campaignNames()) {
        const Campaign campaign = makeCampaign(name);
        EXPECT_EQ(campaign.name, name);
        EXPECT_FALSE(campaign.jobs.empty()) << name;
        std::set<std::uint32_t> ids;
        for (std::size_t i = 0; i < campaign.jobs.size(); ++i) {
            EXPECT_EQ(campaign.jobs[i].id, i) << name;
            ids.insert(campaign.jobs[i].id);
        }
        EXPECT_EQ(ids.size(), campaign.jobs.size()) << name;
    }
}

TEST(Campaign, ExistsMatchesNameList)
{
    for (const std::string &name : campaignNames())
        EXPECT_TRUE(campaignExists(name)) << name;
    EXPECT_FALSE(campaignExists("no-such-campaign"));
}

TEST(Campaign, AtLeastTwelveJobsInEveryPaperCampaign)
{
    // The acceptance bar: campaigns exercise real parallelism.
    for (const char *name : {"fig7a", "table4", "table5", "smoke"})
        EXPECT_GE(makeCampaign(name).jobs.size(), 12u) << name;
}

TEST(CampaignDeterminism, SameSeedsSameJsonRegardlessOfJobs)
{
    const Campaign campaign = tinyCampaign();

    RunOptions serial;
    serial.jobs = 1;
    const CampaignRunResult a = runCampaign(campaign, serial);

    RunOptions wide;
    wide.jobs = 8;
    const CampaignRunResult b = runCampaign(campaign, wide);

    ASSERT_EQ(a.results.size(), campaign.jobs.size());
    ASSERT_EQ(b.results.size(), campaign.jobs.size());
    EXPECT_EQ(reportJson(campaign, a.results),
              reportJson(campaign, b.results));
}

TEST(CampaignDeterminism, CacheDoesNotChangeResults)
{
    const Campaign campaign = tinyCampaign();

    RunOptions no_mem;
    no_mem.jobs = 2;
    no_mem.memory_cache = false;
    const CampaignRunResult a = runCampaign(campaign, no_mem);

    RunOptions with_mem;
    with_mem.jobs = 2;
    const CampaignRunResult b = runCampaign(campaign, with_mem);

    EXPECT_EQ(reportJson(campaign, a.results),
              reportJson(campaign, b.results));
}

TEST(Report, FormatDoubleRoundTrips)
{
    for (const double v : {0.0, 1.0, -1.5, 0.1, 1.0 / 3.0, 12345.678,
                           1e-9, 2.2250738585072014e-308}) {
        const std::string text = formatDouble(v);
        EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
    }
    // Integral values print as plain integers, not scientific form.
    EXPECT_EQ(formatDouble(10.0), "10");
    EXPECT_EQ(formatDouble(-3.0), "-3");
    EXPECT_EQ(formatDouble(0.0), "0");
}

TEST(Report, JsonContainsNoTimingFields)
{
    const Campaign campaign = tinyCampaign();
    RunOptions options;
    options.jobs = 2;
    const CampaignRunResult run = runCampaign(campaign, options);
    const std::string json = reportJson(campaign, run.results);
    EXPECT_EQ(json.find("wall_ms"), std::string::npos);
    EXPECT_NE(json.find("\"campaign\": \"tiny\""), std::string::npos);
    EXPECT_NE(json.find("\"format\": 1"), std::string::npos);
}

TEST(Report, CsvRoundTripsThroughLoader)
{
    const Campaign campaign = tinyCampaign();
    RunOptions options;
    options.jobs = 2;
    const CampaignRunResult run = runCampaign(campaign, options);
    const std::string csv = reportCsv(campaign, run.results);

    const std::string path =
        ::testing::TempDir() + "act-test-report.csv";
    ASSERT_TRUE(writeTextFile(path, csv));
    std::vector<ReportRow> rows;
    ASSERT_TRUE(loadReportCsv(path, rows));
    std::remove(path.c_str());

    EXPECT_FALSE(rows.empty());
    // Every job must contribute at least one metric row plus wall_ms.
    std::set<std::uint32_t> ids;
    bool saw_wall = false;
    for (const ReportRow &row : rows) {
        ids.insert(row.id);
        if (row.key == "wall_ms")
            saw_wall = true;
    }
    EXPECT_EQ(ids.size(), campaign.jobs.size());
    EXPECT_TRUE(saw_wall);
}

} // namespace
} // namespace act
