/**
 * @file
 * Tests for the table-adaptivity campaign and its sweep report:
 * campaign shape (configs x rates, dormant baseline, hardware budget),
 * outcome extraction, and the worst-case degradation summary.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "runner/adaptivity_sweep.hh"
#include "runner/campaign.hh"
#include "workloads/workload.hh"

namespace act
{
namespace
{

class RegisterWorkloads : public ::testing::Environment
{
  public:
    void SetUp() override { registerAllWorkloads(); }
};

const auto *const kRegistered =
    ::testing::AddGlobalTestEnvironment(new RegisterWorkloads);

TEST(AdaptivityCampaign, IsRegisteredByName)
{
    EXPECT_TRUE(campaignExists("table-adaptivity"));
    const std::vector<std::string> names = campaignNames();
    EXPECT_NE(std::find(names.begin(), names.end(), "table-adaptivity"),
              names.end());
    EXPECT_STREQ(jobKindName(JobKind::kAdaptivity), "adaptivity");
}

TEST(AdaptivityCampaign, SweepsThreeConfigsAcrossFourRates)
{
    const Campaign campaign = makeCampaign("table-adaptivity");
    ASSERT_EQ(campaign.jobs.size(), 12u);

    std::set<double> rates;
    std::size_t baseline = 0, ensemble = 0, protected_cells = 0;
    for (const JobSpec &spec : campaign.jobs) {
        EXPECT_EQ(spec.kind, JobKind::kAdaptivity);
        rates.insert(spec.knobs.fault_rate);
        if (spec.knobs.ensemble_members == 1) {
            ++baseline;
            // The baseline cell is fully dormant: running it with
            // rate 0 must be the plain diagnose-act path.
            EXPECT_FALSE(spec.knobs.protect_weights);
            EXPECT_FALSE(spec.knobs.self_tune);
            EXPECT_EQ(spec.knobs.hidden_neurons, 0u);
        } else {
            ++ensemble;
            protected_cells += spec.knobs.protect_weights ? 1 : 0;
            // Ensemble cells must respect the M = 10 neuron budget.
            EXPECT_GT(spec.knobs.hidden_neurons, 0u);
            EXPECT_LE(spec.knobs.ensemble_members *
                          spec.knobs.hidden_neurons,
                      10u);
        }
    }
    EXPECT_EQ(baseline, 4u);
    EXPECT_EQ(ensemble, 8u);
    EXPECT_EQ(protected_cells, 4u);
    // The ISSUE-pinned sweep range: clean to 5%.
    EXPECT_EQ(rates, (std::set<double>{0.0, 0.002, 0.01, 0.05}));
}

TEST(AdaptivityCampaign, DetectionHelperSeesOnlyAdaptivityJobs)
{
    EXPECT_TRUE(campaignHasAdaptivity(makeCampaign("table-adaptivity")));
    EXPECT_FALSE(campaignHasAdaptivity(makeCampaign("smoke")));
    EXPECT_FALSE(campaignHasAdaptivity(makeCampaign("table-resilience")));
}

/** A synthetic two-config, two-rate campaign plus matching results. */
Campaign
syntheticCampaign()
{
    Campaign campaign;
    campaign.name = "synthetic";
    for (std::uint32_t id = 0; id < 4; ++id) {
        JobSpec spec;
        spec.id = id;
        spec.kind = JobKind::kAdaptivity;
        spec.workload = "pbzip2";
        spec.knobs.fault_rate = (id % 2 == 0) ? 0.0 : 0.05;
        campaign.jobs.push_back(spec);
    }
    return campaign;
}

std::vector<JobResult>
syntheticResults()
{
    // baseline: 1.0 -> 0.6 (loss 0.4); ens+prot: 0.9 -> 0.85 (0.05).
    const double accuracy[] = {1.0, 0.6, 0.9, 0.85};
    const char *configs[] = {"baseline", "baseline", "ens+prot",
                             "ens+prot"};
    std::vector<JobResult> results;
    for (std::uint32_t id = 0; id < 4; ++id) {
        JobResult result;
        result.id = id;
        result.ok = true;
        result.metrics["fault_rate"] = (id % 2 == 0) ? 0.0 : 0.05;
        result.metrics["accuracy"] = accuracy[id];
        result.metrics["repaired_weight_sets"] = (id == 3) ? 5.0 : 0.0;
        result.labels["config"] = configs[id];
        results.push_back(result);
    }
    return results;
}

TEST(AdaptivitySweep, OutcomesLiftMetricsAndSkipFailedJobs)
{
    const Campaign campaign = syntheticCampaign();
    std::vector<JobResult> results = syntheticResults();
    results[1].ok = false; // The baseline fault cell crashed.

    const std::vector<AdaptivityOutcome> outcomes =
        adaptivityOutcomes(campaign, results);
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_EQ(outcomes[0].config, "baseline");
    EXPECT_EQ(outcomes[0].fault_rate, 0.0);
    EXPECT_EQ(outcomes[0].accuracy, 1.0);
    EXPECT_EQ(outcomes[2].config, "ens+prot");
    EXPECT_EQ(outcomes[2].repaired, 5.0);
}

TEST(AdaptivitySweep, ReportSummarisesWorstCaseLossPerConfig)
{
    const std::string report =
        adaptivitySweepReport(syntheticCampaign(), syntheticResults());

    // Every cell row and the per-config loss summary are present.
    EXPECT_NE(report.find("config"), std::string::npos);
    EXPECT_NE(report.find("accuracy loss"), std::string::npos);
    // baseline: 1.000 -> 0.600 at the swept rate.
    EXPECT_NE(report.find("baseline       0.400 (1.000 -> 0.600 at "
                          "rate 0.050)"),
              std::string::npos);
    // ens+prot: 0.900 -> 0.850.
    EXPECT_NE(report.find("ens+prot       0.050 (0.900 -> 0.850 at "
                          "rate 0.050)"),
              std::string::npos);
}

TEST(AdaptivitySweep, ConfigWithOnlyACleanCellLosesNothing)
{
    Campaign campaign;
    JobSpec spec;
    spec.id = 0;
    spec.kind = JobKind::kAdaptivity;
    spec.knobs.fault_rate = 0.0;
    campaign.jobs.push_back(spec);

    JobResult result;
    result.id = 0;
    result.ok = true;
    result.metrics["fault_rate"] = 0.0;
    result.metrics["accuracy"] = 0.97;
    result.labels["config"] = "baseline";

    const std::string report =
        adaptivitySweepReport(campaign, {result});
    EXPECT_NE(report.find("baseline       0.000"), std::string::npos);
}

} // namespace
} // namespace act
