/**
 * @file
 * Corpus sweep through the campaign runner: the table6-corpus campaign
 * is well-formed, corpus cells run through the ordinary executor and
 * trace cache, and the joined report — JSON rows and the rendered
 * precision/recall table — is byte-identical across thread counts.
 * Runs a 6-job sub-slice (one per bug class) rather than all 32; the
 * full slice is covered by the corpus agreement test and CI.
 */

#include <gtest/gtest.h>

#include "corpus/corpus.hh"
#include "runner/campaign.hh"
#include "runner/corpus_sweep.hh"
#include "runner/report.hh"
#include "runner/runner.hh"

namespace act
{
namespace
{

Campaign
corpusSubCampaign(std::size_t count)
{
    Campaign full = makeCampaign("table6-corpus");
    Campaign sub;
    sub.name = full.name;
    sub.description = full.description;
    for (std::size_t i = 0; i < count && i < full.jobs.size(); ++i) {
        JobSpec job = full.jobs[i];
        job.id = static_cast<std::uint32_t>(sub.jobs.size());
        sub.jobs.push_back(std::move(job));
    }
    return sub;
}

TEST(CorpusSweep, CampaignIsWellFormed)
{
    const Campaign campaign = makeCampaign("table6-corpus");
    EXPECT_EQ(32u, campaign.jobs.size());
    EXPECT_TRUE(campaignHasCorpus(campaign));
    for (const JobSpec &job : campaign.jobs) {
        EXPECT_EQ(JobKind::kCorpus, job.kind);
        EXPECT_TRUE(corpus::isCorpusName(job.workload)) << job.workload;
        corpus::CorpusVariantDesc desc;
        EXPECT_TRUE(corpus::parseCorpusName(job.workload, desc));
    }
    EXPECT_FALSE(campaignHasCorpus(makeCampaign("smoke")));
}

TEST(CorpusSweep, ReportIsIdenticalAcrossThreadCounts)
{
    const Campaign campaign = corpusSubCampaign(6);

    RunOptions options;
    options.jobs = 1;
    const CampaignRunResult serial = runCampaign(campaign, options);
    ASSERT_EQ(0u, serial.failedJobs());

    options.jobs = 4;
    const CampaignRunResult parallel = runCampaign(campaign, options);
    ASSERT_EQ(0u, parallel.failedJobs());

    EXPECT_EQ(reportJson(campaign, serial.results),
              reportJson(campaign, parallel.results));
    const std::string table = corpusSweepReport(campaign, serial.results);
    EXPECT_EQ(table, corpusSweepReport(campaign, parallel.results));

    // The table carries one row per swept class plus the overall pool.
    EXPECT_NE(std::string::npos, table.find("table6-corpus"));
    EXPECT_NE(std::string::npos, table.find("overall"));

    // Each cell joined against its catalog: the matching lens found
    // the root in every variant (the agreement test pins this per
    // variant; here it survives the runner round-trip).
    const auto outcomes = corpusOutcomes(campaign, serial.results);
    ASSERT_EQ(campaign.jobs.size(), outcomes.size());
    for (const corpus::CorpusOutcome &outcome : outcomes)
        EXPECT_EQ(1.0, outcome.lens_tp) << outcome.variant;
}

TEST(CorpusSweep, FailedJobsAreExcludedFromThePool)
{
    Campaign campaign = corpusSubCampaign(2);
    std::vector<JobResult> results(2);
    results[0].id = 0;
    results[0].ok = true;
    results[0].labels["class"] = "reordered-sync";
    results[0].labels["lens"] = "order";
    results[0].metrics["lens_tp"] = 1.0;
    results[1].id = 1;
    results[1].ok = false;
    results[1].failure = JobFailure::kException;
    const auto outcomes = corpusOutcomes(campaign, results);
    ASSERT_EQ(1u, outcomes.size());
    EXPECT_EQ(campaign.jobs[0].workload, outcomes[0].variant);
}

} // namespace
} // namespace act
