/**
 * @file
 * The telemetry determinism contract at campaign level.
 *
 * Two halves, mirroring test_golden_determinism:
 *
 *  - Dormancy: running the smoke campaign with telemetry enabled must
 *    leave the campaign report byte-identical to a run without it —
 *    observing cannot perturb the science.
 *  - Stability: the *stable* counter section of the metrics snapshot
 *    must itself be byte-identical across `--jobs 1` and `--jobs 4`.
 *    The process-wide registry accumulates across runs, so each run is
 *    measured as a before/after snapshot diff.
 */

#include <gtest/gtest.h>

#include <string>

#include "runner/campaign.hh"
#include "runner/report.hh"
#include "runner/runner.hh"
#include "telemetry/metrics.hh"
#include "workloads/workload.hh"

namespace act
{
namespace
{

class RegisterWorkloads : public ::testing::Environment
{
  public:
    void SetUp() override { registerAllWorkloads(); }
};

const auto *const kRegistered =
    ::testing::AddGlobalTestEnvironment(new RegisterWorkloads);

struct SmokeRun
{
    std::string report;
    telemetry::Snapshot delta;
};

SmokeRun
runSmoke(unsigned jobs)
{
    auto &reg = telemetry::MetricsRegistry::global();
    const telemetry::Snapshot before = reg.snapshot();

    const Campaign campaign = makeCampaign("smoke");
    RunOptions options;
    options.jobs = jobs;
    const CampaignRunResult run = runCampaign(campaign, options);
    EXPECT_EQ(run.results.size(), campaign.jobs.size());

    SmokeRun result;
    result.report = reportJson(campaign, run.results);
    result.delta = telemetry::diffSnapshots(reg.snapshot(), before);
    return result;
}

TEST(MetricsDeterminism, EnablingTelemetryDoesNotPerturbTheReport)
{
    auto &reg = telemetry::MetricsRegistry::global();
    const bool was_enabled = reg.enabled();

    reg.setEnabled(false);
    const SmokeRun dark = runSmoke(2);
    reg.setEnabled(true);
    const SmokeRun lit = runSmoke(2);
    reg.setEnabled(was_enabled);

    // Byte-identical report with and without observation.
    ASSERT_EQ(dark.report, lit.report);

    // The dark run must also have recorded nothing.
    for (const auto &[name, value] : dark.delta.counters)
        EXPECT_EQ(value, 0u) << name << " counted while disabled";
    EXPECT_EQ(dark.delta.counterValue("sim.events"), 0u);

    // The lit run recorded real work.
    EXPECT_GT(lit.delta.counterValue("sim.events"), 0u);
    EXPECT_GT(lit.delta.counterValue("runner.jobs_ok"), 0u);
}

TEST(MetricsDeterminism, StableCountersIdenticalAcrossJobCounts)
{
    auto &reg = telemetry::MetricsRegistry::global();
    const bool was_enabled = reg.enabled();
    reg.setEnabled(true);

    const SmokeRun narrow = runSmoke(1);
    const SmokeRun wide = runSmoke(4);
    reg.setEnabled(was_enabled);

    // Reports byte-identical (the golden contract) …
    ASSERT_EQ(narrow.report, wide.report);

    // … and so is the stable counter section of the snapshot delta.
    const std::string narrow_text =
        telemetry::stableCountersText(narrow.delta);
    const std::string wide_text =
        telemetry::stableCountersText(wide.delta);
    ASSERT_EQ(narrow_text, wide_text);

    // Guard against a vacuous pass: the section must carry the core
    // pipeline counters with non-zero values.
    EXPECT_NE(narrow_text.find("sim.events "), std::string::npos);
    EXPECT_NE(narrow_text.find("runner.jobs_ok "), std::string::npos);
    EXPECT_GT(narrow.delta.counterValue("sim.events"), 0u);
    EXPECT_GT(narrow.delta.counterValue("act.dependences"), 0u);
}

} // namespace
} // namespace act
