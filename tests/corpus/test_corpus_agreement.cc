/**
 * @file
 * Oracle-agreement regression over the pinned 32-variant CI slice:
 * for every variant, the correct execution is clean under all five
 * lenses (no detector findings, no happens-before races), and the
 * failing execution is flagged by exactly the lens the bug class was
 * engineered for — the detector finding (or HB race) covers the
 * catalogued root PC pair. This mirrors the 0-disagreement gate the
 * ensemble campaign holds for the hand-written bugs: if a detector or
 * the harness drifts, a variant's catalog stops matching and this
 * test names the variant and the lens.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/pipeline.hh"
#include "analysis/race_oracle.hh"
#include "corpus/corpus.hh"

namespace act::corpus
{
namespace
{

/** Mirror the runner's corpus-cell recipe: 4 training traces. */
MinedBaselines
mineBaselines(const CorpusWorkload &workload)
{
    MinedBaselines baselines;
    for (std::uint64_t seed = 100; seed < 104; ++seed) {
        WorkloadParams params;
        params.seed = seed;
        baselines.addPassingTrace(workload.record(params));
    }
    return baselines;
}

TEST(CorpusAgreement, PinnedSliceMatchesItsCatalogs)
{
    const auto slice = corpusSlice(kCorpusMasterSeed, 32);
    ASSERT_EQ(32u, slice.size());
    for (const CorpusVariantDesc &desc : slice) {
        const std::string name = corpusName(desc);
        SCOPED_TRACE(name);
        const auto workload = makeCorpusWorkload(name);
        ASSERT_NE(nullptr, workload);
        const CorpusCatalog &catalog = workload->catalog();
        const MinedBaselines baselines = mineBaselines(*workload);

        // Correct execution: every lens silent. A held-out seed (not
        // among the mined baselines) keeps this an honest check.
        {
            WorkloadParams params;
            params.seed = 314;
            const Trace correct = workload->record(params);
            EXPECT_TRUE(detectRaces(correct).empty());
            PipelineOptions popts;
            popts.hb_races = false;
            popts.baselines = &baselines;
            const PipelineResult clean =
                runAnalysisPipeline(correct, popts);
            EXPECT_TRUE(clean.report.empty()) << clean.report.toText();
        }

        // Failing execution: the engineered lens covers the root.
        WorkloadParams params;
        params.seed = 999;
        params.trigger_failure = true;
        const Trace failing = workload->record(params);
        const RaceReport oracle = detectRaces(failing);
        PipelineOptions popts;
        popts.hb_races = false;
        popts.baselines = &baselines;
        const PipelineResult analysis =
            runAnalysisPipeline(failing, popts);

        const Pc store = catalog.root_store_pc;
        const Pc load = catalog.root_load_pc;
        if (catalog.lens == "hb") {
            EXPECT_TRUE(oracle.isRacyPair(store, load))
                << "hb lens missed the root";
        } else if (catalog.lens == "lockset") {
            EXPECT_TRUE(analysis.report.matchesPair(
                DetectorKind::kLockset, store, load))
                << analysis.report.toText();
        } else if (catalog.lens == "atomicity") {
            EXPECT_TRUE(analysis.report.matchesPair(
                DetectorKind::kAtomicity, store, load))
                << analysis.report.toText();
        } else if (catalog.lens == "order") {
            EXPECT_TRUE(analysis.report.matchesPair(
                DetectorKind::kOrder, store, load))
                << analysis.report.toText();
        } else {
            FAIL() << "unknown lens " << catalog.lens;
        }
    }
}

TEST(CorpusAgreement, FailingRunsDifferFromCorrectRuns)
{
    // The injected perturbation must actually change the interleaving:
    // a failing trace is not byte-identical to the correct trace of
    // the same seed.
    for (std::size_t c = 0; c < kCorpusBugClassCount; ++c) {
        CorpusVariantDesc desc;
        desc.base = "radix";
        desc.bug_class = static_cast<CorpusBugClass>(c);
        desc.seed = 9;
        const auto workload = makeCorpusWorkload(corpusName(desc));
        ASSERT_NE(nullptr, workload);
        WorkloadParams params;
        params.seed = 999;
        const Trace correct = workload->record(params);
        params.trigger_failure = true;
        const Trace failing = workload->record(params);
        bool differs = correct.events().size() != failing.events().size();
        for (std::size_t i = 0;
             !differs && i < correct.events().size(); ++i) {
            const TraceEvent &x = correct.events()[i];
            const TraceEvent &y = failing.events()[i];
            differs = x.tid != y.tid || x.kind != y.kind ||
                      x.pc != y.pc || x.addr != y.addr;
        }
        EXPECT_TRUE(differs) << corpusName(desc);
    }
}

} // namespace
} // namespace act::corpus
