/**
 * @file
 * Corpus subsystem basics: the variant name grammar, the structured
 * error paths of makeCorpusWorkload, and — the contract everything
 * else leans on — byte-identical determinism of generated variants
 * across repeated runs, generation parallelism and slice size.
 */

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/catalog.hh"
#include "corpus/corpus.hh"
#include "corpus/generate.hh"
#include "corpus/mine.hh"

namespace act::corpus
{
namespace
{

bool
sameTrace(const Trace &a, const Trace &b)
{
    if (a.events().size() != b.events().size())
        return false;
    for (std::size_t i = 0; i < a.events().size(); ++i) {
        const TraceEvent &x = a.events()[i];
        const TraceEvent &y = b.events()[i];
        if (x.seq != y.seq || x.tid != y.tid || x.kind != y.kind ||
            x.pc != y.pc || x.addr != y.addr || x.size != y.size ||
            x.gap != y.gap || x.taken != y.taken || x.stack != y.stack)
            return false;
    }
    return true;
}

TEST(CorpusName, RoundTripsEveryClass)
{
    for (std::size_t c = 0; c < kCorpusBugClassCount; ++c) {
        CorpusVariantDesc desc;
        desc.base = "lu";
        desc.bug_class = static_cast<CorpusBugClass>(c);
        desc.seed = 0x123456789abcdef0ull + c;
        const std::string name = corpusName(desc);
        EXPECT_TRUE(isCorpusName(name));
        CorpusVariantDesc parsed;
        ASSERT_TRUE(parseCorpusName(name, parsed)) << name;
        EXPECT_EQ(desc, parsed);
    }
}

TEST(CorpusName, RejectsMalformedNames)
{
    CorpusVariantDesc out;
    EXPECT_FALSE(parseCorpusName("", out));
    EXPECT_FALSE(parseCorpusName("corpus/", out));
    EXPECT_FALSE(parseCorpusName("lu/removed-lock/5", out));
    EXPECT_FALSE(parseCorpusName("corpus/lu/removed-lock", out));
    EXPECT_FALSE(parseCorpusName("corpus/lu/no-such-class/5", out));
    EXPECT_FALSE(parseCorpusName("corpus/lu/removed-lock/", out));
    EXPECT_FALSE(parseCorpusName("corpus/lu/removed-lock/5x", out));
    EXPECT_FALSE(parseCorpusName("corpus/lu/removed-lock/-5", out));
    // Non-canonical seed spellings must not alias a canonical name.
    EXPECT_FALSE(parseCorpusName("corpus/lu/removed-lock/05", out));
    EXPECT_FALSE(
        parseCorpusName("corpus/lu/removed-lock/5/extra", out));
}

TEST(CorpusName, LensAndBugClassTablesAreTotal)
{
    std::set<std::string> lenses;
    for (std::size_t c = 0; c < kCorpusBugClassCount; ++c) {
        const auto bug_class = static_cast<CorpusBugClass>(c);
        const std::string name = corpusBugClassName(bug_class);
        EXPECT_FALSE(name.empty());
        CorpusBugClass parsed;
        ASSERT_TRUE(parseCorpusBugClass(name, parsed));
        EXPECT_EQ(bug_class, parsed);
        lenses.insert(corpusLensName(bug_class));
    }
    // All four lenses are exercised by the taxonomy.
    EXPECT_EQ(lenses, (std::set<std::string>{"atomicity", "hb",
                                             "lockset", "order"}));
    CorpusBugClass parsed;
    EXPECT_FALSE(parseCorpusBugClass("no-such-class", parsed));
}

TEST(MakeCorpusWorkload, RejectsBadNameWithStructuredError)
{
    std::vector<Finding> findings;
    EXPECT_EQ(nullptr, makeCorpusWorkload("not-a-corpus-name", &findings));
    ASSERT_EQ(1u, findings.size());
    EXPECT_EQ("corpus", findings[0].pass);
    EXPECT_EQ("bad-name", findings[0].code);
    EXPECT_EQ(Severity::kError, findings[0].severity);
}

TEST(MakeCorpusWorkload, RejectsUnknownBaseKernel)
{
    std::vector<Finding> findings;
    EXPECT_EQ(nullptr, makeCorpusWorkload(
                           "corpus/nokernel/removed-lock/7", &findings));
    ASSERT_EQ(1u, findings.size());
    EXPECT_EQ("unknown-kernel", findings[0].code);
}

TEST(MakeCorpusWorkload, NullFindingsPointerIsSafe)
{
    EXPECT_EQ(nullptr, makeCorpusWorkload("garbage"));
}

TEST(MakeCorpusWorkload, BuildsEveryClassOnEveryBase)
{
    for (const std::string &base : corpusBaseNames()) {
        for (std::size_t c = 0; c < kCorpusBugClassCount; ++c) {
            CorpusVariantDesc desc;
            desc.base = base;
            desc.bug_class = static_cast<CorpusBugClass>(c);
            desc.seed = 42;
            std::vector<Finding> findings;
            const auto workload =
                makeCorpusWorkload(corpusName(desc), &findings);
            ASSERT_NE(nullptr, workload)
                << corpusName(desc) << ": " << formatFindings(findings);
            const CorpusCatalog &catalog = workload->catalog();
            EXPECT_EQ(corpusName(desc), catalog.name);
            EXPECT_EQ(base, catalog.base_kernel);
            EXPECT_EQ(corpusBugClassName(desc.bug_class),
                      catalog.bug_class);
            EXPECT_EQ(corpusLensName(desc.bug_class), catalog.lens);
            EXPECT_NE(catalog.root_store_pc, catalog.root_load_pc);
            EXPECT_NE(kInvalidPc, catalog.root_store_pc);
            const RawDependence root = workload->buggyDependence();
            EXPECT_EQ(catalog.root_store_pc, root.store_pc);
            EXPECT_EQ(catalog.root_load_pc, root.load_pc);
            EXPECT_TRUE(root.inter_thread);
        }
    }
}

TEST(CorpusDeterminism, SameDescriptorSameTraceAndCatalog)
{
    const std::string name = "corpus/fft/dropped-barrier/17";
    const auto first = makeCorpusWorkload(name);
    const auto second = makeCorpusWorkload(name);
    ASSERT_NE(nullptr, first);
    ASSERT_NE(nullptr, second);
    EXPECT_EQ(first->catalog(), second->catalog());

    WorkloadParams params;
    params.seed = 999;
    params.trigger_failure = true;
    EXPECT_TRUE(sameTrace(first->record(params), second->record(params)));
    params.trigger_failure = false;
    EXPECT_TRUE(sameTrace(first->record(params), second->record(params)));
}

TEST(CorpusDeterminism, GenerationIsIdenticalAcrossJobCounts)
{
    GenerateOptions options;
    options.count = 12;
    options.traces = true;
    GenerateResult runs[3];
    const unsigned jobs[3] = {1, 2, 4};
    for (std::size_t i = 0; i < 3; ++i) {
        options.jobs = jobs[i];
        runs[i] = generateCorpus(options);
        EXPECT_TRUE(runs[i].ok()) << formatFindings(runs[i].findings);
        ASSERT_EQ(12u, runs[i].variants.size());
    }
    for (std::size_t i = 1; i < 3; ++i) {
        EXPECT_EQ(runs[0].manifest_json, runs[i].manifest_json);
        for (std::size_t v = 0; v < runs[0].variants.size(); ++v) {
            EXPECT_EQ(runs[0].variants[v].catalog_json,
                      runs[i].variants[v].catalog_json);
            EXPECT_TRUE(sameTrace(runs[0].variants[v].failing,
                                  runs[i].variants[v].failing));
        }
    }
}

TEST(CorpusDeterminism, DistinctSeedsDrawDistinctSites)
{
    // Twenty seeds of one (base, class) cell must not all collapse
    // onto a single mined site — the corpus would be 20 copies of one
    // bug. Requires the base to expose >1 RAW site, which mining
    // guarantees for the kernels (asserted here too).
    ASSERT_GT(mineRawSites("lu").size(), 1u);
    std::set<std::pair<Pc, Pc>> sites;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        CorpusVariantDesc desc;
        desc.base = "lu";
        desc.bug_class = CorpusBugClass::kRemovedLock;
        desc.seed = seed;
        const auto workload = makeCorpusWorkload(corpusName(desc));
        ASSERT_NE(nullptr, workload);
        sites.insert({workload->catalog().site_store_pc,
                      workload->catalog().site_load_pc});
    }
    EXPECT_GE(sites.size(), 2u);
}

TEST(CorpusSlice, TwoHundredVariantSliceIsStableAndUnique)
{
    const auto slice = corpusSlice(kCorpusMasterSeed, 200);
    ASSERT_EQ(200u, slice.size());
    EXPECT_EQ(slice, corpusSlice(kCorpusMasterSeed, 200));

    std::set<std::string> names;
    std::set<std::string> classes;
    std::set<std::string> bases;
    for (const CorpusVariantDesc &desc : slice) {
        names.insert(corpusName(desc));
        classes.insert(corpusBugClassName(desc.bug_class));
        bases.insert(desc.base);
    }
    EXPECT_EQ(200u, names.size()); // No aliased variants.
    EXPECT_EQ(kCorpusBugClassCount, classes.size());
    EXPECT_EQ(corpusBaseNames().size(), bases.size());

    // A different master seed is a different corpus.
    const auto other = corpusSlice(kCorpusMasterSeed + 1, 200);
    EXPECT_NE(slice, other);
}

TEST(CorpusSlice, RestrictedBasePoolIsHonoured)
{
    const auto slice = corpusSlice(7, 18, {"fft", "ocean"});
    ASSERT_EQ(18u, slice.size());
    for (const CorpusVariantDesc &desc : slice)
        EXPECT_TRUE(desc.base == "fft" || desc.base == "ocean");
}

} // namespace
} // namespace act::corpus
