/**
 * @file
 * Corpus scoring: pooled precision/recall arithmetic, the
 * OracleScore-mirroring edge conventions, taxonomy-ordered rows, and
 * the determinism of the bootstrap intervals (seeded resampling — the
 * same outcome pool renders the same table forever).
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/score.hh"

namespace act::corpus
{
namespace
{

CorpusOutcome
outcome(const std::string &variant, const std::string &bug_class,
        const std::string &lens, double lens_tp, double lens_fp,
        double act_tp, double act_fp)
{
    CorpusOutcome out;
    out.variant = variant;
    out.bug_class = bug_class;
    out.lens = lens;
    out.lens_tp = lens_tp;
    out.lens_fp = lens_fp;
    out.act_tp = act_tp;
    out.act_fp = act_fp;
    return out;
}

const ClassCurve *
rowFor(const std::vector<ClassCurve> &curves, const std::string &name)
{
    for (const ClassCurve &curve : curves) {
        if (curve.bug_class == name)
            return &curve;
    }
    return nullptr;
}

TEST(CorpusCurves, PooledPrecisionAndRecall)
{
    std::vector<CorpusOutcome> outcomes;
    // removed-lock: 2 variants, roots flagged both times, 2 total FPs
    // -> precision 2/4 = 0.5, recall 2/2 = 1.0.
    outcomes.push_back(
        outcome("corpus/lu/removed-lock/1", "removed-lock", "lockset",
                1, 1, 1, 0));
    outcomes.push_back(
        outcome("corpus/lu/removed-lock/2", "removed-lock", "lockset",
                1, 1, 0, 1));
    const auto curves = corpusCurves(outcomes);

    const ClassCurve *row = rowFor(curves, "removed-lock");
    ASSERT_NE(nullptr, row);
    EXPECT_EQ("lockset", row->lens);
    EXPECT_EQ(2u, row->variants);
    EXPECT_DOUBLE_EQ(0.5, row->lens_precision.value);
    EXPECT_DOUBLE_EQ(1.0, row->lens_recall.value);
    // ACT: 1 TP, 1 FP pooled -> precision 0.5; recall 1/2.
    EXPECT_DOUBLE_EQ(0.5, row->act_precision.value);
    EXPECT_DOUBLE_EQ(0.5, row->act_recall.value);

    const ClassCurve *overall = rowFor(curves, "overall");
    ASSERT_NE(nullptr, overall);
    EXPECT_EQ(2u, overall->variants);
}

TEST(CorpusCurves, EmptyPredictionsHavePrecisionOne)
{
    std::vector<CorpusOutcome> outcomes;
    outcomes.push_back(outcome("corpus/lu/dropped-barrier/1",
                               "dropped-barrier", "hb", 0, 0, 0, 0));
    const auto curves = corpusCurves(outcomes);
    const ClassCurve *row = rowFor(curves, "dropped-barrier");
    ASSERT_NE(nullptr, row);
    EXPECT_DOUBLE_EQ(1.0, row->lens_precision.value); // Nothing claimed.
    EXPECT_DOUBLE_EQ(0.0, row->lens_recall.value);    // Root missed.
}

TEST(CorpusCurves, EmptyPoolYieldsOnlyOverallRow)
{
    const auto curves = corpusCurves({});
    ASSERT_EQ(1u, curves.size());
    EXPECT_EQ("overall", curves[0].bug_class);
    EXPECT_EQ(0u, curves[0].variants);
    EXPECT_DOUBLE_EQ(1.0, curves[0].lens_precision.value);
    EXPECT_DOUBLE_EQ(1.0, curves[0].lens_recall.value);
}

TEST(CorpusCurves, RowsFollowTaxonomyOrder)
{
    std::vector<CorpusOutcome> outcomes;
    outcomes.push_back(outcome("corpus/lu/removed-lock/1",
                               "removed-lock", "lockset", 1, 0, 1, 0));
    outcomes.push_back(outcome("corpus/lu/reordered-sync/1",
                               "reordered-sync", "order", 1, 0, 1, 0));
    outcomes.push_back(outcome("corpus/lu/dropped-barrier/1",
                               "dropped-barrier", "hb", 1, 0, 1, 0));
    const auto curves = corpusCurves(outcomes);
    ASSERT_EQ(4u, curves.size());
    EXPECT_EQ("reordered-sync", curves[0].bug_class);
    EXPECT_EQ("dropped-barrier", curves[1].bug_class);
    EXPECT_EQ("removed-lock", curves[2].bug_class);
    EXPECT_EQ("overall", curves[3].bug_class);
}

TEST(CorpusCurves, IntervalsBracketTheEstimateDeterministically)
{
    std::vector<CorpusOutcome> outcomes;
    for (int i = 0; i < 16; ++i) {
        outcomes.push_back(outcome(
            "corpus/lu/stale-read-window/" + std::to_string(i),
            "stale-read-window", "hb", i % 2 ? 1.0 : 0.0, i % 3 ? 1.0 : 0.0,
            i % 2 ? 1.0 : 0.0, 0));
    }
    const auto first = corpusCurves(outcomes);
    const auto second = corpusCurves(outcomes);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_DOUBLE_EQ(first[i].lens_precision.lo,
                         second[i].lens_precision.lo);
        EXPECT_DOUBLE_EQ(first[i].lens_precision.hi,
                         second[i].lens_precision.hi);
        EXPECT_LE(first[i].lens_precision.lo, first[i].lens_precision.value);
        EXPECT_GE(first[i].lens_precision.hi, first[i].lens_precision.value);
        EXPECT_LE(first[i].lens_recall.lo, first[i].lens_recall.value);
        EXPECT_GE(first[i].lens_recall.hi, first[i].lens_recall.value);
    }
    // A mixed pool has genuine sampling spread: the interval is not a
    // point.
    const ClassCurve *row = rowFor(first, "stale-read-window");
    ASSERT_NE(nullptr, row);
    EXPECT_LT(row->lens_recall.lo, row->lens_recall.hi);

    // The bootstrap seed only moves the interval endpoints; the point
    // estimate is resampling-free.
    const auto reseeded = corpusCurves(outcomes, kBootstrapSeed + 1);
    const ClassCurve *other = rowFor(reseeded, "stale-read-window");
    ASSERT_NE(nullptr, other);
    EXPECT_DOUBLE_EQ(row->lens_recall.value, other->lens_recall.value);
    EXPECT_LE(other->lens_recall.lo, other->lens_recall.value);
    EXPECT_GE(other->lens_recall.hi, other->lens_recall.value);
}

TEST(CorpusCurves, OutcomeOrderDoesNotMatter)
{
    std::vector<CorpusOutcome> outcomes;
    for (int i = 0; i < 8; ++i) {
        outcomes.push_back(outcome(
            "corpus/fft/off-by-one-phase/" + std::to_string(i),
            "off-by-one-phase", "order", i % 2 ? 1.0 : 0.0, 1.0,
            1.0, i % 4 ? 0.0 : 2.0));
    }
    std::vector<CorpusOutcome> shuffled(outcomes.rbegin(),
                                        outcomes.rend());
    // Aggregation sorts by variant name first, so reversed input
    // resamples identically.
    const std::string a = corpusReport(outcomes);
    const std::string b = corpusReport(shuffled);
    EXPECT_EQ(a, b);
}

TEST(CorpusReport, RendersHeaderAndRows)
{
    std::vector<CorpusOutcome> outcomes;
    outcomes.push_back(outcome("corpus/lu/removed-lock/1",
                               "removed-lock", "lockset", 1, 1, 1, 0));
    const std::string report = corpusReport(outcomes);
    EXPECT_NE(std::string::npos, report.find("table6-corpus"));
    EXPECT_NE(std::string::npos, report.find("removed-lock"));
    EXPECT_NE(std::string::npos, report.find("lockset"));
    EXPECT_NE(std::string::npos, report.find("overall"));
    EXPECT_NE(std::string::npos, report.find("0.500"));
}

} // namespace
} // namespace act::corpus
