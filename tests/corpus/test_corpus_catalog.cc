/**
 * @file
 * Catalog round-trip and validation: the JSON a variant exports must
 * parse back to the exact catalog (64-bit seeds included), pass the
 * validator, and every way a catalog can be malformed or internally
 * inconsistent must be rejected with the right finding code. Variant
 * traces themselves must be clean under the trace linter — the corpus
 * rides the same trace toolchain as everything else.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/trace_lint.hh"
#include "corpus/catalog.hh"
#include "corpus/corpus.hh"
#include "telemetry/json.hh"

namespace act::corpus
{
namespace
{

CorpusCatalog
sampleCatalog()
{
    const auto workload =
        makeCorpusWorkload("corpus/canneal/split-critical-section/11");
    EXPECT_NE(nullptr, workload);
    return workload->catalog();
}

bool
hasCode(const std::vector<Finding> &findings, const std::string &code)
{
    for (const Finding &finding : findings) {
        if (finding.code == code)
            return true;
    }
    return false;
}

TEST(CatalogJson, RoundTripsExactly)
{
    const CorpusCatalog catalog = sampleCatalog();
    const std::string json = catalogJson(catalog);
    CorpusCatalog parsed;
    std::string error;
    ASSERT_TRUE(parseCatalogJson(json, parsed, &error)) << error;
    EXPECT_EQ(catalog, parsed);
    // Serialisation is canonical: re-emitting the parse is a no-op.
    EXPECT_EQ(json, catalogJson(parsed));
}

TEST(CatalogJson, PreservesFull64BitSeeds)
{
    // JSON numbers are doubles; seeds above 2^53 only survive the trip
    // because the writer emits them as decimal strings.
    CorpusCatalog catalog = sampleCatalog();
    catalog.seed = 0xfedcba9876543210ull;
    CorpusCatalog parsed;
    ASSERT_TRUE(parseCatalogJson(catalogJson(catalog), parsed, nullptr));
    EXPECT_EQ(0xfedcba9876543210ull, parsed.seed);
}

TEST(CatalogJson, ParsesViaTelemetryJson)
{
    const std::string json = catalogJson(sampleCatalog());
    std::string error;
    const auto tree = telemetry::parseJson(json, &error);
    ASSERT_NE(nullptr, tree) << error;
    ASSERT_TRUE(tree->isObject());
    const auto *schema = tree->find("schema");
    ASSERT_NE(nullptr, schema);
    EXPECT_EQ(kCatalogSchema, schema->text);
}

TEST(CatalogJson, ParseRejectsGarbage)
{
    CorpusCatalog out;
    std::string error;
    EXPECT_FALSE(parseCatalogJson("not json", out, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(parseCatalogJson("{}", out, &error));
    EXPECT_FALSE(parseCatalogJson("[1,2,3]", out, nullptr));
}

TEST(ValidateCatalog, AcceptsEveryGeneratedVariant)
{
    for (const CorpusVariantDesc &desc : corpusSlice(kCorpusMasterSeed, 12)) {
        const auto workload = makeCorpusWorkload(corpusName(desc));
        ASSERT_NE(nullptr, workload);
        const auto findings = validateCatalog(catalogJson(workload->catalog()));
        EXPECT_TRUE(findings.empty())
            << corpusName(desc) << ": " << formatFindings(findings);
    }
}

TEST(ValidateCatalog, RejectsMalformedJson)
{
    EXPECT_TRUE(hasCode(validateCatalog("{{{"), "bad-json"));
    EXPECT_TRUE(hasCode(validateCatalog("{\"schema\": 3}"), "bad-json"));
}

TEST(ValidateCatalog, RejectsUnknownClassAndWrongLens)
{
    CorpusCatalog catalog = sampleCatalog();
    catalog.bug_class = "no-such-class";
    EXPECT_TRUE(
        hasCode(validateCatalog(catalogJson(catalog)), "unknown-class"));

    catalog = sampleCatalog();
    catalog.lens = "order"; // split-critical-section is atomicity.
    EXPECT_TRUE(
        hasCode(validateCatalog(catalogJson(catalog)), "lens-mismatch"));
}

TEST(ValidateCatalog, RejectsBadPcs)
{
    CorpusCatalog catalog = sampleCatalog();
    catalog.root_store_pc = 0;
    EXPECT_TRUE(hasCode(validateCatalog(catalogJson(catalog)), "bad-pc"));

    catalog = sampleCatalog();
    catalog.site_load_pc = catalog.site_store_pc;
    EXPECT_TRUE(hasCode(validateCatalog(catalogJson(catalog)), "bad-pc"));
}

TEST(ValidateCatalog, RejectsBadParams)
{
    CorpusCatalog catalog = sampleCatalog();
    catalog.threads = 1;
    EXPECT_TRUE(
        hasCode(validateCatalog(catalogJson(catalog)), "bad-params"));

    catalog = sampleCatalog();
    catalog.trigger_phase = catalog.phases; // Needs a phase after it.
    EXPECT_TRUE(
        hasCode(validateCatalog(catalogJson(catalog)), "bad-params"));

    catalog = sampleCatalog();
    catalog.victim = 0; // The master thread cannot be the victim.
    EXPECT_TRUE(
        hasCode(validateCatalog(catalogJson(catalog)), "bad-params"));
}

TEST(ValidateCatalog, RejectsNameBodyDisagreement)
{
    CorpusCatalog catalog = sampleCatalog();
    catalog.seed += 1; // Name still carries the old seed.
    EXPECT_TRUE(
        hasCode(validateCatalog(catalogJson(catalog)), "name-mismatch"));

    catalog = sampleCatalog();
    catalog.name = "not-a-corpus-name";
    EXPECT_TRUE(
        hasCode(validateCatalog(catalogJson(catalog)), "name-mismatch"));
}

TEST(CorpusTraces, PassTheTraceLinter)
{
    // Correct and failing executions of a variant from each class must
    // be well-formed traces: lock balance, create-before-run, seq
    // monotonicity — the full lint rule set, zero errors.
    for (std::size_t c = 0; c < kCorpusBugClassCount; ++c) {
        CorpusVariantDesc desc;
        desc.base = "ocean";
        desc.bug_class = static_cast<CorpusBugClass>(c);
        desc.seed = 5;
        const auto workload = makeCorpusWorkload(corpusName(desc));
        ASSERT_NE(nullptr, workload);
        for (const bool fail : {false, true}) {
            WorkloadParams params;
            params.seed = fail ? 999 : 100;
            params.trigger_failure = fail;
            const Trace trace = workload->record(params);
            const auto findings = lintTrace(trace);
            EXPECT_EQ(0u, errorCount(findings))
                << corpusName(desc) << (fail ? " failing: " : " correct: ")
                << formatFindings(findings);
        }
    }
}

} // namespace
} // namespace act::corpus
