/**
 * @file
 * Tests for the workload registry and the prediction kernels.
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/kernel.hh"
#include "workloads/workload.hh"

namespace act
{
namespace
{

class WorkloadsFixture : public ::testing::Test
{
  protected:
    void SetUp() override { registerAllWorkloads(); }
};

TEST_F(WorkloadsFixture, RegistryContainsAllKernelsAndBugs)
{
    const auto &registry = WorkloadRegistry::instance();
    for (const auto &name : predictionKernelNames())
        EXPECT_TRUE(registry.contains(name)) << name;
    for (const char *bug :
         {"aget", "apache", "memcached", "mysql1", "mysql2", "mysql3",
          "pbzip2", "gzip", "seq", "ptx", "paste"}) {
        EXPECT_TRUE(registry.contains(bug)) << bug;
    }
}

TEST_F(WorkloadsFixture, TwelvePredictionKernels)
{
    EXPECT_EQ(predictionKernelNames().size(), 12u);
    EXPECT_EQ(concurrentKernelNames().size(), 9u);
}

TEST_F(WorkloadsFixture, SameSeedSameTrace)
{
    const auto workload = makeWorkload("lu");
    WorkloadParams params;
    params.seed = 7;
    const Trace a = workload->record(params);
    const Trace b = workload->record(params);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pc, b[i].pc) << i;
        EXPECT_EQ(a[i].addr, b[i].addr) << i;
        EXPECT_EQ(a[i].tid, b[i].tid) << i;
    }
}

TEST_F(WorkloadsFixture, DifferentSeedsDifferentInterleavings)
{
    const auto workload = makeWorkload("lu");
    WorkloadParams a_params;
    a_params.seed = 1;
    WorkloadParams b_params;
    b_params.seed = 2;
    const Trace a = workload->record(a_params);
    const Trace b = workload->record(b_params);
    bool different = a.size() != b.size();
    for (std::size_t i = 0; !different && i < a.size(); ++i)
        different = a[i].pc != b[i].pc || a[i].tid != b[i].tid;
    EXPECT_TRUE(different);
}

TEST_F(WorkloadsFixture, EveryKernelProducesEvents)
{
    for (const auto &name : predictionKernelNames()) {
        const auto workload = makeWorkload(name);
        WorkloadParams params;
        const Trace trace = workload->record(params);
        EXPECT_GT(trace.size(), 1000u) << name;
        EXPECT_GT(trace.loadCount(), 100u) << name;
        EXPECT_GT(trace.storeCount(), 100u) << name;
        EXPECT_GT(trace.branchCount(), 100u) << name;
        EXPECT_EQ(trace.threadCount(), workload->threadCount()) << name;
        EXPECT_EQ(workload->failureKind(), FailureKind::kNone) << name;
    }
}

TEST_F(WorkloadsFixture, ScaleGrowsTraces)
{
    const auto workload = makeWorkload("fft");
    WorkloadParams small;
    small.scale = 1;
    WorkloadParams large;
    large.scale = 3;
    EXPECT_GT(workload->record(large).size(),
              2 * workload->record(small).size());
}

TEST_F(WorkloadsFixture, KernelsEmitFilteredStackTraffic)
{
    const auto workload = makeWorkload("lu");
    WorkloadParams params;
    const Trace trace = workload->record(params);
    bool any_stack_load = false;
    for (const auto &event : trace.events())
        any_stack_load |= isFilteredLoad(event);
    EXPECT_TRUE(any_stack_load);
}

TEST_F(WorkloadsFixture, SharedChainsProduceInterThreadSharing)
{
    const auto workload = makeWorkload("ocean");
    WorkloadParams params;
    const Trace trace = workload->record(params);
    // Some address must be stored by one thread and loaded by another.
    std::set<std::pair<Addr, ThreadId>> stores;
    for (const auto &event : trace.events()) {
        if (event.kind == EventKind::kStore)
            stores.insert({event.addr, event.tid});
    }
    bool inter = false;
    for (const auto &event : trace.events()) {
        if (event.kind != EventKind::kLoad)
            continue;
        for (ThreadId t = 0; t < workload->threadCount() && !inter; ++t) {
            if (t != event.tid && stores.count({event.addr, t}))
                inter = true;
        }
        if (inter)
            break;
    }
    EXPECT_TRUE(inter);
}

TEST_F(WorkloadsFixture, ChainAccessorsConsistent)
{
    const KernelWorkload workload(kernelSpecFor("lu"));
    const std::uint32_t chain = workload.chainByFunction("TouchA");
    const auto pcs = workload.chainLoadPcs(chain);
    EXPECT_EQ(pcs.size(), workload.spec().chains[chain].length);
    for (std::uint32_t k = 0; k < pcs.size(); ++k)
        EXPECT_EQ(pcs[k], workload.loadPc(chain, k));
}

TEST_F(WorkloadsFixture, UnknownWorkloadNameFatal)
{
    EXPECT_DEATH(
        { WorkloadRegistry::instance().create("no-such-workload"); },
        "unknown workload");
}

TEST_F(WorkloadsFixture, ThreadLifecycleMarkersPresent)
{
    const auto workload = makeWorkload("canneal");
    WorkloadParams params;
    const Trace trace = workload->record(params);
    std::size_t creates = 0;
    std::size_t exits = 0;
    for (const auto &event : trace.events()) {
        creates += event.kind == EventKind::kThreadCreate;
        exits += event.kind == EventKind::kThreadExit;
    }
    EXPECT_EQ(creates, workload->threadCount() - 1);
    EXPECT_EQ(exits, workload->threadCount());
}

TEST_F(WorkloadsFixture, AddressSpacesDisjointAcrossKernels)
{
    const auto lu = makeWorkload("lu");
    const auto fft = makeWorkload("fft");
    WorkloadParams params;
    std::set<Addr> lu_lines;
    const Trace lu_trace = lu->record(params);
    for (const auto &event : lu_trace.events()) {
        if (event.isMemory())
            lu_lines.insert(event.addr / 64);
    }
    const Trace fft_trace = fft->record(params);
    for (const auto &event : fft_trace.events()) {
        if (event.isMemory()) {
            EXPECT_EQ(lu_lines.count(event.addr / 64), 0u);
        }
    }
}

} // namespace
} // namespace act
