/**
 * @file
 * Tests for the kernel engine's traffic shape: second-operand loads,
 * burst sweeps, rare regions — the features that drive the AM's
 * input-FIFO pressure and the Table IV misprediction spread.
 */

#include <gtest/gtest.h>

#include <set>

#include "deps/input_generator.hh"
#include "workloads/kernel.hh"

namespace act
{
namespace
{

KernelSpec
tinySpec()
{
    KernelSpec spec;
    spec.name = "tiny";
    spec.description = "test kernel";
    spec.workload_id = 70;
    spec.threads = 2;
    spec.iterations = 300;
    spec.chains = {{"alpha", 6, 0.05, false}, {"beta", 6, 0.05, true}};
    return spec;
}

TEST(KernelTraffic, BurstsProduceBackToBackLoads)
{
    KernelSpec spec = tinySpec();
    spec.burst_prob = 1.0; // burst on every step
    spec.burst_length = 6;
    const KernelWorkload workload(spec);
    WorkloadParams params;
    const Trace trace = workload.record(params);

    // Bursts emit runs of loads with gaps of at most 2.
    std::size_t longest_run = 0;
    std::size_t run = 0;
    for (const auto &event : trace.events()) {
        if (event.kind == EventKind::kLoad && event.gap <= 2) {
            longest_run = std::max(longest_run, ++run);
        } else {
            run = 0;
        }
    }
    EXPECT_GE(longest_run, 4u);
}

TEST(KernelTraffic, NoBurstsWhenDisabled)
{
    KernelSpec spec = tinySpec();
    spec.burst_prob = 0.0;
    spec.second_load_prob = 0.0;
    spec.rare.emit_prob = 0.0;
    spec.stack_prob = 0.0;
    const KernelWorkload workload(spec);
    WorkloadParams params;
    const Trace trace = workload.record(params);
    // One store + one load + one branch per step, nothing else.
    EXPECT_NEAR(static_cast<double>(trace.loadCount()),
                static_cast<double>(trace.storeCount()), 2.0);
}

TEST(KernelTraffic, SecondLoadsAddDependences)
{
    KernelSpec base = tinySpec();
    base.burst_prob = 0.0;
    base.rare.emit_prob = 0.0;
    KernelSpec with_seconds = base;
    with_seconds.second_load_prob = 1.0;
    base.second_load_prob = 0.0;

    WorkloadParams params;
    const InputGenerator generator(1);
    const auto deps_of = [&](const KernelSpec &spec) {
        const KernelWorkload workload(spec);
        const Trace trace = workload.record(params);
        return generator.process(trace, false).dependence_count;
    };
    EXPECT_GT(deps_of(with_seconds), deps_of(base) * 3 / 2);
}

TEST(KernelTraffic, RareRegionAddsNovelDependenceTypes)
{
    KernelSpec base = tinySpec();
    base.rare.emit_prob = 0.0;
    KernelSpec with_rare = base;
    with_rare.rare = RareRegionConfig{100, 10, 0.2};

    WorkloadParams params;
    const InputGenerator generator(1);
    const auto distinct_deps = [&](const KernelSpec &spec) {
        const KernelWorkload workload(spec);
        const Trace trace = workload.record(params);
        std::set<std::uint64_t> keys;
        for (const auto &seq :
             generator.process(trace, false).positives) {
            keys.insert(seq.deps.back().key());
        }
        return keys.size();
    };
    EXPECT_GT(distinct_deps(with_rare), distinct_deps(base) + 4);
}

TEST(KernelTraffic, RareActiveSetsVaryAcrossSeeds)
{
    KernelSpec spec = tinySpec();
    spec.rare = RareRegionConfig{200, 16, 0.2};
    const KernelWorkload workload(spec);
    const InputGenerator generator(1);

    const auto rare_keys = [&](std::uint64_t seed) {
        WorkloadParams params;
        params.seed = seed;
        const Trace trace = workload.record(params);
        std::set<std::uint64_t> keys;
        for (const auto &seq :
             generator.process(trace, false).positives) {
            // Rare loads live in the dedicated function-id area.
            if ((seq.deps.back().load_pc & 0xFFFFF) >= 0x2C000)
                keys.insert(seq.deps.back().key());
        }
        return keys;
    };
    const auto a = rare_keys(1);
    const auto b = rare_keys(2);
    ASSERT_FALSE(a.empty());
    ASSERT_FALSE(b.empty());
    std::set<std::uint64_t> only_b;
    for (const auto k : b) {
        if (!a.count(k))
            only_b.insert(k);
    }
    EXPECT_FALSE(only_b.empty())
        << "different inputs must activate different rare paths";
}

} // namespace
} // namespace act
