/**
 * @file
 * Tests for the rare-communication pool.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "deps/encoder.hh"
#include "trace/trace.hh"
#include "workloads/rare_region.hh"

namespace act
{
namespace
{

TEST(RareRegion, ActiveSetSizeMatchesConfig)
{
    const AddressMap map(60);
    RareRegionConfig config;
    config.pool = 100;
    config.active = 13;
    const RareRegion region(map, config, 42);
    EXPECT_EQ(region.activeSet().size(), 13u);
    for (const std::uint32_t fn : region.activeSet())
        EXPECT_LT(fn, 100u);
}

TEST(RareRegion, ActiveSetDeterministicPerSeed)
{
    const AddressMap map(60);
    RareRegionConfig config;
    const RareRegion a(map, config, 7);
    const RareRegion b(map, config, 7);
    const RareRegion c(map, config, 8);
    EXPECT_EQ(a.activeSet(), b.activeSet());
    EXPECT_NE(a.activeSet(), c.activeSet());
}

TEST(RareRegion, DependencesStableAcrossRuns)
{
    // Function f's dependence must be identical no matter which run
    // activates it — otherwise training coverage would be impossible.
    const AddressMap map(60);
    RareRegionConfig config;
    const RareRegion a(map, config, 1);
    const RareRegion b(map, config, 2);
    for (std::uint32_t fn = 0; fn < config.pool; ++fn)
        EXPECT_EQ(a.dependenceFor(fn), b.dependenceFor(fn)) << fn;
}

TEST(RareRegion, DistancesStayInsideTheRareBand)
{
    // Root-cause dependences live beyond the band, so every rare
    // distance must stay within it (Section "ranking" rationale).
    const AddressMap map(60);
    RareRegionConfig config;
    config.pool = 200;
    const RareRegion region(map, config, 3);
    for (std::uint32_t fn = 0; fn < config.pool; ++fn) {
        const RawDependence dep = region.dependenceFor(fn);
        const double delta = std::abs(
            static_cast<double>(dep.load_pc) -
            static_cast<double>(dep.store_pc));
        EXPECT_GE(std::log2(delta + 1), config.min_log_delta - 0.6) << fn;
        EXPECT_LE(std::log2(delta), config.max_log_delta + 0.1) << fn;
    }
}

TEST(RareRegion, DistancesSpreadAcrossTheBand)
{
    const AddressMap map(60);
    RareRegionConfig config;
    config.pool = 200;
    const RareRegion region(map, config, 3);
    std::set<long> buckets;
    for (std::uint32_t fn = 0; fn < config.pool; ++fn) {
        const RawDependence dep = region.dependenceFor(fn);
        buckets.insert(std::lround(
            PairEncoder::distanceFeature(dep) * 10.0));
    }
    EXPECT_GT(buckets.size(), 10u);
}

TEST(RareRegion, EmitProducesMatchingDependence)
{
    const AddressMap map(60);
    RareRegionConfig config;
    config.active = 4;
    RareRegion region(map, config, 11);
    Trace trace;
    ThreadEmitter emitter(trace, 0, Rng(5));
    region.emitOne(emitter);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[0].kind, EventKind::kStore);
    EXPECT_EQ(trace[1].kind, EventKind::kLoad);
    EXPECT_EQ(trace[0].addr, trace[1].addr);
    bool matches_active = false;
    for (const std::uint32_t fn : region.activeSet()) {
        const RawDependence dep = region.dependenceFor(fn);
        matches_active |= dep.store_pc == trace[0].pc &&
                          dep.load_pc == trace[1].pc;
    }
    EXPECT_TRUE(matches_active);
}

TEST(RareRegion, MaybeEmitHonoursProbability)
{
    const AddressMap map(60);
    RareRegionConfig config;
    config.emit_prob = 0.0;
    RareRegion region(map, config, 11);
    Trace trace;
    ThreadEmitter emitter(trace, 0, Rng(5));
    for (int i = 0; i < 100; ++i)
        region.maybeEmit(emitter);
    EXPECT_TRUE(trace.empty());
}

} // namespace
} // namespace act
