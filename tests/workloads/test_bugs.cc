/**
 * @file
 * Tests for the 11 real-bug models and the injected-bug helpers: the
 * failing run must create the documented root-cause dependence, and
 * correct runs must never create it.
 */

#include <gtest/gtest.h>

#include "deps/input_generator.hh"
#include "workloads/bugs.hh"

namespace act
{
namespace
{

class BugsFixture : public ::testing::Test
{
  protected:
    void SetUp() override { registerAllWorkloads(); }

    static bool
    traceContainsDep(const Trace &trace, const RawDependence &dep)
    {
        InputGenerator generator(1);
        const GeneratedSequences out = generator.process(trace, false);
        for (const auto &seq : out.positives) {
            if (seq.deps.back() == dep)
                return true;
        }
        return false;
    }
};

TEST_F(BugsFixture, ElevenRealBugs)
{
    EXPECT_EQ(realBugNames().size(), 11u);
}

TEST_F(BugsFixture, FailingRunsCreateTheRootCause)
{
    for (const auto &name : realBugNames()) {
        const auto workload = makeWorkload(name);
        WorkloadParams params;
        params.seed = 3;
        params.trigger_failure = true;
        const Trace trace = workload->record(params);
        EXPECT_TRUE(traceContainsDep(trace, workload->buggyDependence()))
            << name;
    }
}

TEST_F(BugsFixture, CorrectRunsNeverCreateTheRootCause)
{
    for (const auto &name : realBugNames()) {
        const auto workload = makeWorkload(name);
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
            WorkloadParams params;
            params.seed = seed;
            const Trace trace = workload->record(params);
            EXPECT_FALSE(
                traceContainsDep(trace, workload->buggyDependence()))
                << name << " seed " << seed;
        }
    }
}

TEST_F(BugsFixture, FailureKindsMatchTableV)
{
    const std::unordered_map<std::string, FailureKind> expected = {
        {"aget", FailureKind::kCompletion},
        {"apache", FailureKind::kCrash},
        {"memcached", FailureKind::kCompletion},
        {"mysql1", FailureKind::kCompletion},
        {"mysql2", FailureKind::kCrash},
        {"mysql3", FailureKind::kCrash},
        {"pbzip2", FailureKind::kCrash},
        {"gzip", FailureKind::kCompletion},
        {"seq", FailureKind::kCompletion},
        {"ptx", FailureKind::kCompletion},
        {"paste", FailureKind::kCrash},
    };
    for (const auto &[name, kind] : expected)
        EXPECT_EQ(makeWorkload(name)->failureKind(), kind) << name;
}

TEST_F(BugsFixture, BugClassesMatchTableV)
{
    EXPECT_EQ(makeWorkload("aget")->bugClass(),
              BugClass::kOrderViolation);
    EXPECT_EQ(makeWorkload("pbzip2")->bugClass(),
              BugClass::kOrderViolation);
    EXPECT_EQ(makeWorkload("apache")->bugClass(),
              BugClass::kAtomicityViolation);
    EXPECT_EQ(makeWorkload("gzip")->bugClass(), BugClass::kSemantic);
    EXPECT_EQ(makeWorkload("seq")->bugClass(), BugClass::kSemantic);
    EXPECT_EQ(makeWorkload("ptx")->bugClass(),
              BugClass::kBufferOverflow);
    EXPECT_EQ(makeWorkload("paste")->bugClass(),
              BugClass::kBufferOverflow);
}

TEST_F(BugsFixture, SequentialBugsAreSingleThreaded)
{
    for (const char *name : {"gzip", "seq", "ptx", "paste"})
        EXPECT_EQ(makeWorkload(name)->threadCount(), 1u) << name;
}

TEST_F(BugsFixture, ConcurrencyBugRootCausesAreInterThread)
{
    for (const char *name :
         {"aget", "apache", "memcached", "mysql1", "mysql2", "mysql3",
          "pbzip2"}) {
        EXPECT_TRUE(makeWorkload(name)->buggyDependence().inter_thread)
            << name;
    }
}

TEST_F(BugsFixture, CrashTracesAreTruncated)
{
    const auto workload = makeWorkload("mysql2");
    WorkloadParams correct;
    correct.seed = 4;
    WorkloadParams failing = correct;
    failing.trigger_failure = true;
    EXPECT_LT(workload->record(failing).size(),
              workload->record(correct).size());
}

TEST_F(BugsFixture, PbzipBranchFlipsOnlyInFailingRuns)
{
    const auto workload = makeWorkload("pbzip2");
    // The consumer's emptiness check (pc slot 12,4) is always taken in
    // correct runs and takes the other arm right before the crash.
    const AddressMap map(26);
    const Pc check = map.pc(12, 4);
    WorkloadParams params;
    params.seed = 2;
    const Trace correct = workload->record(params);
    for (const auto &event : correct.events()) {
        if (event.kind == EventKind::kBranch && event.pc == check) {
            EXPECT_TRUE(event.taken);
        }
    }
    params.trigger_failure = true;
    bool saw_not_taken = false;
    const Trace failing = workload->record(params);
    for (const auto &event : failing.events()) {
        if (event.kind == EventKind::kBranch && event.pc == check) {
            saw_not_taken |= !event.taken;
        }
    }
    EXPECT_TRUE(saw_not_taken);
}

TEST_F(BugsFixture, InjectedBugTargetsResolve)
{
    const auto targets = injectedBugTargets();
    EXPECT_EQ(targets.size(), 5u);
    for (const auto &target : targets) {
        const auto workload =
            makeInjectedWorkload(target.kernel, target.function);
        EXPECT_EQ(workload->failureKind(), FailureKind::kCrash);
        EXPECT_EQ(workload->bugClass(), BugClass::kInjected);
        const RawDependence root = workload->buggyDependence();
        EXPECT_NE(root.store_pc, kInvalidPc);

        WorkloadParams params;
        params.seed = 5;
        params.trigger_failure = true;
        EXPECT_TRUE(traceContainsDep(workload->record(params), root))
            << target.kernel << "/" << target.function;
        params.trigger_failure = false;
        EXPECT_FALSE(traceContainsDep(workload->record(params), root))
            << target.kernel << "/" << target.function;
    }
}

TEST_F(BugsFixture, GzipDashPositionsMatchFigure2d)
{
    // Correct runs: '-' first or absent; failing run: '-' mid-input.
    const auto workload = makeWorkload("gzip");
    const AddressMap map(27);
    const Pc dash_branch = map.pc(10, 8);
    WorkloadParams params;
    params.trigger_failure = true;
    params.seed = 9;
    const Trace failing = workload->record(params);
    std::vector<bool> outcomes;
    for (const auto &event : failing.events()) {
        if (event.kind == EventKind::kBranch && event.pc == dash_branch)
            outcomes.push_back(event.taken);
    }
    ASSERT_FALSE(outcomes.empty());
    EXPECT_FALSE(outcomes.front()); // not first
    bool any_taken = false;
    for (const bool taken : outcomes)
        any_taken |= taken;
    EXPECT_TRUE(any_taken); // but somewhere in the middle
}

} // namespace
} // namespace act
