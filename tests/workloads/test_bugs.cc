/**
 * @file
 * Tests for the 11 real-bug models and the injected-bug helpers: the
 * failing run must create the documented root-cause dependence, and
 * correct runs must never create it.
 */

#include <gtest/gtest.h>

#include "deps/input_generator.hh"
#include "workloads/bugs.hh"

namespace act
{
namespace
{

class BugsFixture : public ::testing::Test
{
  protected:
    void SetUp() override { registerAllWorkloads(); }

    static bool
    traceContainsDep(const Trace &trace, const RawDependence &dep)
    {
        InputGenerator generator(1);
        const GeneratedSequences out = generator.process(trace, false);
        for (const auto &seq : out.positives) {
            if (seq.deps.back() == dep)
                return true;
        }
        return false;
    }
};

TEST_F(BugsFixture, ElevenRealBugs)
{
    EXPECT_EQ(realBugNames().size(), 11u);
}

TEST_F(BugsFixture, FailingRunsCreateTheRootCause)
{
    for (const auto &name : realBugNames()) {
        const auto workload = makeWorkload(name);
        WorkloadParams params;
        params.seed = 3;
        params.trigger_failure = true;
        const Trace trace = workload->record(params);
        EXPECT_TRUE(traceContainsDep(trace, workload->buggyDependence()))
            << name;
    }
}

TEST_F(BugsFixture, CorrectRunsNeverCreateTheRootCause)
{
    for (const auto &name : realBugNames()) {
        const auto workload = makeWorkload(name);
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
            WorkloadParams params;
            params.seed = seed;
            const Trace trace = workload->record(params);
            EXPECT_FALSE(
                traceContainsDep(trace, workload->buggyDependence()))
                << name << " seed " << seed;
        }
    }
}

TEST_F(BugsFixture, FailureKindsMatchTableV)
{
    const std::unordered_map<std::string, FailureKind> expected = {
        {"aget", FailureKind::kCompletion},
        {"apache", FailureKind::kCrash},
        {"memcached", FailureKind::kCompletion},
        {"mysql1", FailureKind::kCompletion},
        {"mysql2", FailureKind::kCrash},
        {"mysql3", FailureKind::kCrash},
        {"pbzip2", FailureKind::kCrash},
        {"gzip", FailureKind::kCompletion},
        {"seq", FailureKind::kCompletion},
        {"ptx", FailureKind::kCompletion},
        {"paste", FailureKind::kCrash},
    };
    for (const auto &[name, kind] : expected)
        EXPECT_EQ(makeWorkload(name)->failureKind(), kind) << name;
}

TEST_F(BugsFixture, BugClassesMatchTableV)
{
    EXPECT_EQ(makeWorkload("aget")->bugClass(),
              BugClass::kOrderViolation);
    EXPECT_EQ(makeWorkload("pbzip2")->bugClass(),
              BugClass::kOrderViolation);
    EXPECT_EQ(makeWorkload("apache")->bugClass(),
              BugClass::kAtomicityViolation);
    EXPECT_EQ(makeWorkload("gzip")->bugClass(), BugClass::kSemantic);
    EXPECT_EQ(makeWorkload("seq")->bugClass(), BugClass::kSemantic);
    EXPECT_EQ(makeWorkload("ptx")->bugClass(),
              BugClass::kBufferOverflow);
    EXPECT_EQ(makeWorkload("paste")->bugClass(),
              BugClass::kBufferOverflow);
}

TEST_F(BugsFixture, SequentialBugsAreSingleThreaded)
{
    for (const char *name : {"gzip", "seq", "ptx", "paste"})
        EXPECT_EQ(makeWorkload(name)->threadCount(), 1u) << name;
}

TEST_F(BugsFixture, ConcurrencyBugRootCausesAreInterThread)
{
    for (const char *name :
         {"aget", "apache", "memcached", "mysql1", "mysql2", "mysql3",
          "pbzip2"}) {
        EXPECT_TRUE(makeWorkload(name)->buggyDependence().inter_thread)
            << name;
    }
}

TEST_F(BugsFixture, CrashTracesAreTruncated)
{
    const auto workload = makeWorkload("mysql2");
    WorkloadParams correct;
    correct.seed = 4;
    WorkloadParams failing = correct;
    failing.trigger_failure = true;
    EXPECT_LT(workload->record(failing).size(),
              workload->record(correct).size());
}

TEST_F(BugsFixture, PbzipBranchFlipsOnlyInFailingRuns)
{
    const auto workload = makeWorkload("pbzip2");
    // The consumer's emptiness check (pc slot 12,4) is always taken in
    // correct runs and takes the other arm right before the crash.
    const AddressMap map(26);
    const Pc check = map.pc(12, 4);
    WorkloadParams params;
    params.seed = 2;
    const Trace correct = workload->record(params);
    for (const auto &event : correct.events()) {
        if (event.kind == EventKind::kBranch && event.pc == check) {
            EXPECT_TRUE(event.taken);
        }
    }
    params.trigger_failure = true;
    bool saw_not_taken = false;
    const Trace failing = workload->record(params);
    for (const auto &event : failing.events()) {
        if (event.kind == EventKind::kBranch && event.pc == check) {
            saw_not_taken |= !event.taken;
        }
    }
    EXPECT_TRUE(saw_not_taken);
}

TEST_F(BugsFixture, InjectedBugTargetsResolve)
{
    const auto targets = injectedBugTargets();
    EXPECT_EQ(targets.size(), 5u);
    for (const auto &target : targets) {
        const auto workload =
            makeInjectedWorkload(target.kernel, target.function);
        EXPECT_EQ(workload->failureKind(), FailureKind::kCrash);
        EXPECT_EQ(workload->bugClass(), BugClass::kInjected);
        const RawDependence root = workload->buggyDependence();
        EXPECT_NE(root.store_pc, kInvalidPc);

        WorkloadParams params;
        params.seed = 5;
        params.trigger_failure = true;
        EXPECT_TRUE(traceContainsDep(workload->record(params), root))
            << target.kernel << "/" << target.function;
        params.trigger_failure = false;
        EXPECT_FALSE(traceContainsDep(workload->record(params), root))
            << target.kernel << "/" << target.function;
    }
}

TEST_F(BugsFixture, GoldenTableVAndViRootsArePinned)
{
    // Byte-identical pin of the Table V / Table VI bug inventory: the
    // workload names, bug classes and root-cause PC pairs the reports
    // are scored against. Any drift here silently re-bases every
    // downstream table, so it must be a deliberate, reviewed change —
    // update the golden string only alongside the matching report
    // re-baselines.
    std::ostringstream out;
    for (const auto &name : realBugNames()) {
        const auto workload = makeWorkload(name);
        const RawDependence root = workload->buggyDependence();
        out << name << " class=" << static_cast<int>(workload->bugClass())
            << " root=0x" << std::hex << root.store_pc << "->0x"
            << root.load_pc << std::dec
            << " inter=" << (root.inter_thread ? 1 : 0) << "\n";
    }
    for (const auto &target : injectedBugTargets()) {
        const auto workload =
            makeInjectedWorkload(target.kernel, target.function);
        ASSERT_NE(nullptr, workload);
        const RawDependence root = workload->buggyDependence();
        out << target.kernel << "/" << target.function
            << " class=" << static_cast<int>(workload->bugClass())
            << " root=0x" << std::hex << root.store_pc << "->0x"
            << root.load_pc << std::dec
            << " inter=" << (root.inter_thread ? 1 : 0) << "\n";
    }
    const std::string golden =
        "aget class=1 root=0x180a000->0x180c004 inter=1\n"
        "apache class=2 root=0x1914000->0x190c004 inter=1\n"
        "memcached class=2 root=0x1a18000->0x1a0c004 inter=1\n"
        "mysql1 class=2 root=0x1b19000->0x1b0c004 inter=1\n"
        "mysql2 class=2 root=0x1c1a000->0x1c0c004 inter=1\n"
        "mysql3 class=2 root=0x1d1b000->0x1d0c004 inter=1\n"
        "pbzip2 class=1 root=0x1e1d000->0x1e0c004 inter=1\n"
        "gzip class=3 root=0x1f0b000->0x1f0a004 inter=0\n"
        "seq class=3 root=0x200a000->0x2010004 inter=0\n"
        "ptx class=4 root=0x2111000->0x210a004 inter=0\n"
        "paste class=4 root=0x2208808->0x220a004 inter=0\n"
        "ocean/TouchArray class=5 root=0x85a000->0x80002c inter=0\n"
        "barnes/VListInteraction class=5 root=0x95a000->0x900024 "
        "inter=0\n"
        "fluidanimate/ComputeDensitiesMT class=5 "
        "root=0xb5a000->0xb00034 inter=0\n"
        "lu/TouchA class=5 root=0x55a000->0x50002c inter=0\n"
        "swaptions/worker class=5 root=0xd5a000->0xd0003c inter=0\n";
    EXPECT_EQ(golden, out.str());
}

TEST_F(BugsFixture, InjectedWorkloadRejectsUnknownKernel)
{
    std::vector<Finding> findings;
    EXPECT_EQ(nullptr,
              makeInjectedWorkload("no-such-kernel", "worker", &findings));
    ASSERT_EQ(1u, findings.size());
    EXPECT_EQ("workloads", findings[0].pass);
    EXPECT_EQ("unknown-kernel", findings[0].code);
    EXPECT_EQ(Severity::kError, findings[0].severity);
    EXPECT_NE(std::string::npos,
              findings[0].message.find("no-such-kernel"));
}

TEST_F(BugsFixture, InjectedWorkloadRejectsUnknownFunction)
{
    std::vector<Finding> findings;
    EXPECT_EQ(nullptr,
              makeInjectedWorkload("lu", "NoSuchFunction", &findings));
    ASSERT_EQ(1u, findings.size());
    EXPECT_EQ("unknown-function", findings[0].code);
    EXPECT_NE(std::string::npos,
              findings[0].message.find("NoSuchFunction"));
}

TEST_F(BugsFixture, InjectedWorkloadErrorPathToleratesNullFindings)
{
    // The findings sink is optional; both error paths must survive a
    // null pointer (the old implementation aborted the process here).
    EXPECT_EQ(nullptr, makeInjectedWorkload("no-such-kernel", "worker"));
    EXPECT_EQ(nullptr, makeInjectedWorkload("lu", "NoSuchFunction"));
}

TEST_F(BugsFixture, GzipDashPositionsMatchFigure2d)
{
    // Correct runs: '-' first or absent; failing run: '-' mid-input.
    const auto workload = makeWorkload("gzip");
    const AddressMap map(27);
    const Pc dash_branch = map.pc(10, 8);
    WorkloadParams params;
    params.trigger_failure = true;
    params.seed = 9;
    const Trace failing = workload->record(params);
    std::vector<bool> outcomes;
    for (const auto &event : failing.events()) {
        if (event.kind == EventKind::kBranch && event.pc == dash_branch)
            outcomes.push_back(event.taken);
    }
    ASSERT_FALSE(outcomes.empty());
    EXPECT_FALSE(outcomes.front()); // not first
    bool any_taken = false;
    for (const bool taken : outcomes)
        any_taken |= taken;
    EXPECT_TRUE(any_taken); // but somewhere in the middle
}

} // namespace
} // namespace act
