/**
 * @file
 * Tests for the analysis pipeline: determinism across detector-level
 * parallelism and decode paths, ensemble scoring, report dedup and
 * ranking, and agreement with the bug catalog over every workload.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "analysis/pipeline.hh"
#include "trace/io.hh"
#include "workloads/bugs.hh"
#include "workloads/workload.hh"

namespace act
{
namespace
{

constexpr Addr kLockA = 0x1000;
constexpr Addr kLockB = 0x1100;
constexpr Addr kData = 0x2000;

TraceEvent
makeEvent(EventKind kind, ThreadId tid, Pc pc, Addr addr)
{
    TraceEvent e;
    e.kind = kind;
    e.tid = tid;
    e.pc = pc;
    e.addr = addr;
    return e;
}

/**
 * A synthetic trace that trips every detector class at once:
 *  - opposing lock orders (deadlock cycle),
 *  - an unlocked shared write (lockset),
 *  - an unserializable W-W-R triple (atomicity),
 *  - a remote read before init (order, single-trace mode),
 * and carries happens-before races for the oracle lens.
 */
Trace
everyDetectorTrace()
{
    Trace trace;
    // Lock-order inversion.
    trace.append(makeEvent(EventKind::kLock, 0, 0x1, kLockA));
    trace.append(makeEvent(EventKind::kLock, 0, 0x2, kLockB));
    trace.append(makeEvent(EventKind::kUnlock, 0, 0x3, kLockB));
    trace.append(makeEvent(EventKind::kUnlock, 0, 0x4, kLockA));
    trace.append(makeEvent(EventKind::kLock, 1, 0x5, kLockB));
    trace.append(makeEvent(EventKind::kLock, 1, 0x6, kLockA));
    trace.append(makeEvent(EventKind::kUnlock, 1, 0x7, kLockA));
    trace.append(makeEvent(EventKind::kUnlock, 1, 0x8, kLockB));
    // Use before init: t1 reads kData+8 before t0 ever writes it.
    trace.append(makeEvent(EventKind::kLoad, 1, 0x40, kData + 8));
    trace.append(makeEvent(EventKind::kStore, 0, 0x41, kData + 8));
    // Unlocked sharing + W-W-R triple on kData.
    trace.append(makeEvent(EventKind::kStore, 0, 0x10, kData));
    trace.append(makeEvent(EventKind::kLoad, 1, 0x20, kData));
    trace.append(makeEvent(EventKind::kStore, 0, 0x11, kData));
    trace.append(makeEvent(EventKind::kStore, 1, 0x21, kData));
    trace.append(makeEvent(EventKind::kStore, 0, 0x12, kData));
    trace.append(makeEvent(EventKind::kLoad, 0, 0x13, kData));
    return trace;
}

TEST(Pipeline, EveryDetectorClassFires)
{
    const PipelineResult result =
        runAnalysisPipeline(everyDetectorTrace());
    EXPECT_GT(result.report.countFor(DetectorKind::kLockset), 0u);
    EXPECT_GT(result.report.countFor(DetectorKind::kLockOrder), 0u);
    EXPECT_GT(result.report.countFor(DetectorKind::kAtomicity), 0u);
    EXPECT_GT(result.report.countFor(DetectorKind::kOrder), 0u);
    EXPECT_FALSE(result.races.empty());
    EXPECT_GT(result.report.events_analyzed, 0u);
    // Every finding carries a dynamic witness.
    for (const AnalysisFinding &finding : result.report.findings())
        EXPECT_FALSE(finding.witness_seqs.empty()) << finding.code;
}

TEST(Pipeline, TextIsByteIdenticalAcrossJobs)
{
    const Trace trace = everyDetectorTrace();
    PipelineOptions serial;
    serial.jobs = 1;
    PipelineOptions wide;
    wide.jobs = 4;
    const std::string expected =
        runAnalysisPipeline(trace, serial).toText();
    EXPECT_FALSE(expected.empty());
    for (int round = 0; round < 5; ++round)
        EXPECT_EQ(runAnalysisPipeline(trace, wide).toText(), expected);
}

TEST(Pipeline, TextIsByteIdenticalAcrossDecodePaths)
{
    // A workload recording (per-event append) and its disk round-trip
    // (block decode via appendBlock) must analyse identically.
    registerAllWorkloads();
    const auto workload = makeWorkload("pbzip2");
    WorkloadParams params;
    params.seed = 999;
    params.trigger_failure = true;
    const Trace recorded = workload->record(params);

    const std::string path = ::testing::TempDir() + "pipeline_rt.trc";
    ASSERT_TRUE(writeTrace(recorded, path));
    Trace decoded;
    ASSERT_TRUE(readTrace(path, decoded));
    std::remove(path.c_str());

    EXPECT_EQ(runAnalysisPipeline(recorded).toText(),
              runAnalysisPipeline(decoded).toText());
}

TEST(Pipeline, DisabledDetectorsStayDormant)
{
    PipelineOptions off;
    off.lockset = off.lock_order = off.atomicity = off.order = false;
    off.hb_races = false;
    const PipelineResult result =
        runAnalysisPipeline(everyDetectorTrace(), off);
    EXPECT_TRUE(result.report.empty());
    EXPECT_TRUE(result.races.empty());
}

TEST(Pipeline, RankedOrdersByCountThenIdentity)
{
    AnalysisReport report;
    AnalysisFinding rare;
    rare.detector = DetectorKind::kLockset;
    rare.code = "unlocked-shared-write";
    rare.pcs = {0x10, 0x20};
    rare.count = 1;
    AnalysisFinding frequent = rare;
    frequent.pcs = {0x30, 0x40};
    frequent.count = 9;
    report.add(rare);
    report.add(frequent);
    const auto ranked = report.ranked();
    ASSERT_EQ(ranked.size(), 2u);
    EXPECT_EQ(ranked[0].pcs, (std::vector<Pc>{0x30, 0x40}));

    // Re-adding a finding with the same key folds counts.
    report.add(rare);
    EXPECT_EQ(report.size(), 2u);
    EXPECT_EQ(report.ranked()[1].count, 2u);
}

TEST(Pipeline, EnsembleScoresEveryLens)
{
    const PipelineResult result =
        runAnalysisPipeline(everyDetectorTrace());

    RawDependence hit; // The W->R pair several lenses corroborate.
    hit.store_pc = 0x10;
    hit.load_pc = 0x20;
    hit.inter_thread = true;
    RawDependence miss;
    miss.store_pc = 0x70;
    miss.load_pc = 0x71;
    miss.inter_thread = true;
    RawDependence local = hit;
    local.inter_thread = false;

    const EnsembleScore score =
        scoreEnsemble(result, {hit, miss, local, hit});
    ASSERT_EQ(score.per_detector.count("lockset"), 1u);
    ASSERT_EQ(score.per_detector.count("hb"), 1u);
    // Duplicates and intra-thread predictions dropped everywhere.
    EXPECT_EQ(score.fused.considered, 2u);
    EXPECT_EQ(score.per_detector.at("lockset").considered, 2u);
    // The hit pair is inside the W-R-W atomicity triple (0x10, 0x20,
    // 0x11) and is an HB race; fused credits it once.
    EXPECT_EQ(score.per_detector.at("atomicity").true_positives, 1u);
    EXPECT_EQ(score.per_detector.at("hb").true_positives, 1u);
    EXPECT_EQ(score.fused.true_positives, 1u);
    EXPECT_EQ(score.fused.false_positives, 1u);
    EXPECT_DOUBLE_EQ(score.fused.precision(), 0.5);
    // Lock-order has findings but never covers predicted pairs.
    EXPECT_EQ(score.per_detector.at("lock-order").true_positives, 0u);
}

TEST(Pipeline, EnsembleEmptyPredictionsAreVacuouslyPrecise)
{
    const PipelineResult result =
        runAnalysisPipeline(everyDetectorTrace());
    const EnsembleScore score = scoreEnsemble(result, {});
    EXPECT_EQ(score.fused.considered, 0u);
    EXPECT_DOUBLE_EQ(score.fused.precision(), 1.0);
    EXPECT_GT(score.fused.false_negatives, 0u);
    EXPECT_LT(score.fused.recall(), 1.0);
}

/**
 * Catalog agreement over the full workload registry, with baselines
 * mined from passing runs exactly as `actlint analyze` does: the bug's
 * own detector class flags the root dependence of every concurrent
 * bug, and sequential bugs produce no findings at all.
 */
TEST(Pipeline, AgreesWithBugCatalogUnderMinedBaselines)
{
    registerAllWorkloads();
    for (const std::string &name : realBugNames()) {
        const auto workload = makeWorkload(name);

        MinedBaselines baselines;
        for (std::uint64_t seed = 100; seed < 110; ++seed) {
            WorkloadParams params;
            params.seed = seed;
            baselines.addPassingTrace(workload->record(params));
        }

        WorkloadParams failing;
        failing.seed = 999;
        failing.trigger_failure = true;
        PipelineOptions options;
        options.baselines = &baselines;
        const PipelineResult result =
            runAnalysisPipeline(workload->record(failing), options);

        const RawDependence root = workload->buggyDependence();
        switch (workload->bugClass()) {
        case BugClass::kAtomicityViolation:
            EXPECT_TRUE(result.report.matchesPair(
                DetectorKind::kAtomicity, root.store_pc, root.load_pc))
                << name << ": atomicity detector must flag the root";
            break;
        case BugClass::kOrderViolation:
            EXPECT_TRUE(result.report.matchesPair(
                DetectorKind::kOrder, root.store_pc, root.load_pc))
                << name << ": order detector must flag the root";
            break;
        default:
            EXPECT_TRUE(result.report.empty())
                << name << ": sequential bug must stay clean";
            break;
        }
        if (workload->concurrent()) {
            EXPECT_TRUE(result.report.matchesPairAny(root.store_pc,
                                                     root.load_pc))
                << name << ": no detector flags the root";
        }
    }
}

} // namespace
} // namespace act
