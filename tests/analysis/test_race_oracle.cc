/**
 * @file
 * Tests for the vector-clock happens-before race oracle: hand-built
 * traces with known orderings, plus agreement with the bug catalog
 * over every real-bug workload's failing execution.
 */

#include <gtest/gtest.h>

#include <functional>

#include "analysis/race_oracle.hh"
#include "workloads/bugs.hh"
#include "workloads/workload.hh"

namespace act
{
namespace
{

constexpr Addr kLockAddr = 0x1000;
constexpr Addr kData = 0x2000;

TraceEvent
makeEvent(EventKind kind, ThreadId tid, Pc pc, Addr addr)
{
    TraceEvent e;
    e.kind = kind;
    e.tid = tid;
    e.pc = pc;
    e.addr = addr;
    return e;
}

/** t0 creates t1; then the callback emits the body; both exit. */
Trace
twoThreadTrace(const std::function<void(Trace &)> &body)
{
    Trace t;
    t.append(makeEvent(EventKind::kThreadCreate, 0, 1, 1));
    body(t);
    t.append(makeEvent(EventKind::kThreadExit, 1, 2, 0));
    t.append(makeEvent(EventKind::kThreadExit, 0, 3, 0));
    return t;
}

TEST(RaceOracle, UnsynchronisedConflictIsRacy)
{
    const Trace t = twoThreadTrace([](Trace &trace) {
        trace.append(makeEvent(EventKind::kStore, 0, 0x10, kData));
        trace.append(makeEvent(EventKind::kLoad, 1, 0x20, kData));
    });
    const RaceReport report = detectRaces(t);
    ASSERT_EQ(report.races().size(), 1u);
    EXPECT_EQ(report.races()[0].kind, RaceKind::kWriteRead);
    EXPECT_TRUE(report.isRacyPair(0x10, 0x20));
    EXPECT_FALSE(report.isRacyPair(0x20, 0x10));
}

TEST(RaceOracle, LockOrderedConflictIsNotRacy)
{
    const Trace t = twoThreadTrace([](Trace &trace) {
        trace.append(makeEvent(EventKind::kLock, 0, 4, kLockAddr));
        trace.append(makeEvent(EventKind::kStore, 0, 0x10, kData));
        trace.append(makeEvent(EventKind::kUnlock, 0, 5, kLockAddr));
        trace.append(makeEvent(EventKind::kLock, 1, 6, kLockAddr));
        trace.append(makeEvent(EventKind::kLoad, 1, 0x20, kData));
        trace.append(makeEvent(EventKind::kUnlock, 1, 7, kLockAddr));
    });
    const RaceReport report = detectRaces(t);
    EXPECT_TRUE(report.empty());
    EXPECT_GT(report.checked_pairs, 0u);
}

TEST(RaceOracle, DifferentLocksDoNotOrder)
{
    const Trace t = twoThreadTrace([](Trace &trace) {
        trace.append(makeEvent(EventKind::kLock, 0, 4, kLockAddr));
        trace.append(makeEvent(EventKind::kStore, 0, 0x10, kData));
        trace.append(makeEvent(EventKind::kUnlock, 0, 5, kLockAddr));
        trace.append(makeEvent(EventKind::kLock, 1, 6, kLockAddr + 1));
        trace.append(makeEvent(EventKind::kLoad, 1, 0x20, kData));
        trace.append(makeEvent(EventKind::kUnlock, 1, 7, kLockAddr + 1));
    });
    EXPECT_FALSE(detectRaces(t).empty());
}

TEST(RaceOracle, CreateEdgeOrdersPreSpawnWrites)
{
    // Parent writes before the spawn: ordered. After: racy.
    Trace t;
    t.append(makeEvent(EventKind::kStore, 0, 0x10, kData));
    t.append(makeEvent(EventKind::kThreadCreate, 0, 1, 1));
    t.append(makeEvent(EventKind::kLoad, 1, 0x20, kData));
    EXPECT_TRUE(detectRaces(t).empty());

    Trace racy;
    racy.append(makeEvent(EventKind::kThreadCreate, 0, 1, 1));
    racy.append(makeEvent(EventKind::kStore, 0, 0x10, kData));
    racy.append(makeEvent(EventKind::kLoad, 1, 0x20, kData));
    EXPECT_FALSE(detectRaces(racy).empty());
}

TEST(RaceOracle, SameThreadConflictNeverRaces)
{
    Trace t;
    t.append(makeEvent(EventKind::kStore, 0, 0x10, kData));
    t.append(makeEvent(EventKind::kLoad, 0, 0x20, kData));
    t.append(makeEvent(EventKind::kStore, 0, 0x11, kData));
    EXPECT_TRUE(detectRaces(t).empty());
}

TEST(RaceOracle, StackAccessesAreSkipped)
{
    Trace t = twoThreadTrace([](Trace &trace) {
        TraceEvent store = makeEvent(EventKind::kStore, 0, 0x10, kData);
        store.stack = true;
        trace.append(store);
        TraceEvent load = makeEvent(EventKind::kLoad, 1, 0x20, kData);
        load.stack = true;
        trace.append(load);
    });
    EXPECT_TRUE(detectRaces(t).empty());
}

TEST(RaceOracle, WriteWriteAndReadWriteDirections)
{
    const Trace t = twoThreadTrace([](Trace &trace) {
        trace.append(makeEvent(EventKind::kStore, 0, 0x10, kData));
        trace.append(makeEvent(EventKind::kStore, 1, 0x20, kData));
    });
    const RaceReport ww = detectRaces(t);
    ASSERT_EQ(ww.races().size(), 1u);
    EXPECT_EQ(ww.races()[0].kind, RaceKind::kWriteWrite);

    const Trace t2 = twoThreadTrace([](Trace &trace) {
        trace.append(makeEvent(EventKind::kStore, 0, 0x10, kData));
        trace.append(makeEvent(EventKind::kLoad, 0, 0x15, kData));
        trace.append(makeEvent(EventKind::kStore, 1, 0x20, kData));
    });
    const RaceReport rw = detectRaces(t2);
    // Write-write 0x10->0x20 plus read-write 0x15->0x20.
    ASSERT_EQ(rw.races().size(), 2u);
    EXPECT_EQ(rw.rawRaces().size(), 0u); // Neither is store->load.
}

TEST(RaceOracle, DynamicInstancesDeduplicateIntoCounts)
{
    const Trace t = twoThreadTrace([](Trace &trace) {
        for (int i = 0; i < 5; ++i) {
            trace.append(makeEvent(EventKind::kStore, 0, 0x10, kData));
            trace.append(makeEvent(EventKind::kLoad, 1, 0x20, kData));
        }
    });
    const RaceReport report = detectRaces(t);
    // Two static pairs: store->load (5 instances) and the next
    // iteration's store racing the previous load (4 instances).
    ASSERT_EQ(report.races().size(), 2u);
    const std::vector<Race> raw = report.rawRaces();
    ASSERT_EQ(raw.size(), 1u);
    EXPECT_EQ(raw[0].prior_pc, 0x10u);
    EXPECT_EQ(raw[0].later_pc, 0x20u);
    EXPECT_EQ(raw[0].count, 5u);
    EXPECT_EQ(report.racy_instances, 9u);
}

TEST(RaceOracle, ScorePrecisionRecall)
{
    const Trace t = twoThreadTrace([](Trace &trace) {
        trace.append(makeEvent(EventKind::kStore, 0, 0x10, kData));
        trace.append(makeEvent(EventKind::kLoad, 1, 0x20, kData));
        trace.append(makeEvent(EventKind::kStore, 0, 0x30, kData + 8));
        trace.append(makeEvent(EventKind::kLoad, 1, 0x40, kData + 8));
    });
    const RaceReport report = detectRaces(t);
    ASSERT_EQ(report.races().size(), 2u);

    RawDependence hit;
    hit.store_pc = 0x10;
    hit.load_pc = 0x20;
    hit.inter_thread = true;
    RawDependence miss;
    miss.store_pc = 0x50;
    miss.load_pc = 0x60;
    miss.inter_thread = true;
    RawDependence local; // Intra-thread: never scored.
    local.store_pc = 0x10;
    local.load_pc = 0x20;
    local.inter_thread = false;

    const OracleScore score = report.score({hit, miss, local, hit});
    EXPECT_EQ(score.considered, 2u); // Duplicate + intra dropped.
    EXPECT_EQ(score.true_positives, 1u);
    EXPECT_EQ(score.false_positives, 1u);
    EXPECT_EQ(score.false_negatives, 1u); // 0x30->0x40 unpredicted.
    EXPECT_DOUBLE_EQ(score.precision(), 0.5);
    EXPECT_DOUBLE_EQ(score.recall(), 0.5);
}

TEST(RaceOracle, ScoreEmptyPredictionsAreVacuouslyPrecise)
{
    const Trace t = twoThreadTrace([](Trace &trace) {
        trace.append(makeEvent(EventKind::kStore, 0, 0x10, kData));
        trace.append(makeEvent(EventKind::kLoad, 1, 0x20, kData));
    });
    const OracleScore score = detectRaces(t).score({});
    EXPECT_EQ(score.considered, 0u);
    EXPECT_EQ(score.false_negatives, 1u);
    // Nothing predicted, so nothing predicted wrongly: precision is
    // vacuously perfect while recall reports the miss.
    EXPECT_DOUBLE_EQ(score.precision(), 1.0);
    EXPECT_DOUBLE_EQ(score.recall(), 0.0);
}

TEST(RaceOracle, ScoreEmptyGroundTruthHasVacuousRecall)
{
    // A race-free trace: the conflicting pair is lock-ordered.
    const Trace t = twoThreadTrace([](Trace &trace) {
        trace.append(makeEvent(EventKind::kLock, 0, 1, kLockAddr));
        trace.append(makeEvent(EventKind::kStore, 0, 0x10, kData));
        trace.append(makeEvent(EventKind::kUnlock, 0, 2, kLockAddr));
        trace.append(makeEvent(EventKind::kLock, 1, 3, kLockAddr));
        trace.append(makeEvent(EventKind::kLoad, 1, 0x20, kData));
        trace.append(makeEvent(EventKind::kUnlock, 1, 4, kLockAddr));
    });
    const RaceReport report = detectRaces(t);
    ASSERT_TRUE(report.empty());

    RawDependence predicted;
    predicted.store_pc = 0x10;
    predicted.load_pc = 0x20;
    predicted.inter_thread = true;
    const OracleScore wrong = report.score({predicted});
    EXPECT_EQ(wrong.true_positives, 0u);
    EXPECT_EQ(wrong.false_positives, 1u);
    EXPECT_DOUBLE_EQ(wrong.precision(), 0.0);
    EXPECT_DOUBLE_EQ(wrong.recall(), 1.0); // Nothing there to miss.

    // Both sides empty: both metrics vacuously perfect.
    const OracleScore nothing = report.score({});
    EXPECT_DOUBLE_EQ(nothing.precision(), 1.0);
    EXPECT_DOUBLE_EQ(nothing.recall(), 1.0);
}

TEST(RaceOracle, ScoreDeduplicatesPredictedPairs)
{
    const Trace t = twoThreadTrace([](Trace &trace) {
        trace.append(makeEvent(EventKind::kStore, 0, 0x10, kData));
        trace.append(makeEvent(EventKind::kLoad, 1, 0x20, kData));
    });
    RawDependence hit;
    hit.store_pc = 0x10;
    hit.load_pc = 0x20;
    hit.inter_thread = true;
    const OracleScore score =
        detectRaces(t).score({hit, hit, hit, hit});
    EXPECT_EQ(score.considered, 1u);
    EXPECT_EQ(score.true_positives, 1u);
    EXPECT_DOUBLE_EQ(score.precision(), 1.0);
    EXPECT_DOUBLE_EQ(score.recall(), 1.0);
}

/**
 * Catalog agreement: every concurrency bug's root-cause dependence is
 * a happens-before race on the failing path; sequential bugs (one
 * thread) show no race anywhere.
 */
TEST(RaceOracle, AgreesWithBugCatalogOnFailingRuns)
{
    registerAllWorkloads();
    for (const std::string &name : realBugNames()) {
        const auto workload = makeWorkload(name);
        WorkloadParams params;
        params.seed = 999;
        params.trigger_failure = true;
        const RaceReport oracle =
            detectRaces(workload->record(params));
        if (workload->concurrent()) {
            EXPECT_TRUE(oracle.isRacy(workload->buggyDependence()))
                << name << ": root dependence must race";
        } else {
            EXPECT_TRUE(oracle.empty())
                << name << ": sequential bug must show no race";
        }
    }
}

/** The correct interleaving of a concurrency bug avoids the root race. */
TEST(RaceOracle, RootDependenceNotRacyOnCorrectRunOfAget)
{
    registerAllWorkloads();
    const auto workload = makeWorkload("aget");
    WorkloadParams params;
    params.seed = 1;
    const RaceReport oracle = detectRaces(workload->record(params));
    EXPECT_FALSE(oracle.isRacy(workload->buggyDependence()));
}

} // namespace
} // namespace act
