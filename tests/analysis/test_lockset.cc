/**
 * @file
 * Property tests for the Eraser-style lockset detector: the
 * Virgin -> Exclusive -> Shared -> Shared-Modified state machine,
 * candidate-lockset refinement, and the discipline-violation reports.
 */

#include <gtest/gtest.h>

#include "analysis/lockset.hh"

namespace act
{
namespace
{

constexpr Addr kLockA = 0x1000;
constexpr Addr kLockB = 0x1100;
constexpr Addr kData = 0x2000;

TraceEvent
makeEvent(EventKind kind, ThreadId tid, Pc pc, Addr addr)
{
    TraceEvent e;
    e.kind = kind;
    e.tid = tid;
    e.pc = pc;
    e.addr = addr;
    return e;
}

TEST(Lockset, StateMachineFollowsEraser)
{
    LocksetDetector detector;
    EXPECT_EQ(detector.state(kData), LocksetState::kVirgin);

    // First access: Exclusive to the owner, regardless of locks.
    detector.observe(makeEvent(EventKind::kStore, 0, 0x10, kData));
    EXPECT_EQ(detector.state(kData), LocksetState::kExclusive);

    // Owner keeps touching it: still Exclusive.
    detector.observe(makeEvent(EventKind::kLoad, 0, 0x11, kData));
    EXPECT_EQ(detector.state(kData), LocksetState::kExclusive);

    // First remote read: Shared (reporting still off).
    detector.observe(makeEvent(EventKind::kLoad, 1, 0x20, kData));
    EXPECT_EQ(detector.state(kData), LocksetState::kShared);

    // A write while shared: Shared-Modified, and with no common lock
    // the empty C(v) is a violation.
    detector.observe(makeEvent(EventKind::kStore, 1, 0x21, kData));
    EXPECT_EQ(detector.state(kData), LocksetState::kSharedModified);
    EXPECT_FALSE(detector.report().empty());
}

TEST(Lockset, ConsistentLockingProducesNoFindings)
{
    LocksetDetector detector;
    for (ThreadId tid = 0; tid < 3; ++tid) {
        detector.observe(makeEvent(EventKind::kLock, tid, 1, kLockA));
        detector.observe(
            makeEvent(EventKind::kStore, tid, 0x10 + tid, kData));
        detector.observe(
            makeEvent(EventKind::kLoad, tid, 0x20 + tid, kData));
        detector.observe(makeEvent(EventKind::kUnlock, tid, 2, kLockA));
    }
    EXPECT_TRUE(detector.report().empty());
    EXPECT_EQ(detector.state(kData), LocksetState::kSharedModified);
    EXPECT_EQ(detector.candidateLocks(kData),
              std::vector<Addr>{kLockA});
}

TEST(Lockset, RefinementIntersectsHeldLocks)
{
    LocksetDetector detector;
    // t0 writes under A+B; t1 writes under B only: C(v) = {B}.
    detector.observe(makeEvent(EventKind::kLock, 0, 1, kLockA));
    detector.observe(makeEvent(EventKind::kLock, 0, 2, kLockB));
    detector.observe(makeEvent(EventKind::kStore, 0, 0x10, kData));
    detector.observe(makeEvent(EventKind::kUnlock, 0, 3, kLockB));
    detector.observe(makeEvent(EventKind::kUnlock, 0, 4, kLockA));
    detector.observe(makeEvent(EventKind::kLock, 1, 5, kLockB));
    detector.observe(makeEvent(EventKind::kStore, 1, 0x20, kData));
    detector.observe(makeEvent(EventKind::kUnlock, 1, 6, kLockB));
    EXPECT_TRUE(detector.report().empty());
    EXPECT_EQ(detector.candidateLocks(kData),
              std::vector<Addr>{kLockB});
}

TEST(Lockset, UnlockedInitialisationByOwnerIsForgiven)
{
    LocksetDetector detector;
    // Owner initialises without locks (the Eraser allowance) ...
    detector.observe(makeEvent(EventKind::kStore, 0, 0x10, kData));
    detector.observe(makeEvent(EventKind::kStore, 0, 0x11, kData));
    // ... and all post-publication accesses hold the lock.
    detector.observe(makeEvent(EventKind::kLock, 1, 1, kLockA));
    detector.observe(makeEvent(EventKind::kStore, 1, 0x20, kData));
    detector.observe(makeEvent(EventKind::kUnlock, 1, 2, kLockA));
    detector.observe(makeEvent(EventKind::kLock, 0, 3, kLockA));
    detector.observe(makeEvent(EventKind::kLoad, 0, 0x12, kData));
    detector.observe(makeEvent(EventKind::kUnlock, 0, 4, kLockA));
    EXPECT_TRUE(detector.report().empty());
}

TEST(Lockset, EmptyInterSectionReportsPairWithLastWriter)
{
    LocksetDetector detector;
    detector.observe(makeEvent(EventKind::kLock, 0, 1, kLockA));
    detector.observe(makeEvent(EventKind::kStore, 0, 0x10, kData));
    detector.observe(makeEvent(EventKind::kUnlock, 0, 2, kLockA));
    // Remote write under a *different* lock: refinement starts here
    // (forgiving the init phase), so C(v) = {B} and nothing reports.
    detector.observe(makeEvent(EventKind::kLock, 1, 3, kLockB));
    detector.observe(makeEvent(EventKind::kStore, 1, 0x20, kData));
    detector.observe(makeEvent(EventKind::kUnlock, 1, 4, kLockB));
    EXPECT_TRUE(detector.report().empty());
    // t0 returns under A: C(v) = {B} intersect {A} = empty. The finding
    // pairs the last writer with the offending access.
    detector.observe(makeEvent(EventKind::kLock, 0, 5, kLockA));
    detector.observe(makeEvent(EventKind::kStore, 0, 0x12, kData));
    detector.observe(makeEvent(EventKind::kUnlock, 0, 6, kLockA));

    const AnalysisReport &report = detector.report();
    ASSERT_EQ(report.size(), 1u);
    const AnalysisFinding &finding = report.findings()[0];
    EXPECT_EQ(finding.detector, DetectorKind::kLockset);
    EXPECT_EQ(finding.code, "unlocked-shared-write");
    EXPECT_TRUE(finding.coversPair(0x20, 0x12));
    EXPECT_EQ(finding.addr, kData);
    EXPECT_FALSE(finding.witness_seqs.empty());
    EXPECT_TRUE(report.matchesPair(DetectorKind::kLockset, 0x20, 0x12));
}

TEST(Lockset, RepeatedViolationDedupsIntoCount)
{
    LocksetDetector detector;
    detector.observe(makeEvent(EventKind::kStore, 0, 0x10, kData));
    detector.observe(makeEvent(EventKind::kLoad, 1, 0x20, kData));
    for (int i = 0; i < 4; ++i)
        detector.observe(makeEvent(EventKind::kStore, 1, 0x21, kData));
    // One static defect (0x10 -> 0x21 write) plus the repeated
    // same-PC writes folding into its count, not new findings.
    for (const AnalysisFinding &finding : detector.report().findings())
        EXPECT_GE(finding.count, 1u);
    const std::size_t statics = detector.report().size();
    detector.observe(makeEvent(EventKind::kStore, 1, 0x21, kData));
    EXPECT_EQ(detector.report().size(), statics);
}

TEST(Lockset, HeldLockTrackingIsBalanced)
{
    LocksetDetector detector;
    detector.observe(makeEvent(EventKind::kLock, 0, 1, kLockA));
    detector.observe(makeEvent(EventKind::kLock, 0, 2, kLockB));
    EXPECT_EQ(detector.heldLocks(0),
              (std::vector<Addr>{kLockA, kLockB}));
    detector.observe(makeEvent(EventKind::kUnlock, 0, 3, kLockA));
    EXPECT_EQ(detector.heldLocks(0), std::vector<Addr>{kLockB});
    detector.observe(makeEvent(EventKind::kUnlock, 0, 4, kLockB));
    EXPECT_TRUE(detector.heldLocks(0).empty());
}

TEST(Lockset, StackAccessesAreIgnored)
{
    LocksetDetector detector;
    TraceEvent store = makeEvent(EventKind::kStore, 0, 0x10, kData);
    store.stack = true;
    detector.observe(store);
    TraceEvent load = makeEvent(EventKind::kLoad, 1, 0x20, kData);
    load.stack = true;
    detector.observe(load);
    EXPECT_EQ(detector.state(kData), LocksetState::kVirgin);
    EXPECT_TRUE(detector.report().empty());
}

TEST(Lockset, SingleThreadedStreamNeverReports)
{
    LocksetDetector detector;
    for (int i = 0; i < 100; ++i) {
        detector.observe(
            makeEvent(EventKind::kStore, 0, 0x10 + (i % 7), kData + i));
        detector.observe(
            makeEvent(EventKind::kLoad, 0, 0x40 + (i % 5), kData + i));
    }
    EXPECT_TRUE(detector.report().empty());
}

} // namespace
} // namespace act
