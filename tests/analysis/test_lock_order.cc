/**
 * @file
 * Property tests for the lock-order-graph deadlock detector: edge
 * accumulation, cycle extraction, canonical dedup and witness traces.
 */

#include <gtest/gtest.h>

#include "analysis/lock_order.hh"

namespace act
{
namespace
{

constexpr Addr kLockA = 0x1000;
constexpr Addr kLockB = 0x1100;
constexpr Addr kLockC = 0x1200;

TraceEvent
makeEvent(EventKind kind, ThreadId tid, Pc pc, Addr addr)
{
    TraceEvent e;
    e.kind = kind;
    e.tid = tid;
    e.pc = pc;
    e.addr = addr;
    return e;
}

/** tid takes the locks in order, then releases in reverse. */
void
nest(LockOrderDetector &detector, ThreadId tid, Pc pc_base,
     std::initializer_list<Addr> locks)
{
    Pc pc = pc_base;
    for (const Addr lock : locks)
        detector.observe(makeEvent(EventKind::kLock, tid, pc++, lock));
    std::vector<Addr> order(locks);
    for (auto it = order.rbegin(); it != order.rend(); ++it)
        detector.observe(makeEvent(EventKind::kUnlock, tid, pc++, *it));
}

TEST(LockOrder, ConsistentOrderHasNoCycle)
{
    LockOrderDetector detector;
    nest(detector, 0, 0x10, {kLockA, kLockB});
    nest(detector, 1, 0x20, {kLockA, kLockB});
    EXPECT_TRUE(detector.finish().empty());
    // But the A->B edge is recorded, twice.
    const auto edges = detector.edges();
    ASSERT_EQ(edges.size(), 1u);
    EXPECT_EQ(edges[0].held, kLockA);
    EXPECT_EQ(edges[0].acquired, kLockB);
    EXPECT_EQ(edges[0].count, 2u);
}

TEST(LockOrder, OpposingOrdersFormACycleWithWitness)
{
    LockOrderDetector detector;
    nest(detector, 0, 0x10, {kLockA, kLockB});
    nest(detector, 1, 0x20, {kLockB, kLockA});

    const AnalysisReport report = detector.finish();
    ASSERT_EQ(report.size(), 1u);
    const AnalysisFinding &finding = report.findings()[0];
    EXPECT_EQ(finding.detector, DetectorKind::kLockOrder);
    EXPECT_EQ(finding.code, "lock-cycle");
    // The witness PCs are the acquire sites around the cycle.
    EXPECT_TRUE(finding.coversPair(0x11, 0x21));
    ASSERT_EQ(finding.pcs.size(), finding.witness_seqs.size());
    ASSERT_EQ(finding.pcs.size(), finding.witness_tids.size());
    EXPECT_NE(finding.message.find("lock-order cycle"),
              std::string::npos);
}

TEST(LockOrder, CycleReportedOnceRegardlessOfDiscoveryOrder)
{
    // The same A<->B inversion observed many times and entered from
    // both nodes dedups to one canonical cycle.
    LockOrderDetector detector;
    for (int i = 0; i < 5; ++i) {
        nest(detector, 0, 0x10, {kLockA, kLockB});
        nest(detector, 1, 0x20, {kLockB, kLockA});
    }
    const AnalysisReport report = detector.finish();
    EXPECT_EQ(report.size(), 1u);
    EXPECT_EQ(report.findings()[0].count, 5u);
}

TEST(LockOrder, ThreeLockRotationIsOneCycle)
{
    LockOrderDetector detector;
    nest(detector, 0, 0x10, {kLockA, kLockB});
    nest(detector, 1, 0x20, {kLockB, kLockC});
    nest(detector, 2, 0x30, {kLockC, kLockA});
    const AnalysisReport report = detector.finish();
    ASSERT_EQ(report.size(), 1u);
    EXPECT_EQ(report.findings()[0].pcs.size(), 3u);
}

TEST(LockOrder, FinishIsIdempotentAndDeterministic)
{
    LockOrderDetector detector;
    nest(detector, 0, 0x10, {kLockA, kLockB});
    nest(detector, 1, 0x20, {kLockB, kLockA});
    const std::string first = detector.finish().toText();
    const std::string second = detector.finish().toText();
    EXPECT_EQ(first, second);
    EXPECT_FALSE(first.empty());
}

TEST(LockOrder, SelfRelockAddsNoEdge)
{
    LockOrderDetector detector;
    detector.observe(makeEvent(EventKind::kLock, 0, 1, kLockA));
    detector.observe(makeEvent(EventKind::kLock, 0, 2, kLockA));
    EXPECT_TRUE(detector.edges().empty());
    EXPECT_TRUE(detector.finish().empty());
}

TEST(LockOrder, DisjointNestingsNeverCycle)
{
    LockOrderDetector detector;
    nest(detector, 0, 0x10, {kLockA, kLockB});
    nest(detector, 1, 0x20, {kLockB, kLockC});
    nest(detector, 2, 0x30, {kLockA, kLockC});
    EXPECT_TRUE(detector.finish().empty());
    EXPECT_EQ(detector.edges().size(), 3u);
}

TEST(LockOrder, WholeTraceHelperMatchesIncremental)
{
    Trace trace;
    trace.append(makeEvent(EventKind::kLock, 0, 0x10, kLockA));
    trace.append(makeEvent(EventKind::kLock, 0, 0x11, kLockB));
    trace.append(makeEvent(EventKind::kUnlock, 0, 0x12, kLockB));
    trace.append(makeEvent(EventKind::kUnlock, 0, 0x13, kLockA));
    trace.append(makeEvent(EventKind::kLock, 1, 0x20, kLockB));
    trace.append(makeEvent(EventKind::kLock, 1, 0x21, kLockA));
    trace.append(makeEvent(EventKind::kUnlock, 1, 0x22, kLockA));
    trace.append(makeEvent(EventKind::kUnlock, 1, 0x23, kLockB));

    LockOrderDetector incremental;
    for (const TraceEvent &event : trace.events())
        incremental.observe(event);
    EXPECT_EQ(detectLockOrderCycles(trace).toText(),
              incremental.finish().toText());
}

} // namespace
} // namespace act
