/**
 * @file
 * Tests for the static config/weight validators.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "act/weight_store.hh"
#include "analysis/config_check.hh"

namespace act
{
namespace
{

bool
hasCode(const std::vector<Finding> &findings, const std::string &code)
{
    return std::any_of(findings.begin(), findings.end(),
                       [&code](const Finding &finding) {
                           return finding.code == code;
                       });
}

/** Width 2 matches the PairEncoder the default config is sized for. */
constexpr std::size_t kPairWidth = 2;

TEST(ConfigCheck, DefaultConfigIsClean)
{
    EXPECT_TRUE(validateActConfig(ActConfig{}, kPairWidth).empty());
}

TEST(ConfigCheck, TopologyMismatchIsFlagged)
{
    ActConfig config;
    config.sequence_length = 4; // 4 x 2 = 8 != 6 inputs.
    const auto findings = validateActConfig(config, kPairWidth);
    EXPECT_TRUE(hasCode(findings, "topology-mismatch"));
}

TEST(ConfigCheck, EncoderWidthChangesTheRequiredInputs)
{
    ActConfig config; // 6 inputs, N = 3.
    EXPECT_TRUE(hasCode(validateActConfig(config, 1),
                        "topology-mismatch")); // Needs 3.
    config.topology.inputs = 3;
    EXPECT_TRUE(validateActConfig(config, 1).empty());
}

TEST(ConfigCheck, InvalidTopologyIsFlagged)
{
    ActConfig config;
    config.topology = Topology{0, 10};
    EXPECT_TRUE(hasCode(validateActConfig(config, kPairWidth),
                        "topology"));
    config.topology = Topology{6, kMaxFanIn + 1};
    EXPECT_TRUE(hasCode(validateActConfig(config, kPairWidth),
                        "topology"));
}

TEST(ConfigCheck, BufferAndRateKnobsAreRangeChecked)
{
    ActConfig config;
    config.input_buffer_entries = 2; // Below sequence_length = 3.
    EXPECT_TRUE(hasCode(validateActConfig(config, kPairWidth),
                        "input-buffer"));

    config = ActConfig{};
    config.debug_buffer_entries = 0;
    EXPECT_TRUE(hasCode(validateActConfig(config, kPairWidth),
                        "debug-buffer"));

    config = ActConfig{};
    config.misprediction_threshold = 1.5;
    EXPECT_TRUE(hasCode(validateActConfig(config, kPairWidth),
                        "threshold"));

    config = ActConfig{};
    config.interval_length = 0;
    EXPECT_TRUE(hasCode(validateActConfig(config, kPairWidth),
                        "interval"));

    config = ActConfig{};
    config.learning_rate = 0.0;
    EXPECT_TRUE(hasCode(validateActConfig(config, kPairWidth),
                        "learning-rate"));

    config = ActConfig{};
    config.hw.fifo_entries = 0;
    EXPECT_TRUE(hasCode(validateActConfig(config, kPairWidth), "fifo"));
}

TEST(ConfigCheck, HardwareFanInIsChecked)
{
    ActConfig config;
    config.hw.neuron.max_inputs = 4; // Topology 6x10 no longer fits.
    const auto findings = validateActConfig(config, kPairWidth);
    EXPECT_TRUE(hasCode(findings, "fan-in"));
}

TEST(ConfigCheck, EveryViolationIsReportedNotJustTheFirst)
{
    ActConfig config;
    config.sequence_length = 0;
    config.debug_buffer_entries = 0;
    config.learning_rate = -1.0;
    const auto findings = validateActConfig(config, kPairWidth);
    EXPECT_TRUE(hasCode(findings, "sequence-length"));
    EXPECT_TRUE(hasCode(findings, "debug-buffer"));
    EXPECT_TRUE(hasCode(findings, "learning-rate"));
    EXPECT_GE(errorCount(findings), 3u);
}

TEST(ConfigCheck, WeightCountMismatchIsFlagged)
{
    const Topology topology{6, 10};
    const std::vector<double> wrong(10, 0.0);
    EXPECT_TRUE(hasCode(validateWeights(topology, wrong),
                        "weight-count"));

    // 10 * 7 + 11 = 81 weights for 6x10.
    const std::vector<double> right(81, 0.25);
    EXPECT_TRUE(validateWeights(topology, right).empty());
}

TEST(ConfigCheck, OutOfRangeWeightValuesAreFlagged)
{
    const Topology topology{6, 10};
    std::vector<double> weights(81, 0.0);
    weights[3] = kHwWeightLimit * 2.0; // Saturates in Q15.16.
    EXPECT_TRUE(hasCode(validateWeights(topology, weights),
                        "weight-value"));

    weights[3] = std::nan("");
    EXPECT_TRUE(hasCode(validateWeights(topology, weights),
                        "weight-value"));

    weights[3] = -kHwWeightLimit * 0.5; // Representable.
    EXPECT_TRUE(validateWeights(topology, weights).empty());
}

TEST(ConfigCheck, WeightStoreValidationCoversEveryThread)
{
    WeightStore store((Topology{6, 10}));
    std::vector<double> good(store.weightCount(), 0.5);
    store.set(0, good);
    std::vector<double> bad = good;
    bad[7] = kHwWeightLimit * 4.0;
    store.set(3, bad);

    const auto findings = validateWeightStore(store);
    EXPECT_TRUE(hasCode(findings, "weight-value"));
    // The message names the offending thread.
    const auto offender = std::find_if(
        findings.begin(), findings.end(), [](const Finding &finding) {
            return finding.code == "weight-value";
        });
    ASSERT_NE(offender, findings.end());
    EXPECT_NE(offender->message.find("tid 3"), std::string::npos);

    store.set(3, good);
    EXPECT_TRUE(validateWeightStore(store).empty());
}

} // namespace
} // namespace act
