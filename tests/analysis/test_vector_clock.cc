/**
 * @file
 * Tests for the vector-clock primitive behind the race oracle.
 */

#include <gtest/gtest.h>

#include "analysis/vector_clock.hh"

namespace act
{
namespace
{

TEST(VectorClock, DefaultsToZero)
{
    const VectorClock clock;
    EXPECT_EQ(clock.get(0), 0u);
    EXPECT_EQ(clock.get(100), 0u);
}

TEST(VectorClock, TickIncrementsAndReturnsNewValue)
{
    VectorClock clock;
    EXPECT_EQ(clock.tick(2), 1u);
    EXPECT_EQ(clock.tick(2), 2u);
    EXPECT_EQ(clock.get(2), 2u);
    EXPECT_EQ(clock.get(0), 0u); // Other components untouched.
}

TEST(VectorClock, SetGrowsAndOverwrites)
{
    VectorClock clock;
    clock.set(5, 7);
    EXPECT_EQ(clock.get(5), 7u);
    clock.set(5, 3);
    EXPECT_EQ(clock.get(5), 3u);
}

TEST(VectorClock, MergeTakesComponentwiseMax)
{
    VectorClock a;
    a.set(0, 4);
    a.set(1, 1);
    VectorClock b;
    b.set(1, 5);
    b.set(2, 2);

    a.merge(b);
    EXPECT_EQ(a.get(0), 4u);
    EXPECT_EQ(a.get(1), 5u);
    EXPECT_EQ(a.get(2), 2u);
    // Merge must not modify the source.
    EXPECT_EQ(b.get(0), 0u);
    EXPECT_EQ(b.get(1), 5u);
}

TEST(VectorClock, LeqIsThePartialOrder)
{
    VectorClock lo;
    lo.set(0, 1);
    VectorClock hi;
    hi.set(0, 2);
    hi.set(1, 1);

    EXPECT_TRUE(lo.leq(hi));
    EXPECT_FALSE(hi.leq(lo));

    // Incomparable pair: each is ahead on one component.
    VectorClock other;
    other.set(1, 9);
    EXPECT_FALSE(hi.leq(other));
    EXPECT_FALSE(other.leq(hi));

    // Reflexive; differing trailing zeros do not matter.
    EXPECT_TRUE(hi.leq(hi));
    VectorClock padded = lo;
    padded.set(7, 0);
    EXPECT_TRUE(lo.leq(padded));
    EXPECT_TRUE(padded.leq(lo));
}

TEST(VectorClock, HappensBeforeViaMergeModelsReleaseAcquire)
{
    // Thread 0 releases after two epochs; thread 1 acquires.
    VectorClock t0;
    t0.tick(0);
    t0.tick(0);
    VectorClock lock = t0; // Release publishes the clock.
    t0.tick(0);            // Post-release epoch.

    VectorClock t1;
    t1.tick(1);
    t1.merge(lock); // Acquire.
    EXPECT_GE(t1.get(0), 2u);      // Saw everything pre-release...
    EXPECT_LT(t1.get(0), t0.get(0)); // ...but not the new epoch.
}

TEST(VectorClock, ToStringRendersComponents)
{
    VectorClock clock;
    clock.set(0, 2);
    clock.set(2, 1);
    EXPECT_EQ(clock.toString(), "[2,0,1]");
    EXPECT_EQ(VectorClock{}.toString(), "[]");
}

} // namespace
} // namespace act
