/**
 * @file
 * Tests for the order-violation checker: mined communication
 * invariants, the untrained-writer rule, and the single-trace
 * use-before-init fallback.
 */

#include <gtest/gtest.h>

#include "analysis/order_check.hh"

namespace act
{
namespace
{

constexpr Addr kData = 0x2000;
constexpr Pc kGoodStore = 0x10;
constexpr Pc kBadStore = 0x30;
constexpr Pc kLoad = 0x20;

TraceEvent
makeEvent(EventKind kind, ThreadId tid, Pc pc, Addr addr)
{
    TraceEvent e;
    e.kind = kind;
    e.tid = tid;
    e.pc = pc;
    e.addr = addr;
    return e;
}

/** Inter-thread RAW: @p store_pc by t0, then @p load_pc by t1. */
Trace
rawTrace(Pc store_pc, Pc load_pc)
{
    Trace trace;
    trace.append(makeEvent(EventKind::kStore, 0, store_pc, kData));
    trace.append(makeEvent(EventKind::kLoad, 1, load_pc, kData));
    return trace;
}

TEST(OrderCheck, MinedInvariantAllowsTrainedWriters)
{
    OrderInvariants invariants;
    invariants.addPassingTrace(rawTrace(kGoodStore, kLoad));
    EXPECT_TRUE(invariants.allows(kGoodStore, kLoad));
    EXPECT_FALSE(invariants.allows(kBadStore, kLoad));
    EXPECT_TRUE(invariants.knowsLoad(kLoad));
    EXPECT_FALSE(invariants.knowsLoad(0x99));

    EXPECT_TRUE(checkOrderViolations(rawTrace(kGoodStore, kLoad),
                                     &invariants)
                    .empty());
}

TEST(OrderCheck, UntrainedWriterIsAnOrderViolation)
{
    OrderInvariants invariants;
    invariants.addPassingTrace(rawTrace(kGoodStore, kLoad));

    const AnalysisReport report =
        checkOrderViolations(rawTrace(kBadStore, kLoad), &invariants);
    ASSERT_EQ(report.size(), 1u);
    const AnalysisFinding &finding = report.findings()[0];
    EXPECT_EQ(finding.detector, DetectorKind::kOrder);
    EXPECT_EQ(finding.code, "untrained-writer");
    EXPECT_EQ(finding.pcs, (std::vector<Pc>{kBadStore, kLoad}));
    EXPECT_TRUE(report.matchesPair(DetectorKind::kOrder, kBadStore,
                                   kLoad));
}

TEST(OrderCheck, LoadNeverTrainedGetsItsOwnCode)
{
    OrderInvariants invariants;
    invariants.addPassingTrace(rawTrace(kGoodStore, kLoad));

    // A load PC the passing runs never saw communicate at all.
    const AnalysisReport report =
        checkOrderViolations(rawTrace(kBadStore, 0x44), &invariants);
    ASSERT_EQ(report.size(), 1u);
    EXPECT_EQ(report.findings()[0].code, "untrained-communication");
}

TEST(OrderCheck, IntraThreadDependencesNeverTripMinedMode)
{
    OrderInvariants invariants;
    invariants.addPassingTrace(rawTrace(kGoodStore, kLoad));

    Trace local;
    local.append(makeEvent(EventKind::kStore, 0, kBadStore, kData));
    local.append(makeEvent(EventKind::kLoad, 0, kLoad, kData));
    EXPECT_TRUE(checkOrderViolations(local, &invariants).empty());
}

TEST(OrderCheck, SingleTraceModeFlagsUseBeforeInit)
{
    // t1 reads kData before t0's (only) write of it: the read consumed
    // an uninitialised value another thread was responsible for.
    Trace trace;
    trace.append(makeEvent(EventKind::kLoad, 1, kLoad, kData));
    trace.append(makeEvent(EventKind::kStore, 0, kGoodStore, kData));
    const AnalysisReport report = checkOrderViolations(trace);
    ASSERT_EQ(report.size(), 1u);
    const AnalysisFinding &finding = report.findings()[0];
    EXPECT_EQ(finding.code, "use-before-init");
    EXPECT_TRUE(finding.coversPair(kGoodStore, kLoad));
}

TEST(OrderCheck, SingleTraceModeAcceptsWriteThenRead)
{
    Trace trace;
    trace.append(makeEvent(EventKind::kStore, 0, kGoodStore, kData));
    trace.append(makeEvent(EventKind::kLoad, 1, kLoad, kData));
    EXPECT_TRUE(checkOrderViolations(trace).empty());
}

TEST(OrderCheck, SingleTraceModeIgnoresOwnThreadInit)
{
    // The eventual writer is the reading thread itself: a sequential
    // read-before-write pattern, not a concurrency order violation.
    Trace trace;
    trace.append(makeEvent(EventKind::kLoad, 0, kLoad, kData));
    trace.append(makeEvent(EventKind::kStore, 0, kGoodStore, kData));
    EXPECT_TRUE(checkOrderViolations(trace).empty());
}

TEST(OrderCheck, LoadsOfNeverWrittenAddressesAreClean)
{
    Trace trace;
    trace.append(makeEvent(EventKind::kLoad, 0, kLoad, kData));
    trace.append(makeEvent(EventKind::kLoad, 1, 0x21, kData + 8));
    EXPECT_TRUE(checkOrderViolations(trace).empty());
}

TEST(OrderCheck, SingleThreadedTraceIsAlwaysClean)
{
    Trace trace;
    for (int i = 0; i < 50; ++i) {
        trace.append(
            makeEvent(EventKind::kLoad, 0, 0x20 + (i % 3), kData + i));
        trace.append(
            makeEvent(EventKind::kStore, 0, 0x10 + (i % 3), kData + i));
    }
    EXPECT_TRUE(checkOrderViolations(trace).empty());

    OrderInvariants empty_invariants;
    EXPECT_TRUE(checkOrderViolations(trace, &empty_invariants).empty());
}

} // namespace
} // namespace act
