/**
 * @file
 * Tests for the trace well-formedness linter: every rule fires on a
 * hand-broken trace and stays silent on every workload model's output,
 * including crash traces that end mid-flight.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <span>

#include "analysis/trace_lint.hh"
#include "workloads/bugs.hh"
#include "workloads/workload.hh"

namespace act
{
namespace
{

TraceEvent
makeEvent(EventKind kind, ThreadId tid, Pc pc, Addr addr)
{
    TraceEvent e;
    e.kind = kind;
    e.tid = tid;
    e.pc = pc;
    e.addr = addr;
    return e;
}

bool
hasCode(const std::vector<Finding> &findings, const std::string &code)
{
    return std::any_of(findings.begin(), findings.end(),
                       [&code](const Finding &finding) {
                           return finding.code == code;
                       });
}

TEST(TraceLint, EmptyTraceIsClean)
{
    EXPECT_TRUE(lintTrace(Trace{}).empty());
}

TEST(TraceLint, WellFormedTwoThreadTraceIsClean)
{
    Trace t;
    t.append(makeEvent(EventKind::kThreadCreate, 0, 1, 1));
    t.append(makeEvent(EventKind::kLock, 1, 2, 0x100));
    t.append(makeEvent(EventKind::kStore, 1, 3, 0x200));
    t.append(makeEvent(EventKind::kUnlock, 1, 4, 0x100));
    t.append(makeEvent(EventKind::kThreadExit, 1, 5, 0));
    t.append(makeEvent(EventKind::kThreadExit, 0, 6, 0));
    EXPECT_TRUE(lintTrace(t).empty());
}

TEST(TraceLint, CrashTraceWithHeldLocksAndNoExitsIsClean)
{
    // A failing run may end abruptly: locks held, no exit markers.
    Trace t;
    t.append(makeEvent(EventKind::kThreadCreate, 0, 1, 1));
    t.append(makeEvent(EventKind::kLock, 1, 2, 0x100));
    t.append(makeEvent(EventKind::kStore, 1, 3, 0x200));
    EXPECT_TRUE(lintTrace(t).empty());
}

TEST(TraceLint, SeqMismatchIsFlagged)
{
    Trace t;
    t.append(makeEvent(EventKind::kLoad, 0, 1, 2));
    t.append(makeEvent(EventKind::kLoad, 0, 1, 2));
    t.events()[1].seq = 7;
    EXPECT_TRUE(hasCode(lintTrace(t), "seq-monotone"));
}

TEST(TraceLint, OutOfRangeKindIsFlagged)
{
    Trace t;
    t.append(makeEvent(EventKind::kLoad, 0, 1, 2));
    t.events()[0].kind = static_cast<EventKind>(200);
    EXPECT_TRUE(hasCode(lintTrace(t), "kind-range"));
}

TEST(TraceLint, BadAccessSizeIsFlagged)
{
    Trace t;
    t.append(makeEvent(EventKind::kLoad, 0, 1, 2));
    t.events()[0].size = 3; // Not a power of two.
    EXPECT_TRUE(hasCode(lintTrace(t), "size-range"));

    Trace big;
    big.append(makeEvent(EventKind::kStore, 0, 1, 2));
    big.events()[0].size = 128; // Beyond any real access.
    EXPECT_TRUE(hasCode(lintTrace(big), "size-range"));
}

TEST(TraceLint, MisplacedFlagsAreFlagged)
{
    Trace taken;
    taken.append(makeEvent(EventKind::kLoad, 0, 1, 2));
    taken.events()[0].taken = true;
    EXPECT_TRUE(hasCode(lintTrace(taken), "flag-taken"));

    Trace stack;
    stack.append(makeEvent(EventKind::kBranch, 0, 1, 0));
    stack.events()[0].stack = true;
    EXPECT_TRUE(hasCode(lintTrace(stack), "flag-stack"));
}

TEST(TraceLint, LockImbalanceIsFlagged)
{
    Trace unheld;
    unheld.append(makeEvent(EventKind::kUnlock, 0, 1, 0x100));
    EXPECT_TRUE(hasCode(lintTrace(unheld), "lock-balance"));

    Trace twice;
    twice.append(makeEvent(EventKind::kLock, 0, 1, 0x100));
    twice.append(makeEvent(EventKind::kLock, 0, 2, 0x100));
    EXPECT_TRUE(hasCode(lintTrace(twice), "lock-balance"));
}

TEST(TraceLint, ExitHoldingLockIsFlagged)
{
    Trace t;
    t.append(makeEvent(EventKind::kLock, 0, 1, 0x100));
    t.append(makeEvent(EventKind::kThreadExit, 0, 2, 0));
    EXPECT_TRUE(hasCode(lintTrace(t), "exit-holding-lock"));
}

TEST(TraceLint, EventAfterExitIsFlagged)
{
    Trace t;
    t.append(makeEvent(EventKind::kThreadExit, 0, 1, 0));
    t.append(makeEvent(EventKind::kLoad, 0, 2, 3));
    EXPECT_TRUE(hasCode(lintTrace(t), "event-after-exit"));
}

TEST(TraceLint, UncreatedThreadIsFlagged)
{
    // Thread 5 runs, but only thread 1 was ever created. Thread 0 is
    // the root (first event) and needs no create.
    Trace t;
    t.append(makeEvent(EventKind::kThreadCreate, 0, 1, 1));
    t.append(makeEvent(EventKind::kLoad, 5, 2, 3));
    EXPECT_TRUE(hasCode(lintTrace(t), "create-before-run"));
}

TEST(TraceLint, InvalidCreatesAreFlagged)
{
    Trace self;
    self.append(makeEvent(EventKind::kThreadCreate, 0, 1, 0));
    EXPECT_TRUE(hasCode(lintTrace(self), "create-invalid"));

    Trace dup;
    dup.append(makeEvent(EventKind::kThreadCreate, 0, 1, 1));
    dup.append(makeEvent(EventKind::kThreadCreate, 0, 2, 1));
    EXPECT_TRUE(hasCode(lintTrace(dup), "create-invalid"));
}

TEST(TraceLint, CounterMismatchIsFlagged)
{
    Trace t;
    t.append(makeEvent(EventKind::kLoad, 0, 1, 2));
    // Mutating the stream behind Trace's back desyncs the counters.
    t.events()[0].kind = EventKind::kStore;
    const auto findings = lintTrace(t);
    EXPECT_TRUE(hasCode(findings, "counter-mismatch"));
}

TEST(TraceLint, FindingCapStopsEarly)
{
    Trace t;
    for (int i = 0; i < 100; ++i)
        t.append(makeEvent(EventKind::kUnlock, 0, 1, 0x100));
    TraceLintOptions options;
    options.max_findings = 10;
    const auto findings = lintTrace(t, options);
    EXPECT_LE(findings.size(), 11u); // Cap + the stopped-early marker.
    EXPECT_TRUE(hasCode(findings, "too-many-findings"));
}

/**
 * The workload models define well-formedness: every registered
 * workload's correct and failing runs must lint clean.
 */
TEST(TraceLint, AllRegisteredWorkloadTracesAreClean)
{
    registerAllWorkloads();
    for (const std::string &name : WorkloadRegistry::instance().names()) {
        const auto workload = makeWorkload(name);
        WorkloadParams correct;
        const auto correct_findings = lintTrace(workload->record(correct));
        EXPECT_TRUE(correct_findings.empty())
            << name << " (correct):\n" << formatFindings(correct_findings);

        if (workload->failureKind() == FailureKind::kNone)
            continue;
        WorkloadParams failing;
        failing.seed = 999;
        failing.trigger_failure = true;
        const auto fail_findings = lintTrace(workload->record(failing));
        EXPECT_TRUE(fail_findings.empty())
            << name << " (failing):\n" << formatFindings(fail_findings);
    }
}

TraceEvent
batchEvent(ThreadId tid, SeqNum seq, EventKind kind = EventKind::kLoad)
{
    TraceEvent e = makeEvent(kind, tid, 0x400000, 0x1000);
    e.seq = seq;
    return e;
}

TEST(BatchLint, WellFormedBatchIsClean)
{
    const std::vector<TraceEvent> batch{
        batchEvent(0, 1), batchEvent(1, 2, EventKind::kStore),
        batchEvent(0, 3), batchEvent(1, 5)};
    EXPECT_TRUE(lintEventBatch(batch).empty());
}

TEST(BatchLint, NonMonotonePerThreadSeqIsFlagged)
{
    // Thread 0 goes 5 -> 5 (stale) and thread 1 stays monotone.
    const std::vector<TraceEvent> batch{
        batchEvent(0, 5), batchEvent(1, 3), batchEvent(0, 5),
        batchEvent(1, 4)};
    const auto findings = lintEventBatch(batch);
    EXPECT_TRUE(hasCode(findings, "seq-monotone"));
    EXPECT_EQ(findings.size(), 1u);
}

TEST(BatchLint, OutOfRangeKindIsFlagged)
{
    std::vector<TraceEvent> batch{batchEvent(0, 1)};
    batch.push_back(batchEvent(0, 2));
    batch.back().kind = static_cast<EventKind>(250);
    EXPECT_TRUE(hasCode(lintEventBatch(batch), "kind-range"));
}

TEST(BatchLint, TidRangeIsCheckedOnlyWhenBounded)
{
    const std::vector<TraceEvent> batch{batchEvent(900, 1)};
    EXPECT_TRUE(lintEventBatch(batch).empty()); // Unbounded default.

    BatchLintOptions bounded;
    bounded.max_threads = 16;
    EXPECT_TRUE(hasCode(lintEventBatch(batch, bounded), "tid-range"));
}

TEST(BatchLint, BadAccessSizeAndMisplacedFlagsAreFlagged)
{
    std::vector<TraceEvent> batch{batchEvent(0, 1)};
    batch.back().size = 3; // Not a power of two.
    batch.push_back(batchEvent(0, 2, EventKind::kLock));
    batch.back().taken = true; // Branch-only flag.
    batch.push_back(batchEvent(0, 3, EventKind::kUnlock));
    batch.back().stack = true; // Memory-only flag.
    const auto findings = lintEventBatch(batch);
    EXPECT_TRUE(hasCode(findings, "size-range"));
    EXPECT_TRUE(hasCode(findings, "flag-taken"));
    EXPECT_TRUE(hasCode(findings, "flag-stack"));
}

TEST(BatchLint, FindingCapStopsEarly)
{
    std::vector<TraceEvent> batch;
    for (SeqNum i = 0; i < 50; ++i) {
        batch.push_back(batchEvent(0, 1)); // Every event after the
                                           // first repeats seq 1.
    }
    BatchLintOptions options;
    options.max_findings = 4;
    const auto findings = lintEventBatch(batch, options);
    // Four capped errors plus the "stopped early" sentinel warning.
    ASSERT_EQ(findings.size(), 5u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(findings[i].code, "seq-monotone") << i;
    EXPECT_EQ(findings.back().code, "too-many-findings");
}

TEST(BatchLint, WorkloadTraceChunksAreClean)
{
    // The fleet service ingests workload traces in fixed-size blocks;
    // every block of every registered workload must pass.
    registerAllWorkloads();
    const auto workload = makeWorkload("lu");
    const Trace trace = workload->record(WorkloadParams{});
    const std::span<const TraceEvent> events(trace.events());
    constexpr std::size_t kBlock = 256;
    for (std::size_t offset = 0; offset < events.size();
         offset += kBlock) {
        const std::size_t count =
            std::min(kBlock, events.size() - offset);
        const auto findings =
            lintEventBatch(events.subspan(offset, count));
        ASSERT_TRUE(findings.empty())
            << "block at " << offset << ":\n" << formatFindings(findings);
    }
}

} // namespace
} // namespace act
