/**
 * @file
 * Tests for the AVIO-style atomicity-violation detector: the four
 * unserializable interleaving patterns, the serializable ones, and the
 * passing-run baseline that suppresses benign triples.
 */

#include <gtest/gtest.h>

#include "analysis/atomicity.hh"

namespace act
{
namespace
{

constexpr Addr kData = 0x2000;
constexpr Pc kP = 0x10; //!< Preceding local access.
constexpr Pc kR = 0x20; //!< Interleaved remote access.
constexpr Pc kC = 0x11; //!< Current local access.

TraceEvent
makeEvent(EventKind kind, ThreadId tid, Pc pc, Addr addr)
{
    TraceEvent e;
    e.kind = kind;
    e.tid = tid;
    e.pc = pc;
    e.addr = addr;
    return e;
}

/** Local p, remote r, local c — all on kData. */
Trace
tripleTrace(EventKind p, EventKind r, EventKind c)
{
    Trace trace;
    trace.append(makeEvent(p, 0, kP, kData));
    trace.append(makeEvent(r, 1, kR, kData));
    trace.append(makeEvent(c, 0, kC, kData));
    return trace;
}

struct Pattern
{
    EventKind p, r, c;
    const char *code;
    bool unserializable;
};

TEST(Atomicity, TheFourUnserializablePatternsReport)
{
    const Pattern patterns[] = {
        {EventKind::kLoad, EventKind::kStore, EventKind::kLoad,
         "R-W-R", true},
        {EventKind::kStore, EventKind::kStore, EventKind::kLoad,
         "W-W-R", true},
        {EventKind::kLoad, EventKind::kStore, EventKind::kStore,
         "R-W-W", true},
        {EventKind::kStore, EventKind::kLoad, EventKind::kStore,
         "W-R-W", true},
    };
    for (const Pattern &pattern : patterns) {
        const AnalysisReport report = detectAtomicityViolations(
            tripleTrace(pattern.p, pattern.r, pattern.c));
        ASSERT_EQ(report.size(), 1u) << pattern.code;
        const AnalysisFinding &finding = report.findings()[0];
        EXPECT_EQ(finding.detector, DetectorKind::kAtomicity);
        EXPECT_EQ(finding.code, pattern.code);
        EXPECT_EQ(finding.pcs, (std::vector<Pc>{kP, kR, kC}));
        EXPECT_EQ(finding.addr, kData);
        EXPECT_EQ(finding.witness_tids,
                  (std::vector<ThreadId>{0, 1, 0}));
    }
}

TEST(Atomicity, SerializablePatternsStayQuiet)
{
    const Pattern patterns[] = {
        {EventKind::kLoad, EventKind::kLoad, EventKind::kLoad,
         "R-R-R", false},
        {EventKind::kLoad, EventKind::kLoad, EventKind::kStore,
         "R-R-W", false},
        {EventKind::kStore, EventKind::kLoad, EventKind::kLoad,
         "W-R-R", false},
        {EventKind::kStore, EventKind::kStore, EventKind::kStore,
         "W-W-W", false},
    };
    for (const Pattern &pattern : patterns) {
        EXPECT_TRUE(detectAtomicityViolations(
                        tripleTrace(pattern.p, pattern.r, pattern.c))
                        .empty())
            << pattern.code;
    }
}

TEST(Atomicity, RemoteOnAnotherAddressIsNotInterleaved)
{
    Trace trace;
    trace.append(makeEvent(EventKind::kLoad, 0, kP, kData));
    trace.append(makeEvent(EventKind::kStore, 1, kR, kData + 64));
    trace.append(makeEvent(EventKind::kLoad, 0, kC, kData));
    EXPECT_TRUE(detectAtomicityViolations(trace).empty());
}

TEST(Atomicity, LocalAccessClosesTheWindow)
{
    // p .. c (no remote), then r, then c2: the (p, r, c2) combination
    // never forms — r interleaves the (c, c2) window only.
    Trace trace;
    trace.append(makeEvent(EventKind::kLoad, 0, kP, kData));
    trace.append(makeEvent(EventKind::kLoad, 0, kC, kData));
    trace.append(makeEvent(EventKind::kStore, 1, kR, kData));
    trace.append(makeEvent(EventKind::kLoad, 0, 0x12, kData));
    const AnalysisReport report = detectAtomicityViolations(trace);
    ASSERT_EQ(report.size(), 1u);
    EXPECT_EQ(report.findings()[0].pcs,
              (std::vector<Pc>{kC, kR, 0x12}));
}

TEST(Atomicity, DynamicRepeatsFoldIntoOneStaticTriple)
{
    Trace trace;
    for (int i = 0; i < 6; ++i) {
        trace.append(makeEvent(EventKind::kLoad, 0, kP, kData));
        trace.append(makeEvent(EventKind::kStore, 1, kR, kData));
        trace.append(makeEvent(EventKind::kLoad, 0, kC, kData));
    }
    const AnalysisReport report = detectAtomicityViolations(trace);
    // (kP,kR,kC) repeats, plus the wrap-around windows (kC,..,kP).
    for (const AnalysisFinding &finding : report.findings())
        EXPECT_GE(finding.count, 1u);
    EXPECT_TRUE(report.matchesPair(DetectorKind::kAtomicity, kR, kC));
}

TEST(Atomicity, BaselineSuppressesBenignTriples)
{
    const Trace benign = tripleTrace(
        EventKind::kStore, EventKind::kStore, EventKind::kLoad);

    AtomicityBaseline baseline;
    baseline.addPassingTrace(benign);
    EXPECT_EQ(baseline.size(), 1u);

    // The same static triple in the "failing" trace: suppressed.
    EXPECT_TRUE(detectAtomicityViolations(benign, &baseline).empty());

    // A different triple (new remote PC) still reports.
    Trace fresh;
    fresh.append(makeEvent(EventKind::kStore, 0, kP, kData));
    fresh.append(makeEvent(EventKind::kStore, 1, 0x99, kData));
    fresh.append(makeEvent(EventKind::kLoad, 0, kC, kData));
    const AnalysisReport report =
        detectAtomicityViolations(fresh, &baseline);
    ASSERT_EQ(report.size(), 1u);
    EXPECT_TRUE(report.findings()[0].coversPair(0x99, kC));
}

TEST(Atomicity, TripleKeySeparatesPatternsAndPcs)
{
    const std::uint64_t base = AtomicityDetector::tripleKey(
        kP, kR, kC, false, true, false);
    EXPECT_NE(base, AtomicityDetector::tripleKey(kP, kR, kC, true,
                                                 true, false));
    EXPECT_NE(base, AtomicityDetector::tripleKey(kP, kR, kC + 1, false,
                                                 true, false));
    EXPECT_EQ(base, AtomicityDetector::tripleKey(kP, kR, kC, false,
                                                 true, false));
}

TEST(Atomicity, StackAccessesAreIgnored)
{
    Trace trace;
    TraceEvent p = makeEvent(EventKind::kLoad, 0, kP, kData);
    TraceEvent r = makeEvent(EventKind::kStore, 1, kR, kData);
    TraceEvent c = makeEvent(EventKind::kLoad, 0, kC, kData);
    p.stack = r.stack = c.stack = true;
    trace.append(p);
    trace.append(r);
    trace.append(c);
    EXPECT_TRUE(detectAtomicityViolations(trace).empty());
}

} // namespace
} // namespace act
