/**
 * @file
 * Tests for selective weight protection: sensitivity probing,
 * checksumming, the guarded-fraction budget and in-place repair.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "act/weight_store.hh"
#include "analysis/config_check.hh"
#include "faults/weight_guard.hh"

namespace act
{
namespace
{

std::vector<double>
rampWeights(std::size_t count, double base)
{
    std::vector<double> weights(count);
    for (std::size_t i = 0; i < count; ++i)
        weights[i] = base + 0.01 * static_cast<double>(i);
    return weights;
}

WeightStore
makeStore(std::uint32_t threads)
{
    WeightStore store(Topology{2, 6});
    for (std::uint32_t tid = 0; tid < threads; ++tid)
        store.set(tid, rampWeights(store.weightCount(),
                                   0.1 + 0.05 * tid));
    return store;
}

TEST(Sensitivity, ProbesPartitionIntoDetectableAndSilent)
{
    const std::vector<double> weights = rampWeights(20, 0.25);
    const WeightSensitivity s = probeWeightSensitivity(
        7, weights, 64, 0x5ead5, kHwWeightLimit);
    EXPECT_EQ(s.set_id, 7u);
    EXPECT_EQ(s.probes, 64u);
    EXPECT_EQ(s.detectable + s.silent, s.probes);
    // Single-bit flips over IEEE-754 doubles hit both regimes: most
    // exponent flips blow past the Q15.16 limit (detectable), most
    // mantissa flips do not (silent).
    EXPECT_GT(s.detectable, 0u);
    EXPECT_GT(s.silent, 0u);
    EXPECT_GT(s.silent_damage, 0.0);
}

TEST(Sensitivity, ProbingIsAPureFunctionOfItsSeeds)
{
    const std::vector<double> weights = rampWeights(20, 0.25);
    const WeightSensitivity a = probeWeightSensitivity(
        3, weights, 48, 0x1111, kHwWeightLimit);
    const WeightSensitivity b = probeWeightSensitivity(
        3, weights, 48, 0x1111, kHwWeightLimit);
    EXPECT_EQ(a.detectable, b.detectable);
    EXPECT_EQ(a.silent, b.silent);
    EXPECT_EQ(a.silent_damage, b.silent_damage);
    // A different seed probes different (register, bit) pairs.
    const WeightSensitivity c = probeWeightSensitivity(
        3, weights, 48, 0x2222, kHwWeightLimit);
    EXPECT_TRUE(c.detectable != a.detectable ||
                c.silent_damage != a.silent_damage);
}

TEST(WeightChecksum, DetectsAnySingleBitFlip)
{
    std::vector<double> weights = rampWeights(16, 0.5);
    const std::uint64_t clean = weightChecksum(weights);
    EXPECT_EQ(weightChecksum(weights), clean); // Stable.

    for (const std::size_t reg : {0u, 7u, 15u}) {
        for (const std::uint64_t bit : {0u, 23u, 52u, 63u}) {
            std::vector<double> flipped = weights;
            std::uint64_t raw = 0;
            std::memcpy(&raw, &flipped[reg], sizeof(raw));
            raw ^= 1ULL << bit;
            std::memcpy(&flipped[reg], &raw, sizeof(raw));
            EXPECT_NE(weightChecksum(flipped), clean)
                << "reg " << reg << " bit " << bit;
        }
    }
}

TEST(WeightGuard, GuardsTheConfiguredFractionMostSensitiveFirst)
{
    const WeightStore store = makeStore(8);
    WeightProtectionConfig config;
    config.enabled = true;
    config.protect_fraction = 0.5;
    const WeightGuard guard = WeightGuard::build(store, config);

    // ceil(0.5 x 8 sets) = 4 guarded; ranking covers every set.
    EXPECT_EQ(guard.guardedCount(), 4u);
    ASSERT_EQ(guard.ranking().size(), 8u);
    // The ranking is ordered, and the guarded ids are its head.
    for (std::size_t i = 0; i + 1 < guard.ranking().size(); ++i) {
        EXPECT_GE(guard.ranking()[i].silent_damage,
                  guard.ranking()[i + 1].silent_damage);
    }
    for (std::size_t i = 0; i < guard.ranking().size(); ++i) {
        EXPECT_EQ(guard.guarded(guard.ranking()[i].set_id), i < 4)
            << "rank " << i;
    }
}

TEST(WeightGuard, FullFractionCoversEnsembleMemberSets)
{
    WeightStore store = makeStore(2);
    store.setMember(0, 1, rampWeights(store.weightCount(), 0.3));
    store.setMember(1, 1, rampWeights(store.weightCount(), 0.35));
    WeightProtectionConfig config;
    config.enabled = true;
    config.protect_fraction = 1.0;
    const WeightGuard guard = WeightGuard::build(store, config);

    EXPECT_EQ(guard.guardedCount(), 4u); // 2 member-0 + 2 extras.
    EXPECT_TRUE(guard.guarded(weightSetId(0, 0)));
    EXPECT_TRUE(guard.guarded(weightSetId(0, 1)));
    EXPECT_TRUE(guard.guarded(weightSetId(1, 0)));
    EXPECT_TRUE(guard.guarded(weightSetId(1, 1)));
}

TEST(WeightGuard, InspectRepairsAFlippedGuardedSet)
{
    const WeightStore store = makeStore(2);
    WeightProtectionConfig config;
    config.enabled = true;
    config.protect_fraction = 1.0;
    const WeightGuard guard = WeightGuard::build(store, config);

    const std::vector<double> clean = *store.get(0);
    std::vector<double> damaged = clean;
    std::uint64_t raw = 0;
    std::memcpy(&raw, &damaged[3], sizeof(raw));
    raw ^= 1ULL << 41; // An in-range (silent) perturbation.
    std::memcpy(&damaged[3], &raw, sizeof(raw));
    ASSERT_NE(damaged, clean);

    EXPECT_TRUE(guard.inspect(weightSetId(0, 0), damaged));
    EXPECT_EQ(damaged, clean); // Shadow copy restored in place.
}

TEST(WeightGuard, InspectLeavesCleanAndUnguardedSetsAlone)
{
    const WeightStore store = makeStore(4);
    WeightProtectionConfig config;
    config.enabled = true;
    config.protect_fraction = 0.25; // ceil(0.25 x 4) = 1 guarded set.
    const WeightGuard guard = WeightGuard::build(store, config);
    ASSERT_EQ(guard.guardedCount(), 1u);
    const std::uint64_t guarded_id = guard.ranking()[0].set_id;

    // A clean guarded set verifies and is untouched.
    std::vector<double> clean =
        *store.get(static_cast<ThreadId>(guarded_id & 0xffffffffu));
    const std::vector<double> before = clean;
    EXPECT_FALSE(guard.inspect(guarded_id, clean));
    EXPECT_EQ(clean, before);

    // An unguarded set passes through even when damaged: that is the
    // selective-protection trade-off, not a bug.
    std::uint64_t unguarded_id = 0;
    bool found = false;
    for (const WeightSensitivity &s : guard.ranking()) {
        if (!guard.guarded(s.set_id)) {
            unguarded_id = s.set_id;
            found = true;
            break;
        }
    }
    ASSERT_TRUE(found);
    std::vector<double> damaged =
        *store.get(static_cast<ThreadId>(unguarded_id & 0xffffffffu));
    damaged[0] = -damaged[0];
    const std::vector<double> still = damaged;
    EXPECT_FALSE(guard.inspect(unguarded_id, damaged));
    EXPECT_EQ(damaged, still);
}

} // namespace
} // namespace act
