/**
 * @file
 * Tests for the fault-injection subsystem: deterministic replay,
 * zero-plan dormancy, per-site corruption semantics and the audit log.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "act/weight_store.hh"
#include "faults/fault_injector.hh"
#include "trace/trace.hh"

namespace act
{
namespace
{

/** A synthetic trace large enough for rate-based sites to fire. */
Trace
makeTrace(std::size_t events = 2000)
{
    Trace trace;
    for (std::size_t i = 0; i < events; ++i) {
        TraceEvent event;
        event.kind = (i % 3 == 0) ? EventKind::kStore : EventKind::kLoad;
        event.tid = 0;
        event.pc = 0x400000 + (i % 64) * 4;
        event.addr = 0x10000 + (i % 256) * 8;
        event.gap = 2;
        trace.append(event);
    }
    return trace;
}

bool
tracesEqual(const Trace &a, const Trace &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const TraceEvent &x = a.events()[i];
        const TraceEvent &y = b.events()[i];
        if (x.kind != y.kind || x.tid != y.tid || x.pc != y.pc ||
            x.addr != y.addr || x.size != y.size || x.gap != y.gap)
            return false;
    }
    return true;
}

WeightStore
makeStore(std::uint32_t threads = 2)
{
    WeightStore store(Topology{2, 6});
    std::vector<double> weights(store.weightCount());
    for (std::size_t i = 0; i < weights.size(); ++i)
        weights[i] = 0.25 + 0.01 * static_cast<double>(i);
    store.setAll(threads, weights);
    return store;
}

TEST(FaultInjector, ZeroPlanIsIdentity)
{
    FaultPlan plan; // all rates 0
    ASSERT_FALSE(plan.enabled());
    FaultInjector inject(plan);

    Trace trace = makeTrace(500);
    const Trace original = trace;
    EXPECT_EQ(inject.corruptTrace(trace, 1), 0u);
    EXPECT_TRUE(tracesEqual(original, trace));

    WeightStore store = makeStore();
    const auto before = store.get(0);
    EXPECT_EQ(inject.corruptWeightStore(store, 0), 0u);
    EXPECT_EQ(store.get(0), before);

    EXPECT_EQ(inject.onWriterTransfer(), WriterFaultAction::kNone);
    EXPECT_FALSE(inject.dropInputDependence());
    EXPECT_FALSE(inject.dropDebugLog());
    EXPECT_EQ(inject.totalInjections(), 0u);
    EXPECT_TRUE(inject.log().empty());
    EXPECT_EQ(inject.formatLog(), "no injections");
}

TEST(FaultInjector, SamePlanSameStreamReplaysIdentically)
{
    const FaultPlan plan = FaultPlan::uniform(0.05, 42);
    FaultInjector a(plan);
    FaultInjector b(plan);

    Trace trace_a = makeTrace();
    Trace trace_b = makeTrace();
    const std::size_t injected_a = a.corruptTrace(trace_a, 7);
    const std::size_t injected_b = b.corruptTrace(trace_b, 7);

    EXPECT_GT(injected_a, 0u);
    EXPECT_EQ(injected_a, injected_b);
    EXPECT_TRUE(tracesEqual(trace_a, trace_b));
    ASSERT_EQ(a.log().size(), b.log().size());
    for (std::size_t i = 0; i < a.log().size(); ++i) {
        EXPECT_EQ(a.log()[i].site, b.log()[i].site);
        EXPECT_EQ(a.log()[i].index, b.log()[i].index);
        EXPECT_EQ(a.log()[i].detail, b.log()[i].detail);
    }

    // The online hooks replay too: fresh injectors fire at the same
    // occurrence indices.
    std::vector<bool> drops_a;
    std::vector<bool> drops_b;
    for (int i = 0; i < 500; ++i) {
        drops_a.push_back(a.dropInputDependence());
        drops_b.push_back(b.dropInputDependence());
    }
    EXPECT_EQ(drops_a, drops_b);
}

TEST(FaultInjector, DistinctStreamsCorruptIndependently)
{
    const FaultPlan plan = FaultPlan::uniform(0.05, 42);
    FaultInjector inject(plan);
    Trace first = makeTrace();
    Trace second = makeTrace();
    inject.corruptTrace(first, 1);
    inject.corruptTrace(second, 2);
    // Same plan, different artefacts: the damage patterns must not be
    // copies of each other.
    EXPECT_FALSE(tracesEqual(first, second));
}

TEST(FaultInjector, CertainDropEmptiesTheTrace)
{
    FaultPlan plan;
    plan.seed = 3;
    plan.trace_drop_rate = 1.0;
    FaultInjector inject(plan);
    Trace trace = makeTrace(100);
    EXPECT_EQ(inject.corruptTrace(trace, 0), 100u);
    EXPECT_TRUE(trace.empty());
    EXPECT_EQ(inject.injectionCount(FaultSite::kTraceDrop), 100u);
}

TEST(FaultInjector, CertainDupDoublesTheTrace)
{
    FaultPlan plan;
    plan.seed = 3;
    plan.trace_dup_rate = 1.0;
    FaultInjector inject(plan);
    Trace trace = makeTrace(100);
    inject.corruptTrace(trace, 0);
    EXPECT_EQ(trace.size(), 200u);
    EXPECT_EQ(inject.injectionCount(FaultSite::kTraceDup), 100u);
    // Duplicates sit adjacent to their originals.
    EXPECT_EQ(trace.events()[0].pc, trace.events()[1].pc);
    EXPECT_EQ(trace.events()[0].addr, trace.events()[1].addr);
}

TEST(FaultInjector, TruncationKeepsTheHead)
{
    FaultPlan plan;
    plan.seed = 3;
    plan.trace_truncate_fraction = 0.5;
    FaultInjector inject(plan);
    Trace trace = makeTrace(100);
    const Trace original = makeTrace(100);
    inject.corruptTrace(trace, 0);
    ASSERT_EQ(trace.size(), 50u);
    EXPECT_EQ(inject.injectionCount(FaultSite::kTraceTruncate), 1u);
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(trace.events()[i].pc, original.events()[i].pc);
}

TEST(FaultInjector, BitflipChangesOnlyPcOrAddr)
{
    FaultPlan plan;
    plan.seed = 11;
    plan.trace_bitflip_rate = 1.0;
    FaultInjector inject(plan);
    Trace trace = makeTrace(64);
    const Trace original = makeTrace(64);
    inject.corruptTrace(trace, 0);
    ASSERT_EQ(trace.size(), original.size());
    EXPECT_EQ(inject.injectionCount(FaultSite::kTraceBitflip), 64u);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const TraceEvent &was = original.events()[i];
        const TraceEvent &now = trace.events()[i];
        // Exactly one bit across (pc, addr) differs; nothing else does.
        const std::uint64_t delta =
            (was.pc ^ now.pc) | (was.addr ^ now.addr);
        EXPECT_EQ(__builtin_popcountll(delta), 1);
        EXPECT_EQ(was.kind, now.kind);
        EXPECT_EQ(was.gap, now.gap);
    }
}

TEST(FaultInjector, WeightBitflipsPerturbTheStore)
{
    FaultPlan plan;
    plan.seed = 5;
    plan.weight_bitflip_rate = 1.0;
    FaultInjector inject(plan);
    WeightStore store = makeStore(2);
    const auto before0 = store.get(0);
    const auto before1 = store.get(1);

    const std::size_t injected = inject.corruptWeightStore(store, 0);
    EXPECT_EQ(injected, store.weightCount() * 2);
    ASSERT_TRUE(store.get(0).has_value());
    EXPECT_NE(store.get(0), before0);
    EXPECT_NE(store.get(1), before1);

    // Threads are damaged independently: identical inputs, different
    // corrupted outputs.
    EXPECT_NE(store.get(0), store.get(1));
}

TEST(FaultInjector, PerBitRateDamagesEveryStoredBitIndependently)
{
    FaultPlan plan;
    plan.seed = 5;
    plan.weight_bit_rate = 1.0; // Every stored bit flips.
    ASSERT_TRUE(plan.enabled());
    FaultInjector inject(plan);
    WeightStore store = makeStore(1);
    const std::vector<double> before = *store.get(0);

    const std::size_t injected = inject.corruptWeightStore(store, 0);
    EXPECT_EQ(injected, store.weightCount() * 64);
    const std::vector<double> after = *store.get(0);
    for (std::size_t i = 0; i < before.size(); ++i) {
        std::uint64_t was = 0, now = 0;
        std::memcpy(&was, &before[i], sizeof(was));
        std::memcpy(&now, &after[i], sizeof(now));
        EXPECT_EQ(was ^ now, ~std::uint64_t{0}) << "register " << i;
    }
}

TEST(FaultInjector, WeightsOnlyPlanUsesThePerBitModel)
{
    const FaultPlan plan = FaultPlan::weightsOnly(0.01, 7);
    EXPECT_EQ(plan.weight_bit_rate, 0.01);
    EXPECT_EQ(plan.weight_bitflip_rate, 0.0);
    EXPECT_EQ(plan.trace_bitflip_rate, 0.0);
    EXPECT_EQ(plan.input_drop_rate, 0.0);
    EXPECT_TRUE(plan.enabled());

    // And the historical uniform plan never turns it on, so the
    // table-resilience corruption streams stay bit-identical.
    EXPECT_EQ(FaultPlan::uniform(0.05, 42).weight_bit_rate, 0.0);
}

TEST(FaultInjector, PerBitDamageCoversEnsembleMemberSets)
{
    FaultPlan plan;
    plan.seed = 5;
    plan.weight_bit_rate = 0.05;
    FaultInjector inject(plan);

    WeightStore store = makeStore(1);
    std::vector<double> member(store.weightCount(), 0.5);
    store.setMember(0, 1, member);
    const std::vector<double> tid_before = *store.get(0);

    inject.corruptWeightStore(store, 3);
    // With ~0.05 x 64 = 3 expected flips per register both sets take
    // damage, and member 1's pattern differs from the tid set's — the
    // decision stream is keyed by the full 64-bit set id.
    EXPECT_NE(*store.get(0), tid_before);
    EXPECT_NE(*store.getMember(0, 1), member);
    std::vector<double> tid_delta, member_delta;
    for (std::size_t i = 0; i < store.weightCount(); ++i) {
        tid_delta.push_back((*store.get(0))[i] - tid_before[i]);
        member_delta.push_back((*store.getMember(0, 1))[i] - member[i]);
    }
    EXPECT_NE(tid_delta, member_delta);

    // The same plan over a fresh copy replays bit-identically.
    FaultInjector replay(plan);
    WeightStore again = makeStore(1);
    again.setMember(0, 1, member);
    replay.corruptWeightStore(again, 3);
    EXPECT_EQ(again.get(0), store.get(0));
    EXPECT_EQ(again.getMember(0, 1), store.getMember(0, 1));
}

TEST(FaultInjector, HooksFireAtRateOne)
{
    FaultPlan plan;
    plan.seed = 9;
    plan.input_drop_rate = 1.0;
    plan.debug_drop_rate = 1.0;
    plan.writer_drop_rate = 1.0;
    FaultInjector inject(plan);
    EXPECT_TRUE(inject.dropInputDependence());
    EXPECT_TRUE(inject.dropDebugLog());
    EXPECT_EQ(inject.onWriterTransfer(), WriterFaultAction::kDrop);

    FaultPlan stale;
    stale.seed = 9;
    stale.writer_stale_rate = 1.0;
    FaultInjector inject_stale(stale);
    EXPECT_EQ(inject_stale.onWriterTransfer(), WriterFaultAction::kStale);
}

TEST(FaultInjector, FormatLogSummarisesPerSiteCounts)
{
    FaultPlan plan;
    plan.seed = 3;
    plan.trace_drop_rate = 1.0;
    FaultInjector inject(plan);
    Trace trace = makeTrace(10);
    inject.corruptTrace(trace, 4);

    const std::string text = inject.formatLog(2);
    EXPECT_NE(text.find("trace-drop: 10"), std::string::npos);
    EXPECT_NE(text.find("stream=4"), std::string::npos);
    EXPECT_NE(text.find("... 8 more"), std::string::npos);
}

} // namespace
} // namespace act
