/**
 * @file
 * Tests for the programmer-feedback refresher (Section III-C).
 */

#include <gtest/gtest.h>

#include "diagnosis/feedback.hh"

namespace act
{
namespace
{

class FeedbackFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        registerAllWorkloads();
        workload_ = makeWorkload("fft");
        OfflineTrainingConfig config;
        config.traces = 4;
        config.max_examples = 12000;
        config.trainer.max_epochs = 200;
        model_ = offlineTrain(*workload_, encoder_, config);
    }

    /** A plausible-looking sequence the network accepts. */
    DependenceSequence
    sneakySequence()
    {
        // Build from real valid dependences, then perturb the last
        // store only slightly — close enough to the valid band that
        // the freshly trained network accepts it.
        const InputGenerator generator(3);
        WorkloadParams params;
        params.seed = 42;
        const Trace trace = workload_->record(params);
        const GeneratedSequences sequences =
            generator.process(trace, false);
        MlpNetwork net(model_.topology);
        net.setWeights(model_.weights);
        // Deltas just below the synthetic-negative band: plausible
        // enough to be accepted, separable enough to be unlearned.
        for (const auto &seq : sequences.positives) {
            for (const Pc delta : {16u, 20u, 14u, 24u, 28u}) {
                DependenceSequence candidate = seq;
                candidate.deps.back().store_pc =
                    candidate.deps.back().load_pc - delta;
                if (candidate.deps.back() == seq.deps.back())
                    continue;
                if (net.predictValid(encoder_.encodeSequence(candidate)))
                    return candidate;
            }
        }
        return {};
    }

    std::unique_ptr<Workload> workload_;
    PairEncoder encoder_;
    TrainedModel model_;
};

TEST_F(FeedbackFixture, ConfirmedSequenceBecomesInvalid)
{
    const DependenceSequence sneaky = sneakySequence();
    ASSERT_FALSE(sneaky.deps.empty()) << "no accepted perturbation found";

    const FeedbackResult result = applyNegativeFeedback(
        *workload_, model_, encoder_, {sneaky});
    EXPECT_EQ(result.fixed, 1u);
    EXPECT_EQ(result.still_valid, 0u);

    MlpNetwork updated(model_.topology);
    updated.setWeights(result.weights);
    EXPECT_FALSE(updated.predictValid(encoder_.encodeSequence(sneaky)));
}

TEST_F(FeedbackFixture, ValidBehaviourIsNotForgotten)
{
    const DependenceSequence sneaky = sneakySequence();
    ASSERT_FALSE(sneaky.deps.empty());
    const FeedbackResult result = applyNegativeFeedback(
        *workload_, model_, encoder_, {sneaky});
    // The refresher keeps false positives on normal behaviour low.
    EXPECT_LT(result.positive_error, 0.08);
}

TEST_F(FeedbackFixture, StoreVariantPatchesAllThreads)
{
    const DependenceSequence sneaky = sneakySequence();
    ASSERT_FALSE(sneaky.deps.empty());
    WeightStore store(model_.topology);
    store.setAll(workload_->threadCount(), model_.weights);
    const FeedbackResult result = applyNegativeFeedback(
        *workload_, model_, encoder_, {sneaky}, store);
    for (ThreadId tid = 0; tid < workload_->threadCount(); ++tid) {
        const auto weights = store.get(tid);
        ASSERT_TRUE(weights.has_value());
        EXPECT_EQ(*weights, result.weights);
    }
}

} // namespace
} // namespace act
