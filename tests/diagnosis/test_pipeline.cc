/**
 * @file
 * Integration tests for the end-to-end diagnosis pipeline (Figure 1).
 */

#include <gtest/gtest.h>

#include "diagnosis/pipeline.hh"

namespace act
{
namespace
{

class PipelineFixture : public ::testing::Test
{
  protected:
    void SetUp() override { registerAllWorkloads(); }
};

TEST_F(PipelineFixture, OfflineTrainingReachesLowError)
{
    const auto workload = makeWorkload("lu");
    PairEncoder encoder;
    OfflineTrainingConfig config;
    config.traces = 4;
    config.max_examples = 20000;
    const TrainedModel model = offlineTrain(*workload, encoder, config);
    EXPECT_GT(model.dependence_count, 1000u);
    EXPECT_GT(model.example_count, 1000u);
    EXPECT_LT(model.training.final_error, 0.05);
    EXPECT_EQ(model.topology.inputs, 3u * encoder.width());
    EXPECT_EQ(model.weights.size(),
              model.topology.hidden * (model.topology.inputs + 1) +
                  model.topology.hidden + 1);
}

TEST_F(PipelineFixture, CacheSequencesMirrorOnlineFormation)
{
    const auto workload = makeWorkload("fft");
    WorkloadParams params;
    const Trace trace = workload->record(params);
    const auto sequences =
        collectCacheSequences(trace, MemSystemConfig{}, 3);
    EXPECT_FALSE(sequences.empty());
    for (const auto &seq : sequences)
        EXPECT_EQ(seq.deps.size(), 3u);
    // Cache-based formation loses some dependences (evictions, clean
    // transfers), so it can never see more sequences than exist loads.
    EXPECT_LE(sequences.size(), trace.loadCount());
}

TEST_F(PipelineFixture, DiagnosesGzipSemanticBug)
{
    const auto workload = makeWorkload("gzip");
    DiagnosisSetup setup = defaultDiagnosisSetup();
    setup.training.traces = 8;
    setup.postmortem_traces = 10;
    const DiagnosisResult result = diagnoseFailure(*workload, setup);
    EXPECT_TRUE(result.root_logged);
    ASSERT_TRUE(result.rank.has_value());
    EXPECT_LE(*result.rank, 5u);
}

TEST_F(PipelineFixture, DiagnosesMysql2ConcurrencyBug)
{
    const auto workload = makeWorkload("mysql2");
    DiagnosisSetup setup = defaultDiagnosisSetup();
    setup.training.traces = 8;
    setup.postmortem_traces = 10;
    const DiagnosisResult result = diagnoseFailure(*workload, setup);
    EXPECT_TRUE(result.root_logged);
    ASSERT_TRUE(result.debug_position.has_value());
    EXPECT_LT(*result.debug_position, 60u);
    ASSERT_TRUE(result.rank.has_value());
    EXPECT_LE(*result.rank, 8u);
}

TEST_F(PipelineFixture, DiagnosisNeverReproducesTheFailure)
{
    // Structural property: the pipeline runs the failing execution
    // exactly once; pruning uses correct executions only. We verify
    // via the run statistics: a single failing run's dependences.
    const auto workload = makeWorkload("seq");
    DiagnosisSetup setup = defaultDiagnosisSetup();
    setup.training.traces = 6;
    setup.postmortem_traces = 8;
    const DiagnosisResult result = diagnoseFailure(*workload, setup);
    WorkloadParams failing;
    failing.seed = setup.failure_seed;
    failing.trigger_failure = true;
    const Trace failure_trace = workload->record(failing);
    EXPECT_LE(result.run_stats.act.dependences,
              failure_trace.loadCount());
}

TEST_F(PipelineFixture, PerThreadWeightSpecialisation)
{
    const auto workload = makeWorkload("fft");
    PairEncoder encoder;
    OfflineTrainingConfig config;
    config.traces = 3;
    config.max_examples = 12000;
    config.trainer.max_epochs = 120;
    config.per_thread_weights = true;
    const TrainedModel model = offlineTrain(*workload, encoder, config);

    // Every thread that executed loads received a specialised set.
    EXPECT_EQ(model.per_thread.size(), workload->threadCount());
    for (const auto &[tid, weights] : model.per_thread) {
        EXPECT_EQ(weights.size(), model.weights.size()) << tid;
        // Fine-tuning moved at least something off the base weights.
        EXPECT_NE(weights, model.weights) << tid;
    }

    const WeightStore store =
        buildWeightStore(model, workload->threadCount());
    for (ThreadId tid = 0; tid < workload->threadCount(); ++tid)
        EXPECT_TRUE(store.has(tid));
}

TEST_F(PipelineFixture, BuildWeightStoreFallsBackToBase)
{
    TrainedModel model;
    model.topology = Topology{6, 10};
    model.weights.assign(WeightStore(model.topology).weightCount(), 0.25);
    model.per_thread[1] = std::vector<double>(model.weights.size(), -0.5);
    const WeightStore store = buildWeightStore(model, 3);
    EXPECT_EQ(store.get(0), model.weights);
    EXPECT_EQ(store.get(1), model.per_thread[1]);
    EXPECT_EQ(store.get(2), model.weights);
}

TEST_F(PipelineFixture, DefaultSetupMatchesTableIII)
{
    const DiagnosisSetup setup = defaultDiagnosisSetup();
    EXPECT_EQ(setup.system.mem.cores, 8u);
    EXPECT_EQ(setup.system.mem.line_bytes, 64u);
    EXPECT_EQ(setup.system.act.input_buffer_entries, 50u);
    EXPECT_EQ(setup.system.act.debug_buffer_entries, 60u);
    EXPECT_DOUBLE_EQ(setup.system.act.misprediction_threshold, 0.05);
    EXPECT_EQ(setup.system.act.hw.neuron.max_inputs, 10u);
    EXPECT_EQ(setup.postmortem_traces, 20u);
}

} // namespace
} // namespace act
