/**
 * @file
 * Tests for the Correct Set.
 */

#include <gtest/gtest.h>

#include "diagnosis/correct_set.hh"

namespace act
{
namespace
{

DependenceSequence
seqOf(std::initializer_list<Pc> loads)
{
    DependenceSequence s;
    Pc store = 0x1000;
    for (const Pc load : loads)
        s.deps.push_back(RawDependence{store++, load, false});
    return s;
}

TEST(CorrectSet, ContainsExactSequences)
{
    CorrectSet set;
    set.addSequence(seqOf({1, 2, 3}));
    EXPECT_TRUE(set.contains(seqOf({1, 2, 3})));
    EXPECT_FALSE(set.contains(seqOf({1, 2, 4})));
    EXPECT_FALSE(set.contains(seqOf({1, 2})));
    EXPECT_EQ(set.size(), 1u);
}

TEST(CorrectSet, MatchedPrefixAgainstBestSequence)
{
    CorrectSet set;
    set.addSequence(seqOf({1, 2, 3}));
    set.addSequence(seqOf({1, 5, 6}));
    EXPECT_EQ(set.matchedPrefix(seqOf({1, 2, 9})), 2u);
    EXPECT_EQ(set.matchedPrefix(seqOf({1, 9, 9})), 1u);
    EXPECT_EQ(set.matchedPrefix(seqOf({9, 2, 3})), 0u);
    EXPECT_EQ(set.matchedPrefix(seqOf({1, 5, 9})), 2u);
}

TEST(CorrectSet, PaperExampleFromSectionIIID)
{
    // Correct Set contains (A1,A2,A3) and (B1,B2,B3); Debug Buffer has
    // (A1,A2,A4), (B1,B2,B3) and (A1,A5,A6).
    CorrectSet set;
    const auto a = seqOf({0xA1, 0xA2, 0xA3});
    const auto b = seqOf({0xB1, 0xB2, 0xB3});
    set.addSequence(a);
    set.addSequence(b);

    const auto bad1 = seqOf({0xA1, 0xA2, 0xA4});
    const auto bad2 = seqOf({0xA1, 0xA5, 0xA6});
    EXPECT_TRUE(set.contains(b));       // pruned
    EXPECT_FALSE(set.contains(bad1));
    EXPECT_FALSE(set.contains(bad2));
    EXPECT_EQ(set.matchedPrefix(bad1), 2u); // ranked first
    EXPECT_EQ(set.matchedPrefix(bad2), 1u);
}

TEST(CorrectSet, AddTraceExtractsSequences)
{
    Trace trace;
    for (int i = 0; i < 5; ++i) {
        TraceEvent s;
        s.kind = EventKind::kStore;
        s.pc = 0x10;
        s.addr = 0x1000;
        trace.append(s);
        TraceEvent l;
        l.kind = EventKind::kLoad;
        l.pc = 0x20;
        l.addr = 0x1000;
        trace.append(l);
    }
    CorrectSet set;
    set.addTrace(trace, InputGenerator(2));
    EXPECT_EQ(set.size(), 1u); // one repeated sequence
    DependenceSequence repeated;
    repeated.deps = {{0x10, 0x20, false}, {0x10, 0x20, false}};
    EXPECT_TRUE(set.contains(repeated));
}

TEST(CorrectSet, PrefixesDoNotPolluteFullSet)
{
    CorrectSet set;
    set.addSequence(seqOf({1, 2, 3}));
    // The prefix (1,2) is indexed for matching but is not a "full"
    // member, so a two-long debug sequence is not pruned by it.
    EXPECT_FALSE(set.contains(seqOf({1, 2})));
    EXPECT_EQ(set.matchedPrefix(seqOf({1, 2})), 2u);
}

} // namespace
} // namespace act
