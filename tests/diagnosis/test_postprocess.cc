/**
 * @file
 * Tests for Debug Buffer postprocessing: pruning, de-duplication and
 * the matched-prefix ranking with NN-output tie break.
 */

#include <gtest/gtest.h>

#include "diagnosis/postprocess.hh"

namespace act
{
namespace
{

DependenceSequence
seqOf(std::initializer_list<Pc> loads)
{
    DependenceSequence s;
    Pc store = 0x1000;
    for (const Pc load : loads)
        s.deps.push_back(RawDependence{store++, load, false});
    return s;
}

DebugEntry
entryOf(const DependenceSequence &seq, double output)
{
    DebugEntry e;
    e.sequence = seq;
    e.output = output;
    return e;
}

TEST(Postprocess, PaperExampleRanking)
{
    // Section III-D worked example: prune (B1,B2,B3); rank (A1,A2,A4)
    // above (A1,A5,A6) because it matches 2 dependences vs 1.
    CorrectSet correct;
    correct.addSequence(seqOf({0xA1, 0xA2, 0xA3}));
    correct.addSequence(seqOf({0xB1, 0xB2, 0xB3}));

    const std::vector<DebugEntry> entries = {
        entryOf(seqOf({0xA1, 0xA2, 0xA4}), 0.2),
        entryOf(seqOf({0xB1, 0xB2, 0xB3}), 0.4),
        entryOf(seqOf({0xA1, 0xA5, 0xA6}), 0.1),
    };
    const DiagnosisReport report = postprocess(entries, correct);
    EXPECT_EQ(report.raw_entries, 3u);
    EXPECT_EQ(report.pruned, 1u);
    ASSERT_EQ(report.ranked.size(), 2u);
    EXPECT_EQ(report.ranked[0].sequence, seqOf({0xA1, 0xA2, 0xA4}));
    EXPECT_EQ(report.ranked[0].matched, 2u);
    EXPECT_EQ(report.ranked[1].sequence, seqOf({0xA1, 0xA5, 0xA6}));
    EXPECT_EQ(report.ranked[1].matched, 1u);
}

TEST(Postprocess, TieBreakByMostNegativeOutput)
{
    CorrectSet correct;
    correct.addSequence(seqOf({1, 2, 3}));
    const std::vector<DebugEntry> entries = {
        entryOf(seqOf({1, 2, 7}), 0.45),
        entryOf(seqOf({1, 2, 8}), 0.05), // equally matched, more negative
    };
    const DiagnosisReport report = postprocess(entries, correct);
    ASSERT_EQ(report.ranked.size(), 2u);
    EXPECT_EQ(report.ranked[0].sequence, seqOf({1, 2, 8}));
}

TEST(Postprocess, DuplicatesCollapseKeepingMostNegative)
{
    CorrectSet correct;
    const std::vector<DebugEntry> entries = {
        entryOf(seqOf({1, 2, 7}), 0.4),
        entryOf(seqOf({1, 2, 7}), 0.1),
        entryOf(seqOf({1, 2, 7}), 0.3),
    };
    const DiagnosisReport report = postprocess(entries, correct);
    EXPECT_EQ(report.raw_entries, 3u);
    EXPECT_EQ(report.distinct_entries, 1u);
    ASSERT_EQ(report.ranked.size(), 1u);
    EXPECT_DOUBLE_EQ(report.ranked[0].output, 0.1);
}

TEST(Postprocess, FilterFraction)
{
    CorrectSet correct;
    correct.addSequence(seqOf({1, 2, 3}));
    correct.addSequence(seqOf({4, 5, 6}));
    const std::vector<DebugEntry> entries = {
        entryOf(seqOf({1, 2, 3}), 0.4),
        entryOf(seqOf({4, 5, 6}), 0.4),
        entryOf(seqOf({7, 8, 9}), 0.4),
        entryOf(seqOf({1, 2, 9}), 0.4),
    };
    const DiagnosisReport report = postprocess(entries, correct);
    EXPECT_EQ(report.pruned, 2u);
    EXPECT_DOUBLE_EQ(report.filterFraction(), 0.5);
    EXPECT_EQ(report.ranked.size(), 2u);
}

TEST(Postprocess, RankOfPrefersFinalDependence)
{
    CorrectSet correct;
    correct.addSequence(seqOf({1, 2, 3}));
    const auto root_seq = seqOf({2, 3, 9});
    const RawDependence root = root_seq.deps.back();
    // Another candidate merely *contains* the root dependence mid
    // sequence; the one ending in it must win the rank lookup.
    DependenceSequence contains_root;
    contains_root.deps = {root, {0x55, 0x56, false}, {0x57, 0x58, false}};
    const std::vector<DebugEntry> entries = {
        entryOf(contains_root, 0.01),
        entryOf(root_seq, 0.4),
    };
    const DiagnosisReport report = postprocess(entries, correct);
    const auto rank = report.rankOf(root);
    ASSERT_TRUE(rank.has_value());
    EXPECT_EQ(report.ranked[*rank - 1].sequence, root_seq);
}

TEST(Postprocess, RankOfMissingRoot)
{
    CorrectSet correct;
    const std::vector<DebugEntry> entries = {
        entryOf(seqOf({1, 2, 3}), 0.4)};
    const DiagnosisReport report = postprocess(entries, correct);
    EXPECT_FALSE(report.rankOf(RawDependence{9, 9, false}).has_value());
}

TEST(Postprocess, DependenceLevelPruning)
{
    CorrectSet correct;
    correct.addSequence(seqOf({1, 2, 3}));
    // A flagged sequence ending in a dependence the Correct Set has
    // seen (as a final dependence), but in a fresh context.
    DependenceSequence fresh_context;
    fresh_context.deps = {{0x50, 0x51, false},
                          {0x52, 0x53, false},
                          {0x1002, 3, false}}; // final dep of (1,2,3)
    const std::vector<DebugEntry> entries = {
        entryOf(fresh_context, 0.2)};

    const DiagnosisReport pruned = postprocess(entries, correct);
    EXPECT_EQ(pruned.pruned, 1u);
    EXPECT_TRUE(pruned.ranked.empty());

    PostprocessOptions paper_pure;
    paper_pure.prune_final_dependence = false;
    const DiagnosisReport kept =
        postprocess(entries, correct, paper_pure);
    EXPECT_EQ(kept.pruned, 0u);
    EXPECT_EQ(kept.ranked.size(), 1u);
}

TEST(Postprocess, DependenceRankCollapsesRepeatedFindings)
{
    CorrectSet correct;
    correct.addSequence(seqOf({1, 2, 3}));
    correct.addSequence(seqOf({4, 5, 6}));
    // Two sequences ending in the same suspect dependence (different
    // but fully matched contexts), then the root. By sequence count
    // the root ranks 3rd; by distinct final dependences it is the 2nd
    // finding a programmer inspects.
    const RawDependence suspect{0x90, 0x91, false};
    DependenceSequence suspect_a = seqOf({1, 2, 3});
    suspect_a.deps.back() = suspect;
    DependenceSequence suspect_b = seqOf({4, 5, 6});
    suspect_b.deps.back() = suspect;
    const auto root_seq = seqOf({1, 2, 9});
    const RawDependence root = root_seq.deps.back();
    const std::vector<DebugEntry> entries = {
        entryOf(suspect_a, 0.01),
        entryOf(suspect_b, 0.02),
        entryOf(root_seq, 0.4),
    };
    const DiagnosisReport report = postprocess(entries, correct);
    ASSERT_TRUE(report.rankOf(root).has_value());
    ASSERT_TRUE(report.dependenceRankOf(root).has_value());
    EXPECT_EQ(*report.rankOf(root), 3u);
    EXPECT_EQ(*report.dependenceRankOf(root), 2u);
}

TEST(Postprocess, DependenceRankMissingRoot)
{
    CorrectSet correct;
    const std::vector<DebugEntry> entries = {
        entryOf(seqOf({1, 2, 3}), 0.4)};
    const DiagnosisReport report = postprocess(entries, correct);
    EXPECT_FALSE(
        report.dependenceRankOf(RawDependence{9, 9, false}).has_value());
}

TEST(Postprocess, EmptyInput)
{
    CorrectSet correct;
    const DiagnosisReport report = postprocess({}, correct);
    EXPECT_EQ(report.raw_entries, 0u);
    EXPECT_TRUE(report.ranked.empty());
    EXPECT_DOUBLE_EQ(report.filterFraction(), 0.0);
}

TEST(Postprocess, ToStringListsTopCandidates)
{
    CorrectSet correct;
    const std::vector<DebugEntry> entries = {
        entryOf(seqOf({1, 2, 3}), 0.4)};
    const DiagnosisReport report = postprocess(entries, correct);
    const std::string text = report.toString();
    EXPECT_NE(text.find("#1"), std::string::npos);
    EXPECT_NE(text.find("candidates 1"), std::string::npos);
}

} // namespace
} // namespace act
