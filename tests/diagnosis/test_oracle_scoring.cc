/**
 * @file
 * Scoring ACT's diagnosis output against the vector-clock race oracle:
 * on a concurrency bug, the oracle must label the root dependence racy
 * on the failing trace, and ACT's ranked candidates must contain at
 * least one oracle-confirmed race (the root cause itself).
 */

#include <gtest/gtest.h>

#include "analysis/race_oracle.hh"
#include "diagnosis/pipeline.hh"

namespace act
{
namespace
{

class OracleScoringFixture : public ::testing::Test
{
  protected:
    void SetUp() override { registerAllWorkloads(); }
};

TEST_F(OracleScoringFixture, ActPredictionsScoreAgainstOracleOnMysql2)
{
    const auto workload = makeWorkload("mysql2");
    DiagnosisSetup setup = defaultDiagnosisSetup();
    setup.training.traces = 8;
    setup.postmortem_traces = 10;
    const DiagnosisResult result = diagnoseFailure(*workload, setup);
    ASSERT_TRUE(result.rank.has_value());

    WorkloadParams failing;
    failing.seed = setup.failure_seed;
    failing.trigger_failure = true;
    const RaceReport oracle =
        detectRaces(workload->record(failing));

    // Ground truth: the catalog's root dependence races.
    const RawDependence root = workload->buggyDependence();
    EXPECT_TRUE(root.inter_thread);
    EXPECT_TRUE(oracle.isRacy(root));

    // Score the final dependence of every ranked candidate. ACT found
    // the root cause (rank above), so at least one prediction must be
    // an oracle-confirmed race.
    std::vector<RawDependence> predicted;
    for (const auto &candidate : result.report.ranked) {
        if (!candidate.sequence.deps.empty())
            predicted.push_back(candidate.sequence.deps.back());
    }
    ASSERT_FALSE(predicted.empty());
    const OracleScore score = oracle.score(predicted);
    EXPECT_GE(score.true_positives, 1u);
    EXPECT_GT(score.precision(), 0.0);
    EXPECT_LE(score.precision(), 1.0);
}

TEST_F(OracleScoringFixture, SequentialBugShowsNoRaceAnywhere)
{
    const auto workload = makeWorkload("gzip");
    WorkloadParams failing;
    failing.seed = 999;
    failing.trigger_failure = true;
    const RaceReport oracle =
        detectRaces(workload->record(failing));
    EXPECT_TRUE(oracle.empty());
    EXPECT_FALSE(oracle.isRacy(workload->buggyDependence()));
}

} // namespace
} // namespace act
