/**
 * @file
 * Tests for the offline trainer, the dataset container and the
 * evaluation helpers.
 */

#include <gtest/gtest.h>

#include "nn/trainer.hh"

namespace act
{
namespace
{

Dataset
linearlySeparable(std::size_t n, Rng &rng)
{
    // Positive iff x0 + x1 > 0, with a margin.
    Dataset data;
    while (data.size() < n) {
        const double x0 = rng.uniform(-2, 2);
        const double x1 = rng.uniform(-2, 2);
        const double margin = x0 + x1;
        if (std::abs(margin) < 0.2)
            continue;
        data.add(Example{{x0, x1}, margin > 0 ? 1.0 : 0.0});
    }
    return data;
}

TEST(Dataset, CountsAndWidth)
{
    Dataset data;
    data.add(Example{{1.0, 2.0}, 1.0});
    data.add(Example{{3.0, 4.0}, 0.0});
    data.add(Example{{5.0, 6.0}, 1.0});
    EXPECT_EQ(data.size(), 3u);
    EXPECT_EQ(data.positiveCount(), 2u);
    EXPECT_EQ(data.negativeCount(), 1u);
    EXPECT_EQ(data.inputWidth(), 2u);
}

TEST(Dataset, ShuffleKeepsMultiset)
{
    Rng rng(5);
    Dataset data;
    for (int i = 0; i < 50; ++i)
        data.add(Example{{static_cast<double>(i)}, 1.0});
    Dataset shuffled = data;
    shuffled.shuffle(rng);
    ASSERT_EQ(shuffled.size(), data.size());
    double sum = 0.0;
    bool moved = false;
    for (std::size_t i = 0; i < shuffled.size(); ++i) {
        sum += shuffled[i].inputs[0];
        if (shuffled[i].inputs[0] != data[i].inputs[0])
            moved = true;
    }
    EXPECT_DOUBLE_EQ(sum, 49.0 * 50.0 / 2.0);
    EXPECT_TRUE(moved);
}

TEST(Dataset, SplitTail)
{
    Dataset data;
    for (int i = 0; i < 10; ++i)
        data.add(Example{{static_cast<double>(i)}, 1.0});
    const Dataset tail = data.splitTail(0.3);
    EXPECT_EQ(data.size(), 7u);
    EXPECT_EQ(tail.size(), 3u);
    EXPECT_DOUBLE_EQ(tail[0].inputs[0], 7.0);
}

TEST(Dataset, Merge)
{
    Dataset a;
    a.add(Example{{1.0}, 1.0});
    Dataset b;
    b.add(Example{{2.0}, 0.0});
    a.merge(b);
    EXPECT_EQ(a.size(), 2u);
    EXPECT_EQ(a.negativeCount(), 1u);
}

TEST(Trainer, ConvergesOnSeparableData)
{
    Rng rng(11);
    const Dataset train = linearlySeparable(600, rng);
    MlpNetwork net(Topology{2, 4}, rng);
    TrainerConfig config;
    config.max_epochs = 200;
    config.target_error = 0.01;
    const TrainResult result = trainNetwork(net, train, config, rng);
    EXPECT_TRUE(result.converged);
    EXPECT_LE(result.final_error, 0.01);

    Rng rng2(12);
    const Dataset test = linearlySeparable(400, rng2);
    EXPECT_LT(evaluateNetwork(net, test), 0.03);
}

TEST(Trainer, EmptyDatasetIsNoop)
{
    Rng rng(13);
    MlpNetwork net(Topology{2, 2}, rng);
    const auto before = net.weights();
    const TrainResult result =
        trainNetwork(net, Dataset{}, TrainerConfig{}, rng);
    EXPECT_EQ(result.epochs, 0u);
    EXPECT_EQ(net.weights(), before);
}

TEST(Trainer, PatienceStopsStaleTraining)
{
    // Random labels cannot be learned; patience must cut training
    // short of max_epochs.
    Rng rng(14);
    Dataset noise;
    for (int i = 0; i < 200; ++i) {
        noise.add(Example{{rng.uniform(-1, 1), rng.uniform(-1, 1)},
                          rng.chance(0.5) ? 1.0 : 0.0});
    }
    MlpNetwork net(Topology{2, 2}, rng);
    TrainerConfig config;
    config.max_epochs = 5000;
    config.patience = 10;
    config.target_error = 0.0;
    const TrainResult result = trainNetwork(net, noise, config, rng);
    EXPECT_LT(result.epochs, 5000u);
    EXPECT_FALSE(result.converged);
}

TEST(Trainer, EvaluateSplitsByClass)
{
    // A network biased to always answer "valid": false-invalid rate 0,
    // false-valid rate 1.
    MlpNetwork net(Topology{1, 1});
    net.setWeightAt(net.weightCount() - 2, 10.0); // output bias large
    Dataset data;
    data.add(Example{{0.5}, 1.0});
    data.add(Example{{0.5}, 0.0});
    EXPECT_DOUBLE_EQ(evaluateFalseInvalidRate(net, data), 0.0);
    EXPECT_DOUBLE_EQ(evaluateFalseValidRate(net, data), 1.0);
    EXPECT_DOUBLE_EQ(evaluateNetwork(net, data), 0.5);
}

} // namespace
} // namespace act
