/**
 * @file
 * Tests for the i x h x 1 topology search.
 */

#include <gtest/gtest.h>

#include "nn/topology_search.hh"

namespace act
{
namespace
{

/** Dataset factory: XOR over the first two inputs, rest is noise. */
std::pair<Dataset, Dataset>
xorFactory(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed + n);
    auto make = [&](std::size_t count) {
        Dataset data;
        for (std::size_t i = 0; i < count; ++i) {
            std::vector<double> in;
            for (std::size_t j = 0; j < n; ++j)
                in.push_back(rng.chance(0.5) ? 1.0 : -1.0);
            double label = 1.0;
            if (n >= 2)
                label = (in[0] > 0) != (in[1] > 0) ? 1.0 : 0.0;
            data.add(Example{std::move(in), label});
        }
        return data;
    };
    return {make(400), make(200)};
}

TEST(TopologySearch, FindsWorkingTopologyForXor)
{
    TopologySearchConfig config;
    config.min_inputs = 2;
    config.max_inputs = 3;
    config.min_hidden = 1;
    config.max_hidden = 6;
    config.trainer.max_epochs = 300;
    config.trainer.learning_rate = 0.5;

    const TopologySearchResult result = searchTopology(
        [](std::size_t n) { return xorFactory(n, 77); }, config);

    EXPECT_EQ(result.candidates.size(), 2u * 6u);
    EXPECT_LT(result.best_error, 0.1);
    // XOR is not linearly separable: one hidden neuron cannot win.
    EXPECT_GE(result.best.hidden, 2u);
}

TEST(TopologySearch, TieBreakPrefersCheaperHardware)
{
    // All-positive data: every topology reaches zero error; the
    // smallest network must win.
    auto factory = [](std::size_t n) {
        Dataset data;
        for (int i = 0; i < 50; ++i)
            data.add(Example{std::vector<double>(n, 0.5), 1.0});
        return std::make_pair(data, Dataset{});
    };
    TopologySearchConfig config;
    config.min_inputs = 1;
    config.max_inputs = 3;
    config.min_hidden = 1;
    config.max_hidden = 4;
    config.trainer.max_epochs = 50;

    const TopologySearchResult result = searchTopology(factory, config);
    EXPECT_EQ(result.best.hidden, 1u);
    EXPECT_EQ(result.best.inputs, 1u);
    EXPECT_DOUBLE_EQ(result.best_error, 0.0);
}

TEST(TopologySearch, SkipsEmptyDatasets)
{
    auto factory = [](std::size_t n) {
        if (n < 3)
            return std::make_pair(Dataset{}, Dataset{});
        Dataset data;
        for (int i = 0; i < 20; ++i)
            data.add(Example{std::vector<double>(n, 1.0), 1.0});
        return std::make_pair(data, Dataset{});
    };
    TopologySearchConfig config;
    config.min_inputs = 1;
    config.max_inputs = 3;
    config.min_hidden = 1;
    config.max_hidden = 2;
    config.trainer.max_epochs = 20;

    const TopologySearchResult result = searchTopology(factory, config);
    // Only n == 3 contributed candidates.
    EXPECT_EQ(result.candidates.size(), 2u);
    EXPECT_EQ(result.best.inputs, 3u);
}

TEST(TopologySearch, ToStringFormat)
{
    EXPECT_EQ(topologyToString(Topology{3, 5}), "3x5x1");
    EXPECT_EQ(topologyToString(Topology{10, 10}), "10x10x1");
}

} // namespace
} // namespace act
