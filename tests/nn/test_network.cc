/**
 * @file
 * Tests for the one-hidden-layer MLP.
 */

#include <gtest/gtest.h>

#include "nn/network.hh"

namespace act
{
namespace
{

TEST(Sigmoid, KnownValues)
{
    EXPECT_DOUBLE_EQ(sigmoid(0.0), 0.5);
    EXPECT_NEAR(sigmoid(10.0), 1.0, 1e-4);
    EXPECT_NEAR(sigmoid(-10.0), 0.0, 1e-4);
    EXPECT_NEAR(sigmoid(1.0) + sigmoid(-1.0), 1.0, 1e-12);
}

TEST(Topology, Validity)
{
    EXPECT_TRUE((Topology{1, 1}).valid());
    EXPECT_TRUE((Topology{kMaxFanIn, kMaxFanIn}).valid());
    EXPECT_FALSE((Topology{0, 5}).valid());
    EXPECT_FALSE((Topology{5, 0}).valid());
    EXPECT_FALSE((Topology{kMaxFanIn + 1, 5}).valid());
    EXPECT_FALSE((Topology{5, kMaxFanIn + 1}).valid());
}

TEST(MlpNetwork, WeightCountMatchesLayout)
{
    Rng rng(1);
    const MlpNetwork net(Topology{3, 5}, rng);
    // 5 hidden neurons x (3 weights + bias) + output (5 weights + bias).
    EXPECT_EQ(net.weightCount(), 5u * 4u + 6u);
}

TEST(MlpNetwork, ZeroWeightsOutputHalf)
{
    const MlpNetwork net(Topology{4, 6});
    const std::vector<double> in{0.3, -0.7, 1.0, 0.0};
    EXPECT_DOUBLE_EQ(net.infer(in), 0.5);
    EXPECT_DOUBLE_EQ(net.confidence(in), 0.0);
    EXPECT_TRUE(net.predictValid(in)); // boundary counts as valid
}

TEST(MlpNetwork, OutputAlwaysInUnitInterval)
{
    Rng rng(2);
    const MlpNetwork net(Topology{2, 8}, rng);
    Rng inputs(3);
    for (int i = 0; i < 200; ++i) {
        const std::vector<double> in{inputs.uniform(-10, 10),
                                     inputs.uniform(-10, 10)};
        const double out = net.infer(in);
        EXPECT_GT(out, 0.0);
        EXPECT_LT(out, 1.0);
    }
}

TEST(MlpNetwork, TrainStepMovesOutputTowardTarget)
{
    Rng rng(4);
    MlpNetwork net(Topology{2, 4}, rng);
    const std::vector<double> in{0.5, -0.5};
    const double before = net.infer(in);
    net.train(in, 1.0, 0.5);
    EXPECT_GT(net.infer(in), before);
    const double mid = net.infer(in);
    net.train(in, 0.0, 0.5);
    EXPECT_LT(net.infer(in), mid);
}

TEST(MlpNetwork, TrainReturnsPreUpdateOutput)
{
    Rng rng(5);
    MlpNetwork net(Topology{2, 4}, rng);
    const std::vector<double> in{0.2, 0.8};
    const double inferred = net.infer(in);
    const double reported = net.train(in, 1.0, 0.2);
    EXPECT_DOUBLE_EQ(reported, inferred);
}

TEST(MlpNetwork, LearnsXor)
{
    // XOR requires the hidden layer: a classic sanity check that
    // back-propagation through both layers works.
    Rng rng(6);
    MlpNetwork net(Topology{2, 4}, rng);
    const std::vector<std::pair<std::vector<double>, double>> xo = {
        {{-1.0, -1.0}, 0.0},
        {{-1.0, 1.0}, 1.0},
        {{1.0, -1.0}, 1.0},
        {{1.0, 1.0}, 0.0},
    };
    for (int epoch = 0; epoch < 4000; ++epoch) {
        for (const auto &[in, target] : xo)
            net.train(in, target, 0.5);
    }
    for (const auto &[in, target] : xo) {
        EXPECT_EQ(net.infer(in) >= 0.5, target >= 0.5)
            << in[0] << "," << in[1];
    }
}

TEST(MlpNetwork, WeightsRoundTrip)
{
    Rng rng(7);
    MlpNetwork a(Topology{3, 5}, rng);
    MlpNetwork b(Topology{3, 5});
    b.setWeights(a.weights());
    const std::vector<double> in{0.1, 0.2, 0.3};
    EXPECT_DOUBLE_EQ(a.infer(in), b.infer(in));
}

TEST(MlpNetwork, WeightAtAccessors)
{
    MlpNetwork net(Topology{2, 2});
    net.setWeightAt(0, 0.75);
    EXPECT_DOUBLE_EQ(net.weightAt(0), 0.75);
    net.setWeightAt(net.weightCount() - 1, -0.5);
    EXPECT_DOUBLE_EQ(net.weightAt(net.weightCount() - 1), -0.5);
}

TEST(MlpNetwork, DeterministicConstruction)
{
    Rng rng1(42);
    Rng rng2(42);
    const MlpNetwork a(Topology{4, 4}, rng1);
    const MlpNetwork b(Topology{4, 4}, rng2);
    EXPECT_EQ(a.weights(), b.weights());
}

} // namespace
} // namespace act
