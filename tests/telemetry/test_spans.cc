/**
 * @file
 * Tests for the span tracer and its Chrome trace_event export.
 *
 * The export is consumed by chrome://tracing and Perfetto, so the
 * schema smoke test here pins exactly what those viewers require:
 * valid JSON, a traceEvents array, string name/ph, numeric ts/tid,
 * and — because per-thread logs share one steady clock — timestamps
 * monotone non-decreasing within each tid.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "telemetry/json.hh"
#include "telemetry/spans.hh"

namespace act::telemetry
{
namespace
{

TEST(SpanTracer, DormantRecordsNothing)
{
    SpanTracer tracer;
    EXPECT_FALSE(tracer.enabled());
    {
        ScopedSpan span(tracer, "work", "test");
        EXPECT_FALSE(span.active());
        span.annotate(arg("k", std::uint64_t{1}));
    }
    tracer.instant("marker", "test");
    tracer.complete("span", "test", 0, 10);
    EXPECT_EQ(tracer.eventCount(), 0u);
}

TEST(SpanTracer, RecordsSpansAndInstants)
{
    SpanTracer tracer;
    tracer.setEnabled(true);
    {
        ScopedSpan span(tracer, "outer", "test");
        EXPECT_TRUE(span.active());
        span.annotate(arg("job", std::uint64_t{7}));
        span.annotate(arg("kind", std::string("smoke")));
        ScopedSpan inner(tracer, "inner", "test");
    }
    tracer.instant("flip", "test", {arg("to", std::string("testing"))});
    EXPECT_EQ(tracer.eventCount(), 3u);

    tracer.clear();
    EXPECT_EQ(tracer.eventCount(), 0u);
}

/** Parse chromeJson() and fail loudly on malformed output. */
std::unique_ptr<JsonValue>
parseExport(const SpanTracer &tracer)
{
    std::string error;
    auto root = parseJson(tracer.chromeJson(), &error);
    EXPECT_NE(root, nullptr) << "chromeJson not valid JSON: " << error;
    return root;
}

TEST(SpanTracer, ChromeExportSchema)
{
    SpanTracer tracer;
    tracer.setEnabled(true);
    tracer.nameThread("main");
    {
        ScopedSpan outer(tracer, "outer", "test");
        ScopedSpan inner(tracer, "inner", "test");
        inner.annotate(arg("n", std::uint64_t{42}));
    }
    tracer.instant("marker", "test");

    const auto root = parseExport(tracer);
    ASSERT_NE(root, nullptr);
    const JsonValue *events = root->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    std::size_t metadata = 0;
    std::size_t complete = 0;
    std::size_t instant = 0;
    for (const JsonValue &event : events->array) {
        ASSERT_TRUE(event.isObject());
        const JsonValue *name = event.find("name");
        const JsonValue *phase = event.find("ph");
        ASSERT_NE(name, nullptr);
        ASSERT_NE(phase, nullptr);
        ASSERT_TRUE(name->isString());
        ASSERT_TRUE(phase->isString());
        if (phase->text == "M") {
            ++metadata;
            continue;
        }
        const JsonValue *ts = event.find("ts");
        const JsonValue *tid = event.find("tid");
        ASSERT_NE(ts, nullptr);
        ASSERT_NE(tid, nullptr);
        EXPECT_TRUE(ts->isNumber());
        EXPECT_TRUE(tid->isNumber());
        if (phase->text == "X") {
            ++complete;
            EXPECT_NE(event.find("dur"), nullptr);
        } else if (phase->text == "i") {
            ++instant;
        }
        if (name->text == "inner") {
            const JsonValue *args = event.find("args");
            ASSERT_NE(args, nullptr);
            const JsonValue *n = args->find("n");
            ASSERT_NE(n, nullptr);
            EXPECT_EQ(n->asU64(), 42u);
        }
    }
    // Process-name and thread-name metadata, two spans, one instant.
    EXPECT_GE(metadata, 2u);
    EXPECT_EQ(complete, 2u);
    EXPECT_EQ(instant, 1u);
}

TEST(SpanTracer, TimestampsMonotonePerThread)
{
    SpanTracer tracer;
    tracer.setEnabled(true);

    // Nested spans close outer-after-inner, so raw append order is not
    // time order — the export must still come out sorted per thread.
    // Several worker threads interleave to make the property earn its
    // keep (run under TSan in CI).
    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t) {
        threads.emplace_back([&tracer, t] {
            tracer.nameThread("worker-" + std::to_string(t));
            for (int i = 0; i < 20; ++i) {
                ScopedSpan outer(tracer, "outer", "test");
                ScopedSpan inner(tracer, "inner", "test");
                tracer.instant("tick", "test");
            }
        });
    }
    for (auto &t : threads)
        t.join();

    const auto root = parseExport(tracer);
    ASSERT_NE(root, nullptr);
    const JsonValue *events = root->find("traceEvents");
    ASSERT_NE(events, nullptr);

    std::map<std::uint64_t, double> last_ts;
    std::size_t timed = 0;
    for (const JsonValue &event : events->array) {
        const JsonValue *phase = event.find("ph");
        ASSERT_NE(phase, nullptr);
        if (phase->text == "M")
            continue;
        ++timed;
        const std::uint64_t tid = event.find("tid")->asU64();
        const double ts = event.find("ts")->number;
        const auto it = last_ts.find(tid);
        if (it != last_ts.end())
            EXPECT_GE(ts, it->second);
        last_ts[tid] = ts;
    }
    EXPECT_EQ(timed, 3u * 20u * 3u);
    EXPECT_EQ(last_ts.size(), 3u); // one tid per worker
}

TEST(SpanTracer, NowUsAdvances)
{
    SpanTracer tracer;
    const std::uint64_t a = tracer.nowUs();
    const std::uint64_t b = tracer.nowUs();
    EXPECT_GE(b, a);
}

} // namespace
} // namespace act::telemetry
