/**
 * @file
 * Tests for the thread-sharded metrics registry.
 *
 * Pins the three contracts the telemetry subsystem ships with: the
 * dormancy contract (disabled = no observable effect), the determinism
 * contract (stable counters sum identically regardless of how work is
 * sharded across threads), and exactness under concurrency (relaxed
 * per-shard increments must still merge to the precise total — run
 * under TSan in CI).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "telemetry/metrics.hh"

namespace act::telemetry
{
namespace
{

TEST(MetricsRegistry, DormantByDefaultAndRecordingIsNoOp)
{
    MetricsRegistry reg;
    EXPECT_FALSE(reg.enabled());

    // Registration is allowed while disabled (call sites cache handles
    // in local statics long before anyone passes --metrics-out).
    Counter c = reg.counter("test.counter");
    Gauge g = reg.gauge("test.gauge");
    LatencyHistogram h = reg.histogram("test.hist");

    c.add(5);
    g.inc();
    h.record(100);

    const Snapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counterValue("test.counter"), 0u);
    EXPECT_EQ(snap.gauges.at("test.gauge"), 0);
    EXPECT_EQ(snap.histograms.at("test.hist").count, 0u);
}

TEST(MetricsRegistry, DefaultConstructedHandlesAreInert)
{
    Counter c;
    Gauge g;
    LatencyHistogram h;
    // Must not crash; there is no registry behind them.
    c.inc();
    g.dec();
    h.record(7);
}

TEST(MetricsRegistry, CountsAfterEnable)
{
    MetricsRegistry reg;
    reg.setEnabled(true);
    Counter c = reg.counter("test.counter");
    c.add(3);
    c.inc();
    EXPECT_EQ(reg.snapshot().counterValue("test.counter"), 4u);
}

TEST(MetricsRegistry, RegistrationIsIdempotent)
{
    MetricsRegistry reg;
    reg.setEnabled(true);
    Counter a = reg.counter("same.name");
    Counter b = reg.counter("same.name");
    a.add(2);
    b.add(3);
    // Same name -> same slot: both handles feed one counter.
    EXPECT_EQ(reg.snapshot().counterValue("same.name"), 5u);
}

TEST(MetricsRegistry, StabilityPartitionsTheSnapshot)
{
    MetricsRegistry reg;
    reg.setEnabled(true);
    reg.counter("a.stable", Stability::kStable).add(1);
    reg.counter("a.volatile", Stability::kVolatile).add(2);

    const Snapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counters.count("a.stable"), 1u);
    EXPECT_EQ(snap.counters.count("a.volatile"), 0u);
    EXPECT_EQ(snap.volatile_counters.count("a.volatile"), 1u);
    // counterValue finds both sections.
    EXPECT_EQ(snap.counterValue("a.stable"), 1u);
    EXPECT_EQ(snap.counterValue("a.volatile"), 2u);
    EXPECT_EQ(snap.counterValue("missing"), 0u);
}

TEST(MetricsRegistry, GaugeTracksLevelAcrossThreads)
{
    MetricsRegistry reg;
    reg.setEnabled(true);
    Gauge g = reg.gauge("test.level");
    g.add(10);

    // A different thread decrements: the level is the signed sum of
    // per-shard deltas, so the snapshot must reconstruct 10 - 4 = 6.
    std::thread t([&] { g.add(-4); });
    t.join();
    EXPECT_EQ(reg.snapshot().gauges.at("test.level"), 6);
}

TEST(MetricsRegistry, ConcurrentCountsAreExact)
{
    MetricsRegistry reg;
    reg.setEnabled(true);
    Counter c = reg.counter("stress.counter");
    Gauge g = reg.gauge("stress.gauge");
    LatencyHistogram h = reg.histogram("stress.hist");

    constexpr int kThreads = 4;
    constexpr std::uint64_t kPerThread = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                c.inc();
                g.inc();
                if (i % 2 == 0)
                    g.dec();
                h.record(i & 0xff);
            }
        });
    }
    for (auto &t : threads)
        t.join();

    const Snapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counterValue("stress.counter"), kThreads * kPerThread);
    EXPECT_EQ(snap.gauges.at("stress.gauge"), kThreads * kPerThread / 2);
    EXPECT_EQ(snap.histograms.at("stress.hist").count,
              kThreads * kPerThread);
}

TEST(MetricsRegistry, ShardingIsInvisibleInTheSnapshot)
{
    // The determinism contract in miniature: the same logical work,
    // split across 1 vs 4 threads, must produce byte-identical stable
    // counter text.
    const auto run = [](int threads) {
        MetricsRegistry reg;
        reg.setEnabled(true);
        Counter c = reg.counter("work.items");
        LatencyHistogram h = reg.histogram("work.cost");
        constexpr std::uint64_t kTotal = 12000;
        std::vector<std::thread> pool;
        for (int t = 0; t < threads; ++t) {
            pool.emplace_back([&, t] {
                for (std::uint64_t i = t; i < kTotal;
                     i += static_cast<std::uint64_t>(threads)) {
                    c.inc();
                    h.record(i % 37);
                }
            });
        }
        for (auto &t : pool)
            t.join();
        return reg.snapshot();
    };

    const Snapshot narrow = run(1);
    const Snapshot wide = run(4);
    EXPECT_EQ(stableCountersText(narrow), stableCountersText(wide));
    EXPECT_EQ(narrow.histograms.at("work.cost").buckets,
              wide.histograms.at("work.cost").buckets);
    EXPECT_EQ(narrow.histograms.at("work.cost").sum,
              wide.histograms.at("work.cost").sum);
}

TEST(LatencyHistogramTest, BucketBoundaryProperty)
{
    // bucketOf is bit_width: bucket i holds [2^(i-1), 2^i - 1] for
    // i >= 1 and {0} for i == 0. Check the defining inequalities at
    // every power-of-two boundary.
    EXPECT_EQ(LatencyHistogram::bucketOf(0), 0u);
    EXPECT_EQ(LatencyHistogram::bucketUpperBound(0), 0u);
    for (std::uint32_t bit = 0; bit < 64; ++bit) {
        const std::uint64_t lo = std::uint64_t{1} << bit;
        EXPECT_EQ(LatencyHistogram::bucketOf(lo), bit + 1);
        EXPECT_EQ(LatencyHistogram::bucketOf(lo + (lo - 1)), bit + 1);
        // Every value is <= its bucket's upper bound and > the
        // previous bucket's.
        const std::uint32_t bucket = LatencyHistogram::bucketOf(lo);
        EXPECT_LE(lo, LatencyHistogram::bucketUpperBound(bucket));
        EXPECT_GT(lo, LatencyHistogram::bucketUpperBound(bucket - 1));
    }
    EXPECT_EQ(LatencyHistogram::bucketOf(~std::uint64_t{0}), 64u);
    EXPECT_EQ(LatencyHistogram::bucketUpperBound(64), ~std::uint64_t{0});
}

TEST(LatencyHistogramTest, SnapshotBucketsAreSparseAndExact)
{
    MetricsRegistry reg;
    reg.setEnabled(true);
    LatencyHistogram h = reg.histogram("t.hist");
    h.record(0);  // bucket 0
    h.record(1);  // bucket 1
    h.record(1);  // bucket 1
    h.record(5);  // bucket 3
    h.record(5);
    h.record(5);

    const HistogramSnapshot snap =
        reg.snapshot().histograms.at("t.hist");
    EXPECT_EQ(snap.count, 6u);
    EXPECT_EQ(snap.sum, 0u + 1 + 1 + 5 + 5 + 5);
    const std::vector<std::pair<std::uint32_t, std::uint64_t>> want = {
        {0, 1}, {1, 2}, {3, 3}};
    EXPECT_EQ(snap.buckets, want);
    EXPECT_DOUBLE_EQ(snap.mean(), 17.0 / 6.0);
}

TEST(SnapshotDiff, SubtractsCountersAndSaturates)
{
    MetricsRegistry reg;
    reg.setEnabled(true);
    Counter c = reg.counter("d.counter");
    LatencyHistogram h = reg.histogram("d.hist");
    c.add(10);
    h.record(4);
    const Snapshot older = reg.snapshot();
    c.add(7);
    h.record(4);
    h.record(9);
    const Snapshot newer = reg.snapshot();

    const Snapshot delta = diffSnapshots(newer, older);
    EXPECT_EQ(delta.counterValue("d.counter"), 7u);
    EXPECT_EQ(delta.histograms.at("d.hist").count, 2u);
    EXPECT_EQ(delta.histograms.at("d.hist").sum, 13u);

    // Reversed operands saturate at zero instead of wrapping: mixing
    // snapshots from distinct registries must not explode.
    const Snapshot backwards = diffSnapshots(older, newer);
    EXPECT_EQ(backwards.counterValue("d.counter"), 0u);
}

TEST(SnapshotText, StableCountersAreCanonicalLines)
{
    MetricsRegistry reg;
    reg.setEnabled(true);
    reg.counter("b.second").add(2);
    reg.counter("a.first").add(1);
    reg.counter("z.volatile", Stability::kVolatile).add(9);

    // Sorted by name (std::map order), volatile section excluded.
    EXPECT_EQ(stableCountersText(reg.snapshot()),
              "a.first 1\nb.second 2\n");
}

TEST(SnapshotJsonTest, CarriesSchemaAndSections)
{
    MetricsRegistry reg;
    reg.setEnabled(true);
    reg.counter("j.count").add(3);
    reg.gauge("j.gauge").add(-2);
    reg.histogram("j.hist").record(6);

    const std::string json = snapshotJson(reg.snapshot());
    EXPECT_NE(json.find("\"schema\": \"act-metrics-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"j.count\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"j.gauge\": -2"), std::string::npos);
    EXPECT_NE(json.find("\"j.hist\""), std::string::npos);
}

} // namespace
} // namespace act::telemetry
