/**
 * @file
 * Round-trip tests for the bench report's telemetry section.
 *
 * The section is new in the "act-bench-trend-v1" format, so the tests
 * pin both directions of compatibility: old reports (no telemetry key)
 * still load, and new reports survive a write→load round trip with the
 * telemetry rows intact — while compareReports keeps ignoring them.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "bench/bench_json.hh"

namespace act::bench
{
namespace
{

std::string
tempPath(const char *name)
{
    const char *dir = std::getenv("TMPDIR");
    std::string base = dir != nullptr ? dir : "/tmp";
    if (!base.empty() && base.back() != '/')
        base += '/';
    return base + name;
}

TEST(BenchJsonTelemetry, RoundTripsThroughDisk)
{
    BenchReport report;
    report.build_type = "Release";
    report.results.push_back({"micro_a", 12.5, 8.0e7, 1000});
    report.wall_clock.push_back({"campaign_smoke", 450.5});
    report.telemetry.push_back({"campaign_smoke_sim_events_per_s", 6100.25});
    report.telemetry.push_back({"campaign_smoke_jobs_ok", 15.0});

    const std::string path = tempPath("act_test_bench_telemetry.json");
    ASSERT_TRUE(writeBenchReport(report, path));

    BenchReport loaded;
    ASSERT_TRUE(loadBenchReport(path, loaded));
    std::remove(path.c_str());

    ASSERT_EQ(loaded.telemetry.size(), 2u);
    EXPECT_EQ(loaded.telemetry[0].name, "campaign_smoke_sim_events_per_s");
    EXPECT_DOUBLE_EQ(loaded.telemetry[0].value, 6100.25);
    EXPECT_EQ(loaded.telemetry[1].name, "campaign_smoke_jobs_ok");
    EXPECT_DOUBLE_EQ(loaded.telemetry[1].value, 15.0);
    ASSERT_EQ(loaded.results.size(), 1u);
    EXPECT_DOUBLE_EQ(loaded.results[0].events_per_s, 8.0e7);
}

TEST(BenchJsonTelemetry, OldReportsWithoutSectionStillLoad)
{
    const std::string path = tempPath("act_test_bench_old.json");
    {
        std::ofstream out(path);
        out << R"({
  "schema": "act-bench-trend-v1",
  "build_type": "Release",
  "results": [
    {"name": "micro_a", "ns_per_op": 10, "events_per_s": 1e8,
     "iterations": 64}
  ],
  "wall_clock": []
})";
    }
    BenchReport loaded;
    ASSERT_TRUE(loadBenchReport(path, loaded));
    std::remove(path.c_str());
    EXPECT_TRUE(loaded.telemetry.empty());
    EXPECT_EQ(loaded.results.size(), 1u);
}

TEST(BenchJsonTelemetry, UnknownKeysInEntriesAreSkipped)
{
    const std::string path = tempPath("act_test_bench_future.json");
    {
        std::ofstream out(path);
        out << R"({
  "schema": "act-bench-trend-v1",
  "build_type": "Release",
  "results": [],
  "wall_clock": [],
  "telemetry": [
    {"name": "x", "value": 2.5, "unit": "events/s", "extra": [1, 2]}
  ]
})";
    }
    BenchReport loaded;
    ASSERT_TRUE(loadBenchReport(path, loaded));
    std::remove(path.c_str());
    ASSERT_EQ(loaded.telemetry.size(), 1u);
    EXPECT_EQ(loaded.telemetry[0].name, "x");
    EXPECT_DOUBLE_EQ(loaded.telemetry[0].value, 2.5);
}

TEST(BenchJsonTelemetry, CompareReportsIgnoresTelemetry)
{
    BenchReport current;
    BenchReport baseline;
    current.results.push_back({"micro_a", 10.0, 1.0e8, 64});
    baseline.results.push_back({"micro_a", 10.0, 1.0e8, 64});
    // Wildly different telemetry must not create or flag entries.
    current.telemetry.push_back({"campaign_smoke_sim_events_per_s", 1.0});
    baseline.telemetry.push_back(
        {"campaign_smoke_sim_events_per_s", 1.0e9});

    const auto trend = compareReports(current, baseline, 0.3);
    ASSERT_EQ(trend.size(), 1u);
    EXPECT_EQ(trend[0].name, "micro_a");
    EXPECT_FALSE(trend[0].regression);
}

} // namespace
} // namespace act::bench
