/**
 * @file
 * Tests for the minimal JSON value-tree parser.
 *
 * The parser validates actstat inputs and the telemetry export tests,
 * so the suite leans on rejection behaviour: malformed documents must
 * fail with a diagnostic, never parse to something plausible.
 */

#include <gtest/gtest.h>

#include <string>

#include "telemetry/json.hh"

namespace act::telemetry
{
namespace
{

TEST(JsonParser, ParsesScalars)
{
    EXPECT_TRUE(parseJson("null")->isNull());
    EXPECT_TRUE(parseJson("true")->boolean);
    EXPECT_FALSE(parseJson("false")->boolean);
    EXPECT_DOUBLE_EQ(parseJson("-12.5e2")->number, -1250.0);
    EXPECT_EQ(parseJson("\"hi\"")->text, "hi");
}

TEST(JsonParser, ParsesNestedStructure)
{
    const auto root = parseJson(
        R"({"a": [1, 2, {"b": null}], "c": {"d": true}, "e": "x"})");
    ASSERT_NE(root, nullptr);
    ASSERT_TRUE(root->isObject());
    const JsonValue *a = root->find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->array.size(), 3u);
    EXPECT_EQ(a->array[1].asU64(), 2u);
    EXPECT_TRUE(a->array[2].find("b")->isNull());
    EXPECT_TRUE(root->find("c")->find("d")->boolean);
    EXPECT_EQ(root->find("missing"), nullptr);
}

TEST(JsonParser, ObjectKeysKeepDocumentOrder)
{
    const auto root = parseJson(R"({"z": 1, "a": 2, "m": 3})");
    ASSERT_NE(root, nullptr);
    ASSERT_EQ(root->object.size(), 3u);
    EXPECT_EQ(root->object[0].first, "z");
    EXPECT_EQ(root->object[1].first, "a");
    EXPECT_EQ(root->object[2].first, "m");
}

TEST(JsonParser, DecodesEscapes)
{
    const auto root = parseJson(R"("a\"b\\c\nd\teAé")");
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(root->text, "a\"b\\c\nd\teA\xc3\xa9");
}

TEST(JsonParser, AsU64Semantics)
{
    EXPECT_EQ(parseJson("42")->asU64(), 42u);
    EXPECT_EQ(parseJson("-3")->asU64(), 0u);   // negatives clamp
    EXPECT_EQ(parseJson("\"7\"")->asU64(), 0u); // non-numbers are 0
}

TEST(JsonParser, RejectsMalformedInput)
{
    std::string error;
    EXPECT_EQ(parseJson("", &error), nullptr);
    EXPECT_EQ(parseJson("{", &error), nullptr);
    EXPECT_EQ(parseJson("[1, 2", &error), nullptr);
    EXPECT_EQ(parseJson("\"unterminated", &error), nullptr);
    EXPECT_EQ(parseJson("{\"a\" 1}", &error), nullptr);
    EXPECT_EQ(parseJson("nul", &error), nullptr);
    EXPECT_EQ(parseJson("{\"a\": 1,}", &error), nullptr);
    EXPECT_FALSE(error.empty());
}

TEST(JsonParser, RejectsTrailingGarbage)
{
    std::string error;
    EXPECT_EQ(parseJson("{} extra", &error), nullptr);
    EXPECT_NE(error.find("trailing"), std::string::npos) << error;
    // Trailing whitespace is fine.
    EXPECT_NE(parseJson("{}  \n"), nullptr);
}

TEST(JsonParser, EnforcesDepthLimit)
{
    // 64 levels parse; 80 must be rejected, not overflow the stack.
    std::string deep_ok(40, '[');
    deep_ok += std::string(40, ']');
    EXPECT_NE(parseJson(deep_ok), nullptr);

    std::string too_deep(80, '[');
    too_deep += std::string(80, ']');
    std::string error;
    EXPECT_EQ(parseJson(too_deep, &error), nullptr);
    EXPECT_FALSE(error.empty());
}

TEST(JsonParser, ErrorsCarryOffsets)
{
    std::string error;
    EXPECT_EQ(parseJson("{\"a\": !}", &error), nullptr);
    // The diagnostic must point at the document, not just say "bad".
    EXPECT_NE(error.find("offset"), std::string::npos) << error;
}

} // namespace
} // namespace act::telemetry
