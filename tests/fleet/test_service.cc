/**
 * @file
 * End-to-end tests of the fleet streaming service: the determinism
 * contract (shard-count invariance, streaming-vs-batch equivalence)
 * and the never-silent shed backpressure accounting.
 */

#include <gtest/gtest.h>

#include <string>

#include "fleet/service.hh"
#include "workloads/kernel.hh"
#include "workloads/workload.hh"

namespace act::fleet
{
namespace
{

FleetConfig
smallConfig()
{
    FleetConfig config;
    config.clients = 6;
    config.shards = 2;
    config.seed = 11;
    config.scale = 1;
    config.repeat = 2;
    config.block_events = 128;
    config.queue_blocks = 8;
    config.batch_max = 16;
    return config;
}

TEST(FleetService, FinalReportInvariantAcrossShardCounts)
{
    FleetConfig config = smallConfig();
    config.shards = 1;
    const std::string one =
        runFleetService(config).report.toText(config.top_k);

    config.shards = 4;
    const std::string four =
        runFleetService(config).report.toText(config.top_k);

    EXPECT_EQ(one, four);
    EXPECT_NE(one.find("fleet diagnosis report"), std::string::npos);
}

TEST(FleetService, StreamingMatchesBatchReplayByteForByte)
{
    const FleetConfig config = smallConfig();
    const std::string streamed =
        runFleetService(config).report.toText(config.top_k);
    const std::string batch =
        replayFleetBatch(config).report.toText(config.top_k);
    EXPECT_EQ(streamed, batch);
}

TEST(FleetService, EnsembleShardsKeepTheDeterminismContract)
{
    // With K = 2 member networks per shard the quorum vote changes
    // which sequences get flagged, but the determinism contract is
    // unchanged: shard-count invariance and streaming == batch replay,
    // byte for byte.
    FleetConfig config = smallConfig();
    config.ensemble_members = 2;

    config.shards = 1;
    const std::string one =
        runFleetService(config).report.toText(config.top_k);
    config.shards = 4;
    const std::string four =
        runFleetService(config).report.toText(config.top_k);
    EXPECT_EQ(one, four);

    const std::string batch =
        replayFleetBatch(config).report.toText(config.top_k);
    EXPECT_EQ(one, batch);
}

TEST(FleetService, MemFrontEndIsAlsoShardInvariant)
{
    FleetConfig config = smallConfig();
    config.clients = 4;
    config.front = FrontEnd::kMem;

    config.shards = 3;
    const std::string streamed =
        runFleetService(config).report.toText(config.top_k);
    const std::string batch =
        replayFleetBatch(config).report.toText(config.top_k);
    EXPECT_EQ(streamed, batch);
}

TEST(FleetService, ReportCountsMatchTheOfferedLoad)
{
    const FleetConfig config = smallConfig();
    const FleetResult result = runFleetService(config);

    // Under kBlock nothing is dropped, so the ingested totals must
    // equal the recorded traces times the repeat count.
    registerAllWorkloads();
    std::uint64_t expected_events = 0;
    const auto names = predictionKernelNames();
    for (std::uint32_t c = 0; c < config.clients; ++c) {
        WorkloadParams params;
        params.seed = config.seed + c;
        params.scale = config.scale;
        const auto workload = makeWorkload(names[c % names.size()]);
        expected_events +=
            workload->record(params).events().size() * config.repeat;
    }
    EXPECT_EQ(result.report.totals.events, expected_events);
    EXPECT_EQ(result.report.totals.events_dropped, 0u);
    EXPECT_EQ(result.report.totals.blocks_dropped, 0u);
    EXPECT_EQ(result.report.totals.clients, config.clients);
    EXPECT_GT(result.report.totals.dependences, 0u);
    EXPECT_GT(result.report.totals.predictions, 0u);
}

TEST(FleetService, ShedBackpressureCountsEveryDropExactly)
{
    // Capacity-1 queues and a single shard under many clients: heavy
    // shedding. The property: ingested + dropped == offered, exactly,
    // for both events and blocks — and the run terminates (no
    // deadlock between shedding producers and the consumer).
    FleetConfig config = smallConfig();
    config.clients = 8;
    config.shards = 1;
    config.repeat = 4;
    config.queue_blocks = 1;
    config.backpressure = Backpressure::kShed;
    const FleetResult result = runFleetService(config);

    registerAllWorkloads();
    std::uint64_t offered_events = 0;
    std::uint64_t offered_blocks = 0;
    const auto names = predictionKernelNames();
    for (std::uint32_t c = 0; c < config.clients; ++c) {
        WorkloadParams params;
        params.seed = config.seed + c;
        params.scale = config.scale;
        const auto workload = makeWorkload(names[c % names.size()]);
        const std::uint64_t events =
            workload->record(params).events().size();
        offered_events += events * config.repeat;
        offered_blocks += (events + config.block_events - 1) /
                          config.block_events * config.repeat;
    }
    const FleetTotals &totals = result.report.totals;
    EXPECT_EQ(totals.events + totals.events_dropped, offered_events);
    EXPECT_EQ(totals.blocks + totals.blocks_dropped, offered_blocks);
    EXPECT_GT(totals.events, 0u);
}

TEST(FleetService, LintingAcceptsWorkloadBlocks)
{
    FleetConfig config = smallConfig();
    config.clients = 3;
    config.lint_blocks = true;
    const FleetResult result = runFleetService(config);
    EXPECT_EQ(result.report.totals.lint_rejects, 0u);
    EXPECT_GT(result.report.totals.events, 0u);
}

TEST(FleetService, EpochReportsAreEmittedOnLongRuns)
{
    FleetConfig config = smallConfig();
    config.clients = 4;
    config.shards = 2;
    config.repeat = 0;
    config.duration_s = 0.4;
    config.epoch_s = 0.1;

    std::FILE *sink = std::tmpfile();
    ASSERT_NE(sink, nullptr);
    const FleetResult result = runFleetService(config, sink);
    std::fclose(sink);
    EXPECT_GE(result.epochs, 1u);
    EXPECT_GT(result.report.totals.events, 0u);
}

} // namespace
} // namespace act::fleet
