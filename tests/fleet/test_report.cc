/**
 * @file
 * Tests for the mergeable fleet report: suspect accounting, the
 * order-independence of merge, and the deterministic text rendering.
 */

#include <gtest/gtest.h>

#include "fleet/report.hh"

namespace act::fleet
{
namespace
{

TEST(FleetReport, AddSuspectTracksCountAndMinRaw)
{
    FleetReport report;
    report.addSuspect(0x100, 0x200, -0.25);
    report.addSuspect(0x100, 0x200, -0.75);
    report.addSuspect(0x100, 0x200, -0.50);

    const SuspectStat &stat = report.suspects.at({0x100, 0x200});
    EXPECT_EQ(stat.count, 3u);
    EXPECT_DOUBLE_EQ(stat.min_raw, -0.75);
}

TEST(FleetReport, PositiveRawIsStillTrackedAsMin)
{
    // min_raw must initialise from the first sample, not from the
    // zero default (a pair whose outputs are all positive would
    // otherwise report a spurious 0.0 minimum).
    FleetReport report;
    report.addSuspect(0x1, 0x2, 0.4);
    report.addSuspect(0x1, 0x2, 0.6);
    EXPECT_DOUBLE_EQ(report.suspects.at({0x1, 0x2}).min_raw, 0.4);
}

TEST(FleetReport, MergeSumsTotalsAndFoldsSuspects)
{
    FleetReport a;
    a.totals.events = 10;
    a.totals.flagged = 2;
    a.addSuspect(0x100, 0x200, -0.5);
    a.addSuspect(0x300, 0x400, -0.1);

    FleetReport b;
    b.totals.events = 5;
    b.totals.flagged = 1;
    b.addSuspect(0x100, 0x200, -0.9);

    FleetReport ab = a;
    ab.merge(b);
    EXPECT_EQ(ab.totals.events, 15u);
    EXPECT_EQ(ab.totals.flagged, 3u);
    EXPECT_EQ(ab.suspects.size(), 2u);
    EXPECT_EQ(ab.suspects.at({0x100, 0x200}).count, 2u);
    EXPECT_DOUBLE_EQ(ab.suspects.at({0x100, 0x200}).min_raw, -0.9);

    // Order independence: b.merge(a) renders identically.
    FleetReport ba = b;
    ba.merge(a);
    EXPECT_EQ(ab.toText(10), ba.toText(10));
}

TEST(FleetReport, ToTextRanksByCountThenMinRaw)
{
    FleetReport report;
    report.addSuspect(0xa, 0xb, -0.2);
    report.addSuspect(0xa, 0xb, -0.2); // count 2
    report.addSuspect(0xc, 0xd, -0.9); // count 1, more negative
    report.addSuspect(0xe, 0xf, -0.1); // count 1

    const std::string text = report.toText(10);
    const std::size_t first = text.find("store=0xa");
    const std::size_t second = text.find("store=0xc");
    const std::size_t third = text.find("store=0xe");
    ASSERT_NE(first, std::string::npos);
    ASSERT_NE(second, std::string::npos);
    ASSERT_NE(third, std::string::npos);
    EXPECT_LT(first, second);
    EXPECT_LT(second, third);
}

TEST(FleetReport, ToTextHonoursTopK)
{
    FleetReport report;
    for (std::uint64_t i = 0; i < 8; ++i)
        report.addSuspect(0x100 + i, 0x200 + i, -0.5);

    const std::string text = report.toText(3);
    EXPECT_NE(text.find("top suspects 3 of 8"), std::string::npos);
    EXPECT_EQ(text.find(" 4. "), std::string::npos);
}

} // namespace
} // namespace act::fleet
