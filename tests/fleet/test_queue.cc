/**
 * @file
 * Tests for the bounded MPSC ingress queue: FIFO order, capacity,
 * shedding, producer-termination handshake and blocking backpressure.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "fleet/queue.hh"

namespace act::fleet
{
namespace
{

EventBlock
makeBlock(std::uint32_t client, std::size_t events)
{
    EventBlock block;
    block.client = client;
    block.events.resize(events);
    return block;
}

TEST(BlockQueue, FifoWithinOneProducer)
{
    BlockQueue queue(8, 1);
    for (std::uint32_t i = 0; i < 5; ++i)
        queue.push(makeBlock(0, i + 1));
    queue.producerDone();

    EventBlock out;
    for (std::uint32_t i = 0; i < 5; ++i) {
        ASSERT_TRUE(queue.pop(out));
        EXPECT_EQ(out.events.size(), i + 1);
    }
    EXPECT_FALSE(queue.pop(out));
}

TEST(BlockQueue, TryPushRefusesWhenFullAndKeepsBlock)
{
    BlockQueue queue(2, 1);
    EventBlock block = makeBlock(7, 3);
    EXPECT_TRUE(queue.tryPush(block));
    block = makeBlock(7, 3);
    EXPECT_TRUE(queue.tryPush(block));

    block = makeBlock(7, 3);
    EXPECT_FALSE(queue.tryPush(block));
    // The refused block stays with the caller, intact.
    EXPECT_EQ(block.client, 7u);
    EXPECT_EQ(block.events.size(), 3u);
    EXPECT_EQ(queue.depth(), 2u);
}

TEST(BlockQueue, PopReturnsFalseOnlyAfterDrainedAndDone)
{
    BlockQueue queue(4, 2);
    queue.push(makeBlock(0, 1));
    queue.producerDone();
    queue.push(makeBlock(1, 2));
    queue.producerDone();

    // Both producers are done but two blocks remain: both must still
    // be delivered before the terminal false.
    EventBlock out;
    EXPECT_TRUE(queue.pop(out));
    EXPECT_TRUE(queue.pop(out));
    EXPECT_FALSE(queue.pop(out));
}

TEST(BlockQueue, BlockingPushResumesWhenConsumerDrains)
{
    BlockQueue queue(1, 1);
    queue.push(makeBlock(0, 1));

    std::thread producer([&] {
        queue.push(makeBlock(0, 2)); // Blocks until the pop below.
        queue.producerDone();
    });

    EventBlock out;
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out.events.size(), 1u);
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out.events.size(), 2u);
    EXPECT_FALSE(queue.pop(out));
    producer.join();
}

TEST(BlockQueue, ConcurrentProducersDeliverEverythingInPerClientOrder)
{
    constexpr std::uint32_t kProducers = 4;
    constexpr std::size_t kBlocksEach = 200;
    BlockQueue queue(3, kProducers);

    std::vector<std::thread> producers;
    for (std::uint32_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&queue, p] {
            for (std::size_t i = 0; i < kBlocksEach; ++i)
                queue.push(makeBlock(p, i + 1));
            queue.producerDone();
        });
    }

    // Single consumer: per-client sizes must arrive strictly
    // ascending (per-producer FIFO), and nothing may be lost.
    std::vector<std::size_t> last(kProducers, 0);
    std::size_t total = 0;
    EventBlock out;
    while (queue.pop(out)) {
        ASSERT_LT(out.client, kProducers);
        EXPECT_EQ(out.events.size(), last[out.client] + 1);
        last[out.client] = out.events.size();
        ++total;
    }
    EXPECT_EQ(total, kProducers * kBlocksEach);
    for (std::thread &producer : producers)
        producer.join();
}

} // namespace
} // namespace act::fleet
