/**
 * @file
 * Tests for trace events, sinks and counters.
 */

#include <gtest/gtest.h>

#include "trace/trace.hh"

namespace act
{
namespace
{

TraceEvent
makeEvent(EventKind kind, ThreadId tid, Pc pc, Addr addr,
          std::uint16_t gap = 0)
{
    TraceEvent e;
    e.kind = kind;
    e.tid = tid;
    e.pc = pc;
    e.addr = addr;
    e.gap = gap;
    return e;
}

TEST(Trace, AppendAssignsSequenceNumbers)
{
    Trace t;
    t.append(makeEvent(EventKind::kLoad, 0, 1, 2));
    t.append(makeEvent(EventKind::kStore, 0, 3, 4));
    EXPECT_EQ(t[0].seq, 0u);
    EXPECT_EQ(t[1].seq, 1u);
    EXPECT_EQ(t.size(), 2u);
}

TEST(Trace, CountsByKind)
{
    Trace t;
    t.append(makeEvent(EventKind::kLoad, 0, 1, 2));
    t.append(makeEvent(EventKind::kLoad, 0, 1, 2));
    t.append(makeEvent(EventKind::kStore, 0, 3, 4));
    t.append(makeEvent(EventKind::kBranch, 0, 5, 0));
    EXPECT_EQ(t.loadCount(), 2u);
    EXPECT_EQ(t.storeCount(), 1u);
    EXPECT_EQ(t.branchCount(), 1u);
}

TEST(Trace, InstructionCountIncludesGaps)
{
    Trace t;
    t.append(makeEvent(EventKind::kLoad, 0, 1, 2, 5));
    t.append(makeEvent(EventKind::kStore, 0, 3, 4, 2));
    // 2 traced events + 7 gap instructions.
    EXPECT_EQ(t.instructionCount(), 9u);
}

TEST(Trace, ThreadCount)
{
    Trace t;
    t.append(makeEvent(EventKind::kLoad, 0, 1, 2));
    t.append(makeEvent(EventKind::kLoad, 3, 1, 2));
    t.append(makeEvent(EventKind::kLoad, 3, 1, 2));
    t.append(makeEvent(EventKind::kLoad, 7, 1, 2));
    EXPECT_EQ(t.threadCount(), 3u);
}

TEST(Trace, ClearResetsEverything)
{
    Trace t;
    t.append(makeEvent(EventKind::kLoad, 0, 1, 2, 10));
    t.clear();
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.instructionCount(), 0u);
    EXPECT_EQ(t.loadCount(), 0u);
}

TEST(TeeSink, DuplicatesEvents)
{
    Trace a;
    Trace b;
    TeeSink tee(a, b);
    tee.append(makeEvent(EventKind::kStore, 1, 2, 3));
    EXPECT_EQ(a.size(), 1u);
    EXPECT_EQ(b.size(), 1u);
    EXPECT_EQ(a[0].pc, 2u);
    EXPECT_EQ(b[0].pc, 2u);
}

TEST(NullSink, DiscardsSilently)
{
    NullSink sink;
    sink.append(makeEvent(EventKind::kLoad, 0, 1, 2)); // must not crash
}

TEST(TraceEvent, FilteredLoadPredicate)
{
    TraceEvent stack_load = makeEvent(EventKind::kLoad, 0, 1, 2);
    stack_load.stack = true;
    EXPECT_TRUE(isFilteredLoad(stack_load));

    TraceEvent heap_load = makeEvent(EventKind::kLoad, 0, 1, 2);
    EXPECT_FALSE(isFilteredLoad(heap_load));

    TraceEvent stack_store = makeEvent(EventKind::kStore, 0, 1, 2);
    stack_store.stack = true;
    EXPECT_FALSE(isFilteredLoad(stack_store));
}

TEST(TraceEvent, IsMemory)
{
    EXPECT_TRUE(makeEvent(EventKind::kLoad, 0, 1, 2).isMemory());
    EXPECT_TRUE(makeEvent(EventKind::kStore, 0, 1, 2).isMemory());
    EXPECT_FALSE(makeEvent(EventKind::kBranch, 0, 1, 2).isMemory());
    EXPECT_FALSE(makeEvent(EventKind::kLock, 0, 1, 2).isMemory());
}

TEST(TraceEvent, ToStringMentionsKind)
{
    const TraceEvent e = makeEvent(EventKind::kStore, 3, 0x42, 0x100);
    const std::string s = e.toString();
    EXPECT_NE(s.find("store"), std::string::npos);
    EXPECT_NE(s.find("t3"), std::string::npos);
}

TEST(TraceEvent, KindNamesDistinct)
{
    EXPECT_STRNE(eventKindName(EventKind::kLoad),
                 eventKindName(EventKind::kStore));
    EXPECT_STRNE(eventKindName(EventKind::kLock),
                 eventKindName(EventKind::kUnlock));
}

TEST(TraceEvent, OutOfRangeKindNameIsStable)
{
    // Corrupt kinds (e.g. from a damaged trace file) must render as a
    // fixed placeholder, never garbage or a crash.
    EXPECT_STREQ(eventKindName(static_cast<EventKind>(7)), "unknown");
    EXPECT_STREQ(eventKindName(static_cast<EventKind>(255)), "unknown");
    TraceEvent e = makeEvent(static_cast<EventKind>(123), 0, 1, 2);
    EXPECT_NE(e.toString().find("unknown"), std::string::npos);
}

} // namespace
} // namespace act
