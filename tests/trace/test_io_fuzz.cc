/**
 * @file
 * Fuzz-style robustness tests for readTrace.
 *
 * A cached trace file can be damaged in arbitrary ways — truncated
 * writes, torn pages, bit rot — and readTrace is the only gate between
 * that file and the rest of the pipeline. Over ~1k seeded mutations of
 * a valid file (truncations, bit flips, and targeted clobbers of the
 * count / kind / size fields) the reader must always terminate with
 * either a structured failure or a trace the linter can still judge —
 * never a crash, hang, or runaway allocation. The CI ASan job turns
 * any out-of-bounds read on a mangled buffer into a hard failure.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "analysis/trace_lint.hh"
#include "common/rng.hh"
#include "trace/io.hh"

namespace act
{
namespace
{

std::string
tempPath(const std::string &name)
{
    return std::string(::testing::TempDir()) + name;
}

std::vector<unsigned char>
makeValidTraceBytes()
{
    Rng rng(0xf022);
    Trace trace;
    for (std::size_t i = 0; i < 400; ++i) {
        TraceEvent event;
        event.tid = static_cast<ThreadId>(rng.next(4));
        event.kind = rng.chance(0.6) ? EventKind::kLoad : EventKind::kStore;
        event.pc = 0x1000 + rng.next(1024) * 4;
        event.addr = 0x8000 + rng.next(4096) * 4;
        event.size = 4;
        event.gap = static_cast<std::uint16_t>(rng.next(32));
        trace.append(event);
    }
    const std::string path = tempPath("fuzz-pristine.trc");
    EXPECT_TRUE(writeTrace(trace, path));
    std::ifstream in(path, std::ios::binary);
    std::vector<unsigned char> bytes{std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>()};
    std::remove(path.c_str());
    EXPECT_FALSE(bytes.empty());
    return bytes;
}

void
writeBytes(const std::string &path, const std::vector<unsigned char> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    if (!bytes.empty()) {
        ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                  bytes.size());
    }
    ASSERT_EQ(std::fclose(f), 0);
}

// On-disk layout constants mirrored from trace/io.cc: 8-byte magic,
// 8-byte count, then packed 32-byte records.
constexpr std::size_t kHeaderBytes = 16;
constexpr std::size_t kRecordBytes = 32;

TEST(TraceIoFuzz, MutatedFilesNeverCrashTheReader)
{
    const std::vector<unsigned char> pristine = makeValidTraceBytes();
    const std::string path = tempPath("fuzz-mutant.trc");

    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    constexpr std::uint64_t kIterations = 1000;
    for (std::uint64_t seed = 1; seed <= kIterations; ++seed) {
        Rng rng(hashCombine(0xf0220000ULL, seed));
        std::vector<unsigned char> bytes = pristine;

        switch (rng.next(5)) {
          case 0: // Truncate anywhere, including inside the header.
            bytes.resize(rng.next(bytes.size() + 1));
            break;
          case 1: { // Flip a single bit.
            const std::size_t at = rng.next(bytes.size());
            bytes[at] ^= static_cast<unsigned char>(1u << rng.next(8));
            break;
          }
          case 2: { // Clobber the declared event count.
            std::uint64_t bogus = rng();
            if (rng.chance(0.5))
                bogus = rng.next(1000); // Small lies, not just huge ones.
            std::memcpy(bytes.data() + 8, &bogus, sizeof(bogus));
            break;
          }
          case 3: { // Clobber a record's kind byte (offset 26 in-record).
            const std::size_t record =
                rng.next((bytes.size() - kHeaderBytes) / kRecordBytes);
            const std::size_t at =
                kHeaderBytes + record * kRecordBytes + 26;
            bytes[at] = static_cast<unsigned char>(rng.next(256));
            break;
          }
          default: { // Clobber a record's size field (offset 20).
            const std::size_t record =
                rng.next((bytes.size() - kHeaderBytes) / kRecordBytes);
            const std::size_t at =
                kHeaderBytes + record * kRecordBytes + 20;
            std::uint32_t junk = static_cast<std::uint32_t>(rng());
            std::memcpy(bytes.data() + at, &junk, sizeof(junk));
            break;
          }
        }

        writeBytes(path, bytes);
        Trace loaded;
        const bool ok = readTrace(path, loaded);
        if (ok) {
            ++accepted;
            // A successful read honours the declared count exactly and
            // never reads past the payload the file actually holds.
            ASSERT_GE(bytes.size(), kHeaderBytes) << "seed " << seed;
            std::uint64_t declared = 0;
            std::memcpy(&declared, bytes.data() + 8, sizeof(declared));
            ASSERT_EQ(loaded.size(), declared) << "seed " << seed;
            ASSERT_LE(loaded.size() * kRecordBytes,
                      bytes.size() - kHeaderBytes)
                << "seed " << seed;
            // The linter must be able to judge whatever came back —
            // structurally damaged content is its job to reject.
            (void)lintTrace(loaded);
        } else {
            ++rejected;
            EXPECT_TRUE(loaded.empty()) << "seed " << seed;
        }
    }
    std::remove(path.c_str());

    // The mutation mix must actually exercise both outcomes, or the
    // test is fuzzing the error path (or the happy path) alone.
    EXPECT_GT(accepted, 0u);
    EXPECT_GT(rejected, kIterations / 4);
}

TEST(TraceIoFuzz, EmptyAndHeaderOnlyFilesRejected)
{
    const std::string path = tempPath("fuzz-tiny.trc");
    for (std::size_t size : {0u, 1u, 7u, 8u, 9u, 15u}) {
        std::vector<unsigned char> bytes(size, 0);
        if (size > 0)
            std::memcpy(bytes.data(), "ACTTRC01",
                        std::min<std::size_t>(size, 8));
        writeBytes(path, bytes);
        Trace loaded;
        EXPECT_FALSE(readTrace(path, loaded)) << size;
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace act
