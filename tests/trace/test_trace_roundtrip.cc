/**
 * @file
 * Property-based round-trip tests for trace serialisation.
 *
 * For hundreds of seeded random — but structurally valid — event
 * streams, writing the trace to disk and reading it back must preserve
 * every field, the summary counters, and the exact serialised bytes,
 * and the result must stay clean under the trace linter. This is the
 * correctness net under the block-decode fast path in readTrace: any
 * rewrite of the I/O layer that drops, reorders, or mangles a field
 * fails here on some seed.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "analysis/trace_lint.hh"
#include "common/rng.hh"
#include "trace/io.hh"

namespace act
{
namespace
{

std::string
tempPath(const std::string &name)
{
    return std::string(::testing::TempDir()) + name;
}

std::vector<unsigned char>
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                      std::istreambuf_iterator<char>());
}

/**
 * Generate a random trace that satisfies every lint rule: the root
 * thread creates each child before it runs, locks balance per thread,
 * flags only appear on the kinds that define them, and access sizes
 * are powers of two. Ending without exit markers is legal (a crash
 * trace), so threads simply stop.
 */
Trace
generateValidTrace(std::uint64_t seed)
{
    Rng rng(seed);
    Trace trace;

    const std::uint32_t threads = 1 + static_cast<std::uint32_t>(rng.next(4));
    for (std::uint32_t child = 1; child < threads; ++child) {
        TraceEvent create;
        create.tid = 0;
        create.kind = EventKind::kThreadCreate;
        create.pc = 0x400 + child * 8;
        create.addr = child; // Child thread id.
        create.gap = static_cast<std::uint16_t>(rng.next(16));
        trace.append(create);
    }

    // Per-thread held-lock flags over disjoint per-thread lock pools,
    // so acquires never double-lock and unlocks always match.
    constexpr std::size_t kLocksPerThread = 3;
    std::vector<std::vector<bool>> held(
        threads, std::vector<bool>(kLocksPerThread, false));
    const auto lockAddr = [](std::uint32_t tid, std::size_t slot) {
        return static_cast<Addr>(0x9000 + tid * 64 + slot * 8);
    };

    const std::size_t count = 100 + rng.next(900);
    for (std::size_t i = 0; i < count; ++i) {
        const auto tid = static_cast<ThreadId>(rng.next(threads));
        TraceEvent event;
        event.tid = tid;
        event.pc = 0x1000 + rng.next(4096) * 4;
        event.gap = static_cast<std::uint16_t>(rng.next(48));

        const std::uint64_t roll = rng.next(100);
        if (roll < 40) {
            event.kind = EventKind::kLoad;
            event.addr = 0x10000 + rng.next(8192) * 4;
            event.size = std::uint32_t{1} << rng.next(7); // 1..64.
            event.stack = rng.chance(0.2);
        } else if (roll < 70) {
            event.kind = EventKind::kStore;
            event.addr = 0x10000 + rng.next(8192) * 4;
            event.size = std::uint32_t{1} << rng.next(7);
            event.stack = rng.chance(0.1);
        } else if (roll < 85) {
            event.kind = EventKind::kBranch;
            event.addr = 0;
            event.taken = rng.chance(0.5);
        } else {
            // Toggle a random lock in this thread's pool: acquire when
            // free, release when held — balanced by construction.
            const std::size_t slot = rng.next(kLocksPerThread);
            event.addr = lockAddr(tid, slot);
            if (held[tid][slot]) {
                event.kind = EventKind::kUnlock;
                held[tid][slot] = false;
            } else {
                event.kind = EventKind::kLock;
                held[tid][slot] = true;
            }
        }
        trace.append(event);
    }
    return trace;
}

void
expectTracesEqual(const Trace &a, const Trace &b, std::uint64_t seed)
{
    ASSERT_EQ(a.size(), b.size()) << "seed " << seed;
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].seq, b[i].seq) << "seed " << seed << " event " << i;
        ASSERT_EQ(a[i].tid, b[i].tid) << "seed " << seed << " event " << i;
        ASSERT_EQ(a[i].kind, b[i].kind) << "seed " << seed << " event " << i;
        ASSERT_EQ(a[i].pc, b[i].pc) << "seed " << seed << " event " << i;
        ASSERT_EQ(a[i].addr, b[i].addr) << "seed " << seed << " event " << i;
        ASSERT_EQ(a[i].size, b[i].size) << "seed " << seed << " event " << i;
        ASSERT_EQ(a[i].gap, b[i].gap) << "seed " << seed << " event " << i;
        ASSERT_EQ(a[i].taken, b[i].taken)
            << "seed " << seed << " event " << i;
        ASSERT_EQ(a[i].stack, b[i].stack)
            << "seed " << seed << " event " << i;
    }
    EXPECT_EQ(a.instructionCount(), b.instructionCount()) << seed;
    EXPECT_EQ(a.loadCount(), b.loadCount()) << seed;
    EXPECT_EQ(a.storeCount(), b.storeCount()) << seed;
    EXPECT_EQ(a.branchCount(), b.branchCount()) << seed;
}

TEST(TraceRoundTripProperty, TwoHundredSeededStreams)
{
    constexpr std::uint64_t kCases = 200;
    const std::string first = tempPath("roundtrip-prop-a.trc");
    const std::string second = tempPath("roundtrip-prop-b.trc");

    for (std::uint64_t seed = 1; seed <= kCases; ++seed) {
        const Trace original = generateValidTrace(seed);
        ASSERT_TRUE(lintTrace(original).empty())
            << "generator produced a lint-dirty trace at seed " << seed;

        ASSERT_TRUE(writeTrace(original, first)) << seed;
        Trace loaded;
        ASSERT_TRUE(readTrace(first, loaded)) << seed;

        expectTracesEqual(original, loaded, seed);
        EXPECT_TRUE(lintTrace(loaded).empty()) << seed;

        // Re-serialising the loaded trace must reproduce the file byte
        // for byte — serialisation is a pure function of the content.
        ASSERT_TRUE(writeTrace(loaded, second)) << seed;
        EXPECT_EQ(fileBytes(first), fileBytes(second)) << seed;
    }
    std::remove(first.c_str());
    std::remove(second.c_str());
}

TEST(TraceRoundTripProperty, SingleThreadStreamsStayClean)
{
    // Degenerate corner the sweep can miss: single-thread traces with
    // no creates at all (the root thread needs no marker).
    const std::string path = tempPath("roundtrip-prop-single.trc");
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        Rng rng(seed * 77);
        Trace trace;
        const std::size_t count = 50 + rng.next(200);
        for (std::size_t i = 0; i < count; ++i) {
            TraceEvent event;
            event.tid = 0;
            event.kind = rng.chance(0.5) ? EventKind::kLoad
                                         : EventKind::kStore;
            event.pc = 0x1000 + rng.next(256) * 4;
            event.addr = 0x8000 + rng.next(1024) * 4;
            event.size = std::uint32_t{1} << rng.next(7);
            trace.append(event);
        }
        ASSERT_TRUE(lintTrace(trace).empty()) << seed;
        ASSERT_TRUE(writeTrace(trace, path)) << seed;
        Trace loaded;
        ASSERT_TRUE(readTrace(path, loaded)) << seed;
        expectTracesEqual(trace, loaded, seed);
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace act
