/**
 * @file
 * Tests for binary trace serialisation.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "trace/io.hh"

namespace act
{
namespace
{

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

Trace
randomTrace(std::size_t count)
{
    Rng rng(99);
    Trace t;
    for (std::size_t i = 0; i < count; ++i) {
        TraceEvent e;
        e.kind = static_cast<EventKind>(rng.next(7));
        e.tid = static_cast<ThreadId>(rng.next(8));
        e.pc = rng();
        e.addr = rng();
        e.size = 4;
        e.gap = static_cast<std::uint16_t>(rng.next(32));
        e.taken = rng.chance(0.5);
        e.stack = rng.chance(0.1);
        t.append(e);
    }
    return t;
}

TEST(TraceIo, RoundTripPreservesEverything)
{
    const Trace original = randomTrace(500);
    const std::string path = tempPath("roundtrip.trc");
    ASSERT_TRUE(writeTrace(original, path));

    Trace loaded;
    ASSERT_TRUE(readTrace(path, loaded));
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded[i].kind, original[i].kind) << i;
        EXPECT_EQ(loaded[i].tid, original[i].tid) << i;
        EXPECT_EQ(loaded[i].pc, original[i].pc) << i;
        EXPECT_EQ(loaded[i].addr, original[i].addr) << i;
        EXPECT_EQ(loaded[i].gap, original[i].gap) << i;
        EXPECT_EQ(loaded[i].taken, original[i].taken) << i;
        EXPECT_EQ(loaded[i].stack, original[i].stack) << i;
    }
    EXPECT_EQ(loaded.instructionCount(), original.instructionCount());
    EXPECT_EQ(loaded.loadCount(), original.loadCount());
    std::remove(path.c_str());
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    const std::string path = tempPath("empty.trc");
    ASSERT_TRUE(writeTrace(Trace{}, path));
    Trace loaded;
    ASSERT_TRUE(readTrace(path, loaded));
    EXPECT_TRUE(loaded.empty());
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileFails)
{
    Trace loaded;
    EXPECT_FALSE(readTrace(tempPath("does-not-exist.trc"), loaded));
}

TEST(TraceIo, BadMagicRejected)
{
    const std::string path = tempPath("bad.trc");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOTATRACEFILE___________", f);
    std::fclose(f);
    Trace loaded;
    EXPECT_FALSE(readTrace(path, loaded));
    std::remove(path.c_str());
}

TEST(TraceIo, HugeHeaderCountRejectedWithoutAllocation)
{
    // A header advertising far more records than the file holds must be
    // rejected up front (count vs payload size), not by attempting a
    // multi-gigabyte reserve and faulting partway through the read.
    const Trace original = randomTrace(4);
    const std::string path = tempPath("hugecount.trc");
    ASSERT_TRUE(writeTrace(original, path));

    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    // The count field follows the 8-byte magic.
    std::fseek(f, 8, SEEK_SET);
    const std::uint64_t bogus = 1ull << 60;
    ASSERT_EQ(std::fwrite(&bogus, sizeof(bogus), 1, f), 1u);
    std::fclose(f);

    Trace loaded;
    EXPECT_FALSE(readTrace(path, loaded));
    EXPECT_TRUE(loaded.empty());
    std::remove(path.c_str());
}

TEST(TraceIo, CountLargerThanPayloadRejected)
{
    // Off-by-a-few case: count claims one extra record.
    const Trace original = randomTrace(16);
    const std::string path = tempPath("overcount.trc");
    ASSERT_TRUE(writeTrace(original, path));

    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 8, SEEK_SET);
    const std::uint64_t bogus = 17;
    ASSERT_EQ(std::fwrite(&bogus, sizeof(bogus), 1, f), 1u);
    std::fclose(f);

    Trace loaded;
    EXPECT_FALSE(readTrace(path, loaded));
    std::remove(path.c_str());
}

TEST(TraceIo, OutOfRangeEventKindRejected)
{
    const Trace original = randomTrace(8);
    const std::string path = tempPath("badkind.trc");
    ASSERT_TRUE(writeTrace(original, path));

    // Overwrite the whole first record (starts after the 16-byte
    // header) with 0xFF bytes; kind 0xFF is not a valid EventKind.
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 16, SEEK_SET);
    const std::vector<unsigned char> junk(32, 0xFF);
    ASSERT_EQ(std::fwrite(junk.data(), 1, junk.size(), f), junk.size());
    std::fclose(f);

    Trace loaded;
    EXPECT_FALSE(readTrace(path, loaded));
    std::remove(path.c_str());
}

TEST(TraceIo, TruncatedFileFails)
{
    const Trace original = randomTrace(100);
    const std::string path = tempPath("trunc.trc");
    ASSERT_TRUE(writeTrace(original, path));
    // Truncate mid-record.
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
    Trace loaded;
    EXPECT_FALSE(readTrace(path, loaded));
    std::remove(path.c_str());
}

} // namespace
} // namespace act
