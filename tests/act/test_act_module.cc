/**
 * @file
 * Tests for the ACT Module: initialisation, online testing, Debug
 * Buffer logging, mode switching and retire back-pressure.
 */

#include <gtest/gtest.h>

#include <limits>

#include "act/act_module.hh"
#include "common/fault_hooks.hh"
#include "nn/trainer.hh"

namespace act
{
namespace
{

constexpr Pc kLoadPc = 0x401004;

RawDependence
validDep(std::uint32_t slot = 0)
{
    // Tight producer/consumer pair: the learned-valid shape.
    const Pc load = kLoadPc + slot * 8;
    return RawDependence{load - 4, load, false};
}

RawDependence
buggyDep()
{
    // A far-away writer: invalid communication.
    return RawDependence{kLoadPc - 13 * 0x1000, kLoadPc, false};
}

ActConfig
testConfig()
{
    ActConfig config;
    config.sequence_length = 1;
    config.topology = Topology{2, 6};
    config.interval_length = 64;
    config.misprediction_threshold = 0.05;
    return config;
}

/** Train a tiny network that accepts near deps and rejects far ones. */
std::vector<double>
trainedWeights()
{
    PairEncoder encoder;
    Dataset data;
    Rng rng(21);
    for (int i = 0; i < 400; ++i) {
        const auto slot = static_cast<std::uint32_t>(rng.next(8));
        std::vector<double> pos;
        encoder.encode(validDep(slot), pos);
        data.add(Example{pos, 1.0});
        std::vector<double> neg;
        const Pc load = kLoadPc + slot * 8;
        encoder.encode(
            RawDependence{load - 0x1000 - rng.next(0x8000), load, false},
            neg);
        data.add(Example{neg, 0.0});
    }
    MlpNetwork net(Topology{2, 6}, rng);
    TrainerConfig config;
    config.max_epochs = 300;
    trainNetwork(net, data, config, rng);
    return net.weights();
}

WeightStore
trainedStore()
{
    WeightStore store(Topology{2, 6});
    store.set(0, trainedWeights());
    return store;
}

TEST(ActModule, InitWithStoredWeightsStartsTesting)
{
    PairEncoder encoder;
    ActModule module(testConfig(), encoder);
    const std::size_t transferred = module.initThread(0, trainedStore());
    EXPECT_EQ(transferred, module.network().weightCount());
    EXPECT_EQ(module.mode(), ActMode::kTesting);
}

TEST(ActModule, InitWithoutWeightsStartsTraining)
{
    PairEncoder encoder;
    ActModule module(testConfig(), encoder);
    module.initThread(5, WeightStore(Topology{2, 6}));
    EXPECT_EQ(module.mode(), ActMode::kTraining);
}

TEST(ActModule, ValidDependencePredictedValid)
{
    PairEncoder encoder;
    ActModule module(testConfig(), encoder);
    module.initThread(0, trainedStore());
    const ActOutcome outcome = module.onDependence(validDep(), 0, 100);
    ASSERT_TRUE(outcome.classified);
    EXPECT_FALSE(outcome.predicted_invalid);
    EXPECT_EQ(module.debugBuffer().size(), 0u);
}

TEST(ActModule, InvalidDependenceLoggedWithOutput)
{
    PairEncoder encoder;
    ActModule module(testConfig(), encoder);
    module.initThread(0, trainedStore());
    const ActOutcome outcome = module.onDependence(buggyDep(), 0, 100);
    ASSERT_TRUE(outcome.classified);
    EXPECT_TRUE(outcome.predicted_invalid);
    EXPECT_LT(outcome.output, 0.5);
    ASSERT_EQ(module.debugBuffer().size(), 1u);
    EXPECT_EQ(module.debugBuffer().entries().front().sequence.deps.back(),
              buggyDep());
}

TEST(ActModule, SequenceNeedsWarmup)
{
    ActConfig config = testConfig();
    config.sequence_length = 3;
    config.topology = Topology{6, 6};
    PairEncoder encoder;
    ActModule module(config, encoder);
    WeightStore store(Topology{6, 6});
    store.set(0, std::vector<double>(store.weightCount(), 0.1));
    module.initThread(0, store);
    EXPECT_FALSE(module.onDependence(validDep(0), 0, 1).classified);
    EXPECT_FALSE(module.onDependence(validDep(1), 0, 2).classified);
    EXPECT_TRUE(module.onDependence(validDep(2), 0, 3).classified);
}

TEST(ActModule, HighMispredictionRateEntersTraining)
{
    PairEncoder encoder;
    ActModule module(testConfig(), encoder);
    module.initThread(0, trainedStore());
    ASSERT_EQ(module.mode(), ActMode::kTesting);
    // Flood with rejected-but-presumed-valid dependences: after one
    // interval the rate exceeds 5% and the module starts learning
    // (the few extra dependences then exercise the training path).
    Cycle cycle = 0;
    for (int i = 0; i < 80; ++i)
        module.onDependence(buggyDep(), 0, cycle += 100);
    EXPECT_EQ(module.mode(), ActMode::kTraining);
    EXPECT_GE(module.stats().mode_switches, 1u);
    EXPECT_GT(module.stats().train_updates, 0u);
}

TEST(ActModule, TrainingLearnsAndReturnsToTesting)
{
    PairEncoder encoder;
    ActModule module(testConfig(), encoder);
    module.initThread(0, trainedStore());
    Cycle cycle = 0;
    // Enter training via sustained novel dependences...
    for (int i = 0; i < 64; ++i)
        module.onDependence(buggyDep(), 0, cycle += 100);
    ASSERT_EQ(module.mode(), ActMode::kTraining);
    // ...keep seeing them; the network learns them as valid and the
    // misprediction rate falls below the threshold again.
    for (int i = 0; i < 64 * 40 && module.mode() == ActMode::kTraining;
         ++i) {
        module.onDependence(buggyDep(), 0, cycle += 100);
    }
    EXPECT_EQ(module.mode(), ActMode::kTesting);
    // The previously novel dependence is now accepted.
    const ActOutcome outcome =
        module.onDependence(buggyDep(), 0, cycle += 100);
    EXPECT_FALSE(outcome.predicted_invalid);
}

TEST(ActModule, FifoBackpressureStallsLoads)
{
    ActConfig config = testConfig();
    config.hw.fifo_entries = 1;
    PairEncoder encoder;
    ActModule module(config, encoder);
    module.initThread(0, trainedStore());
    // Two dependences in the same cycle: the second must wait for the
    // first to vacate the single-entry FIFO.
    const ActOutcome first = module.onDependence(validDep(), 0, 10);
    EXPECT_EQ(first.stall_cycles, 0u);
    const ActOutcome second = module.onDependence(validDep(), 0, 10);
    EXPECT_GT(second.stall_cycles, 0u);
    EXPECT_GT(module.stats().stalled_offers, 0u);
}

TEST(ActModule, SaveRestoreWeightsRoundTrip)
{
    PairEncoder encoder;
    ActModule module(testConfig(), encoder);
    module.initThread(0, trainedStore());
    const auto saved = module.saveWeights();
    ActModule other(testConfig(), encoder);
    other.initThread(9, WeightStore(Topology{2, 6})); // defaults
    other.restoreWeights(saved);
    const ActOutcome a = module.onDependence(buggyDep(), 0, 1);
    const ActOutcome b = other.onDependence(buggyDep(), 9, 1);
    EXPECT_EQ(a.predicted_invalid, b.predicted_invalid);
    EXPECT_NEAR(a.output, b.output, 1e-9);
}

TEST(ActModule, StatsCount)
{
    PairEncoder encoder;
    ActModule module(testConfig(), encoder);
    module.initThread(0, trainedStore());
    module.onDependence(validDep(), 0, 1);
    module.onDependence(buggyDep(), 0, 2);
    const ActModuleStats &stats = module.stats();
    EXPECT_EQ(stats.dependences, 2u);
    EXPECT_EQ(stats.predictions, 2u);
    EXPECT_EQ(stats.predicted_invalid, 1u);
}

TEST(ActModule, InitQuarantinesNaNStoredWeights)
{
    // A corrupt stored set (e.g. a flipped exponent bit turning a
    // weight into NaN) must never reach loadWeights(): the module
    // quarantines it and behaves exactly like a thread with no stored
    // weights at all.
    auto weights = trainedWeights();
    weights[3] = std::numeric_limits<double>::quiet_NaN();
    WeightStore store(Topology{2, 6});
    store.set(0, weights);

    PairEncoder encoder;
    ActModule module(testConfig(), encoder);
    module.initThread(0, store);
    EXPECT_EQ(module.mode(), ActMode::kTraining);
    EXPECT_EQ(module.stats().quarantined_weight_sets, 1u);
}

TEST(ActModule, InitQuarantinesOutOfRangeStoredWeights)
{
    // Finite but far beyond the Q15.16 hardware range: the int32
    // quantisation cast would be undefined behaviour.
    auto weights = trainedWeights();
    weights[0] = 1e12;
    WeightStore store(Topology{2, 6});
    store.set(0, weights);

    PairEncoder encoder;
    ActModule module(testConfig(), encoder);
    module.initThread(0, store);
    EXPECT_EQ(module.mode(), ActMode::kTraining);
    EXPECT_EQ(module.stats().quarantined_weight_sets, 1u);
}

TEST(ActModule, RestoreWeightsQuarantinesCorruptSet)
{
    PairEncoder encoder;
    ActModule module(testConfig(), encoder);
    module.initThread(0, trainedStore());
    ASSERT_EQ(module.mode(), ActMode::kTesting);

    auto corrupt = module.saveWeights();
    corrupt[1] = -std::numeric_limits<double>::infinity();
    module.restoreWeights(corrupt);
    EXPECT_EQ(module.mode(), ActMode::kTraining);
    EXPECT_EQ(module.stats().quarantined_weight_sets, 1u);
}

/** Scriptable hooks for driving the module's injection sites. */
class ScriptedHooks final : public FaultHooks
{
  public:
    bool drop_input = false;
    bool drop_debug = false;

    WriterFaultAction
    onWriterTransfer() override
    {
        return WriterFaultAction::kNone;
    }
    bool dropInputDependence() override { return drop_input; }
    bool dropDebugLog() override { return drop_debug; }
};

TEST(ActModule, InjectedInputDropIsCountedAndAbsorbed)
{
    ScriptedHooks hooks;
    ActConfig config = testConfig();
    config.faults = &hooks;
    PairEncoder encoder;
    ActModule module(config, encoder);
    module.initThread(0, trainedStore());

    hooks.drop_input = true;
    const ActOutcome dropped = module.onDependence(validDep(), 0, 1);
    EXPECT_FALSE(dropped.classified);
    EXPECT_EQ(module.stats().input_drops_injected, 1u);
    EXPECT_EQ(module.stats().predictions, 0u);

    // With the fault gone the module is fully functional again.
    hooks.drop_input = false;
    const ActOutcome clean = module.onDependence(validDep(), 0, 2);
    EXPECT_TRUE(clean.classified);
    EXPECT_EQ(module.stats().input_drops_injected, 1u);
}

TEST(ActModule, InjectedDebugDropLosesLogEntryOnly)
{
    ScriptedHooks hooks;
    ActConfig config = testConfig();
    config.faults = &hooks;
    PairEncoder encoder;
    ActModule module(config, encoder);
    module.initThread(0, trainedStore());

    hooks.drop_debug = true;
    const ActOutcome outcome = module.onDependence(buggyDep(), 0, 100);
    // The prediction itself is unaffected; only the log entry is lost.
    ASSERT_TRUE(outcome.classified);
    EXPECT_TRUE(outcome.predicted_invalid);
    EXPECT_EQ(module.debugBuffer().size(), 0u);
    EXPECT_EQ(module.stats().debug_drops_injected, 1u);
}

TEST(ActModule, StagedCommitMatchesOnDependence)
{
    // The split-phase path (stage -> external inference -> commit) must
    // reproduce the function half of onDependence bit for bit: same
    // outputs, same classifications, same Debug Buffer contents.
    ActConfig config = testConfig();
    config.interval_length = 1 << 20; // No mode switch mid-test.
    const std::vector<double> weights = trainedWeights();

    PairEncoder encoder;
    ActModule reference(config, encoder);
    reference.restoreWeights(weights);
    ActModule staged(config, encoder);
    staged.restoreWeights(weights);

    Rng rng(17);
    for (int i = 0; i < 300; ++i) {
        const RawDependence dep =
            rng.next(3) == 0
                ? buggyDep()
                : validDep(static_cast<std::uint32_t>(rng.next(8)));
        const ActOutcome ref = reference.onDependence(dep, 1, i);

        const bool formed = staged.stageDependence(dep);
        ASSERT_EQ(formed, ref.classified);
        if (!formed)
            continue;
        const double output =
            staged.network().infer(staged.stagedInputs());
        const StagedOutcome outcome = staged.commitPrediction(
            staged.stagedSequence(), staged.stagedInputs(), output, 1);
        EXPECT_EQ(output, ref.output);
        EXPECT_EQ(outcome.predicted_invalid, ref.predicted_invalid);
    }

    EXPECT_EQ(staged.stats().dependences, reference.stats().dependences);
    EXPECT_EQ(staged.stats().predictions, reference.stats().predictions);
    EXPECT_EQ(staged.stats().predicted_invalid,
              reference.stats().predicted_invalid);

    const auto ref_entries = reference.debugBuffer().entries();
    const auto staged_entries = staged.debugBuffer().entries();
    ASSERT_EQ(staged_entries.size(), ref_entries.size());
    for (std::size_t i = 0; i < ref_entries.size(); ++i) {
        EXPECT_EQ(staged_entries[i].output, ref_entries[i].output);
        EXPECT_EQ(staged_entries[i].when, ref_entries[i].when);
        EXPECT_EQ(staged_entries[i].tid, ref_entries[i].tid);
    }
}

TEST(ActModule, BoundArenasIsolateInterleavedStreams)
{
    // One engine, two interleaved arenas: each arena must end up
    // exactly where a dedicated module fed only its own stream would.
    ActConfig config = testConfig();
    config.interval_length = 1 << 20;
    const std::vector<double> weights = trainedWeights();

    PairEncoder encoder;
    ActModule mux(config, encoder);
    mux.restoreWeights(weights);
    ActArena arena_a = mux.makeArena();
    ActArena arena_b = mux.makeArena();

    ActModule solo_a(config, encoder);
    solo_a.restoreWeights(weights);
    ActModule solo_b(config, encoder);
    solo_b.restoreWeights(weights);

    const auto feed = [&mux](ActArena &arena, const RawDependence &dep) {
        mux.bindArena(&arena);
        if (!mux.stageDependence(dep))
            return;
        const double output = mux.network().infer(mux.stagedInputs());
        mux.commitPrediction(mux.stagedSequence(), mux.stagedInputs(),
                             output, 0);
    };

    for (int i = 0; i < 200; ++i) {
        const RawDependence a =
            validDep(static_cast<std::uint32_t>(i % 8));
        const RawDependence b = (i % 2) != 0 ? buggyDep() : validDep(3);
        feed(arena_a, a);
        feed(arena_b, b);
        solo_a.onDependence(a, 0, i);
        solo_b.onDependence(b, 0, i);
    }
    mux.bindArena(nullptr);

    EXPECT_EQ(arena_a.stats.predictions, solo_a.stats().predictions);
    EXPECT_EQ(arena_a.stats.predicted_invalid,
              solo_a.stats().predicted_invalid);
    EXPECT_EQ(arena_b.stats.predictions, solo_b.stats().predictions);
    EXPECT_EQ(arena_b.stats.predicted_invalid,
              solo_b.stats().predicted_invalid);
    EXPECT_EQ(arena_a.debug.size(), solo_a.debugBuffer().size());
    EXPECT_EQ(arena_b.debug.size(), solo_b.debugBuffer().size());
    // The streams really were different.
    EXPECT_NE(arena_a.stats.predicted_invalid,
              arena_b.stats.predicted_invalid);
}

} // namespace
} // namespace act
