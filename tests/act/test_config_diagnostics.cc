/**
 * @file
 * Tests for the ACT Module's structured configuration diagnostics: a
 * bad config must die with findings that name the offending knobs,
 * not with a bare assert.
 */

#include <gtest/gtest.h>

#include "act/act_module.hh"
#include "analysis/config_check.hh"
#include "deps/encoder.hh"

namespace act
{
namespace
{

TEST(ConfigDiagnostics, ValidConfigConstructs)
{
    const PairEncoder encoder;
    ActConfig config; // Table III defaults: 6 inputs = 3 x width 2.
    const ActModule module(config, encoder);
    EXPECT_EQ(module.config().sequence_length, 3u);
}

TEST(ConfigDiagnosticsDeathTest, MismatchedTopologyNamesTheRule)
{
    const PairEncoder encoder;
    ActConfig config;
    config.sequence_length = 4; // 4 x 2 = 8, topology still 6 inputs.
    EXPECT_EXIT({ ActModule module(config, encoder); },
                ::testing::ExitedWithCode(1), "topology-mismatch");
}

TEST(ConfigDiagnosticsDeathTest, ReportsEveryViolation)
{
    const PairEncoder encoder;
    ActConfig config;
    config.sequence_length = 4;    // topology-mismatch
    config.debug_buffer_entries = 0; // debug-buffer
    config.learning_rate = 0.0;      // learning-rate
    EXPECT_EXIT({ ActModule module(config, encoder); },
                ::testing::ExitedWithCode(1),
                "topology-mismatch.*debug-buffer.*learning-rate");
}

TEST(ConfigDiagnosticsDeathTest, HardwareFanInViolationIsFatal)
{
    const PairEncoder encoder;
    ActConfig config;
    config.hw.neuron.max_inputs = 4; // 6x10 topology cannot fit.
    EXPECT_EXIT({ ActModule module(config, encoder); },
                ::testing::ExitedWithCode(1), "fan-in");
}

/**
 * The diagnostics come from the same validator actlint's config pass
 * uses, so the module and the CLI can never disagree.
 */
TEST(ConfigDiagnostics, ValidatorMatchesModuleContract)
{
    const PairEncoder encoder;
    ActConfig config;
    EXPECT_TRUE(validateActConfig(config, encoder.width()).empty());
    config.sequence_length = 4;
    EXPECT_FALSE(validateActConfig(config, encoder.width()).empty());
}

} // namespace
} // namespace act
