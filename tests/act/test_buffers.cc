/**
 * @file
 * Tests for the Input Generator Buffer and the Debug Buffer.
 */

#include <gtest/gtest.h>

#include "act/buffers.hh"

namespace act
{
namespace
{

RawDependence
dep(Pc s, Pc l)
{
    return RawDependence{s, l, false};
}

TEST(InputGeneratorBuffer, LastSequenceNeedsEnoughHistory)
{
    InputGeneratorBuffer buffer(50);
    buffer.push(dep(1, 2));
    buffer.push(dep(3, 4));
    EXPECT_FALSE(buffer.lastSequence(3).has_value());
    buffer.push(dep(5, 6));
    const auto seq = buffer.lastSequence(3);
    ASSERT_TRUE(seq.has_value());
    EXPECT_EQ(seq->deps[0], dep(1, 2));
    EXPECT_EQ(seq->deps[2], dep(5, 6));
}

TEST(InputGeneratorBuffer, SlidesOldestFirst)
{
    InputGeneratorBuffer buffer(50);
    for (Pc p = 0; p < 5; ++p)
        buffer.push(dep(p, p + 100));
    const auto seq = buffer.lastSequence(3);
    ASSERT_TRUE(seq.has_value());
    EXPECT_EQ(seq->deps[0], dep(2, 102));
    EXPECT_EQ(seq->deps[2], dep(4, 104));
}

TEST(InputGeneratorBuffer, DropsOldestAtCapacity)
{
    InputGeneratorBuffer buffer(3);
    for (Pc p = 0; p < 10; ++p)
        buffer.push(dep(p, p));
    EXPECT_EQ(buffer.size(), 3u);
    const auto seq = buffer.lastSequence(3);
    ASSERT_TRUE(seq.has_value());
    EXPECT_EQ(seq->deps[0], dep(7, 7));
}

TEST(InputGeneratorBuffer, ClearEmpties)
{
    InputGeneratorBuffer buffer(10);
    buffer.push(dep(1, 1));
    buffer.clear();
    EXPECT_EQ(buffer.size(), 0u);
    EXPECT_FALSE(buffer.lastSequence(1).has_value());
}

TEST(InputGeneratorBuffer, OverwriteAccountingUnderSaturation)
{
    InputGeneratorBuffer buffer(3);
    for (Pc p = 0; p < 3; ++p)
        EXPECT_FALSE(buffer.push(dep(p, p)));
    EXPECT_EQ(buffer.overwrites(), 0u);

    // Every saturated push reports the overwrite and bumps the counter
    // monotonically.
    std::uint64_t previous = 0;
    for (Pc p = 3; p < 10; ++p) {
        EXPECT_TRUE(buffer.push(dep(p, p)));
        EXPECT_GT(buffer.overwrites(), previous);
        previous = buffer.overwrites();
    }
    EXPECT_EQ(buffer.overwrites(), 7u);

    // clear() resets the lifetime counter too: a cleared buffer is
    // indistinguishable from a fresh one.
    buffer.clear();
    EXPECT_EQ(buffer.overwrites(), 0u);
    EXPECT_FALSE(buffer.push(dep(1, 1)));
}

DebugEntry
entry(Pc last_store, Pc last_load, double output)
{
    DebugEntry e;
    e.sequence.deps = {dep(1, 2), dep(last_store, last_load)};
    e.output = output;
    return e;
}

TEST(DebugBuffer, LogsInOrder)
{
    DebugBuffer buffer(60);
    buffer.log(entry(10, 11, 0.3));
    buffer.log(entry(20, 21, 0.2));
    EXPECT_EQ(buffer.size(), 2u);
    EXPECT_EQ(buffer.entries().front().sequence.deps.back(), dep(10, 11));
    EXPECT_EQ(buffer.entries().back().sequence.deps.back(), dep(20, 21));
    EXPECT_EQ(buffer.totalLogged(), 2u);
}

TEST(DebugBuffer, RingDropsOldest)
{
    DebugBuffer buffer(3);
    for (Pc p = 0; p < 6; ++p)
        buffer.log(entry(p, p + 1, 0.1));
    EXPECT_EQ(buffer.size(), 3u);
    EXPECT_EQ(buffer.totalLogged(), 6u);
    EXPECT_EQ(buffer.entries().front().sequence.deps.back(), dep(3, 4));
}

TEST(DebugBuffer, PositionOfCountsFromNewest)
{
    DebugBuffer buffer(60);
    buffer.log(entry(10, 11, 0.3));
    buffer.log(entry(20, 21, 0.2));
    buffer.log(entry(30, 31, 0.1));
    EXPECT_EQ(buffer.positionOf(dep(30, 31)), 0u);
    EXPECT_EQ(buffer.positionOf(dep(10, 11)), 2u);
    EXPECT_FALSE(buffer.positionOf(dep(99, 99)).has_value());
}

TEST(DebugBuffer, PositionOfFindsMostRecentOccurrence)
{
    DebugBuffer buffer(60);
    buffer.log(entry(10, 11, 0.3));
    buffer.log(entry(20, 21, 0.2));
    buffer.log(entry(10, 11, 0.1)); // repeated root cause
    EXPECT_EQ(buffer.positionOf(dep(10, 11)), 0u);
}

TEST(DebugBuffer, ClearResetsTotalLogged)
{
    // clear() is a full reset: a cleared buffer must be
    // indistinguishable from a freshly constructed one, including the
    // lifetime totalLogged() counter that the diagnosis report uses to
    // compute the filter fraction.
    DebugBuffer buffer(3);
    for (Pc p = 0; p < 6; ++p)
        buffer.log(entry(p, p + 1, 0.1));
    ASSERT_EQ(buffer.totalLogged(), 6u);

    buffer.clear();
    EXPECT_EQ(buffer.size(), 0u);
    EXPECT_EQ(buffer.totalLogged(), 0u);

    buffer.log(entry(10, 11, 0.2));
    EXPECT_EQ(buffer.totalLogged(), 1u);
}

TEST(DebugBuffer, EvictionLosesRootCause)
{
    // The MySQL#1 scenario: enough later entries push the root cause
    // out of the default-sized buffer.
    DebugBuffer buffer(4);
    buffer.log(entry(10, 11, 0.3)); // root cause
    for (Pc p = 100; p < 104; ++p)
        buffer.log(entry(p, p + 1, 0.2));
    EXPECT_FALSE(buffer.positionOf(dep(10, 11)).has_value());
}

} // namespace
} // namespace act
