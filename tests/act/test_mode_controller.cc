/**
 * @file
 * Tests for the self-tuning mode controller: legacy-latch equivalence,
 * hysteresis dead band, the dwell bound on switch frequency under
 * adversarial rate sequences, and dynamic topology selection.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "act/mode_controller.hh"
#include "common/rng.hh"

namespace act
{
namespace
{

ModeControllerConfig
tuningConfig()
{
    ModeControllerConfig config;
    config.self_tuning = true;
    return config;
}

TEST(ModeController, DormantPathReproducesTheRawLatch)
{
    const ModeControllerConfig config; // self_tuning = false
    ModeControllerState state;
    Rng rng(71);
    for (int i = 0; i < 2000; ++i) {
        const bool training = (rng.next(2) != 0);
        const double rate =
            static_cast<double>(rng.next(1000)) / 1000.0;
        const ModeDecision decision = modeControllerStep(
            config, 0.05, state, training, rate, 10, 10);
        const bool latch = training ? rate <= 0.05 : rate > 0.05;
        EXPECT_EQ(decision.switch_mode, latch);
        EXPECT_FALSE(decision.dwell_suppressed);
        EXPECT_FALSE(decision.grow);
        EXPECT_FALSE(decision.shrink);
    }
    // The dormant path never touches state: a later self-tuning run
    // starts from scratch exactly as if the latch had never stepped.
    EXPECT_FALSE(state.ewma_valid);
    EXPECT_EQ(state.intervals_in_mode, 0u);
}

TEST(ModeController, HysteresisDeadBandNeverSwitches)
{
    const ModeControllerConfig config = tuningConfig();
    ModeControllerState state;
    Rng rng(72);
    bool training = false;
    // Rates drawn strictly inside (exit_training, enter_training]: the
    // EWMA is a convex combination, so it stays in the band, and the
    // band requests no switch in either mode.
    for (int i = 0; i < 5000; ++i) {
        const double span = config.enter_training - config.exit_training;
        const double rate = config.exit_training +
                            span * (1.0 + rng.next(1000)) / 1001.0;
        const ModeDecision decision = modeControllerStep(
            config, 0.05, state, training, rate, 10, 10);
        EXPECT_FALSE(decision.switch_mode);
    }
}

TEST(ModeController, DwellBoundsSwitchesUnderAdversarialRates)
{
    ModeControllerConfig config = tuningConfig();
    config.ewma_alpha = 1.0; // Raw rates: the worst case for flapping.
    config.min_dwell_intervals = 5;
    const std::uint64_t intervals = 10000;

    // Adversarial sequences: alternating extremes, random extremes,
    // and a random walk — each trying to flip the mode every interval.
    for (const std::uint64_t variant : {0u, 1u, 2u}) {
        ModeControllerState state;
        Rng rng(100 + variant);
        bool training = false;
        std::uint64_t switches = 0;
        double walk = 0.05;
        for (std::uint64_t i = 0; i < intervals; ++i) {
            double rate = 0.0;
            switch (variant) {
            case 0: rate = (i % 2 == 0) ? 1.0 : 0.0; break;
            case 1: rate = (rng.next(2) != 0) ? 1.0 : 0.0; break;
            default:
                walk += (static_cast<double>(rng.next(2001)) - 1000.0) /
                        10000.0;
                walk = walk < 0.0 ? 0.0 : (walk > 1.0 ? 1.0 : walk);
                rate = walk;
                break;
            }
            const ModeDecision decision = modeControllerStep(
                config, 0.05, state, training, rate, 10, 10);
            if (decision.switch_mode) {
                training = !training;
                ++switches;
            }
        }
        // The dwell property: at most one switch per min_dwell
        // completed intervals, whatever the rate sequence does.
        EXPECT_LE(switches, intervals / config.min_dwell_intervals)
            << "variant " << variant;
        EXPECT_GT(switches, 0u) << "variant " << variant;
    }
}

TEST(ModeController, DwellSuppressionIsReported)
{
    ModeControllerConfig config = tuningConfig();
    config.ewma_alpha = 1.0;
    config.min_dwell_intervals = 4;
    ModeControllerState state;

    // Land in training, then demand an immediate exit: the first
    // post-switch intervals must be suppressed, not switched.
    ModeDecision decision =
        modeControllerStep(config, 0.05, state, false, 1.0, 10, 10);
    // A fresh state has no dwell history; the first switch may need a
    // few intervals. Step until it happens.
    bool training = false;
    for (int i = 0; i < 10 && !decision.switch_mode; ++i)
        decision = modeControllerStep(config, 0.05, state, training, 1.0,
                                      10, 10);
    ASSERT_TRUE(decision.switch_mode);
    training = true;

    std::uint64_t suppressed = 0;
    for (std::uint64_t i = 0; i + 1 < config.min_dwell_intervals; ++i) {
        decision = modeControllerStep(config, 0.05, state, training, 0.0,
                                      10, 10);
        EXPECT_FALSE(decision.switch_mode);
        suppressed += decision.dwell_suppressed ? 1 : 0;
    }
    EXPECT_EQ(suppressed, config.min_dwell_intervals - 1);
    decision = modeControllerStep(config, 0.05, state, training, 0.0, 10,
                                  10);
    EXPECT_TRUE(decision.switch_mode);
}

TEST(ModeController, EwmaAbsorbsASingleCorruptInterval)
{
    ModeControllerConfig config = tuningConfig();
    // Smoothing absorbs a lone spike only when one sample cannot carry
    // the EWMA past the enter threshold: alpha <= enter_training.
    config.ewma_alpha = 0.05;
    config.min_dwell_intervals = 1;
    ModeControllerState state;

    // A long clean testing history, then one 100%-misprediction
    // interval: the smoothed rate must stay under the enter threshold.
    for (int i = 0; i < 50; ++i) {
        const ModeDecision decision = modeControllerStep(
            config, 0.05, state, false, 0.0, 10, 10);
        EXPECT_FALSE(decision.switch_mode);
    }
    const ModeDecision spike =
        modeControllerStep(config, 0.05, state, false, 1.0, 10, 10);
    EXPECT_FALSE(spike.switch_mode);
    // The raw latch would have flipped on the same sample.
    const ModeControllerConfig latch;
    ModeControllerState none;
    EXPECT_TRUE(modeControllerStep(latch, 0.05, none, false, 1.0, 10, 10)
                    .switch_mode);
}

TEST(ModeController, GrowsOnlyAfterPatienceAndWithinBudget)
{
    ModeControllerConfig config = tuningConfig();
    config.dynamic_topology = true;
    config.ewma_alpha = 1.0;
    config.min_dwell_intervals = 1000000; // Isolate the topology logic.
    ModeControllerState state;

    std::size_t hidden = 9;
    std::uint64_t grows = 0;
    for (std::uint64_t i = 0; i < 3 * config.grow_patience; ++i) {
        const ModeDecision decision = modeControllerStep(
            config, 0.05, state, true, 1.0, hidden, 10);
        if (decision.grow) {
            ++grows;
            ++hidden;
        }
    }
    // 9 -> 10 after grow_patience poor intervals; at the budget the
    // controller must stop asking.
    EXPECT_EQ(grows, 1u);
    EXPECT_EQ(hidden, 10u);
}

TEST(ModeController, ShrinksOnlyWhenCalmAndAboveTheFloor)
{
    ModeControllerConfig config = tuningConfig();
    config.dynamic_topology = true;
    config.ewma_alpha = 1.0;
    config.min_dwell_intervals = 1000000;
    ModeControllerState state;

    std::size_t hidden = config.min_hidden + 1;
    std::uint64_t shrinks = 0;
    for (std::uint64_t i = 0; i < 3 * config.shrink_patience; ++i) {
        const ModeDecision decision = modeControllerStep(
            config, 0.05, state, false, 0.0, hidden, 10);
        if (decision.shrink) {
            ++shrinks;
            --hidden;
        }
    }
    EXPECT_EQ(shrinks, 1u);
    EXPECT_EQ(hidden, config.min_hidden);

    // A noisy interval resets the calm streak: no shrink for another
    // full patience window afterwards even above the floor.
    state = ModeControllerState{};
    hidden = 8;
    for (std::uint64_t i = 0; i + 1 < config.shrink_patience; ++i) {
        EXPECT_FALSE(modeControllerStep(config, 0.05, state, false, 0.0,
                                        hidden, 10)
                         .shrink);
    }
    EXPECT_FALSE(modeControllerStep(config, 0.05, state, false, 0.5,
                                    hidden, 10)
                     .shrink); // Noise: streak resets.
    for (std::uint64_t i = 0; i + 1 < config.shrink_patience; ++i) {
        EXPECT_FALSE(modeControllerStep(config, 0.05, state, false, 0.0,
                                        hidden, 10)
                         .shrink);
    }
    EXPECT_TRUE(modeControllerStep(config, 0.05, state, false, 0.0,
                                   hidden, 10)
                    .shrink);
}

} // namespace
} // namespace act
