/**
 * @file
 * Tests for the per-thread ensemble path of the ACT Module, plus the
 * differential golden pin: a dormant module (one member, legacy
 * latch, no protector) must remain bit-identical to the historical
 * onDependence behaviour.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <limits>

#include "act/act_module.hh"
#include "common/hashing.hh"
#include "deps/encoder.hh"

namespace act
{
namespace
{

/** Deterministic pseudo-weights in [-2, 2] (the golden generator's). */
std::vector<double>
pseudoWeights(std::size_t count, std::uint64_t s)
{
    std::vector<double> w(count);
    for (double &x : w) {
        s = hashCombine(s, 0x9e3779b97f4a7c15ULL);
        x = static_cast<double>(static_cast<std::int64_t>(s % 2001) -
                                1000) /
            500.0;
    }
    return w;
}

/** The golden generator's dependence stream. */
RawDependence
pseudoDep(std::uint64_t &seed, std::size_t i)
{
    seed = hash3(seed, i, 0x1234);
    return RawDependence{seed % 97, (seed >> 8) % 89,
                         ((seed >> 16) & 1) != 0};
}

/**
 * Differential pin: drive a fully dormant module through 20000
 * deterministic dependences and hash every observable — per-dep
 * output bits, classification, flag, mode, final counters, Debug
 * Buffer contents. The constant was generated on the pre-Adaptivity
 * code path; any drift in the K=1/legacy-latch behaviour (ensemble
 * refactor, mode controller, weight protection hook) breaks it.
 */
TEST(EnsembleDifferential, DormantModuleMatchesGoldenHash)
{
    ActConfig config;
    config.interval_length = 50; // Small, so mode switches happen.
    PairEncoder encoder;
    ActModule module(config, encoder);
    WeightStore store(config.topology);
    store.set(0, pseudoWeights(store.weightCount(), 0x5eedULL));
    module.initThread(0, store);

    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](std::uint64_t v) { h = hashCombine(h, v); };
    std::uint64_t seed = 0xac7f00dULL;
    for (std::size_t i = 0; i < 20000; ++i) {
        const RawDependence dep = pseudoDep(seed, i);
        const ActOutcome out = module.onDependence(dep, 0, i);
        std::uint64_t bits = 0;
        std::memcpy(&bits, &out.output, sizeof(bits));
        mix(bits);
        mix(out.classified ? 1 : 0);
        mix(out.predicted_invalid ? 1 : 0);
        mix(static_cast<std::uint64_t>(module.mode()));
    }
    const ActModuleStats &st = module.stats();
    mix(st.predictions);
    mix(st.predicted_invalid);
    mix(st.train_updates);
    mix(st.mode_switches);
    mix(st.training_dependences);
    mix(st.debug_buffer_overwrites);
    for (const auto &e : module.debugBuffer().entries()) {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &e.output, sizeof(bits));
        mix(bits);
        mix(e.when);
    }
    EXPECT_EQ(h, 0x8e60fdaafd3b7bb6ULL);
}

/** Ensemble config sized within the M = 10 neuron budget. */
ActConfig
ensembleConfig(std::size_t members)
{
    ActConfig config;
    config.topology = Topology{6, 3}; // K=3 x h=3 <= M=10.
    config.ensemble.members = members;
    // One giant interval: no mode switch can perturb the comparison.
    config.interval_length = 1u << 30;
    return config;
}

TEST(Ensemble, MemberCountAndQuorumDefaults)
{
    PairEncoder encoder;
    {
        ActModule dormant(ensembleConfig(1), encoder);
        EXPECT_EQ(dormant.memberCount(), 1u);
        EXPECT_EQ(dormant.quorum(), 1u);
    }
    {
        ActModule trio(ensembleConfig(3), encoder);
        EXPECT_EQ(trio.memberCount(), 3u);
        EXPECT_EQ(trio.quorum(), 2u); // Majority of 3.
    }
    {
        ActConfig config = ensembleConfig(3);
        config.ensemble.quorum = 3; // Unanimity.
        ActModule strict(config, encoder);
        EXPECT_EQ(strict.quorum(), 3u);
    }
    {
        // An out-of-range quorum is rejected at module construction;
        // the config-level accessor falls back to the majority.
        EnsembleConfig config;
        config.quorum = 7;
        EXPECT_EQ(config.effectiveQuorum(3), 2u);
    }
}

TEST(Ensemble, UnanimousMembersMatchSingleNetworkFlags)
{
    PairEncoder encoder;
    ActModule single(ensembleConfig(1), encoder);
    ActModule trio(ensembleConfig(3), encoder);

    // Only the member-0 set exists: the extras fall back to it, so all
    // three members are clones and every vote is unanimous.
    WeightStore store(Topology{6, 3});
    store.set(0, pseudoWeights(store.weightCount(), 0x77ULL));
    single.initThread(0, store);
    trio.initThread(0, store);

    std::uint64_t seed = 0xac7f00dULL;
    for (std::size_t i = 0; i < 4000; ++i) {
        const RawDependence dep = pseudoDep(seed, i);
        const ActOutcome a = single.onDependence(dep, 0, i);
        const ActOutcome b = trio.onDependence(dep, 0, i);
        ASSERT_EQ(a.predicted_invalid, b.predicted_invalid) << i;
        ASSERT_EQ(a.output, b.output) << i;
    }
    EXPECT_EQ(trio.stats().ensemble_disagreements, 0u);
    EXPECT_EQ(trio.stats().quorum_overrides, 0u);
    EXPECT_EQ(trio.ensembleHealth(), 1.0);
    EXPECT_EQ(single.stats().predicted_invalid,
              trio.stats().predicted_invalid);
}

TEST(Ensemble, DisagreementLowersHealthAndCountsOverrides)
{
    PairEncoder encoder;
    ActModule trio(ensembleConfig(3), encoder);

    // Three genuinely different member sets: votes will split.
    WeightStore store(Topology{6, 3});
    store.set(0, pseudoWeights(store.weightCount(), 0x1ULL));
    store.setMember(0, 1, pseudoWeights(store.weightCount(), 0x2ULL));
    store.setMember(0, 2, pseudoWeights(store.weightCount(), 0x3ULL));
    trio.initThread(0, store);

    std::uint64_t seed = 0xfeedULL;
    std::uint64_t member0_flags = 0;
    for (std::size_t i = 0; i < 6000; ++i) {
        const ActOutcome out = trio.onDependence(pseudoDep(seed, i), 0, i);
        member0_flags += (out.output < 0.5) ? 1 : 0;
    }
    const ActModuleStats &st = trio.stats();
    EXPECT_GT(st.ensemble_disagreements, 0u);
    EXPECT_LT(trio.ensembleHealth(), 1.0);
    // Overrides happen exactly when the quorum disagrees with member
    // 0, so they are bounded by the split votes.
    EXPECT_LE(st.quorum_overrides, st.ensemble_disagreements);
    // And the flag the run reports is the quorum's, not member 0's.
    EXPECT_NE(st.predicted_invalid, member0_flags);
}

TEST(Ensemble, SaveRestoreRoundTripsConcatenatedMembers)
{
    PairEncoder encoder;
    ActModule trio(ensembleConfig(3), encoder);
    WeightStore store(Topology{6, 3});
    store.set(0, pseudoWeights(store.weightCount(), 0x1ULL));
    store.setMember(0, 1, pseudoWeights(store.weightCount(), 0x2ULL));
    store.setMember(0, 2, pseudoWeights(store.weightCount(), 0x3ULL));
    trio.initThread(0, store);

    const std::vector<double> saved = trio.saveWeights();
    ASSERT_EQ(saved.size(), 3 * store.weightCount());

    // The chunks are member-major and round-trip exactly.
    std::vector<double> perturbed = saved;
    perturbed[store.weightCount() + 1] = 1.5; // Member 1, weight 1.
    trio.restoreWeights(perturbed);
    EXPECT_EQ(trio.saveWeights(), perturbed);
    EXPECT_EQ(trio.stats().quarantined_weight_sets, 0u);
}

TEST(Ensemble, RestoreQuarantinesACorruptChunk)
{
    PairEncoder encoder;
    ActModule trio(ensembleConfig(3), encoder);
    WeightStore store(Topology{6, 3});
    store.set(0, pseudoWeights(store.weightCount(), 0x1ULL));
    trio.initThread(0, store);
    ASSERT_EQ(trio.mode(), ActMode::kTesting);

    std::vector<double> saved = trio.saveWeights();
    // Poison one weight inside the *last* member's chunk: the whole
    // concatenated set is rejected — members load together or not at
    // all, a torn half-ensemble would skew every quorum vote.
    saved[2 * store.weightCount() + 4] =
        std::numeric_limits<double>::quiet_NaN();
    trio.restoreWeights(saved);
    EXPECT_EQ(trio.stats().quarantined_weight_sets, 1u);
    EXPECT_EQ(trio.mode(), ActMode::kTraining);
    for (const double w : trio.saveWeights())
        EXPECT_EQ(w, 0.0);
}

TEST(Ensemble, ExportWritesMemberSlotsBackToTheStore)
{
    PairEncoder encoder;
    ActModule trio(ensembleConfig(3), encoder);
    WeightStore store(Topology{6, 3});
    store.set(0, pseudoWeights(store.weightCount(), 0x1ULL));
    store.setMember(0, 1, pseudoWeights(store.weightCount(), 0x2ULL));
    store.setMember(0, 2, pseudoWeights(store.weightCount(), 0x3ULL));
    trio.initThread(0, store);

    WeightStore out(Topology{6, 3});
    trio.exportWeights(out, 7);
    ASSERT_TRUE(out.get(7).has_value());
    ASSERT_TRUE(out.getMember(7, 1).has_value());
    ASSERT_TRUE(out.getMember(7, 2).has_value());
    EXPECT_EQ(out.memberCountFor(7), 3u);

    // The exported values are the module's live (Q15.16-quantised)
    // registers, member-major exactly as saveWeights lays them out.
    const std::vector<double> all = trio.saveWeights();
    const std::size_t chunk = store.weightCount();
    const auto member_chunk = [&](std::size_t m) {
        return std::vector<double>(all.begin() + m * chunk,
                                   all.begin() + (m + 1) * chunk);
    };
    EXPECT_EQ(*out.get(7), member_chunk(0));
    EXPECT_EQ(*out.getMember(7, 1), member_chunk(1));
    EXPECT_EQ(*out.getMember(7, 2), member_chunk(2));
}

TEST(Ensemble, CorruptMemberSetFallsBackToMemberZero)
{
    PairEncoder encoder;
    ActModule trio(ensembleConfig(3), encoder);
    WeightStore store(Topology{6, 3});
    const std::vector<double> base =
        pseudoWeights(store.weightCount(), 0x1ULL);
    store.set(0, base);
    std::vector<double> bad = pseudoWeights(store.weightCount(), 0x2ULL);
    bad[0] = std::numeric_limits<double>::infinity();
    store.setMember(0, 1, bad);
    trio.initThread(0, store);

    // The corrupt member-1 set was quarantined and the member degraded
    // to a clone of member 0; the module itself stays in testing mode
    // on its good primary weights. Both copies pass through the same
    // Q15.16 quantisation, so the register chunks compare exactly.
    EXPECT_EQ(trio.stats().quarantined_weight_sets, 1u);
    EXPECT_EQ(trio.mode(), ActMode::kTesting);
    const std::vector<double> all = trio.saveWeights();
    const std::size_t chunk = store.weightCount();
    const std::vector<double> member0(all.begin(), all.begin() + chunk);
    const std::vector<double> member1(all.begin() + chunk,
                                      all.begin() + 2 * chunk);
    EXPECT_EQ(member1, member0);
}

} // namespace
} // namespace act
