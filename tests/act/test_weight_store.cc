/**
 * @file
 * Tests for per-thread weight persistence.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "act/weight_store.hh"

namespace act
{
namespace
{

TEST(WeightStore, WeightCountMatchesTopology)
{
    const WeightStore store(Topology{6, 10});
    EXPECT_EQ(store.weightCount(), 10u * 7u + 11u);
}

TEST(WeightStore, GetMissingReturnsNullopt)
{
    const WeightStore store(Topology{3, 4});
    EXPECT_FALSE(store.has(7));
    EXPECT_FALSE(store.get(7).has_value());
}

TEST(WeightStore, SetAndGet)
{
    WeightStore store(Topology{3, 4});
    std::vector<double> weights(store.weightCount(), 0.25);
    store.set(2, weights);
    EXPECT_TRUE(store.has(2));
    const auto got = store.get(2);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, weights);
}

TEST(WeightStore, SetAllCoversThreadRange)
{
    WeightStore store(Topology{3, 4});
    std::vector<double> weights(store.weightCount(), -0.5);
    store.setAll(4, weights);
    EXPECT_EQ(store.size(), 4u);
    for (ThreadId tid = 0; tid < 4; ++tid)
        EXPECT_TRUE(store.has(tid));
    EXPECT_FALSE(store.has(4));
}

TEST(WeightStore, SaveLoadRoundTrip)
{
    WeightStore store(Topology{4, 6});
    std::vector<double> w0(store.weightCount());
    std::vector<double> w1(store.weightCount());
    for (std::size_t i = 0; i < w0.size(); ++i) {
        w0[i] = 0.01 * static_cast<double>(i);
        w1[i] = -0.02 * static_cast<double>(i);
    }
    store.set(0, w0);
    store.set(1, w1);

    const std::string path =
        std::string(::testing::TempDir()) + "weights.bin";
    ASSERT_TRUE(store.save(path));

    WeightStore loaded;
    ASSERT_TRUE(loaded.load(path));
    EXPECT_EQ(loaded.topology(), (Topology{4, 6}));
    EXPECT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded.get(0), w0);
    EXPECT_EQ(loaded.get(1), w1);
    std::remove(path.c_str());
}

TEST(WeightStore, LoadMissingFileFails)
{
    WeightStore store;
    EXPECT_FALSE(store.load("/nonexistent/weights.bin"));
}

} // namespace
} // namespace act
