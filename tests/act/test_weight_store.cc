/**
 * @file
 * Tests for per-thread weight persistence.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "act/weight_store.hh"

namespace act
{
namespace
{

TEST(WeightStore, WeightCountMatchesTopology)
{
    const WeightStore store(Topology{6, 10});
    EXPECT_EQ(store.weightCount(), 10u * 7u + 11u);
}

TEST(WeightStore, GetMissingReturnsNullopt)
{
    const WeightStore store(Topology{3, 4});
    EXPECT_FALSE(store.has(7));
    EXPECT_FALSE(store.get(7).has_value());
}

TEST(WeightStore, SetAndGet)
{
    WeightStore store(Topology{3, 4});
    std::vector<double> weights(store.weightCount(), 0.25);
    store.set(2, weights);
    EXPECT_TRUE(store.has(2));
    const auto got = store.get(2);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, weights);
}

TEST(WeightStore, SetAllCoversThreadRange)
{
    WeightStore store(Topology{3, 4});
    std::vector<double> weights(store.weightCount(), -0.5);
    store.setAll(4, weights);
    EXPECT_EQ(store.size(), 4u);
    for (ThreadId tid = 0; tid < 4; ++tid)
        EXPECT_TRUE(store.has(tid));
    EXPECT_FALSE(store.has(4));
}

TEST(WeightStore, SaveLoadRoundTrip)
{
    WeightStore store(Topology{4, 6});
    std::vector<double> w0(store.weightCount());
    std::vector<double> w1(store.weightCount());
    for (std::size_t i = 0; i < w0.size(); ++i) {
        w0[i] = 0.01 * static_cast<double>(i);
        w1[i] = -0.02 * static_cast<double>(i);
    }
    store.set(0, w0);
    store.set(1, w1);

    const std::string path =
        std::string(::testing::TempDir()) + "weights.bin";
    ASSERT_TRUE(store.save(path));

    WeightStore loaded;
    ASSERT_TRUE(loaded.load(path));
    EXPECT_EQ(loaded.topology(), (Topology{4, 6}));
    EXPECT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded.get(0), w0);
    EXPECT_EQ(loaded.get(1), w1);
    std::remove(path.c_str());
}

TEST(WeightStore, LoadMissingFileFails)
{
    WeightStore store;
    EXPECT_FALSE(store.load("/nonexistent/weights.bin"));
}

TEST(WeightStore, MemberZeroAliasesThePlainSet)
{
    WeightStore store(Topology{3, 4});
    std::vector<double> weights(store.weightCount(), 0.125);
    store.set(1, weights);
    EXPECT_TRUE(store.hasMember(1, 0));
    EXPECT_EQ(store.getMember(1, 0), store.get(1));
    EXPECT_EQ(store.memberCountFor(1), 1u);
    EXPECT_TRUE(store.memberIds().empty());
}

TEST(WeightStore, MemberSetAndGetRoundTrip)
{
    WeightStore store(Topology{3, 4});
    std::vector<double> w0(store.weightCount(), 0.1);
    std::vector<double> w1(store.weightCount(), 0.2);
    std::vector<double> w2(store.weightCount(), 0.3);
    store.set(5, w0);
    store.setMember(5, 1, w1);
    store.setMember(5, 2, w2);

    EXPECT_EQ(store.memberCountFor(5), 3u);
    EXPECT_EQ(store.getMember(5, 1), w1);
    EXPECT_EQ(store.getMember(5, 2), w2);
    EXPECT_FALSE(store.getMember(5, 3).has_value());
    EXPECT_FALSE(store.getMember(4, 1).has_value());

    // Ids are (member << 32 | tid), sorted for audits.
    const std::vector<std::uint64_t> ids = store.memberIds();
    ASSERT_EQ(ids.size(), 2u);
    EXPECT_EQ(ids[0], weightSetId(5, 1));
    EXPECT_EQ(ids[1], weightSetId(5, 2));
    EXPECT_LT(ids[0], ids[1]);
}

TEST(WeightStore, SaveLoadCarriesEnsembleMembers)
{
    WeightStore store(Topology{4, 6});
    std::vector<double> w0(store.weightCount());
    std::vector<double> m1(store.weightCount());
    for (std::size_t i = 0; i < w0.size(); ++i) {
        w0[i] = 0.01 * static_cast<double>(i);
        m1[i] = -0.03 * static_cast<double>(i);
    }
    store.set(0, w0);
    store.setMember(0, 1, m1);

    const std::string path =
        std::string(::testing::TempDir()) + "weights_members.bin";
    ASSERT_TRUE(store.save(path));
    WeightStore loaded;
    ASSERT_TRUE(loaded.load(path));
    EXPECT_EQ(loaded.get(0), w0);
    EXPECT_EQ(loaded.getMember(0, 1), m1);
    EXPECT_EQ(loaded.memberCountFor(0), 2u);
    std::remove(path.c_str());
}

TEST(WeightStore, SingleMemberSaveStaysInThePreEnsembleFormat)
{
    // A store with no ensemble extras must serialise byte-identically
    // to the pre-ensemble writer, so old tooling keeps reading new
    // files (and vice versa).
    WeightStore store(Topology{4, 6});
    std::vector<double> w0(store.weightCount(), 0.5);
    store.set(0, w0);

    const std::string plain =
        std::string(::testing::TempDir()) + "weights_plain.bin";
    ASSERT_TRUE(store.save(plain));
    WeightStore loaded;
    ASSERT_TRUE(loaded.load(plain));
    EXPECT_TRUE(loaded.memberIds().empty());
    EXPECT_EQ(loaded.get(0), w0);
    std::remove(plain.c_str());
}

} // namespace
} // namespace act
