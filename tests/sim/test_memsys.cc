/**
 * @file
 * Tests for the MESI memory system and the last-writer extension.
 */

#include <gtest/gtest.h>

#include "sim/memsys.hh"

namespace act
{
namespace
{

TraceEvent
store(ThreadId tid, Pc pc, Addr addr)
{
    TraceEvent e;
    e.kind = EventKind::kStore;
    e.tid = tid;
    e.pc = pc;
    e.addr = addr;
    return e;
}

TraceEvent
load(ThreadId tid, Pc pc, Addr addr)
{
    TraceEvent e;
    e.kind = EventKind::kLoad;
    e.tid = tid;
    e.pc = pc;
    e.addr = addr;
    return e;
}

MemSystemConfig
smallConfig()
{
    MemSystemConfig c;
    c.cores = 4;
    return c;
}

TEST(MemorySystem, FirstReadIsExclusiveFromMemory)
{
    MemorySystem mem(smallConfig());
    const MemAccess a = mem.access(0, load(0, 0x10, 0x1000));
    EXPECT_EQ(a.level, AccessLevel::kMemory);
    EXPECT_EQ(a.prior_state, Mesi::kInvalid);
    // The re-read hits locally.
    const MemAccess b = mem.access(0, load(0, 0x10, 0x1000));
    EXPECT_EQ(b.level, AccessLevel::kL1);
    EXPECT_EQ(b.prior_state, Mesi::kExclusive);
}

TEST(MemorySystem, SecondReaderSeesSharedState)
{
    MemorySystem mem(smallConfig());
    mem.access(0, load(0, 0x10, 0x1000));
    const MemAccess remote = mem.access(1, load(1, 0x20, 0x1000));
    // The E owner supplies the line; both end shared.
    EXPECT_EQ(remote.level, AccessLevel::kRemote);
    const MemAccess again = mem.access(0, load(0, 0x10, 0x1000));
    EXPECT_EQ(again.prior_state, Mesi::kShared);
}

TEST(MemorySystem, StoreInvalidatesSharers)
{
    MemorySystem mem(smallConfig());
    mem.access(0, load(0, 0x10, 0x1000));
    mem.access(1, load(1, 0x20, 0x1000));
    const auto invalidations_before = mem.stats().invalidations;
    mem.access(0, store(0, 0x30, 0x1000));
    EXPECT_EQ(mem.stats().invalidations, invalidations_before + 1);
    // Core 1 must now miss.
    const MemAccess miss = mem.access(1, load(1, 0x20, 0x1000));
    EXPECT_EQ(miss.prior_state, Mesi::kInvalid);
    EXPECT_EQ(miss.level, AccessLevel::kRemote); // dirty c2c transfer
}

TEST(MemorySystem, LocalStoreLoadFormsDependence)
{
    MemorySystem mem(smallConfig());
    mem.access(0, store(0, 0x30, 0x1000));
    const MemAccess a = mem.access(0, load(0, 0x40, 0x1000));
    ASSERT_TRUE(a.last_writer.has_value());
    EXPECT_EQ(a.last_writer->pc, 0x30u);
    EXPECT_EQ(a.last_writer->tid, 0u);
}

TEST(MemorySystem, DirtyCacheToCachePiggybacksWriter)
{
    MemorySystem mem(smallConfig());
    mem.access(0, store(0, 0x30, 0x1000));
    const MemAccess remote = mem.access(1, load(1, 0x40, 0x1000));
    EXPECT_EQ(remote.level, AccessLevel::kRemote);
    ASSERT_TRUE(remote.last_writer.has_value());
    EXPECT_EQ(remote.last_writer->pc, 0x30u);
    EXPECT_EQ(remote.last_writer->tid, 0u);
}

TEST(MemorySystem, ThirdSharerLosesWriterByDefault)
{
    MemorySystem mem(smallConfig());
    mem.access(0, store(0, 0x30, 0x1000));
    mem.access(1, load(1, 0x40, 0x1000)); // dirty c2c, owner now S
    // A third reader finds only clean S copies: MESI serves it from
    // memory and, per Section V, no metadata travels with it.
    const MemAccess third = mem.access(2, load(2, 0x50, 0x1000));
    EXPECT_EQ(third.level, AccessLevel::kMemory);
    EXPECT_FALSE(third.last_writer.has_value());
}

TEST(MemorySystem, AlwaysPiggybackFlagCopiesFromSharers)
{
    MemSystemConfig config = smallConfig();
    config.always_piggyback_writer = true;
    MemorySystem mem(config);
    mem.access(0, store(0, 0x30, 0x1000));
    mem.access(1, load(1, 0x40, 0x1000));
    const MemAccess third = mem.access(2, load(2, 0x50, 0x1000));
    ASSERT_TRUE(third.last_writer.has_value());
    EXPECT_EQ(third.last_writer->pc, 0x30u);
}

TEST(MemorySystem, WritebackMetadataFlagSurvivesEviction)
{
    MemSystemConfig config = smallConfig();
    config.writeback_writer_metadata = true;
    config.l1_bytes = 256;
    config.l1_assoc = 1;
    config.l2_bytes = 512;
    config.l2_assoc = 1;
    MemorySystem mem(config);
    mem.access(0, store(0, 0x30, 0x0));
    for (int i = 1; i <= 4; ++i)
        mem.access(0, store(0, 0x99, 0x0 + i * 8 * 64));
    const MemAccess a = mem.access(0, load(0, 0x40, 0x0));
    EXPECT_EQ(a.level, AccessLevel::kMemory);
    ASSERT_TRUE(a.last_writer.has_value());
    EXPECT_EQ(a.last_writer->pc, 0x30u);
}

TEST(MemorySystem, WordGranularityKeepsNeighboursApart)
{
    MemorySystem mem(smallConfig());
    mem.access(0, store(0, 0x30, 0x1000));
    mem.access(0, store(0, 0x31, 0x1004)); // next word, same line
    const MemAccess a = mem.access(0, load(0, 0x40, 0x1000));
    ASSERT_TRUE(a.last_writer.has_value());
    EXPECT_EQ(a.last_writer->pc, 0x30u);
}

TEST(MemorySystem, LineGranularityAliasesNeighbours)
{
    MemSystemConfig config = smallConfig();
    config.writer_granularity = Granularity::kLine;
    MemorySystem mem(config);
    mem.access(0, store(0, 0x30, 0x1000));
    mem.access(1, store(1, 0x31, 0x1004)); // same line, other word
    const MemAccess a = mem.access(0, load(0, 0x40, 0x1000));
    ASSERT_TRUE(a.last_writer.has_value());
    // False sharing: the line-level writer is the later store.
    EXPECT_EQ(a.last_writer->pc, 0x31u);
}

TEST(MemorySystem, EvictionDropsWriterMetadata)
{
    MemSystemConfig config = smallConfig();
    config.l1_bytes = 256; // 4 lines
    config.l1_assoc = 1;
    config.l2_bytes = 512; // 8 lines
    config.l2_assoc = 1;
    MemorySystem mem(config);
    mem.access(0, store(0, 0x30, 0x0));
    // Walk enough conflicting lines to evict line 0 from the
    // direct-mapped 8-set L2 (stride = 8 lines * 64B).
    for (int i = 1; i <= 4; ++i)
        mem.access(0, store(0, 0x99, 0x0 + i * 8 * 64));
    EXPECT_GT(mem.stats().evictions, 0u);
    const MemAccess a = mem.access(0, load(0, 0x40, 0x0));
    EXPECT_EQ(a.level, AccessLevel::kMemory);
    EXPECT_FALSE(a.last_writer.has_value());
}

TEST(MemorySystem, LatencyOrdering)
{
    MemorySystem mem(smallConfig());
    const MemAccess memory = mem.access(0, load(0, 0x10, 0x2000));
    const MemAccess l1 = mem.access(0, load(0, 0x10, 0x2000));
    mem.access(1, store(1, 0x20, 0x3000));
    const MemAccess remote = mem.access(0, load(0, 0x10, 0x3000));
    EXPECT_LT(l1.latency, remote.latency);
    EXPECT_LT(remote.latency, memory.latency);
    EXPECT_EQ(l1.latency, 2u);
    EXPECT_EQ(memory.latency, 2u + 10u + 300u);
}

TEST(MemorySystem, StatsAccumulate)
{
    MemorySystem mem(smallConfig());
    mem.access(0, store(0, 0x30, 0x1000));
    mem.access(0, load(0, 0x40, 0x1000));
    mem.access(1, load(1, 0x50, 0x1000));
    const MemSystemStats &s = mem.stats();
    EXPECT_EQ(s.stores, 1u);
    EXPECT_EQ(s.loads, 2u);
    EXPECT_EQ(s.cache_to_cache, 1u);
    EXPECT_EQ(s.writer_known, 2u);
}

TEST(MemorySystem, ResetClearsCachesNotStats)
{
    MemorySystem mem(smallConfig());
    mem.access(0, store(0, 0x30, 0x1000));
    mem.reset();
    const MemAccess a = mem.access(0, load(0, 0x40, 0x1000));
    EXPECT_EQ(a.level, AccessLevel::kMemory);
    EXPECT_FALSE(a.last_writer.has_value());
    EXPECT_EQ(mem.stats().stores, 1u);
}

/** Line-size sweep (Table III: 4..128 B). */
class MemLineSize : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(MemLineSize, TransferCyclesScaleWithLineSize)
{
    MemSystemConfig config = smallConfig();
    config.line_bytes = GetParam();
    EXPECT_EQ(config.lineTransferCycles(),
              (GetParam() + 31) / 32);
    MemorySystem mem(config);
    mem.access(0, store(0, 0x30, 0x1000));
    const MemAccess a = mem.access(0, load(0, 0x40, 0x1000));
    ASSERT_TRUE(a.last_writer.has_value());
}

INSTANTIATE_TEST_SUITE_P(Sizes, MemLineSize,
                         ::testing::Values(4, 32, 64, 128));

} // namespace
} // namespace act
