/**
 * @file
 * Reproducibility properties: identical configurations and seeds must
 * produce bit-identical simulations — the property every bench and
 * every EXPERIMENTS.md number relies on.
 */

#include <gtest/gtest.h>

#include "diagnosis/pipeline.hh"

namespace act
{
namespace
{

class DeterminismFixture : public ::testing::Test
{
  protected:
    void SetUp() override { registerAllWorkloads(); }
};

TEST_F(DeterminismFixture, SystemRunsAreBitIdentical)
{
    const auto workload = makeWorkload("fft");
    WorkloadParams params;
    params.seed = 77;
    const Trace trace = workload->record(params);

    PairEncoder encoder;
    SystemConfig config;
    config.act.topology = Topology{6, 10};
    WeightStore store(config.act.topology);
    store.setAll(workload->threadCount(),
                 std::vector<double>(store.weightCount(), 0.05));

    System a(config, encoder, store);
    System b(config, encoder, store);
    a.run(trace);
    b.run(trace);

    const SystemStats sa = a.stats();
    const SystemStats sb = b.stats();
    EXPECT_EQ(sa.cycles, sb.cycles);
    EXPECT_EQ(sa.instructions, sb.instructions);
    EXPECT_EQ(sa.act.predictions, sb.act.predictions);
    EXPECT_EQ(sa.act.predicted_invalid, sb.act.predicted_invalid);
    EXPECT_EQ(sa.act.stall_cycles, sb.act.stall_cycles);

    const auto ea = a.collectDebugEntries();
    const auto eb = b.collectDebugEntries();
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].sequence, eb[i].sequence) << i;
        EXPECT_DOUBLE_EQ(ea[i].output, eb[i].output) << i;
    }
}

TEST_F(DeterminismFixture, OfflineTrainingIsReproducible)
{
    const auto workload = makeWorkload("bc");
    OfflineTrainingConfig config;
    config.traces = 3;
    config.trainer.max_epochs = 60;
    PairEncoder enc_a;
    PairEncoder enc_b;
    const TrainedModel a = offlineTrain(*workload, enc_a, config);
    const TrainedModel b = offlineTrain(*workload, enc_b, config);
    EXPECT_EQ(a.weights, b.weights);
    EXPECT_EQ(a.example_count, b.example_count);
    EXPECT_EQ(a.dependence_count, b.dependence_count);
}

TEST_F(DeterminismFixture, DiagnosisIsReproducible)
{
    const auto workload = makeWorkload("seq");
    DiagnosisSetup setup = defaultDiagnosisSetup();
    setup.training.traces = 4;
    setup.training.trainer.max_epochs = 100;
    setup.postmortem_traces = 5;
    const DiagnosisResult a = diagnoseFailure(*workload, setup);
    const DiagnosisResult b = diagnoseFailure(*workload, setup);
    EXPECT_EQ(a.rank, b.rank);
    EXPECT_EQ(a.debug_position, b.debug_position);
    EXPECT_EQ(a.report.ranked.size(), b.report.ranked.size());
}

/**
 * Diagnosis keeps working across last-writer granularities and line
 * sizes (Table III's sweep dimension).
 */
class DiagnosisGranularity
    : public ::testing::TestWithParam<std::uint32_t>
{
  protected:
    void SetUp() override { registerAllWorkloads(); }
};

TEST_P(DiagnosisGranularity, GzipDiagnosedAtEveryLineSize)
{
    const auto workload = makeWorkload("gzip");
    DiagnosisSetup setup = defaultDiagnosisSetup();
    setup.training.traces = 6;
    setup.postmortem_traces = 8;
    setup.system.mem.line_bytes = GetParam();
    setup.system.mem.writer_granularity =
        GetParam() == 4 ? Granularity::kWord : Granularity::kLine;
    const DiagnosisResult result = diagnoseFailure(*workload, setup);
    ASSERT_TRUE(result.rank.has_value()) << GetParam() << "B lines";
    EXPECT_LE(*result.rank, 8u);
}

INSTANTIATE_TEST_SUITE_P(LineSizes, DiagnosisGranularity,
                         ::testing::Values(4, 32, 64, 128));

} // namespace
} // namespace act
