/**
 * @file
 * Property tests of the MESI protocol: invariants that must hold after
 * every access of a randomized workload.
 *
 *  - SWMR: at most one core holds a line Modified or Exclusive, and
 *    then no other core holds it at all;
 *  - Shared copies co-exist only in the S state;
 *  - loads never destroy remote ownership beyond the required
 *    downgrade (M/E -> S), stores always leave exactly one M copy.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sim/memsys.hh"

namespace act
{
namespace
{

MemSystemConfig
smallConfig(std::uint32_t cores)
{
    MemSystemConfig config;
    config.cores = cores;
    return config;
}

/** Check the single-writer / multiple-reader invariant for one line. */
void
checkSwmr(const MemorySystem &memory, std::uint32_t cores, Addr addr)
{
    std::uint32_t owners = 0;  // M or E holders
    std::uint32_t sharers = 0; // S holders
    for (CoreId c = 0; c < cores; ++c) {
        switch (memory.stateOf(c, addr)) {
          case Mesi::kModified:
          case Mesi::kExclusive:
            ++owners;
            break;
          case Mesi::kShared:
            ++sharers;
            break;
          case Mesi::kInvalid:
            break;
        }
    }
    EXPECT_LE(owners, 1u) << "multiple owners of line 0x" << std::hex
                          << addr;
    if (owners == 1) {
        EXPECT_EQ(sharers, 0u) << "owner co-exists with sharers";
    }
}

/** Randomized access property sweep over core counts. */
class MesiInvariants : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(MesiInvariants, SwmrHoldsUnderRandomTraffic)
{
    const std::uint32_t cores = GetParam();
    MemorySystem memory(smallConfig(cores));
    Rng rng(cores * 1000 + 17);

    constexpr int kLines = 24;
    for (int i = 0; i < 4000; ++i) {
        TraceEvent event;
        event.kind = rng.chance(0.4) ? EventKind::kStore
                                     : EventKind::kLoad;
        event.tid = static_cast<ThreadId>(rng.next(cores));
        event.addr = 0x10000 + rng.next(kLines) * 64 + rng.next(16) * 4;
        event.pc = 0x100 + rng.next(64);
        memory.access(event.tid % cores, event);
        checkSwmr(memory, cores, event.addr);
    }
}

TEST_P(MesiInvariants, StoreLeavesExactlyOneModifiedCopy)
{
    const std::uint32_t cores = GetParam();
    MemorySystem memory(smallConfig(cores));
    Rng rng(cores * 77 + 3);
    for (int i = 0; i < 1000; ++i) {
        // Random warm-up reads, then a store: the writer must end M,
        // everyone else I.
        const Addr addr = 0x20000 + rng.next(8) * 64;
        for (std::uint32_t r = 0; r < cores; ++r) {
            if (rng.chance(0.5)) {
                TraceEvent load;
                load.kind = EventKind::kLoad;
                load.tid = r;
                load.addr = addr;
                memory.access(r, load);
            }
        }
        const auto writer = static_cast<CoreId>(rng.next(cores));
        TraceEvent store;
        store.kind = EventKind::kStore;
        store.tid = writer;
        store.addr = addr;
        memory.access(writer, store);
        EXPECT_EQ(memory.stateOf(writer, addr), Mesi::kModified);
        for (CoreId c = 0; c < cores; ++c) {
            if (c != writer) {
                EXPECT_EQ(memory.stateOf(c, addr), Mesi::kInvalid);
            }
        }
    }
}

TEST_P(MesiInvariants, LoadDowngradesOwnerToShared)
{
    const std::uint32_t cores = GetParam();
    if (cores < 2)
        GTEST_SKIP();
    MemorySystem memory(smallConfig(cores));
    TraceEvent store;
    store.kind = EventKind::kStore;
    store.tid = 0;
    store.addr = 0x30000;
    memory.access(0, store);
    ASSERT_EQ(memory.stateOf(0, 0x30000), Mesi::kModified);

    TraceEvent load;
    load.kind = EventKind::kLoad;
    load.tid = 1;
    load.addr = 0x30000;
    memory.access(1, load);
    EXPECT_EQ(memory.stateOf(0, 0x30000), Mesi::kShared);
    EXPECT_EQ(memory.stateOf(1, 0x30000), Mesi::kShared);
}

INSTANTIATE_TEST_SUITE_P(Cores, MesiInvariants,
                         ::testing::Values(1, 2, 4, 8, 16));

} // namespace
} // namespace act
