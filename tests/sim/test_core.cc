/**
 * @file
 * Tests for the per-core timing model.
 */

#include <gtest/gtest.h>

#include "sim/core.hh"

namespace act
{
namespace
{

TEST(Core, IssueWidthLimitsPlainInstructions)
{
    Core core(CoreConfig{});
    core.advanceInstructions(10); // 2-issue: 5 cycles
    EXPECT_EQ(core.cycle(), 5u);
    core.advanceInstructions(3); // ceil(3/2) = 2
    EXPECT_EQ(core.cycle(), 7u);
    EXPECT_EQ(core.stats().instructions, 13u);
}

TEST(Core, WiderIssue)
{
    CoreConfig config;
    config.issue_width = 4;
    Core core(config);
    core.advanceInstructions(10);
    EXPECT_EQ(core.cycle(), 3u); // ceil(10/4)
}

TEST(Core, LoadExposesLatencyMinusOne)
{
    Core core(CoreConfig{});
    core.completeLoad(2); // L1 hit
    EXPECT_EQ(core.cycle(), 1u);
    core.completeLoad(312); // memory
    EXPECT_EQ(core.cycle(), 1u + 311u);
    EXPECT_EQ(core.stats().loads, 2u);
}

TEST(Core, StoreTakesOneSlot)
{
    Core core(CoreConfig{});
    core.completeStore();
    core.completeStore();
    EXPECT_EQ(core.cycle(), 2u);
    EXPECT_EQ(core.stats().stores, 2u);
}

TEST(Core, ActStallAccounted)
{
    Core core(CoreConfig{});
    core.actStall(25);
    EXPECT_EQ(core.cycle(), 25u);
    EXPECT_EQ(core.stats().act_stall_cycles, 25u);
}

TEST(Core, ContextSwitchFlushCost)
{
    CoreConfig config;
    config.context_switch_flush = 60;
    Core core(config);
    core.contextSwitch();
    EXPECT_EQ(core.cycle(), 60u);
}

TEST(Core, SyncToOnlyMovesForward)
{
    Core core(CoreConfig{});
    core.syncTo(100);
    EXPECT_EQ(core.cycle(), 100u);
    core.syncTo(50);
    EXPECT_EQ(core.cycle(), 100u);
}

} // namespace
} // namespace act
