/**
 * @file
 * Tests for the full simulated machine (cores + memory + AMs + OS).
 */

#include <gtest/gtest.h>

#include "sim/system.hh"
#include "workloads/workload.hh"

namespace act
{
namespace
{

SystemConfig
testConfig(bool act_on)
{
    SystemConfig config;
    config.mem.cores = 4;
    config.act_enabled = act_on;
    config.act.topology = Topology{6, 10};
    config.act.sequence_length = 3;
    return config;
}

WeightStore
zeroStore(std::uint32_t threads)
{
    WeightStore store(Topology{6, 10});
    std::vector<double> weights(store.weightCount(), 0.0);
    store.setAll(threads, weights);
    return store;
}

Trace
simpleTrace()
{
    Trace trace;
    for (int i = 0; i < 50; ++i) {
        for (ThreadId tid = 0; tid < 2; ++tid) {
            TraceEvent s;
            s.kind = EventKind::kStore;
            s.tid = tid;
            s.pc = 0x100 + tid;
            s.addr = 0x1000 + tid * 64;
            s.gap = 4;
            trace.append(s);
            TraceEvent l;
            l.kind = EventKind::kLoad;
            l.tid = tid;
            l.pc = 0x200 + tid;
            l.addr = 0x1000 + tid * 64;
            l.gap = 4;
            trace.append(l);
        }
    }
    return trace;
}

TEST(System, BaselineRunsWithoutAct)
{
    System system(testConfig(false));
    system.run(simpleTrace());
    const SystemStats stats = system.stats();
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_EQ(stats.act.dependences, 0u);
    EXPECT_EQ(stats.weight_transfer_instructions, 0u);
    EXPECT_EQ(system.module(0), nullptr);
}

TEST(System, ActObservesDependences)
{
    PairEncoder encoder;
    System system(testConfig(true), encoder, zeroStore(2));
    system.run(simpleTrace());
    const SystemStats stats = system.stats();
    EXPECT_GT(stats.act.dependences, 0u);
    EXPECT_GT(stats.act.predictions, 0u);
    ASSERT_NE(system.module(0), nullptr);
}

TEST(System, ActAddsOverheadOverBaseline)
{
    const Trace trace = simpleTrace();
    System baseline(testConfig(false));
    baseline.run(trace);
    PairEncoder encoder;
    System with_act(testConfig(true), encoder, zeroStore(2));
    with_act.run(trace);
    EXPECT_GE(with_act.stats().cycles, baseline.stats().cycles);
}

TEST(System, WeightTransfersChargedAtThreadStartAndExit)
{
    PairEncoder encoder;
    System system(testConfig(true), encoder, zeroStore(2));
    Trace trace = simpleTrace();
    TraceEvent exit0;
    exit0.kind = EventKind::kThreadExit;
    exit0.tid = 0;
    trace.append(exit0);
    system.run(trace);
    const SystemStats stats = system.stats();
    // Two thread initialisations plus one exit save.
    const auto per_set = IsaCostModel::weightTransferInstructions(
        WeightStore(Topology{6, 10}).weightCount());
    EXPECT_EQ(stats.weight_transfer_instructions, 3u * per_set);
}

TEST(System, ThreadExitPatchesWeightStore)
{
    PairEncoder encoder;
    WeightStore initial(Topology{6, 10});
    // Thread 0 has no stored weights: it starts with defaults and the
    // exit must record whatever was learned.
    System system(testConfig(true), encoder, initial);
    Trace trace = simpleTrace();
    TraceEvent exit0;
    exit0.kind = EventKind::kThreadExit;
    exit0.tid = 0;
    trace.append(exit0);
    system.run(trace);
    EXPECT_TRUE(system.weightStore().has(0));
}

TEST(System, ContextSwitchWhenThreadsShareACore)
{
    SystemConfig config = testConfig(true);
    config.mem.cores = 1; // both threads pinned to core 0
    PairEncoder encoder;
    System system(config, encoder, zeroStore(2));
    system.run(simpleTrace());
    const SystemStats stats = system.stats();
    EXPECT_GT(stats.context_switches, 50u);
}

TEST(System, NoContextSwitchWithDedicatedCores)
{
    PairEncoder encoder;
    System system(testConfig(true), encoder, zeroStore(2));
    system.run(simpleTrace());
    EXPECT_EQ(system.stats().context_switches, 0u);
}

TEST(System, DebugEntriesComeFromModules)
{
    // Default (zero) weights classify everything as valid, so feed a
    // workload through a trained=garbage network by forcing training
    // mode off: instead, check the plumbing via collectDebugEntries
    // being consistent with per-module buffers.
    registerAllWorkloads();
    const auto workload = WorkloadRegistry::instance().create("mysql2");
    WorkloadParams params;
    params.seed = 1;
    params.trigger_failure = true;
    const Trace trace = workload->record(params);

    PairEncoder encoder;
    SystemConfig config = testConfig(true);
    System system(config, encoder, zeroStore(workload->threadCount()));
    system.run(trace);
    std::size_t total = 0;
    for (CoreId c = 0; c < config.mem.cores; ++c) {
        ASSERT_NE(system.module(c), nullptr);
        total += system.module(c)->debugBuffer().size();
    }
    EXPECT_EQ(system.collectDebugEntries().size(), total);
}

TEST(System, InstructionsMatchTraceScale)
{
    const Trace trace = simpleTrace();
    System system(testConfig(false));
    system.run(trace);
    // Every traced event plus its gap executes exactly once.
    EXPECT_EQ(system.stats().instructions, trace.instructionCount());
}

} // namespace
} // namespace act
