/**
 * @file
 * Tests for the fixed-point sigmoid lookup table.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "hwnn/sigmoid_table.hh"

namespace act
{
namespace
{

TEST(SigmoidTable, CenterIsHalf)
{
    const SigmoidTable table;
    EXPECT_NEAR(table.lookup(HwFixed::fromDouble(0.0)).toDouble(), 0.5,
                0.02);
}

TEST(SigmoidTable, SaturatesAtRangeEnds)
{
    const SigmoidTable table;
    EXPECT_NEAR(table.lookup(HwFixed::fromDouble(20.0)).toDouble(), 1.0,
                0.01);
    EXPECT_NEAR(table.lookup(HwFixed::fromDouble(-20.0)).toDouble(), 0.0,
                0.01);
}

TEST(SigmoidTable, SymmetryProperty)
{
    const SigmoidTable table;
    for (double x = 0.0; x < 8.0; x += 0.37) {
        const double pos = table.lookup(HwFixed::fromDouble(x)).toDouble();
        const double neg =
            table.lookup(HwFixed::fromDouble(-x)).toDouble();
        EXPECT_NEAR(pos + neg, 1.0, 0.002) << "x=" << x;
    }
}

TEST(SigmoidTable, MonotoneNonDecreasing)
{
    const SigmoidTable table;
    double prev = 0.0;
    for (double x = -8.0; x <= 8.0; x += 0.05) {
        const double v = table.lookup(HwFixed::fromDouble(x)).toDouble();
        EXPECT_GE(v, prev - 1e-9) << "x=" << x;
        prev = v;
    }
}

/** Resolution sweep: more entries = tighter worst-case error. */
class SigmoidResolution : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(SigmoidResolution, ErrorBoundedByResolution)
{
    const SigmoidTable table(GetParam());
    // The table uses index truncation; the worst-case error is about
    // one slope-step: d/dx sigmoid <= 0.25, step = range / entries.
    const double bound =
        0.3 * SigmoidTable::kInputRange / static_cast<double>(GetParam()) +
        0.002;
    EXPECT_LE(table.maxAbsError(), bound);
}

INSTANTIATE_TEST_SUITE_P(Entries, SigmoidResolution,
                         ::testing::Values(64, 256, 1024));

TEST(SigmoidTable, DefaultAccuracyGoodEnoughForInference)
{
    const SigmoidTable table;
    EXPECT_LT(table.maxAbsError(), 0.012);
}

} // namespace
} // namespace act
