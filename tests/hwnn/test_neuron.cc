/**
 * @file
 * Tests for the hardware neuron model: the latency knob and the
 * fixed-point evaluate/update datapath.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "hwnn/neuron.hh"

namespace act
{
namespace
{

TEST(NeuronConfig, LatencyFormula)
{
    // T = ceil(M / x) * T_muladd + T_rest, Section IV-A.
    NeuronConfig c;
    c.max_inputs = 10;
    c.muladd_latency = 1;
    c.accumulator_latency = 1;
    c.sigmoid_latency = 1;

    c.muladd_units = 1;
    EXPECT_EQ(c.latency(), 12u);
    c.muladd_units = 2;
    EXPECT_EQ(c.latency(), 7u);
    c.muladd_units = 5;
    EXPECT_EQ(c.latency(), 4u);
    c.muladd_units = 10;
    EXPECT_EQ(c.latency(), 3u);
}

TEST(NeuronConfig, LatencyWithSlowMultiplier)
{
    NeuronConfig c;
    c.max_inputs = 8;
    c.muladd_units = 4;
    c.muladd_latency = 3;
    EXPECT_EQ(c.latency(), 2u * 3u + 2u);
}

class NeuronFixture : public ::testing::Test
{
  protected:
    NeuronFixture() : table_(1024), neuron_(makeConfig(), table_) {}

    static NeuronConfig
    makeConfig()
    {
        NeuronConfig c;
        c.max_inputs = 4;
        c.muladd_units = 2;
        return c;
    }

    SigmoidTable table_;
    Neuron neuron_;
};

TEST_F(NeuronFixture, EvaluateMatchesDoubleMath)
{
    const std::vector<double> weights{0.1, 0.5, -0.3, 0.8, 0.0};
    neuron_.setWeights(weights);
    const std::vector<HwFixed> inputs{
        HwFixed::fromDouble(1.0), HwFixed::fromDouble(-0.5),
        HwFixed::fromDouble(0.25)};
    const double exact =
        1.0 / (1.0 + std::exp(-(0.1 + 0.5 * 1.0 - 0.3 * -0.5 +
                                0.8 * 0.25)));
    EXPECT_NEAR(neuron_.evaluate(inputs).toDouble(), exact, 0.02);
}

TEST_F(NeuronFixture, UnusedWeightsDisabledByZero)
{
    neuron_.setWeights(std::vector<double>{0.0, 1.0});
    // Only input 0 participates; inputs beyond the configured weights
    // multiply by zero.
    const std::vector<HwFixed> inputs{
        HwFixed::fromDouble(0.5), HwFixed::fromDouble(100.0),
        HwFixed::fromDouble(100.0)};
    EXPECT_NEAR(neuron_.weightedSum(inputs).toDouble(), 0.5, 1e-3);
}

TEST_F(NeuronFixture, ApplyUpdateAdjustsBiasAndWeights)
{
    neuron_.setWeights(std::vector<double>{0.0, 0.0});
    const std::vector<HwFixed> inputs{HwFixed::fromDouble(2.0)};
    neuron_.applyUpdate(HwFixed::fromDouble(0.1), inputs);
    EXPECT_NEAR(neuron_.weightAt(0).toDouble(), 0.1, 1e-3);  // bias
    EXPECT_NEAR(neuron_.weightAt(1).toDouble(), 0.2, 1e-3);  // w * a
}

TEST_F(NeuronFixture, WeightsAsDoubleRoundTrip)
{
    const std::vector<double> weights{0.25, -0.5, 0.75, 0.0, 1.0};
    neuron_.setWeights(weights);
    const auto back = neuron_.weightsAsDouble();
    ASSERT_EQ(back.size(), 5u);
    for (std::size_t i = 0; i < weights.size(); ++i)
        EXPECT_NEAR(back[i], weights[i], 1e-4);
}

} // namespace
} // namespace act
