/**
 * @file
 * Tests for the time-multiplexed NPU reference model and the design
 * comparison of Section IV-A.
 */

#include <gtest/gtest.h>

#include "hwnn/npu_reference.hh"
#include "hwnn/pipeline.hh"

namespace act
{
namespace
{

TEST(NpuReference, SingleRoundLatency)
{
    NpuConfig config; // 8 PEs, sched 4, mul-add 1, sigmoid 1, bus 1
    const NpuReference npu(config);
    // Hidden layer: 8 neurons in one round: 4 + (6+1)*1 + 1 + 1 = 13.
    // Output layer: 1 neuron: 4 + (8+1)*1 + 1 + 1 = 15.
    EXPECT_EQ(npu.inferenceLatency(Topology{6, 8}), 13u + 15u);
}

TEST(NpuReference, ExtraRoundsWhenNeuronsExceedPes)
{
    NpuConfig wide;
    wide.pes = 8;
    NpuConfig narrow;
    narrow.pes = 4;
    const Topology t{6, 8};
    // Halving the PE pool forces a second hidden-layer round; the
    // output layer is unchanged.
    const Cycle hidden_round = 4 + 7 + 1 + 1;
    EXPECT_EQ(NpuReference(narrow).inferenceLatency(t) -
                  NpuReference(wide).inferenceLatency(t),
              hidden_round);
}

TEST(NpuReference, TrainingCostsFourForwardPasses)
{
    const NpuReference npu(NpuConfig{});
    const Topology t{6, 10};
    EXPECT_EQ(npu.trainingLatency(t), 4 * npu.inferenceLatency(t));
}

TEST(DesignComparison, PipelineThroughputBeatsNpu)
{
    // The Section IV-A argument: the partially configurable pipeline
    // avoids per-round scheduling overhead and overlaps S1/S2/S3, so
    // its steady-state inference interval is far below the NPU's.
    HwNetworkConfig pipeline;
    pipeline.neuron.max_inputs = 10;
    pipeline.neuron.muladd_units = 2;
    const NpuReference npu(NpuConfig{});
    const Topology t{6, 10};
    EXPECT_LT(pipeline.testServiceTime(), npu.inferenceInterval(t));
}

TEST(DesignComparison, MoreMulAddUnitsShrinkTheGapButKeepIt)
{
    const NpuReference npu(NpuConfig{});
    const Topology t{6, 10};
    Cycle previous = ~Cycle{0};
    for (const std::uint32_t units : {1u, 2u, 5u, 10u}) {
        HwNetworkConfig pipeline;
        pipeline.neuron.max_inputs = 10;
        pipeline.neuron.muladd_units = units;
        const Cycle service = pipeline.testServiceTime();
        EXPECT_LT(service, previous);
        EXPECT_LT(service, npu.inferenceInterval(t));
        previous = service;
    }
}

} // namespace
} // namespace act
