/**
 * @file
 * Differential tests: hardware network vs the software reference MLP.
 *
 * The flat weight-register file and batch kernel in hwnn/pipeline are
 * performance rewrites of the per-Neuron reference model; this suite
 * pins them to the software MlpNetwork across randomly drawn topologies
 * and weight sets. Two layers of guarantee: (1) with weights quantised
 * to Q15.16 on both sides, the hardware output stays within the sigmoid
 * table's resolution of the software output on every topology the AM
 * can configure (inputs, hidden <= M = 10); (2) inferBatch and
 * inferWithRaw are bit-identical to the scalar infer/rawOutput path —
 * batching is a traffic optimisation, never a numerics change.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "hwnn/pipeline.hh"
#include "nn/network.hh"

namespace act
{
namespace
{

HwNetworkConfig
defaultHw()
{
    HwNetworkConfig config;
    config.neuron.max_inputs = 10;
    config.neuron.muladd_units = 2;
    config.fifo_entries = 8;
    return config;
}

/** Draw a weight in [-2, 2] pre-quantised to what Q15.16 can hold. */
double
quantisedWeight(Rng &rng)
{
    return HwFixed::fromDouble(rng.uniform(-2.0, 2.0)).toDouble();
}

TEST(NpuVsSoftware, RandomTopologiesTrackTheReferenceMlp)
{
    constexpr std::uint64_t kTopologies = 40;
    constexpr int kTrialsPerTopology = 50;

    for (std::uint64_t seed = 1; seed <= kTopologies; ++seed) {
        Rng rng(hashCombine(0xd1ff0000ULL, seed));
        const Topology topo{1 + rng.next(10), 1 + rng.next(10)};
        ASSERT_TRUE(topo.valid());

        MlpNetwork soft(topo);
        HwNeuralNetwork hw(defaultHw(), topo);

        // Same quantised weights on both sides: the comparison then
        // isolates the arithmetic (fixed point + sigmoid table) from
        // the one-time weight quantisation loss.
        std::vector<double> weights(soft.weightCount());
        for (double &w : weights)
            w = quantisedWeight(rng);
        soft.setWeights(weights);
        hw.loadWeights(weights);

        for (int trial = 0; trial < kTrialsPerTopology; ++trial) {
            std::vector<double> in(topo.inputs);
            for (double &v : in)
                v = HwFixed::fromDouble(rng.uniform(-2.0, 2.0)).toDouble();
            const double exact = soft.infer(in);
            const double approx = hw.infer(in);
            EXPECT_NEAR(approx, exact, 0.05)
                << "topology " << topo.inputs << "x" << topo.hidden
                << " seed " << seed << " trial " << trial;
            // Both must agree on which side of the decision boundary
            // the input falls whenever the software net is not sitting
            // on the boundary itself.
            if (exact < 0.45 || exact > 0.55) {
                EXPECT_EQ(approx >= 0.5, exact >= 0.5)
                    << "seed " << seed << " trial " << trial;
            }
        }
    }
}

TEST(NpuVsSoftware, InferBatchBitIdenticalToScalarPath)
{
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        Rng rng(hashCombine(0xba7c0000ULL, seed));
        const Topology topo{1 + rng.next(10), 1 + rng.next(10)};
        HwNeuralNetwork hw(defaultHw(), topo);

        std::vector<double> weights(hw.weightCount());
        for (double &w : weights)
            w = rng.uniform(-2.0, 2.0);
        hw.loadWeights(weights);

        std::vector<std::vector<double>> batch;
        for (int i = 0; i < 64; ++i) {
            std::vector<double> in(topo.inputs);
            for (double &v : in)
                v = rng.uniform(-4.0, 4.0);
            batch.push_back(std::move(in));
        }

        std::vector<double> batched;
        hw.inferBatch(batch, batched);
        ASSERT_EQ(batched.size(), batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
            // Bitwise equality, not EXPECT_NEAR: the batch kernel must
            // be the same arithmetic, not a close approximation.
            EXPECT_EQ(batched[i], hw.infer(batch[i])) << "seed " << seed
                                                      << " item " << i;
        }
    }
}

TEST(NpuVsSoftware, InferWithRawBitIdenticalToSeparateCalls)
{
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        Rng rng(hashCombine(0x4a30000ULL, seed));
        const Topology topo{1 + rng.next(10), 1 + rng.next(10)};
        HwNeuralNetwork hw(defaultHw(), topo);

        std::vector<double> weights(hw.weightCount());
        for (double &w : weights)
            w = rng.uniform(-2.0, 2.0);
        hw.loadWeights(weights);

        for (int trial = 0; trial < 100; ++trial) {
            std::vector<double> in(topo.inputs);
            for (double &v : in)
                v = rng.uniform(-4.0, 4.0);
            double raw = 0.0;
            const double out = hw.inferWithRaw(in, raw);
            EXPECT_EQ(out, hw.infer(in)) << "seed " << seed;
            EXPECT_EQ(raw, hw.rawOutput(in)) << "seed " << seed;
        }
    }
}

TEST(NpuVsSoftware, TrainingConvergesLikeTheSoftwarePath)
{
    // A coarse behavioural check on the flattened train(): learning a
    // constant-1 target must push the output up, mirroring what the
    // AM's online-training mode relies on.
    const Topology topo{4, 6};
    HwNeuralNetwork hw(defaultHw(), topo);
    std::vector<double> zeros(hw.weightCount(), 0.0);
    hw.loadWeights(zeros);

    const std::vector<double> in{0.5, -0.25, 1.0, 0.75};
    const double before = hw.infer(in);
    EXPECT_NEAR(before, 0.5, 1e-3); // Zero weights: sigmoid(0).
    for (int step = 0; step < 200; ++step)
        hw.train(in, 1.0, 0.5);
    EXPECT_GT(hw.infer(in), before + 0.2);
}

} // namespace
} // namespace act
