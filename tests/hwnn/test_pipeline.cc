/**
 * @file
 * Tests for the three-stage hardware network: functional fidelity
 * against the software MLP, and the Section IV-A timing behaviour.
 */

#include <gtest/gtest.h>

#include <span>

#include "hwnn/pipeline.hh"
#include "nn/trainer.hh"

namespace act
{
namespace
{

HwNetworkConfig
defaultHw()
{
    HwNetworkConfig config;
    config.neuron.max_inputs = 10;
    config.neuron.muladd_units = 2;
    config.fifo_entries = 8;
    return config;
}

TEST(HwNeuralNetwork, ServiceTimes)
{
    const HwNetworkConfig config = defaultHw();
    // T = ceil(10/2) + 2 = 7; training takes 4T.
    EXPECT_EQ(config.testServiceTime(), 7u);
    EXPECT_EQ(config.trainServiceTime(), 28u);
}

TEST(HwNeuralNetwork, WeightRoundTripThroughRegisters)
{
    Rng rng(3);
    MlpNetwork soft(Topology{6, 10}, rng);
    HwNeuralNetwork hw(defaultHw(), Topology{6, 10});
    hw.loadWeights(soft.weights());
    const auto back = hw.storeWeights();
    ASSERT_EQ(back.size(), soft.weights().size());
    for (std::size_t i = 0; i < back.size(); ++i)
        EXPECT_NEAR(back[i], soft.weights()[i], 1e-4) << i;
}

TEST(HwNeuralNetwork, WeightAtMatchesFlatLayout)
{
    HwNeuralNetwork hw(defaultHw(), Topology{3, 2});
    std::vector<double> weights(hw.weightCount());
    for (std::size_t i = 0; i < weights.size(); ++i)
        weights[i] = 0.01 * static_cast<double>(i);
    hw.loadWeights(weights);
    for (std::size_t i = 0; i < weights.size(); ++i)
        EXPECT_NEAR(hw.weightAt(i), weights[i], 1e-4) << i;
    hw.setWeightAt(2, -0.5);
    EXPECT_NEAR(hw.weightAt(2), -0.5, 1e-4);
}

/** Fidelity sweep: fixed-point inference agrees with the software MLP. */
class HwFidelity : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(HwFidelity, AgreesWithSoftwareNetwork)
{
    Rng rng(GetParam());
    MlpNetwork soft(Topology{6, 10}, rng);
    HwNeuralNetwork hw(defaultHw(), Topology{6, 10});
    hw.loadWeights(soft.weights());

    Rng inputs(GetParam() * 7 + 1);
    int disagreements = 0;
    const int trials = 500;
    for (int i = 0; i < trials; ++i) {
        std::vector<double> in;
        for (int j = 0; j < 6; ++j)
            in.push_back(inputs.uniform(-2, 2));
        const double exact = soft.infer(in);
        EXPECT_NEAR(hw.infer(in), exact, 0.05);
        // Classification may only flip inside the quantisation band
        // around the 0.5 threshold.
        if (std::abs(exact - 0.5) > 0.02 &&
            hw.predictValid(in) != soft.predictValid(in)) {
            ++disagreements;
        }
    }
    EXPECT_EQ(disagreements, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HwFidelity,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(HwNeuralNetwork, RawOutputSignMatchesClassification)
{
    Rng rng(17);
    MlpNetwork soft(Topology{6, 10}, rng);
    HwNeuralNetwork hw(defaultHw(), Topology{6, 10});
    hw.loadWeights(soft.weights());
    Rng inputs(18);
    for (int i = 0; i < 300; ++i) {
        std::vector<double> in;
        for (int j = 0; j < 6; ++j)
            in.push_back(inputs.uniform(-2, 2));
        const double raw = hw.rawOutput(in);
        const double out = hw.infer(in);
        if (std::abs(out - 0.5) > 0.02) {
            EXPECT_EQ(raw >= 0.0, out >= 0.5) << "raw=" << raw;
        }
    }
}

TEST(HwNeuralNetwork, RawOutputPreservesDynamicRange)
{
    // Two inputs that both saturate the sigmoid to ~0 must still be
    // distinguishable by the raw accumulator (the ranking tie-break).
    HwNeuralNetwork hw(defaultHw(), Topology{1, 1});
    std::vector<double> weights(hw.weightCount(), 0.0);
    weights[1] = 2.0;   // hidden weight
    weights[2] = -10.0; // output bias: deep in the invalid region
    weights[3] = 30.0;  // output weight: raw tracks the hidden neuron
    hw.loadWeights(weights);
    const std::vector<double> a{-1.0};
    const std::vector<double> b{-2.0};
    EXPECT_LT(hw.infer(a), 0.01);
    EXPECT_LT(hw.infer(b), 0.01);
    EXPECT_NE(hw.rawOutput(a), hw.rawOutput(b));
}

TEST(HwNeuralNetwork, TrainingMovesTowardTarget)
{
    Rng rng(9);
    MlpNetwork proto(Topology{4, 6}, rng);
    HwNeuralNetwork hw(defaultHw(), Topology{4, 6});
    hw.loadWeights(proto.weights());
    const std::vector<double> in{0.5, -0.5, 1.0, -1.0};
    const double before = hw.infer(in);
    for (int i = 0; i < 20; ++i)
        hw.train(in, 1.0, 0.2);
    EXPECT_GT(hw.infer(in), before);
}

TEST(HwNeuralNetwork, TimingAcceptsAtLineRateWhenIdle)
{
    HwNeuralNetwork hw(defaultHw(), Topology{6, 10});
    // An empty FIFO accepts back-to-back offers.
    EXPECT_TRUE(hw.offer(10, false).accepted);
    EXPECT_TRUE(hw.offer(11, false).accepted);
    EXPECT_EQ(hw.acceptedCount(), 2u);
}

TEST(HwNeuralNetwork, FifoFillsAndBackpressures)
{
    HwNetworkConfig config = defaultHw();
    config.fifo_entries = 4;
    HwNeuralNetwork hw(config, Topology{6, 10});
    // All offers at cycle 0: the pipe drains one per T = 7 cycles.
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(hw.offer(0, false).accepted) << i;
    const AcceptResult rejected = hw.offer(0, false);
    EXPECT_FALSE(rejected.accepted);
    // The oldest input completes at 1 + 7 (S1 insert + service).
    EXPECT_EQ(rejected.retry_at, 8u);
    EXPECT_EQ(hw.rejectedCount(), 1u);
    // Retrying at the advertised cycle succeeds.
    EXPECT_TRUE(hw.offer(rejected.retry_at, false).accepted);
}

TEST(HwNeuralNetwork, SteadyStateThroughputIsServiceTime)
{
    HwNetworkConfig config = defaultHw();
    config.fifo_entries = 2;
    HwNeuralNetwork hw(config, Topology{6, 10});
    ASSERT_TRUE(hw.offer(0, false).accepted);
    ASSERT_TRUE(hw.offer(0, false).accepted);
    // From now on, one slot frees every 7 cycles.
    Cycle now = 0;
    std::vector<Cycle> accept_times;
    for (int i = 0; i < 5; ++i) {
        AcceptResult r = hw.offer(now, false);
        while (!r.accepted) {
            now = r.retry_at;
            r = hw.offer(now, false);
        }
        accept_times.push_back(now);
    }
    for (std::size_t i = 1; i < accept_times.size(); ++i)
        EXPECT_EQ(accept_times[i] - accept_times[i - 1], 7u);
}

TEST(HwNeuralNetwork, TrainingModeQuadruplesOccupancyTime)
{
    HwNetworkConfig config = defaultHw();
    config.fifo_entries = 1;
    HwNeuralNetwork test_net(config, Topology{6, 10});
    HwNeuralNetwork train_net(config, Topology{6, 10});
    ASSERT_TRUE(test_net.offer(0, false).accepted);
    ASSERT_TRUE(train_net.offer(0, true).accepted);
    const AcceptResult test_reject = test_net.offer(0, false);
    const AcceptResult train_reject = train_net.offer(0, true);
    ASSERT_FALSE(test_reject.accepted);
    ASSERT_FALSE(train_reject.accepted);
    EXPECT_EQ(test_reject.retry_at, 1u + 7u);
    EXPECT_EQ(train_reject.retry_at, 1u + 28u);
}

TEST(HwNeuralNetwork, FlushEmptiesFifo)
{
    HwNetworkConfig config = defaultHw();
    config.fifo_entries = 2;
    HwNeuralNetwork hw(config, Topology{6, 10});
    ASSERT_TRUE(hw.offer(0, false).accepted);
    ASSERT_TRUE(hw.offer(0, false).accepted);
    EXPECT_EQ(hw.occupancy(0), 2u);
    hw.flush();
    EXPECT_EQ(hw.occupancy(0), 0u);
    EXPECT_TRUE(hw.offer(0, false).accepted);
}

TEST(HwNeuralNetwork, OccupancyDrainsOverTime)
{
    HwNeuralNetwork hw(defaultHw(), Topology{6, 10});
    ASSERT_TRUE(hw.offer(0, false).accepted);
    EXPECT_EQ(hw.occupancy(0), 1u);
    EXPECT_EQ(hw.occupancy(100), 0u);
}

TEST(HwNeuralNetwork, SetTopologyZeroesWeights)
{
    HwNeuralNetwork hw(defaultHw(), Topology{6, 10});
    std::vector<double> weights(hw.weightCount(), 0.5);
    hw.loadWeights(weights);
    hw.setTopology(Topology{4, 4});
    EXPECT_EQ(hw.weightCount(), 4u * 5u + 5u);
    const std::vector<double> in{0.1, 0.2, 0.3, 0.4};
    EXPECT_NEAR(hw.infer(in), 0.5, 0.01); // all-zero network
}

TEST(HwNeuralNetwork, InferBatchFlatIsBitIdenticalToScalarInference)
{
    Rng rng(9);
    MlpNetwork soft(Topology{6, 10}, rng);
    HwNeuralNetwork hw(defaultHw(), Topology{6, 10});
    hw.loadWeights(soft.weights());

    constexpr std::size_t kWidth = 6;
    constexpr std::size_t kCount = 57;
    Rng inputs(123);
    std::vector<double> flat;
    for (std::size_t i = 0; i < kWidth * kCount; ++i)
        flat.push_back(inputs.uniform(-2, 2));

    std::vector<double> outputs;
    hw.inferBatchFlat(flat, kWidth, kCount, outputs);
    ASSERT_EQ(outputs.size(), kCount);
    for (std::size_t i = 0; i < kCount; ++i) {
        const std::span<const double> row =
            std::span<const double>(flat).subspan(i * kWidth, kWidth);
        // Exact equality: the batched path must reuse the scalar
        // fixed-point pipeline verbatim (the fleet's streaming-vs-batch
        // byte-equivalence depends on it).
        EXPECT_EQ(outputs[i], hw.infer(row)) << i;
    }
}

TEST(HwNeuralNetwork, InferBatchFlatHandlesEmptyBatch)
{
    HwNeuralNetwork hw(defaultHw(), Topology{6, 10});
    std::vector<double> outputs{1.0, 2.0};
    hw.inferBatchFlat({}, 6, 0, outputs);
    EXPECT_TRUE(outputs.empty());
}

} // namespace
} // namespace act
