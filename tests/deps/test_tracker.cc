/**
 * @file
 * Tests for exact last-writer dependence tracking.
 */

#include <gtest/gtest.h>

#include "deps/tracker.hh"
#include "trace/trace.hh"

namespace act
{
namespace
{

TraceEvent
store(ThreadId tid, Pc pc, Addr addr)
{
    TraceEvent e;
    e.kind = EventKind::kStore;
    e.tid = tid;
    e.pc = pc;
    e.addr = addr;
    return e;
}

TraceEvent
load(ThreadId tid, Pc pc, Addr addr, bool stack = false)
{
    TraceEvent e;
    e.kind = EventKind::kLoad;
    e.tid = tid;
    e.pc = pc;
    e.addr = addr;
    e.stack = stack;
    return e;
}

TEST(DependenceTracker, FormsIntraThreadDependence)
{
    DependenceTracker tracker;
    tracker.recordStore(store(0, 0x10, 0x1000));
    const auto dep = tracker.formDependence(load(0, 0x20, 0x1000));
    ASSERT_TRUE(dep.has_value());
    EXPECT_EQ(dep->store_pc, 0x10u);
    EXPECT_EQ(dep->load_pc, 0x20u);
    EXPECT_FALSE(dep->inter_thread);
}

TEST(DependenceTracker, LabelsInterThread)
{
    DependenceTracker tracker;
    tracker.recordStore(store(1, 0x10, 0x1000));
    const auto dep = tracker.formDependence(load(0, 0x20, 0x1000));
    ASSERT_TRUE(dep.has_value());
    EXPECT_TRUE(dep->inter_thread);
}

TEST(DependenceTracker, NoWriterNoDependence)
{
    DependenceTracker tracker;
    EXPECT_FALSE(tracker.formDependence(load(0, 0x20, 0x1000)));
}

TEST(DependenceTracker, WordGranularityDistinguishesNeighbours)
{
    DependenceTracker tracker(Granularity::kWord);
    tracker.recordStore(store(0, 0x10, 0x1000));
    tracker.recordStore(store(0, 0x11, 0x1004));
    const auto dep = tracker.formDependence(load(0, 0x20, 0x1000));
    ASSERT_TRUE(dep.has_value());
    EXPECT_EQ(dep->store_pc, 0x10u);
}

TEST(DependenceTracker, WordGranularityNormalizesWithinWord)
{
    DependenceTracker tracker(Granularity::kWord);
    tracker.recordStore(store(0, 0x10, 0x1000));
    const auto dep = tracker.formDependence(load(0, 0x20, 0x1002));
    ASSERT_TRUE(dep.has_value()) << "same word, different byte";
    EXPECT_EQ(dep->store_pc, 0x10u);
}

TEST(DependenceTracker, LineGranularityCreatesFalseSharing)
{
    DependenceTracker tracker(Granularity::kLine, 64);
    tracker.recordStore(store(0, 0x10, 0x1000));
    tracker.recordStore(store(1, 0x30, 0x1020)); // same 64B line
    const auto dep = tracker.formDependence(load(0, 0x20, 0x1000));
    ASSERT_TRUE(dep.has_value());
    // Line granularity attributes the word to the later writer of the
    // *line* — the false-sharing imprecision of Section V.
    EXPECT_EQ(dep->store_pc, 0x30u);
    EXPECT_TRUE(dep->inter_thread);
}

TEST(DependenceTracker, NegativeUsesWriterBeforeLast)
{
    DependenceTracker tracker;
    tracker.recordStore(store(0, 0x10, 0x1000));
    tracker.recordStore(store(1, 0x30, 0x1000));
    const auto neg = tracker.formNegativeDependence(load(0, 0x20, 0x1000));
    ASSERT_TRUE(neg.has_value());
    EXPECT_EQ(neg->store_pc, 0x10u);
    EXPECT_FALSE(neg->inter_thread);
}

TEST(DependenceTracker, DegenerateNegativeSkipped)
{
    // Same static store writes twice: the writer-before-last is the
    // same instruction, which yields no useful negative example.
    DependenceTracker tracker;
    tracker.recordStore(store(0, 0x10, 0x1000));
    tracker.recordStore(store(0, 0x10, 0x1000));
    EXPECT_FALSE(tracker.formNegativeDependence(load(0, 0x20, 0x1000)));
}

TEST(DependenceTracker, NegativeRequiresHistory)
{
    DependenceTracker tracker;
    tracker.recordStore(store(0, 0x10, 0x1000));
    EXPECT_FALSE(tracker.formNegativeDependence(load(0, 0x20, 0x1000)));
}

TEST(DependenceTracker, ObserveDispatchesAndFilters)
{
    DependenceTracker tracker;
    EXPECT_FALSE(tracker.observe(store(0, 0x10, 0x1000)).has_value());
    EXPECT_TRUE(tracker.observe(load(0, 0x20, 0x1000)).has_value());
    // Stack loads are filtered (Section V).
    EXPECT_FALSE(
        tracker.observe(load(0, 0x20, 0x1000, /*stack=*/true)).has_value());
}

TEST(DependenceTracker, ClearForgetsWriters)
{
    DependenceTracker tracker;
    tracker.recordStore(store(0, 0x10, 0x1000));
    tracker.clear();
    EXPECT_FALSE(tracker.formDependence(load(0, 0x20, 0x1000)));
    EXPECT_EQ(tracker.trackedLocations(), 0u);
}

/** Granularity sweep: the tracker honours each line size exactly. */
class TrackerLineSize : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(TrackerLineSize, NormalizesToLineBoundary)
{
    const std::uint32_t line = GetParam();
    DependenceTracker tracker(Granularity::kLine, line);
    tracker.recordStore(store(0, 0x10, 0x2000));
    // Last byte of the same line shares the writer...
    EXPECT_TRUE(
        tracker.formDependence(load(0, 0x20, 0x2000 + line - 1)));
    // ...first byte of the next line does not.
    EXPECT_FALSE(tracker.formDependence(load(0, 0x20, 0x2000 + line)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, TrackerLineSize,
                         ::testing::Values(4, 32, 64, 128));

} // namespace
} // namespace act
