/**
 * @file
 * Tests for the Input Generator (trace -> sequences -> dataset).
 */

#include <gtest/gtest.h>

#include "deps/input_generator.hh"

namespace act
{
namespace
{

void
emit(Trace &trace, EventKind kind, ThreadId tid, Pc pc, Addr addr)
{
    TraceEvent e;
    e.kind = kind;
    e.tid = tid;
    e.pc = pc;
    e.addr = addr;
    trace.append(e);
}

/** A thread repeatedly writing then reading three locations. */
Trace
loopTrace(std::size_t iterations, ThreadId tid = 0)
{
    Trace trace;
    for (std::size_t i = 0; i < iterations; ++i) {
        for (Addr a = 0; a < 3; ++a) {
            emit(trace, EventKind::kStore, tid, 0x100 + a * 0x10,
                 0x1000 + a * 4);
            emit(trace, EventKind::kLoad, tid, 0x104 + a * 0x10,
                 0x1000 + a * 4);
        }
    }
    return trace;
}

TEST(InputGenerator, EmitsOneSequencePerLoadAfterWarmup)
{
    InputGenerator gen(3);
    const Trace trace = loopTrace(10);
    const GeneratedSequences out = gen.process(trace, false);
    // 30 loads total; the first 2 lack history.
    EXPECT_EQ(out.dependence_count, 30u);
    EXPECT_EQ(out.positives.size(), 28u);
    for (const auto &seq : out.positives)
        EXPECT_EQ(seq.deps.size(), 3u);
}

TEST(InputGenerator, SequenceLengthOneIsPerDependence)
{
    InputGenerator gen(1);
    const Trace trace = loopTrace(5);
    const GeneratedSequences out = gen.process(trace, false);
    EXPECT_EQ(out.positives.size(), 15u);
}

TEST(InputGenerator, WindowsArePerThread)
{
    // Interleave two threads; sequences must never mix their
    // dependences (the paper assigns a dependence to the processor
    // executing the load).
    Trace trace;
    for (int i = 0; i < 6; ++i) {
        for (ThreadId tid = 0; tid < 2; ++tid) {
            const Addr base = 0x1000 + tid * 0x1000;
            emit(trace, EventKind::kStore, tid, 0x100 + tid * 0x100,
                 base);
            emit(trace, EventKind::kLoad, tid, 0x104 + tid * 0x100, base);
        }
    }
    InputGenerator gen(2);
    const GeneratedSequences out = gen.process(trace, false);
    for (const auto &seq : out.positives) {
        // Each thread only ever sees its own (store, load) pair, so a
        // mixed window would contain two different load PCs.
        EXPECT_EQ(seq.deps[0].load_pc, seq.deps[1].load_pc);
    }
}

TEST(InputGenerator, TrueNegativesUsePreviousWriter)
{
    // Two distinct static stores write the same address alternately.
    Trace trace;
    for (int i = 0; i < 8; ++i) {
        emit(trace, EventKind::kStore, 0, i % 2 == 0 ? 0x100 : 0x200,
             0x1000);
        emit(trace, EventKind::kLoad, 0, 0x300, 0x1000);
    }
    InputGenerator gen(2);
    const GeneratedSequences out = gen.process(trace, true);
    ASSERT_FALSE(out.negatives.empty());
    for (const auto &neg : out.negatives) {
        const auto &bad = neg.deps.back();
        EXPECT_EQ(bad.load_pc, 0x300u);
        EXPECT_TRUE(bad.store_pc == 0x100 || bad.store_pc == 0x200);
    }
    // Each negative differs from the matching positive's final dep.
    ASSERT_EQ(out.negatives.size(), out.positives.size() - 0u);
}

TEST(InputGenerator, SyntheticNegativesForSingleWriterLocations)
{
    // Every location has exactly one static writer, so the paper's
    // writer-before-last construction degenerates; the generator falls
    // back to synthetic wrong-writer negatives at random communication
    // distances on either side of the load.
    InputGenerator gen(3);
    const Trace trace = loopTrace(10);
    const GeneratedSequences out = gen.process(trace, true);
    EXPECT_FALSE(out.negatives.empty());
    bool above = false;
    bool below = false;
    for (const auto &neg : out.negatives) {
        const auto &bad = neg.deps.back();
        const Addr slot = (bad.load_pc - 0x104) / 0x10;
        EXPECT_NE(bad.store_pc, 0x100 + slot * 0x10);
        above |= bad.store_pc > bad.load_pc;
        below |= bad.store_pc < bad.load_pc;
    }
    // Both sides of the load appear, so the learned boundary cannot
    // collapse to a one-sided threshold.
    EXPECT_TRUE(above);
    EXPECT_TRUE(below);
}

TEST(InputGenerator, StackLoadsAreFiltered)
{
    Trace trace;
    emit(trace, EventKind::kStore, 0, 0x100, 0x1000);
    TraceEvent stack_load;
    stack_load.kind = EventKind::kLoad;
    stack_load.tid = 0;
    stack_load.pc = 0x104;
    stack_load.addr = 0x1000;
    stack_load.stack = true;
    trace.append(stack_load);
    InputGenerator gen(1);
    const GeneratedSequences out = gen.process(trace, false);
    EXPECT_EQ(out.dependence_count, 0u);
}

TEST(InputGenerator, BuildDatasetLabelsClasses)
{
    InputGenerator gen(2);
    const Trace trace = loopTrace(10);
    PairEncoder encoder;
    const Dataset data = gen.buildDataset(trace, encoder, true);
    EXPECT_GT(data.positiveCount(), 0u);
    EXPECT_GT(data.negativeCount(), 0u);
    EXPECT_EQ(data.inputWidth(), 2u * 2u);
}

TEST(InputGenerator, DatasetWithoutNegatives)
{
    InputGenerator gen(2);
    const Trace trace = loopTrace(10);
    PairEncoder encoder;
    const Dataset data = gen.buildDataset(trace, encoder, false);
    EXPECT_EQ(data.negativeCount(), 0u);
}

TEST(InputGenerator, DeterministicAcrossCalls)
{
    InputGenerator gen(3);
    const Trace trace = loopTrace(20);
    const GeneratedSequences a = gen.process(trace, true);
    const GeneratedSequences b = gen.process(trace, true);
    ASSERT_EQ(a.negatives.size(), b.negatives.size());
    for (std::size_t i = 0; i < a.negatives.size(); ++i)
        EXPECT_EQ(a.negatives[i], b.negatives[i]);
}

} // namespace
} // namespace act
