/**
 * @file
 * Tests for the dependence encoders.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "deps/encoder.hh"

namespace act
{
namespace
{

TEST(PairEncoder, WidthIsTwo)
{
    PairEncoder enc;
    EXPECT_EQ(enc.width(), 2u);
}

TEST(PairEncoder, FeaturesWithinCodeRange)
{
    PairEncoder enc;
    Rng rng(3);
    for (int i = 0; i < 500; ++i) {
        std::vector<double> out;
        enc.encode(RawDependence{rng(), rng(), rng.chance(0.5)}, out);
        ASSERT_EQ(out.size(), 2u);
        for (const double v : out) {
            EXPECT_GE(v, -kCodeRange);
            EXPECT_LE(v, kCodeRange);
        }
    }
}

TEST(PairEncoder, DistanceFeatureMonotoneInLogDelta)
{
    const Pc load = 0x401000;
    const double near =
        PairEncoder::distanceFeature(RawDependence{load - 4, load, false});
    const double mid = PairEncoder::distanceFeature(
        RawDependence{load - 0x100, load, false});
    const double far = PairEncoder::distanceFeature(
        RawDependence{load - 0x10000, load, false});
    EXPECT_LT(near, mid);
    EXPECT_LT(mid, far);
    EXPECT_GT(near, 0.0); // store before load => positive delta
}

TEST(PairEncoder, DistanceFeatureSignFollowsDirection)
{
    const Pc load = 0x401000;
    const double fwd =
        PairEncoder::distanceFeature(RawDependence{load - 64, load, false});
    const double bwd =
        PairEncoder::distanceFeature(RawDependence{load + 64, load, false});
    EXPECT_GT(fwd, 0.0);
    EXPECT_LT(bwd, 0.0);
    EXPECT_NEAR(fwd, -bwd, 1e-12);
}

TEST(PairEncoder, InterThreadShiftsLocality)
{
    const RawDependence intra{0x40100, 0x40200, false};
    const RawDependence inter{0x40100, 0x40200, true};
    EXPECT_NEAR(PairEncoder::localityFeature(inter),
                PairEncoder::localityFeature(intra) + 0.25, 1e-12);
    EXPECT_DOUBLE_EQ(PairEncoder::distanceFeature(intra),
                     PairEncoder::distanceFeature(inter));
}

TEST(PairEncoder, SimilarDependencesEncodeNearby)
{
    // Two loop-body dependences at adjacent slots of the same function
    // must land close together on both axes — the similarity property
    // the adaptivity experiment relies on.
    const RawDependence a{0x401000, 0x401004, false};
    const RawDependence b{0x401008, 0x40100c, false};
    EXPECT_NEAR(PairEncoder::localityFeature(a),
                PairEncoder::localityFeature(b), 0.05);
    EXPECT_NEAR(PairEncoder::distanceFeature(a),
                PairEncoder::distanceFeature(b), 0.05);
}

TEST(PairEncoder, BuggyWriterLandsFarOnDistanceAxis)
{
    const Pc load = 0x401004;
    const RawDependence valid{load - 4, load, false};
    const RawDependence buggy{load - 13 * 0x1000, load, false};
    EXPECT_GT(std::abs(PairEncoder::distanceFeature(buggy) -
                       PairEncoder::distanceFeature(valid)),
              1.0);
}

TEST(DictionaryEncoder, FirstSeenOrderStable)
{
    DictionaryEncoder enc(64);
    const RawDependence a{1, 2, false};
    const RawDependence b{3, 4, false};
    std::vector<double> out;
    enc.encode(a, out);
    enc.encode(b, out);
    enc.encode(a, out);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_DOUBLE_EQ(out[0], out[2]);
    EXPECT_NE(out[0], out[1]);
    EXPECT_EQ(enc.entries(), 2u);
}

TEST(DictionaryEncoder, WrapsAtCapacity)
{
    DictionaryEncoder enc(4);
    std::vector<double> first;
    enc.encode(RawDependence{0, 100, false}, first);
    for (Pc p = 1; p < 4; ++p) {
        std::vector<double> tmp;
        enc.encode(RawDependence{p, 100, false}, tmp);
    }
    std::vector<double> wrapped;
    enc.encode(RawDependence{4, 100, false}, wrapped); // 5th entry
    EXPECT_DOUBLE_EQ(wrapped[0], first[0]);
}

TEST(DictionaryEncoder, CloneIsIndependent)
{
    DictionaryEncoder enc(16);
    std::vector<double> out;
    enc.encode(RawDependence{1, 2, false}, out);
    auto copy = enc.clone();
    // New entries in the copy do not affect the original.
    std::vector<double> tmp;
    copy->encode(RawDependence{5, 6, false}, tmp);
    EXPECT_EQ(enc.entries(), 1u);
}

TEST(HashEncoder, DeterministicAndSaltSensitive)
{
    HashEncoder a(1);
    HashEncoder b(1);
    HashEncoder c(2);
    const RawDependence dep{7, 8, false};
    std::vector<double> va;
    std::vector<double> vb;
    std::vector<double> vc;
    a.encode(dep, va);
    b.encode(dep, vb);
    c.encode(dep, vc);
    EXPECT_DOUBLE_EQ(va[0], vb[0]);
    EXPECT_NE(va[0], vc[0]);
}

TEST(Encoders, EncodeSequenceConcatenates)
{
    PairEncoder enc;
    DependenceSequence seq;
    seq.deps = {{0x10, 0x14, false}, {0x20, 0x24, true}};
    const std::vector<double> inputs = enc.encodeSequence(seq);
    EXPECT_EQ(inputs.size(), 4u);
}

TEST(Encoders, DefaultEncoderIsPair)
{
    const auto enc = makeDefaultEncoder();
    EXPECT_EQ(enc->width(), 2u);
}

TEST(Encoders, CodeFromUnitEndpoints)
{
    EXPECT_DOUBLE_EQ(codeFromUnit(0.0), -kCodeRange);
    EXPECT_DOUBLE_EQ(codeFromUnit(0.5), 0.0);
    EXPECT_DOUBLE_EQ(codeFromUnit(1.0), kCodeRange);
}

} // namespace
} // namespace act
