/**
 * @file
 * Tests for RawDependence and DependenceSequence.
 */

#include <gtest/gtest.h>

#include "deps/raw_dependence.hh"

namespace act
{
namespace
{

TEST(RawDependence, EqualityIncludesLabel)
{
    const RawDependence intra{0x10, 0x20, false};
    const RawDependence inter{0x10, 0x20, true};
    EXPECT_EQ(intra, (RawDependence{0x10, 0x20, false}));
    EXPECT_NE(intra, inter);
}

TEST(RawDependence, KeyDistinguishes)
{
    const RawDependence a{0x10, 0x20, false};
    const RawDependence b{0x20, 0x10, false};
    const RawDependence c{0x10, 0x20, true};
    EXPECT_NE(a.key(), b.key());
    EXPECT_NE(a.key(), c.key());
    EXPECT_EQ(a.key(), (RawDependence{0x10, 0x20, false}).key());
}

TEST(RawDependence, ToStringShowsDirectionAndLabel)
{
    const RawDependence d{0x10, 0x20, true};
    const std::string s = d.toString();
    EXPECT_NE(s.find("0x10"), std::string::npos);
    EXPECT_NE(s.find("0x20"), std::string::npos);
    EXPECT_NE(s.find("inter"), std::string::npos);
}

DependenceSequence
seqOf(std::initializer_list<Pc> loads)
{
    DependenceSequence s;
    Pc store = 0x1000;
    for (const Pc load : loads)
        s.deps.push_back(RawDependence{store++, load, false});
    return s;
}

TEST(DependenceSequence, KeyOrderSensitive)
{
    DependenceSequence a;
    a.deps = {{1, 2, false}, {3, 4, false}};
    DependenceSequence b;
    b.deps = {{3, 4, false}, {1, 2, false}};
    EXPECT_NE(a.key(), b.key());
    EXPECT_EQ(a.key(), a.key());
}

TEST(DependenceSequence, KeyLengthSensitive)
{
    DependenceSequence a;
    a.deps = {{1, 2, false}};
    DependenceSequence b;
    b.deps = {{1, 2, false}, {1, 2, false}};
    EXPECT_NE(a.key(), b.key());
}

TEST(DependenceSequence, PrefixMatchFullEqual)
{
    const auto a = seqOf({10, 11, 12});
    EXPECT_EQ(a.prefixMatch(a), 3u);
}

TEST(DependenceSequence, PrefixMatchPartial)
{
    const auto a = seqOf({10, 11, 12});
    const auto b = seqOf({10, 11, 99});
    EXPECT_EQ(a.prefixMatch(b), 2u);
    const auto c = seqOf({99, 11, 12});
    EXPECT_EQ(a.prefixMatch(c), 0u);
}

TEST(DependenceSequence, PrefixMatchDifferentLengths)
{
    const auto a = seqOf({10, 11, 12});
    const auto b = seqOf({10, 11});
    EXPECT_EQ(a.prefixMatch(b), 2u);
    EXPECT_EQ(b.prefixMatch(a), 2u);
}

TEST(DependenceSequence, ToStringJoinsDeps)
{
    const auto a = seqOf({10, 11});
    const std::string s = a.toString();
    EXPECT_EQ(s.front(), '(');
    EXPECT_EQ(s.back(), ')');
    EXPECT_NE(s.find(", "), std::string::npos);
}

} // namespace
} // namespace act
