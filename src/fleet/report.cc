#include "fleet/report.hh"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace act::fleet
{

void
FleetReport::addSuspect(Pc store_pc, Pc load_pc, double raw)
{
    SuspectStat &stat = suspects[{store_pc, load_pc}];
    if (stat.count == 0 || raw < stat.min_raw)
        stat.min_raw = raw;
    ++stat.count;
}

void
FleetReport::merge(const FleetReport &other)
{
    totals.clients += other.totals.clients;
    totals.events += other.totals.events;
    totals.blocks += other.totals.blocks;
    totals.dependences += other.totals.dependences;
    totals.predictions += other.totals.predictions;
    totals.flagged += other.totals.flagged;
    totals.input_overwrites += other.totals.input_overwrites;
    totals.debug_overwrites += other.totals.debug_overwrites;
    totals.events_dropped += other.totals.events_dropped;
    totals.blocks_dropped += other.totals.blocks_dropped;
    totals.lint_rejects += other.totals.lint_rejects;
    totals.lockset_findings += other.totals.lockset_findings;

    for (const auto &[pair, stat] : other.suspects) {
        SuspectStat &mine = suspects[pair];
        if (mine.count == 0 || stat.min_raw < mine.min_raw)
            mine.min_raw = stat.min_raw;
        mine.count += stat.count;
    }
}

std::string
FleetReport::toText(std::size_t top_k) const
{
    // Fixed formats throughout: this text is the byte-comparable
    // artefact of the equivalence contract.
    std::string out;
    char line[192];
    const auto emit = [&out, &line] { out += line; };

    std::snprintf(line, sizeof(line), "fleet diagnosis report\n");
    emit();
    std::snprintf(line, sizeof(line),
                  "clients %llu events %llu blocks %llu\n",
                  static_cast<unsigned long long>(totals.clients),
                  static_cast<unsigned long long>(totals.events),
                  static_cast<unsigned long long>(totals.blocks));
    emit();
    std::snprintf(line, sizeof(line),
                  "dependences %llu predictions %llu flagged %llu\n",
                  static_cast<unsigned long long>(totals.dependences),
                  static_cast<unsigned long long>(totals.predictions),
                  static_cast<unsigned long long>(totals.flagged));
    emit();
    std::snprintf(
        line, sizeof(line),
        "overwrites input %llu debug %llu dropped events %llu "
        "blocks %llu lint_rejects %llu\n",
        static_cast<unsigned long long>(totals.input_overwrites),
        static_cast<unsigned long long>(totals.debug_overwrites),
        static_cast<unsigned long long>(totals.events_dropped),
        static_cast<unsigned long long>(totals.blocks_dropped),
        static_cast<unsigned long long>(totals.lint_rejects));
    emit();
    if (totals.lockset_findings != 0) {
        // Rendered only in lockset mode so dormant reports keep their
        // historical byte layout.
        std::snprintf(line, sizeof(line), "lockset findings %llu\n",
                      static_cast<unsigned long long>(
                          totals.lockset_findings));
        emit();
    }

    std::vector<std::pair<std::pair<Pc, Pc>, SuspectStat>> ranked(
        suspects.begin(), suspects.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  if (a.second.count != b.second.count)
                      return a.second.count > b.second.count;
                  if (a.second.min_raw != b.second.min_raw)
                      return a.second.min_raw < b.second.min_raw;
                  return a.first < b.first;
              });
    if (ranked.size() > top_k)
        ranked.resize(top_k);

    std::snprintf(line, sizeof(line), "top suspects %zu of %zu\n",
                  ranked.size(), suspects.size());
    emit();
    std::size_t rank = 1;
    for (const auto &[pair, stat] : ranked) {
        std::snprintf(line, sizeof(line),
                      "%2zu. store=0x%llx load=0x%llx count=%llu "
                      "min_raw=%.6f\n",
                      rank++, static_cast<unsigned long long>(pair.first),
                      static_cast<unsigned long long>(pair.second),
                      static_cast<unsigned long long>(stat.count),
                      stat.min_raw);
        emit();
    }
    return out;
}

} // namespace act::fleet
