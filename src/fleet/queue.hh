/**
 * @file
 * Bounded MPSC ingress queues for the fleet streaming service.
 *
 * Each diagnosis shard owns one BlockQueue; every client assigned to
 * the shard produces into it and the shard thread is the single
 * consumer. Granularity is a whole EventBlock (hundreds of events), so
 * the lock is taken once per block, not per event.
 *
 * Backpressure is explicit and the caller chooses the policy per push:
 *
 *  - push() blocks the producer until space frees up. Deadlock-free by
 *    construction: the consumer always drains (it never pushes to its
 *    own queue), so capacity is always eventually released.
 *  - tryPush() never blocks; it returns false when the queue is full
 *    and leaves the block with the caller, who must count the shed —
 *    the service layer surfaces every drop through telemetry, never
 *    silently.
 *
 * Per-producer FIFO: blocks from one producer are consumed in the
 * order that producer pushed them (all mutations happen under one
 * mutex), which is what lets the streaming service guarantee that each
 * client's events are processed in client order regardless of how
 * clients interleave.
 */

#ifndef ACT_FLEET_QUEUE_HH
#define ACT_FLEET_QUEUE_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "common/logging.hh"
#include "trace/event.hh"

namespace act::fleet
{

/** One ingress unit: a slice of one client's event stream. */
struct EventBlock
{
    std::uint32_t client = 0;
    std::vector<TraceEvent> events;
};

/** What a producer does when its shard's queue is full. */
enum class Backpressure : std::uint8_t
{
    kBlock, //!< Wait for space (lossless; the default).
    kShed   //!< Drop the block, counting every lost event.
};

/**
 * Bounded multi-producer single-consumer queue of EventBlocks.
 */
class BlockQueue
{
  public:
    /**
     * @param capacity  Maximum queued blocks (> 0).
     * @param producers Producers that will call producerDone().
     */
    BlockQueue(std::size_t capacity, std::uint32_t producers)
        : capacity_(capacity), producers_live_(producers)
    {
        ACT_ASSERT(capacity > 0);
    }

    BlockQueue(const BlockQueue &) = delete;
    BlockQueue &operator=(const BlockQueue &) = delete;

    /** Blocking enqueue (kBlock policy). */
    void
    push(EventBlock block)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        not_full_.wait(lock,
                       [this] { return blocks_.size() < capacity_; });
        blocks_.push_back(std::move(block));
        lock.unlock();
        not_empty_.notify_one();
    }

    /**
     * Non-blocking enqueue (kShed policy). Returns false — leaving
     * @p block untouched in the caller's hands — when full.
     */
    bool
    tryPush(EventBlock &block)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (blocks_.size() >= capacity_)
                return false;
            blocks_.push_back(std::move(block));
        }
        not_empty_.notify_one();
        return true;
    }

    /**
     * Consumer side: wait for the next block. Returns false when every
     * producer has finished and the queue is drained — the consumer's
     * termination condition.
     */
    bool
    pop(EventBlock &out)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        not_empty_.wait(lock, [this] {
            return !blocks_.empty() || producers_live_ == 0;
        });
        if (blocks_.empty())
            return false;
        out = std::move(blocks_.front());
        blocks_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return true;
    }

    /** One producer will push no more blocks. */
    void
    producerDone()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ACT_ASSERT(producers_live_ > 0);
            --producers_live_;
            if (producers_live_ != 0)
                return;
        }
        // Last producer out: wake the consumer so it can observe the
        // drained-and-done state and exit.
        not_empty_.notify_all();
    }

    /** Blocks currently queued (observability; racy by nature). */
    std::size_t
    depth() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return blocks_.size();
    }

  private:
    mutable std::mutex mutex_;
    std::condition_variable not_full_;  //!< Blocked producers sleep here.
    std::condition_variable not_empty_; //!< The consumer sleeps here.
    std::deque<EventBlock> blocks_;
    std::size_t capacity_;
    std::uint32_t producers_live_;
};

} // namespace act::fleet

#endif // ACT_FLEET_QUEUE_HH
