/**
 * @file
 * The fleet-scale streaming diagnosis service (ROADMAP item 1).
 *
 * Batch mode replays a whole recorded trace through one AM after the
 * fact; this service runs ACT the way the paper means it to run — as
 * always-on production monitoring, modelled after Mycroft-style online
 * communication tracing across a training fleet. N simulated client
 * processes (the deterministic workload generators) stream event
 * blocks concurrently into K diagnosis shards over bounded MPSC
 * queues with explicit backpressure; each shard multiplexes its
 * clients over one ActModule engine via per-client arenas, coalesces
 * staged sequences through the bit-exact batched NN inference, and
 * accumulates a mergeable FleetReport.
 *
 * Determinism contract (the `actfleet validate` gate): for fault-free
 * deterministic inputs under the kBlock (lossless) policy with a
 * bounded repeat count, the final merged report is byte-identical
 * across shard counts AND to replayFleetBatch() of the same
 * configuration. The pieces that buy this:
 *
 *  - disjoint mutable state: each client owns its front-end
 *    (tracker / memory system) and its ActArena; shards share only
 *    the immutable engine (config, stateless encoder, frozen weight
 *    registers);
 *  - testing-only modules: the misprediction-rate interval is pinned
 *    unreachably long, so no module ever switches to training and no
 *    commit ever back-propagates — the forward pass is pure and batch
 *    boundaries cannot be observed;
 *  - fixed client->shard assignment (client mod shards) and
 *    per-producer FIFO queues, so each client's events are processed
 *    in client order on every shard layout;
 *  - order-independent report merging (sums and mins only).
 *
 * Under kShed the contract is explicitly *not* byte-equivalence —
 * drops depend on timing — but it is still "never silent": every shed
 * block and event is counted in the report and in telemetry.
 */

#ifndef ACT_FLEET_SERVICE_HH
#define ACT_FLEET_SERVICE_HH

#include <cstdint>
#include <cstdio>
#include <string>

#include "fleet/queue.hh"
#include "fleet/report.hh"

namespace act::fleet
{

/** Which per-client front-end forms RAW dependences from events. */
enum class FrontEnd : std::uint8_t
{
    kTracker, //!< Exact software last-writer table (fast; default).
    kMem      //!< Simulated MESI memory system with writer extension.
};

/** Service parameters. */
struct FleetConfig
{
    std::uint32_t clients = 8;
    std::uint32_t shards = 2;

    /** Base seed; client i records its workload with seed + i. */
    std::uint64_t seed = 1;

    /** Fixed workload for every client; empty rotates the prediction
     *  kernel catalog (client i gets kernel i mod catalog size). */
    std::string workload;

    /** Workload scale multiplier. */
    std::uint32_t scale = 1;

    /** Times each client re-streams its recorded trace. */
    std::uint32_t repeat = 1;

    /**
     * Bench mode: stream until this wall-clock deadline instead of a
     * repeat count (0 disables). Nondeterministic by nature — never
     * used by the equivalence contract.
     */
    double duration_s = 0.0;

    std::size_t block_events = 512; //!< Events per ingress block.
    std::size_t queue_blocks = 64;  //!< Ingress queue capacity (blocks).
    std::size_t batch_max = 64;     //!< Staged inferences per NN batch.
    std::size_t top_k = 10;         //!< Suspects in the rendered report.

    Backpressure backpressure = Backpressure::kBlock;

    /** Incremental-report period in seconds (0 = final report only). */
    double epoch_s = 0.0;

    /** Run the streaming batch linter on every ingested block. */
    bool lint_blocks = false;

    /**
     * Online lockset mode: run an Eraser-style lockset race detector
     * per client over every ingested block. Per-client detectors see
     * events in client order on every shard layout, so the distinct
     * finding count folded into the report keeps the byte-equivalence
     * contract. Off by default (dormant).
     */
    bool lockset_blocks = false;

    FrontEnd front = FrontEnd::kTracker;

    /**
     * Ensemble members per shard engine (K). 1 — the default — is the
     * single-network shard, byte-identical to the pre-ensemble
     * service. With K > 1, each shard holds K frozen weight sets over
     * a proportionally smaller hidden layer (the members share the
     * M-neuron budget) and a staged sequence is flagged only on a
     * quorum of invalid votes. Every shard derives identical member
     * sets from the run seed, so the shard-count byte-equivalence
     * contract holds at any K.
     */
    std::uint32_t ensemble_members = 1;

    /** Invalid votes needed to flag (0 = majority of members). */
    std::uint32_t ensemble_quorum = 0;
};

/** Outcome of one service run. */
struct FleetResult
{
    FleetReport report;
    double wall_s = 0.0;        //!< Streaming phase only (no recording).
    std::uint64_t epochs = 0;   //!< Incremental reports emitted.
};

/**
 * Run the full threaded service: record client traces, stream them
 * through the shard pipeline, and merge the final report. Epoch
 * reports (config.epoch_s > 0) are written to @p epoch_out when
 * non-null.
 */
FleetResult runFleetService(const FleetConfig &config,
                            std::FILE *epoch_out = nullptr);

/**
 * Sequential reference pipeline: the same clients, front-ends, arenas
 * and batcher, fed client by client with no threads or queues. The
 * equivalence oracle for the streaming service.
 */
FleetResult replayFleetBatch(const FleetConfig &config);

} // namespace act::fleet

#endif // ACT_FLEET_SERVICE_HH
