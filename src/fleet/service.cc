#include "fleet/service.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "act/act_module.hh"
#include "analysis/lockset.hh"
#include "analysis/trace_lint.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "deps/encoder.hh"
#include "deps/tracker.hh"
#include "runner/thread_pool.hh"
#include "sim/memsys.hh"
#include "telemetry/metrics.hh"
#include "telemetry/spans.hh"
#include "workloads/kernel.hh"
#include "workloads/workload.hh"

namespace act::fleet
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Registry handles (volatile: ingest volume is timing dependent in
 *  bench mode and drop counts always are). */
struct FleetMetrics
{
    telemetry::Counter events_ingested;
    telemetry::Counter blocks_ingested;
    telemetry::Counter events_dropped;
    telemetry::Counter blocks_dropped;
    telemetry::Counter predictions;
    telemetry::Counter flagged;
    telemetry::Counter lint_rejects;
    telemetry::Counter lockset_findings;

    static const FleetMetrics &
    get()
    {
        static const FleetMetrics metrics = [] {
            auto &reg = telemetry::MetricsRegistry::global();
            const auto kVolatile = telemetry::Stability::kVolatile;
            FleetMetrics m;
            m.events_ingested =
                reg.counter("fleet.events_ingested", kVolatile);
            m.blocks_ingested =
                reg.counter("fleet.blocks_ingested", kVolatile);
            m.events_dropped =
                reg.counter("fleet.events_dropped", kVolatile);
            m.blocks_dropped =
                reg.counter("fleet.blocks_dropped", kVolatile);
            m.predictions = reg.counter("fleet.predictions", kVolatile);
            m.flagged = reg.counter("fleet.flagged", kVolatile);
            m.lint_rejects =
                reg.counter("fleet.lint_rejects", kVolatile);
            m.lockset_findings =
                reg.counter("fleet.lockset_findings", kVolatile);
            return m;
        }();
        return metrics;
    }
};

/** Per-shard ingress depth gauge, `fleet.queue_depth.<shard>`. */
telemetry::Gauge
shardDepthGauge(std::uint32_t shard)
{
    return telemetry::MetricsRegistry::global().gauge(
        "fleet.queue_depth." + std::to_string(shard));
}

void
checkConfig(const FleetConfig &config)
{
    if (config.clients == 0 || config.clients > 4096)
        ACT_FATAL("fleet: clients must be in 1..4096, got "
                  << config.clients);
    if (config.shards == 0 || config.shards > 64)
        ACT_FATAL("fleet: shards must be in 1..64, got "
                  << config.shards);
    if (config.block_events == 0)
        ACT_FATAL("fleet: block_events must be > 0");
    if (config.queue_blocks == 0)
        ACT_FATAL("fleet: queue_blocks must be > 0");
    if (config.batch_max == 0)
        ACT_FATAL("fleet: batch_max must be > 0");
    if (config.repeat == 0 && config.duration_s <= 0.0)
        ACT_FATAL("fleet: repeat 0 requires a duration");
}

/** Module configuration of every shard: online testing only. */
ActConfig
fleetActConfig(const FleetConfig &fleet)
{
    ActConfig config;
    // Pin the module in testing mode: with an unreachable measurement
    // interval the misprediction rate is never sampled, so no commit
    // ever flips to training and the shared weight registers stay
    // frozen — the property that makes arena multiplexing sound.
    config.interval_length = std::numeric_limits<std::uint64_t>::max();
    if (fleet.ensemble_members > 1) {
        // K members share the M-neuron bank, so each gets an equal
        // slice of the hidden layer (validateActConfig enforces the
        // budget at construction).
        config.ensemble.members = fleet.ensemble_members;
        config.ensemble.quorum = fleet.ensemble_quorum;
        config.topology.hidden = std::max<std::size_t>(
            1, config.hw.neuron.max_inputs / fleet.ensemble_members);
    }
    return config;
}

/**
 * The frozen weight set every shard loads, derived from the run seed
 * only, so all shard engines (and the batch-replay engine) are
 * identical. Magnitudes near the sigmoid's active region give the
 * classifier real discrimination over the encoder's [-2, 2] features
 * instead of saturating one way for everything.
 */
std::vector<double>
fleetWeights(std::size_t count, std::uint64_t seed)
{
    Rng rng(seed ^ 0xf1ee7c0ffeeULL);
    std::vector<double> weights(count);
    for (double &w : weights)
        w = rng.uniform(-0.9, 0.9);
    return weights;
}

/** Per-client memory-system parameters (kMem front-end): small caches
 *  so hundreds of clients stay cheap, everything else Table III. */
MemSystemConfig
clientMemConfig()
{
    MemSystemConfig config;
    config.cores = 4;
    config.l1_bytes = 8 * 1024;
    config.l1_assoc = 2;
    config.l2_bytes = 64 * 1024;
    config.l2_assoc = 4;
    return config;
}

/** All mutable per-client monitoring state. */
struct ClientState
{
    ClientState(const ActModule &module, FrontEnd front,
                const MemSystemConfig &mem_config, bool with_lockset)
        : arena(module.makeArena())
    {
        if (front == FrontEnd::kMem)
            mem = std::make_unique<MemorySystem>(mem_config);
        if (with_lockset)
            lockset = std::make_unique<LocksetDetector>();
    }

    ActArena arena;
    DependenceTracker tracker;
    std::unique_ptr<MemorySystem> mem; //!< kMem front-end only.
    std::unique_ptr<LocksetDetector> lockset; //!< lockset_blocks only.
};

/** Feed one event through the client's front-end. */
std::optional<RawDependence>
observeEvent(ClientState &client, const TraceEvent &event)
{
    if (!client.mem)
        return client.tracker.observe(event);

    // Mirror System::handle's memory-side behaviour: loads and stores
    // hit the cache model, lock ops are RMWs on the lock word, and a
    // non-stack load with a known last writer forms the dependence.
    MemorySystem &mem = *client.mem;
    const CoreId core = event.tid % mem.config().cores;
    switch (event.kind) {
      case EventKind::kStore:
        mem.access(core, event);
        return std::nullopt;
      case EventKind::kLoad: {
        const MemAccess access = mem.access(core, event);
        if (event.stack || !access.last_writer)
            return std::nullopt;
        return RawDependence{access.last_writer->pc, event.pc,
                             access.last_writer->tid != event.tid};
      }
      case EventKind::kLock:
      case EventKind::kUnlock: {
        TraceEvent rmw = event;
        rmw.kind = EventKind::kStore;
        mem.access(core, rmw);
        return std::nullopt;
      }
      default:
        return std::nullopt;
    }
}

/**
 * One diagnosis shard: an ActModule engine, the arenas of the clients
 * assigned here, and the inference batcher. ingest() runs on exactly
 * one thread; snapshot() may run concurrently (epoch reporter), so
 * the report is mutex-guarded and touched only at block/flush
 * granularity — never per event.
 */
class ShardWorker
{
  public:
    explicit ShardWorker(const FleetConfig &config)
        : config_(config), module_(fleetActConfig(config), PairEncoder{}),
          width_(module_.config().sequence_length * PairEncoder{}.width())
    {
        // With K members the restore blob is K frozen sets drawn from
        // the same seeded stream — every shard (and the batch-replay
        // engine) still derives identical engines from the run seed.
        module_.restoreWeights(fleetWeights(
            module_.network().weightCount() * module_.memberCount(),
            config.seed));
        ACT_ASSERT(module_.mode() == ActMode::kTesting);
        for (std::size_t m = 0; m < module_.memberCount(); ++m)
            members_.push_back(&module_.member(m));
        clients_.resize(config.clients);
        flat_.reserve(config.batch_max * width_);
        pending_.reserve(config.batch_max);
    }

    /** Process one block (consumer thread only). */
    void
    ingest(EventBlock &&block)
    {
        if (config_.lint_blocks) {
            BatchLintOptions lint;
            lint.max_threads = 1024;
            const auto findings = lintEventBatch(block.events, lint);
            if (!clean(findings)) {
                std::lock_guard<std::mutex> lock(mutex_);
                ++report_.totals.lint_rejects;
                FleetMetrics::get().lint_rejects.inc();
                return;
            }
        }

        ClientState &client = state(block.client);
        module_.bindArena(&client.arena);
        std::uint64_t deps = 0;
        for (const TraceEvent &event : block.events) {
            if (client.lockset)
                client.lockset->observe(event);
            const auto dep = observeEvent(client, event);
            if (!dep)
                continue;
            ++deps;
            if (!module_.stageDependence(*dep))
                continue;
            const std::vector<double> &inputs = module_.stagedInputs();
            ACT_ASSERT(inputs.size() == width_);
            flat_.insert(flat_.end(), inputs.begin(), inputs.end());
            pending_.push_back(Pending{block.client,
                                       module_.stagedSequence(),
                                       event.tid});
            if (pending_.size() >= config_.batch_max) {
                flushBatch();
                module_.bindArena(&client.arena);
            }
        }

        const FleetMetrics &m = FleetMetrics::get();
        m.events_ingested.add(block.events.size());
        m.blocks_ingested.inc();
        std::lock_guard<std::mutex> lock(mutex_);
        report_.totals.events += block.events.size();
        ++report_.totals.blocks;
        report_.totals.dependences += deps;
    }

    /** Drain the batcher and fold in arena-held counters. */
    void
    finish()
    {
        flushBatch();
        std::lock_guard<std::mutex> lock(mutex_);
        std::uint64_t lockset_findings = 0;
        for (const auto &client : clients_) {
            if (!client)
                continue;
            const ActModuleStats &s = client->arena.stats;
            report_.totals.input_overwrites += s.input_buffer_overwrites;
            report_.totals.debug_overwrites += s.debug_buffer_overwrites;
            if (client->lockset)
                lockset_findings += client->lockset->report().size();
        }
        report_.totals.lockset_findings += lockset_findings;
        if (lockset_findings != 0)
            FleetMetrics::get().lockset_findings.add(lockset_findings);
    }

    /** Point-in-time copy for epoch reporting. */
    FleetReport
    snapshot() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return report_;
    }

  private:
    struct Pending
    {
        std::uint32_t client;
        DependenceSequence sequence;
        ThreadId tid;
    };

    ClientState &
    state(std::uint32_t client)
    {
        ACT_ASSERT(client < clients_.size());
        if (!clients_[client]) {
            clients_[client] = std::make_unique<ClientState>(
                module_, config_.front, clientMemConfig(),
                config_.lockset_blocks);
        }
        return *clients_[client];
    }

    void
    flushBatch()
    {
        if (pending_.empty())
            return;
        const std::size_t k = module_.memberCount();
        if (k == 1) {
            module_.network().inferBatchFlat(flat_, width_,
                                             pending_.size(), outputs_);
        } else {
            inferEnsembleFlat(members_, flat_, width_, pending_.size(),
                              outputs_, member_scratch_);
        }
        std::uint64_t flagged = 0;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            for (std::size_t i = 0; i < pending_.size(); ++i) {
                const Pending &p = pending_[i];
                module_.bindArena(&clients_[p.client]->arena);
                const auto inputs =
                    std::span<const double>(flat_).subspan(i * width_,
                                                           width_);
                const StagedOutcome outcome =
                    k == 1 ? module_.commitPrediction(
                                 p.sequence, inputs, outputs_[i], p.tid)
                           : module_.commitEnsemble(
                                 p.sequence, inputs,
                                 std::span<const double>(outputs_)
                                     .subspan(i * k, k),
                                 p.tid);
                if (outcome.predicted_invalid) {
                    ++flagged;
                    const RawDependence &last = p.sequence.deps.back();
                    report_.addSuspect(last.store_pc, last.load_pc,
                                       outcome.raw);
                }
            }
            report_.totals.predictions += pending_.size();
            report_.totals.flagged += flagged;
        }
        const FleetMetrics &m = FleetMetrics::get();
        m.predictions.add(pending_.size());
        m.flagged.add(flagged);
        flat_.clear();
        pending_.clear();
    }

    const FleetConfig &config_;
    ActModule module_;
    std::size_t width_; //!< Doubles per staged input vector.
    std::vector<std::unique_ptr<ClientState>> clients_;

    /** Member networks in member order (size 1 without an ensemble). */
    std::vector<const HwNeuralNetwork *> members_;

    std::vector<double> flat_;      //!< Packed staged input vectors.
    std::vector<Pending> pending_;  //!< Metadata parallel to flat_.
    std::vector<double> outputs_;   //!< Batch results (item-major,
                                    //!< member index fastest).
    std::vector<double> member_scratch_; //!< inferEnsembleFlat scratch.

    mutable std::mutex mutex_;      //!< Guards report_.
    FleetReport report_;
};

/** Record every client's trace (deterministic; workloads rotate the
 *  prediction-kernel catalog unless one was pinned). */
std::vector<Trace>
recordClientTraces(const FleetConfig &config)
{
    registerAllWorkloads();
    const std::vector<std::string> catalog =
        config.workload.empty() ? predictionKernelNames()
                                : std::vector<std::string>{};
    std::vector<Trace> traces(config.clients);
    WorkStealingPool pool;
    for (std::uint32_t c = 0; c < config.clients; ++c) {
        pool.submit([&, c] {
            const std::string &name =
                catalog.empty() ? config.workload
                                : catalog[c % catalog.size()];
            const auto workload = makeWorkload(name);
            WorkloadParams params;
            params.seed = config.seed + c;
            params.scale = config.scale;
            traces[c] = workload->record(params);
        });
    }
    pool.wait();
    return traces;
}

/** Merge shard reports (order-independent) and attach run totals. */
FleetReport
mergeReports(const std::vector<std::unique_ptr<ShardWorker>> &workers,
             const FleetConfig &config, std::uint64_t events_dropped,
             std::uint64_t blocks_dropped)
{
    FleetReport merged;
    for (const auto &worker : workers)
        merged.merge(worker->snapshot());
    merged.totals.clients = config.clients;
    merged.totals.events_dropped = events_dropped;
    merged.totals.blocks_dropped = blocks_dropped;
    return merged;
}

} // namespace

FleetResult
runFleetService(const FleetConfig &config, std::FILE *epoch_out)
{
    checkConfig(config);
    const std::vector<Trace> traces = recordClientTraces(config);

    // Producer bookkeeping per shard queue: clients are assigned
    // round-robin, so shard s serves clients {c | c mod shards == s}.
    std::vector<std::uint32_t> producers(config.shards, 0);
    for (std::uint32_t c = 0; c < config.clients; ++c)
        ++producers[c % config.shards];

    std::vector<std::unique_ptr<BlockQueue>> queues;
    std::vector<std::unique_ptr<ShardWorker>> workers;
    for (std::uint32_t s = 0; s < config.shards; ++s) {
        queues.push_back(std::make_unique<BlockQueue>(
            config.queue_blocks, producers[s]));
        workers.push_back(std::make_unique<ShardWorker>(config));
    }

    std::atomic<std::uint64_t> events_dropped{0};
    std::atomic<std::uint64_t> blocks_dropped{0};

    telemetry::ScopedSpan span("fleet.stream", "fleet");
    const auto start = Clock::now();
    const auto deadline =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(config.duration_s));

    // Shards are dedicated threads: they run for the whole service
    // lifetime and block in pop(), which would wedge a cooperative
    // work-stealing worker.
    std::vector<std::thread> shard_threads;
    for (std::uint32_t s = 0; s < config.shards; ++s) {
        shard_threads.emplace_back([&, s] {
            telemetry::SpanTracer::global().nameThread(
                "fleet-shard-" + std::to_string(s));
            const telemetry::Gauge depth = shardDepthGauge(s);
            EventBlock block;
            while (queues[s]->pop(block)) {
                depth.dec();
                workers[s]->ingest(std::move(block));
            }
            workers[s]->finish();
        });
    }

    // Epoch reporter: merge shard snapshots every epoch_s and render
    // an incremental report. Progress output only — the final report
    // is produced after every thread joins.
    std::mutex epoch_mutex;
    std::condition_variable epoch_cv;
    bool streaming_done = false;
    std::uint64_t epochs = 0;
    std::thread epoch_thread;
    if (config.epoch_s > 0.0 && epoch_out != nullptr) {
        epoch_thread = std::thread([&] {
            std::unique_lock<std::mutex> lock(epoch_mutex);
            const auto period =
                std::chrono::duration<double>(config.epoch_s);
            while (!epoch_cv.wait_for(
                lock, period, [&] { return streaming_done; })) {
                lock.unlock();
                const FleetReport epoch = mergeReports(
                    workers, config, events_dropped.load(),
                    blocks_dropped.load());
                std::fprintf(
                    epoch_out,
                    "epoch %llu events=%llu predictions=%llu "
                    "flagged=%llu suspects=%zu dropped=%llu\n",
                    static_cast<unsigned long long>(epochs + 1),
                    static_cast<unsigned long long>(
                        epoch.totals.events),
                    static_cast<unsigned long long>(
                        epoch.totals.predictions),
                    static_cast<unsigned long long>(
                        epoch.totals.flagged),
                    epoch.suspects.size(),
                    static_cast<unsigned long long>(
                        epoch.totals.events_dropped));
                std::fflush(epoch_out);
                lock.lock();
                ++epochs;
            }
        });
    }

    // Clients run as pool tasks: short bursts of block pushes. A task
    // blocked in push() under the kBlock policy cannot deadlock — its
    // shard is a dedicated thread that always drains.
    {
        WorkStealingPool pool;
        for (std::uint32_t c = 0; c < config.clients; ++c) {
            pool.submit([&, c] {
                BlockQueue &queue = *queues[c % config.shards];
                const telemetry::Gauge depth =
                    shardDepthGauge(c % config.shards);
                const std::vector<TraceEvent> &events =
                    traces[c].events();
                const FleetMetrics &m = FleetMetrics::get();
                for (std::uint32_t rep = 0;; ++rep) {
                    if (config.duration_s > 0.0) {
                        if (Clock::now() >= deadline)
                            break;
                    } else if (rep >= config.repeat) {
                        break;
                    }
                    for (std::size_t offset = 0;
                         offset < events.size();
                         offset += config.block_events) {
                        const std::size_t end = std::min(
                            offset + config.block_events,
                            events.size());
                        EventBlock block;
                        block.client = c;
                        block.events.assign(events.begin() + offset,
                                            events.begin() + end);
                        if (config.backpressure ==
                            Backpressure::kBlock) {
                            queue.push(std::move(block));
                            depth.inc();
                        } else if (queue.tryPush(block)) {
                            depth.inc();
                        } else {
                            // Shed: counted exactly, never silent.
                            events_dropped.fetch_add(
                                block.events.size());
                            blocks_dropped.fetch_add(1);
                            m.events_dropped.add(block.events.size());
                            m.blocks_dropped.inc();
                        }
                    }
                }
                queue.producerDone();
            });
        }
        pool.wait();
    }

    for (auto &thread : shard_threads)
        thread.join();
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - start).count();

    if (epoch_thread.joinable()) {
        {
            std::lock_guard<std::mutex> lock(epoch_mutex);
            streaming_done = true;
        }
        epoch_cv.notify_all();
        epoch_thread.join();
    }

    FleetResult result;
    result.report = mergeReports(workers, config, events_dropped.load(),
                                 blocks_dropped.load());
    result.wall_s = wall_s;
    result.epochs = epochs;
    return result;
}

FleetResult
replayFleetBatch(const FleetConfig &config)
{
    checkConfig(config);
    const std::vector<Trace> traces = recordClientTraces(config);

    // One worker, no queues, clients in id order: the sequential
    // reference the streaming service must reproduce byte for byte.
    // Blocks are chunked identically so block counts match too.
    const auto start = Clock::now();
    ShardWorker worker(config);
    const std::uint32_t reps = config.repeat == 0 ? 1 : config.repeat;
    for (std::uint32_t c = 0; c < config.clients; ++c) {
        const std::vector<TraceEvent> &events = traces[c].events();
        for (std::uint32_t rep = 0; rep < reps; ++rep) {
            for (std::size_t offset = 0; offset < events.size();
                 offset += config.block_events) {
                const std::size_t end = std::min(
                    offset + config.block_events, events.size());
                EventBlock block;
                block.client = c;
                block.events.assign(events.begin() + offset,
                                    events.begin() + end);
                worker.ingest(std::move(block));
            }
        }
    }
    worker.finish();

    FleetResult result;
    result.report = worker.snapshot();
    result.report.totals.clients = config.clients;
    result.wall_s =
        std::chrono::duration<double>(Clock::now() - start).count();
    return result;
}

} // namespace act::fleet
