/**
 * @file
 * Incremental, mergeable diagnosis reports for the fleet service.
 *
 * Each shard accumulates a FleetReport as it drains its ingress queue;
 * periodic epochs and the final answer are produced by merging the
 * shard reports. Merging is the whole design constraint: every field
 * is either a sum (totals, suspect counts) or an associative,
 * commutative reduction (min over raw outputs), so the merged result
 * is independent of shard count and of how clients interleaved — the
 * basis of the streaming-vs-batch byte-equivalence contract that
 * `actfleet validate` checks.
 */

#ifndef ACT_FLEET_REPORT_HH
#define ACT_FLEET_REPORT_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "common/types.hh"

namespace act::fleet
{

/** Aggregate ingest/diagnosis counters. */
struct FleetTotals
{
    std::uint64_t clients = 0;
    std::uint64_t events = 0;            //!< Events ingested (processed).
    std::uint64_t blocks = 0;            //!< Blocks ingested.
    std::uint64_t dependences = 0;       //!< RAW deps formed.
    std::uint64_t predictions = 0;       //!< Sequences classified.
    std::uint64_t flagged = 0;           //!< Predicted invalid.
    std::uint64_t input_overwrites = 0;  //!< Input-ring saturation.
    std::uint64_t debug_overwrites = 0;  //!< Debug-ring saturation.
    std::uint64_t events_dropped = 0;    //!< Shed under backpressure.
    std::uint64_t blocks_dropped = 0;
    std::uint64_t lint_rejects = 0;      //!< Blocks failing batch lint.
    std::uint64_t lockset_findings = 0;  //!< Distinct per-client lockset
                                         //!< race findings (--lockset-blocks).
};

/** Evidence accumulated against one suspect PC-pair. */
struct SuspectStat
{
    std::uint64_t count = 0; //!< Times the pair ended a flagged sequence.
    double min_raw = 0.0;    //!< Most negative raw NN output seen.
};

/**
 * One (partial or merged) diagnosis report.
 */
struct FleetReport
{
    FleetTotals totals;

    /** Flagged (store_pc, load_pc) pairs and their evidence. */
    std::map<std::pair<Pc, Pc>, SuspectStat> suspects;

    /** Account one flagged sequence ending in this pair. */
    void addSuspect(Pc store_pc, Pc load_pc, double raw);

    /** Fold @p other in (order-independent). */
    void merge(const FleetReport &other);

    /**
     * Deterministic text rendering: totals, then the top @p top_k
     * suspects ranked by count desc, then min_raw asc (most negative —
     * the paper's "most negative output first" tie-break), then pair.
     * Byte-comparable across runs, shard counts and streaming-vs-batch
     * for fault-free deterministic inputs under the kBlock policy.
     */
    std::string toText(std::size_t top_k) const;
};

} // namespace act::fleet

#endif // ACT_FLEET_REPORT_HH
