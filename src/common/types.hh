/**
 * @file
 * Fundamental scalar types shared by every ACT module.
 *
 * Part of the ACT reproduction (ISCA 2016): Production-Run Software
 * Failure Diagnosis via Adaptive Communication Tracking.
 */

#ifndef ACT_COMMON_TYPES_HH
#define ACT_COMMON_TYPES_HH

#include <cstdint>

namespace act
{

/** A virtual data address (byte granularity). */
using Addr = std::uint64_t;

/** A static instruction address (program counter). */
using Pc = std::uint64_t;

/**
 * A deterministic thread identifier.
 *
 * Following Section IV-C of the paper, thread ids are derived from the
 * parent thread and the spawning order so that the same logical thread
 * receives the same id in every execution.
 */
using ThreadId = std::uint32_t;

/** A processor core index. */
using CoreId = std::uint32_t;

/** A simulated clock cycle count. */
using Cycle = std::uint64_t;

/** A monotonically increasing event sequence number within a trace. */
using SeqNum = std::uint64_t;

/** Sentinel for "no thread". */
inline constexpr ThreadId kInvalidThread = ~ThreadId{0};

/** Sentinel for "no program counter" (e.g., no last writer known). */
inline constexpr Pc kInvalidPc = ~Pc{0};

/** Sentinel for "no core". */
inline constexpr CoreId kInvalidCore = ~CoreId{0};

} // namespace act

#endif // ACT_COMMON_TYPES_HH
