/**
 * @file
 * Saturating signed fixed-point arithmetic for the hardware NN model.
 *
 * The digital neural network of Section IV-A (following Esmaeilzadeh et
 * al.'s NPU) computes with fixed-point weights and activations. The
 * class is a template over the number of fractional bits so the tests
 * can sweep precision; the hardware model instantiates FixedPoint<16>
 * (Q15.16 in 32-bit storage with 64-bit intermediates).
 */

#ifndef ACT_COMMON_FIXED_POINT_HH
#define ACT_COMMON_FIXED_POINT_HH

#include <algorithm>
#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>

namespace act
{

/**
 * Signed saturating fixed-point value with @p FracBits fractional bits.
 *
 * Stored in 32 bits; products use 64-bit intermediates and saturate on
 * overflow, mirroring a hardware multiply-add datapath.
 */
template <int FracBits>
class FixedPoint
{
    static_assert(FracBits > 0 && FracBits < 31,
                  "fractional bits must leave room for sign and integer");

  public:
    /** Raw storage type. */
    using Raw = std::int32_t;

    /** Scaling factor 2^FracBits. */
    static constexpr double kScale = static_cast<double>(1LL << FracBits);

    constexpr FixedPoint() = default;

    /** Convert from double with rounding and saturation. */
    static constexpr FixedPoint
    fromDouble(double v)
    {
        const double scaled = v * kScale;
        const double lo = static_cast<double>(
            std::numeric_limits<Raw>::min());
        const double hi = static_cast<double>(
            std::numeric_limits<Raw>::max());
        const double clamped = std::clamp(scaled, lo, hi);
        FixedPoint out;
        out.raw_ = static_cast<Raw>(std::llround(clamped));
        return out;
    }

    /** Wrap a raw fixed-point integer. */
    static constexpr FixedPoint
    fromRaw(Raw raw)
    {
        FixedPoint out;
        out.raw_ = raw;
        return out;
    }

    constexpr double toDouble() const
    {
        return static_cast<double>(raw_) / kScale;
    }

    constexpr Raw raw() const { return raw_; }

    constexpr FixedPoint
    operator+(FixedPoint other) const
    {
        return fromWide(static_cast<std::int64_t>(raw_) + other.raw_);
    }

    constexpr FixedPoint
    operator-(FixedPoint other) const
    {
        return fromWide(static_cast<std::int64_t>(raw_) - other.raw_);
    }

    /** Fixed-point multiply: (a*b) >> FracBits with saturation. */
    constexpr FixedPoint
    operator*(FixedPoint other) const
    {
        const std::int64_t wide =
            (static_cast<std::int64_t>(raw_) * other.raw_) >> FracBits;
        return fromWide(wide);
    }

    constexpr FixedPoint operator-() const { return fromWide(-std::int64_t{raw_}); }

    constexpr auto operator<=>(const FixedPoint &) const = default;

  private:
    static constexpr FixedPoint
    fromWide(std::int64_t wide)
    {
        const std::int64_t lo = std::numeric_limits<Raw>::min();
        const std::int64_t hi = std::numeric_limits<Raw>::max();
        FixedPoint out;
        out.raw_ = static_cast<Raw>(std::clamp(wide, lo, hi));
        return out;
    }

    Raw raw_ = 0;
};

/** The precision the hardware NN model uses (Q15.16). */
using HwFixed = FixedPoint<16>;

} // namespace act

#endif // ACT_COMMON_FIXED_POINT_HH
