/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * The standard library engines are implementation-defined across
 * platforms for some distributions; all stochastic behaviour in the
 * reproduction flows through this class so results are stable.
 */

#ifndef ACT_COMMON_RNG_HH
#define ACT_COMMON_RNG_HH

#include <array>
#include <cstdint>

#include "common/hashing.hh"

namespace act
{

/**
 * xoshiro256** generator with convenience distributions.
 *
 * Satisfies the UniformRandomBitGenerator requirements, so it can also
 * be plugged into <random> distributions when needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Seed via SplitMix64 expansion of a single 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    /** Next raw 64-bit value. */
    result_type operator()();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t next(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p);

    /** Approximately normal variate (sum of uniforms, CLT). */
    double gaussian(double mean, double stddev);

    /** Fork a child generator with an independent stream. */
    Rng fork(std::uint64_t stream_id);

  private:
    std::array<std::uint64_t, 4> state_;
};

} // namespace act

#endif // ACT_COMMON_RNG_HH
