/**
 * @file
 * Lightweight statistics helpers used across the simulator and benches.
 */

#ifndef ACT_COMMON_STATS_HH
#define ACT_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace act
{

/**
 * Numerically stable running mean / variance (Welford's algorithm).
 */
class OnlineStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples observed. */
    std::uint64_t count() const { return count_; }

    /** Sample mean (0 when empty). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Unbiased sample variance (0 with < 2 samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }

    /** Merge another accumulator into this one. */
    void merge(const OnlineStats &other);

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Counts events over fixed-size intervals and reports the rate of a
 * tagged subset ("hits") within the most recently completed interval.
 *
 * Used by the ACT Module to compute the periodic misprediction rate
 * that drives the online testing <-> training mode switch.
 */
class IntervalRate
{
  public:
    /** @param interval_length Number of events per measurement window. */
    explicit IntervalRate(std::uint64_t interval_length);

    /**
     * Record one event.
     *
     * @param hit Whether the event counts toward the rate numerator.
     * @return true when this event completed an interval (a fresh rate
     *         is now available via lastRate()).
     */
    bool record(bool hit);

    /** Rate of hits within the last completed interval. */
    double lastRate() const { return last_rate_; }

    /** True once at least one interval has completed. */
    bool hasRate() const { return has_rate_; }

    /** Events recorded in the current (incomplete) interval. */
    std::uint64_t pending() const { return events_; }

    std::uint64_t intervalLength() const { return interval_length_; }

    /** Total events ever recorded. */
    std::uint64_t totalEvents() const { return total_events_; }

    /** Total hits ever recorded. */
    std::uint64_t totalHits() const { return total_hits_; }

    /** Reset the current interval without touching lifetime totals. */
    void resetInterval();

  private:
    std::uint64_t interval_length_;
    std::uint64_t events_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t total_events_ = 0;
    std::uint64_t total_hits_ = 0;
    double last_rate_ = 0.0;
    bool has_rate_ = false;
};

/**
 * Sparse integer histogram with pretty-printing, for bench output.
 */
class Histogram
{
  public:
    void add(std::int64_t value, std::uint64_t weight = 1);

    std::uint64_t total() const { return total_; }

    /** Value below which @p fraction of the mass lies (nearest rank). */
    std::int64_t percentile(double fraction) const;

    const std::map<std::int64_t, std::uint64_t> &buckets() const
    {
        return buckets_;
    }

    /** Render "value: count" lines, largest buckets first. */
    std::string toString(std::size_t max_rows = 16) const;

  private:
    std::map<std::int64_t, std::uint64_t> buckets_;
    std::uint64_t total_ = 0;
};

/** Format @p v as a percentage with @p decimals digits, e.g. "8.2%". */
std::string formatPercent(double v, int decimals = 1);

/** Arithmetic mean of a vector (0 when empty). */
double meanOf(const std::vector<double> &values);

} // namespace act

#endif // ACT_COMMON_STATS_HH
