/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * Two terminating reporters are provided, with the same semantics gem5
 * documents for them:
 *  - panic():  an internal invariant was violated (a bug in ACT itself);
 *              aborts so a core dump / debugger can take over.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, invalid arguments); exits cleanly.
 *
 * Non-terminating reporters inform() and warn() print status messages.
 */

#ifndef ACT_COMMON_LOGGING_HH
#define ACT_COMMON_LOGGING_HH

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace act
{

/** Verbosity levels for the global logger. */
enum class LogLevel
{
    kQuiet,  //!< Only warnings and errors.
    kNormal, //!< inform() and above (default).
    kDebug   //!< Everything, including debugLog().
};

namespace logging_detail
{

/** Emit one formatted line to stderr with the given tag. */
void emit(const char *tag, const std::string &message);

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &message);
[[noreturn]] void fatalImpl(const std::string &message);

/** Current verbosity; see setLogLevel(). */
LogLevel currentLevel();

} // namespace logging_detail

/** Set the process-wide verbosity. */
void setLogLevel(LogLevel level);

/**
 * Parse a --log-level value ("quiet", "normal", "debug").
 * @return false (leaving @p out untouched) on anything else.
 */
bool parseLogLevel(const std::string &name, LogLevel *out);

/** One key=value field of a structured log line. */
struct LogField
{
    std::string key;
    std::string value;
};

inline LogField
logField(std::string key, std::string value)
{
    return LogField{std::move(key), std::move(value)};
}

inline LogField
logField(std::string key, const char *value)
{
    return LogField{std::move(key), value};
}

inline LogField
logField(std::string key, std::uint64_t value)
{
    return LogField{std::move(key), std::to_string(value)};
}

inline LogField
logField(std::string key, std::int64_t value)
{
    return LogField{std::move(key), std::to_string(value)};
}

inline LogField
logField(std::string key, std::uint32_t value)
{
    return LogField{std::move(key), std::to_string(value)};
}

inline LogField
logField(std::string key, double value)
{
    std::ostringstream out;
    out << value;
    return LogField{std::move(key), out.str()};
}

/**
 * Render @p fields as a canonical `event k1=v1 k2=v2` line. Values
 * containing spaces, quotes, or '=' are double-quoted with backslash
 * escapes, so the line stays machine-splittable on spaces.
 */
std::string formatLogEvent(const std::string &event,
                           const std::vector<LogField> &fields);

/**
 * Emit a structured key=value status line at info level (suppressed
 * when kQuiet), e.g. `info: runner.retry job=3 attempt=1 backoff_ms=12`.
 */
void logEvent(const std::string &event,
              const std::vector<LogField> &fields);

/** Structured warning line (never suppressed). */
void logWarnEvent(const std::string &event,
                  const std::vector<LogField> &fields);

/** Print an informational status message (suppressed when kQuiet). */
void inform(const std::string &message);

/** Print a warning about suspicious but non-fatal conditions. */
void warn(const std::string &message);

/** Print a debug message (only when kDebug). */
void debugLog(const std::string &message);

/**
 * Abort because an internal invariant does not hold.
 *
 * Use for conditions that can only arise from a bug in this codebase,
 * never from user input.
 */
#define ACT_PANIC(msg)                                                     \
    ::act::logging_detail::panicImpl(__FILE__, __LINE__,                   \
                                     (::std::ostringstream{} << msg).str())

/**
 * Terminate because the user asked for something unsupported.
 */
#define ACT_FATAL(msg)                                                     \
    ::act::logging_detail::fatalImpl(                                      \
        (::std::ostringstream{} << msg).str())

/** Panic unless @p cond holds. */
#define ACT_ASSERT(cond)                                                   \
    do {                                                                   \
        if (!(cond))                                                       \
            ACT_PANIC("assertion failed: " #cond);                         \
    } while (false)

} // namespace act

#endif // ACT_COMMON_LOGGING_HH
