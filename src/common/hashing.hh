/**
 * @file
 * Deterministic 64-bit mixing and combining hashes.
 *
 * All randomised structures in the reproduction (dependence encoders,
 * address scramblers, workload generators) derive their values from
 * these mixers so that every run of every binary is bit-reproducible.
 */

#ifndef ACT_COMMON_HASHING_HH
#define ACT_COMMON_HASHING_HH

#include <cstdint>

namespace act
{

/**
 * SplitMix64 finaliser: a high-quality, invertible 64-bit mixer.
 *
 * @param x Value to scramble.
 * @return Scrambled value; mix64(a) == mix64(b) iff a == b.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Combine two 64-bit values into one hash. */
constexpr std::uint64_t
hashCombine(std::uint64_t seed, std::uint64_t value)
{
    return mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                         (seed >> 2)));
}

/** Hash three 64-bit values (e.g., store PC, load PC, label). */
constexpr std::uint64_t
hash3(std::uint64_t a, std::uint64_t b, std::uint64_t c)
{
    return hashCombine(hashCombine(mix64(a), b), c);
}

/** Map a 64-bit hash into the unit interval [0, 1). */
constexpr double
hashToUnit(std::uint64_t h)
{
    // Use the top 53 bits so the result is exactly representable.
    return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

} // namespace act

#endif // ACT_COMMON_HASHING_HH
