#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "common/logging.hh"

namespace act
{

void
OnlineStats::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
OnlineStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

void
OnlineStats::merge(const OnlineStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double n = n1 + n2;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    mean_ = (n1 * mean_ + n2 * other.mean_) / n;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

IntervalRate::IntervalRate(std::uint64_t interval_length)
    : interval_length_(interval_length)
{
    ACT_ASSERT(interval_length_ > 0);
}

bool
IntervalRate::record(bool hit)
{
    ++events_;
    ++total_events_;
    if (hit) {
        ++hits_;
        ++total_hits_;
    }
    if (events_ < interval_length_)
        return false;
    last_rate_ = static_cast<double>(hits_) /
                 static_cast<double>(events_);
    has_rate_ = true;
    events_ = 0;
    hits_ = 0;
    return true;
}

void
IntervalRate::resetInterval()
{
    events_ = 0;
    hits_ = 0;
}

void
Histogram::add(std::int64_t value, std::uint64_t weight)
{
    buckets_[value] += weight;
    total_ += weight;
}

std::int64_t
Histogram::percentile(double fraction) const
{
    if (buckets_.empty())
        return 0;
    fraction = std::clamp(fraction, 0.0, 1.0);
    const auto target = static_cast<std::uint64_t>(
        std::ceil(fraction * static_cast<double>(total_)));
    std::uint64_t seen = 0;
    for (const auto &[value, count] : buckets_) {
        seen += count;
        if (seen >= target)
            return value;
    }
    return buckets_.rbegin()->first;
}

std::string
Histogram::toString(std::size_t max_rows) const
{
    std::vector<std::pair<std::int64_t, std::uint64_t>> rows(
        buckets_.begin(), buckets_.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    if (rows.size() > max_rows)
        rows.resize(max_rows);
    std::string out;
    char line[64];
    for (const auto &[value, count] : rows) {
        std::snprintf(line, sizeof(line), "%8lld: %llu\n",
                      static_cast<long long>(value),
                      static_cast<unsigned long long>(count));
        out += line;
    }
    return out;
}

std::string
formatPercent(double v, int decimals)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, v * 100.0);
    return buf;
}

double
meanOf(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return std::accumulate(values.begin(), values.end(), 0.0) /
           static_cast<double>(values.size());
}

} // namespace act
