#include "common/rng.hh"

#include "common/logging.hh"

namespace act
{

namespace
{

constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // SplitMix64 expansion; guarantees a non-zero state.
    std::uint64_t s = seed;
    for (auto &word : state_) {
        s += 0x9e3779b97f4a7c15ULL;
        word = mix64(s);
    }
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0)
        state_[0] = 1;
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t
Rng::next(std::uint64_t bound)
{
    ACT_ASSERT(bound > 0);
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
        const std::uint64_t r = (*this)();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    ACT_ASSERT(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>((*this)());
    return lo + static_cast<std::int64_t>(next(span));
}

double
Rng::nextDouble()
{
    return hashToUnit((*this)());
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

double
Rng::gaussian(double mean, double stddev)
{
    // Irwin-Hall approximation: sum of 12 uniforms has variance 1.
    double acc = 0.0;
    for (int i = 0; i < 12; ++i)
        acc += nextDouble();
    return mean + stddev * (acc - 6.0);
}

Rng
Rng::fork(std::uint64_t stream_id)
{
    return Rng(hashCombine((*this)(), mix64(stream_id)));
}

} // namespace act
