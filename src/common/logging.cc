#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace act
{

namespace
{

LogLevel g_level = LogLevel::kNormal;

} // namespace

namespace logging_detail
{

void
emit(const char *tag, const std::string &message)
{
    std::fprintf(stderr, "%s: %s\n", tag, message.c_str());
}

void
panicImpl(const char *file, int line, const std::string &message)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", message.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const std::string &message)
{
    std::fprintf(stderr, "fatal: %s\n", message.c_str());
    std::exit(1);
}

LogLevel
currentLevel()
{
    return g_level;
}

} // namespace logging_detail

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

bool
parseLogLevel(const std::string &name, LogLevel *out)
{
    if (name == "quiet")
        *out = LogLevel::kQuiet;
    else if (name == "normal")
        *out = LogLevel::kNormal;
    else if (name == "debug")
        *out = LogLevel::kDebug;
    else
        return false;
    return true;
}

namespace
{

bool
needsQuoting(const std::string &value)
{
    if (value.empty())
        return true;
    for (const char c : value) {
        if (c == ' ' || c == '=' || c == '"' || c == '\\' || c == '\n' ||
            c == '\t')
            return true;
    }
    return false;
}

void
appendValue(std::string &line, const std::string &value)
{
    if (!needsQuoting(value)) {
        line += value;
        return;
    }
    line += '"';
    for (const char c : value) {
        switch (c) {
          case '"': line += "\\\""; break;
          case '\\': line += "\\\\"; break;
          case '\n': line += "\\n"; break;
          case '\t': line += "\\t"; break;
          default: line += c;
        }
    }
    line += '"';
}

} // namespace

std::string
formatLogEvent(const std::string &event,
               const std::vector<LogField> &fields)
{
    std::string line = event;
    for (const LogField &field : fields) {
        line += ' ';
        line += field.key;
        line += '=';
        appendValue(line, field.value);
    }
    return line;
}

void
logEvent(const std::string &event, const std::vector<LogField> &fields)
{
    if (g_level != LogLevel::kQuiet)
        logging_detail::emit("info", formatLogEvent(event, fields));
}

void
logWarnEvent(const std::string &event,
             const std::vector<LogField> &fields)
{
    logging_detail::emit("warn", formatLogEvent(event, fields));
}

void
inform(const std::string &message)
{
    if (g_level != LogLevel::kQuiet)
        logging_detail::emit("info", message);
}

void
warn(const std::string &message)
{
    logging_detail::emit("warn", message);
}

void
debugLog(const std::string &message)
{
    if (g_level == LogLevel::kDebug)
        logging_detail::emit("debug", message);
}

} // namespace act
