#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace act
{

namespace
{

LogLevel g_level = LogLevel::kNormal;

} // namespace

namespace logging_detail
{

void
emit(const char *tag, const std::string &message)
{
    std::fprintf(stderr, "%s: %s\n", tag, message.c_str());
}

void
panicImpl(const char *file, int line, const std::string &message)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", message.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const std::string &message)
{
    std::fprintf(stderr, "fatal: %s\n", message.c_str());
    std::exit(1);
}

LogLevel
currentLevel()
{
    return g_level;
}

} // namespace logging_detail

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

void
inform(const std::string &message)
{
    if (g_level != LogLevel::kQuiet)
        logging_detail::emit("info", message);
}

void
warn(const std::string &message)
{
    logging_detail::emit("warn", message);
}

void
debugLog(const std::string &message)
{
    if (g_level == LogLevel::kDebug)
        logging_detail::emit("debug", message);
}

} // namespace act
