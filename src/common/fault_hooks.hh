/**
 * @file
 * Fault-injection hook interface consumed by the ACT core and the
 * simulated memory system.
 *
 * The fault layer (src/faults) needs to perturb decisions deep inside
 * `act_act` and `act_sim` — drop a piggybacked last-writer record, lose
 * an Input Generator push, swallow a Debug Buffer log — but those
 * libraries must not link against the injector. This header inverts the
 * dependency: the core layers consult an abstract FaultHooks pointer
 * carried in their configs (null = no faults, the production default),
 * and `src/faults` provides the one concrete implementation.
 *
 * Dormancy contract: every call site guards on the pointer being
 * non-null, so a fault-free run takes exactly one predicted-not-taken
 * branch per site and produces bit-identical results to a build without
 * this header.
 */

#ifndef ACT_COMMON_FAULT_HOOKS_HH
#define ACT_COMMON_FAULT_HOOKS_HH

namespace act
{

/** What to do to one piggybacked last-writer transfer. */
enum class WriterFaultAction
{
    kNone,  //!< Deliver the metadata untouched.
    kDrop,  //!< Lose it: the load sees an unknown writer.
    kStale, //!< Deliver metadata pointing at the wrong writer PC.
};

/**
 * Injection decision points the core layers expose. Each method is
 * called once per potential fault site in deterministic (program)
 * order; implementations decide from their own seeded state, so a run
 * with the same plan replays the same injections.
 */
class FaultHooks
{
  public:
    virtual ~FaultHooks() = default;

    /**
     * A load is about to receive piggybacked last-writer metadata from
     * a coherence transfer.
     */
    virtual WriterFaultAction onWriterTransfer() = 0;

    /**
     * A RAW dependence is about to enter the Input Generator Buffer.
     * @return true to drop it before it is buffered.
     */
    virtual bool dropInputDependence() = 0;

    /**
     * A flagged sequence is about to be logged into the Debug Buffer.
     * @return true to drop the log entry.
     */
    virtual bool dropDebugLog() = 0;
};

} // namespace act

#endif // ACT_COMMON_FAULT_HOOKS_HH
