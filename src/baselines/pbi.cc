#include "baselines/pbi.hh"

#include <algorithm>

#include "common/hashing.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace act
{

const char *
pbiEventName(PbiEvent event)
{
    switch (event) {
      case PbiEvent::kStateInvalid: return "state-I";
      case PbiEvent::kStateShared: return "state-S";
      case PbiEvent::kStateExclusive: return "state-E";
      case PbiEvent::kStateModified: return "state-M";
      case PbiEvent::kCacheMiss: return "miss";
      case PbiEvent::kCacheHit: return "hit";
      case PbiEvent::kBranchTaken: return "taken";
      case PbiEvent::kBranchNotTaken: return "not-taken";
    }
    return "?";
}

PbiDiagnoser::PbiDiagnoser(const PbiConfig &config)
    : config_(config)
{
}

PbiDiagnoser::PredicateKey
PbiDiagnoser::key(Pc pc, PbiEvent event)
{
    return hashCombine(mix64(pc), static_cast<std::uint64_t>(event));
}

std::unordered_map<PbiDiagnoser::PredicateKey, Pc>
PbiDiagnoser::extract(const Trace &trace)
{
    MemorySystem memory(config_.mem);
    Rng rng(hashCombine(mix64(config_.seed), trace.size()));
    std::unordered_map<PredicateKey, Pc> predicates;

    auto note = [&](Pc pc, PbiEvent event) {
        predicates.emplace(key(pc, event), pc);
    };

    for (const auto &event : trace.events()) {
        if (event.kind == EventKind::kBranch) {
            if (config_.sample_rate < 1.0 &&
                !rng.chance(config_.sample_rate)) {
                continue;
            }
            note(event.pc, event.taken ? PbiEvent::kBranchTaken
                                       : PbiEvent::kBranchNotTaken);
            continue;
        }
        if (!event.isMemory())
            continue;
        const CoreId core = event.tid % config_.mem.cores;
        const MemAccess access = memory.access(core, event);
        if (event.kind != EventKind::kLoad)
            continue;
        if (config_.sample_rate < 1.0 && !rng.chance(config_.sample_rate))
            continue;
        switch (access.prior_state) {
          case Mesi::kInvalid:
            note(event.pc, PbiEvent::kStateInvalid);
            break;
          case Mesi::kShared:
            note(event.pc, PbiEvent::kStateShared);
            break;
          case Mesi::kExclusive:
            note(event.pc, PbiEvent::kStateExclusive);
            break;
          case Mesi::kModified:
            note(event.pc, PbiEvent::kStateModified);
            break;
        }
        // PBI samples L1 cache events (Arulraj et al.): hit/miss at
        // the first level, not the whole hierarchy.
        note(event.pc, access.l1_hit ? PbiEvent::kCacheHit
                                     : PbiEvent::kCacheMiss);
    }
    return predicates;
}

void
PbiDiagnoser::addCorrectTrace(const Trace &trace)
{
    for (const auto &[k, pc] : extract(trace))
        ++correct_counts_[k];
    ++correct_runs_;
}

void
PbiDiagnoser::addFailureTrace(const Trace &trace)
{
    ACT_ASSERT(!have_failure_);
    failure_predicates_ = extract(trace);
    have_failure_ = true;
}

PbiResult
PbiDiagnoser::diagnose(const std::vector<Pc> &root_pcs) const
{
    ACT_ASSERT(have_failure_);
    PbiResult result;
    result.total_predicates = failure_predicates_.size();

    // Score: how strongly does observing the predicate predict
    // failure? With one failing run, Failure(P) = 1 / (1 + S(P)).
    struct Scored
    {
        PredicateKey k;
        Pc pc;
        double score;
    };
    std::vector<Scored> scored;
    scored.reserve(failure_predicates_.size());
    for (const auto &[k, pc] : failure_predicates_) {
        const auto it = correct_counts_.find(k);
        const double successes =
            it == correct_counts_.end() ? 0.0 : it->second;
        scored.push_back(Scored{k, pc, 1.0 / (1.0 + successes)});
    }
    std::sort(scored.begin(), scored.end(),
              [](const Scored &a, const Scored &b) {
                  if (a.score != b.score)
                      return a.score > b.score;
                  return mix64(a.k) < mix64(b.k);
              });

    result.predictive = static_cast<std::size_t>(std::count_if(
        scored.begin(), scored.end(),
        [](const Scored &s) { return s.score >= 1.0; }));

    for (std::size_t i = 0; i < scored.size(); ++i) {
        const bool is_root =
            std::find(root_pcs.begin(), root_pcs.end(), scored[i].pc) !=
            root_pcs.end();
        if (is_root) {
            // The predicate only diagnoses the failure when it is
            // failure-predictive: a predicate also seen in correct
            // runs carries no signal (PBI "misses" the bug).
            if (scored[i].score >= 1.0) {
                result.rank = i + 1;
            } else {
                result.missed = true;
            }
            return result;
        }
    }
    result.missed = true;
    return result;
}

} // namespace act
