#include "baselines/aviso.hh"

#include <algorithm>

#include "common/hashing.hh"

namespace act
{

AvisoDiagnoser::AvisoDiagnoser(const AvisoConfig &config)
    : config_(config)
{
}

namespace
{

/**
 * Tightest distance bucket of an ordered pair. Aviso cares about *how
 * close* two events ran, not merely that both happened: the racy
 * schedule packs them together while correct schedules keep work in
 * between. Buckets are cumulative ("ran within <= 6" implies "within
 * <= 20"), which keeps a pair's bucket membership stable across runs.
 */
std::uint64_t
tightestBucket(std::size_t distance)
{
    if (distance <= 6)
        return 0;
    if (distance <= 20)
        return 1;
    return 2;
}

} // namespace

AvisoDiagnoser::PairKey
AvisoDiagnoser::key(Pc first, Pc second)
{
    return hashCombine(mix64(first), mix64(second));
}

std::unordered_map<AvisoDiagnoser::PairKey, std::uint8_t>
AvisoDiagnoser::extractPairs(const Trace &trace) const
{
    // Pass 1: find addresses touched by more than one thread — the
    // shared-memory events Aviso watches (plus sync operations).
    std::unordered_map<Addr, ThreadId> first_toucher;
    std::unordered_set<Addr> shared;
    for (const auto &event : trace.events()) {
        if (!event.isMemory())
            continue;
        const Addr line = event.addr / 64;
        const auto [it, inserted] =
            first_toucher.try_emplace(line, event.tid);
        if (!inserted && it->second != event.tid)
            shared.insert(line);
    }

    // Pass 2: the filtered event stream.
    struct Ev
    {
        Pc pc;
        ThreadId tid;
    };
    std::vector<Ev> events;
    for (const auto &event : trace.events()) {
        const bool sync = event.kind == EventKind::kLock ||
                          event.kind == EventKind::kUnlock;
        const bool shared_mem =
            event.isMemory() && shared.count(event.addr / 64) != 0;
        if (sync || shared_mem)
            events.push_back(Ev{event.pc, event.tid});
    }

    // Pass 3: cross-thread ordered pairs within the distance window,
    // tagged with how tightly they ran (cumulative buckets).
    std::unordered_map<PairKey, std::uint8_t> pairs;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const std::size_t limit =
            std::min(events.size(), i + 1 + config_.pair_distance);
        for (std::size_t j = i + 1; j < limit; ++j) {
            if (events[i].tid == events[j].tid)
                continue;
            const std::uint64_t tightest = tightestBucket(j - i);
            for (std::uint64_t bucket = tightest; bucket <= 2; ++bucket) {
                const PairKey k = hashCombine(
                    key(events[i].pc, events[j].pc), bucket);
                const auto [it, inserted] = pairs.try_emplace(
                    k, static_cast<std::uint8_t>(bucket));
                if (!inserted && bucket < it->second)
                    it->second = static_cast<std::uint8_t>(bucket);
            }
        }
    }
    return pairs;
}

void
AvisoDiagnoser::addCorrectTrace(const Trace &trace)
{
    if (trace.threadCount() > 1)
        saw_multithreaded_ = true;
    for (const auto &[k, bucket] : extractPairs(trace))
        ++correct_counts_[k];
    ++correct_runs_;
}

void
AvisoDiagnoser::addFailureTrace(const Trace &trace)
{
    if (trace.threadCount() > 1)
        saw_multithreaded_ = true;
    for (const auto &[k, bucket] : extractPairs(trace)) {
        ++failure_counts_[k];
        const auto [it, inserted] = failure_buckets_.try_emplace(k, bucket);
        if (!inserted && bucket < it->second)
            it->second = bucket;
    }
    ++failure_runs_;
}

AvisoResult
AvisoDiagnoser::diagnose(Pc first_pc, Pc second_pc) const
{
    AvisoResult result;
    result.failures_used = failure_runs_;
    if (!saw_multithreaded_) {
        // Sequential program: no cross-thread events, no constraints.
        result.applicable = false;
        return result;
    }

    // Candidate constraints: pairs present in *every* failing run
    // observed so far (the recurring schedule pattern Aviso looks
    // for) and never seen in a correct run. The intersection shrinks
    // as failures accumulate — this is why Aviso needs the bug to
    // recur before the real constraint stands out.
    struct Scored
    {
        PairKey k;
        double score;
        std::uint8_t bucket;
    };
    std::vector<Scored> candidates;
    for (const auto &[k, fails] : failure_counts_) {
        if (fails < config_.min_failures || fails < failure_runs_)
            continue;
        if (correct_counts_.count(k) != 0)
            continue;
        const auto bucket_it = failure_buckets_.find(k);
        const std::uint8_t bucket =
            bucket_it == failure_buckets_.end() ? 2 : bucket_it->second;
        candidates.push_back(Scored{k, static_cast<double>(fails), bucket});
    }
    // Tighter pairs (smaller bucket) are stronger schedule evidence.
    std::sort(candidates.begin(), candidates.end(),
              [](const Scored &a, const Scored &b) {
                  if (a.score != b.score)
                      return a.score > b.score;
                  if (a.bucket != b.bucket)
                      return a.bucket < b.bucket;
                  return mix64(a.k) < mix64(b.k);
              });
    result.constraints = candidates.size();

    // The root pair may surface in any distance bucket; report the
    // best-ranked occurrence.
    std::unordered_set<PairKey> root_keys;
    for (std::uint64_t bucket = 0; bucket <= 2; ++bucket)
        root_keys.insert(
            hashCombine(key(first_pc, second_pc), bucket));
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (root_keys.count(candidates[i].k) != 0) {
            result.rank = i + 1;
            result.found = i < config_.report_rank_limit;
            return result;
        }
    }
    return result;
}

} // namespace act
