/**
 * @file
 * PBI-style sampling/statistical baseline (Arulraj et al. [10]).
 *
 * PBI collects hardware-event predicates — the cache-coherence state a
 * load observes and branch outcomes — from successful and failing
 * runs, and ranks (instruction, event) predicates by how strongly they
 * correlate with failure. Following Section VI-C, this reproduction
 * implements the "extreme" variant the paper compares against: only 15
 * correct runs and a single failure run are available, and every
 * instruction is sampled (sampling rate 1) to compensate.
 *
 * A predicate is *predictive* when it was observed in the failing run
 * but never in a correct run. With so few runs, benign nondeterminism
 * (coherence states that vary with the interleaving, rarely taken
 * paths) creates phantom predictive predicates that compete with the
 * real one — the effect behind PBI's weak ranks in Table V.
 */

#ifndef ACT_BASELINES_PBI_HH
#define ACT_BASELINES_PBI_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/memsys.hh"
#include "trace/trace.hh"

namespace act
{

/** PBI knobs. */
struct PbiConfig
{
    MemSystemConfig mem;     //!< Cache model producing the events.
    double sample_rate = 1.0; //!< Fraction of instructions sampled.
    std::uint64_t seed = 0xb1;
};

/** The kinds of events PBI predicates record. */
enum class PbiEvent : std::uint8_t
{
    kStateInvalid,   //!< Load saw the line Invalid (miss).
    kStateShared,
    kStateExclusive,
    kStateModified,
    kCacheMiss,      //!< Load missed the local hierarchy.
    kCacheHit,
    kBranchTaken,
    kBranchNotTaken
};

const char *pbiEventName(PbiEvent event);

/** Diagnosis outcome. */
struct PbiResult
{
    std::size_t total_predicates = 0; //!< Observed in the failing run.
    std::size_t predictive = 0;       //!< Failure-only predicates.
    std::optional<std::size_t> rank;  //!< Root predicate rank (1-based).
    bool missed = false;              //!< No predictive root predicate.
};

/**
 * The PBI diagnoser: feed correct runs and one failing run, then ask
 * for the rank of the buggy instructions.
 */
class PbiDiagnoser
{
  public:
    explicit PbiDiagnoser(const PbiConfig &config);

    /** Record the predicate set of a successful run. */
    void addCorrectTrace(const Trace &trace);

    /** Record the predicate set of the failing run. */
    void addFailureTrace(const Trace &trace);

    /**
     * Rank predicates and locate the best one at a root-cause PC.
     *
     * @param root_pcs Instructions implicated in the bug (the buggy
     *                 load and any branch at the failure site).
     */
    PbiResult diagnose(const std::vector<Pc> &root_pcs) const;

  private:
    using PredicateKey = std::uint64_t;

    static PredicateKey key(Pc pc, PbiEvent event);

    /** Extract one run's predicate set via the cache model. */
    std::unordered_map<PredicateKey, Pc> extract(const Trace &trace);

    PbiConfig config_;
    std::unordered_map<PredicateKey, std::uint32_t> correct_counts_;
    std::unordered_map<PredicateKey, Pc> failure_predicates_;
    std::uint32_t correct_runs_ = 0;
    bool have_failure_ = false;
};

} // namespace act

#endif // ACT_BASELINES_PBI_HH
