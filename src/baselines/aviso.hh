/**
 * @file
 * Aviso-style constraint-learning baseline (Lucia et al. [12]).
 *
 * Aviso observes synchronisation and shared-memory events and learns
 * *failure-avoiding constraints*: ordered pairs of events from
 * different threads whose proximity correlates with failure. It needs
 * the failure to recur — a pair only becomes a believable constraint
 * once it has been implicated by multiple failing runs — and it is
 * inherently blind to single-threaded bugs (no cross-thread pairs
 * exist). Both properties drive its Table V columns.
 */

#ifndef ACT_BASELINES_AVISO_HH
#define ACT_BASELINES_AVISO_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "trace/trace.hh"

namespace act
{

/** Aviso knobs. */
struct AvisoConfig
{
    /** Maximum event distance for a pair to count as "ordered". */
    std::size_t pair_distance = 60;

    /** Failing runs a pair must recur in before it is a constraint. */
    std::uint32_t min_failures = 2;

    /** Rank cutoff for "found the bug". */
    std::size_t report_rank_limit = 25;
};

/** Diagnosis outcome after feeding some number of failing runs. */
struct AvisoResult
{
    bool applicable = true;            //!< False for sequential code.
    bool found = false;                //!< Root pair became a constraint.
    std::optional<std::size_t> rank;   //!< Root constraint rank.
    std::uint32_t failures_used = 0;   //!< Failing runs consumed.
    std::size_t constraints = 0;       //!< Candidate constraints.
};

/**
 * The Aviso diagnoser: feed correct runs, then failing runs one at a
 * time, querying after each whether the root-cause pair surfaced.
 */
class AvisoDiagnoser
{
  public:
    explicit AvisoDiagnoser(const AvisoConfig &config);

    /** Record a successful run (down-weights its pairs). */
    void addCorrectTrace(const Trace &trace);

    /** Record one failing run. */
    void addFailureTrace(const Trace &trace);

    std::uint32_t failureRuns() const { return failure_runs_; }

    /**
     * Current diagnosis for the root pair (store pc, load pc).
     *
     * @param first_pc  The earlier event of the buggy ordering.
     * @param second_pc The later event.
     */
    AvisoResult diagnose(Pc first_pc, Pc second_pc) const;

  private:
    using PairKey = std::uint64_t;

    static PairKey key(Pc first, Pc second);

    /**
     * Cross-thread event pairs within pair_distance of each other,
     * mapped to their tightest distance bucket.
     */
    std::unordered_map<PairKey, std::uint8_t> extractPairs(
        const Trace &trace) const;

    AvisoConfig config_;
    std::unordered_map<PairKey, std::uint32_t> failure_counts_;
    std::unordered_map<PairKey, std::uint8_t> failure_buckets_;
    std::unordered_map<PairKey, std::uint32_t> correct_counts_;
    std::uint32_t failure_runs_ = 0;
    std::uint32_t correct_runs_ = 0;
    bool saw_multithreaded_ = false;
};

} // namespace act

#endif // ACT_BASELINES_AVISO_HH
