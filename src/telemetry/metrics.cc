#include "telemetry/metrics.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/logging.hh"

namespace act::telemetry
{

namespace detail
{

thread_local TlsShardCache tls_shard_cache;

} // namespace detail

namespace
{

/** Distinguishes registry instances that reuse a freed address. */
std::atomic<std::uint64_t> g_registry_generation{1};

} // namespace

MetricsRegistry::MetricsRegistry()
    : generation_(g_registry_generation.fetch_add(1)),
      epoch_(std::chrono::steady_clock::now())
{}

MetricsRegistry &
MetricsRegistry::global()
{
    // Leaked on purpose: worker threads may still hold shard pointers
    // during static destruction.
    static MetricsRegistry *const instance = new MetricsRegistry();
    return *instance;
}

MetricsRegistry::Shard *
MetricsRegistry::shardSlow()
{
    std::lock_guard<std::mutex> lock(mutex_);
    shards_.push_back(std::make_unique<Shard>());
    Shard *shard = shards_.back().get();
    detail::tls_shard_cache = {this, generation_, shard};
    return shard;
}

std::uint32_t
MetricsRegistry::registerScalar(const std::string &name,
                                Stability stability, bool is_gauge)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = scalar_ids_.find(name);
    if (it != scalar_ids_.end()) {
        const ScalarInfo &info = scalars_[it->second];
        if (info.is_gauge != is_gauge || info.stability != stability) {
            ACT_FATAL("telemetry: metric '"
                      << name << "' re-registered with a different "
                      << "kind or stability");
        }
        return it->second;
    }
    if (scalars_.size() >= kMaxScalarMetrics)
        ACT_FATAL("telemetry: scalar metric capacity ("
                  << kMaxScalarMetrics << ") exhausted at '" << name
                  << "'");
    const auto id = static_cast<std::uint32_t>(scalars_.size());
    scalars_.push_back(ScalarInfo{name, stability, is_gauge});
    scalar_ids_.emplace(name, id);
    return id;
}

Counter
MetricsRegistry::counter(const std::string &name, Stability stability)
{
    return Counter(this, registerScalar(name, stability, false));
}

Gauge
MetricsRegistry::gauge(const std::string &name)
{
    // Gauges track levels (queue depths, in-flight work): inherently
    // scheduling dependent, so they are volatile by construction.
    return Gauge(this, registerScalar(name, Stability::kVolatile, true));
}

LatencyHistogram
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = hist_ids_.find(name);
    if (it != hist_ids_.end())
        return LatencyHistogram(this, it->second);
    if (hist_names_.size() >= kMaxHistograms)
        ACT_FATAL("telemetry: histogram capacity (" << kMaxHistograms
                                                    << ") exhausted at '"
                                                    << name << "'");
    const auto id = static_cast<std::uint32_t>(hist_names_.size());
    hist_names_.push_back(name);
    hist_ids_.emplace(name, id);
    return LatencyHistogram(this, id);
}

Snapshot
MetricsRegistry::snapshot() const
{
    Snapshot snap;
    std::lock_guard<std::mutex> lock(mutex_);
    snap.uptime_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - epoch_)
                         .count();
    for (std::uint32_t id = 0; id < scalars_.size(); ++id) {
        std::uint64_t total = 0;
        for (const auto &shard : shards_)
            total += shard->scalars[id].load(std::memory_order_relaxed);
        const ScalarInfo &info = scalars_[id];
        if (info.is_gauge)
            snap.gauges[info.name] = static_cast<std::int64_t>(total);
        else if (info.stability == Stability::kStable)
            snap.counters[info.name] = total;
        else
            snap.volatile_counters[info.name] = total;
    }
    for (std::uint32_t id = 0; id < hist_names_.size(); ++id) {
        HistogramSnapshot hist;
        std::array<std::uint64_t, kHistogramBuckets> buckets{};
        for (const auto &shard : shards_) {
            const HistShard &hs = shard->hists[id];
            for (std::size_t b = 0; b < kHistogramBuckets; ++b)
                buckets[b] +=
                    hs.buckets[b].load(std::memory_order_relaxed);
            hist.sum += hs.sum.load(std::memory_order_relaxed);
        }
        for (std::uint32_t b = 0; b < kHistogramBuckets; ++b) {
            if (buckets[b] != 0) {
                hist.buckets.emplace_back(b, buckets[b]);
                hist.count += buckets[b];
            }
        }
        snap.histograms[hist_names_[id]] = std::move(hist);
    }
    return snap;
}

std::uint64_t
Snapshot::counterValue(const std::string &name) const
{
    const auto stable = counters.find(name);
    if (stable != counters.end())
        return stable->second;
    const auto vol = volatile_counters.find(name);
    return vol != volatile_counters.end() ? vol->second : 0;
}

std::int64_t
Snapshot::gaugeValue(const std::string &name) const
{
    const auto it = gauges.find(name);
    return it != gauges.end() ? it->second : 0;
}

Snapshot
diffSnapshots(const Snapshot &newer, const Snapshot &older)
{
    Snapshot diff = newer;
    const auto subtract = [](std::map<std::string, std::uint64_t> &into,
                             const std::map<std::string, std::uint64_t>
                                 &minus) {
        for (auto &[name, value] : into) {
            const auto it = minus.find(name);
            if (it != minus.end())
                value = value >= it->second ? value - it->second : 0;
        }
    };
    subtract(diff.counters, older.counters);
    subtract(diff.volatile_counters, older.volatile_counters);
    for (auto &[name, hist] : diff.histograms) {
        const auto it = older.histograms.find(name);
        if (it == older.histograms.end())
            continue;
        const HistogramSnapshot &old_hist = it->second;
        hist.sum = hist.sum >= old_hist.sum ? hist.sum - old_hist.sum : 0;
        hist.count = 0;
        std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;
        for (auto &[bucket, count] : hist.buckets) {
            std::uint64_t base = 0;
            for (const auto &[old_bucket, old_count] : old_hist.buckets) {
                if (old_bucket == bucket)
                    base = old_count;
            }
            const std::uint64_t delta = count >= base ? count - base : 0;
            if (delta != 0) {
                buckets.emplace_back(bucket, delta);
                hist.count += delta;
            }
        }
        hist.buckets = std::move(buckets);
    }
    return diff;
}

namespace
{

/** Shortest decimal rendering that round-trips (mirrors report.cc). */
std::string
renderDouble(double v)
{
    char buf[64];
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        v > -1e15 && v < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    for (int precision = 1; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

template <typename Map, typename Render>
void
writeSection(std::ostringstream &out, const char *name, const Map &map,
             Render &&render, bool trailing_comma)
{
    out << "  \"" << name << "\": {";
    bool first = true;
    for (const auto &[key, value] : map) {
        out << (first ? "\n" : ",\n") << "    \"" << jsonEscape(key)
            << "\": " << render(value);
        first = false;
    }
    out << (first ? "" : "\n  ") << "}" << (trailing_comma ? "," : "")
        << "\n";
}

} // namespace

std::string
snapshotJson(const Snapshot &snapshot)
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"schema\": \"act-metrics-v1\",\n";
    out << "  \"uptime_ms\": " << renderDouble(snapshot.uptime_ms)
        << ",\n";
    const auto number = [](std::uint64_t v) { return std::to_string(v); };
    const auto signed_number = [](std::int64_t v) {
        return std::to_string(v);
    };
    writeSection(out, "counters", snapshot.counters, number, true);
    writeSection(out, "volatile", snapshot.volatile_counters, number,
                 true);
    writeSection(out, "gauges", snapshot.gauges, signed_number, true);
    const auto hist = [](const HistogramSnapshot &h) {
        std::ostringstream cell;
        cell << "{\"count\": " << h.count << ", \"sum\": " << h.sum
             << ", \"buckets\": [";
        for (std::size_t i = 0; i < h.buckets.size(); ++i) {
            cell << (i != 0 ? ", " : "") << "[" << h.buckets[i].first
                 << ", " << h.buckets[i].second << "]";
        }
        cell << "]}";
        return cell.str();
    };
    writeSection(out, "histograms", snapshot.histograms, hist, false);
    out << "}\n";
    return out.str();
}

std::string
stableCountersText(const Snapshot &snapshot)
{
    std::ostringstream out;
    for (const auto &[name, value] : snapshot.counters)
        out << name << " " << value << "\n";
    return out.str();
}

} // namespace act::telemetry
