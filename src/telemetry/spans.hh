/**
 * @file
 * Span/phase tracer with Chrome trace_event export.
 *
 * Records named timed scopes (campaign jobs, trace decodes, diagnosis
 * phases, cache lookups) and instant markers (mode flips, retries,
 * watchdog fires, fault injections) into per-thread logs, then exports
 * the whole run as Chrome `trace_event` JSON — the format
 * `chrome://tracing` and Perfetto load directly, so a campaign's
 * wall-clock breakdown becomes a flamechart instead of folklore.
 *
 * Dormancy: disabled by default; every recording call is one relaxed
 * load + branch when disabled. Spans are coarse (jobs, phases, file
 * I/O), never per-event — the simulate→track→infer hot loops contain
 * no tracer calls at all.
 *
 * Threading: each OS thread appends to its own log under a per-log
 * mutex that only export contends; timestamps come from one steady
 * clock, so per-thread event times are monotone (exported sorted, a
 * property `actstat validate` checks).
 */

#ifndef ACT_TELEMETRY_SPANS_HH
#define ACT_TELEMETRY_SPANS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace act::telemetry
{

/** One key/value annotation on a span or instant event. */
struct SpanArg
{
    std::string key;
    std::string text;          //!< Used when is_text.
    std::uint64_t number = 0;  //!< Used otherwise.
    bool is_text = false;
};

inline SpanArg
arg(std::string key, std::string value)
{
    return SpanArg{std::move(key), std::move(value), 0, true};
}

inline SpanArg
arg(std::string key, std::uint64_t value)
{
    return SpanArg{std::move(key), {}, value, false};
}

class SpanTracer;

namespace span_detail
{

struct TlsLogCache
{
    const void *tracer = nullptr;
    std::uint64_t generation = 0;
    void *log = nullptr;
};

extern thread_local TlsLogCache tls_log_cache;

} // namespace span_detail

/** The tracer. One process-wide instance via global(). */
class SpanTracer
{
  public:
    SpanTracer();
    ~SpanTracer() = default;

    SpanTracer(const SpanTracer &) = delete;
    SpanTracer &operator=(const SpanTracer &) = delete;

    /** The process-wide tracer (never destroyed). */
    static SpanTracer &global();

    void setEnabled(bool enabled)
    {
        enabled_.store(enabled, std::memory_order_relaxed);
    }

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Microseconds since tracer construction (steady clock). */
    std::uint64_t nowUs() const;

    /** Label the calling thread in the exported trace. */
    void nameThread(const std::string &name);

    /** Record a completed span ("ph":"X"). No-op while disabled. */
    void complete(std::string name, const char *category,
                  std::uint64_t ts_us, std::uint64_t dur_us,
                  std::vector<SpanArg> args = {});

    /** Record an instant marker ("ph":"i"). No-op while disabled. */
    void instant(std::string name, const char *category,
                 std::vector<SpanArg> args = {});

    /** Events recorded so far (all threads). */
    std::size_t eventCount() const;

    /**
     * The whole run as Chrome trace_event JSON. Per-thread events are
     * sorted by timestamp, so `ts` is monotone non-decreasing within
     * each `tid`. Call after worker threads have quiesced.
     */
    std::string chromeJson() const;

    /** Write chromeJson() to @p path. @return false on I/O failure. */
    bool exportTo(const std::string &path) const;

    /** Drop all recorded events (test support). */
    void clear();

  private:
    struct Event
    {
        std::string name;
        const char *category = "";
        char phase = 'X';
        std::uint64_t ts = 0;
        std::uint64_t dur = 0;
        std::vector<SpanArg> args;
    };

    struct ThreadLog
    {
        mutable std::mutex mutex;
        std::uint32_t tid = 0;
        std::string name;
        std::vector<Event> events;
    };

    ThreadLog *log();
    ThreadLog *logSlow();

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<ThreadLog>> logs_;
    std::atomic<bool> enabled_{false};
    std::uint64_t generation_;
    std::chrono::steady_clock::time_point epoch_;
};

/**
 * RAII timed scope: records a complete event covering its lifetime.
 * Construction against a disabled tracer costs one relaxed load.
 */
class ScopedSpan
{
  public:
    /** Span on the global tracer. */
    ScopedSpan(std::string name, const char *category);

    /** Span on a specific tracer (tests). */
    ScopedSpan(SpanTracer &tracer, std::string name, const char *category);

    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** Annotate the span (shows under "args" in the viewer). */
    void annotate(SpanArg value);

    bool active() const { return tracer_ != nullptr; }

  private:
    SpanTracer *tracer_ = nullptr; //!< Null when the tracer is dormant.
    std::string name_;
    const char *category_ = "";
    std::uint64_t start_ = 0;
    std::vector<SpanArg> args_;
};

} // namespace act::telemetry

#endif // ACT_TELEMETRY_SPANS_HH
