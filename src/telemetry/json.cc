#include "telemetry/json.hh"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace act::telemetry
{

namespace
{

constexpr int kMaxDepth = 64;

class Parser
{
  public:
    explicit Parser(const std::string &input) : input_(input) {}

    std::unique_ptr<JsonValue> parse(std::string *error)
    {
        auto root = std::make_unique<JsonValue>();
        if (!parseValue(*root, 0)) {
            if (error != nullptr)
                *error = error_;
            return nullptr;
        }
        skipSpace();
        if (pos_ != input_.size()) {
            if (error != nullptr)
                *error = at("trailing characters after JSON value");
            return nullptr;
        }
        return root;
    }

  private:
    std::string at(const std::string &what)
    {
        std::ostringstream out;
        out << what << " at offset " << pos_;
        return out.str();
    }

    bool fail(const std::string &what)
    {
        if (error_.empty())
            error_ = at(what);
        return false;
    }

    void skipSpace()
    {
        while (pos_ < input_.size() &&
               (input_[pos_] == ' ' || input_[pos_] == '\t' ||
                input_[pos_] == '\n' || input_[pos_] == '\r'))
            ++pos_;
    }

    bool consume(char c)
    {
        skipSpace();
        if (pos_ < input_.size() && input_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (input_.compare(pos_, n, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos_ += n;
        return true;
    }

    bool parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipSpace();
        if (pos_ >= input_.size())
            return fail("unexpected end of input");
        switch (input_[pos_]) {
          case '{': return parseObject(out, depth);
          case '[': return parseArray(out, depth);
          case '"':
            out.type = JsonValue::Type::kString;
            return parseString(out.text);
          case 't':
            out.type = JsonValue::Type::kBool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.type = JsonValue::Type::kBool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.type = JsonValue::Type::kNull;
            return literal("null");
          default: return parseNumber(out);
        }
    }

    bool parseObject(JsonValue &out, int depth)
    {
        out.type = JsonValue::Type::kObject;
        ++pos_; // '{'
        if (consume('}'))
            return true;
        while (true) {
            skipSpace();
            if (pos_ >= input_.size() || input_[pos_] != '"')
                return fail("expected object key string");
            std::string key;
            if (!parseString(key))
                return false;
            if (!consume(':'))
                return fail("expected ':' after object key");
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.object.emplace_back(std::move(key), std::move(value));
            if (consume(','))
                continue;
            if (consume('}'))
                return true;
            return fail("expected ',' or '}' in object");
        }
    }

    bool parseArray(JsonValue &out, int depth)
    {
        out.type = JsonValue::Type::kArray;
        ++pos_; // '['
        if (consume(']'))
            return true;
        while (true) {
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.array.push_back(std::move(value));
            if (consume(','))
                continue;
            if (consume(']'))
                return true;
            return fail("expected ',' or ']' in array");
        }
    }

    bool parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < input_.size()) {
            const char c = input_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= input_.size())
                break;
            const char esc = input_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > input_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = input_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad hex digit in \\u escape");
                }
                // UTF-8 encode (surrogate pairs are passed through as
                // two 3-byte sequences — good enough for a validator).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default: return fail("bad escape character in string");
            }
        }
        return fail("unterminated string");
    }

    bool parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < input_.size() && input_[pos_] == '-')
            ++pos_;
        const auto digits = [this] {
            std::size_t n = 0;
            while (pos_ < input_.size() &&
                   std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
                ++pos_;
                ++n;
            }
            return n;
        };
        if (digits() == 0)
            return fail("expected digits in number");
        if (pos_ < input_.size() && input_[pos_] == '.') {
            ++pos_;
            if (digits() == 0)
                return fail("expected digits after '.'");
        }
        if (pos_ < input_.size() &&
            (input_[pos_] == 'e' || input_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < input_.size() &&
                (input_[pos_] == '+' || input_[pos_] == '-'))
                ++pos_;
            if (digits() == 0)
                return fail("expected digits in exponent");
        }
        out.type = JsonValue::Type::kNumber;
        out.number =
            std::strtod(input_.substr(start, pos_ - start).c_str(),
                        nullptr);
        return true;
    }

    const std::string &input_;
    std::size_t pos_ = 0;
    std::string error_;
};

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (type != Type::kObject)
        return nullptr;
    for (const auto &[name, value] : object) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

std::uint64_t
JsonValue::asU64() const
{
    if (type != Type::kNumber || number < 0)
        return 0;
    return static_cast<std::uint64_t>(number);
}

std::unique_ptr<JsonValue>
parseJson(const std::string &input, std::string *error)
{
    Parser parser(input);
    return parser.parse(error);
}

} // namespace act::telemetry
