/**
 * @file
 * Minimal JSON value-tree parser.
 *
 * Exists so `actstat` and the telemetry tests can consume metrics and
 * Chrome-trace JSON without an external dependency. Covers the full
 * grammar (objects, arrays, strings with escapes incl. \uXXXX, numbers,
 * booleans, null) with a recursion-depth limit; it is a validator-grade
 * reader, not a streaming parser — fine for snapshot-sized inputs.
 */

#ifndef ACT_TELEMETRY_JSON_HH
#define ACT_TELEMETRY_JSON_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace act::telemetry
{

/** One parsed JSON value. Object keys keep their document order. */
struct JsonValue
{
    enum class Type
    {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject
    };

    Type type = Type::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return type == Type::kNull; }
    bool isObject() const { return type == Type::kObject; }
    bool isArray() const { return type == Type::kArray; }
    bool isString() const { return type == Type::kString; }
    bool isNumber() const { return type == Type::kNumber; }

    /** Member of an object by key; nullptr if absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** number as u64 (0 for non-numbers / negatives). */
    std::uint64_t asU64() const;
};

/**
 * Parse @p input. @return the root value, or nullptr with a
 * human-readable message in @p error on malformed input (including
 * trailing garbage after the root value).
 */
std::unique_ptr<JsonValue> parseJson(const std::string &input,
                                     std::string *error = nullptr);

} // namespace act::telemetry

#endif // ACT_TELEMETRY_JSON_HH
