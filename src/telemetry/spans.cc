#include "telemetry/spans.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace act::telemetry
{

namespace span_detail
{

thread_local TlsLogCache tls_log_cache;

} // namespace span_detail

namespace
{

std::atomic<std::uint64_t> g_tracer_generation{1};

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeArgs(std::ostringstream &out, const std::vector<SpanArg> &args)
{
    out << "\"args\": {";
    for (std::size_t i = 0; i < args.size(); ++i) {
        const SpanArg &a = args[i];
        out << (i != 0 ? ", " : "") << "\"" << jsonEscape(a.key)
            << "\": ";
        if (a.is_text)
            out << "\"" << jsonEscape(a.text) << "\"";
        else
            out << a.number;
    }
    out << "}";
}

} // namespace

SpanTracer::SpanTracer()
    : generation_(g_tracer_generation.fetch_add(1)),
      epoch_(std::chrono::steady_clock::now())
{}

SpanTracer &
SpanTracer::global()
{
    // Leaked on purpose, like the metrics registry: thread logs must
    // outlive static destruction order games.
    static SpanTracer *const instance = new SpanTracer();
    return *instance;
}

std::uint64_t
SpanTracer::nowUs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

SpanTracer::ThreadLog *
SpanTracer::logSlow()
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto fresh = std::make_unique<ThreadLog>();
    fresh->tid = static_cast<std::uint32_t>(logs_.size());
    logs_.push_back(std::move(fresh));
    ThreadLog *log = logs_.back().get();
    span_detail::tls_log_cache = {this, generation_, log};
    return log;
}

SpanTracer::ThreadLog *
SpanTracer::log()
{
    auto &cache = span_detail::tls_log_cache;
    if (cache.tracer == this && cache.generation == generation_)
        return static_cast<ThreadLog *>(cache.log);
    return logSlow();
}

void
SpanTracer::nameThread(const std::string &name)
{
    if (!enabled())
        return;
    ThreadLog *entry = log();
    std::lock_guard<std::mutex> lock(entry->mutex);
    entry->name = name;
}

void
SpanTracer::complete(std::string name, const char *category,
                     std::uint64_t ts_us, std::uint64_t dur_us,
                     std::vector<SpanArg> args)
{
    if (!enabled())
        return;
    ThreadLog *entry = log();
    std::lock_guard<std::mutex> lock(entry->mutex);
    entry->events.push_back(Event{std::move(name), category, 'X', ts_us,
                                  dur_us, std::move(args)});
}

void
SpanTracer::instant(std::string name, const char *category,
                    std::vector<SpanArg> args)
{
    if (!enabled())
        return;
    ThreadLog *entry = log();
    std::lock_guard<std::mutex> lock(entry->mutex);
    entry->events.push_back(Event{std::move(name), category, 'i',
                                  nowUs(), 0, std::move(args)});
}

std::size_t
SpanTracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const auto &log : logs_) {
        std::lock_guard<std::mutex> log_lock(log->mutex);
        n += log->events.size();
    }
    return n;
}

void
SpanTracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &log : logs_) {
        std::lock_guard<std::mutex> log_lock(log->mutex);
        log->events.clear();
    }
}

std::string
SpanTracer::chromeJson() const
{
    std::ostringstream out;
    out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
    bool first = true;
    const auto emit = [&out, &first](const std::string &line) {
        out << (first ? "" : ",\n") << line;
        first = false;
    };

    std::ostringstream meta;
    meta << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
            "\"tid\": 0, \"args\": {\"name\": \"act\"}}";
    emit(meta.str());

    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &log : logs_) {
        std::lock_guard<std::mutex> log_lock(log->mutex);
        if (!log->name.empty()) {
            std::ostringstream row;
            row << "{\"name\": \"thread_name\", \"ph\": \"M\", "
                   "\"pid\": 1, \"tid\": "
                << log->tid << ", \"args\": {\"name\": \""
                << jsonEscape(log->name) << "\"}}";
            emit(row.str());
        }
        // A nested span is recorded when it *closes*, i.e. after its
        // children — sort by start time so ts is monotone per tid.
        std::vector<const Event *> ordered;
        ordered.reserve(log->events.size());
        for (const Event &event : log->events)
            ordered.push_back(&event);
        std::stable_sort(ordered.begin(), ordered.end(),
                         [](const Event *a, const Event *b) {
                             return a->ts < b->ts;
                         });
        for (const Event *event : ordered) {
            std::ostringstream row;
            row << "{\"name\": \"" << jsonEscape(event->name)
                << "\", \"cat\": \"" << jsonEscape(event->category)
                << "\", \"ph\": \"" << event->phase << "\", \"pid\": 1, "
                << "\"tid\": " << log->tid << ", \"ts\": " << event->ts;
            if (event->phase == 'X')
                row << ", \"dur\": " << event->dur;
            if (event->phase == 'i')
                row << ", \"s\": \"t\"";
            row << ", ";
            writeArgs(row, event->args);
            row << "}";
            emit(row.str());
        }
    }
    out << "\n]}\n";
    return out.str();
}

bool
SpanTracer::exportTo(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << chromeJson();
    return static_cast<bool>(out.flush());
}

ScopedSpan::ScopedSpan(std::string name, const char *category)
    : ScopedSpan(SpanTracer::global(), std::move(name), category)
{}

ScopedSpan::ScopedSpan(SpanTracer &tracer, std::string name,
                       const char *category)
{
    if (!tracer.enabled())
        return;
    tracer_ = &tracer;
    name_ = std::move(name);
    category_ = category;
    start_ = tracer.nowUs();
}

ScopedSpan::~ScopedSpan()
{
    if (tracer_ == nullptr)
        return;
    const std::uint64_t end = tracer_->nowUs();
    tracer_->complete(std::move(name_), category_, start_,
                      end >= start_ ? end - start_ : 0,
                      std::move(args_));
}

void
ScopedSpan::annotate(SpanArg value)
{
    if (tracer_ != nullptr)
        args_.push_back(std::move(value));
}

} // namespace act::telemetry
