/**
 * @file
 * Process-wide, thread-sharded metrics registry.
 *
 * The paper's premise is always-on, low-overhead production monitoring;
 * this module gives the runner/AM stack the same property. Three metric
 * kinds:
 *
 *  - Counter: monotonic u64. The hot path is one relaxed fetch_add on a
 *    per-thread shard slot — no locks, no false sharing with readers.
 *  - Gauge: signed level tracked as a sum of per-shard deltas
 *    (inc/dec); the snapshot sums the shards.
 *  - LatencyHistogram: log2-bucketed u64 samples (bucket index =
 *    bit_width(value)), for timing distributions where exact values
 *    are noise anyway.
 *
 * Dormancy contract: the registry is disabled by default and every
 * recording call is a relaxed load + branch when disabled. Nothing here
 * ever writes to reports or stdout, so enabling telemetry cannot
 * perturb the science — fig7a/table4/table5/smoke reports stay
 * byte-identical with or without it (asserted by tests and CI).
 *
 * Determinism contract: metrics declare a Stability at registration.
 * kStable counters are pure event counts of deterministic per-job
 * computations — their snapshot *values* are byte-identical across
 * `--jobs 1` and `--jobs 4` (asserted the same way the golden
 * determinism test pins reports). kVolatile covers anything scheduling
 * or cache dependent (steals, queue depths, cache hits, durations).
 *
 * Thread shards are owned by the registry and survive thread exit, so
 * counts from joined workers stay visible; a snapshot merges all shards
 * under the registration mutex.
 */

#ifndef ACT_TELEMETRY_METRICS_HH
#define ACT_TELEMETRY_METRICS_HH

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace act::telemetry
{

/** Determinism class of a metric (see file comment). */
enum class Stability : std::uint8_t
{
    kStable,  //!< Byte-identical across thread counts for one campaign.
    kVolatile //!< Scheduling/cache/timing dependent.
};

/** Fixed shard capacities: registration past these is a fatal error. */
inline constexpr std::size_t kMaxScalarMetrics = 256;
inline constexpr std::size_t kMaxHistograms = 64;

/** Bucket i of a histogram counts samples with bit_width(v) == i. */
inline constexpr std::size_t kHistogramBuckets = 65;

class MetricsRegistry;

namespace detail
{

/** Per-thread cache of the calling thread's shard of one registry. */
struct TlsShardCache
{
    const void *registry = nullptr;
    std::uint64_t generation = 0;
    void *shard = nullptr;
};

extern thread_local TlsShardCache tls_shard_cache;

} // namespace detail

/** Monotonic counter handle (cheap to copy, safe to keep in statics). */
class Counter
{
  public:
    Counter() = default;

    /** Add @p n; no-op while the registry is disabled. */
    inline void add(std::uint64_t n = 1) const;
    void inc() const { add(1); }

  private:
    friend class MetricsRegistry;
    Counter(MetricsRegistry *registry, std::uint32_t id)
        : registry_(registry), id_(id)
    {}

    MetricsRegistry *registry_ = nullptr;
    std::uint32_t id_ = 0;
};

/** Signed level tracked as a sum of per-shard deltas. */
class Gauge
{
  public:
    Gauge() = default;

    /** Apply a delta; no-op while the registry is disabled. */
    inline void add(std::int64_t delta) const;
    void inc() const { add(1); }
    void dec() const { add(-1); }

  private:
    friend class MetricsRegistry;
    Gauge(MetricsRegistry *registry, std::uint32_t id)
        : registry_(registry), id_(id)
    {}

    MetricsRegistry *registry_ = nullptr;
    std::uint32_t id_ = 0;
};

/** Log2-bucketed histogram handle. */
class LatencyHistogram
{
  public:
    LatencyHistogram() = default;

    /** Record one sample; no-op while the registry is disabled. */
    inline void record(std::uint64_t value) const;

    /** Bucket a value lands in: bit_width(value), 0 for value == 0. */
    static constexpr std::uint32_t
    bucketOf(std::uint64_t value)
    {
        return static_cast<std::uint32_t>(std::bit_width(value));
    }

    /** Inclusive upper bound of @p bucket (2^bucket - 1). */
    static constexpr std::uint64_t
    bucketUpperBound(std::uint32_t bucket)
    {
        return bucket >= 64 ? ~std::uint64_t{0}
                            : (std::uint64_t{1} << bucket) - 1;
    }

  private:
    friend class MetricsRegistry;
    LatencyHistogram(MetricsRegistry *registry, std::uint32_t id)
        : registry_(registry), id_(id)
    {}

    MetricsRegistry *registry_ = nullptr;
    std::uint32_t id_ = 0;
};

/** Merged view of one histogram. */
struct HistogramSnapshot
{
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    /** (bucket index, count), sparse, ascending by index. */
    std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;

    double mean() const
    {
        return count != 0 ? static_cast<double>(sum) /
                                static_cast<double>(count)
                          : 0.0;
    }
};

/** Point-in-time merged view of a whole registry. */
struct Snapshot
{
    /** Stable counters (the determinism-contract section). */
    std::map<std::string, std::uint64_t> counters;

    /** Volatile counters (scheduling/cache dependent). */
    std::map<std::string, std::uint64_t> volatile_counters;

    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    /** Milliseconds since the registry was constructed. */
    double uptime_ms = 0.0;

    /** Value of a counter in either section (0 when absent). */
    std::uint64_t counterValue(const std::string &name) const;

    /** Level of a gauge (0 when absent). */
    std::int64_t gaugeValue(const std::string &name) const;
};

/**
 * Counter-wise difference @p newer - @p older (counters saturate at 0
 * if @p older is ahead — distinct registries were mixed). Gauges and
 * uptime keep the newer snapshot's values; histogram counts subtract.
 */
Snapshot diffSnapshots(const Snapshot &newer, const Snapshot &older);

/** Serialise (schema "act-metrics-v1", stable key order). */
std::string snapshotJson(const Snapshot &snapshot);

/**
 * Canonical "name value" lines of the *stable* counters only — the
 * byte-comparable artefact of the determinism contract (`actstat
 * counters` prints exactly this).
 */
std::string stableCountersText(const Snapshot &snapshot);

/**
 * The registry. One process-wide instance via global(); tests build
 * private instances freely.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry();
    ~MetricsRegistry() = default;

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process-wide registry (never destroyed). */
    static MetricsRegistry &global();

    /** Master switch; all recording is a no-op while disabled. */
    void setEnabled(bool enabled)
    {
        enabled_.store(enabled, std::memory_order_relaxed);
    }

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Register (or look up) a metric. Registration is idempotent —
     * the same name always yields the same slot — and allowed while
     * disabled, so call sites can cache handles in local statics.
     * Re-registering a name as a different kind or stability is fatal.
     */
    Counter counter(const std::string &name,
                    Stability stability = Stability::kStable);
    Gauge gauge(const std::string &name);
    LatencyHistogram histogram(const std::string &name);

    /** Merge every shard into a point-in-time view. */
    Snapshot snapshot() const;

  private:
    friend class Counter;
    friend class Gauge;
    friend class LatencyHistogram;

    struct HistShard
    {
        std::array<std::atomic<std::uint64_t>, kHistogramBuckets>
            buckets{};
        std::atomic<std::uint64_t> sum{0};
    };

    struct Shard
    {
        std::array<std::atomic<std::uint64_t>, kMaxScalarMetrics>
            scalars{};
        std::array<HistShard, kMaxHistograms> hists{};
    };

    struct ScalarInfo
    {
        std::string name;
        Stability stability = Stability::kStable;
        bool is_gauge = false;
    };

    /** This thread's shard (creating + caching it on first use). */
    Shard *shardSlow();

    inline Shard *
    shard()
    {
        auto &cache = detail::tls_shard_cache;
        if (cache.registry == this && cache.generation == generation_)
            return static_cast<Shard *>(cache.shard);
        return shardSlow();
    }

    std::uint32_t registerScalar(const std::string &name,
                                 Stability stability, bool is_gauge);

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<ScalarInfo> scalars_;
    std::vector<std::string> hist_names_;
    std::map<std::string, std::uint32_t> scalar_ids_;
    std::map<std::string, std::uint32_t> hist_ids_;
    std::atomic<bool> enabled_{false};
    std::uint64_t generation_;
    std::chrono::steady_clock::time_point epoch_;
};

inline void
Counter::add(std::uint64_t n) const
{
    if (registry_ == nullptr || !registry_->enabled())
        return;
    registry_->shard()->scalars[id_].fetch_add(n,
                                               std::memory_order_relaxed);
}

inline void
Gauge::add(std::int64_t delta) const
{
    if (registry_ == nullptr || !registry_->enabled())
        return;
    // Two's-complement wraparound: the snapshot's signed sum of all
    // shard deltas reconstructs the level exactly.
    registry_->shard()->scalars[id_].fetch_add(
        static_cast<std::uint64_t>(delta), std::memory_order_relaxed);
}

inline void
LatencyHistogram::record(std::uint64_t value) const
{
    if (registry_ == nullptr || !registry_->enabled())
        return;
    auto &hist = registry_->shard()->hists[id_];
    hist.buckets[bucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    hist.sum.fetch_add(value, std::memory_order_relaxed);
}

} // namespace act::telemetry

#endif // ACT_TELEMETRY_METRICS_HH
