/**
 * @file
 * The concrete fault injector: seeded, replayable corruption of the
 * artefacts and decision points a production deployment of ACT cannot
 * trust to be pristine.
 *
 * Four fault classes, matching the failure model of DESIGN.md §10:
 *
 *  - trace streams: bit-flips in pc/addr, record drops, duplications
 *    and tail truncation of recorded executions (storage or transport
 *    corruption of the offline artefacts);
 *  - stored weights: bit-flips in the binary-resident weight sets the
 *    thread library loads at thread start (soft errors / bit rot in
 *    the patched binary), which can produce NaN or out-of-Q15.16-range
 *    values the degradation layer must quarantine;
 *  - coherence metadata: dropped or stale piggybacked last-writer
 *    records in cache-to-cache transfers (the paper's own
 *    simplifications made adversarial);
 *  - AM buffers: lost Input Generator pushes and Debug Buffer logs
 *    (overflow/arbitration losses in the module's SRAM).
 *
 * Every decision is a pure function of (plan seed, site, occurrence
 * index), so a run is replayable from its plan alone; every injection
 * is appended to a structured log for post-mortem.
 */

#ifndef ACT_FAULTS_FAULT_INJECTOR_HH
#define ACT_FAULTS_FAULT_INJECTOR_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/fault_hooks.hh"
#include "faults/fault_plan.hh"

namespace act
{

class Trace;
class WeightStore;

/** Where an injection happened. */
enum class FaultSite : std::uint8_t
{
    kTraceBitflip,
    kTraceDrop,
    kTraceDup,
    kTraceTruncate,
    kWeightBitflip,
    kWriterDrop,
    kWriterStale,
    kInputDrop,
    kDebugDrop,
};

inline constexpr std::size_t kFaultSiteCount = 9;

const char *faultSiteName(FaultSite site);

/** One logged injection — enough to replay or audit the run. */
struct InjectionRecord
{
    FaultSite site = FaultSite::kTraceBitflip;
    std::uint64_t stream = 0; //!< Which artefact (trace/weight stream id,
                              //!< 0 for online hook sites).
    std::uint64_t index = 0;  //!< Occurrence index within the stream.
    std::uint64_t detail = 0; //!< Site-specific (bit number, tid, ...).
};

/**
 * The injector. One instance per experiment (it carries the injection
 * log); not thread-safe — the simulator consuming the hooks is
 * single-threaded within a job, and each campaign job owns its own
 * injector.
 */
class FaultInjector final : public FaultHooks
{
  public:
    explicit FaultInjector(const FaultPlan &plan) : plan_(plan) {}

    const FaultPlan &plan() const { return plan_; }

    // --- Offline artefact corruption --------------------------------

    /**
     * Apply the plan's trace faults to @p trace in place. @p stream
     * distinguishes different traces under the same plan (use e.g. the
     * recording seed) so each is corrupted independently.
     *
     * Bit-flips touch only pc/addr — corrupting the event kind would
     * model a decoder bug, not data corruption, and the trace reader
     * already rejects unknown kinds. Summary counters are rebuilt.
     *
     * @return Number of injections performed.
     */
    std::size_t corruptTrace(Trace &trace, std::uint64_t stream);

    /**
     * Flip bits in the stored weight sets of @p store (the IEEE-754
     * representation the binary carries — a flipped exponent or
     * quiet-NaN bit is exactly what the quarantine layer must catch).
     *
     * @return Number of injections performed.
     */
    std::size_t corruptWeightStore(WeightStore &store,
                                   std::uint64_t stream);

    // --- FaultHooks (online decision points) ------------------------

    WriterFaultAction onWriterTransfer() override;
    bool dropInputDependence() override;
    bool dropDebugLog() override;

    // --- Audit ------------------------------------------------------

    const std::vector<InjectionRecord> &log() const { return log_; }

    std::uint64_t
    injectionCount(FaultSite site) const
    {
        return counts_[static_cast<std::size_t>(site)];
    }

    std::uint64_t totalInjections() const;

    /** Human-readable summary: per-site counts + the first records. */
    std::string formatLog(std::size_t max_records = 8) const;

  private:
    /**
     * The single decision primitive: true with probability @p rate,
     * derived purely from (plan seed, site, a, b).
     */
    bool decide(FaultSite site, double rate, std::uint64_t a,
                std::uint64_t b) const;

    void record(FaultSite site, std::uint64_t stream, std::uint64_t index,
                std::uint64_t detail);

    FaultPlan plan_;
    std::vector<InjectionRecord> log_;
    std::array<std::uint64_t, kFaultSiteCount> counts_{};

    // Occurrence counters for the online hook sites (the simulator
    // calls them in deterministic program order).
    std::uint64_t writer_calls_ = 0;
    std::uint64_t input_calls_ = 0;
    std::uint64_t debug_calls_ = 0;
};

} // namespace act

#endif // ACT_FAULTS_FAULT_INJECTOR_HH
