#include "faults/weight_guard.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "act/weight_store.hh"
#include "analysis/config_check.hh"
#include "common/logging.hh"
#include "telemetry/metrics.hh"

namespace act
{

std::uint64_t
weightChecksum(const std::vector<double> &weights)
{
    // FNV-1a over the stored bit patterns: any single flipped bit —
    // including ones that keep the value finite and in range, which
    // validateWeights cannot see — changes the digest.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const double w : weights) {
        std::uint64_t raw = 0;
        std::memcpy(&raw, &w, sizeof(raw));
        for (std::size_t byte = 0; byte < sizeof(raw); ++byte) {
            h ^= (raw >> (8 * byte)) & 0xffu;
            h *= 0x100000001b3ULL;
        }
    }
    return h;
}

WeightGuard
WeightGuard::build(const WeightStore &store,
                   const WeightProtectionConfig &config)
{
    WeightGuard guard;
    if (!config.enabled)
        return guard;

    // Probe every stored set: member-0 sets first (tid order), then
    // the ensemble extras (set-id order) — a deterministic enumeration
    // so the ranking replays from the configuration alone.
    for (const ThreadId tid : store.tids()) {
        const auto weights = store.get(tid);
        if (!weights)
            continue;
        guard.ranking_.push_back(probeWeightSensitivity(
            weightSetId(tid, 0), *weights, config.probes,
            config.probe_seed, kHwWeightLimit));
    }
    for (const std::uint64_t id : store.memberIds()) {
        const auto tid = static_cast<ThreadId>(id & 0xffffffffu);
        const auto member = static_cast<std::size_t>(id >> 32);
        const auto weights = store.getMember(tid, member);
        if (!weights)
            continue;
        guard.ranking_.push_back(probeWeightSensitivity(
            id, *weights, config.probes, config.probe_seed,
            kHwWeightLimit));
    }

    // Most silent damage first; ties broken by set id so the guarded
    // subset is stable across runs and platforms.
    std::sort(guard.ranking_.begin(), guard.ranking_.end(),
              [](const WeightSensitivity &a, const WeightSensitivity &b) {
                  if (a.silent_damage != b.silent_damage)
                      return a.silent_damage > b.silent_damage;
                  return a.set_id < b.set_id;
              });

    const auto budget = static_cast<std::size_t>(std::ceil(
        config.protect_fraction *
        static_cast<double>(guard.ranking_.size())));
    for (std::size_t i = 0; i < guard.ranking_.size() && i < budget; ++i) {
        const std::uint64_t id = guard.ranking_[i].set_id;
        const auto tid = static_cast<ThreadId>(id & 0xffffffffu);
        const auto member = static_cast<std::size_t>(id >> 32);
        const auto weights = store.getMember(tid, member);
        if (!weights)
            continue;
        Guard g;
        g.checksum = weightChecksum(*weights);
        g.shadow = *weights;
        guard.guards_.emplace(id, std::move(g));
    }
    return guard;
}

bool
WeightGuard::inspect(std::uint64_t set_id,
                     std::vector<double> &weights) const
{
    const auto it = guards_.find(set_id);
    if (it == guards_.end())
        return false;
    if (weightChecksum(weights) == it->second.checksum)
        return false;
    // Checksum mismatch: a stored bit flipped since the guard was
    // built. Restore the shadow copy — the caller keeps its trained
    // weights instead of quarantining into a from-scratch retrain.
    weights = it->second.shadow;
    static const telemetry::Counter repairs =
        telemetry::MetricsRegistry::global().counter(
            "faults.weight_repairs");
    repairs.inc();
    logWarnEvent("faults.weight_repair",
                 {logField("set", set_id)});
    return true;
}

} // namespace act
