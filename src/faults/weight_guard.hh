/**
 * @file
 * Selective weight protection: checksums + shadow copies for the
 * fault-sensitive slice of the weight store.
 *
 * Guarding every stored set would double the binary-resident weight
 * footprint; most sets don't need it, because most bit flips either
 * land in sets the quarantine layer already rejects wholesale or
 * perturb values too small to matter. WeightGuard spends the
 * protection budget where probing says silent damage concentrates:
 *
 *  1. rank every stored set (member-0 and ensemble extras) by its
 *     empirical sensitivity — seeded bit-flip probes classified into
 *     detectable vs silent, silent flips scored by perturbation
 *     magnitude (faults/sensitivity);
 *  2. guard the top `protect_fraction` of sets with an FNV-1a
 *     checksum over the IEEE-754 bit patterns plus a full shadow
 *     copy;
 *  3. at thread start (ActConfig::protector -> inspect), recompute the
 *     checksum of the set about to be loaded; on mismatch, restore the
 *     shadow copy in place — the module keeps its trained weights
 *     instead of quarantining into a from-scratch retrain.
 *
 * The guard is built from the *clean* store (after offline training,
 * before deployment faults) and is immutable afterwards, mirroring
 * where a real deployment would compute and stash the checksums.
 */

#ifndef ACT_FAULTS_WEIGHT_GUARD_HH
#define ACT_FAULTS_WEIGHT_GUARD_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "act/act_config.hh"
#include "faults/sensitivity.hh"

namespace act
{

class WeightStore;

/** Knobs of the selective protection pass. */
struct WeightProtectionConfig
{
    bool enabled = false;

    /** Fraction of stored sets to guard, most sensitive first. */
    double protect_fraction = 0.5;

    /** Bit-flip probes per set for the sensitivity ranking. */
    std::size_t probes = 32;

    /** Seed of the probe pattern (reproducible ranking). */
    std::uint64_t probe_seed = 0x5ead5;
};

/**
 * The concrete WeightProtector. Build once from a clean store; inspect
 * from any number of module initThread calls (const, no mutable
 * state — safe to share across campaign threads).
 */
class WeightGuard final : public WeightProtector
{
  public:
    /**
     * Probe and rank every set in @p store, then record checksums and
     * shadow copies for the `protect_fraction` most sensitive ones.
     */
    static WeightGuard build(const WeightStore &store,
                             const WeightProtectionConfig &config);

    /** Is @p set_id one of the guarded sets? */
    bool guarded(std::uint64_t set_id) const
    {
        return guards_.count(set_id) != 0;
    }

    /** Guarded set count (<= ceil(protect_fraction x stored sets)). */
    std::size_t guardedCount() const { return guards_.size(); }

    /** All probed sensitivities, most sensitive first (for reports). */
    const std::vector<WeightSensitivity> &ranking() const
    {
        return ranking_;
    }

    // --- WeightProtector -------------------------------------------

    /**
     * Checksum-verify @p weights against the guard record for
     * @p set_id; restore the shadow copy on mismatch. Unguarded sets
     * pass through untouched. @return true when a repair happened.
     */
    bool inspect(std::uint64_t set_id,
                 std::vector<double> &weights) const override;

  private:
    struct Guard
    {
        std::uint64_t checksum = 0;
        std::vector<double> shadow;
    };

    std::unordered_map<std::uint64_t, Guard> guards_;
    std::vector<WeightSensitivity> ranking_;
};

/** FNV-1a over the IEEE-754 bit patterns of @p weights. */
std::uint64_t weightChecksum(const std::vector<double> &weights);

} // namespace act

#endif // ACT_FAULTS_WEIGHT_GUARD_HH
