#include "faults/fault_injector.hh"

#include <cstring>

#include "act/weight_store.hh"
#include "common/hashing.hh"
#include "telemetry/metrics.hh"
#include "telemetry/spans.hh"
#include "trace/trace.hh"

namespace act
{

namespace
{

/** Distinct salt per site so rates at different sites never correlate. */
constexpr std::uint64_t
siteSalt(FaultSite site)
{
    return 0xfa017u + 0x9e37u * static_cast<std::uint64_t>(site);
}

} // namespace

const char *
faultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::kTraceBitflip: return "trace-bitflip";
      case FaultSite::kTraceDrop: return "trace-drop";
      case FaultSite::kTraceDup: return "trace-dup";
      case FaultSite::kTraceTruncate: return "trace-truncate";
      case FaultSite::kWeightBitflip: return "weight-bitflip";
      case FaultSite::kWriterDrop: return "writer-drop";
      case FaultSite::kWriterStale: return "writer-stale";
      case FaultSite::kInputDrop: return "input-drop";
      case FaultSite::kDebugDrop: return "debug-drop";
    }
    return "?";
}

bool
FaultInjector::decide(FaultSite site, double rate, std::uint64_t a,
                      std::uint64_t b) const
{
    if (rate <= 0.0)
        return false;
    return hashToUnit(hash3(plan_.seed ^ siteSalt(site), a, b)) < rate;
}

void
FaultInjector::record(FaultSite site, std::uint64_t stream,
                      std::uint64_t index, std::uint64_t detail)
{
    ++counts_[static_cast<std::size_t>(site)];
    log_.push_back(InjectionRecord{site, stream, index, detail});
    // Injection decisions are pure hash functions of (plan, site,
    // stream, index), so the audit counter is kStable.
    static const telemetry::Counter injections =
        telemetry::MetricsRegistry::global().counter("faults.injections");
    injections.inc();
    telemetry::SpanTracer::global().instant(
        "fault_injection", "faults",
        {telemetry::arg("site", faultSiteName(site)),
         telemetry::arg("stream", stream),
         telemetry::arg("index", index)});
}

std::size_t
FaultInjector::corruptTrace(Trace &trace, std::uint64_t stream)
{
    const std::size_t before = log_.size();
    const std::vector<TraceEvent> &source = trace.events();

    std::vector<TraceEvent> out;
    out.reserve(source.size());
    for (std::size_t i = 0; i < source.size(); ++i) {
        if (decide(FaultSite::kTraceDrop, plan_.trace_drop_rate, stream,
                   i)) {
            record(FaultSite::kTraceDrop, stream, i, 0);
            continue;
        }
        TraceEvent event = source[i];
        if (decide(FaultSite::kTraceBitflip, plan_.trace_bitflip_rate,
                   stream, i)) {
            // Flip one bit of pc or addr. Bits above 47 never carry
            // address information in the workload models, so stay in
            // the low 48 to perturb values that are actually consumed.
            const std::uint64_t h =
                hash3(plan_.seed ^ 0xb17f11bu, stream, i);
            const std::uint64_t bit = (h >> 1) % 48;
            if ((h & 1) != 0)
                event.pc ^= 1ULL << bit;
            else
                event.addr ^= 1ULL << bit;
            record(FaultSite::kTraceBitflip, stream, i, bit);
        }
        out.push_back(event);
        if (decide(FaultSite::kTraceDup, plan_.trace_dup_rate, stream,
                   i)) {
            record(FaultSite::kTraceDup, stream, i, 0);
            out.push_back(event);
        }
    }
    if (plan_.trace_truncate_fraction > 0.0 && !out.empty()) {
        const auto keep = static_cast<std::size_t>(
            static_cast<double>(out.size()) *
            (1.0 - plan_.trace_truncate_fraction));
        if (keep < out.size()) {
            record(FaultSite::kTraceTruncate, stream, keep,
                   out.size() - keep);
            out.resize(keep);
        }
    }

    // Rebuild through appendBlock so the summary counters (instruction
    // and event tallies) match the corrupted stream, exactly as if the
    // damaged artefact had been deserialised.
    trace.clear();
    trace.appendBlock(out);
    return log_.size() - before;
}

std::size_t
FaultInjector::corruptWeightStore(WeightStore &store, std::uint64_t stream)
{
    const std::size_t before = log_.size();

    // Damage one register vector under both weight rates. @p key feeds
    // the decision hashes — hashCombine(stream, tid-or-set-id), the
    // exact pre-refactor streams, so historical per-register corruption
    // sequences are bit-identical — and @p rec_stream labels the
    // injection records.
    const auto damage = [this](std::vector<double> &weights,
                               std::uint64_t key,
                               std::uint64_t rec_stream) {
        bool touched = false;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            if (!decide(FaultSite::kWeightBitflip,
                        plan_.weight_bitflip_rate, key, i)) {
                continue;
            }
            // Flip one bit of the stored IEEE-754 representation: a
            // mantissa flip is a small perturbation, an exponent or
            // sign flip a wild value, an all-ones exponent a NaN/Inf —
            // the full spectrum the quarantine layer must absorb.
            const std::uint64_t h = hash3(plan_.seed ^ 0x3efb17u, key, i);
            const std::uint64_t bit = h % 64;
            std::uint64_t raw = 0;
            std::memcpy(&raw, &weights[i], sizeof(raw));
            raw ^= 1ULL << bit;
            std::memcpy(&weights[i], &raw, sizeof(raw));
            record(FaultSite::kWeightBitflip, rec_stream, i, bit);
            touched = true;
        }
        if (plan_.weight_bit_rate > 0.0) {
            // FIT-style damage: every stored bit is its own coin, so
            // one register can take several flips in one experiment.
            for (std::size_t i = 0; i < weights.size(); ++i) {
                std::uint64_t raw = 0;
                std::memcpy(&raw, &weights[i], sizeof(raw));
                const std::uint64_t original = raw;
                for (std::uint64_t bit = 0; bit < 64; ++bit) {
                    if (!decide(FaultSite::kWeightBitflip,
                                plan_.weight_bit_rate,
                                hashCombine(key, 0x5b17u),
                                (static_cast<std::uint64_t>(i) << 6) |
                                    bit)) {
                        continue;
                    }
                    raw ^= 1ULL << bit;
                    record(FaultSite::kWeightBitflip, rec_stream, i, bit);
                    touched = true;
                }
                if (raw != original)
                    std::memcpy(&weights[i], &raw, sizeof(raw));
            }
        }
        return touched;
    };

    for (const ThreadId tid : store.tids()) {
        const auto weights = store.get(tid);
        if (!weights)
            continue;
        std::vector<double> damaged = *weights;
        if (damage(damaged, hashCombine(stream, tid), tid))
            store.set(tid, std::move(damaged));
    }
    // Ensemble member sets (absent entirely from single-member stores,
    // keeping pre-ensemble corruption streams bit-identical) are
    // damaged under the same rates, keyed by their full 64-bit set id
    // so members of one thread fault independently.
    for (const std::uint64_t id : store.memberIds()) {
        const auto tid = static_cast<ThreadId>(id & 0xffffffffu);
        const auto member = static_cast<std::size_t>(id >> 32);
        const auto weights = store.getMember(tid, member);
        if (!weights)
            continue;
        std::vector<double> damaged = *weights;
        if (damage(damaged, hashCombine(stream, id), id))
            store.setMember(tid, member, std::move(damaged));
    }
    return log_.size() - before;
}

WriterFaultAction
FaultInjector::onWriterTransfer()
{
    const std::uint64_t call = writer_calls_++;
    if (decide(FaultSite::kWriterDrop, plan_.writer_drop_rate, call, 0)) {
        record(FaultSite::kWriterDrop, 0, call, 0);
        return WriterFaultAction::kDrop;
    }
    if (decide(FaultSite::kWriterStale, plan_.writer_stale_rate, call,
               1)) {
        record(FaultSite::kWriterStale, 0, call, 0);
        return WriterFaultAction::kStale;
    }
    return WriterFaultAction::kNone;
}

bool
FaultInjector::dropInputDependence()
{
    const std::uint64_t call = input_calls_++;
    if (decide(FaultSite::kInputDrop, plan_.input_drop_rate, call, 2)) {
        record(FaultSite::kInputDrop, 0, call, 0);
        return true;
    }
    return false;
}

bool
FaultInjector::dropDebugLog()
{
    const std::uint64_t call = debug_calls_++;
    if (decide(FaultSite::kDebugDrop, plan_.debug_drop_rate, call, 3)) {
        record(FaultSite::kDebugDrop, 0, call, 0);
        return true;
    }
    return false;
}

std::uint64_t
FaultInjector::totalInjections() const
{
    std::uint64_t total = 0;
    for (const std::uint64_t count : counts_)
        total += count;
    return total;
}

std::string
FaultInjector::formatLog(std::size_t max_records) const
{
    std::string out;
    for (std::size_t s = 0; s < kFaultSiteCount; ++s) {
        if (counts_[s] == 0)
            continue;
        if (!out.empty())
            out += ", ";
        out += faultSiteName(static_cast<FaultSite>(s));
        out += ": ";
        out += std::to_string(counts_[s]);
    }
    if (out.empty())
        return "no injections";
    std::size_t shown = 0;
    for (const InjectionRecord &rec : log_) {
        if (shown++ >= max_records)
            break;
        out += "\n  ";
        out += faultSiteName(rec.site);
        out += " stream=" + std::to_string(rec.stream) +
               " index=" + std::to_string(rec.index) +
               " detail=" + std::to_string(rec.detail);
    }
    if (log_.size() > max_records) {
        out += "\n  ... " + std::to_string(log_.size() - max_records) +
               " more";
    }
    return out;
}

} // namespace act
