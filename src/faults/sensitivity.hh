/**
 * @file
 * Empirical fault-sensitivity probing of stored weight sets.
 *
 * Not every weight register matters equally under bit rot. A flipped
 * exponent that lands outside the Q15.16 range is *detectable*: the
 * quarantine layer rejects the whole set at thread start and the
 * module retrains — degraded but safe. A mantissa flip that stays in
 * range is *silent*: the network keeps classifying with a perturbed
 * weight and nothing downstream ever notices. Selective weight
 * protection wants to spend its checksum/shadow budget on the sets
 * where silent flips do the most damage, so this prober measures that
 * directly: seeded single-bit flips (the same corruption model
 * FaultInjector::corruptWeightStore applies) replayed over a set,
 * classified into detectable vs silent, with silent flips scored by
 * the magnitude of the value perturbation they cause.
 */

#ifndef ACT_FAULTS_SENSITIVITY_HH
#define ACT_FAULTS_SENSITIVITY_HH

#include <cstdint>
#include <span>
#include <vector>

namespace act
{

/** Outcome of probing one weight set. */
struct WeightSensitivity
{
    std::uint64_t set_id = 0;  //!< weightSetId of the probed set.
    std::size_t probes = 0;    //!< Bit flips attempted.
    std::size_t detectable = 0; //!< Flips the quarantine layer catches.
    std::size_t silent = 0;     //!< Flips that pass validation.

    /**
     * Total |perturbation| over the silent flips, measured in weight
     * units and clamped per flip to the Q15.16 range so one large (but
     * still representable) excursion cannot saturate the score. Higher
     * = more undetected damage per unit of fault exposure.
     */
    double silent_damage = 0.0;

    /** Silent flips per probe (the chance corruption goes unnoticed). */
    double
    silentRate() const
    {
        return probes == 0
                   ? 0.0
                   : static_cast<double>(silent) /
                         static_cast<double>(probes);
    }
};

/**
 * Probe @p weights with @p probes seeded single-bit flips. Every flip
 * targets a (register, bit) pair derived from (@p seed, @p set_id,
 * probe index) hashes, so a ranking is reproducible from its
 * configuration alone. @p weight_limit is the detectability boundary
 * (pass kHwWeightLimit; a parameter so tests can tighten it).
 */
WeightSensitivity probeWeightSensitivity(std::uint64_t set_id,
                                         std::span<const double> weights,
                                         std::size_t probes,
                                         std::uint64_t seed,
                                         double weight_limit);

} // namespace act

#endif // ACT_FAULTS_SENSITIVITY_HH
