#include "faults/sensitivity.hh"

#include <cmath>
#include <cstring>

#include "common/hashing.hh"

namespace act
{

WeightSensitivity
probeWeightSensitivity(std::uint64_t set_id,
                       std::span<const double> weights, std::size_t probes,
                       std::uint64_t seed, double weight_limit)
{
    WeightSensitivity out;
    out.set_id = set_id;
    if (weights.empty())
        return out;
    out.probes = probes;
    for (std::size_t p = 0; p < probes; ++p) {
        // Same corruption model as corruptWeightStore: one flipped bit
        // of the stored IEEE-754 representation.
        const std::uint64_t h = hash3(seed ^ 0x5e45u, set_id, p);
        const std::size_t reg = (h >> 8) % weights.size();
        const std::uint64_t bit = h % 64;
        const double original = weights[reg];
        std::uint64_t raw = 0;
        std::memcpy(&raw, &original, sizeof(raw));
        raw ^= 1ULL << bit;
        double flipped = 0.0;
        std::memcpy(&flipped, &raw, sizeof(flipped));
        if (!std::isfinite(flipped) || std::fabs(flipped) > weight_limit) {
            ++out.detectable;
            continue;
        }
        ++out.silent;
        const double damage =
            std::fmin(std::fabs(flipped - original), weight_limit);
        out.silent_damage += damage;
    }
    return out;
}

} // namespace act
