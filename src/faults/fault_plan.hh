/**
 * @file
 * Declarative description of a fault-injection experiment.
 *
 * A FaultPlan is pure data: a seed plus one rate per fault site. The
 * same plan fed to a FaultInjector over the same execution replays the
 * same injections — every decision is derived from (seed, site,
 * occurrence index) hashes, never from wall-clock or global state — so
 * a resilience sweep is as reproducible as the fault-free campaigns.
 */

#ifndef ACT_FAULTS_FAULT_PLAN_HH
#define ACT_FAULTS_FAULT_PLAN_HH

#include <cstdint>

namespace act
{

/** Per-site injection rates (all probabilities in [0, 1]). */
struct FaultPlan
{
    /** Root seed; two plans with different seeds inject independently. */
    std::uint64_t seed = 0;

    // --- Trace-stream corruption (offline artefacts) ----------------
    /** Per-event probability of flipping one bit of pc or addr. */
    double trace_bitflip_rate = 0.0;
    /** Per-event probability of dropping the record. */
    double trace_drop_rate = 0.0;
    /** Per-event probability of duplicating the record. */
    double trace_dup_rate = 0.0;
    /** Fraction of the tail to truncate (0 = keep whole trace). */
    double trace_truncate_fraction = 0.0;

    // --- Stored-weight corruption (binary-resident Q15.16 sets) -----
    /** Per-register probability of flipping one stored-weight bit. */
    double weight_bitflip_rate = 0.0;

    /**
     * Per-*bit* flip probability over every stored weight register —
     * the FIT-style formulation radiation experiments sweep. At rate r
     * each of a register's 64 bits flips independently, so small rates
     * already produce multi-bit damage per set (64r expected flips per
     * register). The adaptivity sweep uses this; uniform() leaves it
     * zero, keeping every pre-existing corruption stream bit-identical.
     */
    double weight_bit_rate = 0.0;

    // --- Coherence metadata faults (sim/memsys piggybacking) --------
    /** Per-transfer probability of losing the last-writer metadata. */
    double writer_drop_rate = 0.0;
    /** Per-transfer probability of delivering a stale writer PC. */
    double writer_stale_rate = 0.0;

    // --- AM buffer faults (act/buffers) ------------------------------
    /** Per-dependence probability of losing the Input Generator push. */
    double input_drop_rate = 0.0;
    /** Per-flag probability of losing the Debug Buffer log. */
    double debug_drop_rate = 0.0;

    /** Does this plan inject anything at all? */
    bool
    enabled() const
    {
        return trace_bitflip_rate > 0.0 || trace_drop_rate > 0.0 ||
               trace_dup_rate > 0.0 || trace_truncate_fraction > 0.0 ||
               weight_bitflip_rate > 0.0 || weight_bit_rate > 0.0 ||
               writer_drop_rate > 0.0 || writer_stale_rate > 0.0 ||
               input_drop_rate > 0.0 || debug_drop_rate > 0.0;
    }

    /**
     * The sweep shape `table-resilience` uses: one rate applied to
     * every per-occurrence site (truncation stays off — it would
     * dominate the sweep at any rate).
     */
    static FaultPlan
    uniform(double rate, std::uint64_t seed)
    {
        FaultPlan plan;
        plan.seed = seed;
        plan.trace_bitflip_rate = rate;
        plan.trace_drop_rate = rate;
        plan.trace_dup_rate = rate;
        plan.weight_bitflip_rate = rate;
        plan.writer_drop_rate = rate;
        plan.writer_stale_rate = rate;
        plan.input_drop_rate = rate;
        plan.debug_drop_rate = rate;
        return plan;
    }

    /**
     * The sweep shape `table-adaptivity` uses: all of the fault mass
     * on the stored weight sets — per stored *bit*, so the sweep walks
     * from pristine through silently-perturbed into grossly-corrupt
     * registers — and everything else pristine. This isolates exactly
     * the failure class ensembles and selective weight protection are
     * built to absorb, so accuracy deltas in the sweep measure those
     * mechanisms and not trace damage.
     */
    static FaultPlan
    weightsOnly(double rate, std::uint64_t seed)
    {
        FaultPlan plan;
        plan.seed = seed;
        plan.weight_bit_rate = rate;
        return plan;
    }
};

} // namespace act

#endif // ACT_FAULTS_FAULT_PLAN_HH
