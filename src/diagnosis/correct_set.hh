/**
 * @file
 * The Correct Set of Section III-D: RAW-dependence sequences observed
 * in correct executions, with prefix-match queries for ranking.
 */

#ifndef ACT_DIAGNOSIS_CORRECT_SET_HH
#define ACT_DIAGNOSIS_CORRECT_SET_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "deps/input_generator.hh"
#include "deps/raw_dependence.hh"
#include "trace/trace.hh"

namespace act
{

/**
 * Set of known-good dependence sequences.
 *
 * Alongside full sequences it indexes every proper prefix, so the
 * ranking step can ask "how many leading dependences of this flagged
 * sequence match some correct sequence" in O(N) hash probes.
 */
class CorrectSet
{
  public:
    /** Add one sequence (and all its prefixes). */
    void addSequence(const DependenceSequence &sequence);

    /** Add every positive sequence of @p trace. */
    void addTrace(const Trace &trace, const InputGenerator &generator);

    /** Add a batch of sequences. */
    void addSequences(const std::vector<DependenceSequence> &sequences);

    /** Is the full sequence present (=> prune it)? */
    bool contains(const DependenceSequence &sequence) const;

    /**
     * Did @p dep terminate some correct sequence? Used by the
     * dependence-level pruning refinement (see PostprocessOptions).
     */
    bool containsDependence(const RawDependence &dep) const;

    /**
     * Longest p such that the first p dependences of @p sequence equal
     * the first p dependences of some correct sequence.
     */
    std::size_t matchedPrefix(const DependenceSequence &sequence) const;

    /** Number of distinct full sequences. */
    std::size_t size() const { return full_.size(); }

  private:
    static std::uint64_t prefixKey(const DependenceSequence &sequence,
                                   std::size_t length);

    std::unordered_set<std::uint64_t> full_;
    std::unordered_set<std::uint64_t> prefixes_;
    std::unordered_set<std::uint64_t> final_deps_;
};

} // namespace act

#endif // ACT_DIAGNOSIS_CORRECT_SET_HH
