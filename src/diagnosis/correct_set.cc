#include "diagnosis/correct_set.hh"

namespace act
{

std::uint64_t
CorrectSet::prefixKey(const DependenceSequence &sequence,
                      std::size_t length)
{
    std::uint64_t h = mix64(0xC0221 + length);
    for (std::size_t i = 0; i < length; ++i)
        h = hashCombine(h, sequence.deps[i].key());
    return h;
}

void
CorrectSet::addSequence(const DependenceSequence &sequence)
{
    full_.insert(sequence.key());
    for (std::size_t p = 1; p <= sequence.deps.size(); ++p)
        prefixes_.insert(prefixKey(sequence, p));
    if (!sequence.deps.empty())
        final_deps_.insert(sequence.deps.back().key());
}

void
CorrectSet::addTrace(const Trace &trace, const InputGenerator &generator)
{
    const GeneratedSequences sequences =
        generator.process(trace, /*with_negatives=*/false);
    addSequences(sequences.positives);
}

void
CorrectSet::addSequences(const std::vector<DependenceSequence> &sequences)
{
    for (const auto &sequence : sequences)
        addSequence(sequence);
}

bool
CorrectSet::contains(const DependenceSequence &sequence) const
{
    return full_.count(sequence.key()) != 0;
}

bool
CorrectSet::containsDependence(const RawDependence &dep) const
{
    return final_deps_.count(dep.key()) != 0;
}

std::size_t
CorrectSet::matchedPrefix(const DependenceSequence &sequence) const
{
    std::size_t matched = 0;
    for (std::size_t p = 1; p <= sequence.deps.size(); ++p) {
        if (prefixes_.count(prefixKey(sequence, p)) == 0)
            break;
        matched = p;
    }
    return matched;
}

} // namespace act
