/**
 * @file
 * End-to-end diagnosis drivers: offline training (Figure 4(a)), the
 * production run on the simulated machine, and the offline
 * postprocessing after a failure — the full loop of Figure 1.
 */

#ifndef ACT_DIAGNOSIS_PIPELINE_HH
#define ACT_DIAGNOSIS_PIPELINE_HH

#include <functional>
#include <optional>

#include "act/weight_store.hh"
#include "diagnosis/postprocess.hh"
#include "faults/weight_guard.hh"
#include "nn/trainer.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

namespace act
{

/**
 * Source of execution traces for the offline phases. The default
 * (an empty function) records the workload directly; the campaign
 * runner plugs in its on-disk trace cache here so identical
 * (workload, params) executions are generated only once.
 */
using TraceProvider =
    std::function<Trace(const Workload &, const WorkloadParams &)>;

/** Offline-training parameters (Section III-B). */
struct OfflineTrainingConfig
{
    std::size_t traces = 10;          //!< Correct executions to analyse.
    std::uint64_t seed_base = 100;    //!< Seeds seed_base .. +traces-1.
    std::size_t sequence_length = 3;  //!< N.
    std::size_t hidden_neurons = 10;  //!< h (<= M).
    std::size_t max_examples = 60000; //!< Dataset cap (subsampled).
    TrainerConfig trainer;
    std::uint64_t rng_seed = 0xac1;

    /**
     * Loads whose dependences are withheld from training — the "new
     * code" methodology of Figure 7(b) and Table VI: sequences
     * containing any dependence of these loads never reach the
     * trainer.
     */
    std::vector<Pc> exclude_load_pcs;

    /**
     * Specialise weights per thread (Section III-B: "we use the same
     * topology for each thread. However, the weights can be different
     * across threads"): after training the shared base network, each
     * thread's copy is fine-tuned on its own sequences.
     */
    bool per_thread_weights = false;

    /** Fine-tuning epochs per thread when per_thread_weights is set. */
    std::size_t per_thread_epochs = 40;

    /**
     * Ensemble members to train (K). 1 — the default — trains the
     * single network the paper describes. With K > 1, members 1..K-1
     * are trained on the same dataset from independent seeds (their
     * own weight initialisation and example order), producing the
     * diverse-but-agreeing voters the online quorum needs. The online
     * module must be configured with the same member count.
     */
    std::size_t ensemble_members = 1;

    /** Trace source for the training runs (empty = record directly). */
    TraceProvider trace_provider;
};

/** Output of offline training. */
struct TrainedModel
{
    Topology topology;
    std::vector<double> weights; //!< Shared base weights.
    TrainResult training;
    std::size_t dependence_count = 0; //!< RAW deps across the traces.
    std::size_t example_count = 0;

    /** Per-thread specialised weights (per_thread_weights only). */
    std::unordered_map<ThreadId, std::vector<double>> per_thread;

    /**
     * Extra ensemble member weights (index 0 = member 1), trained from
     * independent seeds. Empty when ensemble_members is 1.
     */
    std::vector<std::vector<double>> member_weights;
};

/**
 * Build the binary-resident weight table for @p threads: per-thread
 * specialised weights where the model has them, the shared base
 * weights otherwise.
 */
WeightStore buildWeightStore(const TrainedModel &model,
                             std::uint32_t threads);

/**
 * Analyse correct-execution traces of @p workload and train the
 * network (the OpenCV step of Figure 4(a)).
 */
TrainedModel offlineTrain(const Workload &workload,
                          DependenceEncoder &encoder,
                          const OfflineTrainingConfig &config);

/**
 * Replay @p trace through the cache model and return the dependence
 * sequences exactly as an online AM would form them (including losses
 * from evictions and clean transfers). Used to build the Correct Set
 * so pruning sees the same sequence population the Debug Buffer logs.
 */
std::vector<DependenceSequence> collectCacheSequences(
    const Trace &trace, const MemSystemConfig &mem_config,
    std::size_t sequence_length);

/** Everything diagnoseFailure needs. */
struct DiagnosisSetup
{
    OfflineTrainingConfig training;
    SystemConfig system;
    std::size_t postmortem_traces = 20; //!< Correct runs for pruning.
    std::uint64_t postmortem_seed_base = 500;
    std::uint64_t failure_seed = 999;
    std::uint32_t scale = 1;

    /**
     * Trace source for the failure and postmortem runs (empty = record
     * directly). The training phase has its own provider inside
     * `training`.
     */
    TraceProvider trace_provider;

    /**
     * Applied to the binary-resident weight table after it is built
     * and before the production run loads from it (empty = untouched).
     * The resilience campaign corrupts stored weights here; the ACT
     * Modules must quarantine what comes out.
     */
    std::function<void(WeightStore &)> weight_store_hook;

    /**
     * Selective weight protection. When enabled, a WeightGuard is
     * built from the *clean* store — after training, before
     * weight_store_hook corrupts it, mirroring a deployment that
     * computes checksums at patch time — and wired into the production
     * run's modules so flipped stored bits are repaired at thread
     * start instead of quarantined.
     */
    WeightProtectionConfig protection;
};

/** Outcome of a full diagnosis. */
struct DiagnosisResult
{
    DiagnosisReport report;
    TrainedModel model;
    SystemStats run_stats;

    /** Was the root-cause sequence in the Debug Buffer at failure? */
    bool root_logged = false;

    /** Debug Buffer position (0 = newest) of the root cause. */
    std::optional<std::size_t> debug_position;

    /** 1-based post-filter rank of the root cause (sequence count). */
    std::optional<std::size_t> sequence_rank;

    /** Rank in distinct final dependences (what Table V reports). */
    std::optional<std::size_t> rank;
};

/**
 * Run the whole Figure 1 loop on a bug workload: offline training,
 * one failing production run on the simulated machine, postmortem
 * correct runs, pruning, ranking.
 */
DiagnosisResult diagnoseFailure(const Workload &workload,
                                const DiagnosisSetup &setup);

/** A DiagnosisSetup with Table III defaults. */
DiagnosisSetup defaultDiagnosisSetup();

} // namespace act

#endif // ACT_DIAGNOSIS_PIPELINE_HH
