/**
 * @file
 * Programmer feedback (Section III-C): "If such case occurs and the
 * programmer, with the help of other approaches, is able to pinpoint
 * the invalid dependence sequence, the sequence can be fed to the
 * neural network (similar to offline training) as a negative example."
 *
 * This closes the loop for the one failure mode ACT cannot recover
 * from on its own — a buggy sequence the network calls valid. The
 * confirmed-invalid sequences are mixed into a refresher training pass
 * over the existing weights and the updated weights are patched back
 * into the per-thread store.
 */

#ifndef ACT_DIAGNOSIS_FEEDBACK_HH
#define ACT_DIAGNOSIS_FEEDBACK_HH

#include <vector>

#include "act/weight_store.hh"
#include "deps/encoder.hh"
#include "diagnosis/pipeline.hh"

namespace act
{

/** Knobs of the feedback refresher. */
struct FeedbackConfig
{
    /** Repetitions of each confirmed-invalid example per epoch. */
    std::size_t negative_weight = 8;

    /** Refresher epochs over the mixed dataset. */
    std::size_t epochs = 60;

    double learning_rate = 0.2;

    /** Positive examples re-derived from this many correct traces. */
    std::size_t refresher_traces = 4;
    std::uint64_t refresher_seed_base = 700;
};

/** Outcome of one feedback application. */
struct FeedbackResult
{
    /** Sequences the network now classifies as invalid. */
    std::size_t fixed = 0;

    /** Sequences it still accepts (needs more feedback). */
    std::size_t still_valid = 0;

    /** Residual error on the refresher positives. */
    double positive_error = 0.0;

    std::vector<double> weights; //!< Updated flat weight vector.
};

/**
 * Teach @p model that @p confirmed_invalid sequences are negative.
 *
 * The refresher mixes the confirmed sequences (repeated, so a handful
 * of examples can move the decision boundary) with fresh positive
 * examples from correct runs of @p workload, so the network does not
 * forget the valid behaviour while learning the correction.
 *
 * @return Updated weights plus verification counts.
 */
FeedbackResult applyNegativeFeedback(
    const Workload &workload, const TrainedModel &model,
    DependenceEncoder &encoder,
    const std::vector<DependenceSequence> &confirmed_invalid,
    const FeedbackConfig &config = {});

/**
 * Convenience: apply feedback and patch every thread's weights in
 * @p store with the result.
 */
FeedbackResult applyNegativeFeedback(
    const Workload &workload, const TrainedModel &model,
    DependenceEncoder &encoder,
    const std::vector<DependenceSequence> &confirmed_invalid,
    WeightStore &store, const FeedbackConfig &config = {});

} // namespace act

#endif // ACT_DIAGNOSIS_FEEDBACK_HH
