#include "diagnosis/postprocess.hh"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

namespace act
{

std::optional<std::size_t>
DiagnosisReport::rankOf(const RawDependence &root) const
{
    for (std::size_t i = 0; i < ranked.size(); ++i) {
        if (!ranked[i].sequence.deps.empty() &&
            ranked[i].sequence.deps.back() == root) {
            return i + 1;
        }
    }
    for (std::size_t i = 0; i < ranked.size(); ++i) {
        for (const auto &dep : ranked[i].sequence.deps) {
            if (dep == root)
                return i + 1;
        }
    }
    return std::nullopt;
}

std::optional<std::size_t>
DiagnosisReport::dependenceRankOf(const RawDependence &root) const
{
    std::unordered_map<std::uint64_t, bool> seen;
    std::size_t distinct = 0;
    for (const auto &candidate : ranked) {
        if (candidate.sequence.deps.empty())
            continue;
        const RawDependence &final_dep = candidate.sequence.deps.back();
        if (seen.try_emplace(final_dep.key(), true).second)
            ++distinct;
        if (final_dep == root)
            return distinct;
    }
    return std::nullopt;
}

std::string
DiagnosisReport::toString(std::size_t top_k) const
{
    std::string out;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "debug entries: %zu (distinct %zu), pruned %zu "
                  "(%.0f%%), candidates %zu\n",
                  raw_entries, distinct_entries, pruned,
                  filterFraction() * 100.0, ranked.size());
    out += line;
    for (std::size_t i = 0; i < std::min(top_k, ranked.size()); ++i) {
        const RankedSequence &r = ranked[i];
        std::snprintf(line, sizeof(line),
                      "  #%zu matched=%zu output=%+.3f %s\n", i + 1,
                      r.matched, r.output,
                      r.sequence.toString().c_str());
        out += line;
    }
    return out;
}

DiagnosisReport
postprocess(const std::vector<DebugEntry> &entries,
            const CorrectSet &correct_set,
            const PostprocessOptions &options)
{
    DiagnosisReport report;
    report.raw_entries = entries.size();

    // De-duplicate identical sequences, keeping the most negative
    // output each produced.
    std::unordered_map<std::uint64_t, RankedSequence> distinct;
    for (const auto &entry : entries) {
        const std::uint64_t key = entry.sequence.key();
        auto [it, inserted] = distinct.try_emplace(
            key, RankedSequence{entry.sequence, entry.output, 0});
        if (!inserted)
            it->second.output = std::min(it->second.output, entry.output);
    }
    report.distinct_entries = distinct.size();

    // Prune everything the Correct Set certifies, then score the rest.
    for (auto &[key, candidate] : distinct) {
        const bool exact = correct_set.contains(candidate.sequence);
        const bool by_dependence =
            options.prune_final_dependence &&
            !candidate.sequence.deps.empty() &&
            correct_set.containsDependence(
                candidate.sequence.deps.back());
        if (exact || by_dependence) {
            ++report.pruned;
            continue;
        }
        candidate.matched = correct_set.matchedPrefix(candidate.sequence);
        report.ranked.push_back(std::move(candidate));
    }

    std::sort(report.ranked.begin(), report.ranked.end(),
              [](const RankedSequence &a, const RankedSequence &b) {
                  if (a.matched != b.matched)
                      return a.matched > b.matched;
                  if (a.output != b.output)
                      return a.output < b.output;
                  return a.sequence.key() < b.sequence.key();
              });
    return report;
}

} // namespace act
