/**
 * @file
 * Offline postprocessing of the Debug Buffer (Section III-D): pruning
 * against the Correct Set, then ranking the survivors by matched
 * prefix length with the most-negative network output breaking ties.
 */

#ifndef ACT_DIAGNOSIS_POSTPROCESS_HH
#define ACT_DIAGNOSIS_POSTPROCESS_HH

#include <optional>
#include <string>
#include <vector>

#include "act/buffers.hh"
#include "diagnosis/correct_set.hh"

namespace act
{

/** One ranked root-cause candidate. */
struct RankedSequence
{
    DependenceSequence sequence;
    double output = 0.0;       //!< Most negative NN output observed.
    std::size_t matched = 0;   //!< Matched prefix dependences.
};

/** Result of pruning + ranking. */
struct DiagnosisReport
{
    /** Survivors, best candidate first. */
    std::vector<RankedSequence> ranked;

    std::size_t raw_entries = 0;      //!< Debug Buffer entries given.
    std::size_t distinct_entries = 0; //!< After de-duplication.
    std::size_t pruned = 0;           //!< Removed by the Correct Set.

    /** Fraction of distinct entries the pruning removed. */
    double
    filterFraction() const
    {
        if (distinct_entries == 0)
            return 0.0;
        return static_cast<double>(pruned) /
               static_cast<double>(distinct_entries);
    }

    /**
     * 1-based rank of the first candidate whose final dependence is
     * @p root (falling back to containment anywhere in the sequence);
     * nullopt when the root cause is absent.
     */
    std::optional<std::size_t> rankOf(const RawDependence &root) const;

    /**
     * Rank counted in *distinct final dependences*: sequences that end
     * in the same dependence are one finding to the programmer walking
     * the list top-down, so this is the number of distinct suspect
     * dependences inspected up to and including the root cause.
     */
    std::optional<std::size_t> dependenceRankOf(
        const RawDependence &root) const;

    /** Human-readable top-k listing for the examples. */
    std::string toString(std::size_t top_k = 5) const;
};

/** Pruning behaviour knobs. */
struct PostprocessOptions
{
    /**
     * Also prune a flagged sequence when its *final* dependence
     * terminated some correct sequence, even if the surrounding
     * context never recurred verbatim. Rare-but-legitimate
     * communication reappears in the postmortem traces in ever
     * different contexts; without this refinement the exact-sequence
     * pruning of Section III-D leaves most of it in the candidate
     * list. Caveat: a purely context-dependent bug (a dependence that
     * is valid in one position and buggy in another, Figure 2(c)'s
     * I1->J2 shape) needs this turned off.
     */
    bool prune_final_dependence = true;
};

/**
 * Run the Section III-D postprocessing.
 *
 * @param entries     Debug Buffer contents (logging order).
 * @param correct_set Sequences from correct executions.
 * @param options     Pruning refinements.
 */
DiagnosisReport postprocess(const std::vector<DebugEntry> &entries,
                            const CorrectSet &correct_set,
                            const PostprocessOptions &options = {});

} // namespace act

#endif // ACT_DIAGNOSIS_POSTPROCESS_HH
