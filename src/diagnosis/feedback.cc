#include "diagnosis/feedback.hh"

#include "common/logging.hh"

namespace act
{

FeedbackResult
applyNegativeFeedback(const Workload &workload, const TrainedModel &model,
                      DependenceEncoder &encoder,
                      const std::vector<DependenceSequence> &confirmed_invalid,
                      const FeedbackConfig &config)
{
    ACT_ASSERT(!confirmed_invalid.empty());
    const std::size_t sequence_length = confirmed_invalid.front().length();

    MlpNetwork network(model.topology);
    network.setWeights(model.weights);

    // Refresher positives from fresh correct runs.
    const InputGenerator generator(sequence_length);
    Dataset refresher;
    for (std::size_t i = 0; i < config.refresher_traces; ++i) {
        WorkloadParams params;
        params.seed = config.refresher_seed_base + i;
        const Trace trace = workload.record(params);
        refresher.merge(
            generator.buildDataset(trace, encoder, /*with_negatives=*/true));
    }

    // The confirmed-invalid sequences, up-weighted.
    Dataset corrections;
    for (const auto &sequence : confirmed_invalid) {
        ACT_ASSERT(sequence.length() == sequence_length);
        for (std::size_t r = 0; r < config.negative_weight; ++r) {
            corrections.add(
                Example{encoder.encodeSequence(sequence), 0.0});
        }
    }

    Dataset mixed = refresher;
    mixed.merge(corrections);

    Rng rng(0xfeedbac);
    TrainerConfig trainer;
    trainer.learning_rate = config.learning_rate;
    trainer.max_epochs = config.epochs;
    trainer.target_error = 0.0;
    trainer.patience = config.epochs;
    trainNetwork(network, mixed, trainer, rng);

    FeedbackResult result;
    for (const auto &sequence : confirmed_invalid) {
        if (network.predictValid(encoder.encodeSequence(sequence)))
            ++result.still_valid;
        else
            ++result.fixed;
    }
    result.positive_error = evaluateFalseInvalidRate(network, refresher);
    result.weights = network.weights();
    return result;
}

FeedbackResult
applyNegativeFeedback(const Workload &workload, const TrainedModel &model,
                      DependenceEncoder &encoder,
                      const std::vector<DependenceSequence> &confirmed_invalid,
                      WeightStore &store, const FeedbackConfig &config)
{
    FeedbackResult result = applyNegativeFeedback(
        workload, model, encoder, confirmed_invalid, config);
    store.setAll(workload.threadCount(), result.weights);
    return result;
}

} // namespace act
