#include "diagnosis/pipeline.hh"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.hh"
#include "telemetry/metrics.hh"
#include "telemetry/spans.hh"

namespace act
{

namespace
{

/** Record @p workload via the provider when set, directly otherwise. */
Trace
obtainTrace(const TraceProvider &provider, const Workload &workload,
            const WorkloadParams &params)
{
    return provider ? provider(workload, params) : workload.record(params);
}

} // namespace

TrainedModel
offlineTrain(const Workload &workload, DependenceEncoder &encoder,
             const OfflineTrainingConfig &config)
{
    telemetry::ScopedSpan span("diagnosis.offline_train", "diagnosis");
    span.annotate(telemetry::arg("workload", workload.name()));

    TrainedModel model;
    InputGenerator generator(config.sequence_length);

    const std::unordered_set<Pc> excluded(config.exclude_load_pcs.begin(),
                                          config.exclude_load_pcs.end());
    const auto touches_excluded = [&](const DependenceSequence &seq) {
        for (const auto &dep : seq.deps) {
            if (excluded.count(dep.load_pc) != 0)
                return true;
        }
        return false;
    };

    Dataset data;
    std::unordered_map<ThreadId, Dataset> per_thread_data;
    for (std::size_t i = 0; i < config.traces; ++i) {
        WorkloadParams params;
        params.seed = config.seed_base + i;
        const Trace trace =
            obtainTrace(config.trace_provider, workload, params);
        GeneratedSequences sequences = generator.process(trace);
        model.dependence_count += sequences.dependence_count;
        if (!excluded.empty()) {
            // "New code" methodology (Fig. 7(b), Table VI): sequences
            // touching the excluded function never reach the trainer.
            // (The tid vector is only consumed below when exclusion is
            // off, so it needs no matching erase.)
            std::erase_if(sequences.positives, touches_excluded);
            std::erase_if(sequences.negatives, touches_excluded);
        } else if (config.per_thread_weights) {
            for (std::size_t s = 0; s < sequences.positives.size(); ++s) {
                per_thread_data[sequences.positive_tids[s]].add(Example{
                    encoder.encodeSequence(sequences.positives[s]), 1.0});
            }
            for (std::size_t s = 0; s < sequences.negatives.size(); ++s) {
                per_thread_data[sequences.negative_tids[s]].add(Example{
                    encoder.encodeSequence(sequences.negatives[s]), 0.0});
            }
        }
        data.merge(InputGenerator::toDataset(sequences, encoder));
    }

    Rng rng(config.rng_seed);
    if (data.size() > config.max_examples) {
        data.shuffle(rng);
        Dataset capped;
        for (std::size_t i = 0; i < config.max_examples; ++i)
            capped.add(data[i]);
        data = std::move(capped);
    }
    model.example_count = data.size();

    model.topology = Topology{
        config.sequence_length * encoder.width(), config.hidden_neurons};
    MlpNetwork network(model.topology, rng);
    model.training = trainNetwork(network, data, config.trainer, rng);
    model.weights = network.weights();

    // Ensemble extras: one more network per member, trained on the
    // same dataset from an independent seed (its own initialisation
    // and example order). Diversity comes entirely from the seeds —
    // the members see the same ground truth, so they agree on clean
    // inputs and disagree mainly where a perturbed weight set (or a
    // genuinely ambiguous sequence) pulls one of them off.
    for (std::size_t m = 1; m < config.ensemble_members; ++m) {
        Rng member_rng(hashCombine(config.rng_seed, 0xe5e00 + m));
        Dataset member_data = data;
        member_data.shuffle(member_rng);
        MlpNetwork member(model.topology, member_rng);
        trainNetwork(member, member_data, config.trainer, member_rng);
        model.member_weights.push_back(member.weights());
    }

    // Per-thread specialisation: fine-tune a copy of the base network
    // on each thread's own sequences (Section III-B).
    if (config.per_thread_weights) {
        for (auto &[tid, thread_data] : per_thread_data) {
            MlpNetwork specialised(model.topology);
            specialised.setWeights(model.weights);
            TrainerConfig fine = config.trainer;
            fine.max_epochs = config.per_thread_epochs;
            fine.patience = config.per_thread_epochs;
            Rng thread_rng(hashCombine(config.rng_seed, tid));
            if (thread_data.size() > config.max_examples / 4) {
                thread_data.shuffle(thread_rng);
                Dataset capped;
                for (std::size_t i = 0; i < config.max_examples / 4; ++i)
                    capped.add(thread_data[i]);
                thread_data = std::move(capped);
            }
            trainNetwork(specialised, thread_data, fine, thread_rng);
            model.per_thread[tid] = specialised.weights();
        }
    }
    return model;
}

WeightStore
buildWeightStore(const TrainedModel &model, std::uint32_t threads)
{
    WeightStore store(model.topology);
    for (ThreadId tid = 0; tid < threads; ++tid) {
        const auto it = model.per_thread.find(tid);
        store.set(tid,
                  it != model.per_thread.end() ? it->second
                                               : model.weights);
        for (std::size_t m = 0; m < model.member_weights.size(); ++m)
            store.setMember(tid, m + 1, model.member_weights[m]);
    }
    return store;
}

std::vector<DependenceSequence>
collectCacheSequences(const Trace &trace, const MemSystemConfig &mem_config,
                      std::size_t sequence_length)
{
    MemorySystem memory(mem_config);
    std::unordered_map<ThreadId, std::deque<RawDependence>> windows;
    std::vector<DependenceSequence> sequences;

    for (const auto &event : trace.events()) {
        if (!event.isMemory())
            continue;
        const CoreId core = event.tid % mem_config.cores;
        const MemAccess access = memory.access(core, event);
        if (event.kind != EventKind::kLoad || event.stack ||
            !access.last_writer) {
            continue;
        }
        const RawDependence dep{access.last_writer->pc, event.pc,
                                access.last_writer->tid != event.tid};
        auto &window = windows[event.tid];
        window.push_back(dep);
        if (window.size() > sequence_length)
            window.pop_front();
        if (window.size() == sequence_length) {
            DependenceSequence seq;
            seq.deps.assign(window.begin(), window.end());
            sequences.push_back(std::move(seq));
        }
    }
    return sequences;
}

DiagnosisSetup
defaultDiagnosisSetup()
{
    return DiagnosisSetup{};
}

DiagnosisResult
diagnoseFailure(const Workload &workload, const DiagnosisSetup &setup)
{
    static const telemetry::Counter diagnoses =
        telemetry::MetricsRegistry::global().counter("diagnosis.runs");
    diagnoses.inc();
    telemetry::ScopedSpan span("diagnosis", "diagnosis");
    span.annotate(telemetry::arg("workload", workload.name()));

    DiagnosisResult result;
    PairEncoder encoder;

    // 1. Offline training on correct executions (Figure 4(a)).
    result.model = offlineTrain(workload, encoder, setup.training);

    // 2. Production run with the failure triggered, on the full
    //    simulated machine with per-core ACT Modules.
    SystemConfig sys_config = setup.system;
    sys_config.act_enabled = true;
    sys_config.act.sequence_length = setup.training.sequence_length;
    sys_config.act.topology = result.model.topology;
    // The online modules must vote over exactly the member sets that
    // were trained; keep the counts in lockstep so a sweep can vary
    // one knob.
    if (setup.training.ensemble_members > 1)
        sys_config.act.ensemble.members = setup.training.ensemble_members;

    WeightStore store =
        buildWeightStore(result.model, workload.threadCount());

    // Guard before corruption: checksums and shadow copies come from
    // the clean table (a deployment computes them when it patches the
    // binary), then the hook plays deployment-time bit rot on top.
    std::optional<WeightGuard> guard;
    if (setup.protection.enabled) {
        guard.emplace(WeightGuard::build(store, setup.protection));
        sys_config.act.protector = &*guard;
    }
    if (setup.weight_store_hook)
        setup.weight_store_hook(store);

    System system(sys_config, encoder, store);
    WorkloadParams failure_params;
    failure_params.seed = setup.failure_seed;
    failure_params.trigger_failure = true;
    failure_params.scale = setup.scale;
    {
        telemetry::ScopedSpan failure_span("diagnosis.failure_run",
                                           "diagnosis");
        const Trace failure_trace =
            obtainTrace(setup.trace_provider, workload, failure_params);
        system.run(failure_trace);
    }
    result.run_stats = system.stats();

    // Where does the root cause sit in the Debug Buffer?
    const RawDependence root = workload.buggyDependence();
    const std::vector<DebugEntry> entries = system.collectDebugEntries();
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const auto &entry = entries[entries.size() - 1 - i];
        if (!entry.sequence.deps.empty() &&
            entry.sequence.deps.back() == root) {
            result.root_logged = true;
            result.debug_position = i;
            break;
        }
    }

    // 3. Postmortem: a few more *correct* runs build the Correct Set —
    //    the failure is never reproduced (Section III-D). The replays
    //    go through the same cache model the hardware used so the
    //    sequence populations match.
    CorrectSet correct;
    {
        telemetry::ScopedSpan postmortem_span("diagnosis.postmortem",
                                              "diagnosis");
        for (std::size_t i = 0; i < setup.postmortem_traces; ++i) {
            WorkloadParams params;
            params.seed = setup.postmortem_seed_base + i;
            params.scale = setup.scale;
            const Trace trace =
                obtainTrace(setup.trace_provider, workload, params);
            correct.addSequences(collectCacheSequences(
                trace, sys_config.mem, setup.training.sequence_length));
        }
    }

    {
        telemetry::ScopedSpan postprocess_span("diagnosis.postprocess",
                                               "diagnosis");
        result.report = postprocess(entries, correct);
    }
    result.sequence_rank = result.report.rankOf(root);
    result.rank = result.report.dependenceRankOf(root);
    if (!result.rank)
        result.rank = result.sequence_rank;
    return result;
}

} // namespace act
