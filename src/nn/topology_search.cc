#include "nn/topology_search.hh"

#include <cstdio>

#include "common/logging.hh"

namespace act
{

TopologySearchResult
searchTopology(const DatasetFactory &factory,
               const TopologySearchConfig &config)
{
    ACT_ASSERT(config.min_inputs >= 1 && config.max_inputs <= kMaxFanIn);
    ACT_ASSERT(config.min_hidden >= 1 && config.max_hidden <= kMaxFanIn);

    TopologySearchResult result;
    Rng rng(config.seed);

    for (std::size_t n = config.min_inputs; n <= config.max_inputs; ++n) {
        const auto [train_set, validation_set] = factory(n);
        if (train_set.empty())
            continue;
        // The dataset fixes the true input width (sequence length times
        // encoder features per dependence); skip widths beyond the
        // hardware fan-in.
        const std::size_t width = train_set.inputWidth();
        if (width == 0 || width > kMaxFanIn)
            continue;
        for (std::size_t h = config.min_hidden; h <= config.max_hidden;
             ++h) {
            TopologyCandidate candidate;
            candidate.topology = Topology{width, h};

            Rng net_rng = rng.fork(n * 100 + h);
            MlpNetwork network(candidate.topology, net_rng);
            candidate.training = trainNetwork(network, train_set,
                                              config.trainer, net_rng);
            candidate.validation_error =
                validation_set.empty()
                    ? candidate.training.final_error
                    : evaluateNetwork(network, validation_set);
            result.candidates.push_back(candidate);

            const bool better =
                candidate.validation_error < result.best_error - 1e-12;
            const bool tie_cheaper =
                candidate.validation_error < result.best_error + 1e-12 &&
                (h < result.best.hidden ||
                 (h == result.best.hidden && n < result.best.inputs));
            if (result.candidates.size() == 1 || better || tie_cheaper) {
                result.best = candidate.topology;
                result.best_error = candidate.validation_error;
            }
        }
    }
    return result;
}

std::string
topologyToString(const Topology &topology)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%zux%zux1", topology.inputs,
                  topology.hidden);
    return buf;
}

} // namespace act
