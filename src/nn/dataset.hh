/**
 * @file
 * Training / evaluation datasets for the dependence-sequence networks.
 */

#ifndef ACT_NN_DATASET_HH
#define ACT_NN_DATASET_HH

#include <cstddef>
#include <vector>

#include "common/rng.hh"

namespace act
{

/**
 * One supervised example: an encoded RAW-dependence sequence and its
 * validity label (1.0 = valid / positive, 0.0 = invalid / negative).
 */
struct Example
{
    std::vector<double> inputs;
    double label = 1.0;

    bool positive() const { return label >= 0.5; }
};

/**
 * A bag of examples with the operations the trainer needs.
 */
class Dataset
{
  public:
    void add(Example example) { examples_.push_back(std::move(example)); }

    const std::vector<Example> &examples() const { return examples_; }

    std::size_t size() const { return examples_.size(); }
    bool empty() const { return examples_.empty(); }

    const Example &operator[](std::size_t i) const { return examples_[i]; }

    std::size_t positiveCount() const;
    std::size_t negativeCount() const { return size() - positiveCount(); }

    /** Number of inputs per example (0 when empty). */
    std::size_t inputWidth() const
    {
        return empty() ? 0 : examples_.front().inputs.size();
    }

    /** Fisher-Yates shuffle driven by the supplied generator. */
    void shuffle(Rng &rng);

    /**
     * Split off the last @p fraction of the examples into a second
     * dataset (caller should shuffle first for a random split).
     */
    Dataset splitTail(double fraction);

    /** Append all examples of @p other. */
    void merge(const Dataset &other);

  private:
    std::vector<Example> examples_;
};

} // namespace act

#endif // ACT_NN_DATASET_HH
