/**
 * @file
 * One-hidden-layer sigmoid multilayer perceptron.
 *
 * This is the software twin of the partially configurable hardware
 * network of Section IV-A: a topology i x h x 1 with i inputs
 * (1 <= i <= M), h hidden neurons (1 <= h <= M) and a single output
 * neuron. Learning is plain stochastic back-propagation (Section II-A)
 * with the update rule the paper quotes:
 *     err = o * (1 - o) * (t - o)        (sigmoid units)
 *     W_j <- W_j + eta * err * a_j
 * The flat weight vector layout matches the hardware weight-register
 * file accessed by the ldwt/stwt instructions, so software-trained
 * weights can be loaded into the hardware model verbatim.
 */

#ifndef ACT_NN_NETWORK_HH
#define ACT_NN_NETWORK_HH

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hh"

namespace act
{

/** Maximum inputs / hidden neurons supported by the AM hardware. */
inline constexpr std::size_t kMaxFanIn = 10;

/** Logistic sigmoid. */
double sigmoid(double x);

/** Network shape: inputs x hidden x 1. */
struct Topology
{
    std::size_t inputs = 3;
    std::size_t hidden = 5;

    bool
    valid() const
    {
        return inputs >= 1 && inputs <= kMaxFanIn && hidden >= 1 &&
               hidden <= kMaxFanIn;
    }

    bool operator==(const Topology &) const = default;
};

/**
 * The MLP itself.
 *
 * Weight indexing (the "weight register file"):
 *   hidden neuron k (0-based) occupies slots
 *       [k*(inputs+1), (k+1)*(inputs+1)) as [bias, w_1 .. w_inputs];
 *   the output neuron follows with [bias, w_1 .. w_hidden].
 */
class MlpNetwork
{
  public:
    /** Build with small random weights from @p rng. */
    MlpNetwork(Topology topology, Rng &rng);

    /** Build with all-zero weights (the "default weights" of §IV-C). */
    explicit MlpNetwork(Topology topology);

    const Topology &topology() const { return topology_; }

    /** Total number of weight registers used. */
    std::size_t weightCount() const { return weights_.size(); }

    /**
     * Forward pass.
     *
     * @param inputs Exactly topology().inputs values.
     * @return Output neuron activation in (0, 1).
     */
    double infer(std::span<const double> inputs) const;

    /**
     * Signed confidence: infer(inputs) - 0.5.
     *
     * Positive = predicted valid; the paper's ranking step uses "the
     * most negative neural network output" as a tie break, which maps
     * to the most negative confidence here.
     */
    double confidence(std::span<const double> inputs) const;

    /** Classify: true = the dependence sequence is predicted valid. */
    bool predictValid(std::span<const double> inputs) const
    {
        return infer(inputs) >= 0.5;
    }

    /**
     * One online back-propagation step.
     *
     * @param inputs Example inputs.
     * @param target Desired output (1 valid, 0 invalid).
     * @param learning_rate Step size (the paper uses 0.2).
     * @return Output before the update.
     */
    double train(std::span<const double> inputs, double target,
                 double learning_rate);

    /** Read the flat weight vector (ldwt view). */
    const std::vector<double> &weights() const { return weights_; }

    /** Replace the flat weight vector (stwt view). */
    void setWeights(std::vector<double> weights);

    /** Read a single weight register. @pre index < weightCount(). */
    double weightAt(std::size_t index) const;

    /** Write a single weight register. @pre index < weightCount(). */
    void setWeightAt(std::size_t index, double value);

  private:
    /** Compute hidden activations into @p hidden_out, return output. */
    double forward(std::span<const double> inputs,
                   std::vector<double> &hidden_out) const;

    std::size_t hiddenBase(std::size_t k) const
    {
        return k * (topology_.inputs + 1);
    }

    std::size_t outputBase() const
    {
        return topology_.hidden * (topology_.inputs + 1);
    }

    Topology topology_;
    std::vector<double> weights_;

    /** Scratch buffer reused across train() calls. */
    mutable std::vector<double> hidden_scratch_;
};

} // namespace act

#endif // ACT_NN_NETWORK_HH
