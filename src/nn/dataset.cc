#include "nn/dataset.hh"

#include <algorithm>

#include "common/logging.hh"

namespace act
{

std::size_t
Dataset::positiveCount() const
{
    return static_cast<std::size_t>(
        std::count_if(examples_.begin(), examples_.end(),
                      [](const Example &e) { return e.positive(); }));
}

void
Dataset::shuffle(Rng &rng)
{
    for (std::size_t i = examples_.size(); i > 1; --i) {
        const std::size_t j = rng.next(i);
        std::swap(examples_[i - 1], examples_[j]);
    }
}

Dataset
Dataset::splitTail(double fraction)
{
    ACT_ASSERT(fraction >= 0.0 && fraction <= 1.0);
    const auto keep = static_cast<std::size_t>(
        static_cast<double>(examples_.size()) * (1.0 - fraction));
    Dataset tail;
    tail.examples_.assign(examples_.begin() + static_cast<long>(keep),
                          examples_.end());
    examples_.resize(keep);
    return tail;
}

void
Dataset::merge(const Dataset &other)
{
    examples_.insert(examples_.end(), other.examples_.begin(),
                     other.examples_.end());
}

} // namespace act
