/**
 * @file
 * Offline back-propagation trainer with early stopping.
 *
 * Plays the role of the OpenCV neural-network library [27] the paper
 * uses for initial offline training (Figure 4(a)).
 */

#ifndef ACT_NN_TRAINER_HH
#define ACT_NN_TRAINER_HH

#include <cstddef>

#include "nn/dataset.hh"
#include "nn/network.hh"

namespace act
{

/** Trainer knobs. */
struct TrainerConfig
{
    /** Back-propagation step size; the paper uses 0.2. */
    double learning_rate = 0.2;

    /** Upper bound on passes over the training set. */
    std::size_t max_epochs = 1200;

    /** Stop when the epoch misclassification rate drops this low. */
    double target_error = 0.0005;

    /** Epochs without improvement tolerated before stopping. */
    std::size_t patience = 200;

    /** Shuffle examples between epochs. */
    bool shuffle = true;
};

/** Outcome of a training run. */
struct TrainResult
{
    std::size_t epochs = 0;        //!< Epochs actually executed.
    double final_error = 1.0;      //!< Training misclassification rate.
    bool converged = false;        //!< Reached target_error.
};

/**
 * Train @p network on @p data.
 *
 * @param network Network to adjust in place.
 * @param data    Training examples (copied internally for shuffling).
 * @param config  Hyper-parameters.
 * @param rng     Source of shuffling randomness.
 */
TrainResult trainNetwork(MlpNetwork &network, const Dataset &data,
                         const TrainerConfig &config, Rng &rng);

/**
 * Misclassification rate of @p network on @p data
 * (fraction of examples whose 0.5-thresholded output is wrong).
 */
double evaluateNetwork(const MlpNetwork &network, const Dataset &data);

/** Misclassification rate restricted to positive examples. */
double evaluateFalseInvalidRate(const MlpNetwork &network,
                                const Dataset &data);

/** Misclassification rate restricted to negative examples. */
double evaluateFalseValidRate(const MlpNetwork &network,
                              const Dataset &data);

} // namespace act

#endif // ACT_NN_TRAINER_HH
