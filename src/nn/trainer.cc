#include "nn/trainer.hh"

#include <algorithm>

namespace act
{

namespace
{

double
errorOn(const MlpNetwork &network, const Dataset &data,
        bool positives, bool negatives)
{
    std::size_t considered = 0;
    std::size_t wrong = 0;
    for (const auto &example : data.examples()) {
        const bool is_positive = example.positive();
        if ((is_positive && !positives) || (!is_positive && !negatives))
            continue;
        ++considered;
        if (network.predictValid(example.inputs) != is_positive)
            ++wrong;
    }
    if (considered == 0)
        return 0.0;
    return static_cast<double>(wrong) / static_cast<double>(considered);
}

} // namespace

TrainResult
trainNetwork(MlpNetwork &network, const Dataset &data,
             const TrainerConfig &config, Rng &rng)
{
    TrainResult result;
    if (data.empty())
        return result;

    Dataset working = data;
    double best_error = 1.0;
    std::size_t stale_epochs = 0;

    for (std::size_t epoch = 0; epoch < config.max_epochs; ++epoch) {
        if (config.shuffle)
            working.shuffle(rng);

        std::size_t wrong = 0;
        for (const auto &example : working.examples()) {
            const double out = network.train(example.inputs, example.label,
                                             config.learning_rate);
            if ((out >= 0.5) != example.positive())
                ++wrong;
        }
        result.epochs = epoch + 1;
        result.final_error =
            static_cast<double>(wrong) / static_cast<double>(working.size());

        if (result.final_error <= config.target_error) {
            result.converged = true;
            break;
        }
        if (result.final_error + 1e-12 < best_error) {
            best_error = result.final_error;
            stale_epochs = 0;
        } else if (++stale_epochs >= config.patience) {
            break;
        }
    }
    return result;
}

double
evaluateNetwork(const MlpNetwork &network, const Dataset &data)
{
    return errorOn(network, data, true, true);
}

double
evaluateFalseInvalidRate(const MlpNetwork &network, const Dataset &data)
{
    return errorOn(network, data, true, false);
}

double
evaluateFalseValidRate(const MlpNetwork &network, const Dataset &data)
{
    return errorOn(network, data, false, true);
}

} // namespace act
