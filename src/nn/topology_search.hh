/**
 * @file
 * Topology search over the i x h x 1 design space.
 *
 * Section IV-A limits the hardware to at most M inputs and M hidden
 * neurons, "giving a search space of M^2 topologies"; Section VI-B
 * varies the number of RAW dependences per input (1..5) and hidden
 * neurons (1..10) and selects the topology with the lowest
 * misprediction rate. Because the dataset itself depends on the
 * sequence length N (= input count), the caller supplies a dataset
 * factory.
 */

#ifndef ACT_NN_TOPOLOGY_SEARCH_HH
#define ACT_NN_TOPOLOGY_SEARCH_HH

#include <functional>
#include <string>
#include <vector>

#include "nn/trainer.hh"

namespace act
{

/** Search configuration. */
struct TopologySearchConfig
{
    std::size_t min_inputs = 1;
    std::size_t max_inputs = 5;   //!< Paper: 1..5 dependences per input.
    std::size_t min_hidden = 1;
    std::size_t max_hidden = 10;  //!< Paper: 1..10 hidden neurons.
    TrainerConfig trainer;
    std::uint64_t seed = 0xac7;
};

/** One candidate's outcome. */
struct TopologyCandidate
{
    Topology topology;
    double validation_error = 1.0;
    TrainResult training;
};

/** Search result: the winning network plus the full sweep. */
struct TopologySearchResult
{
    Topology best;
    double best_error = 1.0;
    std::vector<TopologyCandidate> candidates;
};

/**
 * Produces (train, validation) dataset pair for a given sequence
 * length N; invoked once per candidate input width.
 */
using DatasetFactory =
    std::function<std::pair<Dataset, Dataset>(std::size_t n)>;

/**
 * Run the sweep and return the best topology.
 *
 * Ties are broken toward fewer hidden neurons, then fewer inputs
 * (cheaper hardware for equal accuracy).
 */
TopologySearchResult searchTopology(const DatasetFactory &factory,
                                    const TopologySearchConfig &config);

/** Render e.g. "3x5x1". */
std::string topologyToString(const Topology &topology);

} // namespace act

#endif // ACT_NN_TOPOLOGY_SEARCH_HH
