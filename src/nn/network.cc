#include "nn/network.hh"

#include <cmath>

#include "common/logging.hh"

namespace act
{

double
sigmoid(double x)
{
    return 1.0 / (1.0 + std::exp(-x));
}

MlpNetwork::MlpNetwork(Topology topology, Rng &rng)
    : topology_(topology)
{
    ACT_ASSERT(topology_.valid());
    const std::size_t count =
        topology_.hidden * (topology_.inputs + 1) + (topology_.hidden + 1);
    weights_.resize(count);
    for (auto &w : weights_)
        w = rng.uniform(-0.5, 0.5);
}

MlpNetwork::MlpNetwork(Topology topology)
    : topology_(topology)
{
    ACT_ASSERT(topology_.valid());
    const std::size_t count =
        topology_.hidden * (topology_.inputs + 1) + (topology_.hidden + 1);
    weights_.assign(count, 0.0);
}

double
MlpNetwork::forward(std::span<const double> inputs,
                    std::vector<double> &hidden_out) const
{
    ACT_ASSERT(inputs.size() == topology_.inputs);
    hidden_out.resize(topology_.hidden);
    for (std::size_t k = 0; k < topology_.hidden; ++k) {
        const std::size_t base = hiddenBase(k);
        double acc = weights_[base]; // bias (input a_0 == 1)
        for (std::size_t j = 0; j < topology_.inputs; ++j)
            acc += weights_[base + 1 + j] * inputs[j];
        hidden_out[k] = sigmoid(acc);
    }
    const std::size_t base = outputBase();
    double acc = weights_[base];
    for (std::size_t k = 0; k < topology_.hidden; ++k)
        acc += weights_[base + 1 + k] * hidden_out[k];
    return sigmoid(acc);
}

double
MlpNetwork::infer(std::span<const double> inputs) const
{
    return forward(inputs, hidden_scratch_);
}

double
MlpNetwork::confidence(std::span<const double> inputs) const
{
    return infer(inputs) - 0.5;
}

double
MlpNetwork::train(std::span<const double> inputs, double target,
                  double learning_rate)
{
    std::vector<double> &hidden = hidden_scratch_;
    const double out = forward(inputs, hidden);

    // Output neuron delta (sigmoid error form from Section II-A).
    const double out_delta = out * (1.0 - out) * (target - out);

    // Propagate to hidden layer before touching the output weights.
    const std::size_t obase = outputBase();
    std::vector<double> hidden_delta(topology_.hidden);
    for (std::size_t k = 0; k < topology_.hidden; ++k) {
        const double back = weights_[obase + 1 + k] * out_delta;
        hidden_delta[k] = hidden[k] * (1.0 - hidden[k]) * back;
    }

    // Update output neuron weights.
    weights_[obase] += learning_rate * out_delta; // bias, a_0 == 1
    for (std::size_t k = 0; k < topology_.hidden; ++k)
        weights_[obase + 1 + k] += learning_rate * out_delta * hidden[k];

    // Update hidden neuron weights.
    for (std::size_t k = 0; k < topology_.hidden; ++k) {
        const std::size_t base = hiddenBase(k);
        weights_[base] += learning_rate * hidden_delta[k];
        for (std::size_t j = 0; j < topology_.inputs; ++j)
            weights_[base + 1 + j] +=
                learning_rate * hidden_delta[k] * inputs[j];
    }
    return out;
}

void
MlpNetwork::setWeights(std::vector<double> weights)
{
    ACT_ASSERT(weights.size() == weights_.size());
    weights_ = std::move(weights);
}

double
MlpNetwork::weightAt(std::size_t index) const
{
    ACT_ASSERT(index < weights_.size());
    return weights_[index];
}

void
MlpNetwork::setWeightAt(std::size_t index, double value)
{
    ACT_ASSERT(index < weights_.size());
    weights_[index] = value;
}

} // namespace act
