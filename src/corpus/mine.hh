/**
 * @file
 * RAW-dependence site mining for the bug-injection corpus.
 *
 * LAVA finds injectable sites by tracing a correct execution and
 * looking for dead, uncomplicated data flows (DUAs) it can later wire
 * to an attack point. The corpus generator's analogue: record correct
 * executions of a base prediction kernel and harvest the inter-thread
 * RAW (store PC, load PC) pairs they exhibit. Each mined pair is a
 * communication site that demonstrably occurs in the wild — a variant
 * workload then re-stages that site inside a controlled phase harness
 * and perturbs its synchronisation, so the injected bug carries the
 * static signature of real kernel communication rather than made-up
 * addresses.
 *
 * Mining is deterministic (fixed seeds, sorted output) and memoized
 * per base kernel behind a mutex, so materialising hundreds of
 * variants of the same base records its probe traces exactly once.
 */

#ifndef ACT_CORPUS_MINE_HH
#define ACT_CORPUS_MINE_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace act::corpus
{

/** One mined inter-thread communication site. */
struct RawSite
{
    Pc store_pc = kInvalidPc; //!< Producer instruction in the base kernel.
    Pc load_pc = kInvalidPc;  //!< Consumer instruction in the base kernel.
    std::uint64_t count = 0;  //!< Dynamic occurrences across probe traces.

    bool operator==(const RawSite &) const = default;
};

/** Base kernels the corpus may mine (the concurrent prediction set). */
std::vector<std::string> corpusBaseNames();

/** True when @p base is a valid corpus base kernel. */
bool isCorpusBase(const std::string &base);

/**
 * Mine the inter-thread RAW sites of base kernel @p base from two
 * correct probe traces (fixed seeds). Pairs with store_pc == load_pc
 * are dropped; the result is sorted by (store_pc, load_pc) and
 * memoized for the process lifetime.
 *
 * @return The sorted site list; empty when @p base is unknown.
 */
const std::vector<RawSite> &mineRawSites(const std::string &base);

} // namespace act::corpus

#endif // ACT_CORPUS_MINE_HH
