#include "corpus/catalog.hh"

#include <cstdlib>
#include <sstream>

#include "telemetry/json.hh"

namespace act::corpus
{

namespace
{

using telemetry::JsonValue;

/**
 * Seeds are full 64-bit hashes; a JSON number (double) only holds 53
 * exact bits, so the seed travels as a decimal string. PCs and the
 * small parameters fit a double exactly and stay plain numbers.
 */
bool
getU64String(const JsonValue &obj, const char *key, std::uint64_t &out,
             std::string *error)
{
    const JsonValue *value = obj.find(key);
    if (value == nullptr || !value->isString()) {
        if (error != nullptr)
            *error = std::string("missing or non-string field '") + key +
                     "'";
        return false;
    }
    if (value->text.empty()) {
        if (error != nullptr)
            *error = std::string("empty numeric string field '") + key +
                     "'";
        return false;
    }
    for (const char c : value->text) {
        if (c < '0' || c > '9') {
            if (error != nullptr)
                *error = std::string("non-decimal character in '") + key +
                         "'";
            return false;
        }
    }
    char *end = nullptr;
    out = std::strtoull(value->text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' ||
        std::to_string(out) != value->text) {
        if (error != nullptr)
            *error = std::string("out-of-range value in '") + key + "'";
        return false;
    }
    return true;
}

bool
getNumber(const JsonValue &obj, const char *key, std::uint64_t &out,
          std::string *error)
{
    const JsonValue *value = obj.find(key);
    if (value == nullptr || !value->isNumber()) {
        if (error != nullptr)
            *error = std::string("missing or non-number field '") + key +
                     "'";
        return false;
    }
    out = value->asU64();
    return true;
}

bool
getString(const JsonValue &obj, const char *key, std::string &out,
          std::string *error)
{
    const JsonValue *value = obj.find(key);
    if (value == nullptr || !value->isString()) {
        if (error != nullptr)
            *error = std::string("missing or non-string field '") + key +
                     "'";
        return false;
    }
    out = value->text;
    return true;
}

const JsonValue *
getObject(const JsonValue &obj, const char *key, std::string *error)
{
    const JsonValue *value = obj.find(key);
    if (value == nullptr || !value->isObject()) {
        if (error != nullptr)
            *error = std::string("missing or non-object field '") + key +
                     "'";
        return nullptr;
    }
    return value;
}

} // namespace

std::string
catalogJson(const CorpusCatalog &catalog)
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"schema\": \"" << kCatalogSchema << "\",\n";
    out << "  \"name\": \"" << catalog.name << "\",\n";
    out << "  \"base_kernel\": \"" << catalog.base_kernel << "\",\n";
    out << "  \"bug_class\": \"" << catalog.bug_class << "\",\n";
    out << "  \"lens\": \"" << catalog.lens << "\",\n";
    out << "  \"seed\": \"" << catalog.seed << "\",\n";
    out << "  \"site\": {\"store_pc\": " << catalog.site_store_pc
        << ", \"load_pc\": " << catalog.site_load_pc << "},\n";
    out << "  \"root\": {\"store_pc\": " << catalog.root_store_pc
        << ", \"load_pc\": " << catalog.root_load_pc << "},\n";
    out << "  \"params\": {\"threads\": " << catalog.threads
        << ", \"phases\": " << catalog.phases
        << ", \"trigger_phase\": " << catalog.trigger_phase
        << ", \"victim\": " << catalog.victim << "}\n";
    out << "}\n";
    return out.str();
}

bool
parseCatalogJson(const std::string &json, CorpusCatalog &out,
                 std::string *error)
{
    const auto root = telemetry::parseJson(json, error);
    if (root == nullptr)
        return false;
    if (!root->isObject()) {
        if (error != nullptr)
            *error = "catalog root is not an object";
        return false;
    }

    CorpusCatalog catalog;
    std::string schema;
    if (!getString(*root, "schema", schema, error))
        return false;
    if (schema != kCatalogSchema) {
        if (error != nullptr)
            *error = "unknown catalog schema '" + schema + "'";
        return false;
    }
    if (!getString(*root, "name", catalog.name, error) ||
        !getString(*root, "base_kernel", catalog.base_kernel, error) ||
        !getString(*root, "bug_class", catalog.bug_class, error) ||
        !getString(*root, "lens", catalog.lens, error) ||
        !getU64String(*root, "seed", catalog.seed, error))
        return false;

    const JsonValue *site = getObject(*root, "site", error);
    if (site == nullptr ||
        !getNumber(*site, "store_pc", catalog.site_store_pc, error) ||
        !getNumber(*site, "load_pc", catalog.site_load_pc, error))
        return false;
    const JsonValue *root_pair = getObject(*root, "root", error);
    if (root_pair == nullptr ||
        !getNumber(*root_pair, "store_pc", catalog.root_store_pc,
                   error) ||
        !getNumber(*root_pair, "load_pc", catalog.root_load_pc, error))
        return false;

    const JsonValue *params = getObject(*root, "params", error);
    std::uint64_t threads = 0;
    std::uint64_t phases = 0;
    std::uint64_t trigger = 0;
    std::uint64_t victim = 0;
    if (params == nullptr ||
        !getNumber(*params, "threads", threads, error) ||
        !getNumber(*params, "phases", phases, error) ||
        !getNumber(*params, "trigger_phase", trigger, error) ||
        !getNumber(*params, "victim", victim, error))
        return false;
    catalog.threads = static_cast<std::uint32_t>(threads);
    catalog.phases = static_cast<std::uint32_t>(phases);
    catalog.trigger_phase = static_cast<std::uint32_t>(trigger);
    catalog.victim = static_cast<std::uint32_t>(victim);

    out = std::move(catalog);
    return true;
}

std::vector<Finding>
validateCatalog(const std::string &json)
{
    std::vector<Finding> findings;
    const auto reject = [&findings](const std::string &code,
                                    const std::string &message) {
        findings.push_back(
            makeFinding("catalog", code, Severity::kError, message));
    };

    CorpusCatalog catalog;
    std::string error;
    if (!parseCatalogJson(json, catalog, &error)) {
        reject("bad-json", error);
        return findings;
    }

    CorpusBugClass bug_class = CorpusBugClass::kReorderedSync;
    if (!parseCorpusBugClass(catalog.bug_class, bug_class)) {
        reject("unknown-class",
               "unknown bug class '" + catalog.bug_class + "'");
    } else if (catalog.lens != corpusLensName(bug_class)) {
        reject("lens-mismatch",
               "class '" + catalog.bug_class + "' pairs with lens '" +
                   corpusLensName(bug_class) + "', catalog claims '" +
                   catalog.lens + "'");
    }

    const auto pcOk = [](Pc pc) { return pc != 0 && pc != kInvalidPc; };
    if (!pcOk(catalog.site_store_pc) || !pcOk(catalog.site_load_pc) ||
        catalog.site_store_pc == catalog.site_load_pc)
        reject("bad-pc", "site PC pair is invalid or degenerate");
    if (!pcOk(catalog.root_store_pc) || !pcOk(catalog.root_load_pc) ||
        catalog.root_store_pc == catalog.root_load_pc)
        reject("bad-pc", "root PC pair is invalid or degenerate");

    if (catalog.threads < 2)
        reject("bad-params", "threads must be >= 2");
    if (catalog.phases < 2)
        reject("bad-params", "phases must be >= 2");
    if (catalog.trigger_phase + 1 >= catalog.phases)
        reject("bad-params",
               "trigger_phase must leave a successor phase");
    if (catalog.victim < 1 || catalog.victim >= catalog.threads)
        reject("bad-params", "victim must be a worker thread id");

    CorpusVariantDesc desc;
    if (!parseCorpusName(catalog.name, desc)) {
        reject("name-mismatch",
               "catalog name '" + catalog.name +
                   "' is not a corpus variant name");
    } else if (desc.base != catalog.base_kernel ||
               corpusBugClassName(desc.bug_class) != catalog.bug_class ||
               desc.seed != catalog.seed) {
        reject("name-mismatch",
               "catalog name '" + catalog.name +
                   "' disagrees with the body fields");
    }

    return findings;
}

} // namespace act::corpus
