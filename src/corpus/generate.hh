/**
 * @file
 * Corpus materialisation: turn a (seed, count) slice into catalogs,
 * failing traces and a manifest — the library behind `actgen`.
 *
 * Generation is embarrassingly parallel and slot-addressed: worker
 * threads fill a pre-sized result vector by index, so the produced
 * bytes are identical at --jobs 1 and --jobs 8 and across
 * regeneration from the same master seed. Variants that fail to
 * materialise (impossible for built-in bases, but reachable through
 * explicit base lists) surface as structured findings, never as holes
 * silently skipped.
 */

#ifndef ACT_CORPUS_GENERATE_HH
#define ACT_CORPUS_GENERATE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/finding.hh"
#include "corpus/corpus.hh"
#include "trace/trace.hh"

namespace act::corpus
{

/** What to materialise. */
struct GenerateOptions
{
    std::uint64_t master_seed = kCorpusMasterSeed;
    std::size_t count = 32;
    std::vector<std::string> bases; //!< Empty = every corpus base.
    unsigned jobs = 1;              //!< Worker threads.
    bool traces = false;            //!< Also record failing traces.
    std::uint64_t failure_seed = 999;
};

/** One materialised variant. */
struct GeneratedVariant
{
    CorpusVariantDesc desc;
    std::string catalog_json;
    Trace failing; //!< Failing execution; empty unless traces asked.
};

/** The whole corpus, in slice index order. */
struct GenerateResult
{
    std::vector<GeneratedVariant> variants;
    std::string manifest_json;
    std::vector<Finding> findings; //!< Materialisation failures.

    bool ok() const { return clean(findings); }
};

/** Materialise the corpus described by @p options. */
GenerateResult generateCorpus(const GenerateOptions &options);

} // namespace act::corpus

#endif // ACT_CORPUS_GENERATE_HH
