/**
 * @file
 * Ground-truth bug catalogs: JSON serialisation and validation.
 *
 * Every corpus variant ships a small JSON document recording what was
 * injected where — the LAVA-style ground truth the scoring aggregator
 * joins diagnoses against. The writer emits a fixed key order so
 * catalogs are byte-identical across regenerations; the reader goes
 * through the telemetry JSON tree, and the validator reports every
 * structural or consistency problem as a structured Finding so
 * `actlint catalog` can gate on it.
 */

#ifndef ACT_CORPUS_CATALOG_HH
#define ACT_CORPUS_CATALOG_HH

#include <string>
#include <vector>

#include "analysis/finding.hh"
#include "corpus/corpus.hh"

namespace act::corpus
{

/** Schema tag every catalog carries. */
inline constexpr const char *kCatalogSchema = "act-bug-catalog-v1";

/** Serialise @p catalog (stable key order, trailing newline). */
std::string catalogJson(const CorpusCatalog &catalog);

/**
 * Parse a catalog document. @return false (with a message in
 * @p error when non-null) on malformed JSON or missing/mistyped
 * fields; consistency is NOT checked here — see validateCatalog().
 */
bool parseCatalogJson(const std::string &json, CorpusCatalog &out,
                      std::string *error = nullptr);

/**
 * Full validation of a catalog document: parses it, then checks the
 * schema tag, the bug-class/lens pairing, PC sanity (valid, distinct
 * root), parameter ranges, and that the embedded name agrees with the
 * body fields. One Finding per problem; empty result = valid.
 */
std::vector<Finding> validateCatalog(const std::string &json);

} // namespace act::corpus

#endif // ACT_CORPUS_CATALOG_HH
