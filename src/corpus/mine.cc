#include "corpus/mine.hh"

#include <algorithm>
#include <map>
#include <mutex>
#include <utility>

#include "deps/tracker.hh"
#include "trace/trace.hh"
#include "workloads/kernel.hh"

namespace act::corpus
{

namespace
{

/** Probe seeds; two traces so rotation-dependent pairs both appear. */
constexpr std::uint64_t kProbeSeedBase = 100;
constexpr std::size_t kProbeTraces = 2;

std::vector<RawSite>
mineUncached(const std::string &base)
{
    std::map<std::pair<Pc, Pc>, std::uint64_t> pairs;
    const KernelWorkload kernel(kernelSpecFor(base));
    for (std::size_t i = 0; i < kProbeTraces; ++i) {
        WorkloadParams params;
        params.seed = kProbeSeedBase + i;
        const Trace trace = kernel.record(params);
        DependenceTracker tracker;
        for (const TraceEvent &event : trace.events()) {
            const auto dep = tracker.observe(event);
            if (dep && dep->inter_thread &&
                dep->store_pc != dep->load_pc)
                ++pairs[{dep->store_pc, dep->load_pc}];
        }
    }
    std::vector<RawSite> sites;
    sites.reserve(pairs.size());
    for (const auto &[pair, count] : pairs)
        sites.push_back(RawSite{pair.first, pair.second, count});
    return sites; // std::map iteration is already (store, load) sorted.
}

} // namespace

bool
isCorpusBase(const std::string &base)
{
    for (const std::string &name : concurrentKernelNames()) {
        if (name == base)
            return true;
    }
    return false;
}

std::vector<std::string>
corpusBaseNames()
{
    // Only kernels with actual inter-thread communication can host an
    // injected bug (swaptions, for one, is embarrassingly parallel and
    // exposes nothing to mine). Membership is decided by mining itself
    // — memoized, so this stays cheap after the first call.
    std::vector<std::string> bases;
    for (const std::string &name : concurrentKernelNames()) {
        if (!mineRawSites(name).empty())
            bases.push_back(name);
    }
    return bases;
}

const std::vector<RawSite> &
mineRawSites(const std::string &base)
{
    static std::mutex mutex;
    static std::map<std::string, std::vector<RawSite>> cache;
    static const std::vector<RawSite> kEmpty;

    if (!isCorpusBase(base))
        return kEmpty;

    std::lock_guard<std::mutex> guard(mutex);
    auto it = cache.find(base);
    if (it == cache.end())
        it = cache.emplace(base, mineUncached(base)).first;
    return it->second;
}

} // namespace act::corpus
