#include "corpus/score.hh"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "common/rng.hh"
#include "corpus/corpus.hh"

namespace act::corpus
{

namespace
{

struct Pool
{
    double lens_tp = 0;
    double lens_fp = 0;
    double act_tp = 0;
    double act_fp = 0;
    std::size_t n = 0;

    void
    add(const CorpusOutcome &o)
    {
        lens_tp += o.lens_tp;
        lens_fp += o.lens_fp;
        act_tp += o.act_tp;
        act_fp += o.act_fp;
        ++n;
    }
};

/** Pooled precision; empty prediction pool is vacuously precise. */
double
precision(double tp, double fp)
{
    const double considered = tp + fp;
    return considered == 0.0 ? 1.0 : tp / considered;
}

double
recall(double tp, std::size_t n)
{
    return n == 0 ? 1.0 : tp / static_cast<double>(n);
}

struct PoolStats
{
    double lens_p = 1.0;
    double lens_r = 1.0;
    double act_p = 1.0;
    double act_r = 1.0;
};

PoolStats
statsOf(const Pool &pool)
{
    PoolStats stats;
    stats.lens_p = precision(pool.lens_tp, pool.lens_fp);
    stats.lens_r = recall(pool.lens_tp, pool.n);
    stats.act_p = precision(pool.act_tp, pool.act_fp);
    stats.act_r = recall(pool.act_tp, pool.n);
    return stats;
}

/** Percentile of a sorted sample at quantile @p q (nearest rank). */
double
percentile(std::vector<double> sorted, double q)
{
    std::sort(sorted.begin(), sorted.end());
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[idx];
}

ClassCurve
curveFor(const std::string &bug_class, const std::string &lens,
         const std::vector<const CorpusOutcome *> &members,
         std::uint64_t bootstrap_seed, std::size_t resamples)
{
    ClassCurve curve;
    curve.bug_class = bug_class;
    curve.lens = lens;
    curve.variants = members.size();

    Pool pool;
    for (const CorpusOutcome *o : members)
        pool.add(*o);
    const PoolStats point = statsOf(pool);
    curve.lens_precision.value = point.lens_p;
    curve.lens_recall.value = point.lens_r;
    curve.act_precision.value = point.act_p;
    curve.act_recall.value = point.act_r;

    if (members.empty() || resamples == 0) {
        curve.lens_precision.lo = curve.lens_precision.hi = point.lens_p;
        curve.lens_recall.lo = curve.lens_recall.hi = point.lens_r;
        curve.act_precision.lo = curve.act_precision.hi = point.act_p;
        curve.act_recall.lo = curve.act_recall.hi = point.act_r;
        return curve;
    }

    // Percentile bootstrap over variants. The RNG stream depends only
    // on (seed, class name) — via a fixed FNV-1a, not std::hash, which
    // is implementation-defined — so the intervals are stable across
    // machines and adding a class never perturbs another's.
    std::uint64_t class_hash = 1469598103934665603ULL;
    for (const char c : bug_class) {
        class_hash ^= static_cast<unsigned char>(c);
        class_hash *= 1099511628211ULL;
    }
    Rng rng(hashCombine(mix64(bootstrap_seed), class_hash));
    std::vector<double> lens_p;
    std::vector<double> lens_r;
    std::vector<double> act_p;
    std::vector<double> act_r;
    lens_p.reserve(resamples);
    lens_r.reserve(resamples);
    act_p.reserve(resamples);
    act_r.reserve(resamples);
    for (std::size_t b = 0; b < resamples; ++b) {
        Pool sample;
        for (std::size_t i = 0; i < members.size(); ++i)
            sample.add(*members[rng.next(members.size())]);
        const PoolStats stats = statsOf(sample);
        lens_p.push_back(stats.lens_p);
        lens_r.push_back(stats.lens_r);
        act_p.push_back(stats.act_p);
        act_r.push_back(stats.act_r);
    }
    const auto bracket = [](Interval &interval, std::vector<double> &s) {
        interval.lo = percentile(s, 0.025);
        interval.hi = percentile(s, 0.975);
    };
    bracket(curve.lens_precision, lens_p);
    bracket(curve.lens_recall, lens_r);
    bracket(curve.act_precision, act_p);
    bracket(curve.act_recall, act_r);
    return curve;
}

std::string
cell(const Interval &interval)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f [%.3f,%.3f]", interval.value,
                  interval.lo, interval.hi);
    return buf;
}

} // namespace

std::vector<ClassCurve>
corpusCurves(std::vector<CorpusOutcome> outcomes,
             std::uint64_t bootstrap_seed, std::size_t resamples)
{
    std::sort(outcomes.begin(), outcomes.end(),
              [](const CorpusOutcome &a, const CorpusOutcome &b) {
                  return a.variant < b.variant;
              });

    std::map<std::string, std::vector<const CorpusOutcome *>> by_class;
    std::map<std::string, std::string> lens_of;
    for (const CorpusOutcome &o : outcomes) {
        by_class[o.bug_class].push_back(&o);
        lens_of.emplace(o.bug_class, o.lens);
    }

    // Taxonomy order first (the fixed six), then any stragglers in
    // lexicographic order, then the overall pool.
    std::vector<std::string> order;
    for (std::size_t i = 0; i < kCorpusBugClassCount; ++i) {
        const auto name =
            corpusBugClassName(static_cast<CorpusBugClass>(i));
        if (by_class.count(name) != 0)
            order.push_back(name);
    }
    for (const auto &[name, members] : by_class) {
        if (std::find(order.begin(), order.end(), name) == order.end())
            order.push_back(name);
    }

    std::vector<ClassCurve> curves;
    curves.reserve(order.size() + 1);
    for (const std::string &name : order) {
        curves.push_back(curveFor(name, lens_of[name], by_class[name],
                                  bootstrap_seed, resamples));
    }

    std::vector<const CorpusOutcome *> all;
    all.reserve(outcomes.size());
    for (const CorpusOutcome &o : outcomes)
        all.push_back(&o);
    curves.push_back(
        curveFor("overall", "-", all, bootstrap_seed, resamples));
    return curves;
}

std::string
corpusReport(std::vector<CorpusOutcome> outcomes,
             std::uint64_t bootstrap_seed, std::size_t resamples)
{
    const std::size_t variants = outcomes.size();
    const std::vector<ClassCurve> curves =
        corpusCurves(std::move(outcomes), bootstrap_seed, resamples);

    std::ostringstream out;
    out << "table6-corpus: per-class precision/recall, " << variants
        << " variants, " << resamples
        << "-resample bootstrap 95% CIs (seed 0x" << std::hex
        << bootstrap_seed << std::dec << ")\n\n";

    char header[256];
    std::snprintf(header, sizeof(header),
                  "%-24s %-10s %4s  %-21s %-21s %-21s %-21s\n",
                  "class", "lens", "n", "lens precision",
                  "lens recall", "act precision", "act recall");
    out << header;
    for (const ClassCurve &curve : curves) {
        char row[320];
        std::snprintf(row, sizeof(row),
                      "%-24s %-10s %4zu  %-21s %-21s %-21s %-21s\n",
                      curve.bug_class.c_str(), curve.lens.c_str(),
                      curve.variants, cell(curve.lens_precision).c_str(),
                      cell(curve.lens_recall).c_str(),
                      cell(curve.act_precision).c_str(),
                      cell(curve.act_recall).c_str());
        out << row;
    }
    return out.str();
}

} // namespace act::corpus
