#include "corpus/generate.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <thread>

#include "corpus/catalog.hh"

namespace act::corpus
{

namespace
{

std::string
manifestJson(const GenerateOptions &options,
             const std::vector<GeneratedVariant> &variants)
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"schema\": \"act-corpus-manifest-v1\",\n";
    out << "  \"master_seed\": \"" << options.master_seed << "\",\n";
    out << "  \"count\": " << variants.size() << ",\n";
    out << "  \"traces\": " << (options.traces ? "true" : "false")
        << ",\n";
    out << "  \"failure_seed\": \"" << options.failure_seed << "\",\n";
    out << "  \"variants\": [\n";
    for (std::size_t i = 0; i < variants.size(); ++i) {
        char index[32];
        std::snprintf(index, sizeof(index), "%04zu", i);
        out << "    {\"index\": " << i << ", \"name\": \""
            << corpusName(variants[i].desc) << "\", \"catalog\": \""
            << "catalog-" << index << ".json\"";
        if (options.traces)
            out << ", \"trace\": \"variant-" << index << ".trc\"";
        out << "}" << (i + 1 < variants.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";
    return out.str();
}

} // namespace

GenerateResult
generateCorpus(const GenerateOptions &options)
{
    GenerateResult result;
    const std::vector<CorpusVariantDesc> slice =
        corpusSlice(options.master_seed, options.count, options.bases);
    result.variants.resize(slice.size());

    std::mutex findings_mutex;
    std::atomic<std::size_t> next{0};
    const auto worker = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= slice.size())
                return;
            std::vector<Finding> local;
            const auto workload =
                makeCorpusWorkload(corpusName(slice[i]), &local);
            if (workload == nullptr) {
                std::lock_guard<std::mutex> guard(findings_mutex);
                for (Finding &finding : local)
                    result.findings.push_back(std::move(finding));
                continue;
            }
            GeneratedVariant &out = result.variants[i];
            out.desc = slice[i];
            out.catalog_json = catalogJson(workload->catalog());
            if (options.traces) {
                WorkloadParams params;
                params.seed = options.failure_seed;
                params.trigger_failure = true;
                out.failing = workload->record(params);
            }
        }
    };

    const unsigned jobs = options.jobs == 0 ? 1 : options.jobs;
    if (jobs == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned j = 0; j < jobs; ++j)
            pool.emplace_back(worker);
        for (std::thread &thread : pool)
            thread.join();
    }

    // Findings accumulate in completion order; sort for determinism.
    std::sort(result.findings.begin(), result.findings.end(),
              [](const Finding &a, const Finding &b) {
                  return a.message < b.message;
              });

    // Drop slots that never materialised so indices stay dense; the
    // findings carry the explanation.
    if (!result.findings.empty()) {
        std::vector<GeneratedVariant> kept;
        for (GeneratedVariant &variant : result.variants) {
            if (!variant.catalog_json.empty())
                kept.push_back(std::move(variant));
        }
        result.variants = std::move(kept);
    }

    result.manifest_json = manifestJson(options, result.variants);
    return result;
}

} // namespace act::corpus
