/**
 * @file
 * Seeded bug-injection corpus: parameterized variant workloads.
 *
 * Tables V/VI evaluate diagnosis on 16 hand-written bugs — too few
 * rows for error bars. This subsystem manufactures bugs at scale: a
 * variant workload re-stages one mined communication site of a real
 * prediction kernel (see mine.hh) inside a phase-structured harness —
 * producer/consumer slots behind a lock-chain barrier plus a
 * lock-protected shared accumulator — and perturbs exactly one piece
 * of synchronisation according to its bug class. Each class is
 * engineered to be flagged by one specific detector lens, and every
 * variant exports a machine-readable ground-truth catalog (class,
 * lens, injected site, root PC pair, seed, parameters), so sweeping a
 * corpus yields per-class precision/recall curves instead of
 * anecdotes.
 *
 * The six classes and their matching lenses:
 *
 *   reordered-sync          producer's store slips past the barrier; the
 *                           consumers read the init value -> an untrained
 *                           inter-thread writer (order lens).
 *   dropped-barrier         the phase barrier between produce and consume
 *                           is elided -> a store->load race (hb lens).
 *   stale-read-window       the victim reads the slot before the barrier
 *                           publishes it -> a store->load race (hb lens).
 *   off-by-one-phase        the victim consumes next phase's slot, still
 *                           holding only the init value -> untrained
 *                           writer (order lens).
 *   removed-lock            the victim's read-modify-write of the shared
 *                           accumulator drops the lock -> empty lockset
 *                           on a shared-modified variable (lockset lens).
 *   split-critical-section  the victim's accumulator RMW is split into
 *                           two critical sections with a full remote RMW
 *                           between them -> an unserializable R-W-W
 *                           triple absent from the mined baseline
 *                           (atomicity lens).
 *
 * Everything is a pure function of the variant descriptor: same
 * (base, class, seed) -> byte-identical traces and catalogs on every
 * machine, at any parallelism (DESIGN section 14).
 */

#ifndef ACT_CORPUS_CORPUS_HH
#define ACT_CORPUS_CORPUS_HH

#include <memory>
#include <string>
#include <vector>

#include "analysis/finding.hh"
#include "corpus/mine.hh"
#include "workloads/workload.hh"

namespace act::corpus
{

/** The injected bug taxonomy. */
enum class CorpusBugClass : std::uint8_t
{
    kReorderedSync,
    kDroppedBarrier,
    kStaleReadWindow,
    kOffByOnePhase,
    kRemovedLock,
    kSplitCriticalSection
};

inline constexpr std::size_t kCorpusBugClassCount = 6;

/**
 * Default master seed for pinned slices: the table6-corpus campaign,
 * the CI corpus-smoke slice and `actgen` all derive from it unless
 * overridden, so their variants coincide (and share trace-cache hits).
 */
inline constexpr std::uint64_t kCorpusMasterSeed = 0xc0ffee;

/** Stable kebab-case name, e.g. "removed-lock". */
const char *corpusBugClassName(CorpusBugClass bug_class);

/** Parse a class name; false on unknown input. */
bool parseCorpusBugClass(const std::string &name, CorpusBugClass &out);

/**
 * The detector lens engineered to flag this class: "order", "hb",
 * "lockset" or "atomicity".
 */
const char *corpusLensName(CorpusBugClass bug_class);

/** The Workload::bugClass() classification of a corpus class. */
BugClass workloadBugClass(CorpusBugClass bug_class);

/** One variant's identity. */
struct CorpusVariantDesc
{
    std::string base;              //!< Base kernel the site was mined from.
    CorpusBugClass bug_class = CorpusBugClass::kReorderedSync;
    std::uint64_t seed = 0;        //!< Variant seed (site + phase draws).

    bool operator==(const CorpusVariantDesc &) const = default;
};

/** Render "corpus/<base>/<class>/<seed>". */
std::string corpusName(const CorpusVariantDesc &desc);

/** Parse a corpus workload name; false when malformed. */
bool parseCorpusName(const std::string &name, CorpusVariantDesc &out);

/** True when @p name uses the corpus name grammar ("corpus/..."). */
bool isCorpusName(const std::string &name);

/** Ground truth exported with every variant. */
struct CorpusCatalog
{
    std::string name;       //!< Full variant name.
    std::string base_kernel;
    std::string bug_class;  //!< corpusBugClassName().
    std::string lens;       //!< corpusLensName().
    std::uint64_t seed = 0;

    Pc site_store_pc = kInvalidPc; //!< Mined communication site.
    Pc site_load_pc = kInvalidPc;
    Pc root_store_pc = kInvalidPc; //!< Pair the matching lens must flag.
    Pc root_load_pc = kInvalidPc;

    std::uint32_t threads = 0;
    std::uint32_t phases = 0;
    std::uint32_t trigger_phase = 0;
    std::uint32_t victim = 0; //!< Worker thread the bug steers.

    bool operator==(const CorpusCatalog &) const = default;
};

/**
 * One generated variant: a deterministic phase-harness workload whose
 * failing execution contains exactly the catalogued bug.
 */
class CorpusWorkload : public Workload
{
  public:
    /** Build from a validated descriptor and its mined site. */
    CorpusWorkload(CorpusVariantDesc desc, RawSite site);

    std::string name() const override { return catalog_.name; }
    std::string description() const override;
    std::uint32_t threadCount() const override { return catalog_.threads; }

    FailureKind
    failureKind() const override
    {
        return FailureKind::kCompletion;
    }

    BugClass
    bugClass() const override
    {
        return workloadBugClass(desc_.bug_class);
    }

    RawDependence buggyDependence() const override;

    void run(TraceSink &sink, const WorkloadParams &params) const override;

    const CorpusCatalog &catalog() const { return catalog_; }
    CorpusBugClass corpusBugClass() const { return desc_.bug_class; }

  private:
    CorpusVariantDesc desc_;
    RawSite site_;
    CorpusCatalog catalog_;
    std::uint32_t workload_id_ = 0; //!< Base kernel's address region.

    // Derived static layout (fixed at construction).
    Pc init_pc_ = 0;
    Pc slot_store_pc_ = 0;
    Pc slot_load_pc_ = 0;
    Pc acc_store_pc_ = 0;
    Pc acc_load_pc_ = 0;
};

/**
 * Materialise the variant named by @p name.
 *
 * On failure (malformed name, unknown base kernel, unknown class, or a
 * base with no mineable sites) returns nullptr and, when @p findings
 * is non-null, appends one structured error explaining why.
 */
std::unique_ptr<CorpusWorkload>
makeCorpusWorkload(const std::string &name,
                   std::vector<Finding> *findings = nullptr);

/**
 * Derive a deterministic @p count-variant slice from one master seed:
 * classes round-robin through the taxonomy, bases round-robin through
 * @p bases (default: every corpus base), and each variant's own seed is
 * an independent hash of (master_seed, index).
 */
std::vector<CorpusVariantDesc>
corpusSlice(std::uint64_t master_seed, std::size_t count,
            const std::vector<std::string> &bases = {});

} // namespace act::corpus

#endif // ACT_CORPUS_CORPUS_HH
