#include "corpus/corpus.hh"

#include <cstdlib>
#include <utility>

#include "common/hashing.hh"
#include "common/rng.hh"
#include "workloads/emitter.hh"
#include "workloads/kernel.hh"

namespace act::corpus
{

namespace
{

// Static layout of the phase harness. Function indices 80..83 are far
// above anything the kernel engine assigns (chain functions are the
// chain indices, boundary inits live at 90+chain, the wrong path at
// 99), so harness PCs can never collide with a mined site's PCs.
constexpr std::uint32_t kBarrierFn = 80;
constexpr std::uint32_t kHarnessFn = 81;
constexpr std::uint32_t kInitFn = 82;
constexpr std::uint32_t kAuxFn = 83;

constexpr std::uint32_t kSlotArray = 48;   //!< Phase-unique slots.
constexpr std::uint32_t kAccArray = 49;    //!< Shared accumulator.
constexpr std::uint32_t kGoArray = 50;     //!< Barrier "go" word.
constexpr std::uint32_t kArriveArray = 51; //!< Barrier arrive words.

constexpr std::uint32_t kAccLock = 7;    //!< Guards the accumulator.
constexpr std::uint32_t kBarrierLock = 6;

constexpr std::uint32_t kThreads = 3; //!< Master + two workers.
constexpr std::uint32_t kPhases = 6;

/** Stream salts (arbitrary, fixed forever). */
constexpr std::uint64_t kSiteSalt = 0xc0a9;
constexpr std::uint64_t kShapeSalt = 0x7713;
constexpr std::uint64_t kRunSalt = 0xc0;

bool
siteOnSlot(CorpusBugClass bug_class)
{
    switch (bug_class) {
      case CorpusBugClass::kReorderedSync:
      case CorpusBugClass::kDroppedBarrier:
      case CorpusBugClass::kStaleReadWindow:
      case CorpusBugClass::kOffByOnePhase:
        return true;
      case CorpusBugClass::kRemovedLock:
      case CorpusBugClass::kSplitCriticalSection:
        return false;
    }
    return true;
}

} // namespace

const char *
corpusBugClassName(CorpusBugClass bug_class)
{
    switch (bug_class) {
      case CorpusBugClass::kReorderedSync: return "reordered-sync";
      case CorpusBugClass::kDroppedBarrier: return "dropped-barrier";
      case CorpusBugClass::kStaleReadWindow: return "stale-read-window";
      case CorpusBugClass::kOffByOnePhase: return "off-by-one-phase";
      case CorpusBugClass::kRemovedLock: return "removed-lock";
      case CorpusBugClass::kSplitCriticalSection:
        return "split-critical-section";
    }
    return "?";
}

bool
parseCorpusBugClass(const std::string &name, CorpusBugClass &out)
{
    for (std::size_t i = 0; i < kCorpusBugClassCount; ++i) {
        const auto bug_class = static_cast<CorpusBugClass>(i);
        if (name == corpusBugClassName(bug_class)) {
            out = bug_class;
            return true;
        }
    }
    return false;
}

const char *
corpusLensName(CorpusBugClass bug_class)
{
    switch (bug_class) {
      case CorpusBugClass::kReorderedSync: return "order";
      case CorpusBugClass::kDroppedBarrier: return "hb";
      case CorpusBugClass::kStaleReadWindow: return "hb";
      case CorpusBugClass::kOffByOnePhase: return "order";
      case CorpusBugClass::kRemovedLock: return "lockset";
      case CorpusBugClass::kSplitCriticalSection: return "atomicity";
    }
    return "?";
}

BugClass
workloadBugClass(CorpusBugClass bug_class)
{
    switch (bug_class) {
      case CorpusBugClass::kReorderedSync:
      case CorpusBugClass::kOffByOnePhase:
        return BugClass::kOrderViolation;
      case CorpusBugClass::kSplitCriticalSection:
        return BugClass::kAtomicityViolation;
      case CorpusBugClass::kDroppedBarrier:
      case CorpusBugClass::kStaleReadWindow:
      case CorpusBugClass::kRemovedLock:
        return BugClass::kInjected;
    }
    return BugClass::kInjected;
}

std::string
corpusName(const CorpusVariantDesc &desc)
{
    return "corpus/" + desc.base + "/" +
           corpusBugClassName(desc.bug_class) + "/" +
           std::to_string(desc.seed);
}

bool
isCorpusName(const std::string &name)
{
    return name.rfind("corpus/", 0) == 0;
}

bool
parseCorpusName(const std::string &name, CorpusVariantDesc &out)
{
    // corpus/<base>/<class>/<seed>, all four segments non-empty.
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
        const std::size_t slash = name.find('/', start);
        if (slash == std::string::npos) {
            parts.push_back(name.substr(start));
            break;
        }
        parts.push_back(name.substr(start, slash - start));
        start = slash + 1;
    }
    if (parts.size() != 4 || parts[0] != "corpus" || parts[1].empty() ||
        parts[2].empty() || parts[3].empty())
        return false;

    CorpusVariantDesc desc;
    desc.base = parts[1];
    if (!parseCorpusBugClass(parts[2], desc.bug_class))
        return false;
    for (const char c : parts[3]) {
        if (c < '0' || c > '9')
            return false;
    }
    char *end = nullptr;
    desc.seed = std::strtoull(parts[3].c_str(), &end, 10);
    if (end == nullptr || *end != '\0')
        return false;
    // Reject values that overflowed into a different rendering.
    if (std::to_string(desc.seed) != parts[3])
        return false;
    out = std::move(desc);
    return true;
}

CorpusWorkload::CorpusWorkload(CorpusVariantDesc desc, RawSite site)
    : desc_(std::move(desc)), site_(site)
{
    const KernelSpec spec = kernelSpecFor(desc_.base);
    workload_id_ = spec.workload_id;
    const AddressMap map(workload_id_);

    init_pc_ = map.pc(kInitFn, 0);
    const bool on_slot = siteOnSlot(desc_.bug_class);
    slot_store_pc_ = on_slot ? site_.store_pc : map.pc(kAuxFn, 0);
    slot_load_pc_ = on_slot ? site_.load_pc : map.pc(kAuxFn, 1);
    acc_store_pc_ = on_slot ? map.pc(kAuxFn, 2) : site_.store_pc;
    acc_load_pc_ = on_slot ? map.pc(kAuxFn, 3) : site_.load_pc;

    // Shape draws: fixed stream so (base, class, seed) pins the whole
    // variant. trigger_phase stays in [2, phases-2] — late enough that
    // the lockset refinement and atomicity windows are established,
    // early enough that off-by-one still has a next phase to poach.
    Rng rng(hashCombine(mix64(desc_.seed), kShapeSalt));
    const auto trigger =
        static_cast<std::uint32_t>(2 + rng.next(kPhases - 3));
    const auto victim = static_cast<std::uint32_t>(1 + rng.next(2));

    catalog_.name = corpusName(desc_);
    catalog_.base_kernel = desc_.base;
    catalog_.bug_class = corpusBugClassName(desc_.bug_class);
    catalog_.lens = corpusLensName(desc_.bug_class);
    catalog_.seed = desc_.seed;
    catalog_.site_store_pc = site_.store_pc;
    catalog_.site_load_pc = site_.load_pc;
    catalog_.threads = kThreads;
    catalog_.phases = kPhases;
    catalog_.trigger_phase = trigger;
    catalog_.victim = victim;

    switch (desc_.bug_class) {
      case CorpusBugClass::kReorderedSync:
      case CorpusBugClass::kOffByOnePhase:
        // The consumers read the boundary-init value instead of the
        // produced one: the untrained writer is the init store.
        catalog_.root_store_pc = init_pc_;
        catalog_.root_load_pc = slot_load_pc_;
        break;
      case CorpusBugClass::kDroppedBarrier:
      case CorpusBugClass::kStaleReadWindow:
        catalog_.root_store_pc = slot_store_pc_;
        catalog_.root_load_pc = slot_load_pc_;
        break;
      case CorpusBugClass::kRemovedLock:
      case CorpusBugClass::kSplitCriticalSection:
        catalog_.root_store_pc = acc_store_pc_;
        catalog_.root_load_pc = acc_load_pc_;
        break;
    }
}

std::string
CorpusWorkload::description() const
{
    return "corpus variant: " + catalog_.bug_class + " staged on a " +
           desc_.base + " communication site (" + catalog_.lens +
           " lens)";
}

RawDependence
CorpusWorkload::buggyDependence() const
{
    return RawDependence{catalog_.root_store_pc, catalog_.root_load_pc,
                         true};
}

void
CorpusWorkload::run(TraceSink &sink, const WorkloadParams &params) const
{
    const AddressMap map(workload_id_);
    const CorpusBugClass bug = desc_.bug_class;
    const bool fire = params.trigger_failure;
    const std::uint32_t trigger = catalog_.trigger_phase;
    const std::uint32_t victim = catalog_.victim;

    const Addr acc = map.shared(kAccArray, 0);
    const Addr go = map.shared(kGoArray, 0);
    const Addr acc_lock = map.lockAddr(kAccLock);
    const Addr bar_lock = map.lockAddr(kBarrierLock);
    const auto slot = [&map](std::uint32_t p) {
        return map.shared(kSlotArray, p);
    };
    const auto arrive = [&map](ThreadId w) {
        return map.shared(kArriveArray, w);
    };

    const Pc bar_lock_pc = map.pc(kBarrierFn, 0);
    const Pc bar_arrive_store_pc = map.pc(kBarrierFn, 1);
    const Pc bar_unlock_pc = map.pc(kBarrierFn, 2);
    const Pc bar_arrive_load_pc = map.pc(kBarrierFn, 3);
    const Pc bar_go_store_pc = map.pc(kBarrierFn, 4);
    const Pc bar_go_load_pc = map.pc(kBarrierFn, 5);
    const Pc create_pc = map.pc(kHarnessFn, 0);
    const Pc exit_pc = map.pc(kHarnessFn, 1);
    const Pc rmw_lock_pc = map.pc(kHarnessFn, 2);
    const Pc rmw_unlock_pc = map.pc(kHarnessFn, 3);
    const Pc noise_store_pc = map.pc(kHarnessFn, 4);
    const Pc noise_load_pc = map.pc(kHarnessFn, 5);

    Rng master(hashCombine(mix64(params.seed),
                           hashCombine(mix64(desc_.seed), kRunSalt)));
    ThreadEmitter t0(sink, 0, master.fork(1), 2, 6);
    ThreadEmitter w1(sink, 1, master.fork(2), 2, 6);
    ThreadEmitter w2(sink, 2, master.fork(3), 2, 6);
    ThreadEmitter *const emitters[kThreads] = {&t0, &w1, &w2};
    ThreadEmitter *const workers[2] = {&w1, &w2};

    // Chain-release barrier on bar_lock: the unlock -> next-lock edges
    // of the arrive stores, the master's collect/go section and the go
    // loads transitively order every pre-barrier event of every thread
    // before every post-barrier event of every thread.
    const auto barrier = [&]() {
        for (ThreadEmitter *w : workers) {
            w->lock(bar_lock_pc, bar_lock);
            w->store(bar_arrive_store_pc, arrive(w->tid()));
            w->unlock(bar_unlock_pc, bar_lock);
        }
        t0.lock(bar_lock_pc, bar_lock);
        for (ThreadEmitter *w : workers)
            t0.load(bar_arrive_load_pc, arrive(w->tid()));
        t0.store(bar_go_store_pc, go);
        t0.unlock(bar_unlock_pc, bar_lock);
        for (ThreadEmitter *w : workers) {
            w->lock(bar_lock_pc, bar_lock);
            w->load(bar_go_load_pc, go);
            w->unlock(bar_unlock_pc, bar_lock);
        }
    };

    const auto lockedRmw = [&](ThreadEmitter &e) {
        e.lock(rmw_lock_pc, acc_lock);
        e.load(acc_load_pc_, acc);
        e.store(acc_store_pc_, acc);
        e.unlock(rmw_unlock_pc, acc_lock);
    };

    // Boundary init: every slot and the accumulator get their initial
    // value before the workers exist, so the create edges order the
    // init stores before everything else.
    for (std::uint32_t p = 0; p < kPhases; ++p)
        t0.store(init_pc_, slot(p));
    t0.store(init_pc_, acc);
    t0.create(create_pc, 1);
    t0.create(create_pc, 2);

    for (std::uint32_t p = 0; p < kPhases; ++p) {
        const bool bug_phase = fire && p == trigger;

        // Produce: the master publishes this phase's slot.
        if (!(bug_phase && bug == CorpusBugClass::kReorderedSync))
            t0.store(slot_store_pc_, slot(p));

        // Stale-read window: the victim peeks before the barrier
        // publishes the slot.
        if (bug_phase && bug == CorpusBugClass::kStaleReadWindow)
            workers[victim - 1]->load(slot_load_pc_, slot(p));

        if (!(bug_phase && bug == CorpusBugClass::kDroppedBarrier))
            barrier();

        // Consume: workers read the slot, order rotating per phase.
        for (std::uint32_t i = 0; i < 2; ++i) {
            ThreadEmitter *w = workers[(p + i) % 2];
            Addr addr = slot(p);
            if (bug_phase && bug == CorpusBugClass::kOffByOnePhase &&
                w->tid() == victim)
                addr = slot(p + 1);
            w->load(slot_load_pc_, addr);
        }

        // Reordered sync: the publish finally happens — after the
        // consumers already read the init value.
        if (bug_phase && bug == CorpusBugClass::kReorderedSync)
            t0.store(slot_store_pc_, slot(p));

        // Private per-thread noise: RAW material for ACT's sequence
        // model that no concurrency lens can see.
        for (ThreadEmitter *e : emitters) {
            const Addr priv = map.perThread(e->tid(), 0, p);
            e->store(noise_store_pc, priv);
            e->load(noise_load_pc, priv);
        }

        // Read-modify-write round on the shared accumulator, rotating
        // start thread. The lens-steered classes move the victim last
        // so its misbehaviour meets another thread's fresh store.
        std::vector<std::uint32_t> order = {p % kThreads,
                                            (p + 1) % kThreads,
                                            (p + 2) % kThreads};
        const bool steer = bug_phase &&
                           (bug == CorpusBugClass::kRemovedLock ||
                            bug == CorpusBugClass::kSplitCriticalSection);
        if (steer) {
            std::vector<std::uint32_t> reordered;
            for (const std::uint32_t tid : order) {
                if (tid != victim)
                    reordered.push_back(tid);
            }
            reordered.push_back(victim);
            order = reordered;
        }
        for (const std::uint32_t tid : order) {
            ThreadEmitter &e = *emitters[tid];
            if (steer && tid == victim &&
                bug == CorpusBugClass::kRemovedLock) {
                // The whole RMW runs bare: empty lockset on a
                // shared-modified variable.
                e.load(acc_load_pc_, acc);
                e.store(acc_store_pc_, acc);
            } else if (steer && tid == victim &&
                       bug == CorpusBugClass::kSplitCriticalSection) {
                // Atomicity, not mutual exclusion, is what breaks:
                // both halves hold the lock, but the master's full RMW
                // lands between the victim's read and its write-back.
                e.lock(rmw_lock_pc, acc_lock);
                e.load(acc_load_pc_, acc);
                e.unlock(rmw_unlock_pc, acc_lock);
                lockedRmw(t0);
                e.lock(rmw_lock_pc, acc_lock);
                e.store(acc_store_pc_, acc);
                e.unlock(rmw_unlock_pc, acc_lock);
            } else {
                lockedRmw(e);
            }
        }

        barrier();
    }

    w1.exitThread(exit_pc);
    w2.exitThread(exit_pc);
    t0.exitThread(exit_pc);
}

std::unique_ptr<CorpusWorkload>
makeCorpusWorkload(const std::string &name, std::vector<Finding> *findings)
{
    const auto fail = [findings](const std::string &code,
                                 const std::string &message) {
        if (findings != nullptr)
            findings->push_back(makeFinding("corpus", code,
                                            Severity::kError, message));
        return nullptr;
    };

    CorpusVariantDesc desc;
    if (!parseCorpusName(name, desc)) {
        return fail("bad-name",
                    "not a corpus/<base>/<class>/<seed> name: '" + name +
                        "'");
    }
    if (!isCorpusBase(desc.base)) {
        return fail("unknown-kernel",
                    "unknown corpus base kernel '" + desc.base +
                        "' in '" + name + "'");
    }
    const std::vector<RawSite> &sites = mineRawSites(desc.base);
    if (sites.empty()) {
        return fail("no-sites", "base kernel '" + desc.base +
                                    "' exposes no inter-thread RAW "
                                    "sites to stage a bug on");
    }

    Rng rng(hashCombine(mix64(desc.seed), kSiteSalt));
    const RawSite site = sites[rng.next(sites.size())];
    return std::make_unique<CorpusWorkload>(std::move(desc), site);
}

std::vector<CorpusVariantDesc>
corpusSlice(std::uint64_t master_seed, std::size_t count,
            const std::vector<std::string> &bases)
{
    const std::vector<std::string> pool =
        bases.empty() ? corpusBaseNames() : bases;
    std::vector<CorpusVariantDesc> slice;
    slice.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        CorpusVariantDesc desc;
        desc.base = pool[i % pool.size()];
        desc.bug_class =
            static_cast<CorpusBugClass>(i % kCorpusBugClassCount);
        desc.seed = hashCombine(mix64(master_seed), mix64(i + 1));
        slice.push_back(std::move(desc));
    }
    return slice;
}

} // namespace act::corpus
