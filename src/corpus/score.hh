/**
 * @file
 * Corpus scoring: per-bug-class precision/recall with bootstrap CIs.
 *
 * One CorpusOutcome summarises one swept variant: did the matching
 * detector lens flag the catalogued root pair (and how many distinct
 * off-root findings did it raise), and did ACT's ranked Debug Buffer
 * predict the root (and how many other pairs did it predict). The
 * aggregator pools outcomes per bug class into precision/recall
 * points and brackets each with a seeded percentile-bootstrap 95%
 * confidence interval — resampling variants, never randomness from
 * the clock, so the rendered table is byte-identical across runs,
 * thread counts and machines.
 *
 * Conventions mirror OracleScore: an empty prediction set has
 * precision 1.0 (nothing claimed, nothing wrong); recall is the share
 * of variants whose root was flagged.
 */

#ifndef ACT_CORPUS_SCORE_HH
#define ACT_CORPUS_SCORE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace act::corpus
{

/** One variant's joined diagnosis-vs-catalog outcome. */
struct CorpusOutcome
{
    std::string variant;   //!< Full corpus name (sorts the report).
    std::string bug_class; //!< corpusBugClassName() of the variant.
    std::string lens;      //!< Matching detector lens.

    double lens_tp = 0;  //!< 1 when the matching lens flagged the root.
    double lens_fp = 0;  //!< Distinct matching-lens findings off-root.
    double act_tp = 0;   //!< 1 when ACT predicted the root pair.
    double act_fp = 0;   //!< Deduped ACT predictions off-root.
    double act_rank = -1; //!< ACT's rank of the root (-1 = absent).
};

/** A point estimate bracketed by its bootstrap interval. */
struct Interval
{
    double value = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/** Pooled precision/recall of one bug class (or the overall pool). */
struct ClassCurve
{
    std::string bug_class;
    std::string lens;
    std::size_t variants = 0;

    Interval lens_precision;
    Interval lens_recall;
    Interval act_precision;
    Interval act_recall;
};

/** Default bootstrap shape: fixed seed, 200 resamples, 95% interval. */
inline constexpr std::uint64_t kBootstrapSeed = 0xb007;
inline constexpr std::size_t kBootstrapResamples = 200;

/**
 * Pool @p outcomes per bug class (rows in taxonomy order, any unknown
 * class names after them lexicographically) and append one "overall"
 * row pooling everything. Deterministic for fixed inputs.
 */
std::vector<ClassCurve>
corpusCurves(std::vector<CorpusOutcome> outcomes,
             std::uint64_t bootstrap_seed = kBootstrapSeed,
             std::size_t resamples = kBootstrapResamples);

/** Render the deterministic table6-corpus text report. */
std::string
corpusReport(std::vector<CorpusOutcome> outcomes,
             std::uint64_t bootstrap_seed = kBootstrapSeed,
             std::size_t resamples = kBootstrapResamples);

} // namespace act::corpus

#endif // ACT_CORPUS_SCORE_HH
