/**
 * @file
 * Built-in experiment campaigns.
 *
 * A campaign is a declarative job list; the figure/table benches that
 * used to hand-roll their sweeps are now one campaign each plus a
 * table-printing main. `smoke` is a deliberately small mixed campaign
 * (every scheme represented, seconds per job) used by CI and the
 * determinism test.
 */

#ifndef ACT_RUNNER_CAMPAIGN_HH
#define ACT_RUNNER_CAMPAIGN_HH

#include <string>
#include <vector>

#include "runner/job.hh"

namespace act
{

/** Names of the built-in campaigns, in listing order. */
std::vector<std::string> campaignNames();

/** One-line description of a named campaign (panics if unknown). */
std::string campaignDescription(const std::string &name);

/**
 * Build a named campaign. Requires registerAllWorkloads() to have run.
 * Panics on an unknown name; check campaignNames() first.
 */
Campaign makeCampaign(const std::string &name);

bool campaignExists(const std::string &name);

} // namespace act

#endif // ACT_RUNNER_CAMPAIGN_HH
