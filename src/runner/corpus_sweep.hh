/**
 * @file
 * Corpus sweep aggregation: join kCorpus job results back into the
 * per-bug-class precision/recall report.
 *
 * A corpus campaign is hundreds of independent kCorpus jobs flowing
 * through the ordinary runner (cache, retries, --jobs). Each job
 * deposits its joined diagnosis-vs-catalog outcome as flat metrics;
 * this translation layer lifts those rows into corpus::CorpusOutcome
 * records and renders the deterministic `table6-corpus` table. Failed
 * jobs are excluded from the pool — they are already surfaced by the
 * runner's FAILED JOBS accounting, and silently scoring half-run
 * variants would skew the curves.
 */

#ifndef ACT_RUNNER_CORPUS_SWEEP_HH
#define ACT_RUNNER_CORPUS_SWEEP_HH

#include <string>
#include <vector>

#include "corpus/score.hh"
#include "runner/job.hh"

namespace act
{

/** True when @p campaign contains at least one kCorpus job. */
bool campaignHasCorpus(const Campaign &campaign);

/**
 * Lift the kCorpus rows of a finished campaign into outcomes, in job
 * id order. Non-corpus and failed jobs are skipped.
 */
std::vector<corpus::CorpusOutcome>
corpusOutcomes(const Campaign &campaign,
               const std::vector<JobResult> &results);

/** Render the table6-corpus report for a finished campaign. */
std::string corpusSweepReport(const Campaign &campaign,
                              const std::vector<JobResult> &results);

} // namespace act

#endif // ACT_RUNNER_CORPUS_SWEEP_HH
