#include "runner/trace_cache.hh"

#include <sys/stat.h>
#include <sys/types.h>

#include <cstdio>
#include <thread>

#include "analysis/trace_lint.hh"
#include "common/hashing.hh"
#include "common/logging.hh"
#include "telemetry/spans.hh"
#include "trace/io.hh"

namespace act
{

namespace
{

/**
 * Bump when anything that feeds the cache key or the recorded stream
 * changes shape (trace format, workload parameter semantics): stale
 * files then simply miss instead of poisoning runs.
 */
constexpr std::uint64_t kCacheFormatVersion = 1;

/** Checksum sidecar path of a cache entry. */
std::string
sumPathFor(const std::string &path)
{
    return path + ".sum";
}

/** Parse the sidecar; false when absent or malformed. */
bool
readChecksumFile(const std::string &path, std::uint64_t &value)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr)
        return false;
    unsigned long long parsed = 0;
    const bool ok = std::fscanf(f, "%16llx", &parsed) == 1;
    std::fclose(f);
    value = parsed;
    return ok;
}

/** Write the sidecar atomically (tmp + rename), best effort. */
void
writeChecksumFile(const std::string &path, std::uint64_t value,
                  const std::string &tmp_suffix)
{
    const std::string tmp = path + tmp_suffix;
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr)
        return;
    const bool ok =
        std::fprintf(f, "%016llx\n",
                     static_cast<unsigned long long>(value)) > 0;
    std::fclose(f);
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0)
        std::remove(tmp.c_str());
}

/** mkdir -p (two levels is plenty for cache directories). */
void
ensureDirectory(const std::string &path)
{
    if (path.empty())
        return;
    std::string prefix;
    for (std::size_t i = 0; i <= path.size(); ++i) {
        if (i == path.size() || path[i] == '/') {
            if (!prefix.empty() && prefix != ".")
                ::mkdir(prefix.c_str(), 0755);
        }
        if (i < path.size())
            prefix += path[i];
    }
}

} // namespace

TraceCache::TraceCache(std::string directory, bool use_memory_layer)
    : directory_(std::move(directory)), use_memory_layer_(use_memory_layer)
{
    ensureDirectory(directory_);
}

std::uint64_t
TraceCache::keyOf(const std::string &name, const WorkloadParams &params)
{
    std::uint64_t h = mix64(kCacheFormatVersion);
    for (const char c : name)
        h = hashCombine(h, static_cast<std::uint64_t>(c));
    h = hashCombine(h, params.seed);
    h = hashCombine(h, params.trigger_failure ? 1 : 0);
    h = hashCombine(h, params.scale);
    return h;
}

std::uint64_t
TraceCache::traceChecksum(const Trace &trace)
{
    std::uint64_t h = mix64(0x7ace5c4ecc5u);
    for (const auto &e : trace.events()) {
        h = hashCombine(h, e.seq);
        h = hashCombine(h, e.tid);
        h = hashCombine(h, static_cast<std::uint64_t>(e.kind));
        h = hashCombine(h, e.pc);
        h = hashCombine(h, e.addr);
        h = hashCombine(h, e.size);
        h = hashCombine(h, e.gap);
        h = hashCombine(h, (e.taken ? 2u : 0u) | (e.stack ? 1u : 0u));
    }
    return h;
}

std::string
TraceCache::pathFor(const std::string &name,
                    const WorkloadParams &params) const
{
    if (directory_.empty())
        return {};
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(keyOf(name, params)));
    return directory_ + "/" + name + "-" + hex + ".trc";
}

Trace
TraceCache::record(const Workload &workload, const WorkloadParams &params)
{
    const std::uint64_t key = keyOf(workload.name(), params);

    telemetry::ScopedSpan span("cache.record", "cache");
    span.annotate(telemetry::arg("workload", workload.name()));

    if (use_memory_layer_) {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = memory_.find(key);
        if (it != memory_.end()) {
            ++stats_.memory_hits;
            span.annotate(telemetry::arg("outcome", "memory_hit"));
            return *it->second;
        }
    }

    const std::string path = pathFor(workload.name(), params);
    if (!path.empty()) {
        auto loaded = std::make_shared<Trace>();
        if (readTrace(path, *loaded)) {
            // readTrace only checks framing; a bit-rotted or
            // foreign-format entry can still decode into a trace no
            // workload could have emitted. Lint the stream and treat
            // failures exactly like corruption: evict + regenerate.
            const auto findings = lintTrace(*loaded);
            if (clean(findings)) {
                // Last line of defence: a flip the linter cannot see
                // (e.g. one data address swapped for another plausible
                // one) still changes the content checksum. Quarantine
                // the file — keep the evidence for postmortem — and
                // regenerate.
                std::uint64_t expected = 0;
                const bool has_sum =
                    readChecksumFile(sumPathFor(path), expected);
                if (!has_sum || traceChecksum(*loaded) == expected) {
                    std::lock_guard<std::mutex> lock(mutex_);
                    ++stats_.disk_hits;
                    span.annotate(telemetry::arg("outcome", "disk_hit"));
                    if (use_memory_layer_)
                        memory_.emplace(key, loaded);
                    return *loaded;
                }
                logWarnEvent("cache.quarantine",
                             {logField("path", path),
                              logField("reason", "checksum_mismatch")});
                telemetry::SpanTracer::global().instant(
                    "cache_quarantine", "cache",
                    {telemetry::arg("path", path)});
                std::rename(path.c_str(),
                            (path + ".quarantined").c_str());
                std::remove(sumPathFor(path).c_str());
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.checksum_rejects;
            } else {
                logWarnEvent("cache.lint_reject",
                             {logField("path", path),
                              logField("findings",
                                       formatFindings(findings))});
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.lint_rejects;
            }
        }
        // readTrace failed or a validator rejected the entry: either
        // the file does not exist (plain miss) or it is truncated,
        // corrupt or malformed and must be evicted (a quarantined
        // entry was already renamed away) before the rewrite below.
        std::remove(sumPathFor(path).c_str());
        if (std::remove(path.c_str()) == 0) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.evictions;
        }
    }

    auto fresh = std::make_shared<Trace>(workload.record(params));

    bool stored = false;
    if (!path.empty()) {
        // Unique temp name per thread, then an atomic rename: a
        // concurrent reader sees the old file or the new one, never a
        // torn write.
        const std::uint64_t tid = std::hash<std::thread::id>{}(
            std::this_thread::get_id());
        char suffix[32];
        std::snprintf(suffix, sizeof(suffix), ".tmp%llx",
                      static_cast<unsigned long long>(tid));
        const std::string tmp = path + suffix;
        if (writeTrace(*fresh, tmp) &&
            std::rename(tmp.c_str(), path.c_str()) == 0) {
            stored = true;
            // Sidecar after the entry: a crash in between leaves a
            // checksum-less file, which later hits accept (only a
            // *mismatching* sidecar quarantines).
            writeChecksumFile(sumPathFor(path), traceChecksum(*fresh),
                              suffix);
        } else {
            std::remove(tmp.c_str());
        }
    }

    span.annotate(telemetry::arg("outcome", "miss"));
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        if (stored)
            ++stats_.stores;
        if (use_memory_layer_)
            memory_.emplace(key, fresh);
    }
    return *fresh;
}

TraceCache::Stats
TraceCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace act
