#include "runner/trace_cache.hh"

#include <sys/stat.h>
#include <sys/types.h>

#include <cstdio>
#include <thread>

#include "analysis/trace_lint.hh"
#include "common/hashing.hh"
#include "common/logging.hh"
#include "trace/io.hh"

namespace act
{

namespace
{

/**
 * Bump when anything that feeds the cache key or the recorded stream
 * changes shape (trace format, workload parameter semantics): stale
 * files then simply miss instead of poisoning runs.
 */
constexpr std::uint64_t kCacheFormatVersion = 1;

/** mkdir -p (two levels is plenty for cache directories). */
void
ensureDirectory(const std::string &path)
{
    if (path.empty())
        return;
    std::string prefix;
    for (std::size_t i = 0; i <= path.size(); ++i) {
        if (i == path.size() || path[i] == '/') {
            if (!prefix.empty() && prefix != ".")
                ::mkdir(prefix.c_str(), 0755);
        }
        if (i < path.size())
            prefix += path[i];
    }
}

} // namespace

TraceCache::TraceCache(std::string directory, bool use_memory_layer)
    : directory_(std::move(directory)), use_memory_layer_(use_memory_layer)
{
    ensureDirectory(directory_);
}

std::uint64_t
TraceCache::keyOf(const std::string &name, const WorkloadParams &params)
{
    std::uint64_t h = mix64(kCacheFormatVersion);
    for (const char c : name)
        h = hashCombine(h, static_cast<std::uint64_t>(c));
    h = hashCombine(h, params.seed);
    h = hashCombine(h, params.trigger_failure ? 1 : 0);
    h = hashCombine(h, params.scale);
    return h;
}

std::string
TraceCache::pathFor(const std::string &name,
                    const WorkloadParams &params) const
{
    if (directory_.empty())
        return {};
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(keyOf(name, params)));
    return directory_ + "/" + name + "-" + hex + ".trc";
}

Trace
TraceCache::record(const Workload &workload, const WorkloadParams &params)
{
    const std::uint64_t key = keyOf(workload.name(), params);

    if (use_memory_layer_) {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = memory_.find(key);
        if (it != memory_.end()) {
            ++stats_.memory_hits;
            return *it->second;
        }
    }

    const std::string path = pathFor(workload.name(), params);
    if (!path.empty()) {
        auto loaded = std::make_shared<Trace>();
        if (readTrace(path, *loaded)) {
            // readTrace only checks framing; a bit-rotted or
            // foreign-format entry can still decode into a trace no
            // workload could have emitted. Lint the stream and treat
            // failures exactly like corruption: evict + regenerate.
            const auto findings = lintTrace(*loaded);
            if (clean(findings)) {
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.disk_hits;
                if (use_memory_layer_)
                    memory_.emplace(key, loaded);
                return *loaded;
            }
            debugLog("trace cache: lint rejected " + path + ":\n" +
                     formatFindings(findings));
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.lint_rejects;
        }
        // readTrace failed or the lint rejected the entry: either the
        // file does not exist (plain miss) or it is truncated, corrupt
        // or malformed and must be evicted before the rewrite below.
        if (std::remove(path.c_str()) == 0) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.evictions;
        }
    }

    auto fresh = std::make_shared<Trace>(workload.record(params));

    bool stored = false;
    if (!path.empty()) {
        // Unique temp name per thread, then an atomic rename: a
        // concurrent reader sees the old file or the new one, never a
        // torn write.
        const std::uint64_t tid = std::hash<std::thread::id>{}(
            std::this_thread::get_id());
        char suffix[32];
        std::snprintf(suffix, sizeof(suffix), ".tmp%llx",
                      static_cast<unsigned long long>(tid));
        const std::string tmp = path + suffix;
        if (writeTrace(*fresh, tmp) &&
            std::rename(tmp.c_str(), path.c_str()) == 0) {
            stored = true;
        } else {
            std::remove(tmp.c_str());
        }
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        if (stored)
            ++stats_.stores;
        if (use_memory_layer_)
            memory_.emplace(key, fresh);
    }
    return *fresh;
}

TraceCache::Stats
TraceCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace act
