#include "runner/runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>

#include "common/hashing.hh"
#include "runner/thread_pool.hh"
#include "workloads/workload.hh"

namespace act
{

namespace
{

using Clock = std::chrono::steady_clock;

/**
 * One background thread enforcing per-attempt wall-clock deadlines.
 * An attempt arms a cancel flag with its deadline; the watchdog sets
 * the flag once the deadline passes. Cancellation is cooperative —
 * jobs poll JobContext::cancelled() from their long-running phases —
 * so no thread is ever killed and every worker joins cleanly.
 */
class DeadlineWatchdog
{
  public:
    DeadlineWatchdog() : thread_([this] { loop(); }) {}

    ~DeadlineWatchdog()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

    std::shared_ptr<std::atomic<bool>>
    arm(Clock::time_point deadline)
    {
        auto cancel = std::make_shared<std::atomic<bool>>(false);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            armed_.push_back({deadline, cancel});
        }
        cv_.notify_all();
        return cancel;
    }

    void
    disarm(const std::shared_ptr<std::atomic<bool>> &cancel)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        armed_.erase(std::remove_if(armed_.begin(), armed_.end(),
                                    [&cancel](const Entry &e) {
                                        return e.cancel == cancel;
                                    }),
                     armed_.end());
    }

  private:
    struct Entry
    {
        Clock::time_point deadline;
        std::shared_ptr<std::atomic<bool>> cancel;
    };

    void
    loop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        while (!stop_) {
            if (armed_.empty()) {
                cv_.wait(lock);
                continue;
            }
            Clock::time_point earliest = armed_.front().deadline;
            for (const Entry &e : armed_)
                earliest = std::min(earliest, e.deadline);
            cv_.wait_until(lock, earliest);
            const auto now = Clock::now();
            for (Entry &e : armed_) {
                if (e.deadline <= now)
                    e.cancel->store(true);
            }
            armed_.erase(std::remove_if(armed_.begin(), armed_.end(),
                                        [now](const Entry &e) {
                                            return e.deadline <= now;
                                        }),
                         armed_.end());
        }
    }

    std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<Entry> armed_;
    bool stop_ = false;
    std::thread thread_;
};

/**
 * Run one job under the resilience policy: per-attempt deadline,
 * bounded retry with exponential backoff (+ deterministic jitter) for
 * TransientError, and every other escape turned into a structured
 * failed result — a throwing job never takes the campaign down.
 */
JobResult
executeJob(const JobSpec &spec, TraceCache &cache,
           const RunOptions &options, DeadlineWatchdog *watchdog)
{
    const std::uint64_t deadline_ms = spec.knobs.deadline_ms != 0
                                          ? spec.knobs.deadline_ms
                                          : options.deadline_ms;
    const std::uint32_t max_attempts = std::max(1u, options.max_attempts);

    JobResult failed;
    failed.id = spec.id;
    failed.ok = false;

    for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
        std::shared_ptr<std::atomic<bool>> cancel;
        if (deadline_ms != 0 && watchdog != nullptr) {
            cancel = watchdog->arm(Clock::now() +
                                   std::chrono::milliseconds(deadline_ms));
        }
        JobContext context;
        context.attempt = attempt;
        context.cancel = cancel.get();
        try {
            JobResult result = runJob(spec, cache, context);
            if (cancel)
                watchdog->disarm(cancel);
            result.attempts = attempt + 1;
            return result;
        } catch (const TransientError &e) {
            if (cancel)
                watchdog->disarm(cancel);
            failed.failure = JobFailure::kRetriesExhausted;
            failed.error = e.what();
            failed.attempts = attempt + 1;
            if (attempt + 1 < max_attempts &&
                options.retry_backoff_ms != 0) {
                // Exponential backoff with deterministic jitter: the
                // delay is a pure function of (seed, job, attempt), so
                // sweeps replay the same schedule run over run.
                const std::uint64_t base = options.retry_backoff_ms
                                           << attempt;
                const std::uint64_t jitter =
                    hash3(options.retry_seed, spec.id, attempt) %
                    (base + 1);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(base + jitter));
            }
        } catch (const std::exception &e) {
            const bool timed_out = cancel && cancel->load();
            if (cancel)
                watchdog->disarm(cancel);
            failed.failure = timed_out ? JobFailure::kTimeout
                                       : JobFailure::kException;
            failed.error = e.what();
            failed.attempts = attempt + 1;
            break; // Permanent: retrying a bug reproduces the bug.
        } catch (...) {
            const bool timed_out = cancel && cancel->load();
            if (cancel)
                watchdog->disarm(cancel);
            failed.failure = timed_out ? JobFailure::kTimeout
                                       : JobFailure::kException;
            failed.error = "unknown exception";
            failed.attempts = attempt + 1;
            break;
        }
    }
    return failed;
}

} // namespace

CampaignRunResult
runCampaign(const Campaign &campaign, const RunOptions &options)
{
    registerAllWorkloads();

    CampaignRunResult run;
    run.results.resize(campaign.jobs.size());

    TraceCache cache(options.cache_dir, options.memory_cache);

    // The watchdog thread exists only when some job can have a
    // deadline; deadline-free campaigns pay nothing.
    bool any_deadline = options.deadline_ms != 0;
    for (const JobSpec &spec : campaign.jobs)
        any_deadline = any_deadline || spec.knobs.deadline_ms != 0;
    std::unique_ptr<DeadlineWatchdog> watchdog;
    if (any_deadline)
        watchdog = std::make_unique<DeadlineWatchdog>();

    std::atomic<bool> abort{false};

    const auto start = std::chrono::steady_clock::now();
    {
        WorkStealingPool pool(options.jobs);
        run.threads = pool.threadCount();
        for (const JobSpec &spec : campaign.jobs) {
            JobResult &slot = run.results[spec.id];
            pool.submit([&spec, &slot, &cache, &options, &abort,
                         watchdog_raw = watchdog.get()] {
                if (abort.load()) {
                    slot.id = spec.id;
                    slot.ok = false;
                    slot.failure = JobFailure::kSkipped;
                    slot.error = "skipped after an earlier failure "
                                 "(fail-fast)";
                    return;
                }
                slot = executeJob(spec, cache, options, watchdog_raw);
                if (slot.failure != JobFailure::kNone &&
                    !options.keep_going) {
                    abort.store(true);
                }
                if (options.verbose) {
                    if (slot.failure == JobFailure::kNone) {
                        std::fprintf(stderr,
                                     "  [%3u] %-16s %-14s %8.0f ms\n",
                                     spec.id, spec.workload.c_str(),
                                     jobKindName(spec.kind),
                                     slot.wall_ms);
                    } else {
                        std::fprintf(stderr,
                                     "  [%3u] %-16s %-14s FAILED (%s)\n",
                                     spec.id, spec.workload.c_str(),
                                     jobKindName(spec.kind),
                                     jobFailureName(slot.failure));
                    }
                }
            });
        }
        pool.wait();
        run.steals = pool.stealCount();
    }
    run.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    run.cache = cache.stats();
    return run;
}

} // namespace act
