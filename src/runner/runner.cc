#include "runner/runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>

#include "common/hashing.hh"
#include "common/logging.hh"
#include "runner/thread_pool.hh"
#include "telemetry/metrics.hh"
#include "telemetry/spans.hh"
#include "workloads/workload.hh"

namespace act
{

namespace
{

using Clock = std::chrono::steady_clock;

/**
 * Runner metric handles, registered once. Job-outcome counts are
 * kStable: for a campaign that neither times out nor trips fail-fast,
 * every job's outcome is a pure function of its spec, so the sums are
 * thread-count independent. Timeouts, watchdog fires and fail-fast
 * skips are scheduling/timing artefacts and stay kVolatile.
 */
struct RunnerMetrics
{
    telemetry::Counter campaigns;
    telemetry::Counter jobs_ok;
    telemetry::Counter jobs_failed;
    telemetry::Counter attempts;
    telemetry::Counter retries;
    telemetry::Counter jobs_skipped;
    telemetry::Counter timeouts;
    telemetry::Counter watchdog_fires;
    telemetry::LatencyHistogram job_ms;

    static const RunnerMetrics &
    get()
    {
        static const RunnerMetrics metrics = [] {
            auto &reg = telemetry::MetricsRegistry::global();
            RunnerMetrics m;
            m.campaigns = reg.counter("runner.campaigns");
            m.jobs_ok = reg.counter("runner.jobs_ok");
            m.jobs_failed = reg.counter("runner.jobs_failed");
            m.attempts = reg.counter("runner.attempts");
            m.retries = reg.counter("runner.retries");
            m.jobs_skipped = reg.counter(
                "runner.jobs_skipped", telemetry::Stability::kVolatile);
            m.timeouts = reg.counter("runner.timeouts",
                                     telemetry::Stability::kVolatile);
            m.watchdog_fires = reg.counter(
                "runner.watchdog_fires", telemetry::Stability::kVolatile);
            m.job_ms = reg.histogram("runner.job_ms");
            return m;
        }();
        return metrics;
    }
};

/**
 * One background thread enforcing per-attempt wall-clock deadlines.
 * An attempt arms a cancel flag with its deadline; the watchdog sets
 * the flag once the deadline passes. Cancellation is cooperative —
 * jobs poll JobContext::cancelled() from their long-running phases —
 * so no thread is ever killed and every worker joins cleanly.
 */
class DeadlineWatchdog
{
  public:
    DeadlineWatchdog() : thread_([this] { loop(); }) {}

    ~DeadlineWatchdog()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

    std::shared_ptr<std::atomic<bool>>
    arm(Clock::time_point deadline, std::uint32_t job)
    {
        auto cancel = std::make_shared<std::atomic<bool>>(false);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            armed_.push_back({deadline, cancel, job});
        }
        cv_.notify_all();
        return cancel;
    }

    void
    disarm(const std::shared_ptr<std::atomic<bool>> &cancel)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        armed_.erase(std::remove_if(armed_.begin(), armed_.end(),
                                    [&cancel](const Entry &e) {
                                        return e.cancel == cancel;
                                    }),
                     armed_.end());
    }

  private:
    struct Entry
    {
        Clock::time_point deadline;
        std::shared_ptr<std::atomic<bool>> cancel;
        std::uint32_t job = 0;
    };

    void
    loop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        while (!stop_) {
            if (armed_.empty()) {
                cv_.wait(lock);
                continue;
            }
            Clock::time_point earliest = armed_.front().deadline;
            for (const Entry &e : armed_)
                earliest = std::min(earliest, e.deadline);
            cv_.wait_until(lock, earliest);
            const auto now = Clock::now();
            for (Entry &e : armed_) {
                if (e.deadline <= now) {
                    e.cancel->store(true);
                    RunnerMetrics::get().watchdog_fires.inc();
                    telemetry::SpanTracer::global().instant(
                        "watchdog_fire", "runner",
                        {telemetry::arg("job", std::uint64_t{e.job})});
                    logWarnEvent("runner.watchdog_fire",
                                 {logField("job", std::uint64_t{e.job})});
                }
            }
            armed_.erase(std::remove_if(armed_.begin(), armed_.end(),
                                        [now](const Entry &e) {
                                            return e.deadline <= now;
                                        }),
                         armed_.end());
        }
    }

    std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<Entry> armed_;
    bool stop_ = false;
    std::thread thread_;
};

/**
 * Run one job under the resilience policy: per-attempt deadline,
 * bounded retry with exponential backoff (+ deterministic jitter) for
 * TransientError, and every other escape turned into a structured
 * failed result — a throwing job never takes the campaign down.
 */
JobResult
executeJob(const JobSpec &spec, TraceCache &cache,
           const RunOptions &options, DeadlineWatchdog *watchdog)
{
    const std::uint64_t deadline_ms = spec.knobs.deadline_ms != 0
                                          ? spec.knobs.deadline_ms
                                          : options.deadline_ms;
    const std::uint32_t max_attempts = std::max(1u, options.max_attempts);

    JobResult failed;
    failed.id = spec.id;
    failed.ok = false;

    const RunnerMetrics &metrics = RunnerMetrics::get();

    for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
        std::shared_ptr<std::atomic<bool>> cancel;
        if (deadline_ms != 0 && watchdog != nullptr) {
            cancel = watchdog->arm(Clock::now() +
                                       std::chrono::milliseconds(
                                           deadline_ms),
                                   spec.id);
        }
        metrics.attempts.inc();
        telemetry::ScopedSpan span("job:" + spec.workload, "runner");
        span.annotate(telemetry::arg("job", std::uint64_t{spec.id}));
        span.annotate(telemetry::arg("kind", jobKindName(spec.kind)));
        span.annotate(
            telemetry::arg("attempt", std::uint64_t{attempt}));
        JobContext context;
        context.attempt = attempt;
        context.cancel = cancel.get();
        try {
            JobResult result = runJob(spec, cache, context);
            if (cancel)
                watchdog->disarm(cancel);
            result.attempts = attempt + 1;
            metrics.jobs_ok.inc();
            metrics.job_ms.record(
                static_cast<std::uint64_t>(result.wall_ms));
            span.annotate(telemetry::arg("outcome", "ok"));
            return result;
        } catch (const TransientError &e) {
            if (cancel)
                watchdog->disarm(cancel);
            failed.failure = JobFailure::kRetriesExhausted;
            failed.error = e.what();
            failed.attempts = attempt + 1;
            span.annotate(telemetry::arg("outcome", "transient"));
            if (attempt + 1 < max_attempts) {
                metrics.retries.inc();
                telemetry::SpanTracer::global().instant(
                    "retry", "runner",
                    {telemetry::arg("job", std::uint64_t{spec.id}),
                     telemetry::arg("attempt", std::uint64_t{attempt})});
            }
            if (attempt + 1 < max_attempts &&
                options.retry_backoff_ms != 0) {
                // Exponential backoff with deterministic jitter: the
                // delay is a pure function of (seed, job, attempt), so
                // sweeps replay the same schedule run over run.
                const std::uint64_t base = options.retry_backoff_ms
                                           << attempt;
                const std::uint64_t jitter =
                    hash3(options.retry_seed, spec.id, attempt) %
                    (base + 1);
                logEvent("runner.retry",
                         {logField("job", std::uint64_t{spec.id}),
                          logField("workload", spec.workload),
                          logField("attempt", std::uint64_t{attempt}),
                          logField("backoff_ms", base + jitter),
                          logField("error", failed.error)});
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(base + jitter));
            } else if (attempt + 1 < max_attempts) {
                logEvent("runner.retry",
                         {logField("job", std::uint64_t{spec.id}),
                          logField("workload", spec.workload),
                          logField("attempt", std::uint64_t{attempt}),
                          logField("error", failed.error)});
            }
        } catch (const std::exception &e) {
            const bool timed_out = cancel && cancel->load();
            if (cancel)
                watchdog->disarm(cancel);
            failed.failure = timed_out ? JobFailure::kTimeout
                                       : JobFailure::kException;
            failed.error = e.what();
            failed.attempts = attempt + 1;
            span.annotate(telemetry::arg(
                "outcome", timed_out ? "timeout" : "exception"));
            if (timed_out)
                metrics.timeouts.inc();
            break; // Permanent: retrying a bug reproduces the bug.
        } catch (...) {
            const bool timed_out = cancel && cancel->load();
            if (cancel)
                watchdog->disarm(cancel);
            failed.failure = timed_out ? JobFailure::kTimeout
                                       : JobFailure::kException;
            failed.error = "unknown exception";
            failed.attempts = attempt + 1;
            span.annotate(telemetry::arg(
                "outcome", timed_out ? "timeout" : "exception"));
            if (timed_out)
                metrics.timeouts.inc();
            break;
        }
    }
    metrics.jobs_failed.inc();
    return failed;
}

} // namespace

CampaignRunResult
runCampaign(const Campaign &campaign, const RunOptions &options)
{
    registerAllWorkloads();

    const RunnerMetrics &metrics = RunnerMetrics::get();
    metrics.campaigns.inc();
    telemetry::ScopedSpan campaign_span("campaign", "runner");
    campaign_span.annotate(telemetry::arg(
        "jobs", static_cast<std::uint64_t>(campaign.jobs.size())));

    CampaignRunResult run;
    run.results.resize(campaign.jobs.size());

    TraceCache cache(options.cache_dir, options.memory_cache);

    // The watchdog thread exists only when some job can have a
    // deadline; deadline-free campaigns pay nothing.
    bool any_deadline = options.deadline_ms != 0;
    for (const JobSpec &spec : campaign.jobs)
        any_deadline = any_deadline || spec.knobs.deadline_ms != 0;
    std::unique_ptr<DeadlineWatchdog> watchdog;
    if (any_deadline)
        watchdog = std::make_unique<DeadlineWatchdog>();

    std::atomic<bool> abort{false};

    const auto start = std::chrono::steady_clock::now();
    {
        WorkStealingPool pool(options.jobs);
        run.threads = pool.threadCount();
        for (const JobSpec &spec : campaign.jobs) {
            JobResult &slot = run.results[spec.id];
            pool.submit([&spec, &slot, &cache, &options, &abort,
                         watchdog_raw = watchdog.get()] {
                if (abort.load()) {
                    slot.id = spec.id;
                    slot.ok = false;
                    slot.failure = JobFailure::kSkipped;
                    slot.error = "skipped after an earlier failure "
                                 "(fail-fast)";
                    RunnerMetrics::get().jobs_skipped.inc();
                    return;
                }
                slot = executeJob(spec, cache, options, watchdog_raw);
                if (slot.failure != JobFailure::kNone &&
                    !options.keep_going) {
                    abort.store(true);
                }
                if (options.verbose) {
                    if (slot.failure == JobFailure::kNone) {
                        std::fprintf(stderr,
                                     "  [%3u] %-16s %-14s %8.0f ms\n",
                                     spec.id, spec.workload.c_str(),
                                     jobKindName(spec.kind),
                                     slot.wall_ms);
                    } else {
                        std::fprintf(stderr,
                                     "  [%3u] %-16s %-14s FAILED (%s)\n",
                                     spec.id, spec.workload.c_str(),
                                     jobKindName(spec.kind),
                                     jobFailureName(slot.failure));
                    }
                }
            });
        }
        pool.wait();
        run.steals = pool.stealCount();
    }
    run.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    run.cache = cache.stats();

    // Publish pool and cache statistics as counter deltas once per
    // campaign: the hot paths stay free of telemetry calls, and the
    // registry still accumulates correctly across in-process runs.
    auto &reg = telemetry::MetricsRegistry::global();
    if (reg.enabled()) {
        static const auto steals =
            reg.counter("pool.steals", telemetry::Stability::kVolatile);
        static const auto cache_memory_hits = reg.counter(
            "cache.memory_hits", telemetry::Stability::kVolatile);
        static const auto cache_disk_hits = reg.counter(
            "cache.disk_hits", telemetry::Stability::kVolatile);
        static const auto cache_misses = reg.counter(
            "cache.misses", telemetry::Stability::kVolatile);
        static const auto cache_stores = reg.counter(
            "cache.stores", telemetry::Stability::kVolatile);
        static const auto cache_evictions = reg.counter(
            "cache.evictions", telemetry::Stability::kVolatile);
        static const auto cache_lint_rejects = reg.counter(
            "cache.lint_rejects", telemetry::Stability::kVolatile);
        static const auto cache_checksum_rejects = reg.counter(
            "cache.checksum_rejects", telemetry::Stability::kVolatile);
        steals.add(run.steals);
        cache_memory_hits.add(run.cache.memory_hits);
        cache_disk_hits.add(run.cache.disk_hits);
        cache_misses.add(run.cache.misses);
        cache_stores.add(run.cache.stores);
        cache_evictions.add(run.cache.evictions);
        cache_lint_rejects.add(run.cache.lint_rejects);
        cache_checksum_rejects.add(run.cache.checksum_rejects);
    }
    return run;
}

} // namespace act
