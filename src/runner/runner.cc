#include "runner/runner.hh"

#include <chrono>
#include <cstdio>

#include "runner/thread_pool.hh"
#include "workloads/workload.hh"

namespace act
{

CampaignRunResult
runCampaign(const Campaign &campaign, const RunOptions &options)
{
    registerAllWorkloads();

    CampaignRunResult run;
    run.results.resize(campaign.jobs.size());

    TraceCache cache(options.cache_dir, options.memory_cache);

    const auto start = std::chrono::steady_clock::now();
    {
        WorkStealingPool pool(options.jobs);
        run.threads = pool.threadCount();
        for (const JobSpec &spec : campaign.jobs) {
            JobResult &slot = run.results[spec.id];
            pool.submit([&spec, &slot, &cache, &options] {
                slot = runJob(spec, cache);
                if (options.verbose) {
                    std::fprintf(stderr,
                                 "  [%3u] %-16s %-14s %8.0f ms\n",
                                 spec.id, spec.workload.c_str(),
                                 jobKindName(spec.kind), slot.wall_ms);
                }
            });
        }
        pool.wait();
        run.steals = pool.stealCount();
    }
    run.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    run.cache = cache.stats();
    return run;
}

} // namespace act
