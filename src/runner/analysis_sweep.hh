/**
 * @file
 * Post-campaign analysis sweep: the detector pipeline over every
 * cached trace.
 *
 * A campaign leaves its recordings in the content-hash trace cache;
 * `actrun run <campaign> --analyze` re-reads each `.trc` and runs the
 * full analysis pipeline over it on the work-stealing pool, one trace
 * per task, results landing in pre-assigned slots. The rendered text
 * is ordered by the sorted file list and contains no timing, so it is
 * byte-identical across `--jobs 1` and `--jobs 4` — the same contract
 * the campaign reports obey. The sweep writes to its own artifact
 * (`analysis.txt`), never into report.json/report.csv, so campaign
 * reports stay byte-identical whether or not the sweep ran.
 */

#ifndef ACT_RUNNER_ANALYSIS_SWEEP_HH
#define ACT_RUNNER_ANALYSIS_SWEEP_HH

#include <cstdint>
#include <string>

namespace act
{

/** Outcome of one sweep. */
struct AnalysisSweepResult
{
    std::string text;           //!< Deterministic per-trace report.
    std::size_t traces = 0;     //!< Trace files analysed.
    std::size_t unreadable = 0; //!< Files readTrace rejected.
    std::uint64_t findings = 0; //!< Detector findings, summed.
    std::uint64_t racy_pairs = 0; //!< HB oracle pairs, summed.
    double wall_ms = 0.0;
};

/**
 * Analyse every `.trc` under @p cache_dir (sorted order) with
 * @p jobs worker threads (0 = hardware concurrency).
 */
AnalysisSweepResult analyzeCachedTraces(const std::string &cache_dir,
                                        unsigned jobs);

} // namespace act

#endif // ACT_RUNNER_ANALYSIS_SWEEP_HH
