/**
 * @file
 * Job execution: the workload → trace → train → evaluate/diagnose
 * loops that the figure/table benches used to each implement privately,
 * now shared, cache-fed and schedulable. The numeric recipes (seed
 * bases, shuffle seeds, example caps, sweep bounds) are kept exactly as
 * the original benches had them so ported campaigns reproduce the same
 * numbers.
 */

#include "runner/job.hh"

#include <chrono>
#include <thread>

#include <set>

#include "analysis/finding.hh"
#include "analysis/pipeline.hh"
#include "analysis/race_oracle.hh"
#include "baselines/aviso.hh"
#include "baselines/pbi.hh"
#include "common/logging.hh"
#include "corpus/corpus.hh"
#include "diagnosis/pipeline.hh"
#include "faults/fault_injector.hh"
#include "nn/topology_search.hh"
#include "runner/trace_cache.hh"

namespace act
{

namespace
{

/** printf into a std::string (small local copy of bench::format). */
template <typename... Args>
std::string
formatCell(const char *fmt, Args... args)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), fmt, args...);
    return buf;
}

std::unique_ptr<DependenceEncoder>
makeEncoder(const std::string &name)
{
    if (name == "pair")
        return std::make_unique<PairEncoder>();
    if (name == "dictionary")
        return std::make_unique<DictionaryEncoder>(64);
    if (name == "hash")
        return std::make_unique<HashEncoder>();
    ACT_FATAL("unknown encoder: " << name);
}

/** Seeds [base, base + count). */
std::vector<std::uint64_t>
seedRange(std::uint64_t base, std::size_t count)
{
    std::vector<std::uint64_t> seeds(count);
    for (std::size_t i = 0; i < count; ++i)
        seeds[i] = base + i;
    return seeds;
}

/** Cache-fed version of the benches' datasetFromRuns helper. */
Dataset
datasetFromRuns(TraceCache &cache, const Workload &workload,
                const InputGenerator &generator,
                DependenceEncoder &encoder,
                const std::vector<std::uint64_t> &seeds, bool negatives,
                std::size_t *deps_out = nullptr)
{
    Dataset data;
    for (const std::uint64_t seed : seeds) {
        WorkloadParams params;
        params.seed = seed;
        const Trace trace = cache.record(workload, params);
        const GeneratedSequences sequences =
            generator.process(trace, negatives);
        if (deps_out != nullptr)
            *deps_out += sequences.dependence_count;
        data.merge(
            InputGenerator::toDataset(sequences, encoder, negatives));
    }
    return data;
}

Dataset
capDataset(Dataset data, std::size_t cap)
{
    if (data.size() <= cap)
        return data;
    Dataset capped;
    for (std::size_t i = 0; i < cap; ++i)
        capped.add(data[i]);
    return capped;
}

/**
 * Table IV cell: topology selection (optional), final training, false
 * positives on held-out traces.
 */
void
runPrediction(const JobSpec &spec, TraceCache &cache, JobResult &result)
{
    const JobKnobs &knobs = spec.knobs;
    const auto workload = makeWorkload(spec.workload);
    const auto encoder = makeEncoder(knobs.encoder);

    Topology best{knobs.sequence_length * encoder->width(), 10};
    if (knobs.sweep_topology) {
        // Small sweep (Section VI-B): 4 traces, capped dataset, short
        // epochs — exactly the original table4 recipe.
        TopologySearchConfig search;
        search.min_inputs = 2;
        search.max_inputs = 4;
        search.min_hidden = 4;
        search.max_hidden = 10;
        search.trainer.max_epochs = 120;
        const TopologySearchResult sweep = searchTopology(
            [&](std::size_t n) {
                const InputGenerator generator(n);
                auto enc = encoder->clone();
                Dataset train = datasetFromRuns(
                    cache, *workload, generator, *enc,
                    seedRange(knobs.train_seed_base, 4), true);
                Rng rng(n);
                train.shuffle(rng);
                train = capDataset(std::move(train), 6000);
                Dataset validation = train.splitTail(0.3);
                return std::make_pair(train, validation);
            },
            search);
        best = sweep.best;
    }

    const std::size_t n = best.inputs / encoder->width();
    const InputGenerator generator(n);
    auto train_enc = encoder->clone();
    std::size_t deps = 0;
    Dataset train = datasetFromRuns(
        cache, *workload, generator, *train_enc,
        seedRange(knobs.train_seed_base, knobs.train_traces), true, &deps);

    Rng rng(knobs.shuffle_seed);
    train.shuffle(rng);
    train = capDataset(std::move(train), knobs.max_examples);
    MlpNetwork network(best, rng);
    TrainerConfig trainer;
    trainer.max_epochs = knobs.max_epochs;
    trainNetwork(network, train, trainer, rng);

    std::uint64_t wrong = 0;
    std::uint64_t predictions = 0;
    std::uint64_t instructions = 0;
    for (const std::uint64_t seed :
         seedRange(knobs.test_seed_base, knobs.test_traces)) {
        WorkloadParams params;
        params.seed = seed;
        const Trace trace = cache.record(*workload, params);
        instructions += trace.instructionCount();
        const GeneratedSequences sequences =
            generator.process(trace, false);
        for (const auto &seq : sequences.positives) {
            ++predictions;
            if (!network.predictValid(train_enc->encodeSequence(seq)))
                ++wrong;
        }
    }

    result.metrics["deps"] = static_cast<double>(deps);
    result.metrics["topology_inputs"] = static_cast<double>(best.inputs);
    result.metrics["topology_hidden"] = static_cast<double>(best.hidden);
    result.metrics["mispred_instr"] =
        instructions ? static_cast<double>(wrong) /
                           static_cast<double>(instructions)
                     : 0.0;
    result.metrics["mispred_dep"] =
        predictions ? static_cast<double>(wrong) /
                          static_cast<double>(predictions)
                    : 0.0;
    result.labels["topology"] = topologyToString(best);
}

/**
 * Figure 7(a) cell: count synthesised invalid dependences the trained
 * network wrongly accepts (false negatives).
 */
void
runInvalidDeps(const JobSpec &spec, TraceCache &cache, JobResult &result)
{
    const JobKnobs &knobs = spec.knobs;
    const auto workload = makeWorkload(spec.workload);
    const auto encoder = makeEncoder(knobs.encoder);
    const InputGenerator generator(knobs.sequence_length);

    Dataset train = datasetFromRuns(
        cache, *workload, generator, *encoder,
        seedRange(knobs.train_seed_base, knobs.train_traces), true);
    Rng rng(knobs.shuffle_seed);
    train.shuffle(rng);
    train = capDataset(std::move(train), knobs.max_examples);
    MlpNetwork network(
        Topology{knobs.sequence_length * encoder->width(), 10}, rng);
    TrainerConfig trainer;
    trainer.max_epochs = knobs.max_epochs;
    trainNetwork(network, train, trainer, rng);

    std::uint64_t missed = 0;
    std::uint64_t negatives = 0;
    std::uint64_t instructions = 0;
    for (const std::uint64_t seed :
         seedRange(knobs.test_seed_base, knobs.test_traces)) {
        WorkloadParams params;
        params.seed = seed;
        const Trace trace = cache.record(*workload, params);
        instructions += trace.instructionCount();
        const GeneratedSequences sequences =
            generator.process(trace, true);
        for (const auto &seq : sequences.negatives) {
            ++negatives;
            if (network.predictValid(encoder->encodeSequence(seq)))
                ++missed;
        }
    }

    result.metrics["negatives"] = static_cast<double>(negatives);
    result.metrics["missed"] = static_cast<double>(missed);
    result.metrics["missed_instr"] =
        instructions ? static_cast<double>(missed) /
                           static_cast<double>(instructions)
                     : 0.0;
    result.metrics["missed_dep"] =
        negatives ? static_cast<double>(missed) /
                        static_cast<double>(negatives)
                  : 0.0;
}

/**
 * Table V ACT column: the full Figure 1 loop, traces via the cache.
 * With a non-null @p inject, every offline artefact and online hook
 * site runs under the injector's plan; with a null injector (or an
 * all-zero plan) the computation is bit-identical to the fault-free
 * path — the resilience table's rate-0 row depends on this. The
 * adaptivity knobs (ensemble_members, protect_weights, self_tune,
 * hidden_neurons) are applied only when set off their dormant
 * defaults, so every pre-existing cell is untouched. @p am_out, when
 * non-null, receives the run's ActModuleStats so a caller can emit
 * extra metrics without widening the shared metric set here.
 */
void
runDiagnoseActImpl(const JobSpec &spec, TraceCache &cache,
                   JobResult &result, FaultInjector *inject,
                   ActModuleStats *am_out = nullptr)
{
    const JobKnobs &knobs = spec.knobs;
    const auto workload = makeWorkload(spec.workload);

    TraceProvider provider =
        [&cache](const Workload &w, const WorkloadParams &p) {
            return cache.record(w, p);
        };
    if (inject != nullptr) {
        // Corruption happens on the job's private copy, after the
        // (shared, clean) cache: each trace is a distinct stream keyed
        // by its recording parameters, so the damage is replayable and
        // independent of recording order.
        provider = [&cache, inject](const Workload &w,
                                    const WorkloadParams &p) {
            Trace trace = cache.record(w, p);
            inject->corruptTrace(trace,
                                 p.seed * 2 + (p.trigger_failure ? 1 : 0));
            return trace;
        };
    }

    DiagnosisSetup setup;
    setup.training.traces = knobs.train_traces;
    setup.training.max_examples = knobs.diagnosis_max_examples;
    setup.training.trainer.max_epochs = knobs.diagnosis_epochs;
    setup.training.trace_provider = provider;
    setup.trace_provider = provider;
    setup.postmortem_traces = knobs.postmortem_traces;
    setup.failure_seed = knobs.failure_seed;
    if (knobs.debug_buffer_entries > 0)
        setup.system.act.debug_buffer_entries = knobs.debug_buffer_entries;

    // Adaptivity knobs, each dormant at its default. hidden_neurons
    // shrinks the per-member layer so K members fit the M-neuron bank.
    if (knobs.hidden_neurons > 0)
        setup.training.hidden_neurons = knobs.hidden_neurons;
    if (knobs.ensemble_members > 1) {
        setup.training.ensemble_members = knobs.ensemble_members;
        setup.system.act.ensemble.quorum = knobs.ensemble_quorum;
    }
    if (knobs.self_tune) {
        setup.system.act.controller.self_tuning = true;
        setup.system.act.controller.dynamic_topology = true;
    }
    if (knobs.protect_weights) {
        setup.protection.enabled = true;
        setup.protection.protect_fraction = knobs.protect_fraction;
    }

    if (inject != nullptr) {
        setup.weight_store_hook = [inject](WeightStore &store) {
            inject->corruptWeightStore(store, 0);
        };
        setup.system.act.faults = inject;
        setup.system.mem.faults = inject;
    }

    const DiagnosisResult act = diagnoseFailure(*workload, setup);
    if (am_out != nullptr)
        *am_out = act.run_stats.act;

    // Score ACT's ranked candidates against the vector-clock race
    // oracle on the same failing trace the run consumed (a cache hit).
    WorkloadParams failure_params;
    failure_params.seed = knobs.failure_seed;
    failure_params.trigger_failure = true;
    const Trace failing_trace = cache.record(*workload, failure_params);
    const RaceReport oracle = detectRaces(failing_trace);
    const RawDependence root = workload->buggyDependence();
    std::vector<RawDependence> predicted;
    for (const auto &candidate : act.report.ranked) {
        if (!candidate.sequence.deps.empty())
            predicted.push_back(candidate.sequence.deps.back());
    }
    const OracleScore score = oracle.score(predicted);

    result.metrics["diagnosed"] = act.rank ? 1.0 : 0.0;
    result.metrics["oracle_root_racy"] = oracle.isRacy(root) ? 1.0 : 0.0;
    result.metrics["oracle_races"] =
        static_cast<double>(oracle.races().size());
    result.metrics["oracle_tp"] =
        static_cast<double>(score.true_positives);
    result.metrics["oracle_fp"] =
        static_cast<double>(score.false_positives);
    result.metrics["oracle_precision"] = score.precision();
    result.labels["oracle"] = oracle.isRacy(root) ? "race" : "none";
    result.metrics["rank"] =
        act.rank ? static_cast<double>(*act.rank) : -1.0;
    result.metrics["debug_position"] =
        act.debug_position ? static_cast<double>(*act.debug_position)
                           : -1.0;
    result.metrics["filter_fraction"] = act.report.filterFraction();
    result.metrics["root_logged"] = act.root_logged ? 1.0 : 0.0;
    result.metrics["flagged"] =
        static_cast<double>(act.run_stats.act.predicted_invalid);
    result.labels["rank"] =
        act.rank ? formatCell("%zu", *act.rank) : std::string("-");
    result.labels["dbg.pos"] =
        act.debug_position ? formatCell("%zu", *act.debug_position)
                           : std::string("evicted");

    if (knobs.analyze) {
        // Multi-detector ensemble: mine benign-interleaving baselines
        // from the same passing traces training consumed (all cache
        // hits), run every detector over the failing trace, and score
        // ACT's predictions through each lens plus the fused union.
        MinedBaselines baselines;
        for (std::size_t i = 0; i < setup.training.traces; ++i) {
            WorkloadParams train_params;
            train_params.seed = setup.training.seed_base + i;
            baselines.addPassingTrace(
                cache.record(*workload, train_params));
        }
        PipelineOptions popts;
        popts.hb_races = false; // Reuse `oracle` computed above.
        popts.baselines = &baselines;
        PipelineResult analysis = runAnalysisPipeline(failing_trace, popts);
        analysis.races = oracle;
        const EnsembleScore ensemble = scoreEnsemble(analysis, predicted);

        const auto lensKey = [](const std::string &name) {
            std::string key; // "lock-order" -> "lockorder" etc.
            for (const char c : name)
                if (c != '-')
                    key += c;
            return key;
        };
        const auto emitLens = [&result](const std::string &key,
                                        const OracleScore &s) {
            result.metrics["ens_" + key + "_tp"] =
                static_cast<double>(s.true_positives);
            result.metrics["ens_" + key + "_fp"] =
                static_cast<double>(s.false_positives);
            result.metrics["ens_" + key + "_prec"] = s.precision();
            result.metrics["ens_" + key + "_recall"] = s.recall();
        };
        for (const auto &lens : ensemble.per_detector)
            emitLens(lensKey(lens.first), lens.second);
        emitLens("fused", ensemble.fused);

        result.metrics["analysis_findings"] =
            static_cast<double>(analysis.report.size());
        for (std::size_t d = 0; d < kDetectorCount; ++d) {
            const auto kind = static_cast<DetectorKind>(d);
            result.metrics["det_" + lensKey(detectorName(kind))] =
                static_cast<double>(analysis.report.countFor(kind));
        }

        // Catalog agreement: which lenses flag the known root pair,
        // and whether the bug's own detector class is among them.
        std::string flagged_by;
        for (std::size_t d = 0; d < kDetectorCount; ++d) {
            const auto kind = static_cast<DetectorKind>(d);
            if (analysis.report.matchesPair(kind, root.store_pc,
                                            root.load_pc)) {
                if (!flagged_by.empty())
                    flagged_by += '+';
                flagged_by += detectorName(kind);
            }
        }
        if (oracle.isRacy(root)) {
            if (!flagged_by.empty())
                flagged_by += '+';
            flagged_by += "hb";
        }
        result.metrics["analysis_root_flagged"] =
            flagged_by.empty() ? 0.0 : 1.0;
        result.labels["analysis"] =
            flagged_by.empty() ? std::string("clean") : flagged_by;

        double class_match = 0.0;
        switch (workload->bugClass()) {
        case BugClass::kAtomicityViolation:
            class_match = analysis.report.matchesPair(
                              DetectorKind::kAtomicity, root.store_pc,
                              root.load_pc)
                              ? 1.0
                              : 0.0;
            break;
        case BugClass::kOrderViolation:
            class_match = analysis.report.matchesPair(
                              DetectorKind::kOrder, root.store_pc,
                              root.load_pc)
                              ? 1.0
                              : 0.0;
            break;
        default:
            // Sequential / raceless bugs: agreement means the
            // concurrency detectors stay quiet.
            class_match = analysis.report.empty() ? 1.0 : 0.0;
            break;
        }
        result.metrics["analysis_class_match"] = class_match;
    }

    if (inject != nullptr) {
        // Degradation accounting: what the fault plan actually did and
        // what the graceful-degradation layer absorbed.
        result.metrics["injections"] =
            static_cast<double>(inject->totalInjections());
        for (std::size_t s = 0; s < kFaultSiteCount; ++s) {
            const auto site = static_cast<FaultSite>(s);
            result.metrics[std::string("inj_") + faultSiteName(site)] =
                static_cast<double>(inject->injectionCount(site));
        }
        const ActModuleStats &am = act.run_stats.act;
        result.metrics["quarantined_weight_sets"] =
            static_cast<double>(am.quarantined_weight_sets);
        result.metrics["input_drops_absorbed"] =
            static_cast<double>(am.input_drops_injected);
        result.metrics["debug_drops_absorbed"] =
            static_cast<double>(am.debug_drops_injected);
        result.metrics["debug_buffer_overwrites"] =
            static_cast<double>(am.debug_buffer_overwrites);
        result.metrics["oracle_recall"] = score.recall();
    }
}

/** Table V ACT column (fault-free). */
void
runDiagnoseAct(const JobSpec &spec, TraceCache &cache, JobResult &result)
{
    runDiagnoseActImpl(spec, cache, result, nullptr);
}

/**
 * Resilience cell: the diagnose-act recipe under a uniform fault plan
 * at knobs.fault_rate, scored against the race oracle on the *clean*
 * failing trace. Rate 0 reproduces the fault-free numbers exactly.
 */
void
runResilience(const JobSpec &spec, TraceCache &cache, JobResult &result)
{
    FaultInjector inject(
        FaultPlan::uniform(spec.knobs.fault_rate, spec.knobs.fault_seed));
    runDiagnoseActImpl(spec, cache, result, &inject);
    result.metrics["fault_rate"] = spec.knobs.fault_rate;
}

/**
 * table-adaptivity cell: diagnose-act with the ensemble / controller /
 * protection knobs from the spec, under a fault plan that concentrates
 * its whole budget on stored weights — the hazard the tentpole
 * machinery is built against. Rate 0 passes a *null* injector, so the
 * baseline cell is byte-comparable to a plain fault-free diagnose-act
 * run with the same knobs. The scalar `accuracy` in [0, 1] folds the
 * headline outcomes — was the bug diagnosed, was the root logged, how
 * precise were the ranked candidates, and how clean was the online
 * monitoring signal (the fraction of logged suspects that survive
 * postmortem pruning: silently corrupt weights flood the Debug Buffer
 * with junk, which this term charges even when pruning rescues the
 * final verdict) — into one sweepable number; the sweep report charts
 * its degradation per configuration as the rate climbs.
 */
void
runAdaptivity(const JobSpec &spec, TraceCache &cache, JobResult &result)
{
    ActModuleStats am;
    if (spec.knobs.fault_rate > 0.0) {
        FaultInjector inject(FaultPlan::weightsOnly(spec.knobs.fault_rate,
                                                    spec.knobs.fault_seed));
        runDiagnoseActImpl(spec, cache, result, &inject, &am);
    } else {
        runDiagnoseActImpl(spec, cache, result, nullptr, &am);
    }

    result.metrics["fault_rate"] = spec.knobs.fault_rate;
    result.metrics["ensemble_members"] =
        static_cast<double>(spec.knobs.ensemble_members);
    result.metrics["protected"] = spec.knobs.protect_weights ? 1.0 : 0.0;
    result.metrics["repaired_weight_sets"] =
        static_cast<double>(am.repaired_weight_sets);
    result.metrics["quarantined_weight_sets"] =
        static_cast<double>(am.quarantined_weight_sets);
    result.metrics["quorum_overrides"] =
        static_cast<double>(am.quorum_overrides);
    result.metrics["ensemble_disagreements"] =
        static_cast<double>(am.ensemble_disagreements);
    result.metrics["quarantine_escalations"] =
        static_cast<double>(am.quarantine_escalations);
    result.metrics["dwell_suppressed"] =
        static_cast<double>(am.dwell_suppressed_switches);
    result.metrics["mode_switches"] =
        static_cast<double>(am.mode_switches);

    const double log_precision = 1.0 - result.metrics["filter_fraction"];
    result.metrics["log_precision"] = log_precision;
    const double accuracy = (result.metrics["diagnosed"] +
                             result.metrics["root_logged"] +
                             result.metrics["oracle_precision"] +
                             log_precision) /
                            4.0;
    result.metrics["accuracy"] = accuracy;
    result.labels["config"] =
        spec.knobs.ensemble_members > 1
            ? (spec.knobs.protect_weights ? "ens+prot" : "ensemble")
            : "baseline";
}

/** Table V Aviso column: failing runs fed one at a time. */
void
runDiagnoseAviso(const JobSpec &spec, TraceCache &cache, JobResult &result)
{
    const JobKnobs &knobs = spec.knobs;
    const auto workload = makeWorkload(spec.workload);

    if (!workload->concurrent()) {
        result.metrics["applicable"] = 0.0;
        result.metrics["rank"] = -1.0;
        result.metrics["failures_used"] = 0.0;
        result.labels["cell"] = "n/a (seq.)";
        return;
    }

    AvisoDiagnoser aviso((AvisoConfig()));
    for (const std::uint64_t seed :
         seedRange(knobs.baseline_seed_base, knobs.baseline_correct_traces)) {
        WorkloadParams params;
        params.seed = seed;
        aviso.addCorrectTrace(cache.record(*workload, params));
    }
    const RawDependence root = workload->buggyDependence();
    result.metrics["applicable"] = 1.0;
    for (std::uint32_t failure = 1; failure <= knobs.aviso_max_failures;
         ++failure) {
        WorkloadParams params;
        params.seed = 900 + failure;
        params.trigger_failure = true;
        aviso.addFailureTrace(cache.record(*workload, params));
        const AvisoResult outcome =
            aviso.diagnose(root.store_pc, root.load_pc);
        if (outcome.found) {
            result.metrics["rank"] = static_cast<double>(*outcome.rank);
            result.metrics["failures_used"] =
                static_cast<double>(failure);
            result.labels["cell"] =
                formatCell("%zu (%u)", *outcome.rank, failure);
            return;
        }
    }
    result.metrics["rank"] = -1.0;
    result.metrics["failures_used"] =
        static_cast<double>(knobs.aviso_max_failures);
    result.labels["cell"] =
        formatCell("- (%u)", knobs.aviso_max_failures);
}

/** Table V PBI column: 15 correct runs + one fully sampled failure. */
void
runDiagnosePbi(const JobSpec &spec, TraceCache &cache, JobResult &result)
{
    const JobKnobs &knobs = spec.knobs;
    const auto workload = makeWorkload(spec.workload);

    PbiConfig config;
    PbiDiagnoser pbi(config);
    for (const std::uint64_t seed :
         seedRange(knobs.baseline_seed_base, knobs.baseline_correct_traces)) {
        WorkloadParams params;
        params.seed = seed;
        pbi.addCorrectTrace(cache.record(*workload, params));
    }
    WorkloadParams params;
    params.seed = knobs.failure_seed;
    params.trigger_failure = true;
    pbi.addFailureTrace(cache.record(*workload, params));

    std::vector<Pc> roots{workload->buggyDependence().load_pc};
    for (const std::uint64_t pc : knobs.extra_root_pcs)
        roots.push_back(pc);
    const PbiResult outcome = pbi.diagnose(roots);

    result.metrics["rank"] =
        outcome.rank ? static_cast<double>(*outcome.rank) : -1.0;
    result.metrics["total_predicates"] =
        static_cast<double>(outcome.total_predicates);
    result.metrics["predictive"] =
        static_cast<double>(outcome.predictive);
    result.labels["cell"] =
        outcome.rank
            ? formatCell("%zu (%zu)", *outcome.rank,
                         outcome.total_predicates)
            : formatCell("- (%zu)", outcome.total_predicates);
}

/**
 * table6-corpus cell: one injected-bug variant through the full ACT
 * diagnosis loop plus every detector lens, joined against the
 * variant's ground-truth catalog. The job deposits the flat tp/fp
 * counts the corpus sweep aggregator pools into per-class
 * precision/recall curves; the variant itself never enters the
 * workload registry (DESIGN section 14 dormancy contract).
 */
void
runCorpus(const JobSpec &spec, TraceCache &cache, JobResult &result)
{
    const JobKnobs &knobs = spec.knobs;
    std::vector<Finding> findings;
    const auto workload = corpus::makeCorpusWorkload(spec.workload, &findings);
    if (workload == nullptr) {
        throw std::runtime_error("corpus variant rejected: " +
                                 formatFindings(findings));
    }
    const corpus::CorpusCatalog catalog = workload->catalog();
    const RawDependence root = workload->buggyDependence();

    // Full ACT loop on the variant, cache-fed like every other job.
    TraceProvider provider =
        [&cache](const Workload &w, const WorkloadParams &p) {
            return cache.record(w, p);
        };
    DiagnosisSetup setup;
    setup.training.traces = knobs.train_traces;
    setup.training.max_examples = knobs.diagnosis_max_examples;
    setup.training.trainer.max_epochs = knobs.diagnosis_epochs;
    setup.training.trace_provider = provider;
    setup.trace_provider = provider;
    setup.postmortem_traces = knobs.postmortem_traces;
    setup.failure_seed = knobs.failure_seed;
    if (knobs.debug_buffer_entries > 0)
        setup.system.act.debug_buffer_entries = knobs.debug_buffer_entries;
    const DiagnosisResult act = diagnoseFailure(*workload, setup);

    // ACT's predictions, deduplicated by static pair and scored
    // against the catalog's root: the pair itself is the positive.
    std::set<std::pair<Pc, Pc>> act_pairs;
    for (const auto &candidate : act.report.ranked) {
        if (candidate.sequence.deps.empty())
            continue;
        const RawDependence &dep = candidate.sequence.deps.back();
        if (dep.inter_thread)
            act_pairs.insert({dep.store_pc, dep.load_pc});
    }
    const bool act_tp =
        act_pairs.count({root.store_pc, root.load_pc}) != 0;
    const std::size_t act_fp = act_pairs.size() - (act_tp ? 1 : 0);

    // Run the variant's matching detector lens over the failing trace,
    // with baselines mined from the same passing traces training
    // consumed (all cache hits).
    WorkloadParams failure_params;
    failure_params.seed = knobs.failure_seed;
    failure_params.trigger_failure = true;
    const Trace failing_trace = cache.record(*workload, failure_params);
    const RaceReport oracle = detectRaces(failing_trace);

    MinedBaselines baselines;
    for (std::size_t i = 0; i < setup.training.traces; ++i) {
        WorkloadParams train_params;
        train_params.seed = setup.training.seed_base + i;
        baselines.addPassingTrace(cache.record(*workload, train_params));
    }
    PipelineOptions popts;
    popts.hb_races = false; // Reuse `oracle` computed above.
    popts.baselines = &baselines;
    PipelineResult analysis = runAnalysisPipeline(failing_trace, popts);
    analysis.races = oracle;

    bool lens_tp = false;
    std::size_t lens_fp = 0;
    if (catalog.lens == "hb") {
        for (const Race &race : oracle.rawRaces()) {
            if (race.prior_pc == root.store_pc &&
                race.later_pc == root.load_pc) {
                lens_tp = true;
            } else {
                ++lens_fp;
            }
        }
    } else {
        DetectorKind kind = DetectorKind::kLockset;
        if (catalog.lens == "atomicity")
            kind = DetectorKind::kAtomicity;
        else if (catalog.lens == "order")
            kind = DetectorKind::kOrder;
        for (const AnalysisFinding &finding :
             analysis.report.findings()) {
            if (finding.detector != kind)
                continue;
            if (finding.coversPair(root.store_pc, root.load_pc))
                lens_tp = true;
            else
                ++lens_fp;
        }
    }

    result.labels["class"] = catalog.bug_class;
    result.labels["lens"] = catalog.lens;
    result.labels["base"] = catalog.base_kernel;
    result.labels["rank"] =
        act.rank ? formatCell("%zu", *act.rank) : std::string("-");
    result.metrics["lens_tp"] = lens_tp ? 1.0 : 0.0;
    result.metrics["lens_fp"] = static_cast<double>(lens_fp);
    result.metrics["act_tp"] = act_tp ? 1.0 : 0.0;
    result.metrics["act_fp"] = static_cast<double>(act_fp);
    result.metrics["act_rank"] =
        act.rank ? static_cast<double>(*act.rank) : -1.0;
    result.metrics["diagnosed"] = act.rank ? 1.0 : 0.0;
    result.metrics["oracle_races"] =
        static_cast<double>(oracle.races().size());
    result.metrics["analysis_findings"] =
        static_cast<double>(analysis.report.size());
}

} // namespace

const char *
jobKindName(JobKind kind)
{
    switch (kind) {
      case JobKind::kPrediction: return "prediction";
      case JobKind::kInvalidDeps: return "invalid-deps";
      case JobKind::kDiagnoseAct: return "diagnose-act";
      case JobKind::kDiagnoseAviso: return "diagnose-aviso";
      case JobKind::kDiagnosePbi: return "diagnose-pbi";
      case JobKind::kResilience: return "resilience";
      case JobKind::kCorpus: return "corpus";
      case JobKind::kAdaptivity: return "adaptivity";
    }
    return "?";
}

const char *
jobFailureName(JobFailure failure)
{
    switch (failure) {
      case JobFailure::kNone: return "none";
      case JobFailure::kException: return "exception";
      case JobFailure::kTimeout: return "timeout";
      case JobFailure::kRetriesExhausted: return "retries-exhausted";
      case JobFailure::kSkipped: return "skipped";
    }
    return "?";
}

const char *
schemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::kAct: return "act";
      case Scheme::kAviso: return "aviso";
      case Scheme::kPbi: return "pbi";
    }
    return "?";
}

JobResult
runJob(const JobSpec &spec, TraceCache &cache, const JobContext &context)
{
    JobResult result;
    result.id = spec.id;
    const auto start = std::chrono::steady_clock::now();

    // Self-injected runner faults (resilience tests exercise the
    // executor's exception/timeout/retry handling through these).
    switch (spec.knobs.inject_fault) {
      case InjectedFault::kNone:
        break;
      case InjectedFault::kCrash:
        throw std::runtime_error(
            formatCell("injected crash (job %u)", spec.id));
      case InjectedFault::kHang:
        // Cooperative hang: spin until the deadline watchdog cancels
        // the attempt, then surface the cancellation as an error. A
        // hang with no watchdog armed would spin forever; refuse it.
        if (context.cancel == nullptr) {
            throw std::runtime_error(formatCell(
                "injected hang needs a deadline (job %u)", spec.id));
        }
        while (!context.cancelled())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        throw std::runtime_error(
            formatCell("injected hang cancelled (job %u)", spec.id));
      case InjectedFault::kTransient:
        if (context.attempt < spec.knobs.inject_fail_attempts) {
            throw TransientError(formatCell(
                "injected transient fault (job %u, attempt %u)", spec.id,
                context.attempt));
        }
        break;
    }

    switch (spec.kind) {
      case JobKind::kPrediction:
        runPrediction(spec, cache, result);
        break;
      case JobKind::kInvalidDeps:
        runInvalidDeps(spec, cache, result);
        break;
      case JobKind::kDiagnoseAct:
        runDiagnoseAct(spec, cache, result);
        break;
      case JobKind::kDiagnoseAviso:
        runDiagnoseAviso(spec, cache, result);
        break;
      case JobKind::kDiagnosePbi:
        runDiagnosePbi(spec, cache, result);
        break;
      case JobKind::kResilience:
        runResilience(spec, cache, result);
        break;
      case JobKind::kCorpus:
        runCorpus(spec, cache, result);
        break;
      case JobKind::kAdaptivity:
        runAdaptivity(spec, cache, result);
        break;
    }
    result.ok = true;
    result.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    return result;
}

} // namespace act
