#include "runner/analysis_sweep.hh"

#include <dirent.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "analysis/pipeline.hh"
#include "runner/thread_pool.hh"
#include "telemetry/spans.hh"
#include "trace/io.hh"

namespace act
{

namespace
{

/** All regular files under @p dir ending in ".trc", sorted. */
std::vector<std::string>
listTraceFiles(const std::string &dir)
{
    std::vector<std::string> paths;
    DIR *handle = ::opendir(dir.c_str());
    if (handle == nullptr)
        return paths;
    const std::string suffix = ".trc";
    while (const struct dirent *entry = ::readdir(handle)) {
        const std::string name = entry->d_name;
        if (name.size() >= suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
            paths.push_back(dir + "/" + name);
        }
    }
    ::closedir(handle);
    std::sort(paths.begin(), paths.end());
    return paths;
}

/** Per-trace slot the pool tasks fill. */
struct TraceSlot
{
    bool readable = false;
    std::size_t events = 0;
    std::string text; //!< Deterministic pipeline rendering.
    std::uint64_t findings = 0;
    std::uint64_t racy_pairs = 0;
};

} // namespace

AnalysisSweepResult
analyzeCachedTraces(const std::string &cache_dir, unsigned jobs)
{
    const auto start = std::chrono::steady_clock::now();
    telemetry::ScopedSpan span("analysis.sweep", "analysis");

    const std::vector<std::string> paths = listTraceFiles(cache_dir);
    std::vector<TraceSlot> slots(paths.size());

    {
        WorkStealingPool pool(jobs);
        for (std::size_t i = 0; i < paths.size(); ++i) {
            pool.submit([&, i] {
                Trace trace;
                if (!readTrace(paths[i], trace))
                    return; // Slot stays !readable.
                TraceSlot &slot = slots[i];
                slot.readable = true;
                slot.events = trace.size();
                // Detector-level parallelism stays off: the sweep is
                // already one task per trace and nested threads would
                // oversubscribe the pool.
                const PipelineResult result =
                    runAnalysisPipeline(trace, {});
                slot.text = result.toText();
                slot.findings = result.report.size();
                slot.racy_pairs = result.races.races().size();
            });
        }
        pool.wait();
    }

    AnalysisSweepResult result;
    result.traces = paths.size();
    for (std::size_t i = 0; i < paths.size(); ++i) {
        const TraceSlot &slot = slots[i];
        result.text += paths[i];
        if (!slot.readable) {
            result.text += ": unreadable\n";
            ++result.unreadable;
            continue;
        }
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      ": %zu event(s), %llu finding(s), %llu racy "
                      "pair(s)\n",
                      slot.events,
                      static_cast<unsigned long long>(slot.findings),
                      static_cast<unsigned long long>(slot.racy_pairs));
        result.text += buf;
        result.text += slot.text;
        result.findings += slot.findings;
        result.racy_pairs += slot.racy_pairs;
    }
    result.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    return result;
}

} // namespace act
