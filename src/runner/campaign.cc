#include "runner/campaign.hh"

#include "common/logging.hh"
#include "corpus/corpus.hh"
#include "workloads/bugs.hh"
#include "workloads/emitter.hh"
#include "workloads/kernel.hh"

namespace act
{

namespace
{

/** fig7a: one invalid-deps job per prediction kernel. */
Campaign
fig7aCampaign()
{
    Campaign campaign;
    campaign.name = "fig7a";
    campaign.description =
        "Figure 7(a): misprediction on synthesised invalid dependences";
    for (const auto &name : predictionKernelNames()) {
        JobSpec job;
        job.id = static_cast<std::uint32_t>(campaign.jobs.size());
        job.kind = JobKind::kInvalidDeps;
        job.scheme = Scheme::kAct;
        job.workload = name;
        job.knobs.shuffle_seed = 0x7a; // The bench's historical seed.
        campaign.jobs.push_back(std::move(job));
    }
    return campaign;
}

/** table4: one swept prediction job per kernel. */
Campaign
table4Campaign()
{
    Campaign campaign;
    campaign.name = "table4";
    campaign.description =
        "Table IV: neural-network training (topology sweep + held-out "
        "false positives)";
    for (const auto &name : predictionKernelNames()) {
        JobSpec job;
        job.id = static_cast<std::uint32_t>(campaign.jobs.size());
        job.kind = JobKind::kPrediction;
        job.scheme = Scheme::kAct;
        job.workload = name;
        job.knobs.sweep_topology = true;
        campaign.jobs.push_back(std::move(job));
    }
    return campaign;
}

/** table4-ablation: three kernels x three encoders, no sweep. */
Campaign
table4AblationCampaign()
{
    Campaign campaign;
    campaign.name = "table4-ablation";
    campaign.description =
        "Table IV encoder ablation: pair vs dictionary vs hash";
    for (const char *kernel : {"lu", "canneal", "mcf"}) {
        for (const char *encoder : {"pair", "dictionary", "hash"}) {
            JobSpec job;
            job.id = static_cast<std::uint32_t>(campaign.jobs.size());
            job.kind = JobKind::kPrediction;
            job.scheme = Scheme::kAct;
            job.workload = kernel;
            job.knobs.encoder = encoder;
            campaign.jobs.push_back(std::move(job));
        }
    }
    return campaign;
}

/** table5: 11 real bugs x {ACT, Aviso, PBI}. */
Campaign
table5Campaign()
{
    Campaign campaign;
    campaign.name = "table5";
    campaign.description =
        "Table V: diagnosis of the 11 real bugs, ACT vs Aviso vs PBI";
    for (const auto &name : realBugNames()) {
        {
            JobSpec job;
            job.id = static_cast<std::uint32_t>(campaign.jobs.size());
            job.kind = JobKind::kDiagnoseAct;
            job.scheme = Scheme::kAct;
            job.workload = name;
            // Table V also reports the multi-detector ensemble columns
            // (per-detector + fused precision/recall) for the ACT cells.
            job.knobs.analyze = true;
            if (name == "mysql1") {
                // The paper: the buggy sequence is not in the default
                // 60-entry Debug Buffer; a larger one is needed.
                job.knobs.debug_buffer_entries = 400;
            }
            campaign.jobs.push_back(std::move(job));
        }
        {
            JobSpec job;
            job.id = static_cast<std::uint32_t>(campaign.jobs.size());
            job.kind = JobKind::kDiagnoseAviso;
            job.scheme = Scheme::kAviso;
            job.workload = name;
            campaign.jobs.push_back(std::move(job));
        }
        {
            JobSpec job;
            job.id = static_cast<std::uint32_t>(campaign.jobs.size());
            job.kind = JobKind::kDiagnosePbi;
            job.scheme = Scheme::kPbi;
            job.workload = name;
            if (name == "pbzip2") {
                // The consumer's emptiness check also implicates the
                // bug (see the original table5 bench).
                job.knobs.extra_root_pcs.push_back(
                    AddressMap(26).pc(12, 4));
            }
            campaign.jobs.push_back(std::move(job));
        }
    }
    return campaign;
}

/**
 * smoke: a fast mixed campaign for CI, cache exercises and the
 * determinism test. Twelve prediction cells (six kernels x two seed
 * offsets) plus one diagnosis cell per scheme on pbzip2, all with
 * dialled-down trace counts and epochs.
 */
Campaign
smokeCampaign()
{
    Campaign campaign;
    campaign.name = "smoke";
    campaign.description =
        "Small mixed campaign (~15 jobs, seconds each) covering every "
        "job kind";
    const std::vector<std::string> kernels = {"lu",      "fft",
                                              "ocean",   "canneal",
                                              "mcf",     "swaptions"};
    for (std::uint64_t offset = 0; offset < 2; ++offset) {
        for (const auto &kernel : kernels) {
            JobSpec job;
            job.id = static_cast<std::uint32_t>(campaign.jobs.size());
            job.kind = JobKind::kPrediction;
            job.scheme = Scheme::kAct;
            job.workload = kernel;
            job.seed = offset;
            // Trace-heavy, training-light: recording the traces is a
            // large share of each job, so a warm cache shows up in the
            // wall clock (the CI cache check depends on this).
            job.knobs.train_traces = 4;
            job.knobs.test_traces = 4;
            job.knobs.train_seed_base = 100 + offset * 1000;
            job.knobs.test_seed_base = 200 + offset * 1000;
            job.knobs.max_epochs = 12;
            job.knobs.max_examples = 2000;
            job.knobs.shuffle_seed = 0xbe4c + offset;
            campaign.jobs.push_back(std::move(job));
        }
    }
    {
        JobSpec job;
        job.id = static_cast<std::uint32_t>(campaign.jobs.size());
        job.kind = JobKind::kDiagnoseAct;
        job.scheme = Scheme::kAct;
        job.workload = "pbzip2";
        job.knobs.train_traces = 3;
        job.knobs.diagnosis_epochs = 60;
        job.knobs.diagnosis_max_examples = 6000;
        job.knobs.postmortem_traces = 4;
        campaign.jobs.push_back(std::move(job));
    }
    {
        JobSpec job;
        job.id = static_cast<std::uint32_t>(campaign.jobs.size());
        job.kind = JobKind::kDiagnoseAviso;
        job.scheme = Scheme::kAviso;
        job.workload = "pbzip2";
        job.knobs.baseline_correct_traces = 4;
        job.knobs.aviso_max_failures = 4;
        campaign.jobs.push_back(std::move(job));
    }
    {
        JobSpec job;
        job.id = static_cast<std::uint32_t>(campaign.jobs.size());
        job.kind = JobKind::kDiagnosePbi;
        job.scheme = Scheme::kPbi;
        job.workload = "pbzip2";
        job.knobs.baseline_correct_traces = 4;
        job.knobs.extra_root_pcs.push_back(AddressMap(26).pc(12, 4));
        campaign.jobs.push_back(std::move(job));
    }
    return campaign;
}

/**
 * table-resilience: graceful degradation under injected faults.
 *
 * Four diagnose-act cells on pbzip2 (smoke-sized knobs, so the rate-0
 * row reproduces the smoke diagnosis cell's oracle precision/recall
 * exactly) sweeping a uniform fault rate over every injection site,
 * plus three runner probes: a job that crashes, a job that hangs
 * (cancelled by its 500 ms deadline) and a job that fails transiently
 * once and succeeds on retry. Expected outcome under --keep-going:
 * exactly two failed jobs (the crash and the hang), everything else
 * reported.
 */
Campaign
resilienceCampaign()
{
    Campaign campaign;
    campaign.name = "table-resilience";
    campaign.description =
        "Resilience: diagnosis quality vs fault-injection rate, plus "
        "crash/hang/transient runner probes";
    for (const double rate : {0.0, 0.002, 0.01, 0.05}) {
        JobSpec job;
        job.id = static_cast<std::uint32_t>(campaign.jobs.size());
        job.kind = JobKind::kResilience;
        job.scheme = Scheme::kAct;
        job.workload = "pbzip2";
        // Mirror the smoke diagnosis cell so rate 0 is its baseline.
        job.knobs.train_traces = 3;
        job.knobs.diagnosis_epochs = 60;
        job.knobs.diagnosis_max_examples = 6000;
        job.knobs.postmortem_traces = 4;
        job.knobs.fault_rate = rate;
        job.knobs.fault_seed = 0xfa117;
        campaign.jobs.push_back(std::move(job));
    }
    {
        JobSpec job;
        job.id = static_cast<std::uint32_t>(campaign.jobs.size());
        job.kind = JobKind::kPrediction;
        job.scheme = Scheme::kAct;
        job.workload = "lu";
        job.knobs.inject_fault = InjectedFault::kCrash;
        campaign.jobs.push_back(std::move(job));
    }
    {
        JobSpec job;
        job.id = static_cast<std::uint32_t>(campaign.jobs.size());
        job.kind = JobKind::kPrediction;
        job.scheme = Scheme::kAct;
        job.workload = "lu";
        job.knobs.inject_fault = InjectedFault::kHang;
        job.knobs.deadline_ms = 500;
        campaign.jobs.push_back(std::move(job));
    }
    {
        JobSpec job;
        job.id = static_cast<std::uint32_t>(campaign.jobs.size());
        job.kind = JobKind::kPrediction;
        job.scheme = Scheme::kAct;
        job.workload = "lu";
        job.knobs.inject_fault = InjectedFault::kTransient;
        job.knobs.inject_fail_attempts = 1;
        job.knobs.train_traces = 2;
        job.knobs.test_traces = 2;
        job.knobs.max_epochs = 4;
        job.knobs.max_examples = 500;
        campaign.jobs.push_back(std::move(job));
    }
    return campaign;
}

/**
 * table6-corpus: the pinned 32-variant slice of the seeded bug-injection
 * corpus, one kCorpus cell per variant. The slice is a pure function of
 * the master seed (0xc0ffee), so the job list — and with it the whole
 * report — is byte-identical across builds; larger sweeps go through
 * `actgen` + `actrun --corpus`, which build the same job shape for an
 * arbitrary slice. Knobs are dialled down smoke-style: corpus variants
 * are small three-thread kernels, and the sweep's power comes from
 * variant count, not per-variant training depth.
 */
Campaign
table6CorpusCampaign()
{
    Campaign campaign;
    campaign.name = "table6-corpus";
    campaign.description =
        "table6-corpus: 32 seeded bug-injection variants, per-class "
        "precision/recall vs ground-truth catalogs";
    for (const corpus::CorpusVariantDesc &desc :
         corpus::corpusSlice(corpus::kCorpusMasterSeed, 32)) {
        JobSpec job;
        job.id = static_cast<std::uint32_t>(campaign.jobs.size());
        job.kind = JobKind::kCorpus;
        job.scheme = Scheme::kAct;
        job.workload = corpus::corpusName(desc);
        job.knobs.train_traces = 4;
        job.knobs.diagnosis_epochs = 40;
        job.knobs.diagnosis_max_examples = 4000;
        job.knobs.postmortem_traces = 3;
        campaign.jobs.push_back(std::move(job));
    }
    return campaign;
}

/**
 * table-adaptivity: fault-hardening sweep for the Adaptivity 2.0
 * machinery. Three configurations — baseline (single network, legacy
 * latch), ensemble (K=3 voters over a shared neuron budget with the
 * self-tuning controller) and ensemble+protection (the same plus
 * selective weight shadowing) — each swept over a weight-concentrated
 * bit-flip rate. Knobs mirror the smoke diagnosis cell, so the
 * baseline rate-0 row doubles as the smoke cell's fault-free numbers.
 * The acceptance bar: at the top rates the hardened configuration
 * loses strictly less `accuracy` than the baseline.
 */
Campaign
tableAdaptivityCampaign()
{
    Campaign campaign;
    campaign.name = "table-adaptivity";
    campaign.description =
        "Adaptivity: diagnosis accuracy vs stored-weight fault rate, "
        "baseline vs ensemble vs ensemble+protection";
    struct Config
    {
        std::size_t members;
        bool protect;
        bool self_tune;
    };
    const Config configs[] = {
        {1, false, false}, // Baseline: the paper's module, untouched.
        {3, false, true},  // Quorum voting + self-tuning controller.
        {3, true, true},   // ... plus selective weight protection.
    };
    for (const Config &config : configs) {
        for (const double rate : {0.0, 0.002, 0.01, 0.05}) {
            JobSpec job;
            job.id = static_cast<std::uint32_t>(campaign.jobs.size());
            job.kind = JobKind::kAdaptivity;
            job.scheme = Scheme::kAct;
            job.workload = "pbzip2";
            // Mirror the smoke diagnosis cell so rate 0 is its baseline.
            job.knobs.train_traces = 3;
            job.knobs.diagnosis_epochs = 60;
            job.knobs.diagnosis_max_examples = 6000;
            job.knobs.postmortem_traces = 4;
            job.knobs.fault_rate = rate;
            job.knobs.fault_seed = 0xada97;
            job.knobs.ensemble_members = config.members;
            job.knobs.self_tune = config.self_tune;
            job.knobs.protect_weights = config.protect;
            if (config.members > 1) {
                // K members share the M = 10 neuron bank: shrink the
                // per-member hidden layer so the budget check passes.
                job.knobs.hidden_neurons = 3;
            }
            campaign.jobs.push_back(std::move(job));
        }
    }
    return campaign;
}

} // namespace

std::vector<std::string>
campaignNames()
{
    return {"fig7a", "table4", "table4-ablation", "table5",
            "table6-corpus", "table-resilience", "table-adaptivity",
            "smoke"};
}

bool
campaignExists(const std::string &name)
{
    for (const auto &known : campaignNames()) {
        if (known == name)
            return true;
    }
    return false;
}

Campaign
makeCampaign(const std::string &name)
{
    if (name == "fig7a")
        return fig7aCampaign();
    if (name == "table4")
        return table4Campaign();
    if (name == "table4-ablation")
        return table4AblationCampaign();
    if (name == "table5")
        return table5Campaign();
    if (name == "table6-corpus")
        return table6CorpusCampaign();
    if (name == "table-resilience")
        return resilienceCampaign();
    if (name == "table-adaptivity")
        return tableAdaptivityCampaign();
    if (name == "smoke")
        return smokeCampaign();
    ACT_FATAL("unknown campaign: " << name);
}

std::string
campaignDescription(const std::string &name)
{
    return makeCampaign(name).description;
}

} // namespace act
