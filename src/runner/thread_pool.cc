#include "runner/thread_pool.hh"

#include <exception>

#include "telemetry/metrics.hh"
#include "telemetry/spans.hh"

namespace act
{

namespace
{

/**
 * Index of the worker running on this thread, or -1 on external
 * threads. File-scope so nested pools (which the runner never creates)
 * would simply fall back to round-robin submission.
 */
thread_local int tls_worker_index = -1;

/** Tasks sitting in deques, process-wide (volatile by nature). */
telemetry::Gauge
queueDepthGauge()
{
    static const telemetry::Gauge gauge =
        telemetry::MetricsRegistry::global().gauge("pool.queue_depth");
    return gauge;
}

/**
 * Per-queue depth gauges, `pool.queue_depth.<i>`. Process-wide like
 * the aggregate (pools sharing a worker index share the slot — the
 * runner only ever creates one pool at a time, and the gauges are
 * deltas, so nested test pools still sum correctly). Grown lazily so
 * a pool with few workers registers few names.
 */
telemetry::Gauge
perQueueGauge(std::size_t index)
{
    static std::mutex mutex;
    static std::vector<telemetry::Gauge> gauges;
    std::lock_guard<std::mutex> lock(mutex);
    while (gauges.size() <= index) {
        gauges.push_back(telemetry::MetricsRegistry::global().gauge(
            "pool.queue_depth." + std::to_string(gauges.size())));
    }
    return gauges[index];
}

/** trySubmit refusals (volatile: load dependent). */
telemetry::Counter
shedCounter()
{
    static const telemetry::Counter counter =
        telemetry::MetricsRegistry::global().counter(
            "pool.tasks_shed", telemetry::Stability::kVolatile);
    return counter;
}

} // namespace

WorkStealingPool::WorkStealingPool(unsigned threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

WorkStealingPool::~WorkStealingPool()
{
    wait();
    stop_.store(true);
    wake_cv_.notify_all();
    for (auto &thread : threads_)
        thread.join();
}

void
WorkStealingPool::submit(Task task)
{
    const int self = tls_worker_index;
    const std::size_t target =
        self >= 0 && static_cast<std::size_t>(self) < workers_.size()
            ? static_cast<std::size_t>(self)
            : next_queue_.fetch_add(1) % workers_.size();
    // Counters go up *before* the task becomes claimable: a worker may
    // pop and finish it the instant the deque lock drops, and its
    // pending_ decrement must not underflow past our increment.
    pending_.fetch_add(1);
    unclaimed_.fetch_add(1);
    queueDepthGauge().inc();
    perQueueGauge(target).inc();
    {
        std::lock_guard<std::mutex> lock(workers_[target]->mutex);
        workers_[target]->tasks.push_back(std::move(task));
    }
    wake_cv_.notify_one();
}

bool
WorkStealingPool::trySubmit(Task task, std::size_t max_queue_depth)
{
    const int self = tls_worker_index;
    const std::size_t target =
        self >= 0 && static_cast<std::size_t>(self) < workers_.size()
            ? static_cast<std::size_t>(self)
            : next_queue_.fetch_add(1) % workers_.size();
    {
        std::lock_guard<std::mutex> lock(workers_[target]->mutex);
        if (workers_[target]->tasks.size() >= max_queue_depth) {
            sheds_.fetch_add(1);
            shedCounter().inc();
            return false;
        }
        pending_.fetch_add(1);
        unclaimed_.fetch_add(1);
        queueDepthGauge().inc();
        perQueueGauge(target).inc();
        workers_[target]->tasks.push_back(std::move(task));
    }
    wake_cv_.notify_one();
    return true;
}

std::size_t
WorkStealingPool::queueDepth(unsigned index) const
{
    if (index >= workers_.size())
        return 0;
    std::lock_guard<std::mutex> lock(workers_[index]->mutex);
    return workers_[index]->tasks.size();
}

void
WorkStealingPool::wait()
{
    // A worker calling wait() would deadlock (it cannot both sleep and
    // drain); help execute instead. The caller's own task is still
    // counted in pending_ — it only decrements after the task returns —
    // so the drain target is 1, not 0: waiting for its own count would
    // spin forever.
    if (tls_worker_index >= 0) {
        while (pending_.load() > 1) {
            Task task = claim(static_cast<unsigned>(tls_worker_index));
            if (!task) {
                std::this_thread::yield();
                continue;
            }
            runTask(task);
            pending_.fetch_sub(1);
        }
        return;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    done_cv_.wait(lock, [this] { return pending_.load() == 0; });
}

void
WorkStealingPool::runTask(Task &task)
{
    // A throwing task must never unwind into workerLoop: the exception
    // would escape the thread entry point and std::terminate the whole
    // process, killing every other in-flight job with it. Absorb it,
    // record it, and let the pool keep draining.
    try {
        task();
    } catch (const std::exception &e) {
        if (exceptions_.fetch_add(1) == 0) {
            std::lock_guard<std::mutex> lock(exception_mutex_);
            first_exception_ = e.what();
        }
    } catch (...) {
        if (exceptions_.fetch_add(1) == 0) {
            std::lock_guard<std::mutex> lock(exception_mutex_);
            first_exception_ = "unknown exception";
        }
    }
}

std::string
WorkStealingPool::firstExceptionMessage() const
{
    std::lock_guard<std::mutex> lock(exception_mutex_);
    return first_exception_;
}

WorkStealingPool::Task
WorkStealingPool::claim(unsigned self)
{
    // Own deque, newest first: the task most likely still warm in this
    // worker's cache.
    {
        Worker &own = *workers_[self];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            Task task = std::move(own.tasks.back());
            own.tasks.pop_back();
            unclaimed_.fetch_sub(1);
            queueDepthGauge().dec();
            perQueueGauge(self).dec();
            return task;
        }
    }
    // Steal the oldest task from the first non-empty victim, scanning
    // from our right-hand neighbour so contention spreads out.
    for (std::size_t offset = 1; offset < workers_.size(); ++offset) {
        const std::size_t victim_index =
            (self + offset) % workers_.size();
        Worker &victim = *workers_[victim_index];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.tasks.empty()) {
            Task task = std::move(victim.tasks.front());
            victim.tasks.pop_front();
            unclaimed_.fetch_sub(1);
            queueDepthGauge().dec();
            perQueueGauge(victim_index).dec();
            steals_.fetch_add(1);
            return task;
        }
    }
    return {};
}

void
WorkStealingPool::workerLoop(unsigned index)
{
    tls_worker_index = static_cast<int>(index);
    telemetry::SpanTracer::global().nameThread(
        "worker-" + std::to_string(index));
    while (true) {
        Task task = claim(index);
        if (!task) {
            std::unique_lock<std::mutex> lock(wake_mutex_);
            if (stop_.load())
                return;
            wake_cv_.wait(lock, [this] {
                return stop_.load() || unclaimed_.load() > 0;
            });
            continue;
        }
        runTask(task);
        if (pending_.fetch_sub(1) == 1) {
            // Last task down: wake wait()ers. Taking the lock orders
            // this notify against the waiter's predicate check.
            std::lock_guard<std::mutex> lock(wake_mutex_);
            done_cv_.notify_all();
        }
    }
}

} // namespace act
