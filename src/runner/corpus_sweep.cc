#include "runner/corpus_sweep.hh"

#include <map>

namespace act
{

bool
campaignHasCorpus(const Campaign &campaign)
{
    for (const JobSpec &spec : campaign.jobs) {
        if (spec.kind == JobKind::kCorpus)
            return true;
    }
    return false;
}

std::vector<corpus::CorpusOutcome>
corpusOutcomes(const Campaign &campaign,
               const std::vector<JobResult> &results)
{
    std::map<std::uint32_t, const JobResult *> by_id;
    for (const JobResult &result : results)
        by_id[result.id] = &result;

    const auto metric = [](const JobResult &result, const char *key,
                           double fallback) {
        const auto it = result.metrics.find(key);
        return it == result.metrics.end() ? fallback : it->second;
    };

    std::vector<corpus::CorpusOutcome> outcomes;
    for (const JobSpec &spec : campaign.jobs) {
        if (spec.kind != JobKind::kCorpus)
            continue;
        const auto it = by_id.find(spec.id);
        if (it == by_id.end() || !it->second->ok)
            continue;
        const JobResult &result = *it->second;

        corpus::CorpusOutcome outcome;
        outcome.variant = spec.workload;
        const auto cls = result.labels.find("class");
        const auto lens = result.labels.find("lens");
        outcome.bug_class =
            cls == result.labels.end() ? "?" : cls->second;
        outcome.lens = lens == result.labels.end() ? "?" : lens->second;
        outcome.lens_tp = metric(result, "lens_tp", 0.0);
        outcome.lens_fp = metric(result, "lens_fp", 0.0);
        outcome.act_tp = metric(result, "act_tp", 0.0);
        outcome.act_fp = metric(result, "act_fp", 0.0);
        outcome.act_rank = metric(result, "act_rank", -1.0);
        outcomes.push_back(std::move(outcome));
    }
    return outcomes;
}

std::string
corpusSweepReport(const Campaign &campaign,
                  const std::vector<JobResult> &results)
{
    return corpus::corpusReport(corpusOutcomes(campaign, results));
}

} // namespace act
