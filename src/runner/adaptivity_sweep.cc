#include "runner/adaptivity_sweep.hh"

#include <algorithm>
#include <cstdio>
#include <map>

namespace act
{

namespace
{

/** printf into a std::string (small local copy of bench::format). */
template <typename... Args>
std::string
format(const char *fmt, Args... args)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), fmt, args...);
    return buf;
}

} // namespace

bool
campaignHasAdaptivity(const Campaign &campaign)
{
    for (const JobSpec &spec : campaign.jobs) {
        if (spec.kind == JobKind::kAdaptivity)
            return true;
    }
    return false;
}

std::vector<AdaptivityOutcome>
adaptivityOutcomes(const Campaign &campaign,
                   const std::vector<JobResult> &results)
{
    std::map<std::uint32_t, const JobResult *> by_id;
    for (const JobResult &result : results)
        by_id[result.id] = &result;

    const auto metric = [](const JobResult &result, const char *key,
                           double fallback) {
        const auto it = result.metrics.find(key);
        return it == result.metrics.end() ? fallback : it->second;
    };

    std::vector<AdaptivityOutcome> outcomes;
    for (const JobSpec &spec : campaign.jobs) {
        if (spec.kind != JobKind::kAdaptivity)
            continue;
        const auto it = by_id.find(spec.id);
        if (it == by_id.end() || !it->second->ok)
            continue;
        const JobResult &result = *it->second;

        AdaptivityOutcome outcome;
        const auto config = result.labels.find("config");
        outcome.config =
            config == result.labels.end() ? "?" : config->second;
        outcome.fault_rate = metric(result, "fault_rate", 0.0);
        outcome.accuracy = metric(result, "accuracy", 0.0);
        outcome.repaired = metric(result, "repaired_weight_sets", 0.0);
        outcome.quarantined =
            metric(result, "quarantined_weight_sets", 0.0);
        outcome.quorum_overrides =
            metric(result, "quorum_overrides", 0.0);
        outcome.disagreements =
            metric(result, "ensemble_disagreements", 0.0);
        outcome.mode_switches = metric(result, "mode_switches", 0.0);
        outcome.dwell_suppressed =
            metric(result, "dwell_suppressed", 0.0);
        outcomes.push_back(std::move(outcome));
    }
    return outcomes;
}

std::string
adaptivitySweepReport(const Campaign &campaign,
                      const std::vector<JobResult> &results)
{
    const std::vector<AdaptivityOutcome> outcomes =
        adaptivityOutcomes(campaign, results);

    std::string text;
    text += "table-adaptivity: diagnosis accuracy vs stored-weight "
            "fault rate\n";
    text += format("%-10s %8s %9s %7s %6s %7s %9s %6s %6s\n", "config",
                   "rate", "accuracy", "repair", "quar", "ovr",
                   "disagree", "modes", "dwell");

    // Per-cell rows, in job id order (configs are contiguous blocks).
    for (const AdaptivityOutcome &o : outcomes) {
        text += format("%-10s %8.3f %9.3f %7.0f %6.0f %7.0f %9.0f "
                       "%6.0f %6.0f\n",
                       o.config.c_str(), o.fault_rate, o.accuracy,
                       o.repaired, o.quarantined, o.quorum_overrides,
                       o.disagreements, o.mode_switches,
                       o.dwell_suppressed);
    }

    // Per-configuration degradation summary: accuracy lost between the
    // clean cell and the *worst* swept rate — robustness is a
    // worst-case property, and the damage regime is not monotone in
    // the rate (silent in-range corruption hurts the baseline more
    // than gross corruption its quarantine catches). Smaller is
    // better; the campaign's acceptance bar is ens+prot < baseline.
    text += "\naccuracy loss (clean -> worst swept rate), "
            "by configuration:\n";
    std::vector<std::string> configs;
    for (const AdaptivityOutcome &o : outcomes) {
        if (std::find(configs.begin(), configs.end(), o.config) ==
            configs.end()) {
            configs.push_back(o.config);
        }
    }
    for (const std::string &config : configs) {
        double base = 0.0, worst = 2.0, worst_rate = 0.0;
        for (const AdaptivityOutcome &o : outcomes) {
            if (o.config != config)
                continue;
            if (o.fault_rate == 0.0) {
                base = o.accuracy;
            } else if (o.accuracy < worst) {
                worst = o.accuracy;
                worst_rate = o.fault_rate;
            }
        }
        if (worst > 1.0)
            worst = base; // No swept cells: nothing lost.
        text += format("  %-10s %9.3f (%.3f -> %.3f at rate %.3f)\n",
                       config.c_str(), base - worst, base, worst,
                       worst_rate);
    }
    return text;
}

} // namespace act
