/**
 * @file
 * Adaptivity sweep aggregation: join kAdaptivity job results back into
 * the per-configuration accuracy-degradation table.
 *
 * A table-adaptivity campaign is a grid of independent kAdaptivity
 * jobs — configurations (baseline / ensemble / ensemble+protection)
 * crossed with stored-weight fault rates — flowing through the
 * ordinary runner. Each job deposits its headline accuracy and the
 * module's hardening counters as flat metrics; this translation layer
 * pivots those rows into one line per configuration, with the
 * accuracy-loss column (rate-0 accuracy minus top-rate accuracy) the
 * acceptance criterion reads. Failed jobs are excluded from the pool —
 * they are already surfaced by the runner's FAILED JOBS accounting.
 */

#ifndef ACT_RUNNER_ADAPTIVITY_SWEEP_HH
#define ACT_RUNNER_ADAPTIVITY_SWEEP_HH

#include <string>
#include <vector>

#include "runner/job.hh"

namespace act
{

/** One kAdaptivity cell lifted back out of its flat metrics. */
struct AdaptivityOutcome
{
    std::string config;      //!< baseline | ensemble | ens+prot.
    double fault_rate = 0.0;
    double accuracy = 0.0;   //!< (diagnosed + root_logged + prec) / 3.
    double repaired = 0.0;   //!< Shadow-copy weight repairs.
    double quarantined = 0.0;
    double quorum_overrides = 0.0;
    double disagreements = 0.0;
    double mode_switches = 0.0;
    double dwell_suppressed = 0.0;
};

/** True when @p campaign contains at least one kAdaptivity job. */
bool campaignHasAdaptivity(const Campaign &campaign);

/**
 * Lift the kAdaptivity rows of a finished campaign into outcomes, in
 * job id order. Non-adaptivity and failed jobs are skipped.
 */
std::vector<AdaptivityOutcome>
adaptivityOutcomes(const Campaign &campaign,
                   const std::vector<JobResult> &results);

/** Render the table-adaptivity report for a finished campaign. */
std::string adaptivitySweepReport(const Campaign &campaign,
                                  const std::vector<JobResult> &results);

} // namespace act

#endif // ACT_RUNNER_ADAPTIVITY_SWEEP_HH
