/**
 * @file
 * Campaign result serialisation.
 *
 * Two artefacts per run, written under the `--out` directory:
 *
 *  - `report.json` — the canonical machine-readable report. Contains
 *    only deterministic fields (spec + metrics + labels), so two runs
 *    with the same campaign are byte-identical regardless of `--jobs`,
 *    caching, or the machine's speed. Schema documented in README.md.
 *  - `report.csv` — long-format rows `id,workload,scheme,kind,seed,
 *    key,value` for spreadsheet use; includes a `wall_ms` row per job
 *    (timing lives here, never in the JSON).
 */

#ifndef ACT_RUNNER_REPORT_HH
#define ACT_RUNNER_REPORT_HH

#include <string>
#include <vector>

#include "runner/job.hh"

namespace act
{

/** Shortest decimal rendering of @p v that round-trips via strtod. */
std::string formatDouble(double v);

/** The deterministic JSON report. */
std::string reportJson(const Campaign &campaign,
                       const std::vector<JobResult> &results);

/** The long-format CSV (includes wall_ms rows). */
std::string reportCsv(const Campaign &campaign,
                      const std::vector<JobResult> &results);

/** Write @p content to @p path (parent directory must exist). */
bool writeTextFile(const std::string &path, const std::string &content);

/** One parsed CSV row, as `actrun report` consumes it. */
struct ReportRow
{
    std::uint32_t id = 0;
    std::string workload;
    std::string scheme;
    std::string kind;
    std::uint64_t seed = 0;
    std::string key;
    std::string value;
};

/**
 * Load `report.csv` rows from @p path. Returns false when the file is
 * missing or malformed.
 */
bool loadReportCsv(const std::string &path, std::vector<ReportRow> &rows);

} // namespace act

#endif // ACT_RUNNER_REPORT_HH
