/**
 * @file
 * Fixed-size thread pool with per-worker work-stealing deques.
 *
 * The campaign runner fans independent jobs out across cores. Jobs are
 * coarse (seconds each) but uneven — a Table V diagnosis costs orders
 * of magnitude more than a smoke prediction job — so a single shared
 * queue would serialise on its lock while a static partition would
 * leave workers idle behind one slow shard. Each worker therefore owns
 * a deque: it pushes and pops at the back (LIFO, cache-warm), and idle
 * workers steal from the *front* of a victim's deque (FIFO, the
 * coldest work), the classic work-stealing arrangement.
 *
 * Determinism note: the pool never reorders results — callers write
 * into pre-assigned slots — so the schedule affects wall-clock only,
 * never output.
 */

#ifndef ACT_RUNNER_THREAD_POOL_HH
#define ACT_RUNNER_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace act
{

/**
 * The pool. Construction spawns the workers; destruction drains any
 * remaining tasks and joins them.
 */
class WorkStealingPool
{
  public:
    using Task = std::function<void()>;

    /** @param threads Worker count; 0 = std::thread::hardware_concurrency. */
    explicit WorkStealingPool(unsigned threads = 0);

    /** Blocks until every submitted task has finished. */
    ~WorkStealingPool();

    WorkStealingPool(const WorkStealingPool &) = delete;
    WorkStealingPool &operator=(const WorkStealingPool &) = delete;

    /**
     * Enqueue one task. When called from a worker thread the task goes
     * to that worker's own deque; external submissions are distributed
     * round-robin.
     */
    void submit(Task task);

    /**
     * Bounded enqueue: refuse — returning false and counting the task
     * under the `pool.tasks_shed` telemetry counter — when the target
     * deque already holds @p max_queue_depth tasks. Nothing is ever
     * dropped silently: the caller owns the refused task and decides
     * whether to retry, redirect or shed it for real. Queue selection
     * matches submit().
     */
    bool trySubmit(Task task, std::size_t max_queue_depth);

    /** Tasks currently queued (unclaimed) on worker @p index's deque. */
    std::size_t queueDepth(unsigned index) const;

    /** Lifetime count of trySubmit refusals. */
    std::uint64_t shedCount() const { return sheds_.load(); }

    /** Block until every task submitted so far has completed. */
    void wait();

    unsigned threadCount() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /** Tasks executed by a worker other than the one they were queued on. */
    std::uint64_t stealCount() const { return steals_.load(); }

    /**
     * Tasks whose callable threw. An escaping exception would call
     * std::terminate on the worker thread and take the whole process
     * down, so the pool absorbs it, counts it here and keeps the first
     * message for post-mortem. This is a backstop: callers that care
     * about *which* task failed (the campaign runner does) must catch
     * inside the task and turn the error into data themselves.
     */
    std::uint64_t exceptionCount() const { return exceptions_.load(); }

    /** what() of the first absorbed exception ("" when none). */
    std::string firstExceptionMessage() const;

  private:
    struct Worker
    {
        std::mutex mutex;
        std::deque<Task> tasks;
    };

    void workerLoop(unsigned index);

    /** Run @p task, absorbing (and recording) anything it throws. */
    void runTask(Task &task);

    /**
     * Claim one task: own deque back first, then steal from the other
     * workers' fronts. Returns an empty function when nothing is
     * runnable.
     */
    Task claim(unsigned self);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    std::mutex wake_mutex_;
    std::condition_variable wake_cv_;  //!< Workers sleep here when idle.
    std::condition_variable done_cv_;  //!< wait() sleeps here.

    std::atomic<std::uint64_t> unclaimed_{0}; //!< Tasks sitting in deques.
    std::atomic<std::uint64_t> pending_{0};   //!< Submitted, not finished.
    std::atomic<std::uint64_t> next_queue_{0};
    std::atomic<std::uint64_t> steals_{0};
    std::atomic<std::uint64_t> sheds_{0};
    std::atomic<std::uint64_t> exceptions_{0};
    std::atomic<bool> stop_{false};

    mutable std::mutex exception_mutex_;
    std::string first_exception_; //!< Guarded by exception_mutex_.
};

} // namespace act

#endif // ACT_RUNNER_THREAD_POOL_HH
